// Simulator-throughput benchmarks: lines per second through the whole
// demand pipeline (core.System -> LLC -> imc.Controller -> cache.Assoc
// -> dram/nvram), sequential and LFSR-random, in both operating modes.
// Unlike the per-figure benchmarks in bench_test.go, these measure the
// simulator itself, not the modeled hardware: they are the tracked
// perf-trajectory baseline described in DESIGN.md, and cmd/repro emits
// the same measurement as BENCH_throughput.json.
package twolm_test

import (
	"testing"

	"twolm/internal/core"
	"twolm/internal/engine"
)

// benchThroughput streams region-sized passes and reports lines/s.
func benchThroughput(b *testing.B, mode core.Mode, random bool) {
	sys, region, err := engine.NewThroughputSystem(mode, 8192)
	if err != nil {
		b.Fatal(err)
	}
	// Untimed warm-up pass primes the DRAM cache, mirroring the paper's
	// measurement procedure. A random warm-up additionally sizes the
	// batch-dispatch scratch, so the timed passes allocate nothing.
	engine.SeqPass(sys, region)
	if random {
		if _, err := engine.RandPass(sys, region, 0x2B1A); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	var lines uint64
	for i := 0; i < b.N; i++ {
		if random {
			n, err := engine.RandPass(sys, region, 0x2B1A+uint32(i))
			if err != nil {
				b.Fatal(err)
			}
			lines += n
		} else {
			lines += engine.SeqPass(sys, region)
		}
	}
	if sec := b.Elapsed().Seconds(); sec > 0 {
		b.ReportMetric(float64(lines)/sec, "lines/s")
	}
}

func BenchmarkSimThroughputSeq2LM(b *testing.B)  { benchThroughput(b, core.Mode2LM, false) }
func BenchmarkSimThroughputSeq1LM(b *testing.B)  { benchThroughput(b, core.Mode1LM, false) }
func BenchmarkSimThroughputRand2LM(b *testing.B) { benchThroughput(b, core.Mode2LM, true) }
func BenchmarkSimThroughputRand1LM(b *testing.B) { benchThroughput(b, core.Mode1LM, true) }
