// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation. Each benchmark executes the corresponding experiment at
// a reduced footprint scale (so a full -bench=. pass stays tractable)
// and reports the figure's headline quantities as custom metrics —
// bandwidths in GB/s, amplifications, speedups — so `go test -bench`
// output reads like the paper's result tables.
//
// Absolute bandwidths come from the calibrated analytic model; what
// the benchmarks demonstrate is the *shape*: who wins, by what factor,
// and where the cliffs are. EXPERIMENTS.md records the side-by-side
// comparison with the published numbers.
package twolm_test

import (
	"strconv"
	"testing"

	"twolm/internal/engine"
	"twolm/internal/experiments"
)

// benchMicro is the microbenchmark configuration for the harness.
func benchMicro() experiments.MicroConfig {
	cfg := experiments.DefaultMicroConfig()
	cfg.Scale = 8192
	return cfg
}

// benchCNN is the CNN configuration for the harness.
func benchCNN() experiments.CNNConfig {
	cfg := experiments.DefaultCNNConfig()
	cfg.Scale = 8192
	return cfg
}

// benchGraph is the graph configuration for the harness.
func benchGraph() experiments.GraphConfig {
	cfg := experiments.DefaultGraphConfig()
	cfg.Scale = 16384
	cfg.SmallScale = 14
	cfg.LargeScale = 19
	cfg.PRRounds = 3
	return cfg
}

// cell parses a table cell as float.
func cell(b *testing.B, rows [][]string, r, c int) float64 {
	b.Helper()
	v, err := strconv.ParseFloat(rows[r][c], 64)
	if err != nil {
		b.Fatalf("cell (%d,%d) = %q: %v", r, c, rows[r][c], err)
	}
	return v
}

// BenchmarkFig2a regenerates Figure 2a: 1LM NVRAM read bandwidth vs
// thread count, sequential and random.
func BenchmarkFig2a(b *testing.B) {
	cfg := benchMicro()
	for i := 0; i < b.N; i++ {
		table, err := experiments.Fig2a(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			last := len(table.Rows) - 1
			b.ReportMetric(cell(b, table.Rows, last, 1), "seq-read-GB/s")
			b.ReportMetric(cell(b, table.Rows, last, 2), "rand64-read-GB/s")
		}
	}
}

// BenchmarkFig2b regenerates Figure 2b: 1LM NVRAM write bandwidth with
// nontemporal stores.
func BenchmarkFig2b(b *testing.B) {
	cfg := benchMicro()
	for i := 0; i < b.N; i++ {
		table, err := experiments.Fig2b(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			// Row at 4 threads is the peak.
			b.ReportMetric(cell(b, table.Rows, 2, 1), "seq-write-GB/s")
			b.ReportMetric(cell(b, table.Rows, 2, 2), "rand64-write-GB/s")
		}
	}
}

// BenchmarkTable1 regenerates Table I and reports the worst-case
// access amplification (the "up to 5 accesses" headline).
func BenchmarkTable1(b *testing.B) {
	cfg := benchMicro()
	for i := 0; i < b.N; i++ {
		table, err := experiments.Table1(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			maxAmp := 0.0
			for r := range table.Rows {
				if amp := cell(b, table.Rows, r, 5); amp > maxAmp {
					maxAmp = amp
				}
			}
			b.ReportMetric(maxAmp, "max-amplification")
		}
	}
}

// BenchmarkFig4a regenerates Figure 4a: clean-read-miss bandwidth.
func BenchmarkFig4a(b *testing.B) {
	cfg := benchMicro()
	for i := 0; i < b.N; i++ {
		_, rows, err := experiments.Fig4a(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(rows[0].Effective, "seq-effective-GB/s")
			b.ReportMetric(rows[0].Amplif, "amplification")
		}
	}
}

// BenchmarkFig4b regenerates Figure 4b: dirty-write-miss bandwidth.
func BenchmarkFig4b(b *testing.B) {
	cfg := benchMicro()
	for i := 0; i < b.N; i++ {
		_, rows, err := experiments.Fig4b(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(rows[0].Effective, "seq-effective-GB/s")
			b.ReportMetric(rows[0].Amplif, "amplification")
		}
	}
}

// BenchmarkFig4c regenerates Figure 4c: RMW with DDO writebacks.
func BenchmarkFig4c(b *testing.B) {
	cfg := benchMicro()
	for i := 0; i < b.N; i++ {
		_, rows, err := experiments.Fig4c(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(rows[0].NVRAMWrite, "nvram-write-GB/s")
			b.ReportMetric(rows[0].Amplif, "amplification")
		}
	}
}

// BenchmarkFig5 regenerates Figure 5: one 2LM DenseNet 264 training
// iteration with its tag-event profile.
func BenchmarkFig5(b *testing.B) {
	cfg := benchCNN()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig5(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			ctr := res.Exec.Counters
			b.ReportMetric(ctr.HitRate(), "tag-hit-rate")
			dirtyShare := float64(ctr.TagMissDirty) / float64(ctr.TagMissDirty+ctr.TagMissClean)
			b.ReportMetric(dirtyShare, "dirty-miss-share")
			b.ReportMetric(res.Exec.Elapsed*float64(cfg.Scale), "runtime-s-unscaled")
		}
	}
}

// BenchmarkFig6 regenerates Figure 6: the dense-block kernel snapshot.
func BenchmarkFig6(b *testing.B) {
	cfg := benchCNN()
	for i := 0; i < b.N; i++ {
		table, err := experiments.Fig6(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 && len(table.Rows) > 0 {
			b.ReportMetric(float64(len(table.Rows)), "kernels-sampled")
		}
	}
}

// BenchmarkFig10 regenerates Figure 10: the AutoTM iteration trace and
// its forward/backward phase separation.
func BenchmarkFig10(b *testing.B) {
	cfg := benchCNN()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig10(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			fwdW := cell(b, res.PhaseTable.Rows, 0, 2)
			bwdR := cell(b, res.PhaseTable.Rows, 1, 1)
			b.ReportMetric(fwdW, "fwd-nvram-write-GB")
			b.ReportMetric(bwdR, "bwd-nvram-read-GB")
		}
	}
}

// BenchmarkTable2 regenerates Table II: 2LM vs AutoTM across the three
// networks, reporting the speedups the paper headlines.
func BenchmarkTable2(b *testing.B) {
	cfg := benchCNN()
	for i := 0; i < b.N; i++ {
		_, rows, err := experiments.Table2(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range rows {
				b.ReportMetric(r.Speedup, r.Network+"-speedup")
			}
		}
	}
}

// benchStudy caches the graph study across graph benchmarks within one
// bench process (it is deterministic and shared by Figures 7-9).
var benchStudy *experiments.Study

func getBenchStudy(b *testing.B) *experiments.Study {
	b.Helper()
	if benchStudy == nil {
		s, err := experiments.RunGraphStudy(benchGraph())
		if err != nil {
			b.Fatal(err)
		}
		benchStudy = s
	}
	return benchStudy
}

// BenchmarkFig7 regenerates Figure 7: graph kernels when the input
// fits versus exceeds the DRAM cache.
func BenchmarkFig7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		benchStudy = nil
		s := getBenchStudy(b)
		if i == 0 {
			table := s.Fig7()
			// Row 3 = small pr, row 7 = large pr.
			b.ReportMetric(cell(b, table.Rows, 3, 3), "fits-pr-dram-GB/s")
			b.ReportMetric(cell(b, table.Rows, 7, 3), "exceeds-pr-dram-GB/s")
			b.ReportMetric(cell(b, table.Rows, 7, 6), "exceeds-pr-amplification")
		}
	}
}

// BenchmarkFig8 regenerates Figure 8: total data moved, NUMA vs 2LM.
func BenchmarkFig8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := getBenchStudy(b)
		table := s.Fig8()
		if i == 0 {
			worst := 0.0
			for r := range table.Rows {
				if v := cell(b, table.Rows, r, 3); v > worst {
					worst = v
				}
			}
			b.ReportMetric(worst, "max-2lm-vs-numa-data")
		}
	}
}

// BenchmarkFig9 regenerates Figure 9: the pagerank traces.
func BenchmarkFig9(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := getBenchStudy(b)
		small, large := s.Fig9Traces()
		if i == 0 && small != nil && large != nil {
			sl := small.Samples()[small.Len()-2]
			ll := large.Samples()[large.Len()-2]
			b.ReportMetric(float64(sl.Delta.TagMissClean+sl.Delta.TagMissDirty), "fits-steady-misses")
			b.ReportMetric(float64(ll.Delta.TagMissClean+ll.Delta.TagMissDirty), "exceeds-steady-misses")
		}
	}
}

// BenchmarkSage regenerates the Section VII-A-2 comparison.
func BenchmarkSage(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := getBenchStudy(b)
		if i == 0 {
			var sum, n float64
			for _, kernel := range experiments.KernelNames {
				twolm := findRun(s, string(experiments.Mode2LMFlat), kernel)
				sg := findRun(s, string(experiments.ModeSage), kernel)
				if twolm != nil && sg != nil && sg.Result.Elapsed > 0 {
					sum += twolm.Result.Elapsed / sg.Result.Elapsed
					n++
				}
			}
			if n > 0 {
				b.ReportMetric(sum/n, "avg-sage-speedup")
			}
		}
	}
}

// BenchmarkAblationDDO quantifies the Dirty Data Optimization: the
// RMW workload with and without the tag-check elision.
func BenchmarkAblationDDO(b *testing.B) {
	cfg := benchMicro()
	for i := 0; i < b.N; i++ {
		table, err := experiments.AblationDDO(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(cell(b, table.Rows, 0, 4), "amp-with-ddo")
			b.ReportMetric(cell(b, table.Rows, 1, 4), "amp-without-ddo")
		}
	}
}

// BenchmarkAblationWritePolicy contrasts allocate-on-write-miss with
// write-around on the dirty-write-miss workload.
func BenchmarkAblationWritePolicy(b *testing.B) {
	cfg := benchMicro()
	for i := 0; i < b.N; i++ {
		table, err := experiments.AblationWritePolicy(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(cell(b, table.Rows, 0, 6), "amp-allocate")
			b.ReportMetric(cell(b, table.Rows, 1, 6), "amp-write-around")
		}
	}
}

// BenchmarkAblationAssociativity reruns the DenseNet iteration at
// 1-way and 4-way — and reports the (near-null) improvement, which is
// the finding: DenseNet's misses are lifetime misses, not conflicts.
func BenchmarkAblationAssociativity(b *testing.B) {
	cfg := benchCNN()
	for i := 0; i < b.N; i++ {
		table, err := experiments.AblationAssociativity(cfg, []int{1, 4})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			rt1 := cell(b, table.Rows, 0, 1)
			rt4 := cell(b, table.Rows, 1, 1)
			b.ReportMetric(rt1/rt4, "4way-speedup")
		}
	}
}

// BenchmarkCoDesign runs the paper's closing proposal: AutoTM moves by
// CPU, by an I/O-class DMA engine, and by a co-designed mover.
func BenchmarkCoDesign(b *testing.B) {
	cfg := benchCNN()
	for i := 0; i < b.N; i++ {
		table, err := experiments.CoDesign(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			rt2 := cell(b, table.Rows, 0, 1)
			b.ReportMetric(rt2/cell(b, table.Rows, 1, 1), "cpu-sync-speedup")
			b.ReportMetric(rt2/cell(b, table.Rows, 2, 1), "ioat-speedup")
			b.ReportMetric(rt2/cell(b, table.Rows, 3, 1), "codesign-speedup")
		}
	}
}

// BenchmarkEmbedding runs the DLRM-style embedding-table study.
func BenchmarkEmbedding(b *testing.B) {
	cfg := experiments.DefaultEmbedConfig()
	cfg.Scale = 16384
	cfg.Model.RowsPerTable = 1 << 15
	for i := 0; i < b.N; i++ {
		table, err := experiments.EmbedStudy(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			// Inference throughput, both placements (Mlookups/s).
			b.ReportMetric(cell(b, table.Rows, 0, 2), "2lm-mlookups/s")
			b.ReportMetric(cell(b, table.Rows, 1, 2), "sw-mlookups/s")
		}
	}
}

// benchSuite is the quick-footprint suite configuration the engine
// benchmarks share.
func benchSuite() engine.SuiteConfig {
	return engine.DefaultSuiteConfig(8192, true)
}

// BenchmarkSuiteSerial runs the whole reproduction suite on a single
// worker — the historical sequential cmd/repro behavior.
func BenchmarkSuiteSerial(b *testing.B) {
	for i := 0; i < b.N; i++ {
		outs := engine.RunJobs(engine.Suite(benchSuite()), 1)
		if err := engine.FirstError(outs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSuiteParallel4 runs the same suite on four workers. The
// experiments are independent (each builds its own core.System), so
// wall clock should drop near-linearly until the longest single job —
// the graph study — becomes the critical path.
func BenchmarkSuiteParallel4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		outs := engine.RunJobs(engine.Suite(benchSuite()), 4)
		if err := engine.FirstError(outs); err != nil {
			b.Fatal(err)
		}
	}
}

// findRun locates a large-graph run by mode and kernel.
func findRun(s *experiments.Study, mode, kernel string) *experiments.GraphRun {
	for i := range s.Runs {
		r := &s.Runs[i]
		if r.Graph == s.Large.Name && string(r.Mode) == mode && r.Kernel == kernel {
			return r
		}
	}
	return nil
}
