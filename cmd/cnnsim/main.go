// Command cnnsim runs the paper's CNN training case study (Section V
// and Section VII-A-1): DenseNet 264 / ResNet 200 / Inception v4
// training iterations under the 2LM DRAM cache and under
// software-managed tensor movement (AutoTM).
//
// Usage:
//
//	cnnsim [-scale N] [-experiment all|fig5|fig6|fig10|table2] [-csv dir]
//
// With -csv, the per-kernel bandwidth/tag traces (Figures 5 and 10)
// are written as CSV files into the given directory.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"twolm/internal/experiments"
)

func main() {
	scale := flag.Uint64("scale", 1024, "footprint scale divisor (power of two)")
	which := flag.String("experiment", "all", "experiment: all, fig5, fig6, fig10, table2")
	csvDir := flag.String("csv", "", "directory to write trace CSVs into")
	flag.Parse()

	cfg := experiments.DefaultCNNConfig()
	cfg.Scale = *scale

	if err := run(cfg, *which, *csvDir); err != nil {
		fmt.Fprintln(os.Stderr, "cnnsim:", err)
		os.Exit(1)
	}
}

func run(cfg experiments.CNNConfig, which, csvDir string) error {
	all := which == "all"
	if all || which == "fig5" {
		res, err := experiments.Fig5(cfg)
		if err != nil {
			return err
		}
		fmt.Println(res.Summary.String())
		fmt.Println(res.Heatmap.String())
		fmt.Println(res.Liveness.String())
		if err := writeSeriesCSV(csvDir, "fig5_trace.csv", res); err != nil {
			return err
		}
	}
	if all || which == "fig6" {
		table, err := experiments.Fig6(cfg)
		if err != nil {
			return err
		}
		fmt.Println(table.String())
	}
	if all || which == "fig10" {
		res, err := experiments.Fig10(cfg)
		if err != nil {
			return err
		}
		fmt.Println(res.PhaseTable.String())
		if csvDir != "" {
			f, err := os.Create(filepath.Join(csvDir, "fig10_trace.csv"))
			if err != nil {
				return err
			}
			defer f.Close()
			if err := res.Trace.WriteCSV(f); err != nil {
				return err
			}
		}
	}
	if all || which == "table2" {
		table, _, err := experiments.Table2(cfg)
		if err != nil {
			return err
		}
		fmt.Println(table.String())
	}
	if !all {
		switch which {
		case "fig5", "fig6", "fig10", "table2":
		default:
			return fmt.Errorf("unknown experiment %q", which)
		}
	}
	return nil
}

func writeSeriesCSV(dir, name string, res *experiments.Fig5Result) error {
	if dir == "" {
		return nil
	}
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		return err
	}
	defer f.Close()
	return res.Trace.WriteCSV(f)
}
