// Command cnnsim runs the paper's CNN training case study (Section V
// and Section VII-A-1): DenseNet 264 / ResNet 200 / Inception v4
// training iterations under the 2LM DRAM cache and under
// software-managed tensor movement (AutoTM).
//
// Usage:
//
//	cnnsim [-scale N] [-quick] [-experiment all|fig5|fig6|fig10|table2]
//	       [-out dir] [-metrics-addr host:port]
//
// With -out, the per-kernel bandwidth/tag traces (Figures 5 and 10)
// are written as CSV files into the given directory (created if
// missing; this flag replaces the historical -csv). -quick shrinks the
// footprint to the 1/8192 sanity scale. -metrics-addr serves progress
// gauges and the traces' cumulative counters at /metrics while the
// study runs. -parallel and -channels are accepted for interface
// uniformity with the other binaries; this study runs its experiments
// sequentially on one modeled socket.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"twolm/internal/experiments"
	"twolm/internal/runcfg"
	"twolm/internal/telemetry"
)

// options is the parsed flag surface: the suite-wide runcfg block plus
// the study's bespoke experiment selector.
type options struct {
	rc    runcfg.Common
	which string
}

// parseFlags parses the command line into options without touching
// global flag state, so tests can drive the full surface.
func parseFlags(name string, args []string) (*options, error) {
	fs := flag.NewFlagSet(name, flag.ContinueOnError)
	o := &options{rc: runcfg.Defaults()}
	o.rc.Out = "" // print-only unless -out asks for trace CSVs
	o.rc.Register(fs)
	fs.StringVar(&o.which, "experiment", "all", "experiment: all, fig5, fig6, fig10, table2")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	return o, nil
}

// config resolves the experiment configuration; -quick overrides -scale
// with the 1/8192 sanity footprint.
func (o *options) config() experiments.CNNConfig {
	cfg := experiments.DefaultCNNConfig()
	cfg.Scale = o.rc.Scale
	if o.rc.Quick {
		cfg.Scale = 8192
	}
	return cfg
}

func main() {
	o, err := parseFlags("cnnsim", os.Args[1:])
	if err != nil {
		os.Exit(2)
	}
	if err := run(o.config(), o.which, o.rc); err != nil {
		fmt.Fprintln(os.Stderr, "cnnsim:", err)
		os.Exit(1)
	}
}

func run(cfg experiments.CNNConfig, which string, rc runcfg.Common) error {
	if err := rc.Validate(); err != nil {
		return err
	}
	prom, err := rc.Metrics()
	if err != nil {
		return err
	}
	if prom != nil {
		fmt.Printf("serving metrics at http://%s/metrics\n", rc.BoundAddr)
	}
	if rc.Out != "" {
		if err := os.MkdirAll(rc.Out, 0o755); err != nil {
			return err
		}
	}
	completed := func() {
		if prom != nil {
			prom.AddGauge("experiments_completed", "Experiments completed so far.", 1)
		}
	}

	all := which == "all"
	if all || which == "fig5" {
		res, err := experiments.Fig5(cfg)
		if err != nil {
			return err
		}
		fmt.Println(res.Summary.String())
		fmt.Println(res.Heatmap.String())
		fmt.Println(res.Liveness.String())
		if err := writeSeriesCSV(rc.Out, "fig5_trace.csv", res); err != nil {
			return err
		}
		if prom != nil {
			res.Trace.Emit(telemetry.WithLabel(prom, "fig5_trace"))
		}
		completed()
	}
	if all || which == "fig6" {
		table, err := experiments.Fig6(cfg)
		if err != nil {
			return err
		}
		fmt.Println(table.String())
		completed()
	}
	if all || which == "fig10" {
		res, err := experiments.Fig10(cfg)
		if err != nil {
			return err
		}
		fmt.Println(res.PhaseTable.String())
		if rc.Out != "" {
			f, err := os.Create(filepath.Join(rc.Out, "fig10_trace.csv"))
			if err != nil {
				return err
			}
			defer f.Close()
			if err := res.Trace.WriteCSV(f); err != nil {
				return err
			}
		}
		if prom != nil {
			res.Trace.Emit(telemetry.WithLabel(prom, "fig10_trace"))
		}
		completed()
	}
	if all || which == "table2" {
		table, _, err := experiments.Table2(cfg)
		if err != nil {
			return err
		}
		fmt.Println(table.String())
		completed()
	}
	if !all {
		switch which {
		case "fig5", "fig6", "fig10", "table2":
		default:
			return fmt.Errorf("unknown experiment %q", which)
		}
	}
	return nil
}

func writeSeriesCSV(dir, name string, res *experiments.Fig5Result) error {
	if dir == "" {
		return nil
	}
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		return err
	}
	defer f.Close()
	return res.Trace.WriteCSV(f)
}
