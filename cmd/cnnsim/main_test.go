package main

import (
	"strings"
	"testing"
)

// TestFlagSurface pins the shared runcfg flag set on cnnsim: every
// suite-wide flag — including -metrics-addr — parses into the Common
// block, the bespoke -experiment selector works beside them, and
// -quick overrides -scale in the resolved configuration.
func TestFlagSurface(t *testing.T) {
	o, err := parseFlags("cnnsim-test", []string{
		"-out", "artifacts",
		"-scale", "2048",
		"-parallel", "3",
		"-channels", "4",
		"-metrics-addr", "127.0.0.1:0",
		"-experiment", "fig10",
	})
	if err != nil {
		t.Fatal(err)
	}
	if o.rc.Out != "artifacts" || o.rc.Scale != 2048 || o.rc.Parallel != 3 ||
		o.rc.Channels != 4 || o.rc.MetricsAddr != "127.0.0.1:0" {
		t.Errorf("shared flags misparsed: %+v", o.rc)
	}
	if o.which != "fig10" {
		t.Errorf("-experiment misparsed: %q", o.which)
	}
	if got := o.config().Scale; got != 2048 {
		t.Errorf("config().Scale = %d, want 2048", got)
	}

	quick, err := parseFlags("cnnsim-test", []string{"-scale", "64", "-quick"})
	if err != nil {
		t.Fatal(err)
	}
	if got := quick.config().Scale; got != 8192 {
		t.Errorf("-quick config().Scale = %d, want 8192", got)
	}
}

// TestFlagValidation pins that malformed shared flags are rejected by
// the same runcfg validation every binary uses, before any experiment
// work starts.
func TestFlagValidation(t *testing.T) {
	for _, tc := range []struct {
		name string
		args []string
		want string
	}{
		{"bad-scale", []string{"-scale", "1000"}, "power of two"},
		{"bad-parallel", []string{"-parallel", "0"}, "-parallel"},
		{"bad-channels", []string{"-channels", "-2"}, "-channels"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			o, err := parseFlags("cnnsim-test", tc.args)
			if err != nil {
				t.Fatal(err)
			}
			err = run(o.config(), o.which, o.rc)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("run(%v) = %v, want error containing %q", tc.args, err, tc.want)
			}
		})
	}
}
