// Command repro regenerates every table and figure of the paper's
// evaluation in one run and writes the artifacts — rendered text
// tables, CSV data and trace files — into a results directory.
//
// Usage:
//
//	repro [-out results] [-scale 1024] [-quick] [-parallel N] [-channels N]
//	      [-cpuprofile f] [-memprofile f]
//
// -quick shrinks footprints (scale 8192, smaller graphs) for a fast
// sanity pass; the defaults match the calibrated study reported in
// EXPERIMENTS.md. -parallel runs the experiment suite on N workers
// (default: one per CPU); artifacts and report order are identical at
// every worker count because each experiment builds its own system and
// outcomes are merged by job order, not completion order. -channels
// sets the IMC channel count of the multichannel sharding self-check
// (default 6, the Cascade Lake socket).
//
// -cpuprofile and -memprofile write pprof profiles of the whole run,
// for chasing regressions in the simulator-throughput baseline that
// the suite also measures (BENCH_throughput.json in the output
// directory).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"time"

	"twolm/internal/engine"
)

func main() {
	out := flag.String("out", "results", "output directory")
	scale := flag.Uint64("scale", 1024, "footprint scale divisor (power of two)")
	quick := flag.Bool("quick", false, "small footprints for a fast pass")
	parallel := flag.Int("parallel", runtime.NumCPU(), "experiment worker count (1 = serial)")
	channels := flag.Int("channels", 6, "IMC channels in the sharding self-check")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "repro:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "repro:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}

	if err := run(*out, *scale, *quick, *parallel, *channels); err != nil {
		fmt.Fprintln(os.Stderr, "repro:", err)
		os.Exit(1)
	}

	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "repro:", err)
			os.Exit(1)
		}
		defer f.Close()
		runtime.GC() // settle the heap so the profile shows live objects
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "repro:", err)
			os.Exit(1)
		}
	}
}

// writeArtifact persists one artifact by payload type: tables as
// rendered .txt plus .csv data, counter series as .csv, text as .txt.
func writeArtifact(dir string, a engine.Artifact) error {
	switch {
	case a.Table != nil:
		fmt.Printf("== %s\n%s\n", a.Name, a.Table.String())
		txt, err := os.Create(filepath.Join(dir, a.Name+".txt"))
		if err != nil {
			return err
		}
		defer txt.Close()
		if err := a.Table.Fprint(txt); err != nil {
			return err
		}
		csv, err := os.Create(filepath.Join(dir, a.Name+".csv"))
		if err != nil {
			return err
		}
		defer csv.Close()
		return a.Table.WriteCSV(csv)
	case a.Series != nil:
		f, err := os.Create(filepath.Join(dir, a.Name+".csv"))
		if err != nil {
			return err
		}
		defer f.Close()
		return a.Series.WriteCSV(f)
	case a.Text != "":
		return os.WriteFile(filepath.Join(dir, a.Name+".txt"), []byte(a.Text), 0o644)
	}
	return nil
}

// run executes the suite on the worker pool and writes artifacts in
// job order, so the report reads identically at any worker count.
func run(dir string, scale uint64, quick bool, parallel, channels int) error {
	// Reject bad input up front: the pool reports job errors only after
	// the whole suite drains, which is the wrong place to learn about a
	// typo in a flag.
	if scale == 0 || scale&(scale-1) != 0 {
		return fmt.Errorf("-scale %d must be a nonzero power of two", scale)
	}
	if channels < 1 {
		return fmt.Errorf("-channels %d must be positive", channels)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	start := time.Now()

	cfg := engine.DefaultSuiteConfig(scale, quick)
	cfg.Multi.Channels = channels
	jobs := engine.Suite(cfg)
	if parallel > 1 {
		fmt.Printf("running %d experiments on %d workers\n", len(jobs), parallel)
	}
	outs := engine.RunJobs(jobs, parallel)

	for _, o := range outs {
		if o.Err != nil {
			return fmt.Errorf("%s: %w", o.Job, o.Err)
		}
		for _, a := range o.Artifacts {
			if err := writeArtifact(dir, a); err != nil {
				return fmt.Errorf("%s: %w", o.Job, err)
			}
		}
	}

	if err := writeThroughput(dir); err != nil {
		return fmt.Errorf("throughput baseline: %w", err)
	}

	fmt.Printf("all artifacts written to %s in %s\n", dir, time.Since(start).Round(time.Millisecond))
	return nil
}

// writeThroughput measures simulator throughput (the tracked perf
// baseline — see DESIGN.md) and writes BENCH_throughput.json.
func writeThroughput(dir string) error {
	report, err := engine.MeasureThroughput(engine.DefaultThroughputConfig())
	if err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, "BENCH_throughput.json"))
	if err != nil {
		return err
	}
	defer f.Close()
	if err := report.WriteThroughputJSON(f); err != nil {
		return err
	}
	for _, r := range report.Results {
		fmt.Printf("throughput %-22s %12.0f lines/s\n", r.Name, r.LinesPerSec)
	}
	return nil
}
