// Command repro regenerates every table and figure of the paper's
// evaluation in one run and writes the artifacts — rendered text
// tables, CSV data and trace files — into a results directory.
//
// Usage:
//
//	repro [-out results] [-scale 1024] [-quick] [-parallel N] [-channels N]
//	      [-metrics-addr host:port] [-cpuprofile f] [-memprofile f]
//
// -quick shrinks footprints (scale 8192, smaller graphs) for a fast
// sanity pass; the defaults match the calibrated study reported in
// EXPERIMENTS.md. -parallel runs the experiment suite on N workers
// (default: one per CPU); artifacts and report order are identical at
// every worker count because each experiment builds its own system and
// outcomes are merged by job order, not completion order. -channels
// sets the IMC channel count of the multichannel sharding self-check
// (default 6, the Cascade Lake socket).
//
// -metrics-addr serves the run live in Prometheus text exposition
// format at http://host:port/metrics: job-completion progress gauges,
// the multichannel scenarios' counter samples, and the throughput
// measurement's bandwidth samples. Independent of the endpoint, the
// throughput measurement always records a deterministic demand-indexed
// bandwidth trace to telemetry_throughput_trace.{csv,json} in the
// output directory.
//
// -cpuprofile and -memprofile write pprof profiles of the whole run,
// for chasing regressions in the simulator-throughput baseline that
// the suite also measures (BENCH_throughput.json in the output
// directory).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"time"

	"twolm/internal/engine"
	"twolm/internal/jobspec"
	"twolm/internal/runcfg"
	"twolm/internal/sweep"
	"twolm/internal/telemetry"
)

func main() {
	rc := runcfg.Defaults()
	rc.Register(flag.CommandLine)
	rc.RegisterJob(flag.CommandLine)
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "repro:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "repro:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}

	if err := run(rc); err != nil {
		fmt.Fprintln(os.Stderr, "repro:", err)
		os.Exit(1)
	}

	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "repro:", err)
			os.Exit(1)
		}
		defer f.Close()
		runtime.GC() // settle the heap so the profile shows live objects
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "repro:", err)
			os.Exit(1)
		}
	}
}

// writeArtifact persists one artifact by payload type: tables as
// rendered .txt plus .csv data, counter series as .csv, text as .txt.
func writeArtifact(dir string, a engine.Artifact) error {
	switch {
	case a.Table != nil:
		fmt.Printf("== %s\n%s\n", a.Name, a.Table.String())
		txt, err := os.Create(filepath.Join(dir, a.Name+".txt"))
		if err != nil {
			return err
		}
		defer txt.Close()
		if err := a.Table.Fprint(txt); err != nil {
			return err
		}
		csv, err := os.Create(filepath.Join(dir, a.Name+".csv"))
		if err != nil {
			return err
		}
		defer csv.Close()
		return a.Table.WriteCSV(csv)
	case a.Series != nil:
		f, err := os.Create(filepath.Join(dir, a.Name+".csv"))
		if err != nil {
			return err
		}
		defer f.Close()
		return a.Series.WriteCSV(f)
	case a.Text != "":
		return os.WriteFile(filepath.Join(dir, a.Name+".txt"), []byte(a.Text), 0o644)
	}
	return nil
}

// run executes the suite on the worker pool and writes artifacts in
// job order, so the report reads identically at any worker count.
// With -job it instead executes the one declared jobspec through the
// same shared path cmd/nvsweep and cmd/simd use, writing the
// byte-identical job_results artifacts.
func run(rc runcfg.Common) error {
	// Reject bad input up front: the pool reports job errors only after
	// the whole suite drains, which is the wrong place to learn about a
	// typo in a flag.
	if err := rc.Validate(); err != nil {
		return err
	}
	if js, err := rc.LoadJob(); err != nil {
		return err
	} else if js != nil {
		return runJob(rc, js)
	}
	prom, err := rc.Metrics()
	if err != nil {
		return err
	}
	if prom != nil {
		fmt.Printf("serving metrics at http://%s/metrics\n", rc.BoundAddr)
	}
	if err := os.MkdirAll(rc.Out, 0o755); err != nil {
		return err
	}
	start := time.Now()

	cfg := engine.DefaultSuiteConfig(rc.Scale, rc.Quick)
	cfg.Multi.Channels = rc.Channels
	if prom != nil {
		// The sharding self-check publishes each scenario's samples
		// under its scenario name; Prom locks internally, so it is safe
		// to share across parallel jobs.
		cfg.Multi.Telemetry = prom
		cfg.Multi.SampleEvery = 4096
	}
	jobs := engine.Suite(cfg)
	if rc.Parallel > 1 {
		fmt.Printf("running %d experiments on %d workers\n", len(jobs), rc.Parallel)
	}
	var observe func(engine.Outcome)
	if prom != nil {
		prom.SetGauge("jobs_total", "Experiment jobs in this run.", float64(len(jobs)))
		observe = func(engine.Outcome) {
			prom.AddGauge("jobs_completed", "Experiment jobs completed so far.", 1)
		}
	}
	outs := engine.RunJobsObserved(context.Background(), jobs, rc.Parallel, observe)

	for _, o := range outs {
		if o.Err != nil {
			return fmt.Errorf("%s: %w", o.Job, o.Err)
		}
		for _, a := range o.Artifacts {
			if err := writeArtifact(rc.Out, a); err != nil {
				return fmt.Errorf("%s: %w", o.Job, err)
			}
		}
	}

	if err := writeThroughput(rc.Out, prom); err != nil {
		return fmt.Errorf("throughput baseline: %w", err)
	}

	fmt.Printf("all artifacts written to %s in %s\n", rc.Out, time.Since(start).Round(time.Millisecond))
	return nil
}

// runJob executes one declared jobspec end to end through the shared
// sweep.RunJob path — the same execution every other front end uses,
// so the artifacts under -out are byte-identical to cmd/nvsweep -job
// and a simd POST of the same file. A timeout_ms in the spec is
// honored here too.
func runJob(rc runcfg.Common, js *jobspec.Spec) error {
	ctx := context.Background()
	if d := js.Timeout(); d > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, d)
		defer cancel()
	}
	start := time.Now()
	res, err := sweep.RunJob(ctx, *js, rc.Parallel, nil)
	if err != nil {
		return err
	}
	if err := res.Write(rc.Out); err != nil {
		return err
	}
	fmt.Printf("job %q: %d points, %d demand lines, artifacts in %s (%s)\n",
		res.Spec.Name, len(res.Rows), res.Lines, rc.Out, time.Since(start).Round(time.Millisecond))
	return nil
}

// throughputSampleEvery is the demand-line sampling interval of the
// throughput bandwidth trace: at the default 1/8192 measurement scale
// one pass covers ~786k demand lines, so this yields a few dozen
// samples per stream configuration.
const throughputSampleEvery = 65536

// writeThroughput measures simulator throughput (the tracked perf
// baseline — see DESIGN.md) and writes BENCH_throughput.json, plus a
// deterministic demand-indexed bandwidth trace of the measured runs
// (telemetry_throughput_trace.{csv,json}), the Figure 5/9-style
// artifact of the telemetry surface.
func writeThroughput(dir string, prom *telemetry.Prom) error {
	trace := telemetry.NewTraceSink(dir, "telemetry_throughput_trace")
	cfg := engine.DefaultThroughputConfig()
	cfg.SampleEvery = throughputSampleEvery
	if prom != nil {
		cfg.Telemetry = telemetry.Tee(trace, prom)
	} else {
		cfg.Telemetry = trace
	}
	report, err := engine.MeasureThroughput(cfg)
	if err != nil {
		return err
	}
	if err := trace.Close(); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, "BENCH_throughput.json"))
	if err != nil {
		return err
	}
	defer f.Close()
	if err := report.WriteThroughputJSON(f); err != nil {
		return err
	}
	for _, r := range report.Results {
		fmt.Printf("throughput %-22s %12.0f lines/s\n", r.Name, r.LinesPerSec)
	}
	return nil
}
