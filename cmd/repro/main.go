// Command repro regenerates every table and figure of the paper's
// evaluation in one run and writes the artifacts — rendered text
// tables, CSV data and trace files — into a results directory.
//
// Usage:
//
//	repro [-out results] [-scale 1024] [-quick]
//
// -quick shrinks footprints (scale 8192, smaller graphs) for a fast
// sanity pass; the defaults match the calibrated study reported in
// EXPERIMENTS.md.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"twolm/internal/experiments"
	"twolm/internal/perfcounter"
	"twolm/internal/results"
)

func main() {
	out := flag.String("out", "results", "output directory")
	scale := flag.Uint64("scale", 1024, "footprint scale divisor (power of two)")
	quick := flag.Bool("quick", false, "small footprints for a fast pass")
	flag.Parse()

	if err := run(*out, *scale, *quick); err != nil {
		fmt.Fprintln(os.Stderr, "repro:", err)
		os.Exit(1)
	}
}

// artifact writes a table as both .txt and .csv.
func artifact(dir, name string, t *results.Table) error {
	fmt.Printf("== %s\n%s\n", name, t.String())
	txt, err := os.Create(filepath.Join(dir, name+".txt"))
	if err != nil {
		return err
	}
	defer txt.Close()
	if err := t.Fprint(txt); err != nil {
		return err
	}
	csv, err := os.Create(filepath.Join(dir, name+".csv"))
	if err != nil {
		return err
	}
	defer csv.Close()
	return t.WriteCSV(csv)
}

// trace writes a counter series as CSV.
func trace(dir, name string, s *perfcounter.Series) error {
	if s == nil {
		return nil
	}
	f, err := os.Create(filepath.Join(dir, name+".csv"))
	if err != nil {
		return err
	}
	defer f.Close()
	return s.WriteCSV(f)
}

func run(dir string, scale uint64, quick bool) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	start := time.Now()

	// --- microbenchmarks: Table I, Figures 2 and 4 -------------------
	micro := experiments.DefaultMicroConfig()
	micro.Scale = scale
	if quick {
		micro.Scale = 8192
	}
	step := func(name string, fn func() (*results.Table, error)) error {
		t, err := fn()
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		return artifact(dir, name, t)
	}
	if err := step("fig2a_nvram_read_bw", func() (*results.Table, error) { return experiments.Fig2a(micro) }); err != nil {
		return err
	}
	if err := step("fig2b_nvram_write_bw", func() (*results.Table, error) { return experiments.Fig2b(micro) }); err != nil {
		return err
	}
	if err := step("table1_access_amplification", func() (*results.Table, error) { return experiments.Table1(micro) }); err != nil {
		return err
	}
	fig4 := []struct {
		name string
		fn   func(experiments.MicroConfig) (*results.Table, []experiments.Fig4Row, error)
	}{
		{"fig4a_read_clean_miss", experiments.Fig4a},
		{"fig4b_write_dirty_miss", experiments.Fig4b},
		{"fig4c_rmw_ddo", experiments.Fig4c},
	}
	for _, f := range fig4 {
		t, _, err := f.fn(micro)
		if err != nil {
			return fmt.Errorf("%s: %w", f.name, err)
		}
		if err := artifact(dir, f.name, t); err != nil {
			return err
		}
	}

	// --- CNN case study: Figures 5, 6, 10 and Table II ---------------
	cnn := experiments.DefaultCNNConfig()
	cnn.Scale = scale
	if quick {
		cnn.Scale = 8192
	}
	fig5, err := experiments.Fig5(cnn)
	if err != nil {
		return fmt.Errorf("fig5: %w", err)
	}
	if err := artifact(dir, "fig5_densenet_summary", fig5.Summary); err != nil {
		return err
	}
	if err := artifact(dir, "fig5d_densenet_liveness", fig5.Liveness); err != nil {
		return err
	}
	heat, err := os.Create(filepath.Join(dir, "fig5d_heatmap.txt"))
	if err != nil {
		return err
	}
	if err := fig5.Heatmap.Fprint(heat); err != nil {
		heat.Close()
		return err
	}
	heat.Close()
	if err := trace(dir, "fig5_densenet_trace", fig5.Trace); err != nil {
		return err
	}
	fig6, err := experiments.Fig6(cnn)
	if err != nil {
		return fmt.Errorf("fig6: %w", err)
	}
	if err := artifact(dir, "fig6_dense_block_kernels", fig6); err != nil {
		return err
	}
	fig10, err := experiments.Fig10(cnn)
	if err != nil {
		return fmt.Errorf("fig10: %w", err)
	}
	if err := artifact(dir, "fig10_autotm_phases", fig10.PhaseTable); err != nil {
		return err
	}
	if err := trace(dir, "fig10_autotm_trace", fig10.Trace); err != nil {
		return err
	}
	table2, _, err := experiments.Table2(cnn)
	if err != nil {
		return fmt.Errorf("table2: %w", err)
	}
	if err := artifact(dir, "table2_cnn_2lm_vs_autotm", table2); err != nil {
		return err
	}

	// --- graph case study: Figures 7, 8, 9 and the Sage table --------
	gcfg := experiments.DefaultGraphConfig()
	if quick {
		gcfg.Scale = 16384
		gcfg.SmallScale = 14
		gcfg.LargeScale = 19
		gcfg.PRRounds = 3
	}
	study, err := experiments.RunGraphStudy(gcfg)
	if err != nil {
		return fmt.Errorf("graph study: %w", err)
	}
	if err := artifact(dir, "fig7_graph_kernels_2lm", study.Fig7()); err != nil {
		return err
	}
	if err := artifact(dir, "fig8_data_moved", study.Fig8()); err != nil {
		return err
	}
	if err := artifact(dir, "fig9_pagerank_traces", study.Fig9()); err != nil {
		return err
	}
	small, large := study.Fig9Traces()
	if err := trace(dir, "fig9a_pr_"+study.Small.Name, small); err != nil {
		return err
	}
	if err := trace(dir, "fig9bc_pr_"+study.Large.Name, large); err != nil {
		return err
	}
	if err := artifact(dir, "sage_vs_2lm", study.SageTable()); err != nil {
		return err
	}

	// --- ablations and co-design (beyond the paper's measurements) ---
	if err := step("ablation_ddo", func() (*results.Table, error) { return experiments.AblationDDO(micro) }); err != nil {
		return err
	}
	if err := step("ablation_write_policy", func() (*results.Table, error) { return experiments.AblationWritePolicy(micro) }); err != nil {
		return err
	}
	if err := step("ablation_associativity", func() (*results.Table, error) { return experiments.AblationAssociativity(cnn, nil) }); err != nil {
		return err
	}
	if err := step("codesign_dma", func() (*results.Table, error) { return experiments.CoDesign(cnn) }); err != nil {
		return err
	}
	embedCfg := experiments.DefaultEmbedConfig()
	if quick {
		embedCfg.Scale = 16384
		embedCfg.Model.RowsPerTable = 1 << 15
	}
	if err := step("embedding_dlrm", func() (*results.Table, error) { return experiments.EmbedStudy(embedCfg) }); err != nil {
		return err
	}

	// --- final acceptance pass: the paper's claims, re-verified ------
	claimsMicro := micro
	claimsCNN := cnn
	claimsGraphs := gcfg
	claimsTable, claims, err := experiments.CheckClaims(claimsMicro, claimsCNN, claimsGraphs)
	if err != nil {
		return fmt.Errorf("claims check: %w", err)
	}
	if err := artifact(dir, "claims_check", claimsTable); err != nil {
		return err
	}
	for _, c := range claims {
		if !c.Pass {
			return fmt.Errorf("claims check failed: %s (%s): measured %s, expected %s",
				c.ID, c.Text, c.Measured, c.Expected)
		}
	}

	fmt.Printf("all artifacts written to %s in %s\n", dir, time.Since(start).Round(time.Millisecond))
	return nil
}
