// Command nvbench runs the microbenchmark study of the paper: the 1LM
// NVRAM bandwidth sweeps (Figure 2), the 2LM per-access transaction
// counts (Table I), and the 2LM miss-regime bandwidth panels
// (Figure 4).
//
// Usage:
//
//	nvbench [-scale N] [-quick] [-experiment all|fig2a|fig2b|table1|fig4a|fig4b|fig4c]
//	        [-out dir] [-metrics-addr host:port]
//
// Results are printed as aligned text tables; with -out the tables
// are additionally written as CSVs into the given directory (created
// if missing). -quick shrinks the footprint to the 1/8192 sanity
// scale. -metrics-addr serves progress gauges at /metrics. -parallel
// and -channels are accepted for interface uniformity with the other
// binaries; the microbenchmarks run sequentially on one modeled
// socket.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"twolm/internal/experiments"
	"twolm/internal/results"
	"twolm/internal/runcfg"
)

func main() {
	rc := runcfg.Defaults()
	rc.Out = "" // print-only unless -out asks for table CSVs
	rc.Register(flag.CommandLine)
	which := flag.String("experiment", "all", "experiment to run: all, fig2a, fig2b, table1, fig4a, fig4b, fig4c")
	flag.Parse()

	cfg := experiments.DefaultMicroConfig()
	cfg.Scale = rc.Scale
	if rc.Quick {
		cfg.Scale = 8192
	}

	if err := run(cfg, *which, rc); err != nil {
		fmt.Fprintln(os.Stderr, "nvbench:", err)
		os.Exit(1)
	}
}

func run(cfg experiments.MicroConfig, which string, rc runcfg.Common) error {
	if err := rc.Validate(); err != nil {
		return err
	}
	prom, err := rc.Metrics()
	if err != nil {
		return err
	}
	if prom != nil {
		fmt.Printf("serving metrics at http://%s/metrics\n", rc.BoundAddr)
	}
	if rc.Out != "" {
		if err := os.MkdirAll(rc.Out, 0o755); err != nil {
			return err
		}
	}

	show := func(name string, t *results.Table, err error) error {
		if err != nil {
			return err
		}
		fmt.Println(t.String())
		if rc.Out != "" {
			f, err := os.Create(filepath.Join(rc.Out, name+".csv"))
			if err != nil {
				return err
			}
			defer f.Close()
			if err := t.WriteCSV(f); err != nil {
				return err
			}
		}
		if prom != nil {
			prom.AddGauge("experiments_completed", "Experiments completed so far.", 1)
		}
		return nil
	}
	// Figure 4 panels additionally render as bar charts, the way the
	// paper plots them.
	showRows := func(name string, t *results.Table, rows []experiments.Fig4Row, err error) error {
		if err := show(name, t, err); err != nil {
			return err
		}
		chart := results.NewBarChart("effective bandwidth by access mode", "GB/s")
		for _, r := range rows {
			chart.Add(r.Mode, r.Effective)
		}
		fmt.Println(chart.String())
		return nil
	}

	all := which == "all"
	if all || which == "fig2a" {
		t, err := experiments.Fig2a(cfg)
		if err := show("fig2a_nvram_read_bw", t, err); err != nil {
			return err
		}
	}
	if all || which == "fig2b" {
		t, err := experiments.Fig2b(cfg)
		if err := show("fig2b_nvram_write_bw", t, err); err != nil {
			return err
		}
	}
	if all || which == "table1" {
		t, err := experiments.Table1(cfg)
		if err := show("table1_access_amplification", t, err); err != nil {
			return err
		}
	}
	if all || which == "fig4a" {
		t, rows, err := experiments.Fig4a(cfg)
		if err := showRows("fig4a_read_clean_miss", t, rows, err); err != nil {
			return err
		}
	}
	if all || which == "fig4b" {
		t, rows, err := experiments.Fig4b(cfg)
		if err := showRows("fig4b_write_dirty_miss", t, rows, err); err != nil {
			return err
		}
	}
	if all || which == "fig4c" {
		t, rows, err := experiments.Fig4c(cfg)
		if err := showRows("fig4c_rmw_ddo", t, rows, err); err != nil {
			return err
		}
	}
	if !all {
		switch which {
		case "fig2a", "fig2b", "table1", "fig4a", "fig4b", "fig4c":
		default:
			return fmt.Errorf("unknown experiment %q", which)
		}
	}
	return nil
}
