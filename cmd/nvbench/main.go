// Command nvbench runs the microbenchmark study of the paper: the 1LM
// NVRAM bandwidth sweeps (Figure 2), the 2LM per-access transaction
// counts (Table I), and the 2LM miss-regime bandwidth panels
// (Figure 4).
//
// Usage:
//
//	nvbench [-scale N] [-experiment all|fig2a|fig2b|table1|fig4a|fig4b|fig4c]
//
// Results are printed as aligned text tables.
package main

import (
	"flag"
	"fmt"
	"os"

	"twolm/internal/experiments"
	"twolm/internal/results"
)

func main() {
	scale := flag.Uint64("scale", 1024, "footprint scale divisor (power of two)")
	which := flag.String("experiment", "all", "experiment to run: all, fig2a, fig2b, table1, fig4a, fig4b, fig4c")
	flag.Parse()

	cfg := experiments.DefaultMicroConfig()
	cfg.Scale = *scale

	if err := run(cfg, *which); err != nil {
		fmt.Fprintln(os.Stderr, "nvbench:", err)
		os.Exit(1)
	}
}

func run(cfg experiments.MicroConfig, which string) error {
	show := func(t *results.Table, err error) error {
		if err != nil {
			return err
		}
		fmt.Println(t.String())
		return nil
	}
	// Figure 4 panels additionally render as bar charts, the way the
	// paper plots them.
	showRows := func(t *results.Table, rows []experiments.Fig4Row, err error) error {
		if err := show(t, err); err != nil {
			return err
		}
		chart := results.NewBarChart("effective bandwidth by access mode", "GB/s")
		for _, r := range rows {
			chart.Add(r.Mode, r.Effective)
		}
		fmt.Println(chart.String())
		return nil
	}

	all := which == "all"
	if all || which == "fig2a" {
		if err := show(experiments.Fig2a(cfg)); err != nil {
			return err
		}
	}
	if all || which == "fig2b" {
		if err := show(experiments.Fig2b(cfg)); err != nil {
			return err
		}
	}
	if all || which == "table1" {
		if err := show(experiments.Table1(cfg)); err != nil {
			return err
		}
	}
	if all || which == "fig4a" {
		if err := showRows(experiments.Fig4a(cfg)); err != nil {
			return err
		}
	}
	if all || which == "fig4b" {
		if err := showRows(experiments.Fig4b(cfg)); err != nil {
			return err
		}
	}
	if all || which == "fig4c" {
		if err := showRows(experiments.Fig4c(cfg)); err != nil {
			return err
		}
	}
	if !all {
		switch which {
		case "fig2a", "fig2b", "table1", "fig4a", "fig4b", "fig4c":
		default:
			return fmt.Errorf("unknown experiment %q", which)
		}
	}
	return nil
}
