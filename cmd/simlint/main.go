// Command simlint runs the repro's invariant analyzers
// (internal/analysis/...): counterdrift, hotdiv, detrange, ctrmut,
// and resetcheck. It supports two modes:
//
// Standalone (the CI entry point; no toolchain invocation needed):
//
//	go run ./cmd/simlint ./...
//	go run ./cmd/simlint -list
//	go run ./cmd/simlint ./internal/imc ./internal/engine
//
// As a vet tool, speaking the cmd/go unit-checking protocol — the
// same JSON .cfg handshake golang.org/x/tools/go/analysis/unitchecker
// implements, reimplemented here on the standard library because the
// module deliberately has no dependencies:
//
//	go vet -vettool=$(which simlint) ./...
//
// Exit status: 0 clean; 1 usage or internal error; 2 findings (the
// vet convention).
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"strings"

	"twolm/internal/analysis/lintkit"
	"twolm/internal/analysis/simlint"
)

func main() {
	args := os.Args[1:]
	// Vet protocol handshakes come before flag parsing: cmd/go calls
	// the tool with -V=full for a cache-keying version fingerprint,
	// with -flags for the analyzer flag inventory, and then once per
	// package unit with a JSON config file argument.
	for _, a := range args {
		if strings.HasPrefix(a, "-V=") || strings.HasPrefix(a, "--V=") {
			printVersion()
			return
		}
		if a == "-flags" || a == "--flags" {
			fmt.Println("[]")
			return
		}
	}
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(runUnit(args[0]))
	}
	os.Exit(runStandalone(args))
}

// printVersion emits the version line cmd/go expects from a vet tool;
// the fingerprint must change when the tool's behavior changes, so it
// hashes the executable.
func printVersion() {
	h := sha256.New()
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			io.Copy(h, f)
			f.Close()
		}
	}
	fmt.Printf("simlint version devel buildID=%02x\n", h.Sum(nil)[:16])
}

// --- standalone mode -------------------------------------------------

func runStandalone(args []string) int {
	fs := flag.NewFlagSet("simlint", flag.ExitOnError)
	list := fs.Bool("list", false, "list analyzers and exit")
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: simlint [-list] [packages]\n\npackages are ./... style patterns or import paths; default ./...\n")
		fs.PrintDefaults()
	}
	fs.Parse(args)

	if *list {
		for _, r := range simlint.Rules() {
			fmt.Printf("%-13s %s\n", r.Analyzer.Name, r.Analyzer.Doc)
		}
		return 0
	}

	cwd, err := os.Getwd()
	if err != nil {
		return fail(err)
	}
	root, modulePath, err := findModule(cwd)
	if err != nil {
		return fail(err)
	}
	all, err := lintkit.DiscoverModule(root, modulePath)
	if err != nil {
		return fail(err)
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	paths, err := match(all, patterns, root, modulePath, cwd)
	if err != nil {
		return fail(err)
	}
	findings, err := simlint.Check(root, modulePath, paths)
	if err != nil {
		return fail(err)
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "simlint: %d finding(s)\n", len(findings))
		return 2
	}
	return 0
}

func fail(err error) int {
	fmt.Fprintln(os.Stderr, "simlint:", err)
	return 1
}

// findModule walks upward from dir to the enclosing go.mod.
func findModule(dir string) (root, modulePath string, err error) {
	for d := dir; ; {
		if _, statErr := os.Stat(filepath.Join(d, "go.mod")); statErr == nil {
			mp, err := lintkit.ModuleInfo(d)
			return d, mp, err
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("no go.mod above %s", dir)
		}
		d = parent
	}
}

// match expands ./...-style patterns against the module package list.
func match(all, patterns []string, root, modulePath, cwd string) ([]string, error) {
	rel, err := filepath.Rel(root, cwd)
	if err != nil {
		return nil, err
	}
	base := modulePath
	if rel != "." {
		base = modulePath + "/" + filepath.ToSlash(rel)
	}
	seen := map[string]bool{}
	var out []string
	for _, pat := range patterns {
		// Convert a relative pattern to an import-path pattern.
		ip := pat
		if pat == "." {
			ip = base
		} else if rest, ok := strings.CutPrefix(pat, "./"); ok {
			if rest == "..." {
				ip = base + "/..."
			} else {
				ip = base + "/" + strings.TrimSuffix(rest, "/")
			}
		}
		matched := false
		for _, p := range all {
			ok := p == ip
			if prefix, isTree := strings.CutSuffix(ip, "/..."); isTree {
				ok = p == prefix || strings.HasPrefix(p, prefix+"/")
				if prefix == modulePath {
					ok = true
				}
			}
			if ok && !seen[p] {
				seen[p] = true
				out = append(out, p)
			}
			matched = matched || ok
		}
		if !matched {
			return nil, fmt.Errorf("pattern %q matched no packages", pat)
		}
	}
	return out, nil
}

// --- vet tool mode ---------------------------------------------------

// vetConfig is the subset of cmd/go's unit-checking config the tool
// consumes (the full struct is defined in
// golang.org/x/tools/go/analysis/unitchecker and mirrored by cmd/go).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

func runUnit(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		return fail(err)
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return fail(fmt.Errorf("parsing %s: %w", cfgPath, err))
	}
	// Facts output must exist for downstream units even though
	// simlint's analyzers are fact-free.
	writeVetx := func() {
		if cfg.VetxOutput != "" {
			os.WriteFile(cfg.VetxOutput, []byte{}, 0o666)
		}
	}

	importPath := simlint.NormalizeImportPath(cfg.ImportPath)
	testVariant := importPath != cfg.ImportPath ||
		strings.HasSuffix(importPath, ".test") ||
		strings.HasSuffix(importPath, "_test")
	analyzers := simlint.AnalyzersFor(importPath)
	// Dependency-only units and test variants carry nothing to check:
	// the analyzers are production-code invariants, and the plain
	// package unit already covered the non-test files.
	if cfg.VetxOnly || testVariant || len(analyzers) == 0 {
		writeVetx()
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return fail(err)
		}
		files = append(files, f)
	}
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "gc", lookup)}
	if cfg.GoVersion != "" {
		conf.GoVersion = cfg.GoVersion
	}
	tpkg, err := conf.Check(importPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			writeVetx()
			return 0
		}
		return fail(err)
	}

	pkg := &lintkit.Package{
		Fset:       fset,
		Dir:        cfg.Dir,
		ImportPath: importPath,
		Files:      files,
		Types:      tpkg,
		Info:       info,
	}
	diags, err := lintkit.Run(pkg, analyzers)
	if err != nil {
		return fail(err)
	}
	writeVetx()
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: [%s] %s\n", fset.Position(d.Pos), d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}
