// Command simlint runs the repro's invariant analyzers
// (internal/analysis/...): counterdrift, hotdiv, detrange, ctrmut,
// resetcheck, and the interprocedural pair shardsafe and allocfree.
// It supports two modes:
//
// Standalone (the CI entry point; no toolchain invocation needed):
//
//	go run ./cmd/simlint ./...
//	go run ./cmd/simlint -list
//	go run ./cmd/simlint -suppressions -pin 2
//	go run ./cmd/simlint ./internal/imc ./internal/engine
//
// -suppressions prints the module's //lint:ignore inventory (one line
// per directive, then a total); with -pin N it exits nonzero unless
// the count equals N — the CI step that makes every new suppression a
// deliberate diff.
//
// As a vet tool, speaking the cmd/go unit-checking protocol — the
// same JSON .cfg handshake golang.org/x/tools/go/analysis/unitchecker
// implements, reimplemented here on the standard library because the
// module deliberately has no dependencies. Each unit delegates to the
// same whole-module source pipeline as standalone mode: the
// interprocedural analyzers need the full call graph, which gc export
// data (types only, no function bodies) cannot provide.
//
//	go vet -vettool=$(which simlint) ./...
//
// Exit status: 0 clean; 1 usage or internal error; 2 findings (the
// vet convention).
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"twolm/internal/analysis/lintkit"
	"twolm/internal/analysis/simlint"
)

func main() {
	args := os.Args[1:]
	// Vet protocol handshakes come before flag parsing: cmd/go calls
	// the tool with -V=full for a cache-keying version fingerprint,
	// with -flags for the analyzer flag inventory, and then once per
	// package unit with a JSON config file argument.
	for _, a := range args {
		if strings.HasPrefix(a, "-V=") || strings.HasPrefix(a, "--V=") {
			printVersion()
			return
		}
		if a == "-flags" || a == "--flags" {
			fmt.Println("[]")
			return
		}
	}
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(runUnit(args[0]))
	}
	os.Exit(runStandalone(args))
}

// printVersion emits the version line cmd/go expects from a vet tool;
// the fingerprint must change when the tool's behavior changes, so it
// hashes the executable.
func printVersion() {
	h := sha256.New()
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			io.Copy(h, f)
			f.Close()
		}
	}
	fmt.Printf("simlint version devel buildID=%02x\n", h.Sum(nil)[:16])
}

// --- standalone mode -------------------------------------------------

func runStandalone(args []string) int {
	fs := flag.NewFlagSet("simlint", flag.ExitOnError)
	list := fs.Bool("list", false, "list analyzers and exit")
	suppressions := fs.Bool("suppressions", false, "report every //lint:ignore directive in the module and exit")
	pin := fs.Int("pin", -1, "with -suppressions: fail unless the directive count equals this value")
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: simlint [-list] [-suppressions [-pin N]] [packages]\n\npackages are ./... style patterns or import paths; default ./...\n")
		fs.PrintDefaults()
	}
	fs.Parse(args)

	if *list {
		for _, r := range simlint.Rules() {
			fmt.Printf("%-13s %s\n", r.Analyzer.Name, r.Analyzer.Doc)
		}
		return 0
	}

	cwd, err := os.Getwd()
	if err != nil {
		return fail(err)
	}
	root, modulePath, err := findModule(cwd)
	if err != nil {
		return fail(err)
	}
	if *suppressions {
		return reportSuppressions(root, modulePath, *pin)
	}
	all, err := lintkit.DiscoverModule(root, modulePath)
	if err != nil {
		return fail(err)
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	paths, err := match(all, patterns, root, modulePath, cwd)
	if err != nil {
		return fail(err)
	}
	findings, err := simlint.Check(root, modulePath, paths)
	if err != nil {
		return fail(err)
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "simlint: %d finding(s)\n", len(findings))
		return 2
	}
	return 0
}

// reportSuppressions prints the module's //lint:ignore inventory and,
// when pin >= 0, enforces the audited count.
func reportSuppressions(root, modulePath string, pin int) int {
	sups, err := simlint.Suppressions(root, modulePath)
	if err != nil {
		return fail(err)
	}
	for _, sup := range sups {
		fmt.Println(sup)
	}
	fmt.Printf("%d suppression(s)\n", len(sups))
	if pin >= 0 && len(sups) != pin {
		fmt.Fprintf(os.Stderr, "simlint: suppression count %d does not match pinned count %d; audit the new directive and update the pin deliberately\n", len(sups), pin)
		return 2
	}
	return 0
}

func fail(err error) int {
	fmt.Fprintln(os.Stderr, "simlint:", err)
	return 1
}

// findModule walks upward from dir to the enclosing go.mod.
func findModule(dir string) (root, modulePath string, err error) {
	for d := dir; ; {
		if _, statErr := os.Stat(filepath.Join(d, "go.mod")); statErr == nil {
			mp, err := lintkit.ModuleInfo(d)
			return d, mp, err
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("no go.mod above %s", dir)
		}
		d = parent
	}
}

// match expands ./...-style patterns against the module package list.
func match(all, patterns []string, root, modulePath, cwd string) ([]string, error) {
	rel, err := filepath.Rel(root, cwd)
	if err != nil {
		return nil, err
	}
	base := modulePath
	if rel != "." {
		base = modulePath + "/" + filepath.ToSlash(rel)
	}
	seen := map[string]bool{}
	var out []string
	for _, pat := range patterns {
		// Convert a relative pattern to an import-path pattern.
		ip := pat
		if pat == "." {
			ip = base
		} else if rest, ok := strings.CutPrefix(pat, "./"); ok {
			if rest == "..." {
				ip = base + "/..."
			} else {
				ip = base + "/" + strings.TrimSuffix(rest, "/")
			}
		}
		matched := false
		for _, p := range all {
			ok := p == ip
			if prefix, isTree := strings.CutSuffix(ip, "/..."); isTree {
				ok = p == prefix || strings.HasPrefix(p, prefix+"/")
				if prefix == modulePath {
					ok = true
				}
			}
			if ok && !seen[p] {
				seen[p] = true
				out = append(out, p)
			}
			matched = matched || ok
		}
		if !matched {
			return nil, fmt.Errorf("pattern %q matched no packages", pat)
		}
	}
	return out, nil
}

// --- vet tool mode ---------------------------------------------------

// vetConfig is the subset of cmd/go's unit-checking config the tool
// consumes (the full struct is defined in
// golang.org/x/tools/go/analysis/unitchecker and mirrored by cmd/go).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

func runUnit(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		return fail(err)
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return fail(fmt.Errorf("parsing %s: %w", cfgPath, err))
	}
	// Facts output must exist for downstream units even though
	// simlint's analyzers are fact-free.
	writeVetx := func() {
		if cfg.VetxOutput != "" {
			os.WriteFile(cfg.VetxOutput, []byte{}, 0o666)
		}
	}

	importPath := simlint.NormalizeImportPath(cfg.ImportPath)
	testVariant := importPath != cfg.ImportPath ||
		strings.HasSuffix(importPath, ".test") ||
		strings.HasSuffix(importPath, "_test")
	analyzers := simlint.AnalyzersFor(importPath)
	// Dependency-only units and test variants carry nothing to check:
	// the analyzers are production-code invariants, and the plain
	// package unit already covered the non-test files.
	if cfg.VetxOnly || testVariant || len(analyzers) == 0 {
		writeVetx()
		return 0
	}

	// The unit config hands us one package's files plus gc export data
	// for its imports — types without function bodies. The
	// interprocedural analyzers (shardsafe, allocfree, cross-package
	// detrange) need callee bodies across the whole module, so instead
	// of typechecking the unit in isolation this mode finds the module
	// root above the unit's directory and runs the same source pipeline
	// as standalone mode, scoped to this unit's import path. Slower per
	// unit, but the answers agree with `simlint ./...` by construction.
	root, modulePath, err := findModule(cfg.Dir)
	if err != nil {
		return fail(err)
	}
	findings, err := simlint.Check(root, modulePath, []string{importPath})
	if err != nil {
		// cmd/go sets SucceedOnTypecheckFailure for `go vet` runs where
		// the compiler will report the error anyway; a module that does
		// not typecheck from source falls under the same contract.
		if cfg.SucceedOnTypecheckFailure {
			writeVetx()
			return 0
		}
		return fail(err)
	}
	writeVetx()
	for _, f := range findings {
		fmt.Fprintf(os.Stderr, "%s: [%s] %s\n", f.Position, f.Analyzer, f.Message)
	}
	if len(findings) > 0 {
		return 2
	}
	return 0
}
