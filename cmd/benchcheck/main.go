// Command benchcheck guards the tracked perf-trajectory baseline.
//
// The repository commits BENCH_throughput.json — the measured
// simulator throughput of the four SimThroughput stream
// configurations plus the sweep-engine jobs/sec entry
// (sweep_jobs_per_sec, the pooled-controller design-space sweep over
// the committed 1024-point benchmark grid) — so the perf trajectory
// lives in git rather than in benchmark lore. benchcheck re-measures
// on the current tree and fails (exit 1) when any configuration
// regresses more than -tolerance below the committed baseline; CI
// runs it as the bench-smoke gate. Stream entries are compared on
// lines/sec, the sweep entry on jobs/sec (ThroughputResult.Rate).
//
//	benchcheck                  # compare against BENCH_throughput.json
//	benchcheck -tolerance 0.10  # explicit regression budget
//	benchcheck -update          # re-measure and rewrite the baseline
//
// Measurement noise is tamed the way the benchmarks themselves are
// read: -trials independent measurements per run, comparing the best
// observed throughput per configuration (the best run is the one with
// the least scheduler interference, and the simulator is
// deterministic, so best-of-N converges on the machine's true rate).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"twolm/internal/engine"
	"twolm/internal/sweep"
)

func main() {
	baseline := flag.String("baseline", "BENCH_throughput.json", "committed baseline file")
	tolerance := flag.Float64("tolerance", 0.10, "allowed fractional regression per configuration")
	update := flag.Bool("update", false, "re-measure and rewrite the baseline file")
	trials := flag.Int("trials", 3, "independent measurements; best per configuration is kept")
	scale := flag.Uint64("scale", 0, "footprint scale divisor (0 = the baseline's default)")
	passes := flag.Int("passes", 0, "timed passes per measurement (0 = the baseline's default)")
	flag.Parse()

	if err := run(*baseline, *tolerance, *update, *trials, *scale, *passes, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchcheck:", err)
		os.Exit(1)
	}
}

func run(baseline string, tolerance float64, update bool, trials int, scale uint64, passes int, w io.Writer) error {
	if tolerance < 0 || tolerance >= 1 {
		return fmt.Errorf("-tolerance %v must be in [0, 1)", tolerance)
	}
	if trials < 1 {
		return fmt.Errorf("-trials %d must be positive", trials)
	}
	cfg := engine.DefaultThroughputConfig()
	if scale != 0 {
		cfg.Scale = scale
	}
	if passes != 0 {
		cfg.Passes = passes
	}

	current, err := measureBest(cfg, trials)
	if err != nil {
		return err
	}
	sweepRes, err := measureSweepBest(trials)
	if err != nil {
		return err
	}
	current.Results = append(current.Results, sweepRes)
	if update {
		f, err := os.Create(baseline)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := current.WriteThroughputJSON(f); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %s (%d configurations, best of %d trials)\n",
			baseline, len(current.Results), trials)
		return nil
	}

	base, err := readReport(baseline)
	if err != nil {
		return fmt.Errorf("%w (run benchcheck -update to create the baseline)", err)
	}
	regressions, err := compare(w, base, current, tolerance)
	if err != nil {
		return err
	}
	if regressions > 0 {
		return fmt.Errorf("%d configuration(s) regressed more than %.0f%% below %s",
			regressions, tolerance*100, baseline)
	}
	fmt.Fprintf(w, "ok: all %d configurations within %.0f%% of %s\n",
		len(base.Results), tolerance*100, baseline)
	return nil
}

// measureBest runs the measurement `trials` times and keeps, per
// configuration, the trial with the highest throughput.
func measureBest(cfg engine.ThroughputConfig, trials int) (*engine.ThroughputReport, error) {
	var best *engine.ThroughputReport
	for i := 0; i < trials; i++ {
		rep, err := engine.MeasureThroughput(cfg)
		if err != nil {
			return nil, err
		}
		if best == nil {
			best = rep
			continue
		}
		for j := range rep.Results {
			if j < len(best.Results) && rep.Results[j].Rate() > best.Results[j].Rate() {
				best.Results[j] = rep.Results[j]
			}
		}
	}
	return best, nil
}

// measureSweepBest runs the committed sweep benchmark grid `trials`
// times on the pooled-controller runner and keeps the fastest trial.
// The runner (and its per-geometry controller arena) is built once
// and an untimed warm-up sweep populates the arena, so trials measure
// the steady state the benchmark gates — the same protocol as
// BenchmarkSweepThroughput.
func measureSweepBest(trials int) (engine.ThroughputResult, error) {
	r, err := sweep.New(sweep.BenchmarkSpec())
	if err != nil {
		return engine.ThroughputResult{}, err
	}
	workers := runtime.NumCPU()
	if _, err := r.Run(context.Background(), workers, nil); err != nil {
		return engine.ThroughputResult{}, err
	}
	best := engine.ThroughputResult{
		Name:    "sweep-bench-grid",
		Mode:    "2LM",
		Pattern: "sweep",
	}
	for i := 0; i < trials; i++ {
		start := time.Now()
		rows, err := r.Run(context.Background(), workers, nil)
		sec := time.Since(start).Seconds()
		if err != nil {
			return engine.ThroughputResult{}, err
		}
		var lines uint64
		for j := range rows {
			lines += rows[j].Lines
		}
		if jps := float64(len(rows)) / sec; jps > best.JobsPerSec {
			best.Lines = lines
			best.Seconds = sec
			best.LinesPerSec = float64(lines) / sec
			best.JobsPerSec = jps
		}
	}
	return best, nil
}

// requiredConfigs are the stream configurations every baseline must
// gate: the sequential entries pin the closed-form set-stride fold's
// throughput, the random entries the batched dispatch path. A baseline
// missing any of them (say, rewritten by an older tool) fails loudly
// instead of silently ungating that path.
var requiredConfigs = []string{
	"sequential-2LM", "lfsr-random-2LM", "sequential-1LM", "lfsr-random-1LM",
}

func readReport(path string) (*engine.ThroughputReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep engine.ThroughputReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(rep.Results) == 0 {
		return nil, fmt.Errorf("%s: baseline has no results", path)
	}
	have := map[string]bool{}
	for _, r := range rep.Results {
		have[r.Name] = true
	}
	for _, name := range requiredConfigs {
		if !have[name] {
			return nil, fmt.Errorf("%s: baseline lacks required configuration %q", path, name)
		}
	}
	return &rep, nil
}

// compare prints the per-configuration table and returns how many
// configurations fell more than tolerance below the baseline. Every
// baseline configuration must be present in the current measurement.
// Each configuration is compared on its own gated figure
// (ThroughputResult.Rate): lines/sec for stream entries, jobs/sec for
// sweep entries.
func compare(w io.Writer, base, current *engine.ThroughputReport, tolerance float64) (int, error) {
	byName := map[string]float64{}
	for _, r := range current.Results {
		byName[r.Name] = r.Rate()
	}
	regressions := 0
	fmt.Fprintf(w, "%-24s %14s %14s %8s\n", "configuration", "baseline", "current", "ratio")
	for _, b := range base.Results {
		cur, ok := byName[b.Name]
		if !ok {
			return 0, fmt.Errorf("configuration %q in baseline but not measured", b.Name)
		}
		rate := b.Rate()
		ratio := 0.0
		if rate > 0 {
			ratio = cur / rate
		}
		verdict := ""
		if cur < rate*(1-tolerance) {
			regressions++
			verdict = "  REGRESSED"
		}
		fmt.Fprintf(w, "%-24s %14.0f %14.0f %7.2fx%s\n", b.Name, rate, cur, ratio, verdict)
	}
	return regressions, nil
}
