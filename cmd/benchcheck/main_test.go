package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"twolm/internal/engine"
)

func report(rates map[string]float64) *engine.ThroughputReport {
	rep := &engine.ThroughputReport{Benchmark: "SimThroughput"}
	// Fixed order mirrors MeasureThroughput's deterministic output.
	for _, name := range []string{
		"sequential-2LM", "lfsr-random-2LM", "sequential-1LM", "lfsr-random-1LM",
	} {
		if lps, ok := rates[name]; ok {
			rep.Results = append(rep.Results, engine.ThroughputResult{
				Name: name, LinesPerSec: lps,
			})
		}
	}
	return rep
}

// TestCompareWithinTolerance: a run within the regression budget
// reports zero regressions, including slightly-below-baseline rates.
func TestCompareWithinTolerance(t *testing.T) {
	base := report(map[string]float64{
		"sequential-2LM": 100, "lfsr-random-2LM": 200,
		"sequential-1LM": 300, "lfsr-random-1LM": 400,
	})
	cur := report(map[string]float64{
		"sequential-2LM": 95, "lfsr-random-2LM": 250,
		"sequential-1LM": 271, "lfsr-random-1LM": 400,
	})
	var buf bytes.Buffer
	n, err := compare(&buf, base, cur, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Errorf("compare flagged %d regressions, want 0:\n%s", n, buf.String())
	}
}

// TestCompareFlagsRegression: any configuration more than tolerance
// below baseline is counted and marked in the table.
func TestCompareFlagsRegression(t *testing.T) {
	base := report(map[string]float64{"sequential-2LM": 100, "lfsr-random-2LM": 200})
	cur := report(map[string]float64{"sequential-2LM": 100, "lfsr-random-2LM": 150})
	var buf bytes.Buffer
	n, err := compare(&buf, base, cur, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Errorf("compare flagged %d regressions, want 1:\n%s", n, buf.String())
	}
	if !strings.Contains(buf.String(), "REGRESSED") {
		t.Errorf("table missing REGRESSED marker:\n%s", buf.String())
	}
}

// TestCompareMissingConfiguration: a baseline configuration absent
// from the measurement is an error, not a silent pass.
func TestCompareMissingConfiguration(t *testing.T) {
	base := report(map[string]float64{"sequential-2LM": 100, "lfsr-random-2LM": 200})
	cur := report(map[string]float64{"sequential-2LM": 100})
	var buf bytes.Buffer
	if _, err := compare(&buf, base, cur, 0.10); err == nil {
		t.Error("missing configuration not reported")
	}
}

// TestCompareGatesSweepOnJobsPerSec: a sweep entry is compared on
// jobs/sec (Rate), not on its informational lines/sec — a job-rate
// regression is flagged even when the line rate improves.
func TestCompareGatesSweepOnJobsPerSec(t *testing.T) {
	base := &engine.ThroughputReport{Results: []engine.ThroughputResult{
		{Name: "sweep-bench-grid", LinesPerSec: 1e6, JobsPerSec: 1000},
	}}
	cur := &engine.ThroughputReport{Results: []engine.ThroughputResult{
		{Name: "sweep-bench-grid", LinesPerSec: 1e9, JobsPerSec: 800},
	}}
	var buf bytes.Buffer
	n, err := compare(&buf, base, cur, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Errorf("compare flagged %d regressions, want 1 (jobs/sec fell 20%%):\n%s", n, buf.String())
	}
}

// TestMeasureSweepSmoke: the sweep measurement produces a plausible
// sweep-bench-grid entry whose gated figure is the jobs rate.
func TestMeasureSweepSmoke(t *testing.T) {
	res, err := measureSweepBest(1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Name != "sweep-bench-grid" || res.Pattern != "sweep" {
		t.Errorf("unexpected identity %q/%q", res.Name, res.Pattern)
	}
	if res.JobsPerSec <= 0 || res.LinesPerSec <= 0 || res.Lines == 0 {
		t.Errorf("empty measurement: %+v", res)
	}
	if res.Rate() != res.JobsPerSec {
		t.Errorf("Rate() = %v, want the jobs rate %v", res.Rate(), res.JobsPerSec)
	}
}

// TestRunRejectsBadFlags pins the up-front validation.
func TestRunRejectsBadFlags(t *testing.T) {
	var buf bytes.Buffer
	if err := run("x.json", 1.5, false, 1, 0, 0, &buf); err == nil {
		t.Error("tolerance 1.5 accepted")
	}
	if err := run("x.json", 0.1, false, 0, 0, 0, &buf); err == nil {
		t.Error("zero trials accepted")
	}
}

// TestMeasureAgainstSelf is the end-to-end smoke: a fresh tiny
// measurement compared against itself passes at any tolerance.
func TestMeasureAgainstSelf(t *testing.T) {
	cfg := engine.ThroughputConfig{Scale: 1 << 16, Passes: 1, Seed: 1}
	rep, err := measureBest(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 4 {
		t.Fatalf("measured %d configurations, want 4", len(rep.Results))
	}
	var buf bytes.Buffer
	n, err := compare(&buf, rep, rep, 0)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Errorf("self-comparison flagged %d regressions:\n%s", n, buf.String())
	}
}

// TestBaselineRequiresStreamConfigs: a baseline file missing any of the
// four gated stream configurations — notably the sequential entries the
// set-stride fold is gated on — is rejected outright.
func TestBaselineRequiresStreamConfigs(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "baseline.json")
	rep := report(map[string]float64{
		"lfsr-random-2LM": 200, "sequential-1LM": 300, "lfsr-random-1LM": 400,
	})
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.WriteThroughputJSON(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if _, err := readReport(path); err == nil || !strings.Contains(err.Error(), "sequential-2LM") {
		t.Errorf("baseline without sequential-2LM accepted (err=%v)", err)
	}

	full := report(map[string]float64{
		"sequential-2LM": 100, "lfsr-random-2LM": 200,
		"sequential-1LM": 300, "lfsr-random-1LM": 400,
	})
	f, err = os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := full.WriteThroughputJSON(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if _, err := readReport(path); err != nil {
		t.Errorf("complete baseline rejected: %v", err)
	}
}
