package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestFlagSurface pins the shared runcfg flag set on nvtrace: every
// suite-wide flag parses into the Common block, the bespoke trace
// flags still work beside them, and -quick overrides -scale.
func TestFlagSurface(t *testing.T) {
	o, err := parseFlags("nvtrace-test", []string{
		"-out", "artifacts",
		"-scale", "2048",
		"-parallel", "3",
		"-channels", "4",
		"-metrics-addr", "127.0.0.1:0",
		"-replay", "trace.bin",
		"-mode", "1lm",
		"-threads", "8",
		"-no-ddo",
		"-ways", "4",
		"-write-around",
		"-op", "rmw",
		"-pattern", "rand",
		"-nt",
		"-array-mb", "16",
	})
	if err != nil {
		t.Fatal(err)
	}
	if o.rc.Out != "artifacts" || o.rc.Scale != 2048 || o.rc.Parallel != 3 ||
		o.rc.Channels != 4 || o.rc.MetricsAddr != "127.0.0.1:0" {
		t.Errorf("shared flags misparsed: %+v", o.rc)
	}
	if o.replay != "trace.bin" || o.mode != "1lm" || o.threads != 8 ||
		!o.noDDO || o.ways != 4 || !o.writeAround {
		t.Errorf("replay flags misparsed: %+v", o)
	}
	if o.op != "rmw" || o.pattern != "rand" || !o.nt || o.arrayMB != 16 {
		t.Errorf("record flags misparsed: %+v", o)
	}
	if o.scale() != 2048 {
		t.Errorf("scale() = %d, want 2048", o.scale())
	}

	quick, err := parseFlags("nvtrace-test", []string{"-scale", "64", "-quick"})
	if err != nil {
		t.Fatal(err)
	}
	if quick.scale() != quickScale {
		t.Errorf("-quick scale() = %d, want %d", quick.scale(), quickScale)
	}
}

// TestFlagValidation pins that malformed shared flags are rejected by
// the same runcfg validation every binary uses, and that the
// record/replay mode selection is enforced.
func TestFlagValidation(t *testing.T) {
	for _, tc := range []struct {
		name string
		args []string
		want string
	}{
		{"bad-scale", []string{"-replay", "x", "-scale", "1000"}, "power of two"},
		{"bad-parallel", []string{"-replay", "x", "-parallel", "0"}, "-parallel"},
		{"bad-channels", []string{"-replay", "x", "-channels", "-2"}, "-channels"},
		{"both-modes", []string{"-record", "a", "-replay", "b"}, "one of"},
		{"no-mode", nil, "required"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			o, err := parseFlags("nvtrace-test", tc.args)
			if err != nil {
				t.Fatal(err)
			}
			err = o.run()
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("run(%v) = %v, want error containing %q", tc.args, err, tc.want)
			}
		})
	}
}

// TestRecordReplayRoundTrip exercises the full pipeline in-process at
// a tiny footprint: record a kernel trace, replay it with -out, and
// check both artifacts exist and carry content.
func TestRecordReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "trace.bin")

	rec, err := parseFlags("nvtrace-test", []string{
		"-record", tracePath, "-op", "rmw", "-pattern", "rand",
		"-array-mb", "2", "-threads", "2", "-quick",
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := rec.run(); err != nil {
		t.Fatalf("record: %v", err)
	}
	if fi, err := os.Stat(tracePath); err != nil || fi.Size() == 0 {
		t.Fatalf("trace not written: %v", err)
	}

	out := filepath.Join(dir, "artifacts")
	rep, err := parseFlags("nvtrace-test", []string{
		"-replay", tracePath, "-threads", "2", "-quick", "-out", out,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.run(); err != nil {
		t.Fatalf("replay: %v", err)
	}
	sum, err := os.ReadFile(filepath.Join(out, "nvtrace_replay.json"))
	if err != nil {
		t.Fatalf("summary artifact: %v", err)
	}
	if !strings.Contains(string(sum), "\"ops\"") {
		t.Errorf("summary missing op count: %s", sum)
	}
	series, err := os.ReadFile(filepath.Join(out, "nvtrace_replay_series.csv"))
	if err != nil {
		t.Fatalf("series artifact: %v", err)
	}
	if !strings.Contains(string(series), "\n") {
		t.Errorf("series artifact empty: %q", series)
	}
}
