// Command nvtrace records and replays demand-access traces, the
// workflow behind the paper's deterministic rerun methodology: capture
// a workload's operation stream once, then replay it against
// differently configured memory systems for exact apples-to-apples
// counter comparisons.
//
// Record a microbenchmark trace:
//
//	nvtrace -record trace.bin -op rmw -pattern seq -size 420GB-equivalent...
//	nvtrace -record trace.bin -op rmw -array-mb 384
//
// Replay it against configurations:
//
//	nvtrace -replay trace.bin                 # hardware 2LM
//	nvtrace -replay trace.bin -mode 1lm       # app-direct
//	nvtrace -replay trace.bin -no-ddo         # DDO ablation
//	nvtrace -replay trace.bin -ways 4         # associativity ablation
//
// With -metrics-addr (the shared runcfg flag), a replay additionally
// serves its live counters in Prometheus exposition format at
// /metrics, sampled every 64Ki demand lines.
package main

import (
	"flag"
	"fmt"
	"os"

	"twolm/internal/core"
	"twolm/internal/imc"
	"twolm/internal/kernels"
	"twolm/internal/mem"
	"twolm/internal/platform"
	"twolm/internal/runcfg"
	"twolm/internal/telemetry"
	"twolm/internal/trace"
)

func main() {
	record := flag.String("record", "", "record a kernel trace to this file")
	replay := flag.String("replay", "", "replay a trace from this file")
	op := flag.String("op", "read", "kernel for -record: read, write, rmw")
	pattern := flag.String("pattern", "seq", "iteration order for -record: seq, rand")
	nt := flag.Bool("nt", false, "use nontemporal stores for -record")
	arrayMB := flag.Uint64("array-mb", 384, "array size in MiB for -record")
	threads := flag.Int("threads", 24, "modeled thread count")
	scale := flag.Uint64("scale", 1024, "platform footprint scale divisor")
	mode := flag.String("mode", "2lm", "replay mode: 2lm, 1lm")
	noDDO := flag.Bool("no-ddo", false, "replay with the Dirty Data Optimization disabled")
	ways := flag.Int("ways", 1, "replay DRAM-cache associativity")
	writeAround := flag.Bool("write-around", false, "replay without write-miss allocation")
	var rc runcfg.Common
	rc.RegisterMetrics(flag.CommandLine)
	flag.Parse()

	var err error
	switch {
	case *record != "" && *replay != "":
		err = fmt.Errorf("choose one of -record or -replay")
	case *record != "":
		err = doRecord(*record, *op, *pattern, *nt, *arrayMB, *threads, *scale)
	case *replay != "":
		err = doReplay(*replay, *mode, *scale, *threads, *noDDO, *ways, *writeAround, &rc)
	default:
		flag.Usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "nvtrace:", err)
		os.Exit(1)
	}
}

// newSystem builds the configured platform.
func newSystem(mode string, scale uint64, threads int, noDDO bool, ways int, writeAround bool) (*core.System, error) {
	cfg := core.Config{Platform: platform.CascadeLake(1, scale, threads)}
	switch mode {
	case "2lm":
		cfg.Mode = core.Mode2LM
		policy := imc.HardwarePolicy()
		policy.DisableDDO = noDDO
		policy.Ways = ways
		policy.WriteAllocate = !writeAround
		cfg.Policy = &policy
	case "1lm":
		cfg.Mode = core.Mode1LM
	default:
		return nil, fmt.Errorf("unknown mode %q", mode)
	}
	return core.New(cfg)
}

func doRecord(path, op, pattern string, nt bool, arrayMB uint64, threads int, scale uint64) error {
	sys, err := newSystem("2lm", scale, threads, false, 1, false)
	if err != nil {
		return err
	}
	region, err := sys.AddressSpace().Alloc(arrayMB * mem.MiB)
	if err != nil {
		return err
	}

	spec := kernels.Spec{Threads: threads}
	switch op {
	case "read":
		spec.Op = kernels.ReadOnly
	case "write":
		spec.Op = kernels.WriteOnly
	case "rmw":
		spec.Op = kernels.ReadModifyWrite
	default:
		return fmt.Errorf("unknown op %q", op)
	}
	switch pattern {
	case "seq":
		spec.Pattern = mem.Sequential
	case "rand":
		spec.Pattern = mem.Random
	default:
		return fmt.Errorf("unknown pattern %q", pattern)
	}
	if nt {
		spec.Store = kernels.Nontemporal
	}

	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := trace.NewWriter(f)
	w.Attach(sys)
	res, err := kernels.Run(sys, region, spec)
	trace.Detach(sys)
	if err != nil {
		return err
	}
	w.Sync(spec.Name(), 0)
	if err := w.Close(); err != nil {
		return err
	}
	fmt.Printf("recorded %d operations (%s) to %s\n", w.Ops(), spec.Name(), path)
	fmt.Printf("while recording: %s\n", res.Delta)
	return nil
}

func doReplay(path, mode string, scale uint64, threads int, noDDO bool, ways int, writeAround bool, rc *runcfg.Common) error {
	sys, err := newSystem(mode, scale, threads, noDDO, ways, writeAround)
	if err != nil {
		return err
	}
	prom, err := rc.Metrics()
	if err != nil {
		return err
	}
	if prom != nil {
		fmt.Printf("serving metrics at http://%s/metrics\n", rc.BoundAddr)
		sys.SetTelemetry(telemetry.WithLabel(prom, "replay"), 1<<16)
	}
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()

	sys.SetThreads(threads)
	ops, err := trace.Replay(sys, f)
	if err != nil {
		return err
	}
	sys.DrainLLC()
	sys.Sync("drain", 0)
	sys.FlushTelemetry()
	if err := sys.ValidateCounters(); err != nil {
		return err
	}

	ctr := sys.Counters()
	fmt.Printf("replayed %d operations on %s\n", ops, sys)
	fmt.Printf("counters:      %s\n", ctr)
	fmt.Printf("amplification: %.2f\n", ctr.Amplification())
	fmt.Printf("hit rate:      %.3f\n", ctr.HitRate())
	fmt.Printf("elapsed:       %.6f s (model)\n", sys.Clock())
	return nil
}
