// Command nvtrace records and replays demand-access traces, the
// workflow behind the paper's deterministic rerun methodology: capture
// a workload's operation stream once, then replay it against
// differently configured memory systems for exact apples-to-apples
// counter comparisons.
//
// Record a microbenchmark trace:
//
//	nvtrace -record trace.bin -op rmw -pattern seq -size 420GB-equivalent...
//	nvtrace -record trace.bin -op rmw -array-mb 384
//
// Replay it against configurations:
//
//	nvtrace -replay trace.bin                 # hardware 2LM
//	nvtrace -replay trace.bin -mode 1lm       # app-direct
//	nvtrace -replay trace.bin -no-ddo         # DDO ablation
//	nvtrace -replay trace.bin -ways 4         # associativity ablation
//
// nvtrace accepts the full shared flag surface of the suite binaries
// (internal/runcfg): -scale and -quick size the modeled footprint,
// -out writes the replay's counter summary and sampled telemetry
// series as artifacts into the given directory, and -metrics-addr
// serves live counters in Prometheus exposition format at /metrics,
// sampled every 64Ki demand lines. -parallel and -channels are
// accepted for interface uniformity; trace replay is inherently
// serial (operation order is the whole point), so they only pass
// validation.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"twolm/internal/core"
	"twolm/internal/imc"
	"twolm/internal/kernels"
	"twolm/internal/mem"
	"twolm/internal/platform"
	"twolm/internal/runcfg"
	"twolm/internal/telemetry"
	"twolm/internal/trace"
)

// quickScale is the footprint divisor -quick selects, matching the
// other suite binaries' fast sanity pass.
const quickScale = 8192

// options is the parsed flag surface. Split from main so the parse
// and validation logic is testable without exec-ing the binary.
type options struct {
	rc          runcfg.Common
	record      string
	replay      string
	op          string
	pattern     string
	nt          bool
	arrayMB     uint64
	threads     int
	mode        string
	noDDO       bool
	ways        int
	writeAround bool
}

// parseFlags builds the nvtrace flag set over args (the arguments
// after the program name) and returns the parsed options.
func parseFlags(name string, args []string) (*options, error) {
	o := &options{rc: runcfg.Defaults()}
	o.rc.Out = "" // artifacts are optional; print-only by default
	fs := flag.NewFlagSet(name, flag.ContinueOnError)
	o.rc.Register(fs)
	fs.StringVar(&o.record, "record", "", "record a kernel trace to this file")
	fs.StringVar(&o.replay, "replay", "", "replay a trace from this file")
	fs.StringVar(&o.op, "op", "read", "kernel for -record: read, write, rmw")
	fs.StringVar(&o.pattern, "pattern", "seq", "iteration order for -record: seq, rand")
	fs.BoolVar(&o.nt, "nt", false, "use nontemporal stores for -record")
	fs.Uint64Var(&o.arrayMB, "array-mb", 384, "array size in MiB for -record")
	fs.IntVar(&o.threads, "threads", 24, "modeled thread count")
	fs.StringVar(&o.mode, "mode", "2lm", "replay mode: 2lm, 1lm")
	fs.BoolVar(&o.noDDO, "no-ddo", false, "replay with the Dirty Data Optimization disabled")
	fs.IntVar(&o.ways, "ways", 1, "replay DRAM-cache associativity")
	fs.BoolVar(&o.writeAround, "write-around", false, "replay without write-miss allocation")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	return o, nil
}

// scale resolves the effective footprint divisor: -quick overrides
// -scale with the sanity-pass footprint, as in the other binaries.
func (o *options) scale() uint64 {
	if o.rc.Quick {
		return quickScale
	}
	return o.rc.Scale
}

// run validates the options and dispatches the selected action.
func (o *options) run() error {
	if err := o.rc.Validate(); err != nil {
		return err
	}
	switch {
	case o.record != "" && o.replay != "":
		return fmt.Errorf("choose one of -record or -replay")
	case o.record != "":
		return o.doRecord()
	case o.replay != "":
		return o.doReplay()
	}
	return fmt.Errorf("one of -record or -replay is required")
}

func main() {
	o, err := parseFlags("nvtrace", os.Args[1:])
	if err != nil {
		os.Exit(2)
	}
	if err := o.run(); err != nil {
		fmt.Fprintln(os.Stderr, "nvtrace:", err)
		os.Exit(1)
	}
}

// newSystem builds the configured platform.
func (o *options) newSystem() (*core.System, error) {
	cfg := core.Config{Platform: platform.CascadeLake(1, o.scale(), o.threads)}
	switch o.mode {
	case "2lm":
		cfg.Mode = core.Mode2LM
		policy := imc.HardwarePolicy()
		policy.DisableDDO = o.noDDO
		policy.Ways = o.ways
		policy.WriteAllocate = !o.writeAround
		cfg.Policy = &policy
	case "1lm":
		cfg.Mode = core.Mode1LM
	default:
		return nil, fmt.Errorf("unknown mode %q", o.mode)
	}
	return core.New(cfg)
}

func (o *options) doRecord() error {
	// Recording always runs the hardware 2LM system; the point of a
	// trace is to replay the identical stream against variants.
	rec := *o
	rec.mode, rec.noDDO, rec.ways, rec.writeAround = "2lm", false, 1, false
	sys, err := rec.newSystem()
	if err != nil {
		return err
	}
	region, err := sys.AddressSpace().Alloc(o.arrayMB * mem.MiB)
	if err != nil {
		return err
	}

	spec := kernels.Spec{Threads: o.threads}
	switch o.op {
	case "read":
		spec.Op = kernels.ReadOnly
	case "write":
		spec.Op = kernels.WriteOnly
	case "rmw":
		spec.Op = kernels.ReadModifyWrite
	default:
		return fmt.Errorf("unknown op %q", o.op)
	}
	switch o.pattern {
	case "seq":
		spec.Pattern = mem.Sequential
	case "rand":
		spec.Pattern = mem.Random
	default:
		return fmt.Errorf("unknown pattern %q", o.pattern)
	}
	if o.nt {
		spec.Store = kernels.Nontemporal
	}

	f, err := os.Create(o.record)
	if err != nil {
		return err
	}
	defer f.Close()
	w := trace.NewWriter(f)
	w.Attach(sys)
	res, err := kernels.Run(sys, region, spec)
	trace.Detach(sys)
	if err != nil {
		return err
	}
	w.Sync(spec.Name(), 0)
	if err := w.Close(); err != nil {
		return err
	}
	fmt.Printf("recorded %d operations (%s) to %s\n", w.Ops(), spec.Name(), o.record)
	fmt.Printf("while recording: %s\n", res.Delta)
	return nil
}

// replaySummary is the -out artifact schema of a replay run.
type replaySummary struct {
	Trace         string  `json:"trace"`
	Mode          string  `json:"mode"`
	Scale         uint64  `json:"scale"`
	Ops           uint64  `json:"ops"`
	Counters      string  `json:"counters"`
	Amplification float64 `json:"amplification"`
	HitRate       float64 `json:"hit_rate"`
	ModelSeconds  float64 `json:"model_seconds"`
}

func (o *options) doReplay() error {
	sys, err := o.newSystem()
	if err != nil {
		return err
	}
	prom, err := o.rc.Metrics()
	if err != nil {
		return err
	}
	// The telemetry sink stack depends on which outputs were asked
	// for: a Recorder feeds the -out series artifact, the Prom
	// exporter the live endpoint, both labeled and sampled identically.
	var series *telemetry.Recorder
	var sinks []telemetry.Sink
	if o.rc.Out != "" {
		series = telemetry.NewRecorder()
		sinks = append(sinks, series)
	}
	if prom != nil {
		fmt.Printf("serving metrics at http://%s/metrics\n", o.rc.BoundAddr)
		sinks = append(sinks, prom)
	}
	if len(sinks) > 0 {
		sys.SetTelemetry(telemetry.WithLabel(telemetry.Tee(sinks...), "replay"), 1<<16)
	}
	f, err := os.Open(o.replay)
	if err != nil {
		return err
	}
	defer f.Close()

	sys.SetThreads(o.threads)
	ops, err := trace.Replay(sys, f)
	if err != nil {
		return err
	}
	sys.DrainLLC()
	sys.Sync("drain", 0)
	sys.FlushTelemetry()
	if err := sys.ValidateCounters(); err != nil {
		return err
	}

	ctr := sys.Counters()
	fmt.Printf("replayed %d operations on %s\n", ops, sys)
	fmt.Printf("counters:      %s\n", ctr)
	fmt.Printf("amplification: %.2f\n", ctr.Amplification())
	fmt.Printf("hit rate:      %.3f\n", ctr.HitRate())
	fmt.Printf("elapsed:       %.6f s (model)\n", sys.Clock())

	if o.rc.Out != "" {
		if err := o.writeArtifacts(series, ops, ctr, sys.Clock()); err != nil {
			return err
		}
	}
	return nil
}

// writeArtifacts emits the replay summary JSON and the sampled
// telemetry series CSV under the -out directory.
func (o *options) writeArtifacts(series *telemetry.Recorder, ops uint64, ctr imc.Counters, clock float64) error {
	if err := os.MkdirAll(o.rc.Out, 0o755); err != nil {
		return err
	}
	sf, err := os.Create(filepath.Join(o.rc.Out, "nvtrace_replay.json"))
	if err != nil {
		return err
	}
	defer sf.Close()
	sum := replaySummary{
		Trace:         o.replay,
		Mode:          o.mode,
		Scale:         o.scale(),
		Ops:           ops,
		Counters:      ctr.String(),
		Amplification: ctr.Amplification(),
		HitRate:       ctr.HitRate(),
		ModelSeconds:  clock,
	}
	if err := telemetry.EncodeJSON(sf, sum); err != nil {
		return err
	}
	cf, err := os.Create(filepath.Join(o.rc.Out, "nvtrace_replay_series.csv"))
	if err != nil {
		return err
	}
	defer cf.Close()
	if err := series.WriteCSV(cf); err != nil {
		return err
	}
	fmt.Printf("artifacts:     %s\n", o.rc.Out)
	return nil
}
