// Command graphsim runs the paper's graph analytics case study
// (Section VI and Section VII-A-2): bfs, connected components, k-core
// and pagerank-push over Kronecker and web-crawl-shaped inputs, in
// 2LM, NUMA-baseline and Sage-style placements.
//
// Usage:
//
//	graphsim [-scale N] [-small-scale N] [-large-scale N] [-pr-rounds N] [-csv dir]
//
// All of Figures 7, 8, 9 and the Sage comparison come from one study
// pass. With -csv, the pagerank traces (Figure 9) are written as CSVs.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"twolm/internal/experiments"
	"twolm/internal/perfcounter"
)

func main() {
	scale := flag.Uint64("scale", 4096, "platform footprint scale divisor (power of two)")
	smallScale := flag.Int("small-scale", 18, "log2 nodes of the fits-in-cache Kronecker graph")
	largeScale := flag.Int("large-scale", 21, "log2 nodes of the exceeds-cache web-like graph")
	prRounds := flag.Int("pr-rounds", 5, "pagerank-push rounds")
	csvDir := flag.String("csv", "", "directory to write Figure 9 trace CSVs into")
	flag.Parse()

	cfg := experiments.DefaultGraphConfig()
	cfg.Scale = *scale
	cfg.SmallScale = *smallScale
	cfg.LargeScale = *largeScale
	cfg.PRRounds = *prRounds

	if err := run(cfg, *csvDir); err != nil {
		fmt.Fprintln(os.Stderr, "graphsim:", err)
		os.Exit(1)
	}
}

func run(cfg experiments.GraphConfig, csvDir string) error {
	study, err := experiments.RunGraphStudy(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("inputs: %s (%d nodes, %d edges, %.1f MB) and %s (%d nodes, %d edges, %.1f MB)\n\n",
		study.Small.Name, study.Small.NumNodes(), study.Small.NumEdges(), float64(study.Small.Bytes())/1e6,
		study.Large.Name, study.Large.NumNodes(), study.Large.NumEdges(), float64(study.Large.Bytes())/1e6)
	fmt.Println(study.Fig7().String())
	fmt.Println(study.Fig8().String())
	fmt.Println(study.Fig9().String())
	fmt.Println(study.SageTable().String())

	if csvDir != "" {
		small, large := study.Fig9Traces()
		if small != nil {
			if err := writeCSV(filepath.Join(csvDir, "fig9a_"+study.Small.Name+".csv"), small); err != nil {
				return err
			}
		}
		if large != nil {
			if err := writeCSV(filepath.Join(csvDir, "fig9b_"+study.Large.Name+".csv"), large); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeCSV(path string, series *perfcounter.Series) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return series.WriteCSV(f)
}
