// Command graphsim runs the paper's graph analytics case study
// (Section VI and Section VII-A-2): bfs, connected components, k-core
// and pagerank-push over Kronecker and web-crawl-shaped inputs, in
// 2LM, NUMA-baseline and Sage-style placements.
//
// Usage:
//
//	graphsim [-scale N] [-quick] [-small-scale N] [-large-scale N] [-pr-rounds N]
//	         [-out dir] [-metrics-addr host:port]
//
// All of Figures 7, 8, 9 and the Sage comparison come from one study
// pass. With -out, the pagerank traces (Figure 9) are written as CSVs
// into the given directory (created if missing; this flag replaces
// the historical -csv). -quick shrinks to the sanity-pass geometry
// (scale 16384, smaller graphs, 3 pagerank rounds). -metrics-addr
// serves progress gauges and the traces' cumulative counters at
// /metrics. -parallel and -channels are accepted for interface
// uniformity with the other binaries; the study's placements run
// sequentially on one modeled socket.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"twolm/internal/experiments"
	"twolm/internal/perfcounter"
	"twolm/internal/runcfg"
	"twolm/internal/telemetry"
)

// options is the parsed flag surface: the suite-wide runcfg block plus
// the study's bespoke graph-geometry knobs.
type options struct {
	rc         runcfg.Common
	smallScale int
	largeScale int
	prRounds   int
}

// parseFlags parses the command line into options without touching
// global flag state, so tests can drive the full surface.
func parseFlags(name string, args []string) (*options, error) {
	fs := flag.NewFlagSet(name, flag.ContinueOnError)
	o := &options{rc: runcfg.Defaults()}
	o.rc.Out = "" // print-only unless -out asks for trace CSVs
	o.rc.Scale = 4096
	o.rc.Register(fs)
	fs.IntVar(&o.smallScale, "small-scale", 18, "log2 nodes of the fits-in-cache Kronecker graph")
	fs.IntVar(&o.largeScale, "large-scale", 21, "log2 nodes of the exceeds-cache web-like graph")
	fs.IntVar(&o.prRounds, "pr-rounds", 5, "pagerank-push rounds")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	return o, nil
}

// config resolves the study configuration; -quick overrides the
// geometry with the sanity-pass shape the suite uses for repro -quick.
func (o *options) config() experiments.GraphConfig {
	cfg := experiments.DefaultGraphConfig()
	cfg.Scale = o.rc.Scale
	cfg.SmallScale = o.smallScale
	cfg.LargeScale = o.largeScale
	cfg.PRRounds = o.prRounds
	if o.rc.Quick {
		cfg.Scale = 16384
		cfg.SmallScale = 14
		cfg.LargeScale = 19
		cfg.PRRounds = 3
	}
	return cfg
}

func main() {
	o, err := parseFlags("graphsim", os.Args[1:])
	if err != nil {
		os.Exit(2)
	}
	if err := run(o.config(), o.rc); err != nil {
		fmt.Fprintln(os.Stderr, "graphsim:", err)
		os.Exit(1)
	}
}

func run(cfg experiments.GraphConfig, rc runcfg.Common) error {
	if err := rc.Validate(); err != nil {
		return err
	}
	prom, err := rc.Metrics()
	if err != nil {
		return err
	}
	if prom != nil {
		fmt.Printf("serving metrics at http://%s/metrics\n", rc.BoundAddr)
	}
	if rc.Out != "" {
		if err := os.MkdirAll(rc.Out, 0o755); err != nil {
			return err
		}
	}

	study, err := experiments.RunGraphStudy(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("inputs: %s (%d nodes, %d edges, %.1f MB) and %s (%d nodes, %d edges, %.1f MB)\n\n",
		study.Small.Name, study.Small.NumNodes(), study.Small.NumEdges(), float64(study.Small.Bytes())/1e6,
		study.Large.Name, study.Large.NumNodes(), study.Large.NumEdges(), float64(study.Large.Bytes())/1e6)
	fmt.Println(study.Fig7().String())
	fmt.Println(study.Fig8().String())
	fmt.Println(study.Fig9().String())
	fmt.Println(study.SageTable().String())

	small, large := study.Fig9Traces()
	if rc.Out != "" {
		if small != nil {
			if err := writeCSV(filepath.Join(rc.Out, "fig9a_"+study.Small.Name+".csv"), small); err != nil {
				return err
			}
		}
		if large != nil {
			if err := writeCSV(filepath.Join(rc.Out, "fig9b_"+study.Large.Name+".csv"), large); err != nil {
				return err
			}
		}
	}
	if prom != nil {
		if small != nil {
			small.Emit(telemetry.WithLabel(prom, "fig9a_"+study.Small.Name))
		}
		if large != nil {
			large.Emit(telemetry.WithLabel(prom, "fig9b_"+study.Large.Name))
		}
		prom.AddGauge("experiments_completed", "Experiments completed so far.", 1)
	}
	return nil
}

func writeCSV(path string, series *perfcounter.Series) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return series.WriteCSV(f)
}
