package main

import (
	"strings"
	"testing"
)

// TestFlagSurface pins the shared runcfg flag set on graphsim: every
// suite-wide flag — including -metrics-addr — parses into the Common
// block, the bespoke geometry knobs work beside them, and -quick
// overrides the whole geometry in the resolved configuration.
func TestFlagSurface(t *testing.T) {
	o, err := parseFlags("graphsim-test", []string{
		"-out", "artifacts",
		"-scale", "2048",
		"-parallel", "3",
		"-channels", "4",
		"-metrics-addr", "127.0.0.1:0",
		"-small-scale", "15",
		"-large-scale", "20",
		"-pr-rounds", "7",
	})
	if err != nil {
		t.Fatal(err)
	}
	if o.rc.Out != "artifacts" || o.rc.Scale != 2048 || o.rc.Parallel != 3 ||
		o.rc.Channels != 4 || o.rc.MetricsAddr != "127.0.0.1:0" {
		t.Errorf("shared flags misparsed: %+v", o.rc)
	}
	cfg := o.config()
	if cfg.Scale != 2048 || cfg.SmallScale != 15 || cfg.LargeScale != 20 || cfg.PRRounds != 7 {
		t.Errorf("geometry flags misparsed: %+v", cfg)
	}

	quick, err := parseFlags("graphsim-test", []string{"-scale", "64", "-quick"})
	if err != nil {
		t.Fatal(err)
	}
	qcfg := quick.config()
	if qcfg.Scale != 16384 || qcfg.SmallScale != 14 || qcfg.LargeScale != 19 || qcfg.PRRounds != 3 {
		t.Errorf("-quick geometry = %+v, want the sanity-pass shape", qcfg)
	}
}

// TestFlagValidation pins that malformed shared flags are rejected by
// the same runcfg validation every binary uses, before any study work
// starts.
func TestFlagValidation(t *testing.T) {
	for _, tc := range []struct {
		name string
		args []string
		want string
	}{
		{"bad-scale", []string{"-scale", "1000"}, "power of two"},
		{"bad-parallel", []string{"-parallel", "0"}, "-parallel"},
		{"bad-channels", []string{"-channels", "-2"}, "-channels"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			o, err := parseFlags("graphsim-test", tc.args)
			if err != nil {
				t.Fatal(err)
			}
			err = run(o.config(), o.rc)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("run(%v) = %v, want error containing %q", tc.args, err, tc.want)
			}
		})
	}
}
