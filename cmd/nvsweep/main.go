// Command nvsweep runs a declarative design-space sweep — the
// paper's comparison matrix at scale — and writes merged,
// worker-count-independent result tables.
//
// Usage:
//
//	nvsweep [-spec grid.json] [-out results] [-quick] [-parallel N]
//	        [-channels N] [-scale 1024] [-metrics-addr host:port]
//
// Without -spec, the built-in default grid (cache size x
// associativity x all four policy ablations x channels x DRAM:NVRAM
// ratio x stream pattern) runs; -quick substitutes the small CI smoke
// grid. A -spec file is the JSON form of sweep.Spec:
//
//	{
//	  "cache_kib": [256, 512, 1024],
//	  "ways": [1, 4],
//	  "ratios": [2, 8]
//	}
//
// Every point is one deterministic job on the engine worker pool;
// points sharing a geometry class recycle pooled controllers, so
// thousand-point sweeps run at thousands of jobs per second. The
// merged tables land in <out>/sweep_results.csv and
// <out>/sweep_results.json, ordered by point index — byte-identical
// at every -parallel setting, asserted by CI.
//
// -channels substitutes the flag value for the spec's channel axis
// when the spec leaves it empty (the built-in grids pin their own).
// -scale is accepted for shared-flag-surface compatibility but does
// not shape sweep geometry — that is the spec's job. -metrics-addr
// serves sweep_points_total / sweep_points_completed progress gauges
// plus one labeled counter sample per completed point at
// /metrics.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"twolm/internal/engine"
	"twolm/internal/jobspec"
	"twolm/internal/runcfg"
	"twolm/internal/sweep"
)

func main() {
	rc := runcfg.Defaults()
	rc.Register(flag.CommandLine)
	rc.RegisterJob(flag.CommandLine)
	specPath := flag.String("spec", "", "JSON sweep spec file (default: built-in grid)")
	flag.Parse()

	if err := run(rc, *specPath); err != nil {
		fmt.Fprintln(os.Stderr, "nvsweep:", err)
		os.Exit(1)
	}
}

// runJob executes one declared jobspec through the shared
// sweep.RunJob path, so the job_results artifacts under -out are
// byte-identical to cmd/repro -job and a simd POST of the same file.
func runJob(rc runcfg.Common, js *jobspec.Spec) error {
	ctx := context.Background()
	if d := js.Timeout(); d > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, d)
		defer cancel()
	}
	start := time.Now()
	res, err := sweep.RunJob(ctx, *js, rc.Parallel, nil)
	if err != nil {
		return err
	}
	if err := res.Write(rc.Out); err != nil {
		return err
	}
	fmt.Printf("job %q: %d points, %d demand lines, artifacts in %s (%s)\n",
		res.Spec.Name, len(res.Rows), res.Lines, rc.Out, time.Since(start).Round(time.Millisecond))
	return nil
}

// loadSpec resolves the sweep spec: an explicit -spec file wins, then
// -quick picks the smoke grid, then the default grid. An empty
// channels axis is filled from -channels so the shared flag keeps its
// meaning here.
func loadSpec(rc runcfg.Common, specPath string) (sweep.Spec, error) {
	var spec sweep.Spec
	switch {
	case specPath != "":
		data, err := os.ReadFile(specPath)
		if err != nil {
			return spec, err
		}
		if err := json.Unmarshal(data, &spec); err != nil {
			return spec, fmt.Errorf("%s: %w", specPath, err)
		}
	case rc.Quick:
		spec = sweep.QuickSpec()
	default:
		spec = sweep.DefaultSpec()
	}
	if len(spec.Channels) == 0 && rc.Channels > 0 {
		spec.Channels = []int{rc.Channels}
	}
	return spec, nil
}

func run(rc runcfg.Common, specPath string) error {
	if err := rc.Validate(); err != nil {
		return err
	}
	if js, err := rc.LoadJob(); err != nil {
		return err
	} else if js != nil {
		return runJob(rc, js)
	}
	prom, err := rc.Metrics()
	if err != nil {
		return err
	}
	if prom != nil {
		fmt.Printf("serving metrics at http://%s/metrics\n", rc.BoundAddr)
	}
	spec, err := loadSpec(rc, specPath)
	if err != nil {
		return err
	}
	runner, err := sweep.New(spec)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(rc.Out, 0o755); err != nil {
		return err
	}

	points := runner.Points()
	fmt.Printf("sweep %q: %d points on %d workers\n", runner.Spec().Name, len(points), rc.Parallel)
	var observe func(engine.Outcome)
	if prom != nil {
		prom.SetGauge("sweep_points_total", "Sweep points in this run.", float64(len(points)))
		observe = func(engine.Outcome) {
			prom.AddGauge("sweep_points_completed", "Sweep points completed so far.", 1)
		}
	}

	start := time.Now()
	rows, err := runner.Run(context.Background(), rc.Parallel, observe)
	elapsed := time.Since(start)
	if err != nil {
		return err
	}
	if prom != nil {
		// One labeled cumulative sample per point, in point order.
		runner.EmitSamples(prom)
	}

	if err := writeTable(filepath.Join(rc.Out, "sweep_results.csv"), rows, sweep.WriteCSV); err != nil {
		return err
	}
	if err := writeTable(filepath.Join(rc.Out, "sweep_results.json"), rows, sweep.WriteJSON); err != nil {
		return err
	}

	var lines uint64
	for i := range rows {
		lines += rows[i].Lines
	}
	fmt.Printf("completed %d points in %s (%.0f jobs/s, %d demand lines)\n",
		len(rows), elapsed.Round(time.Millisecond), float64(len(rows))/elapsed.Seconds(), lines)
	fmt.Printf("merged tables: %s{.csv,.json}\n", filepath.Join(rc.Out, "sweep_results"))
	return nil
}

// writeTable writes one merged-table artifact through the given
// serializer.
func writeTable(path string, rows []sweep.Row, write func(w io.Writer, rows []sweep.Row) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f, rows); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
