package main

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// loadJob is the sustained-throughput workload: a 64 KiB sequential
// point scaled down 16x (128 demand lines on the closed-form
// sequential fold), CSV-only so the render cost per job is one row.
const loadJob = `{
  "version": 1,
  "name": "load",
  "geometry": {"cache_kib": 64},
  "workload": {"pattern": "sequential", "scale": 16},
  "telemetry": {"formats": ["csv"]}
}`

// loadTotal and loadRate are the sustained-throughput acceptance
// floor: at least this many jobs through the full HTTP path, at at
// least this aggregate rate, with zero lost or duplicated ids.
const (
	loadTotal = 10000
	loadRate  = 1000.0 // jobs per second
)

// TestSimdSustainedThroughput drives loadTotal jobs through the real
// HTTP surface — POST admission (with 429 backpressure retries),
// fleet execution on the shared controller arena, /v1/stats
// aggregate polling — and asserts the service sustains loadRate
// jobs/sec end to end with exact accounting: every submitted id is
// unique, and admitted == completed with nothing lost to any other
// terminal state.
func TestSimdSustainedThroughput(t *testing.T) {
	if testing.Short() {
		t.Skip("load test")
	}
	cfg := Defaults()
	cfg.Workers = 2
	cfg.QueueDepth = 1024
	cfg.DefaultTimeout = 30 * time.Second
	srv := NewServer(cfg)
	defer srv.Drain()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	const submitters = 4
	perSubmitter := loadTotal / submitters

	var mu sync.Mutex
	ids := make(map[string]bool, loadTotal)
	var retries429 int

	start := time.Now()
	var wg sync.WaitGroup
	errc := make(chan error, submitters)
	for s := 0; s < submitters; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// One keep-alive client per submitter: connection reuse is
			// part of the sustained-throughput claim.
			client := ts.Client()
			local := make([]string, 0, perSubmitter)
			local429 := 0
			for i := 0; i < perSubmitter; i++ {
				for {
					resp, err := client.Post(ts.URL+"/v1/jobs", "application/json",
						strings.NewReader(loadJob))
					if err != nil {
						errc <- err
						return
					}
					var sub struct {
						ID string `json:"id"`
					}
					err = decodeBody(resp, &sub)
					if resp.StatusCode == http.StatusAccepted && err == nil {
						local = append(local, sub.ID)
						break
					}
					if resp.StatusCode == http.StatusTooManyRequests {
						// Backpressure is expected under full queue; yield
						// to the workers and retry the same job.
						local429++
						time.Sleep(500 * time.Microsecond)
						continue
					}
					t.Errorf("POST = %d (%v)", resp.StatusCode, err)
					return
				}
			}
			mu.Lock()
			for _, id := range local {
				if ids[id] {
					t.Errorf("duplicate job id %s", id)
				}
				ids[id] = true
			}
			retries429 += local429
			mu.Unlock()
		}()
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	if len(ids) != loadTotal {
		t.Fatalf("submitted %d unique ids, want %d", len(ids), loadTotal)
	}

	// Drain to completion, polling the one-request fleet aggregate.
	var st statsBody
	deadline := time.Now().Add(60 * time.Second)
	for {
		getJSON(t, ts.URL+"/v1/stats", &st)
		if st.Completed+st.Failed+st.TimedOut+st.Cancelled >= loadTotal {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("stalled: %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}
	elapsed := time.Since(start)

	// Exact accounting: every admitted job completed; nothing lost,
	// duplicated, or misclassified.
	if st.Admitted != loadTotal {
		t.Errorf("admitted = %d, want %d", st.Admitted, loadTotal)
	}
	if st.Completed != loadTotal || st.Failed != 0 || st.TimedOut != 0 || st.Cancelled != 0 {
		t.Errorf("completion accounting off: %+v", st)
	}
	if st.QueueDepth != 0 || st.Busy != 0 {
		t.Errorf("fleet not idle after drain-to-zero: %+v", st)
	}
	if st.Lines == 0 {
		t.Error("no demand lines accumulated")
	}

	// Spot-check a submitted id end to end (status + artifact bytes).
	for id := range ids {
		stj := waitStatus(t, ts, id)
		if stj.Status != statusDone {
			t.Errorf("job %s: %q (%s)", id, stj.Status, stj.Error)
		}
		break
	}

	rate := float64(loadTotal) / elapsed.Seconds()
	t.Logf("%d jobs in %s = %.0f jobs/s (%d backpressure retries, %d demand lines)",
		loadTotal, elapsed.Round(time.Millisecond), rate, retries429, st.Lines)
	if rate < loadRate {
		t.Errorf("sustained %.0f jobs/s, want >= %.0f", rate, loadRate)
	}
}

// decodeBody decodes one response body and fully drains it so the
// keep-alive connection is reusable, then closes it.
func decodeBody(resp *http.Response, out any) error {
	defer resp.Body.Close()
	err := json.NewDecoder(resp.Body).Decode(out)
	_, _ = io.Copy(io.Discard, resp.Body)
	return err
}
