// Command simd is the simulation-as-a-service daemon: the pooled
// sweep machinery behind a small, versioned HTTP job API, so a fleet
// of clients can drive design-space exploration without linking the
// simulator.
//
// Usage:
//
//	simd [-addr 127.0.0.1:9470] [-workers N] [-queue 1024]
//	     [-job-parallel 1] [-timeout 30s] [-drain-timeout 5s]
//
// API (version 1):
//
//	POST /v1/jobs            submit a jobspec JSON document (the same
//	                         file cmd/repro -job accepts). 202 + id on
//	                         admission; 400 with per-field violations
//	                         on an invalid spec; 429 + Retry-After
//	                         when the admission queue is full; 503
//	                         once draining.
//	GET  /v1/jobs/{id}       job status: queued | running | done |
//	                         failed | timeout | cancelled.
//	GET  /v1/jobs/{id}/result
//	                         rendered artifact bytes, byte-identical
//	                         to cmd/repro -job output for the same
//	                         spec. ?format=csv|json, ?artifact=trace.
//	GET  /v1/stats           one-poll fleet aggregate (JSON).
//	GET  /healthz            200 admitting, 503 draining.
//	GET  /metrics            Prometheus text exposition of the
//	                         simd_* fleet gauges.
//
// On SIGTERM/SIGINT the daemon drains: admission stops (POST → 503,
// health → 503), in-flight and queued jobs get -drain-timeout to
// finish, stragglers are cancelled at their next batch boundary, and
// the process exits 0.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"
)

func main() {
	cfg := Defaults()
	addr := flag.String("addr", "127.0.0.1:9470", "HTTP listen address")
	flag.IntVar(&cfg.Workers, "workers", cfg.Workers, "job-executing workers")
	flag.IntVar(&cfg.QueueDepth, "queue", cfg.QueueDepth, "admission queue depth")
	flag.IntVar(&cfg.JobParallel, "job-parallel", cfg.JobParallel, "engine workers per job grid")
	flag.DurationVar(&cfg.DefaultTimeout, "timeout", cfg.DefaultTimeout, "default per-job deadline (0 = none)")
	flag.DurationVar(&cfg.DrainTimeout, "drain-timeout", cfg.DrainTimeout, "grace period for in-flight jobs on shutdown")
	flag.Parse()

	if err := run(cfg, *addr); err != nil {
		fmt.Fprintln(os.Stderr, "simd:", err)
		os.Exit(1)
	}
}

func run(cfg Config, addr string) error {
	srv := NewServer(cfg)
	httpSrv := &http.Server{Addr: addr, Handler: srv}

	errc := make(chan error, 1)
	go func() {
		if err := httpSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
			errc <- err
		}
	}()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)
	fmt.Printf("simd: serving on http://%s (workers=%d queue=%d)\n", addr, cfg.Workers, cfg.QueueDepth)

	select {
	case err := <-errc:
		return err
	case sig := <-sigc:
		fmt.Printf("simd: %s — draining (timeout %s)\n", sig, cfg.DrainTimeout)
	}

	cancelled := srv.Drain()
	st := srv.stats()
	fmt.Printf("simd: drained — %d completed, %d cancelled, %d failed\n",
		st.Completed, cancelled, st.Failed)

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	return httpSrv.Shutdown(ctx)
}
