package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"twolm/internal/jobspec"
	"twolm/internal/sweep"
	"twolm/internal/telemetry"
)

// Job lifecycle states. The admission/drain state machine is
// documented in DESIGN.md §4i; transitions are strictly forward:
//
//	queued → running → {done, failed, timeout, cancelled}
//	queued ————————————————————————————→ cancelled   (drain beat the worker to it)
const (
	statusQueued    = "queued"
	statusRunning   = "running"
	statusDone      = "done"
	statusFailed    = "failed"
	statusTimeout   = "timeout"
	statusCancelled = "cancelled"
)

// Config sizes the service. The zero value is unusable; Defaults
// fills in the production shape and tests override what they probe.
type Config struct {
	// Workers is the number of job-executing goroutines.
	Workers int
	// QueueDepth bounds the admission queue; a POST that finds it
	// full is rejected with 429 + Retry-After rather than queued
	// unboundedly.
	QueueDepth int
	// JobParallel is the engine worker count each job runs its grid
	// on (1 = serial; grids admitted to a busy fleet should not
	// oversubscribe the host).
	JobParallel int
	// DefaultTimeout caps a job that declares no timeout_ms of its
	// own. Zero means no default deadline.
	DefaultTimeout time.Duration
	// DrainTimeout is how long Drain lets in-flight jobs finish
	// before cancelling them.
	DrainTimeout time.Duration
	// MaxBodyBytes bounds a POST body.
	MaxBodyBytes int64
	// Prom is the fleet-gauge registry, mounted at /metrics. Nil gets
	// a fresh registry.
	Prom *telemetry.Prom
}

// Defaults returns the production configuration.
func Defaults() Config {
	return Config{
		Workers:        2,
		QueueDepth:     1024,
		JobParallel:    1,
		DefaultTimeout: 30 * time.Second,
		DrainTimeout:   5 * time.Second,
		MaxBodyBytes:   1 << 20,
	}
}

// job is one admitted spec moving through the state machine. The
// mutable fields are guarded by mu; the id and spec are immutable
// after admission.
type job struct {
	id   string
	spec *jobspec.Spec

	mu      sync.Mutex
	status  string
	errMsg  string
	result  *sweep.Result
	elapsed time.Duration
}

// setStatus transitions the job, recording the error message for
// failure states.
func (j *job) setStatus(status, errMsg string) {
	j.mu.Lock()
	j.status = status
	j.errMsg = errMsg
	j.mu.Unlock()
}

// Server is the simulation-as-a-service daemon: a bounded admission
// queue in front of a fixed worker fleet, all jobs recycling pooled
// controllers through one shared sweep.Arena, with every lifecycle
// event mirrored onto Prometheus gauges.
type Server struct {
	cfg  Config
	mux  *http.ServeMux
	pool *sweep.Arena
	prom *telemetry.Prom

	// baseCtx parents every job context; cancelInflight aborts all
	// running jobs at their next pass/batch boundary (the drain
	// deadline path).
	baseCtx        context.Context
	cancelInflight context.CancelFunc

	// mu guards jobs, draining, and the admit-vs-close race on queue:
	// a send and a close may not race, so both happen under mu.
	mu       sync.Mutex
	jobs     map[string]*job
	draining bool
	queue    chan *job

	wg     sync.WaitGroup
	nextID atomic.Int64

	// Fleet counters, mirrored to gauges after every transition.
	admitted  atomic.Int64
	completed atomic.Int64
	failed    atomic.Int64
	rejected  atomic.Int64
	timedOut  atomic.Int64
	cancelled atomic.Int64
	depth     atomic.Int64
	busy      atomic.Int64
	lines     atomic.Int64

	start time.Time

	// exec is the job execution seam; tests substitute slow or
	// panicking executors. Production is sweep.RunJob on the shared
	// pool.
	exec func(ctx context.Context, spec *jobspec.Spec) (*sweep.Result, error)
}

// NewServer assembles the service and starts its worker fleet.
func NewServer(cfg Config) *Server {
	if cfg.Workers < 1 {
		cfg.Workers = 1
	}
	if cfg.QueueDepth < 1 {
		cfg.QueueDepth = 1
	}
	if cfg.JobParallel < 1 {
		cfg.JobParallel = 1
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 1 << 20
	}
	if cfg.Prom == nil {
		cfg.Prom = telemetry.NewProm()
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:            cfg,
		mux:            http.NewServeMux(),
		pool:           sweep.NewArena(),
		prom:           cfg.Prom,
		baseCtx:        ctx,
		cancelInflight: cancel,
		jobs:           make(map[string]*job),
		queue:          make(chan *job, cfg.QueueDepth),
		start:          time.Now(),
	}
	s.exec = func(ctx context.Context, spec *jobspec.Spec) (*sweep.Result, error) {
		return sweep.RunJob(ctx, *spec, s.cfg.JobParallel, s.pool)
	}
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	s.mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.Handle("GET /metrics", s.prom)
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	s.publishGauges()
	return s
}

// ServeHTTP makes the server mountable under httptest and net/http.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// writeJSON writes one JSON response body.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

type errorBody struct {
	Error      string               `json:"error"`
	Violations []jobspec.FieldError `json:"violations,omitempty"`
}

// handleSubmit is POST /v1/jobs: strict-decode, validate, admit.
// Responses: 202 admitted, 400 invalid, 413 oversized body, 429
// queue full (Retry-After: 1), 503 draining.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	spec, err := jobspec.Decode(body)
	if err != nil {
		var verrs *jobspec.Errors
		var tooBig *http.MaxBytesError
		switch {
		case errors.As(err, &verrs):
			writeJSON(w, http.StatusBadRequest, errorBody{Error: "invalid jobspec", Violations: verrs.Violations})
		case errors.As(err, &tooBig):
			writeJSON(w, http.StatusRequestEntityTooLarge, errorBody{Error: err.Error()})
		default:
			writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		}
		return
	}
	j := &job{spec: spec, status: statusQueued}

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: "server is draining; not admitting jobs"})
		return
	}
	// Register before the queue send: a worker may pick the job up
	// the instant it lands in the channel, and a GET racing that must
	// find the id.
	j.id = fmt.Sprintf("j-%08d", s.nextID.Add(1))
	s.jobs[j.id] = j
	select {
	case s.queue <- j:
		s.depth.Add(1)
		s.admitted.Add(1)
		s.mu.Unlock()
	default:
		delete(s.jobs, j.id)
		s.mu.Unlock()
		s.rejected.Add(1)
		s.publishGauges()
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusTooManyRequests, errorBody{Error: "admission queue full; retry"})
		return
	}
	s.publishGauges()
	writeJSON(w, http.StatusAccepted, map[string]string{"id": j.id, "status": statusQueued})
}

// lookup resolves a job id.
func (s *Server) lookup(id string) *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

// statusBody is the GET /v1/jobs/{id} shape.
type statusBody struct {
	ID        string `json:"id"`
	Status    string `json:"status"`
	Error     string `json:"error,omitempty"`
	ElapsedMS int64  `json:"elapsed_ms"`
	Lines     uint64 `json:"lines,omitempty"`
	Points    int    `json:"points,omitempty"`
}

// handleStatus is GET /v1/jobs/{id}.
func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(r.PathValue("id"))
	if j == nil {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "unknown job id"})
		return
	}
	j.mu.Lock()
	b := statusBody{ID: j.id, Status: j.status, Error: j.errMsg, ElapsedMS: j.elapsed.Milliseconds()}
	if j.result != nil {
		b.Lines = j.result.Lines
		b.Points = len(j.result.Rows)
	}
	j.mu.Unlock()
	writeJSON(w, http.StatusOK, b)
}

// handleResult is GET /v1/jobs/{id}/result: the job's rendered
// artifact bytes, exactly as cmd/repro -job would have written them.
// ?format=json selects the JSON table (default csv); ?artifact=trace
// selects the bandwidth trace of a traced job. 409 until the job is
// done; 404 for artifacts the spec did not request.
func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(r.PathValue("id"))
	if j == nil {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "unknown job id"})
		return
	}
	j.mu.Lock()
	status, res := j.status, j.result
	j.mu.Unlock()
	if status != statusDone {
		writeJSON(w, http.StatusConflict, errorBody{Error: "job is " + status + ", not done"})
		return
	}
	if res == nil {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "job produced no result"})
		return
	}
	format := r.URL.Query().Get("format")
	if format == "" {
		format = jobspec.FormatCSV
	}
	var data []byte
	var ctype string
	switch {
	case r.URL.Query().Get("artifact") == "trace" && format == jobspec.FormatCSV:
		data, ctype = res.TraceCSV, "text/csv; charset=utf-8"
	case r.URL.Query().Get("artifact") == "trace":
		data, ctype = res.TraceJSON, "application/json"
	case format == jobspec.FormatCSV:
		data, ctype = res.CSV, "text/csv; charset=utf-8"
	default:
		data, ctype = res.JSON, "application/json"
	}
	if data == nil {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "artifact not produced by this job's telemetry section"})
		return
	}
	w.Header().Set("Content-Type", ctype)
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(data)
}

// statsBody is the GET /v1/stats aggregate — one poll covers the
// whole fleet, which is what the load harness watches instead of
// hammering per-job status endpoints.
type statsBody struct {
	Admitted   int64 `json:"admitted"`
	Completed  int64 `json:"completed"`
	Failed     int64 `json:"failed"`
	Rejected   int64 `json:"rejected"`
	TimedOut   int64 `json:"timed_out"`
	Cancelled  int64 `json:"cancelled"`
	QueueDepth int64 `json:"queue_depth"`
	Busy       int64 `json:"busy_workers"`
	Lines      int64 `json:"demand_lines"`
	Draining   bool  `json:"draining"`
}

func (s *Server) stats() statsBody {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	return statsBody{
		Admitted:   s.admitted.Load(),
		Completed:  s.completed.Load(),
		Failed:     s.failed.Load(),
		Rejected:   s.rejected.Load(),
		TimedOut:   s.timedOut.Load(),
		Cancelled:  s.cancelled.Load(),
		QueueDepth: s.depth.Load(),
		Busy:       s.busy.Load(),
		Lines:      s.lines.Load(),
		Draining:   draining,
	}
}

// handleStats is GET /v1/stats.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.stats())
}

// handleHealth is GET /healthz: 200 while admitting, 503 once
// draining (load balancers pull a draining instance out of rotation).
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	if draining {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// publishGauges mirrors the fleet counters onto the Prometheus
// registry. Prom locks internally and keeps the latest value per
// gauge, so concurrent publishers are safe.
func (s *Server) publishGauges() {
	p := s.prom
	p.SetGauge("simd_queue_depth", "Jobs waiting in the admission queue.", float64(s.depth.Load()))
	p.SetGauge("simd_workers_busy", "Workers currently executing a job.", float64(s.busy.Load()))
	p.SetGauge("simd_jobs_admitted_total", "Jobs admitted to the queue.", float64(s.admitted.Load()))
	p.SetGauge("simd_jobs_completed_total", "Jobs completed successfully.", float64(s.completed.Load()))
	p.SetGauge("simd_jobs_failed_total", "Jobs that failed.", float64(s.failed.Load()))
	p.SetGauge("simd_jobs_rejected_total", "Jobs rejected with 429 (queue full).", float64(s.rejected.Load()))
	p.SetGauge("simd_jobs_timeout_total", "Jobs that exceeded their deadline.", float64(s.timedOut.Load()))
	p.SetGauge("simd_jobs_cancelled_total", "Jobs cancelled by drain.", float64(s.cancelled.Load()))
	lines := float64(s.lines.Load())
	p.SetGauge("simd_demand_lines_total", "Demand lines simulated across all completed jobs.", lines)
	if el := time.Since(s.start).Seconds(); el > 0 {
		p.SetGauge("simd_bandwidth_lines_per_sec", "Aggregate simulated demand bandwidth since start.", lines/el)
	}
}

// worker drains the admission queue until it closes, one job at a
// time. Panic isolation lives in runJob: a job that panics in spec
// lowering or execution takes down itself, not the worker or fleet.
func (s *Server) worker() {
	defer s.wg.Done()
	for j := range s.queue {
		s.depth.Add(-1)
		s.busy.Add(1)
		s.publishGauges()
		s.runJob(j)
		s.busy.Add(-1)
		s.publishGauges()
	}
}

// runJob executes one admitted job under its deadline and classifies
// the outcome.
func (s *Server) runJob(j *job) {
	j.setStatus(statusRunning, "")
	ctx := s.baseCtx
	timeout := s.cfg.DefaultTimeout
	if d := j.spec.Timeout(); d > 0 {
		timeout = d
	}
	var cancel context.CancelFunc
	if timeout > 0 {
		ctx, cancel = context.WithTimeout(ctx, timeout)
	} else {
		ctx, cancel = context.WithCancel(ctx)
	}
	start := time.Now()
	res, err := s.execIsolated(ctx, j.spec)
	elapsed := time.Since(start)
	cancel()

	j.mu.Lock()
	j.elapsed = elapsed
	j.mu.Unlock()
	switch {
	case err == nil:
		j.mu.Lock()
		j.result = res
		j.status = statusDone
		j.mu.Unlock()
		if res != nil {
			s.lines.Add(int64(res.Lines))
		}
		s.completed.Add(1)
	case errors.Is(err, context.DeadlineExceeded):
		j.setStatus(statusTimeout, err.Error())
		s.timedOut.Add(1)
	case errors.Is(err, context.Canceled):
		j.setStatus(statusCancelled, err.Error())
		s.cancelled.Add(1)
	default:
		j.setStatus(statusFailed, err.Error())
		s.failed.Add(1)
	}
}

// execIsolated runs the executor with panic containment — one bad
// job must not take down the fleet. The engine pool already converts
// job-closure panics to errors; this guards the lowering and
// rendering around it too.
func (s *Server) execIsolated(ctx context.Context, spec *jobspec.Spec) (res *sweep.Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			res, err = nil, fmt.Errorf("job panicked: %v", r)
		}
	}()
	return s.exec(ctx, spec)
}

// BeginDrain flips the server into drain mode: health goes 503, new
// POSTs are refused, and the queue is closed so workers exit when
// it empties. Idempotent.
func (s *Server) BeginDrain() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return
	}
	s.draining = true
	close(s.queue)
}

// Drain gracefully stops the fleet: stop admitting, give in-flight
// (and already-queued) jobs the drain timeout to finish, then cancel
// whatever is still running and wait for the workers to exit. It
// returns the number of jobs that were cancelled rather than
// finished.
func (s *Server) Drain() int64 {
	s.BeginDrain()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	timeout := s.cfg.DrainTimeout
	if timeout <= 0 {
		timeout = time.Millisecond
	}
	select {
	case <-done:
	case <-time.After(timeout):
		// Deadline: abort in-flight jobs at their next batch boundary.
		// Queued-but-unstarted jobs inherit the cancelled context and
		// classify as cancelled the moment a worker picks them up.
		s.cancelInflight()
		<-done
	}
	s.publishGauges()
	return s.cancelled.Load()
}
