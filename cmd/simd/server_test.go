package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"twolm/internal/jobspec"
	"twolm/internal/sweep"
)

// testConfig is a small deterministic fleet for the API tests.
func testConfig() Config {
	cfg := Defaults()
	cfg.Workers = 2
	cfg.QueueDepth = 8
	cfg.DrainTimeout = 2 * time.Second
	return cfg
}

// quickJob is a spec small enough to finish in well under a
// millisecond: 64 KiB sequential fill on the seqfold fast path.
const quickJob = `{
  "version": 1,
  "name": "quick",
  "geometry": {"cache_kib": 64},
  "policy": "hardware",
  "workload": {"pattern": "sequential"}
}`

// postJob submits a body and decodes the response JSON into out.
func postJob(t *testing.T, ts *httptest.Server, body string, out any) *http.Response {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode response: %v", err)
		}
	}
	return resp
}

// getJSON fetches a URL and decodes the JSON body.
func getJSON(t *testing.T, url string, out any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s: %v", url, err)
		}
	}
	return resp
}

// waitStatus polls a job until it reaches a terminal state.
func waitStatus(t *testing.T, ts *httptest.Server, id string) statusBody {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		var st statusBody
		getJSON(t, ts.URL+"/v1/jobs/"+id, &st)
		switch st.Status {
		case statusDone, statusFailed, statusTimeout, statusCancelled:
			return st
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("job %s did not finish", id)
	return statusBody{}
}

// TestSubmitPollFetch is the happy path: POST → 202, poll to done,
// fetch the CSV and JSON artifacts, and check they are byte-identical
// to running the same spec through sweep.RunJob directly (the
// cmd/repro -job execution path).
func TestSubmitPollFetch(t *testing.T) {
	srv := NewServer(testConfig())
	defer srv.Drain()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	var sub map[string]string
	resp := postJob(t, ts, quickJob, &sub)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST = %d, want 202", resp.StatusCode)
	}
	if sub["id"] == "" || sub["status"] != statusQueued {
		t.Fatalf("submit body = %v", sub)
	}

	st := waitStatus(t, ts, sub["id"])
	if st.Status != statusDone {
		t.Fatalf("status = %q (%s), want done", st.Status, st.Error)
	}
	if st.Lines == 0 || st.Points != 1 {
		t.Errorf("lines=%d points=%d, want nonzero lines and 1 point", st.Lines, st.Points)
	}

	// The reference run: same spec through the shared execution path.
	spec, err := jobspec.Decode(strings.NewReader(quickJob))
	if err != nil {
		t.Fatal(err)
	}
	want, err := sweep.RunJob(context.Background(), *spec, 1, nil)
	if err != nil {
		t.Fatal(err)
	}

	for _, tc := range []struct {
		query string
		want  []byte
	}{
		{"", want.CSV},
		{"?format=csv", want.CSV},
		{"?format=json", want.JSON},
	} {
		resp, err := http.Get(ts.URL + "/v1/jobs/" + sub["id"] + "/result" + tc.query)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if _, err := buf.ReadFrom(resp.Body); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("result%s = %d", tc.query, resp.StatusCode)
		}
		if !bytes.Equal(buf.Bytes(), tc.want) {
			t.Errorf("result%s differs from direct sweep.RunJob output", tc.query)
		}
	}
}

// TestSubmitValidationErrors pins the 400 contract: strict decoding
// rejects unknown fields, and a spec with several violations reports
// every one with its field path.
func TestSubmitValidationErrors(t *testing.T) {
	srv := NewServer(testConfig())
	defer srv.Drain()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	t.Run("unknown field", func(t *testing.T) {
		var eb errorBody
		resp := postJob(t, ts, `{"version":1,"geometri":{"cache_kib":64}}`, &eb)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("status = %d, want 400", resp.StatusCode)
		}
		if !strings.Contains(eb.Error, "geometri") {
			t.Errorf("error %q does not name the unknown field", eb.Error)
		}
	})

	t.Run("not json", func(t *testing.T) {
		resp := postJob(t, ts, `cache_kib=64`, nil)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("status = %d, want 400", resp.StatusCode)
		}
	})

	t.Run("every violation reported", func(t *testing.T) {
		var eb errorBody
		bad := `{
		  "version": 9,
		  "geometry": {"cache_kib": 0, "ways": -1},
		  "policy": "psychic",
		  "workload": {"pattern": "zigzag", "scale": 3},
		  "timeout_ms": -5
		}`
		resp := postJob(t, ts, bad, &eb)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("status = %d, want 400", resp.StatusCode)
		}
		fields := make(map[string]bool)
		for _, v := range eb.Violations {
			fields[v.Field] = true
		}
		for _, want := range []string{
			"version", "geometry.cache_kib", "geometry.ways",
			"policy", "workload.pattern", "workload.scale", "timeout_ms",
		} {
			if !fields[want] {
				t.Errorf("missing violation for %s; got %v", want, eb.Violations)
			}
		}
	})
}

// TestUnknownJob pins the 404s.
func TestUnknownJob(t *testing.T) {
	srv := NewServer(testConfig())
	defer srv.Drain()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	if resp := getJSON(t, ts.URL+"/v1/jobs/j-99999999", nil); resp.StatusCode != http.StatusNotFound {
		t.Errorf("status GET = %d, want 404", resp.StatusCode)
	}
	if resp := getJSON(t, ts.URL+"/v1/jobs/j-99999999/result", nil); resp.StatusCode != http.StatusNotFound {
		t.Errorf("result GET = %d, want 404", resp.StatusCode)
	}
}

// TestResultBeforeDone pins the 409 while a job is still in flight.
func TestResultBeforeDone(t *testing.T) {
	srv := NewServer(testConfig())
	defer srv.Drain()
	block := make(chan struct{})
	srv.exec = func(ctx context.Context, spec *jobspec.Spec) (*sweep.Result, error) {
		<-block
		return &sweep.Result{}, nil
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	var sub map[string]string
	postJob(t, ts, quickJob, &sub)
	if resp := getJSON(t, ts.URL+"/v1/jobs/"+sub["id"]+"/result", nil); resp.StatusCode != http.StatusConflict {
		t.Errorf("result while running = %d, want 409", resp.StatusCode)
	}
	close(block)
}

// TestQueueFull pins the backpressure contract: with all workers
// blocked and the queue at capacity, the next POST is rejected with
// 429 and a Retry-After header, its id is not registered, and the
// rejection shows up in the stats.
func TestQueueFull(t *testing.T) {
	cfg := testConfig()
	cfg.Workers = 1
	cfg.QueueDepth = 2
	srv := NewServer(cfg)
	defer srv.Drain()
	block := make(chan struct{})
	srv.exec = func(ctx context.Context, spec *jobspec.Spec) (*sweep.Result, error) {
		<-block
		return nil, ctx.Err()
	}
	defer close(block)
	ts := httptest.NewServer(srv)
	defer ts.Close()

	// One job occupies the worker; wait until it is picked up so the
	// queue capacity below is deterministic.
	var first map[string]string
	postJob(t, ts, quickJob, &first)
	deadline := time.Now().Add(5 * time.Second)
	for {
		var st statusBody
		getJSON(t, ts.URL+"/v1/jobs/"+first["id"], &st)
		if st.Status == statusRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("first job never started")
		}
		time.Sleep(time.Millisecond)
	}

	// Fill the queue exactly.
	for i := 0; i < cfg.QueueDepth; i++ {
		if resp := postJob(t, ts, quickJob, nil); resp.StatusCode != http.StatusAccepted {
			t.Fatalf("fill %d = %d, want 202", i, resp.StatusCode)
		}
	}

	var eb errorBody
	resp := postJob(t, ts, quickJob, &eb)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow POST = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}

	var st statsBody
	getJSON(t, ts.URL+"/v1/stats", &st)
	if st.Rejected != 1 {
		t.Errorf("rejected = %d, want 1", st.Rejected)
	}
	if st.Admitted != int64(1+cfg.QueueDepth) {
		t.Errorf("admitted = %d, want %d", st.Admitted, 1+cfg.QueueDepth)
	}
}

// TestDeadlineExceeded pins the per-job deadline: a spec-declared
// timeout_ms lands the job in the timeout state, not failed.
func TestDeadlineExceeded(t *testing.T) {
	srv := NewServer(testConfig())
	defer srv.Drain()
	srv.exec = func(ctx context.Context, spec *jobspec.Spec) (*sweep.Result, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	var sub map[string]string
	postJob(t, ts, `{"version":1,"geometry":{"cache_kib":64},"timeout_ms":20}`, &sub)
	st := waitStatus(t, ts, sub["id"])
	if st.Status != statusTimeout {
		t.Fatalf("status = %q (%s), want timeout", st.Status, st.Error)
	}
	var stats statsBody
	getJSON(t, ts.URL+"/v1/stats", &stats)
	if stats.TimedOut != 1 {
		t.Errorf("timed_out = %d, want 1", stats.TimedOut)
	}
}

// TestPanicIsolation pins the fleet-survival contract: a panicking
// job becomes a failed job; the worker survives and runs the next one.
func TestPanicIsolation(t *testing.T) {
	cfg := testConfig()
	cfg.Workers = 1
	srv := NewServer(cfg)
	defer srv.Drain()
	real := srv.exec
	srv.exec = func(ctx context.Context, spec *jobspec.Spec) (*sweep.Result, error) {
		if spec.Name == "boom" {
			panic("synthetic job panic")
		}
		return real(ctx, spec)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	var bad map[string]string
	postJob(t, ts, `{"version":1,"name":"boom","geometry":{"cache_kib":64}}`, &bad)
	st := waitStatus(t, ts, bad["id"])
	if st.Status != statusFailed || !strings.Contains(st.Error, "panic") {
		t.Fatalf("panicking job: status=%q err=%q, want failed/panic", st.Status, st.Error)
	}

	// The same (sole) worker must still be alive to run this one.
	var good map[string]string
	postJob(t, ts, quickJob, &good)
	if st := waitStatus(t, ts, good["id"]); st.Status != statusDone {
		t.Fatalf("job after panic: status=%q (%s), want done", st.Status, st.Error)
	}
}

// TestGracefulDrain pins the SIGTERM contract: draining stops
// admission (POST 503, healthz 503), lets queued jobs finish inside
// the grace period, and Drain returns with the fleet stopped.
func TestGracefulDrain(t *testing.T) {
	srv := NewServer(testConfig())
	ts := httptest.NewServer(srv)
	defer ts.Close()

	ids := make([]string, 4)
	for i := range ids {
		var sub map[string]string
		postJob(t, ts, quickJob, &sub)
		ids[i] = sub["id"]
	}

	if n := srv.Drain(); n != 0 {
		t.Errorf("drain cancelled %d jobs, want 0 (grace period fits them)", n)
	}
	for _, id := range ids {
		var st statusBody
		getJSON(t, ts.URL+"/v1/jobs/"+id, &st)
		if st.Status != statusDone {
			t.Errorf("job %s after drain: %q (%s), want done", id, st.Status, st.Error)
		}
	}
	if resp := postJob(t, ts, quickJob, nil); resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("POST while drained = %d, want 503", resp.StatusCode)
	}
	if resp := getJSON(t, ts.URL+"/healthz", nil); resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("healthz while drained = %d, want 503", resp.StatusCode)
	}
}

// TestDrainCancelsStuckJobs pins the drain deadline: a job that will
// not finish inside the grace period is cancelled (not abandoned) and
// classified as cancelled, and Drain still returns.
func TestDrainCancelsStuckJobs(t *testing.T) {
	cfg := testConfig()
	cfg.Workers = 1
	cfg.DrainTimeout = 50 * time.Millisecond
	srv := NewServer(cfg)
	started := make(chan struct{})
	srv.exec = func(ctx context.Context, spec *jobspec.Spec) (*sweep.Result, error) {
		close(started)
		<-ctx.Done() // honors cancellation like the real engine, but never finishes on its own
		return nil, ctx.Err()
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	var sub map[string]string
	postJob(t, ts, quickJob, &sub)
	<-started

	done := make(chan int64)
	go func() { done <- srv.Drain() }()
	select {
	case n := <-done:
		if n != 1 {
			t.Errorf("drain cancelled %d jobs, want 1", n)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Drain hung past its deadline")
	}
	var st statusBody
	getJSON(t, ts.URL+"/v1/jobs/"+sub["id"], &st)
	if st.Status != statusCancelled {
		t.Errorf("stuck job after drain: %q, want cancelled", st.Status)
	}
}

// TestMetricsExposition checks the fleet gauges reach the /metrics
// exposition after a job completes.
func TestMetricsExposition(t *testing.T) {
	srv := NewServer(testConfig())
	defer srv.Drain()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	var sub map[string]string
	postJob(t, ts, quickJob, &sub)
	waitStatus(t, ts, sub["id"])

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	body := buf.String()
	for _, metric := range []string{
		"twolm_simd_queue_depth",
		"twolm_simd_workers_busy",
		"twolm_simd_jobs_admitted_total 1",
		"twolm_simd_jobs_completed_total 1",
		"twolm_simd_jobs_rejected_total",
		"twolm_simd_jobs_timeout_total",
		"twolm_simd_demand_lines_total",
		"twolm_simd_bandwidth_lines_per_sec",
	} {
		if !strings.Contains(body, metric) {
			t.Errorf("/metrics missing %q", metric)
		}
	}
}

// TestBodyTooLarge pins the request-size bound.
func TestBodyTooLarge(t *testing.T) {
	cfg := testConfig()
	cfg.MaxBodyBytes = 256
	srv := NewServer(cfg)
	defer srv.Drain()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	big := fmt.Sprintf(`{"version":1,"name":%q,"geometry":{"cache_kib":64}}`,
		strings.Repeat("x", 1024))
	resp := postJob(t, ts, big, nil)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized POST = %d, want 413", resp.StatusCode)
	}
}
