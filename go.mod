module twolm

go 1.22
