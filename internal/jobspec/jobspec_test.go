package jobspec

import (
	"strings"
	"testing"
	"time"
)

func validPoint() string {
	return `{
		"version": 1,
		"name": "point",
		"geometry": {"cache_kib": 256, "ways": 1, "channels": 2, "dimms": 1},
		"policy": "hardware",
		"workload": {"pattern": "random", "ratio": 4, "seed": 11034, "passes": 1},
		"telemetry": {"sample_lines": 4096, "formats": ["csv", "json"]},
		"timeout_ms": 5000
	}`
}

func validGrid() string {
	return `{
		"version": 1,
		"name": "grid",
		"sweep": {
			"cache_kib": [64, 128],
			"policies": ["hardware", "ddo-off"],
			"ratios": [2, 4],
			"patterns": ["sequential", "random"]
		}
	}`
}

func TestDecodeValidPoint(t *testing.T) {
	s, err := Decode(strings.NewReader(validPoint()))
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if s.Geometry == nil || s.Sweep != nil {
		t.Fatalf("expected point form, got %+v", s)
	}
	if got := s.Timeout(); got != 5*time.Second {
		t.Fatalf("Timeout = %v, want 5s", got)
	}
	if !s.WantsFormat(FormatCSV) || !s.WantsFormat(FormatJSON) {
		t.Fatalf("formats not honored: %+v", s.Telemetry)
	}
}

func TestDecodeValidGrid(t *testing.T) {
	s, err := Decode(strings.NewReader(validGrid()))
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if s.Sweep == nil || s.Geometry != nil {
		t.Fatalf("expected grid form, got %+v", s)
	}
}

func TestDecodeRejectsUnknownFields(t *testing.T) {
	cases := map[string]string{
		"top level":  `{"version": 1, "geometry": {"cache_kib": 64}, "bogus": true}`,
		"geometry":   `{"version": 1, "geometry": {"cache_kib": 64, "cache_kb": 64}}`,
		"workload":   `{"version": 1, "geometry": {"cache_kib": 64}, "workload": {"patern": "random"}}`,
		"sweep axis": `{"version": 1, "sweep": {"cache_kib": [64], "way": [2]}}`,
		"telemetry":  `{"version": 1, "geometry": {"cache_kib": 64}, "telemetry": {"sampleLines": 4}}`,
	}
	for name, doc := range cases {
		if _, err := Decode(strings.NewReader(doc)); err == nil {
			t.Errorf("%s: unknown field accepted", name)
		}
	}
}

func TestDecodeRejectsTrailingData(t *testing.T) {
	if _, err := Decode(strings.NewReader(validPoint() + `{"version": 1}`)); err == nil {
		t.Fatal("trailing document accepted")
	}
}

func TestNormalizedDefaults(t *testing.T) {
	s := Spec{Version: 1, Geometry: &Geometry{CacheKiB: 64}}
	n := s.Normalized()
	g := n.Geometry
	if g.Ways != 1 || g.Channels != 1 || g.DIMMs != 1 {
		t.Fatalf("geometry defaults: %+v", g)
	}
	if n.Policy != PolicyHardware {
		t.Fatalf("policy default = %q", n.Policy)
	}
	w := n.Workload
	if w.Pattern != PatternSequential || w.Ratio != DefaultRatio ||
		w.Seed != DefaultSeed || w.Scale != 1 || w.Passes != 1 {
		t.Fatalf("workload defaults: %+v", w)
	}
	if len(n.Telemetry.Formats) != 2 {
		t.Fatalf("format defaults: %+v", n.Telemetry)
	}
	// The input spec must be untouched (value semantics).
	if s.Workload != nil || s.Policy != "" || s.Telemetry != nil {
		t.Fatalf("Normalized mutated its receiver: %+v", s)
	}
}

func TestNormalizedAxesDefaults(t *testing.T) {
	a := Axes{CacheKiB: []uint64{64}}.Normalized()
	if len(a.Ways) != 1 || a.Ways[0] != 1 {
		t.Fatalf("ways default: %v", a.Ways)
	}
	if len(a.Policies) != 1 || a.Policies[0] != PolicyHardware {
		t.Fatalf("policies default: %v", a.Policies)
	}
	if len(a.Seeds) != 1 || a.Seeds[0] != DefaultSeed {
		t.Fatalf("seeds default: %v", a.Seeds)
	}
	if a.Passes != 1 {
		t.Fatalf("passes default: %d", a.Passes)
	}
}

// TestValidateCollectsEveryViolation is the contract the 400-response
// of cmd/simd depends on: one pass reports all problems.
func TestValidateCollectsEveryViolation(t *testing.T) {
	s := Spec{
		Version: 3,
		Geometry: &Geometry{
			CacheKiB: 100, // not ways*line aligned for ways=3... but ways invalid first
			Ways:     -1,
			Channels: 0, // defaults to 1, fine
		},
		Policy:    "banshee",
		Workload:  &Workload{Pattern: "zigzag", Scale: 3, Passes: -2},
		Telemetry: &Telemetry{Formats: []string{"csv", "parquet"}},
		TimeoutMS: -5,
	}
	err := s.Validate()
	if err == nil {
		t.Fatal("invalid spec validated")
	}
	verrs, ok := err.(*Errors)
	if !ok {
		t.Fatalf("error type %T, want *Errors", err)
	}
	want := map[string]bool{
		"version":              false,
		"geometry.ways":        false,
		"policy":               false,
		"workload.pattern":     false,
		"workload.scale":       false,
		"workload.passes":      false,
		"telemetry.formats[1]": false,
		"timeout_ms":           false,
	}
	for _, v := range verrs.Violations {
		if _, expected := want[v.Field]; expected {
			want[v.Field] = true
		} else {
			t.Errorf("unexpected violation %s: %s", v.Field, v.Msg)
		}
	}
	for field, seen := range map[string]bool(want) {
		if !seen {
			t.Errorf("missing violation for %s (got %v)", field, verrs.Violations)
		}
	}
}

func TestValidateExclusivity(t *testing.T) {
	both := Spec{Version: 1,
		Geometry: &Geometry{CacheKiB: 64},
		Sweep:    &Axes{CacheKiB: []uint64{64}}}
	if both.Validate() == nil {
		t.Fatal("geometry+sweep accepted")
	}
	neither := Spec{Version: 1}
	if neither.Validate() == nil {
		t.Fatal("empty spec accepted")
	}
}

func TestValidateGridRejectsPointFields(t *testing.T) {
	s := Spec{Version: 1,
		Sweep:    &Axes{CacheKiB: []uint64{64}},
		Policy:   PolicyHardware,
		Workload: &Workload{Pattern: PatternRandom}}
	err := s.Validate()
	if err == nil {
		t.Fatal("grid spec with point-form policy/workload accepted")
	}
	msg := err.Error()
	if !strings.Contains(msg, "workload") || !strings.Contains(msg, "policy") {
		t.Fatalf("missing violations: %v", msg)
	}
}

func TestValidateAlignment(t *testing.T) {
	// 1 KiB over 3 ways: 1024 % (64*3) != 0.
	s := Spec{Version: 1, Geometry: &Geometry{CacheKiB: 1, Ways: 3}}
	if s.Validate() == nil {
		t.Fatal("misaligned cache/ways accepted")
	}
	// The same rule applies pairwise across grid axes.
	g := Spec{Version: 1, Sweep: &Axes{CacheKiB: []uint64{1, 64}, Ways: []int{1, 3}}}
	err := g.Validate()
	if err == nil {
		t.Fatal("misaligned grid cell accepted")
	}
	if !strings.Contains(err.Error(), "sweep.cache_kib[0]") {
		t.Fatalf("violation not addressed to the axis element: %v", err)
	}
	// 64 KiB over 1 or 3 ways is fine... 65536 % 192 = 64, not fine for 3.
	if !strings.Contains(err.Error(), "sweep.cache_kib[1]") {
		t.Fatalf("expected 64 KiB x 3 ways violation too: %v", err)
	}
	ok := Spec{Version: 1, Sweep: &Axes{CacheKiB: []uint64{192}, Ways: []int{1, 3}}}
	if err := ok.Validate(); err != nil {
		t.Fatalf("aligned grid rejected: %v", err)
	}
}

func TestValidateGoodDefaultsPass(t *testing.T) {
	s := Spec{Version: 1, Geometry: &Geometry{CacheKiB: 4096}}
	if err := s.Validate(); err != nil {
		t.Fatalf("minimal point spec rejected: %v", err)
	}
	g := Spec{Version: 1, Sweep: &Axes{CacheKiB: []uint64{64, 128}}}
	if err := g.Validate(); err != nil {
		t.Fatalf("minimal grid spec rejected: %v", err)
	}
}
