// Package jobspec defines the canonical, versioned job description of
// the simulator: one JSON shape that names a controller geometry, a
// policy ablation, a workload, and the telemetry artifacts a run must
// produce. It is the API-redesign core behind simulation-as-a-service:
// the same spec file drives `cmd/repro -job`, `cmd/nvsweep -job`, and
// a `POST /v1/jobs` to `cmd/simd`, and all three produce byte-identical
// result artifacts because they all execute through the same expansion
// of the same spec.
//
// The spec comes in two forms, discriminated by which section is set:
//
//   - the single-point form (`geometry` + optional `policy`/`workload`)
//     names exactly one job;
//   - the grid form (`sweep`) names a multi-axis cross product — the
//     Axes type here is what internal/sweep composes its Spec from.
//
// Decoding is strict: Decode rejects unknown fields anywhere in the
// document (a typo'd axis must fail loudly, not silently run the
// default), and Validate reports every violation at once with a field
// path per finding, so a client fixes a bad spec in one round trip.
//
// Versioning and compatibility rules (DESIGN.md §4i): `version` is
// required and currently must be 1. Adding optional fields with
// defaults is a compatible change within a version; removing fields,
// changing a default, or changing the meaning of a field requires a
// version bump, and consumers reject versions they do not know.
package jobspec

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"twolm/internal/mem"
)

// Version is the one spec version this tree understands.
const Version = 1

// Pattern names accepted by Workload.Pattern and Axes.Patterns. These
// are the canonical definitions; internal/sweep aliases them.
const (
	// PatternSequential streams a demand-read pass followed by a
	// writeback pass over the footprint — the paper's streaming regime.
	PatternSequential = "sequential"
	// PatternRandom issues an LFSR-ordered read/write mix over the
	// footprint — the paper's random-access regime.
	PatternRandom = "random"
	// PatternWrite streams writeback-only passes — the NT-store regime
	// that exercises DDO and write-allocate policy.
	PatternWrite = "write"
)

// Policy ablation names accepted by Spec.Policy and Axes.Policies,
// matching the acceptance matrix used by the differential tests.
const (
	PolicyHardware        = "hardware"
	PolicyNoWriteAllocate = "no-write-allocate"
	PolicyNoReadAllocate  = "no-read-allocate"
	PolicyDDOOff          = "ddo-off"
)

// Artifact format names accepted by Telemetry.Formats.
const (
	FormatCSV  = "csv"
	FormatJSON = "json"
)

// Result artifact names — the on-disk (and over-the-wire) contract
// shared by cmd/repro -job, cmd/nvsweep -job, and cmd/simd results.
const (
	ResultCSVName  = "job_results.csv"
	ResultJSONName = "job_results.json"
	TraceCSVName   = "job_trace.csv"
	TraceJSONName  = "job_trace.json"
)

// DefaultSeed is the default random-pattern seed (the throughput
// benchmark seed used across the repository).
const DefaultSeed uint32 = 0x2B1A

// DefaultRatio is the default NVRAM:DRAM capacity ratio: footprint =
// ratio x cache capacity, so every ratio >= 2 runs the paper's
// miss-heavy regime.
const DefaultRatio uint64 = 2

// Geometry fixes the controller's allocation shape: DRAM-cache
// capacity, tag-store associativity, and the channel/DIMM topology.
type Geometry struct {
	// CacheKiB is the DRAM-cache capacity in KiB. Required: it is the
	// one field without a default.
	CacheKiB uint64 `json:"cache_kib"`
	// Ways is the tag-store associativity (default 1, the Cascade Lake
	// direct-mapped hardware).
	Ways int `json:"ways,omitempty"`
	// Channels is the DRAM channel count (default 1).
	Channels int `json:"channels,omitempty"`
	// DIMMs is the NVRAM DIMM count (default 1).
	DIMMs int `json:"dimms,omitempty"`
}

// Workload names the demand stream a single-point job issues.
type Workload struct {
	// Pattern is the stream shape (default sequential). See the
	// Pattern* constants.
	Pattern string `json:"pattern,omitempty"`
	// Ratio is the NVRAM:DRAM capacity ratio; the footprint is
	// Ratio x the cache capacity (default 2).
	Ratio uint64 `json:"ratio,omitempty"`
	// Seed seeds the LFSR order of random patterns (default
	// DefaultSeed; ignored by seed-independent patterns).
	Seed uint32 `json:"seed,omitempty"`
	// Scale is the footprint scale divisor (a power of two, default
	// 1): each pass touches Lines/Scale demand lines, the same
	// semantics as the shared -scale flag.
	Scale uint64 `json:"scale,omitempty"`
	// Passes is how many times the pattern repeats (default 1).
	Passes int `json:"passes,omitempty"`
}

// Telemetry selects the artifacts a job run must produce beyond its
// result rows.
type Telemetry struct {
	// SampleLines, when nonzero, records a deterministic bandwidth
	// trace of the run, sampled every SampleLines demand lines — the
	// Figure 5-9-style artifact. Only single-point jobs record traces
	// (a grid's points would interleave nondeterministically).
	SampleLines uint64 `json:"sample_lines,omitempty"`
	// Formats lists the artifact serializations to write (default
	// both csv and json). See the Format* constants.
	Formats []string `json:"formats,omitempty"`
}

// Axes is the multi-axis grid form: each field is one axis and the
// job is the cross product, expanded by internal/sweep in fixed
// documented order. sweep.Spec is the named composition of this type.
type Axes struct {
	// CacheKiB is the DRAM-cache capacity axis, in KiB. Required.
	CacheKiB []uint64 `json:"cache_kib"`
	// Ways is the associativity axis (default [1]).
	Ways []int `json:"ways,omitempty"`
	// Policies is the allocation-policy ablation axis (default
	// [hardware]).
	Policies []string `json:"policies,omitempty"`
	// Channels is the DRAM channel-count axis (default [1]).
	Channels []int `json:"channels,omitempty"`
	// DIMMs is the NVRAM DIMM-count axis (default [1]).
	DIMMs []int `json:"dimms,omitempty"`
	// Ratios is the NVRAM:DRAM capacity-ratio axis (default [2]).
	Ratios []uint64 `json:"ratios,omitempty"`
	// Patterns is the workload-pattern axis (default [sequential]).
	Patterns []string `json:"patterns,omitempty"`
	// Seeds is the random-pattern seed axis (default [DefaultSeed]).
	// Only random points vary by seed; other patterns expand once,
	// pinned to Seeds[0].
	Seeds []uint32 `json:"seeds,omitempty"`
	// Passes is how many times each point repeats its pattern
	// (default 1).
	Passes int `json:"passes,omitempty"`
	// SampleLines, when nonzero, caps the demand lines each pass
	// touches, bounding per-point cost independent of footprint.
	SampleLines uint64 `json:"sample_lines,omitempty"`
}

// Spec is the canonical versioned job description. Exactly one of
// Geometry (single point) or Sweep (grid) must be set.
type Spec struct {
	// Version is the spec schema version; must be Version (1).
	Version int `json:"version"`
	// Name labels the job in artifacts and progress gauges.
	Name string `json:"name,omitempty"`

	// Geometry selects the single-point form.
	Geometry *Geometry `json:"geometry,omitempty"`
	// Policy is the single-point allocation-policy ablation (default
	// hardware). See the Policy* constants.
	Policy string `json:"policy,omitempty"`
	// Workload is the single-point demand stream (defaults apply when
	// omitted).
	Workload *Workload `json:"workload,omitempty"`

	// Sweep selects the grid form.
	Sweep *Axes `json:"sweep,omitempty"`

	// Telemetry selects trace artifacts and serializations.
	Telemetry *Telemetry `json:"telemetry,omitempty"`

	// TimeoutMS is the job's execution deadline in milliseconds
	// (0 = the server's default). Enforced by cmd/simd via
	// context.Context threaded through job execution.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// Timeout returns TimeoutMS as a duration.
func (s Spec) Timeout() time.Duration { return time.Duration(s.TimeoutMS) * time.Millisecond }

// Normalized returns the spec with every defaultable field filled in:
// the single canonical defaulting rule all consumers share. Slices
// already present are kept (not copied); only absent sections and
// zero fields are replaced.
func (s Spec) Normalized() Spec {
	if s.Geometry != nil {
		g := *s.Geometry
		if g.Ways == 0 {
			g.Ways = 1
		}
		if g.Channels == 0 {
			g.Channels = 1
		}
		if g.DIMMs == 0 {
			g.DIMMs = 1
		}
		s.Geometry = &g
		if s.Policy == "" {
			s.Policy = PolicyHardware
		}
		w := Workload{}
		if s.Workload != nil {
			w = *s.Workload
		}
		if w.Pattern == "" {
			w.Pattern = PatternSequential
		}
		if w.Ratio == 0 {
			w.Ratio = DefaultRatio
		}
		if w.Seed == 0 {
			w.Seed = DefaultSeed
		}
		if w.Scale == 0 {
			w.Scale = 1
		}
		if w.Passes == 0 {
			w.Passes = 1
		}
		s.Workload = &w
	}
	if s.Sweep != nil {
		a := s.Sweep.Normalized()
		s.Sweep = &a
	}
	t := Telemetry{}
	if s.Telemetry != nil {
		t = *s.Telemetry
	}
	if len(t.Formats) == 0 {
		t.Formats = []string{FormatCSV, FormatJSON}
	}
	s.Telemetry = &t
	return s
}

// Normalized returns the axes with every defaultable axis filled in
// with its single-element default — the same rule sweep.Spec uses.
func (a Axes) Normalized() Axes {
	if len(a.Ways) == 0 {
		a.Ways = []int{1}
	}
	if len(a.Policies) == 0 {
		a.Policies = []string{PolicyHardware}
	}
	if len(a.Channels) == 0 {
		a.Channels = []int{1}
	}
	if len(a.DIMMs) == 0 {
		a.DIMMs = []int{1}
	}
	if len(a.Ratios) == 0 {
		a.Ratios = []uint64{DefaultRatio}
	}
	if len(a.Patterns) == 0 {
		a.Patterns = []string{PatternSequential}
	}
	if len(a.Seeds) == 0 {
		a.Seeds = []uint32{DefaultSeed}
	}
	if a.Passes == 0 {
		a.Passes = 1
	}
	return a
}

// FieldError is one validation violation, addressed by the JSON field
// path it applies to.
type FieldError struct {
	Field string `json:"field"`
	Msg   string `json:"msg"`
}

// Errors is the multi-violation validation error: Validate returns
// every problem in one pass, not just the first, so a client fixes a
// bad spec in one round trip. It serializes as the 400-response body
// of cmd/simd.
type Errors struct {
	Violations []FieldError `json:"violations"`
}

func (e *Errors) Error() string {
	parts := make([]string, len(e.Violations))
	for i, v := range e.Violations {
		parts[i] = v.Field + ": " + v.Msg
	}
	return "jobspec: invalid spec: " + strings.Join(parts, "; ")
}

// add appends one violation.
func (e *Errors) add(field, format string, args ...any) {
	e.Violations = append(e.Violations, FieldError{Field: field, Msg: fmt.Sprintf(format, args...)})
}

// ValidPattern reports whether name is a known pattern.
func ValidPattern(name string) bool {
	return name == PatternSequential || name == PatternRandom || name == PatternWrite
}

// ValidPolicy reports whether name is a known policy ablation.
func ValidPolicy(name string) bool {
	switch name {
	case PolicyHardware, PolicyNoWriteAllocate, PolicyNoReadAllocate, PolicyDDOOff:
		return true
	}
	return false
}

// checkGeometry validates one resolved geometry combination — the
// shared rule for the point form, each grid cell, and sweep expansion.
func checkGeometry(e *Errors, prefix string, cacheKiB uint64, ways, channels, dimms int) {
	if cacheKiB == 0 {
		e.add(prefix+".cache_kib", "cache capacity is required and must be positive")
	}
	if ways < 1 {
		e.add(prefix+".ways", "associativity %d must be >= 1", ways)
	} else if cacheKiB != 0 && (cacheKiB*1024)%(mem.Line*uint64(ways)) != 0 {
		e.add(prefix+".cache_kib", "%d KiB is not a multiple of %d ways x %d B lines", cacheKiB, ways, mem.Line)
	}
	if channels < 1 {
		e.add(prefix+".channels", "channel count %d must be >= 1", channels)
	}
	if dimms < 1 {
		e.add(prefix+".dimms", "dimm count %d must be >= 1", dimms)
	}
}

// Validate checks the spec and returns nil or an *Errors listing
// every violation. Defaults are applied first (via Normalized), so a
// zero field with a default is never a violation — only values that
// cannot be defaulted into validity are.
func (s Spec) Validate() error {
	e := &Errors{}
	if s.Version != Version {
		e.add("version", "unsupported spec version %d (this build understands %d)", s.Version, Version)
	}
	switch {
	case s.Geometry == nil && s.Sweep == nil:
		e.add("geometry", "either geometry (single point) or sweep (grid) is required")
	case s.Geometry != nil && s.Sweep != nil:
		e.add("geometry", "geometry and sweep are mutually exclusive")
	}
	if s.Sweep != nil {
		if s.Workload != nil {
			e.add("workload", "workload applies to the single-point form; use the sweep axes")
		}
		if s.Policy != "" {
			e.add("policy", "policy applies to the single-point form; use sweep.policies")
		}
	}
	n := s.Normalized()
	if g := n.Geometry; g != nil && s.Sweep == nil {
		checkGeometry(e, "geometry", g.CacheKiB, g.Ways, g.Channels, g.DIMMs)
		w := n.Workload
		if !ValidPattern(w.Pattern) {
			e.add("workload.pattern", "unknown pattern %q (want %s|%s|%s)",
				w.Pattern, PatternSequential, PatternRandom, PatternWrite)
		}
		if !ValidPolicy(n.Policy) {
			e.add("policy", "unknown policy %q (want %s|%s|%s|%s)",
				n.Policy, PolicyHardware, PolicyNoWriteAllocate, PolicyNoReadAllocate, PolicyDDOOff)
		}
		if w.Scale&(w.Scale-1) != 0 {
			e.add("workload.scale", "scale %d must be a power of two", w.Scale)
		}
		if w.Passes < 1 {
			e.add("workload.passes", "passes %d must be >= 1", w.Passes)
		}
	}
	if a := n.Sweep; a != nil && s.Geometry == nil {
		validateAxes(e, a)
	}
	for i, f := range n.Telemetry.Formats {
		if f != FormatCSV && f != FormatJSON {
			e.add(fmt.Sprintf("telemetry.formats[%d]", i), "unknown format %q (want %s|%s)", f, FormatCSV, FormatJSON)
		}
	}
	if s.TimeoutMS < 0 {
		e.add("timeout_ms", "timeout %d must be >= 0", s.TimeoutMS)
	}
	if len(e.Violations) == 0 {
		return nil
	}
	return e
}

// validateAxes checks every element of every axis, including the
// pairwise cache/ways alignment of each grid cell.
func validateAxes(e *Errors, a *Axes) {
	if len(a.CacheKiB) == 0 {
		e.add("sweep.cache_kib", "the cache-capacity axis is required and must be non-empty")
	}
	for i, kib := range a.CacheKiB {
		if kib == 0 {
			e.add(fmt.Sprintf("sweep.cache_kib[%d]", i), "cache capacity must be positive")
			continue
		}
		for j, ways := range a.Ways {
			if ways >= 1 && (kib*1024)%(mem.Line*uint64(ways)) != 0 {
				e.add(fmt.Sprintf("sweep.cache_kib[%d]", i),
					"%d KiB is not a multiple of ways[%d]=%d x %d B lines", kib, j, ways, mem.Line)
			}
		}
	}
	for i, w := range a.Ways {
		if w < 1 {
			e.add(fmt.Sprintf("sweep.ways[%d]", i), "associativity %d must be >= 1", w)
		}
	}
	for i, p := range a.Policies {
		if !ValidPolicy(p) {
			e.add(fmt.Sprintf("sweep.policies[%d]", i), "unknown policy %q (want %s|%s|%s|%s)",
				p, PolicyHardware, PolicyNoWriteAllocate, PolicyNoReadAllocate, PolicyDDOOff)
		}
	}
	for i, c := range a.Channels {
		if c < 1 {
			e.add(fmt.Sprintf("sweep.channels[%d]", i), "channel count %d must be >= 1", c)
		}
	}
	for i, d := range a.DIMMs {
		if d < 1 {
			e.add(fmt.Sprintf("sweep.dimms[%d]", i), "dimm count %d must be >= 1", d)
		}
	}
	for i, r := range a.Ratios {
		if r < 1 {
			e.add(fmt.Sprintf("sweep.ratios[%d]", i), "ratio %d must be >= 1", r)
		}
	}
	for i, p := range a.Patterns {
		if !ValidPattern(p) {
			e.add(fmt.Sprintf("sweep.patterns[%d]", i), "unknown pattern %q (want %s|%s|%s)",
				p, PatternSequential, PatternRandom, PatternWrite)
		}
	}
	if a.Passes < 1 {
		e.add("sweep.passes", "passes %d must be >= 1", a.Passes)
	}
}

// WantsFormat reports whether the normalized telemetry section asks
// for the given serialization.
func (s Spec) WantsFormat(format string) bool {
	n := s.Normalized()
	for _, f := range n.Telemetry.Formats {
		if f == format {
			return true
		}
	}
	return false
}

// Decode strictly decodes one spec from r: unknown fields anywhere in
// the document are rejected, trailing data is rejected, and the
// decoded spec must validate. This is the one wire/file decoding path
// shared by the -job flag and cmd/simd.
func Decode(r io.Reader) (*Spec, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("jobspec: %w", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("jobspec: trailing data after the spec document")
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// Load reads, strictly decodes, and validates a spec file.
func Load(path string) (*Spec, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	s, err := Decode(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}
