package tensor

import (
	"testing"
	"testing/quick"
)

func TestShapeElems(t *testing.T) {
	cases := []struct {
		s    Shape
		want uint64
	}{
		{Shape{}, 1},
		{Shape{5}, 5},
		{Shape{2, 3, 4}, 24},
		{NHWC(8, 224, 224, 3), 8 * 224 * 224 * 3},
		{Shape{2, 0, 4}, 0},
		{Shape{-1, 4}, 0},
	}
	for _, c := range cases {
		if got := c.s.Elems(); got != c.want {
			t.Errorf("%v.Elems() = %d, want %d", c.s, got, c.want)
		}
	}
}

func TestShapeBytes(t *testing.T) {
	s := Shape{10, 10}
	if got := s.Bytes(F32); got != 400 {
		t.Errorf("F32 bytes = %d, want 400", got)
	}
	if got := s.Bytes(F16); got != 200 {
		t.Errorf("F16 bytes = %d, want 200", got)
	}
}

func TestDTypeStringsAndSizes(t *testing.T) {
	if F32.Size() != 4 || F16.Size() != 2 {
		t.Error("unexpected dtype sizes")
	}
	if F32.String() != "f32" || F16.String() != "f16" {
		t.Error("unexpected dtype strings")
	}
}

func TestShapeString(t *testing.T) {
	if got := (Shape{1, 2, 3}).String(); got != "[1x2x3]" {
		t.Errorf("String = %q", got)
	}
}

func TestConv2DOut(t *testing.T) {
	cases := []struct {
		in, k, stride, pad, want int
	}{
		{224, 7, 2, 3, 112}, // ResNet stem
		{112, 3, 2, 1, 56},  // stem pool
		{56, 3, 1, 1, 56},   // same-padded 3x3
		{56, 1, 1, 0, 56},   // pointwise
		{56, 2, 2, 0, 28},   // transition pool
		{299, 3, 2, 0, 149}, // Inception stem
	}
	for _, c := range cases {
		if got := Conv2DOut(c.in, c.k, c.stride, c.pad); got != c.want {
			t.Errorf("Conv2DOut(%d,%d,%d,%d) = %d, want %d", c.in, c.k, c.stride, c.pad, got, c.want)
		}
	}
}

func TestConv2DOutProperty(t *testing.T) {
	// Same-padded stride-1 convolutions preserve spatial size for odd
	// kernels.
	f := func(inRaw uint8, kRaw uint8) bool {
		in := int(inRaw%200) + 8
		k := int(kRaw%4)*2 + 1 // 1,3,5,7
		return Conv2DOut(in, k, 1, k/2) == in
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
