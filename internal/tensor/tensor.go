// Package tensor provides shapes and dtype sizing for the CNN
// workload substrate. Tensors here are *descriptors* — the simulator
// cares about sizes, lifetimes and placement, not values.
package tensor

import (
	"fmt"
	"strings"
)

// DType is an element type.
type DType uint8

const (
	// F32 is 32-bit floating point, the training dtype the paper's
	// ngraph workloads use.
	F32 DType = iota
	// F16 is 16-bit floating point (for ablations).
	F16
)

// Size returns the element size in bytes.
func (d DType) Size() uint64 {
	switch d {
	case F16:
		return 2
	default:
		return 4
	}
}

// String implements fmt.Stringer.
func (d DType) String() string {
	if d == F16 {
		return "f16"
	}
	return "f32"
}

// Shape is a tensor shape in NHWC layout for activations ([n, h, w, c])
// or arbitrary layout for weights.
type Shape []int

// Elems returns the element count (1 for a scalar/empty shape).
func (s Shape) Elems() uint64 {
	n := uint64(1)
	for _, d := range s {
		if d <= 0 {
			return 0
		}
		n *= uint64(d)
	}
	return n
}

// Bytes returns the byte size of a tensor of this shape and dtype.
func (s Shape) Bytes(d DType) uint64 { return s.Elems() * d.Size() }

// String implements fmt.Stringer.
func (s Shape) String() string {
	parts := make([]string, len(s))
	for i, d := range s {
		parts[i] = fmt.Sprint(d)
	}
	return "[" + strings.Join(parts, "x") + "]"
}

// NHWC builds an activation shape.
func NHWC(n, h, w, c int) Shape { return Shape{n, h, w, c} }

// Conv2DOut returns the output spatial size for a convolution or
// pooling with the given kernel, stride and symmetric padding.
func Conv2DOut(in, kernel, stride, pad int) int {
	return (in+2*pad-kernel)/stride + 1
}
