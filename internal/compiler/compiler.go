// Package compiler is the ngraph-like backend for nn programs: it
// computes tensor lifetimes, lays every tensor out in one contiguous
// heap with a best-fit reusing allocator (ngraph "allocates a single
// buffer for the entire network"; the paper's Figure 5d plots offsets
// into that buffer), and models per-kernel compute time with a simple
// roofline.
//
// The allocator's reuse of freed regions during the backward pass is
// what produces the paper's central CNN pathology: backward-pass
// tensors are written into heap space whose previous occupants are
// still *dirty in the DRAM cache*, so the hardware writes dead data
// back to NVRAM.
package compiler

import (
	"fmt"
	"sort"

	"twolm/internal/mem"
	"twolm/internal/nn"
)

// Plan is a compiled program: scaled tensor sizes, heap offsets and
// lifetimes.
type Plan struct {
	Prog *nn.Program
	// Scale is the footprint divisor applied to every tensor.
	Scale uint64
	// Bytes is the scaled, line-aligned size of each tensor.
	Bytes []uint64
	// Offsets is each tensor's byte offset in the heap. Offsets of
	// tensors with disjoint lifetimes may alias — that is the reuse
	// the study depends on.
	Offsets []uint64
	// HeapSize is the scaled peak heap extent (the program footprint).
	HeapSize uint64
	// FirstDef and LastUse are kernel indices bounding each tensor's
	// lifetime. Weights have FirstDef -1 and LastUse len(kernels).
	FirstDef []int
	LastUse  []int
}

// freeBlock is one region of the allocator's free list.
type freeBlock struct {
	off, size uint64
}

// freeList is a best-fit allocator with coalescing over [0, inf); the
// heap end grows on demand.
type freeList struct {
	blocks []freeBlock // sorted by offset
	end    uint64      // current heap extent
}

// alloc returns the offset of a best-fit block of n bytes, growing the
// heap if nothing fits.
func (f *freeList) alloc(n uint64) uint64 {
	best := -1
	for i, b := range f.blocks {
		if b.size >= n && (best < 0 || b.size < f.blocks[best].size) {
			best = i
		}
	}
	if best >= 0 {
		b := f.blocks[best]
		if b.size == n {
			f.blocks = append(f.blocks[:best], f.blocks[best+1:]...)
		} else {
			f.blocks[best].off += n
			f.blocks[best].size -= n
		}
		return b.off
	}
	// Grow: if the heap ends with a free tail adjacent to end, extend it.
	off := f.end
	if k := len(f.blocks); k > 0 {
		last := f.blocks[k-1]
		if last.off+last.size == f.end {
			off = last.off
			f.blocks = f.blocks[:k-1]
		}
	}
	f.end = off + n
	return off
}

// free returns a region to the free list, coalescing neighbors.
func (f *freeList) free(off, size uint64) {
	i := sort.Search(len(f.blocks), func(i int) bool { return f.blocks[i].off >= off })
	f.blocks = append(f.blocks, freeBlock{})
	copy(f.blocks[i+1:], f.blocks[i:])
	f.blocks[i] = freeBlock{off, size}
	// Coalesce with successor, then predecessor.
	if i+1 < len(f.blocks) && f.blocks[i].off+f.blocks[i].size == f.blocks[i+1].off {
		f.blocks[i].size += f.blocks[i+1].size
		f.blocks = append(f.blocks[:i+1], f.blocks[i+2:]...)
	}
	if i > 0 && f.blocks[i-1].off+f.blocks[i-1].size == f.blocks[i].off {
		f.blocks[i-1].size += f.blocks[i].size
		f.blocks = append(f.blocks[:i], f.blocks[i+1:]...)
	}
}

// Compile lays out prog at the given footprint scale (a power of two;
// 1 means full size).
func Compile(prog *nn.Program, scale uint64) (*Plan, error) {
	if scale == 0 || scale&(scale-1) != 0 {
		return nil, fmt.Errorf("compiler: scale %d must be a nonzero power of two", scale)
	}
	if err := prog.Validate(); err != nil {
		return nil, err
	}
	nT := len(prog.Tensors)
	nK := len(prog.Kernels)
	plan := &Plan{
		Prog:     prog,
		Scale:    scale,
		Bytes:    make([]uint64, nT),
		Offsets:  make([]uint64, nT),
		FirstDef: make([]int, nT),
		LastUse:  make([]int, nT),
	}
	for i, t := range prog.Tensors {
		b := t.Bytes() / scale
		if b < mem.Line {
			b = mem.Line
		}
		plan.Bytes[i] = mem.AlignUp(b, mem.Line)
		plan.FirstDef[i] = -1
		plan.LastUse[i] = -1
	}

	for ki, k := range prog.Kernels {
		for _, t := range k.Writes {
			if plan.FirstDef[t] < 0 {
				plan.FirstDef[t] = ki
			}
			plan.LastUse[t] = ki
		}
		for _, t := range k.Reads {
			plan.LastUse[t] = ki
		}
	}

	// Weights persist for the whole program at the base of the heap.
	var fl freeList
	for i, t := range prog.Tensors {
		if t.Kind == nn.Weight {
			plan.Offsets[i] = fl.alloc(plan.Bytes[i])
			plan.FirstDef[i] = -1
			plan.LastUse[i] = nK
		}
	}

	// Dynamic tensors: allocate at first definition, free after last use.
	freeAt := make([][]int, nK)
	for i, t := range prog.Tensors {
		if t.Kind == nn.Weight || plan.LastUse[i] < 0 {
			continue
		}
		freeAt[plan.LastUse[i]] = append(freeAt[plan.LastUse[i]], i)
	}
	for ki, k := range prog.Kernels {
		for _, t := range k.Writes {
			if prog.Tensors[t].Kind != nn.Weight && plan.FirstDef[t] == ki {
				plan.Offsets[t] = fl.alloc(plan.Bytes[t])
			}
		}
		for _, t := range freeAt[ki] {
			fl.free(plan.Offsets[t], plan.Bytes[t])
		}
	}
	plan.HeapSize = fl.end
	return plan, nil
}

// Region returns the heap-relative region of tensor id, offset by base.
func (p *Plan) Region(base uint64, id int) mem.Region {
	return mem.Region{Base: base + p.Offsets[id], Size: p.Bytes[id]}
}

// LiveBytesAt returns the total bytes of non-weight tensors live when
// kernel k executes (defined at or before k, last used at or after k).
func (p *Plan) LiveBytesAt(k int) uint64 {
	var n uint64
	for i := range p.Bytes {
		if p.Prog.Tensors[i].Kind == nn.Weight {
			continue
		}
		if p.FirstDef[i] >= 0 && p.FirstDef[i] <= k && p.LastUse[i] >= k {
			n += p.Bytes[i]
		}
	}
	return n
}

// KernelBytes returns the scaled bytes a kernel reads and writes.
func (p *Plan) KernelBytes(k int) (reads, writes uint64) {
	kr := p.Prog.Kernels[k]
	for _, t := range kr.Reads {
		reads += p.Bytes[t]
	}
	for _, t := range kr.Writes {
		writes += p.Bytes[t]
	}
	return reads, writes
}

// CheckNoOverlap verifies the allocator invariant: at every kernel, the
// heap regions of live tensors are pairwise disjoint. O(K * T log T);
// intended for tests.
func (p *Plan) CheckNoOverlap() error {
	type span struct {
		off, end uint64
		id       int
	}
	for k := range p.Prog.Kernels {
		var live []span
		for i := range p.Bytes {
			first := p.FirstDef[i]
			if p.Prog.Tensors[i].Kind == nn.Weight {
				first = 0
			}
			if first >= 0 && first <= k && p.LastUse[i] >= k {
				live = append(live, span{p.Offsets[i], p.Offsets[i] + p.Bytes[i], i})
			}
		}
		sort.Slice(live, func(a, b int) bool { return live[a].off < live[b].off })
		for i := 1; i < len(live); i++ {
			if live[i].off < live[i-1].end {
				return fmt.Errorf("compiler: kernel %d: tensors %d (%s) and %d (%s) overlap",
					k, live[i-1].id, p.Prog.Tensors[live[i-1].id].Name,
					live[i].id, p.Prog.Tensors[live[i].id].Name)
			}
		}
	}
	return nil
}
