package compiler

import (
	"strings"
	"testing"
)

func TestLivenessMapValidation(t *testing.T) {
	plan := compileTiny(t, 8, 1)
	if _, err := NewLivenessMap(plan, 0, 10); err == nil {
		t.Error("zero columns accepted")
	}
	if _, err := NewLivenessMap(plan, 10, 0); err == nil {
		t.Error("zero rows accepted")
	}
}

func TestLivenessMapDimensions(t *testing.T) {
	plan := compileTiny(t, 8, 1)
	m, err := NewLivenessMap(plan, 40, 12)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Grid) != 12 {
		t.Errorf("rows = %d", len(m.Grid))
	}
	if len(m.Grid[0]) != 40 && len(m.Grid[0]) != len(plan.Prog.Kernels) {
		t.Errorf("cols = %d", len(m.Grid[0]))
	}
	if m.ForwardCols <= 0 || m.ForwardCols >= len(m.Grid[0]) {
		t.Errorf("forward boundary column = %d of %d", m.ForwardCols, len(m.Grid[0]))
	}
}

// TestLivenessMapShowsActivity: the grid contains reads, writes and
// live cells — and some free space reappears during the backward pass
// (the Figure 5d folding).
func TestLivenessMapShowsActivity(t *testing.T) {
	plan := compileTiny(t, 32, 1)
	m, err := NewLivenessMap(plan, 60, 16)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[byte]int{}
	for _, row := range m.Grid {
		for _, c := range row {
			counts[c]++
		}
	}
	for _, state := range []byte{CellFree, CellLive, CellRead, CellWrite} {
		if counts[state] == 0 {
			t.Errorf("state %q never appears", state)
		}
	}
}

// TestLivenessFoldsBack: late-backward columns must be freer than the
// columns at the forward/backward boundary (activations retire).
func TestLivenessFoldsBack(t *testing.T) {
	plan := compileTiny(t, 32, 1)
	cols := 60
	m, err := NewLivenessMap(plan, cols, 16)
	if err != nil {
		t.Fatal(err)
	}
	cols = len(m.Grid[0])
	boundary := m.ForwardCols
	atPeak := m.FreeFraction(boundary-2, boundary+1)
	atEnd := m.FreeFraction(cols-3, cols)
	if atEnd <= atPeak {
		t.Errorf("heap did not free up in the backward pass: free %.2f at peak vs %.2f at end", atPeak, atEnd)
	}
}

func TestLivenessMapRenders(t *testing.T) {
	plan := compileTiny(t, 8, 1)
	m, err := NewLivenessMap(plan, 30, 8)
	if err != nil {
		t.Fatal(err)
	}
	out := m.String()
	if !strings.Contains(out, "forward pass") {
		t.Errorf("missing phase marker:\n%s", out)
	}
	if len(strings.Split(strings.TrimSpace(out), "\n")) < 10 {
		t.Errorf("render too short:\n%s", out)
	}
}

func TestByteUnit(t *testing.T) {
	cases := map[uint64]string{
		512:     "512 B",
		2 << 10: "2.0 KiB",
		3 << 20: "3.0 MiB",
		5 << 30: "5.0 GiB",
	}
	for in, want := range cases {
		if got := byteUnit(in); got != want {
			t.Errorf("byteUnit(%d) = %q, want %q", in, got, want)
		}
	}
}
