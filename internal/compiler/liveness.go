// Liveness visualization: the paper's Figure 5d plots the ngraph heap
// through one training iteration — offset on the vertical axis, time
// on the horizontal, colored by state (free, live, being read, being
// written). LivenessMap renders the same picture from a compiled plan
// as a character grid suitable for terminals and CSV export.

package compiler

import (
	"fmt"
	"io"
	"strings"

	"twolm/internal/nn"
)

// Cell states of the liveness map, matching Figure 5d's legend.
const (
	// CellFree: the region will be written before it is next read —
	// semantically free (the paper's white).
	CellFree = ' '
	// CellLive: holds data that will be read in the future (gray).
	CellLive = '.'
	// CellRead: actively being read by the column's kernels (red).
	CellRead = 'r'
	// CellWrite: actively being written (blue); read+write shows as
	// write, as in the original figure.
	CellWrite = 'W'
)

// LivenessMap is a time-by-offset grid over a plan's heap.
type LivenessMap struct {
	Plan *Plan
	// Grid[row][col]: row 0 is the bottom of the heap; col 0 the first
	// kernels. Cells hold the Cell* states.
	Grid [][]byte
	// KernelsPerCol is the schedule compression factor.
	KernelsPerCol int
	// BytesPerRow is the heap compression factor.
	BytesPerRow uint64
	// ForwardCols marks the forward/backward boundary column.
	ForwardCols int
}

// NewLivenessMap renders the plan into a cols x rows grid.
func NewLivenessMap(plan *Plan, cols, rows int) (*LivenessMap, error) {
	if cols < 1 || rows < 1 {
		return nil, fmt.Errorf("compiler: liveness map needs positive dimensions, got %dx%d", cols, rows)
	}
	nK := len(plan.Prog.Kernels)
	if nK == 0 || plan.HeapSize == 0 {
		return nil, fmt.Errorf("compiler: empty plan")
	}
	if cols > nK {
		cols = nK
	}
	m := &LivenessMap{
		Plan:          plan,
		KernelsPerCol: (nK + cols - 1) / cols,
		BytesPerRow:   (plan.HeapSize + uint64(rows) - 1) / uint64(rows),
	}
	m.ForwardCols = plan.Prog.ForwardKernels / m.KernelsPerCol
	grid := make([][]byte, rows)
	for r := range grid {
		grid[r] = make([]byte, cols)
		for c := range grid[r] {
			grid[r][c] = CellFree
		}
	}

	paint := func(col int, off, size uint64, state byte) {
		if col >= cols {
			col = cols - 1
		}
		r0 := int(off / m.BytesPerRow)
		r1 := int((off + size - 1) / m.BytesPerRow)
		for r := r0; r <= r1 && r < rows; r++ {
			cur := grid[r][col]
			// Priority: write > read > live > free.
			switch state {
			case CellWrite:
				grid[r][col] = CellWrite
			case CellRead:
				if cur != CellWrite {
					grid[r][col] = CellRead
				}
			case CellLive:
				if cur == CellFree {
					grid[r][col] = CellLive
				}
			}
		}
	}

	for ki, k := range plan.Prog.Kernels {
		col := ki / m.KernelsPerCol
		// Live tensors: defined, not yet past last use.
		for t := range plan.Bytes {
			if plan.Prog.Tensors[t].Kind == nn.Weight {
				continue
			}
			if plan.FirstDef[t] >= 0 && plan.FirstDef[t] <= ki && plan.LastUse[t] >= ki {
				paint(col, plan.Offsets[t], plan.Bytes[t], CellLive)
			}
		}
		for _, t := range k.Reads {
			paint(col, plan.Offsets[t], plan.Bytes[t], CellRead)
		}
		for _, t := range k.Writes {
			paint(col, plan.Offsets[t], plan.Bytes[t], CellWrite)
		}
	}
	m.Grid = grid
	return m, nil
}

// Fprint renders the map with the heap's base at the bottom and a
// forward/backward marker row, mirroring Figure 5d's orientation.
func (m *LivenessMap) Fprint(w io.Writer) error {
	rows := len(m.Grid)
	cols := len(m.Grid[0])
	if _, err := fmt.Fprintf(w,
		"Heap liveness (x: %d kernels/col, y: %s/row; ' '=free '.'=live r=read W=write)\n",
		m.KernelsPerCol, byteUnit(m.BytesPerRow)); err != nil {
		return err
	}
	for r := rows - 1; r >= 0; r-- {
		if _, err := fmt.Fprintf(w, "%s\n", string(m.Grid[r])); err != nil {
			return err
		}
	}
	marker := make([]byte, cols)
	for c := range marker {
		if c < m.ForwardCols {
			marker[c] = 'f'
		} else {
			marker[c] = 'b'
		}
	}
	_, err := fmt.Fprintf(w, "%s\n(forward pass 'f' | backward pass 'b')\n", marker)
	return err
}

// String renders the map.
func (m *LivenessMap) String() string {
	var sb strings.Builder
	_ = m.Fprint(&sb)
	return sb.String()
}

// byteUnit formats a compression factor compactly.
func byteUnit(b uint64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.1f GiB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.1f MiB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1f KiB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%d B", b)
	}
}

// FreeFraction returns the fraction of grid cells that are free in the
// given column range — a quantitative handle on the folding pattern.
func (m *LivenessMap) FreeFraction(colFrom, colTo int) float64 {
	total, free := 0, 0
	for _, row := range m.Grid {
		for c := colFrom; c < colTo && c < len(row); c++ {
			total++
			if row[c] == CellFree {
				free++
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(free) / float64(total)
}
