package compiler

import (
	"testing"
	"testing/quick"

	"twolm/internal/core"
	"twolm/internal/mem"
	"twolm/internal/nn"
	"twolm/internal/platform"
)

// tinyProgram builds a small training program.
func tinyProgram(t *testing.T, batch int) *nn.Program {
	t.Helper()
	b := nn.NewBuilder("tiny", batch)
	x := b.Input(16, 16, 3)
	x = b.Conv(x, 3, 1, 1, 8)
	x = b.BatchNorm(x)
	x = b.ReLU(x)
	y := b.Conv(x, 3, 1, 1, 8)
	x = b.Concat(x, y)
	x = b.GlobalAvgPool(x)
	logits := b.FC(x, 10)
	p, err := b.Train(logits)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func compileTiny(t *testing.T, batch int, scale uint64) *Plan {
	t.Helper()
	plan, err := Compile(tinyProgram(t, batch), scale)
	if err != nil {
		t.Fatal(err)
	}
	return plan
}

func TestCompileRejectsBadScale(t *testing.T) {
	p := tinyProgram(t, 2)
	for _, s := range []uint64{0, 3, 1000} {
		if _, err := Compile(p, s); err == nil {
			t.Errorf("scale %d accepted", s)
		}
	}
}

// TestNoOverlap is the allocator's core invariant.
func TestNoOverlap(t *testing.T) {
	plan := compileTiny(t, 8, 1)
	if err := plan.CheckNoOverlap(); err != nil {
		t.Fatal(err)
	}
}

// TestHeapReuse: the heap must be smaller than the sum of all tensors
// (lifetime reuse) but at least as large as the peak live set.
func TestHeapReuse(t *testing.T) {
	plan := compileTiny(t, 8, 1)
	var total uint64
	for _, b := range plan.Bytes {
		total += b
	}
	if plan.HeapSize >= total {
		t.Errorf("heap %d >= total tensor bytes %d: no reuse", plan.HeapSize, total)
	}
	peak := uint64(0)
	for k := range plan.Prog.Kernels {
		if l := plan.LiveBytesAt(k); l > peak {
			peak = l
		}
	}
	if plan.HeapSize < peak {
		t.Errorf("heap %d below peak live bytes %d", plan.HeapSize, peak)
	}
}

// TestLivenessBounds: FirstDef <= LastUse for every dynamic tensor.
func TestLivenessBounds(t *testing.T) {
	plan := compileTiny(t, 4, 1)
	for i := range plan.Bytes {
		if plan.Prog.Tensors[i].Kind == nn.Weight {
			if plan.LastUse[i] != len(plan.Prog.Kernels) {
				t.Errorf("weight %d LastUse = %d", i, plan.LastUse[i])
			}
			continue
		}
		if plan.FirstDef[i] < 0 || plan.LastUse[i] < plan.FirstDef[i] {
			t.Errorf("tensor %d lifetime [%d, %d] invalid", i, plan.FirstDef[i], plan.LastUse[i])
		}
	}
}

// TestLivenessAccumulatesInForward: the paper's Figure 5d — live bytes
// peak near the forward/backward boundary.
func TestLivenessAccumulatesInForward(t *testing.T) {
	plan := compileTiny(t, 8, 1)
	start := plan.LiveBytesAt(1)
	boundary := plan.LiveBytesAt(plan.Prog.ForwardKernels - 1)
	end := plan.LiveBytesAt(len(plan.Prog.Kernels) - 1)
	if boundary <= start {
		t.Errorf("live bytes did not grow through forward: %d -> %d", start, boundary)
	}
	if end >= boundary {
		t.Errorf("live bytes did not shrink through backward: %d -> %d", boundary, end)
	}
}

// TestScalingDividesFootprint: scaled heap is ~1/scale of full size.
func TestScalingDividesFootprint(t *testing.T) {
	full := compileTiny(t, 512, 1)
	scaled := compileTiny(t, 512, 4)
	ratio := float64(full.HeapSize) / float64(scaled.HeapSize)
	if ratio < 3 || ratio > 5 {
		t.Errorf("scale-4 heap ratio = %.2f, want ~4", ratio)
	}
	if err := scaled.CheckNoOverlap(); err != nil {
		t.Fatal(err)
	}
}

// TestTensorBytesLineAligned: all scaled sizes are line multiples.
func TestTensorBytesLineAligned(t *testing.T) {
	plan := compileTiny(t, 8, 2)
	for i, b := range plan.Bytes {
		if b == 0 || b%mem.Line != 0 {
			t.Errorf("tensor %d bytes %d not a positive line multiple", i, b)
		}
		if plan.Offsets[i]%mem.Line != 0 {
			t.Errorf("tensor %d offset %d not line aligned", i, plan.Offsets[i])
		}
	}
}

// TestFreeListProperty: random alloc/free sequences never produce
// overlapping live allocations.
func TestFreeListProperty(t *testing.T) {
	f := func(sizes []uint16) bool {
		var fl freeList
		type span struct{ off, size uint64 }
		var live []span
		for i, raw := range sizes {
			size := uint64(raw%2048) + 64
			off := fl.alloc(size)
			// Check against all live spans.
			for _, s := range live {
				if off < s.off+s.size && s.off < off+size {
					return false
				}
			}
			live = append(live, span{off, size})
			// Free a pseudo-random earlier span occasionally.
			if i%3 == 2 && len(live) > 1 {
				idx := i % len(live)
				fl.free(live[idx].off, live[idx].size)
				live = append(live[:idx], live[idx+1:]...)
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestFreeListCoalescing(t *testing.T) {
	var fl freeList
	a := fl.alloc(128)
	bOff := fl.alloc(128)
	c := fl.alloc(128)
	end := fl.end
	fl.free(a, 128)
	fl.free(c, 128)
	fl.free(bOff, 128) // middle free should coalesce all three
	if len(fl.blocks) != 1 || fl.blocks[0].size != 384 {
		t.Fatalf("coalescing failed: %+v", fl.blocks)
	}
	// A new allocation must reuse the coalesced block, not grow.
	fl.alloc(384)
	if fl.end != end {
		t.Error("allocation grew the heap despite a fitting free block")
	}
}

func TestKernelBytes(t *testing.T) {
	plan := compileTiny(t, 4, 1)
	for ki := range plan.Prog.Kernels {
		r, w := plan.KernelBytes(ki)
		if w == 0 {
			t.Errorf("kernel %d writes 0 bytes", ki)
		}
		_ = r
	}
}

// TestExecuteProducesTraffic: a 2LM execution generates traffic of the
// right order: total demand equals the sum of kernel reads+writes.
func TestExecuteProducesTraffic(t *testing.T) {
	plan := compileTiny(t, 16, 1)
	sys, err := core.New(core.Config{
		Platform: platform.Config{
			Sockets: 1, ChannelsPerSocket: 6,
			DRAMPerChannel:  mem.MiB,
			NVRAMPerChannel: 64 * mem.MiB,
			Scale:           1, Threads: 24,
		},
		Mode:     core.Mode2LM,
		LLCBytes: 16 * mem.KiB,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Execute(plan, sys, ExecConfig{WarmupIterations: 0})
	if err != nil {
		t.Fatal(err)
	}
	if res.Elapsed <= 0 {
		t.Error("no elapsed time")
	}
	if res.Counters.Demand() == 0 {
		t.Error("no demand traffic")
	}
	// One labeled sample per kernel plus the drain.
	if res.Series.Len() != len(plan.Prog.Kernels)+1 {
		t.Errorf("series has %d samples, want %d", res.Series.Len(), len(plan.Prog.Kernels)+1)
	}
}

// TestWarmupImprovesHitRate: with a cache larger than the footprint,
// the warmed iteration should hit much more than a cold one.
func TestWarmupImprovesHitRate(t *testing.T) {
	plan := compileTiny(t, 16, 1)
	mk := func(warmup int) float64 {
		sys, err := core.New(core.Config{
			Platform: platform.Config{
				Sockets: 1, ChannelsPerSocket: 6,
				DRAMPerChannel:  16 * mem.MiB, // plenty of cache
				NVRAMPerChannel: 256 * mem.MiB,
				Scale:           1, Threads: 24,
			},
			Mode:     core.Mode2LM,
			LLCBytes: 16 * mem.KiB,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := Execute(plan, sys, ExecConfig{WarmupIterations: warmup})
		if err != nil {
			t.Fatal(err)
		}
		return res.Counters.HitRate()
	}
	cold, warm := mk(0), mk(1)
	if warm <= cold {
		t.Errorf("warmup did not improve hit rate: cold %.3f warm %.3f", cold, warm)
	}
}

func TestKernelSecondsPositive(t *testing.T) {
	plan := compileTiny(t, 8, 1)
	for ki := range plan.Prog.Kernels {
		if s := plan.KernelSeconds(ki, ExecConfig{}); s < 0 {
			t.Errorf("kernel %d negative compute time", ki)
		}
	}
	// More threads = faster.
	convIdx := 1 // the first conv
	t4 := plan.KernelSeconds(convIdx, ExecConfig{Threads: 4})
	t24 := plan.KernelSeconds(convIdx, ExecConfig{Threads: 24})
	if t24 >= t4 {
		t.Errorf("24-thread compute %.3g not faster than 4-thread %.3g", t24, t4)
	}
}
