// Execution of compiled plans against a simulated memory system. This
// is how the paper's 2LM CNN measurements (Figures 5 and 6) are
// regenerated: each kernel streams its operand tensors through the
// system, overlapped with a roofline estimate of its compute time.

package compiler

import (
	"fmt"

	"twolm/internal/core"
	"twolm/internal/imc"
	"twolm/internal/mem"
	"twolm/internal/perfcounter"
)

// ExecConfig parameterizes plan execution.
type ExecConfig struct {
	// Threads is the modeled worker count (the paper assigns all 24
	// physical cores of one socket).
	Threads int
	// PeakFLOPS is the machine peak in FLOP/s; 0 selects the Cascade
	// Lake default.
	PeakFLOPS float64
	// ComputeEfficiency derates the peak for real kernels; 0 selects
	// the default.
	ComputeEfficiency float64
	// WarmupIterations run before measurement to establish steady
	// cache state ("two warm up iterations ... to prepare the state of
	// the DRAM cache"). Statistics are reset afterwards.
	WarmupIterations int
}

// DefaultPeakFLOPS is a 24-core AVX-512 Cascade Lake socket:
// 24 cores x 2 FMA ports x 16 fp32 lanes x 2 ops x ~2 GHz.
const DefaultPeakFLOPS = 3.0e12

// DefaultComputeEfficiency is the fraction of peak a tuned kernel
// library sustains on convolutions.
const DefaultComputeEfficiency = 0.55

func (c ExecConfig) withDefaults() ExecConfig {
	if c.Threads <= 0 {
		c.Threads = 24
	}
	if c.PeakFLOPS <= 0 {
		c.PeakFLOPS = DefaultPeakFLOPS
	}
	if c.ComputeEfficiency <= 0 {
		c.ComputeEfficiency = DefaultComputeEfficiency
	}
	return c
}

// KernelSeconds is the roofline compute-time estimate for a kernel at
// the plan's scale.
func (p *Plan) KernelSeconds(k int, cfg ExecConfig) float64 {
	cfg = cfg.withDefaults()
	flops := float64(p.Prog.Kernels[k].FLOPs) / float64(p.Scale)
	threadFrac := float64(cfg.Threads) / 24
	if threadFrac > 1 {
		threadFrac = 1
	}
	return flops / (cfg.PeakFLOPS * cfg.ComputeEfficiency * threadFrac)
}

// KernelInstructions estimates retired instructions for the MIPS trace:
// vectorized FLOPs plus load/store and bookkeeping instructions
// proportional to bytes moved.
func (p *Plan) KernelInstructions(k int) uint64 {
	flops := p.Prog.Kernels[k].FLOPs / p.Scale
	reads, writes := p.KernelBytes(k)
	return flops/16 + (reads+writes)/16
}

// ExecResult reports one measured training iteration.
type ExecResult struct {
	// Elapsed is the simulated iteration time in seconds.
	Elapsed float64
	// Counters holds the iteration's memory-controller events.
	Counters imc.Counters
	// Series is the per-kernel counter trace (the paper's Figure 5).
	Series *perfcounter.Series
	// Heap is the region the program ran in.
	Heap mem.Region
}

// DRAMReadBytes et al. report traffic in bytes at simulation scale.
func (r *ExecResult) DRAMReadBytes() uint64   { return r.Counters.DRAMRead * mem.Line }
func (r *ExecResult) DRAMWriteBytes() uint64  { return r.Counters.DRAMWrite * mem.Line }
func (r *ExecResult) NVRAMReadBytes() uint64  { return r.Counters.NVRAMRead * mem.Line }
func (r *ExecResult) NVRAMWriteBytes() uint64 { return r.Counters.NVRAMWrite * mem.Line }

// Execute runs the plan on sys (typically a 2LM system for the paper's
// memory-mode study, but any mode works: on a 1LM system the heap is
// allocated NUMA-preferred, DRAM first). It allocates the heap, runs
// the configured warmup iterations, resets statistics, then measures
// one full training iteration.
func Execute(plan *Plan, sys *core.System, cfg ExecConfig) (*ExecResult, error) {
	cfg = cfg.withDefaults()
	heap, err := sys.AddressSpace().Alloc(plan.HeapSize)
	if err != nil {
		return nil, fmt.Errorf("compiler: allocating %s heap: %w", mem.FormatBytes(plan.HeapSize), err)
	}
	sys.SetThreads(cfg.Threads)

	for i := 0; i < cfg.WarmupIterations; i++ {
		runIteration(plan, sys, heap, cfg, false)
	}
	sys.ResetStats()

	start := sys.Clock()
	runIteration(plan, sys, heap, cfg, true)

	return &ExecResult{
		Elapsed:  sys.Clock() - start,
		Counters: sys.Counters(),
		Series:   sys.Series(),
		Heap:     heap,
	}, nil
}

// runIteration executes every kernel once. When labeled, each kernel
// closes its own Sync interval with a phase-prefixed label.
func runIteration(plan *Plan, sys *core.System, heap mem.Region, cfg ExecConfig, labeled bool) {
	sys.SetTraffic(mem.Sequential, mem.Line)
	for ki := range plan.Prog.Kernels {
		k := &plan.Prog.Kernels[ki]
		// Each operand tensor is one concurrent stream; dirty-victim
		// write-backs from the miss handler add one more.
		sys.SetStreams(len(k.Reads) + len(k.Writes) + 1)
		for _, t := range k.Reads {
			sys.LoadRange(plan.Region(heap.Base, t))
		}
		for _, t := range k.Writes {
			sys.StoreRange(plan.Region(heap.Base, t))
		}
		sys.AddInstructions(plan.KernelInstructions(ki))
		label := ""
		if labeled {
			phase := "fwd"
			if ki >= plan.Prog.ForwardKernels {
				phase = "bwd"
			}
			label = phase + ":" + k.Name
		}
		sys.Sync(label, plan.KernelSeconds(ki, cfg))
	}
	sys.DrainLLC()
	sys.Sync("drain", 0)
}
