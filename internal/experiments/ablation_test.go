package experiments

import (
	"strconv"
	"strings"
	"testing"
)

// TestAblationDDO: disabling the optimization adds one DRAM read per
// writeback (amplification 2.5 -> 3.0 on the RMW workload) and zeroes
// the DDO counter.
func TestAblationDDO(t *testing.T) {
	table, err := AblationDDO(testMicroConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 2 {
		t.Fatalf("rows = %d", len(table.Rows))
	}
	ampOn := cell(t, table.Rows, 0, 4)
	ampOff := cell(t, table.Rows, 1, 4)
	if ampOn < 2.49 || ampOn > 2.51 {
		t.Errorf("DDO-enabled amplification = %.2f, want 2.5", ampOn)
	}
	if ampOff < 2.99 || ampOff > 3.01 {
		t.Errorf("DDO-disabled amplification = %.2f, want 3.0", ampOff)
	}
	if table.Rows[1][5] != "0" {
		t.Errorf("disabled run recorded DDO hits: %s", table.Rows[1][5])
	}
	// Disabled run pays double the DRAM reads.
	if r0, r1 := cell(t, table.Rows, 0, 1), cell(t, table.Rows, 1, 1); r1 < 1.9*r0 {
		t.Errorf("disabled DRAM reads %.2f not ~2x enabled %.2f", r1, r0)
	}
}

// TestAblationWritePolicy: write-around removes the fill reads and the
// insert writes, dropping amplification from 5 to 2, while the NVRAM
// write ceiling still binds the effective bandwidth.
func TestAblationWritePolicy(t *testing.T) {
	table, err := AblationWritePolicy(testMicroConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 2 {
		t.Fatalf("rows = %d", len(table.Rows))
	}
	ampHW := cell(t, table.Rows, 0, 6)
	ampWA := cell(t, table.Rows, 1, 6)
	if ampHW < 4.99 || ampHW > 5.01 {
		t.Errorf("hardware amplification = %.2f, want 5", ampHW)
	}
	if ampWA < 1.99 || ampWA > 2.01 {
		t.Errorf("write-around amplification = %.2f, want 2", ampWA)
	}
	// Write-around removes all NVRAM reads and DRAM writes.
	if v := cell(t, table.Rows, 1, 3); v != 0 {
		t.Errorf("write-around NVRAM reads = %.2f, want 0", v)
	}
	if v := cell(t, table.Rows, 1, 2); v != 0 {
		t.Errorf("write-around DRAM writes = %.2f, want 0", v)
	}
}

// TestAblationAssociativity: DenseNet's 2LM misses are capacity and
// lifetime misses, not conflicts — so extra ways must NOT meaningfully
// help. That null result is the ablation's point: it confirms the
// paper's claim that the pathology is the cache's ignorance of data
// lifetimes, which no associativity fixes.
func TestAblationAssociativity(t *testing.T) {
	table, err := AblationAssociativity(testCNNConfig(), []int{1, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 2 {
		t.Fatalf("rows = %d", len(table.Rows))
	}
	rt1 := cell(t, table.Rows, 0, 1)
	rt4 := cell(t, table.Rows, 1, 1)
	improvement := rt1 / rt4
	if improvement > 1.1 {
		t.Errorf("4-way associativity improved DenseNet %.2fx — conflicts should not dominate", improvement)
	}
	hit1 := cell(t, table.Rows, 0, 2)
	hit4 := cell(t, table.Rows, 1, 2)
	if hit4 < hit1-0.01 {
		t.Errorf("more ways reduced the hit rate: %.3f -> %.3f", hit1, hit4)
	}
}

// TestCoDesign: the paper's closing argument quantified — a current
// I/O-class DMA engine underperforms CPU copies, a co-designed mover
// beats them, and everything beats the 2LM hardware cache.
func TestCoDesign(t *testing.T) {
	table, err := CoDesign(testCNNConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 4 {
		t.Fatalf("rows = %d", len(table.Rows))
	}
	byName := map[string]float64{}
	for _, row := range table.Rows {
		rt, err := strconv.ParseFloat(row[1], 64)
		if err != nil {
			t.Fatal(err)
		}
		byName[row[0]] = rt
	}
	twolm := byName["2LM hardware cache"]
	cpu := byName["AutoTM, CPU sync copies"]
	ioat := byName["AutoTM + I/OAT-class DMA"]
	future := byName["AutoTM + co-designed DMA"]
	if cpu >= twolm {
		t.Errorf("AutoTM CPU (%.1f) not faster than 2LM (%.1f)", cpu, twolm)
	}
	if ioat <= cpu {
		t.Errorf("I/OAT-class engine (%.1f) should be SLOWER than CPU copies (%.1f): its bandwidth does not fit", ioat, cpu)
	}
	if future >= cpu {
		t.Errorf("co-designed engine (%.1f) not faster than CPU copies (%.1f)", future, cpu)
	}
	// Async movement must not change traffic volumes.
	for _, row := range table.Rows {
		if strings.HasPrefix(row[0], "AutoTM") {
			if r, w := row[2], row[3]; r != table.Rows[1][2] || w != table.Rows[1][3] {
				t.Errorf("%s changed NVRAM traffic: %s/%s", row[0], r, w)
			}
		}
	}
}
