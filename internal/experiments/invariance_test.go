package experiments

import (
	"testing"
)

// TestScaleInvariance is the integration check behind DESIGN.md's
// scaling argument: amplification factors, hit rates, and speedup
// ratios must not depend on the footprint scale, because counting
// properties of a direct-mapped cache under a linear allocator are
// invariant to uniform scaling.
func TestScaleInvarianceMicro(t *testing.T) {
	var amps [2][]float64
	for i, scale := range []uint64{8192, 32768} {
		cfg := testMicroConfig()
		cfg.Scale = scale
		table, err := Table1(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for r := range table.Rows {
			amps[i] = append(amps[i], cell(t, table.Rows, r, 5))
		}
	}
	for r := range amps[0] {
		if amps[0][r] != amps[1][r] {
			t.Errorf("Table I row %d amplification changed with scale: %.3f vs %.3f",
				r, amps[0][r], amps[1][r])
		}
	}
}

// TestScaleInvarianceCNN: DenseNet's hit rate and dirty-miss share are
// scale-independent (within the granularity the smaller run affords).
func TestScaleInvarianceCNN(t *testing.T) {
	get := func(scale uint64) (hit, dirtyShare, speedup float64) {
		cfg := testCNNConfig()
		cfg.Scale = scale
		_, rows, err := Table2(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var dn Table2Row
		for _, r := range rows {
			if r.Network == "densenet264" {
				dn = r
			}
		}
		res, err := Fig5(cfg)
		if err != nil {
			t.Fatal(err)
		}
		ctr := res.Exec.Counters
		return ctr.HitRate(),
			float64(ctr.TagMissDirty) / float64(ctr.TagMissDirty+ctr.TagMissClean),
			dn.Speedup
	}
	hitA, dirtyA, spA := get(8192)
	hitB, dirtyB, spB := get(16384)
	if diff := hitA - hitB; diff > 0.03 || diff < -0.03 {
		t.Errorf("hit rate drifted with scale: %.3f vs %.3f", hitA, hitB)
	}
	if diff := dirtyA - dirtyB; diff > 0.02 || diff < -0.02 {
		t.Errorf("dirty-miss share drifted with scale: %.3f vs %.3f", dirtyA, dirtyB)
	}
	if ratio := spA / spB; ratio > 1.15 || ratio < 0.87 {
		t.Errorf("AutoTM speedup drifted with scale: %.2f vs %.2f", spA, spB)
	}
}
