// Claims check: the paper's headline findings as an executable
// acceptance harness. cmd/repro runs it last and writes a PASS/FAIL
// table, so a reader can see at a glance that the reproduction still
// exhibits every result the paper reports — the living equivalent of
// EXPERIMENTS.md's narrative.

package experiments

import (
	"fmt"

	"twolm/internal/results"
)

// Claim is one verifiable paper finding.
type Claim struct {
	ID       string
	Text     string
	Expected string
	Measured string
	Pass     bool
}

// CheckClaims evaluates every headline claim at the given scales and
// returns the table plus the claims for programmatic use.
func CheckClaims(micro MicroConfig, cnn CNNConfig, graphs GraphConfig) (*results.Table, []Claim, error) {
	var claims []Claim
	add := func(id, text, expected, measured string, pass bool) {
		claims = append(claims, Claim{id, text, expected, measured, pass})
	}

	// 1. "A single demand request can require up to 5 memory accesses."
	t1, err := Table1(micro)
	if err != nil {
		return nil, nil, err
	}
	maxAmp := 0.0
	for _, row := range t1.Rows {
		var v float64
		fmt.Sscanf(row[5], "%f", &v)
		if v > maxAmp {
			maxAmp = v
		}
	}
	add("C1", "a demand request can require up to 5 memory accesses",
		"max amplification = 5", fmt.Sprintf("%.2f", maxAmp), maxAmp > 4.99 && maxAmp < 5.01)

	// 2. "Highest NVRAM read bandwidth in 2LM ... 60% [of 1LM]; write
	// ... 72%" (Section IV-D; our model lands at ~77%/71%).
	_, rows4a, err := Fig4a(micro)
	if err != nil {
		return nil, nil, err
	}
	_, rows4b, err := Fig4b(micro)
	if err != nil {
		return nil, nil, err
	}
	bestR, bestW := 0.0, 0.0
	for _, r := range rows4a {
		if r.Effective > bestR {
			bestR = r.Effective
		}
	}
	for _, r := range rows4b {
		if r.Effective > bestW {
			bestW = r.Effective
		}
	}
	readFrac, writeFrac := bestR/30.6, bestW/10.6
	add("C2", "2LM reaches only a fraction of the NVRAM's 1LM bandwidth",
		"read 60-85%, write 60-85% of device peak",
		fmt.Sprintf("read %.0f%%, write %.0f%%", 100*readFrac, 100*writeFrac),
		readFrac > 0.6 && readFrac < 0.85 && writeFrac > 0.6 && writeFrac < 0.85)

	// 3. CNN training: dirty misses dominate (Figure 5b observations).
	fig5, err := Fig5(cnn)
	if err != nil {
		return nil, nil, err
	}
	ctr := fig5.Exec.Counters
	dirtyShare := float64(ctr.TagMissDirty) / float64(ctr.TagMissDirty+ctr.TagMissClean)
	add("C3", "CNN training misses are overwhelmingly dirty (dead-data write-backs)",
		"dirty share > 0.9", fmt.Sprintf("%.3f", dirtyShare), dirtyShare > 0.9)

	// 4. AutoTM beats 2LM 1.8-3.1x with ~50-60% of the NVRAM traffic.
	_, t2rows, err := Table2(cnn)
	if err != nil {
		return nil, nil, err
	}
	okSpeedups := len(t2rows) == 3
	var dn, iv float64
	for _, r := range t2rows {
		if r.Speedup < 1.5 || r.Speedup > 4 || r.NVRatio < 0.3 || r.NVRatio > 0.8 {
			okSpeedups = false
		}
		switch r.Network {
		case "densenet264":
			dn = r.Speedup
		case "inceptionv4":
			iv = r.Speedup
		}
	}
	add("C4", "software management (AutoTM) wins 1.8-3.1x, most on DenseNet",
		"speedups in [1.5, 4], DenseNet > Inception, NVRAM traffic 30-80%",
		fmt.Sprintf("densenet %.2fx, inception %.2fx", dn, iv),
		okSpeedups && dn > iv)

	// 5. Graphs: over-capacity inputs amplify data movement vs the
	// NUMA baseline, and Sage placement removes NVRAM writes.
	study, err := RunGraphStudy(graphs)
	if err != nil {
		return nil, nil, err
	}
	okGraphs := true
	worstAmp := 0.0
	for _, kernel := range KernelNames {
		numa := study.find(study.Large.Name, ModeNUMA, kernel)
		twolm := study.find(study.Large.Name, Mode2LMFlat, kernel)
		sg := study.find(study.Large.Name, ModeSage, kernel)
		if numa == nil || twolm == nil || sg == nil {
			okGraphs = false
			continue
		}
		ratio := float64(twolm.Result.Delta.MemoryAccesses()) / float64(numa.Result.Delta.MemoryAccesses())
		if ratio <= 1 {
			okGraphs = false
		}
		if ratio > worstAmp {
			worstAmp = ratio
		}
		if sg.Result.Delta.NVRAMWrite != 0 {
			okGraphs = false
		}
	}
	add("C5", "2LM amplifies graph data movement vs NUMA; Sage placement writes no NVRAM",
		"2LM/NUMA > 1 for every kernel; Sage NVRAM writes = 0",
		fmt.Sprintf("worst 2LM/NUMA %.2fx", worstAmp), okGraphs)

	table := results.NewTable("Claims check: the paper's findings, re-verified on this build",
		"id", "claim", "expected", "measured", "pass")
	for _, c := range claims {
		pass := "PASS"
		if !c.Pass {
			pass = "FAIL"
		}
		table.AddRow(c.ID, c.Text, c.Expected, c.Measured, pass)
	}
	return table, claims, nil
}
