package experiments

import (
	"strconv"
	"testing"
)

// testGraphConfig keeps the study fast: a tiny fits-in-cache Kronecker
// input and a small over-capacity web-like input.
func testGraphConfig() GraphConfig {
	return GraphConfig{
		Scale:           32768,
		SmallScale:      12,
		SmallEdgeFactor: 8,
		LargeScale:      18,
		LargeEdgeFactor: 14,
		Threads:         96,
		PRRounds:        3,
		KCoreK:          8,
		Seed:            1,
	}
}

// runStudy caches the study across tests (it is deterministic).
var cachedStudy *Study

func getStudy(t *testing.T) *Study {
	t.Helper()
	if cachedStudy != nil {
		return cachedStudy
	}
	s, err := RunGraphStudy(testGraphConfig())
	if err != nil {
		t.Fatal(err)
	}
	cachedStudy = s
	return s
}

func TestStudySizesStraddleCache(t *testing.T) {
	s := getStudy(t)
	cache := s.Config.Scale // platform divisor
	_ = cache
	dramCache := uint64(2) * 6 * (32 << 30) / s.Config.Scale // 2 sockets
	if s.Small.Bytes() >= dramCache/2 {
		t.Errorf("small graph %d B should fit well inside the %d B cache", s.Small.Bytes(), dramCache)
	}
	if s.Large.Bytes() <= dramCache {
		t.Errorf("large graph %d B should exceed the %d B cache", s.Large.Bytes(), dramCache)
	}
}

func TestStudyRunsComplete(t *testing.T) {
	s := getStudy(t)
	// 4 kernels x (small-2LM, large-2LM, large-NUMA, large-Sage).
	if len(s.Runs) != 16 {
		t.Fatalf("runs = %d, want 16", len(s.Runs))
	}
	for _, r := range s.Runs {
		if r.Result.Elapsed <= 0 {
			t.Errorf("%s/%s/%s: no elapsed time", r.Graph, r.Mode, r.Kernel)
		}
		if r.Result.Delta.Demand() == 0 {
			t.Errorf("%s/%s/%s: no traffic", r.Graph, r.Mode, r.Kernel)
		}
	}
}

// TestFig7HitRateContrast: the fits-in-cache graph must enjoy a higher
// DRAM-cache hit rate than the over-capacity one for the iterative
// kernels (single-pass bfs is dominated by cold misses at test scale).
func TestFig7HitRateContrast(t *testing.T) {
	s := getStudy(t)
	for _, kernel := range []string{"cc", "kcore", "pr"} {
		small := s.find(s.Small.Name, Mode2LMFlat, kernel)
		large := s.find(s.Large.Name, Mode2LMFlat, kernel)
		if small == nil || large == nil {
			t.Fatalf("missing runs for %s", kernel)
		}
		if small.HitRate <= large.HitRate {
			t.Errorf("%s: small-graph hit rate %.3f not above large-graph %.3f",
				kernel, small.HitRate, large.HitRate)
		}
	}
}

// TestFig7NVRAMTraffic: the over-capacity graph generates real NVRAM
// traffic, including write-backs of mutated state; the fitting graph
// generates almost none after warmup.
func TestFig7NVRAMTraffic(t *testing.T) {
	s := getStudy(t)
	large := s.find(s.Large.Name, Mode2LMFlat, "pr")
	if large.Result.Delta.NVRAMWrite == 0 {
		t.Error("over-capacity pagerank produced no NVRAM write-backs")
	}
	if large.Result.Delta.TagMissDirty == 0 {
		t.Error("over-capacity pagerank produced no dirty misses")
	}
	small := s.find(s.Small.Name, Mode2LMFlat, "pr")
	ratio := float64(small.Result.Delta.NVRAMWrite+1) / float64(large.Result.Delta.NVRAMWrite+1)
	if ratio > 0.3 {
		t.Errorf("fitting graph NVRAM writes too close to over-capacity: ratio %.2f", ratio)
	}
}

// TestFig8Amplification: 2LM moves more total data than the NUMA
// baseline for every kernel (the paper's "significant access
// amplification").
func TestFig8Amplification(t *testing.T) {
	s := getStudy(t)
	table := s.Fig8()
	if len(table.Rows) != 4 {
		t.Fatalf("Fig8 rows = %d", len(table.Rows))
	}
	for _, row := range table.Rows {
		ratio, err := strconv.ParseFloat(row[3], 64)
		if err != nil {
			t.Fatal(err)
		}
		if ratio <= 1.0 {
			t.Errorf("%s: 2LM/NUMA data-moved ratio %.2f not above 1", row[0], ratio)
		}
		if ratio > 5 {
			t.Errorf("%s: ratio %.2f implausibly large", row[0], ratio)
		}
	}
}

// TestFig9TraceShape: per-round pagerank samples exist for both
// graphs, and only the over-capacity graph shows tag misses in steady
// state.
func TestFig9TraceShape(t *testing.T) {
	s := getStudy(t)
	smallTr, largeTr := s.Fig9Traces()
	if smallTr == nil || largeTr == nil {
		t.Fatal("missing pagerank traces")
	}
	// Steady-state (last round) samples.
	smallLast := smallTr.Samples()[smallTr.Len()-2] // before drain
	largeLast := largeTr.Samples()[largeTr.Len()-2]
	smallMisses := smallLast.Delta.TagMissClean + smallLast.Delta.TagMissDirty
	largeMisses := largeLast.Delta.TagMissClean + largeLast.Delta.TagMissDirty
	if largeMisses == 0 {
		t.Error("over-capacity steady state shows no tag misses")
	}
	if smallMisses > largeMisses/10 {
		t.Errorf("fitting graph steady-state misses %d too close to over-capacity %d", smallMisses, largeMisses)
	}
}

// TestSageBeats2LM: the semi-asymmetric placement wins on the
// over-capacity graph and generates zero NVRAM writes.
func TestSageBeats2LM(t *testing.T) {
	s := getStudy(t)
	for _, kernel := range KernelNames {
		twolm := s.find(s.Large.Name, Mode2LMFlat, kernel)
		sg := s.find(s.Large.Name, ModeSage, kernel)
		if sg.Result.Delta.NVRAMWrite != 0 {
			t.Errorf("%s: Sage produced %d NVRAM writes", kernel, sg.Result.Delta.NVRAMWrite)
		}
		if sg.Result.Elapsed >= twolm.Result.Elapsed {
			t.Errorf("%s: Sage (%.4fs) not faster than 2LM (%.4fs)",
				kernel, sg.Result.Elapsed, twolm.Result.Elapsed)
		}
	}
}

// TestKernelsProduceSameAnswersAcrossModes: placement must never
// change algorithm output.
func TestKernelsProduceSameAnswersAcrossModes(t *testing.T) {
	s := getStudy(t)
	for _, kernel := range []string{"bfs", "cc"} {
		twolm := s.find(s.Large.Name, Mode2LMFlat, kernel)
		numa := s.find(s.Large.Name, ModeNUMA, kernel)
		sg := s.find(s.Large.Name, ModeSage, kernel)
		a := twolm.Result.Output.([]uint32)
		b := numa.Result.Output.([]uint32)
		c := sg.Result.Output.([]uint32)
		for i := range a {
			if a[i] != b[i] || a[i] != c[i] {
				t.Fatalf("%s: outputs diverge at %d: %d/%d/%d", kernel, i, a[i], b[i], c[i])
			}
		}
	}
}

func TestFig7TableRenders(t *testing.T) {
	s := getStudy(t)
	if len(s.Fig7().Rows) != 8 {
		t.Errorf("Fig7 rows = %d, want 8", len(s.Fig7().Rows))
	}
	if s.Fig9() == nil || s.SageTable() == nil {
		t.Error("missing tables")
	}
}
