// CNN case-study experiments: Figure 5 (DenseNet 2LM iteration trace),
// Figure 6 (dense-block kernel bandwidth snapshot), Figure 10 (the
// same iteration under AutoTM) and Table II (traffic and runtime for
// all three networks, 2LM vs AutoTM).

package experiments

import (
	"fmt"
	"strings"

	"twolm/internal/autotm"
	"twolm/internal/compiler"
	"twolm/internal/core"
	"twolm/internal/mem"
	"twolm/internal/nn"
	"twolm/internal/perfcounter"
	"twolm/internal/platform"
	"twolm/internal/results"
)

// CNNConfig parameterizes the CNN case study.
type CNNConfig struct {
	// Scale is the footprint divisor (power of two; default 1024).
	Scale uint64
	// Batches overrides the per-network batch sizes; the defaults are
	// chosen so every footprint exceeds 650 GB unscaled, as the paper
	// requires ("we scaled the training batch size until the overall
	// footprint of these applications exceeded 650GB").
	DenseNetBatch, ResNetBatch, InceptionBatch int
	// Warmup iterations before measurement (the paper uses two).
	Warmup int
}

// DefaultCNNConfig returns the calibrated study configuration.
func DefaultCNNConfig() CNNConfig {
	return CNNConfig{
		Scale:          1024,
		DenseNetBatch:  1664,
		ResNetBatch:    1792,
		InceptionBatch: 3584,
		Warmup:         1,
	}
}

func (c CNNConfig) withDefaults() CNNConfig {
	d := DefaultCNNConfig()
	if c.Scale == 0 {
		c.Scale = d.Scale
	}
	if c.DenseNetBatch == 0 {
		c.DenseNetBatch = d.DenseNetBatch
	}
	if c.ResNetBatch == 0 {
		c.ResNetBatch = d.ResNetBatch
	}
	if c.InceptionBatch == 0 {
		c.InceptionBatch = d.InceptionBatch
	}
	if c.Warmup == 0 {
		c.Warmup = d.Warmup
	}
	return c
}

// unscaleGB converts scaled bytes to unscaled decimal GB for reporting
// against the paper's tables.
func (c CNNConfig) unscaleGB(b uint64) float64 {
	return float64(b) * float64(c.Scale) / mem.GB
}

// unscaleSeconds converts simulated (scaled) seconds to the unscaled
// equivalent: bandwidths are real, footprints are divided by Scale, so
// times multiply back by Scale.
func (c CNNConfig) unscaleSeconds(s float64) float64 { return s * float64(c.Scale) }

// CompileNetwork builds and compiles one of the study networks by
// name: "densenet264", "resnet200" or "inceptionv4".
func (c CNNConfig) CompileNetwork(name string) (*compiler.Plan, error) {
	c = c.withDefaults()
	var (
		prog *nn.Program
		err  error
	)
	switch name {
	case "densenet264":
		prog, err = nn.DenseNet264(c.DenseNetBatch)
	case "resnet200":
		prog, err = nn.ResNet200(c.ResNetBatch)
	case "inceptionv4":
		prog, err = nn.InceptionV4(c.InceptionBatch)
	default:
		return nil, fmt.Errorf("experiments: unknown network %q", name)
	}
	if err != nil {
		return nil, err
	}
	return compiler.Compile(prog, c.Scale)
}

// Run2LM executes a plan on a fresh single-socket 2LM system.
func (c CNNConfig) Run2LM(plan *compiler.Plan) (*compiler.ExecResult, error) {
	c = c.withDefaults()
	sys, err := core.New(core.Config{
		Platform: platform.CascadeLake(1, c.Scale, 24),
		Mode:     core.Mode2LM,
	})
	if err != nil {
		return nil, err
	}
	return compiler.Execute(plan, sys, compiler.ExecConfig{WarmupIterations: c.Warmup})
}

// RunAutoTM executes a plan on a fresh single-socket 1LM system under
// software-managed tensor movement.
func (c CNNConfig) RunAutoTM(plan *compiler.Plan) (*autotm.Result, error) {
	c = c.withDefaults()
	sys, err := core.New(core.Config{
		Platform: platform.CascadeLake(1, c.Scale, 24),
		Mode:     core.Mode1LM,
	})
	if err != nil {
		return nil, err
	}
	return autotm.Execute(plan, sys, autotm.Config{})
}

// Fig5Result bundles the Figure 5 artifacts: the per-kernel trace
// (panels a-c) and the heap/liveness table (panel d).
type Fig5Result struct {
	Plan *compiler.Plan
	Exec *compiler.ExecResult
	// Trace is the counter series rebinned for plotting.
	Trace *perfcounter.Series
	// Liveness has one row per sampled kernel: time, phase, heap
	// offsets touched and live bytes (the Figure 5d memory map).
	Liveness *results.Table
	// Heatmap is the Figure 5d heap picture as a character grid.
	Heatmap *compiler.LivenessMap
	// Summary carries the headline numbers.
	Summary *results.Table
}

// Fig5 reproduces Figure 5: the memory behavior of one 2LM training
// iteration of DenseNet 264 — MIPS (a), tag statistics (b), bandwidth
// (c) and heap liveness (d).
func Fig5(cfg CNNConfig) (*Fig5Result, error) {
	cfg = cfg.withDefaults()
	plan, err := cfg.CompileNetwork("densenet264")
	if err != nil {
		return nil, err
	}
	exec, err := cfg.Run2LM(plan)
	if err != nil {
		return nil, err
	}

	live := results.NewTable("Figure 5d: heap usage through one DenseNet 264 training iteration",
		"time_s", "phase", "kernel", "live_gb", "write_off_gb", "write_end_gb")
	samples := exec.Series.Samples()
	ki := 0
	for _, s := range samples {
		if ki >= len(plan.Prog.Kernels) {
			break
		}
		k := plan.Prog.Kernels[ki]
		phase := "fwd"
		if ki >= plan.Prog.ForwardKernels {
			phase = "bwd"
		}
		// Sample every few kernels to keep the table readable.
		if ki%10 == 0 {
			lo, hi := ^uint64(0), uint64(0)
			for _, t := range k.Writes {
				if plan.Offsets[t] < lo {
					lo = plan.Offsets[t]
				}
				if end := plan.Offsets[t] + plan.Bytes[t]; end > hi {
					hi = end
				}
			}
			live.AddRow(
				fmt.Sprintf("%.1f", cfg.unscaleSeconds(s.Time)),
				phase, k.Name,
				cfg.unscaleGB(plan.LiveBytesAt(ki)),
				cfg.unscaleGB(lo), cfg.unscaleGB(hi))
		}
		ki++
	}

	ctr := exec.Counters
	summary := results.NewTable("Figure 5: DenseNet 264 iteration summary (2LM)",
		"metric", "value")
	summary.AddRow("footprint_gb", cfg.unscaleGB(plan.HeapSize))
	summary.AddRow("runtime_s", cfg.unscaleSeconds(exec.Elapsed))
	summary.AddRow("tag_hit_rate", ctr.HitRate())
	summary.AddRow("tag_miss_dirty", fmt.Sprint(ctr.TagMissDirty))
	summary.AddRow("tag_miss_clean", fmt.Sprint(ctr.TagMissClean))
	summary.AddRow("dirty_share_of_misses", float64(ctr.TagMissDirty)/float64(ctr.TagMissDirty+ctr.TagMissClean))
	summary.AddRow("dram_read_gb", cfg.unscaleGB(exec.DRAMReadBytes()))
	summary.AddRow("dram_write_gb", cfg.unscaleGB(exec.DRAMWriteBytes()))
	summary.AddRow("nvram_read_gb", cfg.unscaleGB(exec.NVRAMReadBytes()))
	summary.AddRow("nvram_write_gb", cfg.unscaleGB(exec.NVRAMWriteBytes()))

	heatmap, err := compiler.NewLivenessMap(plan, 100, 24)
	if err != nil {
		return nil, err
	}

	return &Fig5Result{
		Plan:     plan,
		Exec:     exec,
		Trace:    exec.Series.Rebin(exec.Elapsed / 200),
		Liveness: live,
		Heatmap:  heatmap,
		Summary:  summary,
	}, nil
}

// Fig6 reproduces Figure 6: a high-resolution bandwidth snapshot of
// consecutive dense-block kernels during the DenseNet forward pass,
// annotated with kernel names — exposing Concat and BatchNorm as the
// bottleneck kernels.
func Fig6(cfg CNNConfig) (*results.Table, error) {
	cfg = cfg.withDefaults()
	plan, err := cfg.CompileNetwork("densenet264")
	if err != nil {
		return nil, err
	}
	exec, err := cfg.Run2LM(plan)
	if err != nil {
		return nil, err
	}
	table := results.NewTable("Figure 6: per-kernel bandwidth in two dense blocks (forward pass)",
		"time_s", "kernel", "dram_read_gbs", "dram_write_gbs", "nvram_read_gbs", "nvram_write_gbs", "dur_ms")
	// Two dense blocks = 2 x (BN, ReLU, Conv1x1, BN, ReLU, Conv3x3,
	// Concat) = 14 kernels, taken from the middle of the forward pass
	// where the cache is past its warm start (the paper samples around
	// t=152s of 524s).
	start := plan.Prog.ForwardKernels / 2
	count := 0
	for _, s := range exec.Series.Samples() {
		if !strings.HasPrefix(s.Label, "fwd:") {
			continue
		}
		count++
		if count < start {
			continue
		}
		table.AddRow(
			fmt.Sprintf("%.2f", cfg.unscaleSeconds(s.Time)),
			strings.TrimPrefix(s.Label, "fwd:"),
			s.DRAMReadBW()/mem.GB, s.DRAMWriteBW()/mem.GB,
			s.NVRAMReadBW()/mem.GB, s.NVRAMWriteBW()/mem.GB,
			s.Dur*float64(cfg.Scale)*1e3)
		if count >= start+14 {
			break
		}
	}
	return table, nil
}

// Fig10Result bundles the AutoTM trace and its phase summary.
type Fig10Result struct {
	Trace *perfcounter.Series
	// PhaseTable shows that NVRAM writes concentrate in the forward
	// pass and NVRAM reads in the backward pass.
	PhaseTable *results.Table
}

// Fig10 reproduces Figure 10: memory bandwidth during one DenseNet 264
// iteration under AutoTM.
func Fig10(cfg CNNConfig) (*Fig10Result, error) {
	cfg = cfg.withDefaults()
	plan, err := cfg.CompileNetwork("densenet264")
	if err != nil {
		return nil, err
	}
	res, err := cfg.RunAutoTM(plan)
	if err != nil {
		return nil, err
	}
	// Phase attribution: moves belong to the phase of the kernel they
	// precede.
	var fwd, bwd struct{ nvR, nvW uint64 }
	samples := res.Series.Samples()
	for i, s := range samples {
		phase := phaseOf(samples, i)
		if phase == "bwd" {
			bwd.nvR += s.Delta.NVRAMRead
			bwd.nvW += s.Delta.NVRAMWrite
		} else {
			fwd.nvR += s.Delta.NVRAMRead
			fwd.nvW += s.Delta.NVRAMWrite
		}
	}
	table := results.NewTable("Figure 10: AutoTM NVRAM traffic by phase (DenseNet 264)",
		"phase", "nvram_read_gb", "nvram_write_gb")
	table.AddRow("forward", cfg.unscaleGB(fwd.nvR*mem.Line), cfg.unscaleGB(fwd.nvW*mem.Line))
	table.AddRow("backward", cfg.unscaleGB(bwd.nvR*mem.Line), cfg.unscaleGB(bwd.nvW*mem.Line))
	return &Fig10Result{
		Trace:      res.Series.Rebin(res.Elapsed / 200),
		PhaseTable: table,
	}, nil
}

// phaseOf resolves the training phase of sample i: its own label, or
// the next kernel label for "move:"/"setup"/"drain" samples.
func phaseOf(samples []perfcounter.Sample, i int) string {
	for j := i; j < len(samples); j++ {
		l := samples[j].Label
		if strings.HasPrefix(l, "fwd:") {
			return "fwd"
		}
		if strings.HasPrefix(l, "bwd:") {
			return "bwd"
		}
	}
	return "bwd"
}

// Table2Row is one network's measurement.
type Table2Row struct {
	Network   string
	TwoLM     CNNRun
	AutoTM    CNNRun
	Speedup   float64
	NVRatio   float64 // AutoTM NVRAM traffic / 2LM NVRAM traffic
	Footprint float64 // unscaled GB
}

// CNNRun is one side of a Table II row (unscaled units).
type CNNRun struct {
	DRAMReadGB, DRAMWriteGB, NVRAMReadGB, NVRAMWriteGB float64
	RuntimeS                                           float64
}

// Table2 reproduces Table II: data moved and execution time for the
// three CNNs in 2LM and under AutoTM.
func Table2(cfg CNNConfig) (*results.Table, []Table2Row, error) {
	cfg = cfg.withDefaults()
	var rows []Table2Row
	table := results.NewTable("Table II: data moved (GB) and runtime (s), 2LM vs AutoTM",
		"network", "mode", "dram_read", "dram_write", "nvram_read", "nvram_write", "runtime_s", "speedup")

	for _, name := range []string{"inceptionv4", "resnet200", "densenet264"} {
		plan, err := cfg.CompileNetwork(name)
		if err != nil {
			return nil, nil, err
		}
		r2, err := cfg.Run2LM(plan)
		if err != nil {
			return nil, nil, err
		}
		r1, err := cfg.RunAutoTM(plan)
		if err != nil {
			return nil, nil, err
		}
		row := Table2Row{
			Network: name,
			TwoLM: CNNRun{
				DRAMReadGB:   cfg.unscaleGB(r2.DRAMReadBytes()),
				DRAMWriteGB:  cfg.unscaleGB(r2.DRAMWriteBytes()),
				NVRAMReadGB:  cfg.unscaleGB(r2.NVRAMReadBytes()),
				NVRAMWriteGB: cfg.unscaleGB(r2.NVRAMWriteBytes()),
				RuntimeS:     cfg.unscaleSeconds(r2.Elapsed),
			},
			AutoTM: CNNRun{
				DRAMReadGB:   cfg.unscaleGB(r1.DRAMReadBytes()),
				DRAMWriteGB:  cfg.unscaleGB(r1.DRAMWriteBytes()),
				NVRAMReadGB:  cfg.unscaleGB(r1.NVRAMReadBytes()),
				NVRAMWriteGB: cfg.unscaleGB(r1.NVRAMWriteBytes()),
				RuntimeS:     cfg.unscaleSeconds(r1.Elapsed),
			},
			Footprint: cfg.unscaleGB(plan.HeapSize),
		}
		row.Speedup = row.TwoLM.RuntimeS / row.AutoTM.RuntimeS
		row.NVRatio = (row.AutoTM.NVRAMReadGB + row.AutoTM.NVRAMWriteGB) /
			(row.TwoLM.NVRAMReadGB + row.TwoLM.NVRAMWriteGB)
		rows = append(rows, row)
		table.AddRow(name, "2LM", row.TwoLM.DRAMReadGB, row.TwoLM.DRAMWriteGB,
			row.TwoLM.NVRAMReadGB, row.TwoLM.NVRAMWriteGB, row.TwoLM.RuntimeS, "")
		table.AddRow(name, "AutoTM", row.AutoTM.DRAMReadGB, row.AutoTM.DRAMWriteGB,
			row.AutoTM.NVRAMReadGB, row.AutoTM.NVRAMWriteGB, row.AutoTM.RuntimeS,
			fmt.Sprintf("%.2fx", row.Speedup))
	}
	return table, rows, nil
}
