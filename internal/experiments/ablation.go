// Ablation experiments. The paper's discussion (Sections IV-D and
// VII) points beyond the measurements: the observed pathologies stem
// from specific design choices (direct mapping, allocate-on-write,
// the undocumented DDO) and could be "alleviated in future hardware",
// and software management is bottlenecked by CPU-driven synchronous
// copies that a co-designed DMA engine would hide. These experiments
// quantify each of those counterfactuals on the calibrated model.

package experiments

import (
	"fmt"

	"twolm/internal/autotm"
	"twolm/internal/compiler"
	"twolm/internal/core"
	"twolm/internal/dma"
	"twolm/internal/imc"
	"twolm/internal/kernels"
	"twolm/internal/mem"
	"twolm/internal/platform"
	"twolm/internal/results"
)

// new2LMWithPolicy builds a single-socket memory-mode system with an
// explicit controller policy.
func (c MicroConfig) new2LMWithPolicy(p imc.Policy) (*core.System, error) {
	return core.New(core.Config{
		Platform: platform.CascadeLake(1, c.Scale, 24),
		Mode:     core.Mode2LM,
		Policy:   &p,
	})
}

// AblationDDO quantifies the Dirty Data Optimization: the Figure 4c
// read-modify-write workload with the optimization present and absent.
func AblationDDO(cfg MicroConfig) (*results.Table, error) {
	cfg = cfg.withDefaults()
	table := results.NewTable(
		"Ablation: Dirty Data Optimization (RMW benchmark, 4 threads, standard stores)",
		"ddo", "dram_read_gbs", "dram_write_gbs", "effective_gbs", "amplification", "ddo_hits")
	for _, disable := range []bool{false, true} {
		p := imc.HardwarePolicy()
		p.DisableDDO = disable
		sys, err := cfg.new2LMWithPolicy(p)
		if err != nil {
			return nil, err
		}
		region, err := sys.AddressSpace().Alloc(sys.Platform().ScaleBytes(fig4Array))
		if err != nil {
			return nil, err
		}
		spec := kernels.Spec{Op: kernels.ReadModifyWrite, Store: kernels.Standard, Pattern: mem.Sequential, Threads: 4}
		if err := kernels.PrimeFor(sys, region, spec, true); err != nil {
			return nil, err
		}
		res, err := kernels.Run(sys, region, spec)
		if err != nil {
			return nil, err
		}
		label := "enabled"
		if disable {
			label = "disabled"
		}
		table.AddRow(label,
			res.DRAMReadBW()/mem.GB, res.DRAMWriteBW()/mem.GB,
			res.EffectiveBW()/mem.GB, res.Delta.Amplification(),
			fmt.Sprint(res.Delta.DDO))
	}
	return table, nil
}

// AblationWritePolicy contrasts the hardware's allocate-on-write-miss
// behavior (the paper's "best guess" for the extra DRAM write) with a
// write-around controller, on the Figure 4b dirty-write-miss workload.
func AblationWritePolicy(cfg MicroConfig) (*results.Table, error) {
	cfg = cfg.withDefaults()
	table := results.NewTable(
		"Ablation: write-miss allocation policy (write-only NT benchmark, 24 threads)",
		"policy", "dram_read_gbs", "dram_write_gbs", "nvram_read_gbs", "nvram_write_gbs", "effective_gbs", "amplification")
	for _, allocate := range []bool{true, false} {
		p := imc.HardwarePolicy()
		p.WriteAllocate = allocate
		sys, err := cfg.new2LMWithPolicy(p)
		if err != nil {
			return nil, err
		}
		region, err := sys.AddressSpace().Alloc(sys.Platform().ScaleBytes(fig4Array))
		if err != nil {
			return nil, err
		}
		spec := kernels.Spec{Op: kernels.WriteOnly, Store: kernels.Nontemporal, Pattern: mem.Sequential, Threads: 24}
		if err := kernels.PrimeFor(sys, region, spec, true); err != nil {
			return nil, err
		}
		res, err := kernels.Run(sys, region, spec)
		if err != nil {
			return nil, err
		}
		label := "allocate-on-miss (hardware)"
		if !allocate {
			label = "write-around"
		}
		table.AddRow(label,
			res.DRAMReadBW()/mem.GB, res.DRAMWriteBW()/mem.GB,
			res.NVRAMReadBW()/mem.GB, res.NVRAMWriteBW()/mem.GB,
			res.EffectiveBW()/mem.GB, res.Delta.Amplification())
	}
	return table, nil
}

// AblationAssociativity reruns the DenseNet 264 2LM iteration with
// hypothetical cache associativities, quantifying how much of the
// paper's limitation #1 (conflict misses from direct mapping) an
// associative DRAM cache would recover — and how much it would not,
// since the dead-data write-backs (limitation #3) remain.
func AblationAssociativity(cfg CNNConfig, ways []int) (*results.Table, error) {
	cfg = cfg.withDefaults()
	if len(ways) == 0 {
		ways = []int{1, 2, 4, 8}
	}
	plan, err := cfg.CompileNetwork("densenet264")
	if err != nil {
		return nil, err
	}
	table := results.NewTable(
		"Ablation: DRAM-cache associativity (DenseNet 264 training iteration, 2LM)",
		"ways", "runtime_s", "hit_rate", "miss_dirty", "nvram_write_gb", "vs_direct_mapped")
	var base float64
	for _, w := range ways {
		p := imc.HardwarePolicy()
		p.Ways = w
		sys, err := core.New(core.Config{
			Platform: platform.CascadeLake(1, cfg.Scale, 24),
			Mode:     core.Mode2LM,
			Policy:   &p,
		})
		if err != nil {
			return nil, err
		}
		res, err := compiler.Execute(plan, sys, compiler.ExecConfig{WarmupIterations: cfg.Warmup})
		if err != nil {
			return nil, err
		}
		rt := cfg.unscaleSeconds(res.Elapsed)
		if w == ways[0] {
			base = rt
		}
		table.AddRow(w, rt, res.Counters.HitRate(),
			fmt.Sprint(res.Counters.TagMissDirty),
			cfg.unscaleGB(res.NVRAMWriteBytes()),
			fmt.Sprintf("%.2fx", base/rt))
	}
	return table, nil
}

// CoDesign runs the paper's closing proposal: AutoTM's tensor moves
// executed by (a) CPU cores synchronously (the measured baseline),
// (b) a current-generation I/O DMA engine, and (c) a co-designed
// high-bandwidth asynchronous mover, against the 2LM reference.
func CoDesign(cfg CNNConfig) (*results.Table, error) {
	cfg = cfg.withDefaults()
	plan, err := cfg.CompileNetwork("densenet264")
	if err != nil {
		return nil, err
	}
	table := results.NewTable(
		"Co-design: DenseNet 264 data movement mechanisms",
		"mechanism", "runtime_s", "nvram_read_gb", "nvram_write_gb", "speedup_vs_2lm")

	twoLM, err := cfg.Run2LM(plan)
	if err != nil {
		return nil, err
	}
	rt2 := cfg.unscaleSeconds(twoLM.Elapsed)
	table.AddRow("2LM hardware cache", rt2,
		cfg.unscaleGB(twoLM.NVRAMReadBytes()), cfg.unscaleGB(twoLM.NVRAMWriteBytes()), "1.00x")

	movers := []struct {
		name   string
		engine *dma.Engine
	}{
		{"AutoTM, CPU sync copies", nil},
		{"AutoTM + I/OAT-class DMA", ptr(dma.CurrentGenIOAT())},
		{"AutoTM + co-designed DMA", ptr(dma.FutureGen())},
	}
	for _, m := range movers {
		sys, err := core.New(core.Config{
			Platform: platform.CascadeLake(1, cfg.Scale, 24),
			Mode:     core.Mode1LM,
		})
		if err != nil {
			return nil, err
		}
		res, err := autotm.Execute(plan, sys, autotm.Config{Mover: m.engine})
		if err != nil {
			return nil, err
		}
		rt := cfg.unscaleSeconds(res.Elapsed)
		table.AddRow(m.name, rt,
			cfg.unscaleGB(res.NVRAMReadBytes()), cfg.unscaleGB(res.NVRAMWriteBytes()),
			fmt.Sprintf("%.2fx", rt2/rt))
	}
	return table, nil
}

func ptr(e dma.Engine) *dma.Engine { return &e }
