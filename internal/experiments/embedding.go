// Embedding (DLRM-style) case study — the recommendation-engine
// workload the paper's introduction motivates for NVRAM capacity,
// evaluated the same way as the main case studies: hardware-managed
// 2LM against Bandana-style software placement.

package experiments

import (
	"fmt"

	"twolm/internal/core"
	"twolm/internal/embed"
	"twolm/internal/mem"
	"twolm/internal/platform"
	"twolm/internal/results"
)

// EmbedConfig parameterizes the embedding study.
type EmbedConfig struct {
	// Scale is the platform footprint divisor.
	Scale uint64
	// Model overrides the embedding model; zero-valued fields take the
	// calibrated defaults sized against the scaled DRAM.
	Model embed.Config
	// Steps is the measured step count per run.
	Steps int
}

// DefaultEmbedConfig sizes the tables at ~4x the scaled DRAM.
func DefaultEmbedConfig() EmbedConfig {
	return EmbedConfig{
		Scale: 4096,
		Model: embed.DefaultConfig(),
		Steps: 8,
	}
}

func (c EmbedConfig) withDefaults() EmbedConfig {
	d := DefaultEmbedConfig()
	if c.Scale == 0 {
		c.Scale = d.Scale
	}
	if c.Model.Tables == 0 {
		c.Model = d.Model
	}
	if c.Steps == 0 {
		c.Steps = d.Steps
	}
	return c
}

// EmbedStudy runs inference and training with both placements and
// returns the comparison table.
func EmbedStudy(cfg EmbedConfig) (*results.Table, error) {
	cfg = cfg.withDefaults()
	table := results.NewTable(
		fmt.Sprintf("Embedding tables (DLRM-style), %s model: 2LM vs software placement",
			mem.FormatBytes(cfg.Model.TotalBytes())),
		"workload", "placement", "lookups_per_s", "hit_rate", "nvram_read", "nvram_write", "speedup")

	for _, train := range []bool{false, true} {
		workload := "inference"
		if train {
			workload = "training"
		}
		model := cfg.Model
		model.Train = train

		var base float64
		for _, placement := range []embed.Placement{embed.Flat2LM, embed.SoftwareManaged} {
			mode := core.Mode2LM
			if placement == embed.SoftwareManaged {
				mode = core.Mode1LM
			}
			sys, err := core.New(core.Config{
				Platform: platform.CascadeLake(1, cfg.Scale, 24),
				Mode:     mode,
			})
			if err != nil {
				return nil, err
			}
			m, err := embed.New(sys, model, placement)
			if err != nil {
				return nil, fmt.Errorf("embed study (%s/%v): %w", workload, placement, err)
			}
			res, err := m.Run(cfg.Steps)
			if err != nil {
				return nil, err
			}
			speedup := ""
			if placement == embed.Flat2LM {
				base = res.Elapsed
			} else if res.Elapsed > 0 {
				speedup = fmt.Sprintf("%.2fx", base/res.Elapsed)
			}
			table.AddRow(workload, placement.String(),
				res.LookupsPerSecond()/1e6,
				res.Counters.HitRate(),
				fmt.Sprint(res.Counters.NVRAMRead),
				fmt.Sprint(res.Counters.NVRAMWrite),
				speedup)
		}
	}
	return table, nil
}
