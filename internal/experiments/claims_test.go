package experiments

import "testing"

// TestCheckClaims: every headline claim passes at test scale.
func TestCheckClaims(t *testing.T) {
	table, claims, err := CheckClaims(testMicroConfig(), testCNNConfig(), testGraphConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(claims) != 5 {
		t.Fatalf("claims = %d, want 5", len(claims))
	}
	for _, c := range claims {
		if !c.Pass {
			t.Errorf("%s FAILED: %s — expected %s, measured %s", c.ID, c.Text, c.Expected, c.Measured)
		}
	}
	if len(table.Rows) != len(claims) {
		t.Errorf("table rows %d != claims %d", len(table.Rows), len(claims))
	}
}
