// Package experiments encodes every table and figure of the paper's
// evaluation as a reusable function returning rendered results. The
// command-line tools (cmd/nvbench, cmd/cnnsim, cmd/graphsim, cmd/repro)
// and the benchmark harness (bench_test.go) all call into this package
// so that a given experiment is defined exactly once.
//
// This file covers the microbenchmark study: Figure 2 (1LM NVRAM
// bandwidth), Table I (2LM per-access transaction counts) and Figure 4
// (2LM miss-regime bandwidth).
package experiments

import (
	"fmt"

	"twolm/internal/core"
	"twolm/internal/imc"
	"twolm/internal/kernels"
	"twolm/internal/mem"
	"twolm/internal/platform"
	"twolm/internal/results"
)

// MicroConfig parameterizes the microbenchmark experiments.
type MicroConfig struct {
	// Scale is the footprint divisor (power of two). The default 1024
	// maps the paper's 192 GiB cache to 192 MiB.
	Scale uint64
	// Threads lists the sweep points for Figure 2.
	Threads []int
	// Granularities lists the random-access sizes for Figures 2 and 4.
	Granularities []int
}

// DefaultMicroConfig returns the paper's sweep at 1/1024 scale.
func DefaultMicroConfig() MicroConfig {
	return MicroConfig{
		Scale:         1024,
		Threads:       []int{1, 2, 4, 8, 16, 24},
		Granularities: []int{64, 128, 256, 512},
	}
}

func (c MicroConfig) withDefaults() MicroConfig {
	d := DefaultMicroConfig()
	if c.Scale == 0 {
		c.Scale = d.Scale
	}
	if len(c.Threads) == 0 {
		c.Threads = d.Threads
	}
	if len(c.Granularities) == 0 {
		c.Granularities = d.Granularities
	}
	return c
}

// new1LM builds a single-socket app-direct system.
func (c MicroConfig) new1LM() (*core.System, error) {
	return core.New(core.Config{
		Platform: platform.CascadeLake(1, c.Scale, 24),
		Mode:     core.Mode1LM,
	})
}

// new2LM builds a single-socket memory-mode system.
func (c MicroConfig) new2LM() (*core.System, error) {
	return core.New(core.Config{
		Platform: platform.CascadeLake(1, c.Scale, 24),
		Mode:     core.Mode2LM,
	})
}

// fig2Array is the unscaled array size used for the 1LM bandwidth
// sweeps; it only needs to dwarf the LLC.
const fig2Array = 64 * mem.GiB

// fig4Array is the unscaled array size for the 2LM miss benchmarks:
// the paper's 420 GB array, over twice the 192 GB DRAM cache.
const fig4Array = 420 * uint64(1e9)

// fig2Sweep runs one op over the thread/granularity sweep on a fresh
// 1LM system per cell and returns the bandwidth table in GB/s.
func (c MicroConfig) fig2Sweep(title string, op kernels.Op, store kernels.StoreType) (*results.Table, error) {
	headers := []string{"threads", "sequential"}
	for _, g := range c.Granularities {
		headers = append(headers, fmt.Sprintf("random-%dB", g))
	}
	table := results.NewTable(title, headers...)

	for _, threads := range c.Threads {
		row := []any{threads}
		// Sequential first, then each random granularity.
		specs := []kernels.Spec{{Op: op, Pattern: mem.Sequential, Store: store, Threads: threads}}
		for _, g := range c.Granularities {
			specs = append(specs, kernels.Spec{Op: op, Pattern: mem.Random, Granularity: g, Store: store, Threads: threads})
		}
		for _, spec := range specs {
			sys, err := c.new1LM()
			if err != nil {
				return nil, err
			}
			region, err := sys.AddressSpace().AllocNVRAM(sys.Platform().ScaleBytes(fig2Array))
			if err != nil {
				return nil, err
			}
			res, err := kernels.Run(sys, region, spec)
			if err != nil {
				return nil, err
			}
			row = append(row, res.EffectiveBW()/mem.GB)
		}
		table.AddRow(row...)
	}
	return table, nil
}

// Fig2a reproduces Figure 2a: 1LM NVRAM read bandwidth (standard
// loads) versus thread count for sequential and random access.
func Fig2a(cfg MicroConfig) (*results.Table, error) {
	cfg = cfg.withDefaults()
	return cfg.fig2Sweep("Figure 2a: NVRAM read bandwidth, 1LM (GB/s)", kernels.ReadOnly, kernels.Standard)
}

// Fig2b reproduces Figure 2b: 1LM NVRAM write bandwidth with
// nontemporal stores.
func Fig2b(cfg MicroConfig) (*results.Table, error) {
	cfg = cfg.withDefaults()
	return cfg.fig2Sweep("Figure 2b: NVRAM write bandwidth, 1LM, nontemporal stores (GB/s)", kernels.WriteOnly, kernels.Nontemporal)
}

// Table1 reproduces Table I by measuring, for each access scenario,
// the DRAM/NVRAM transactions generated per demand request on a 2LM
// system. Every scenario is constructed the way the paper constructs
// it (Section IV-A) and the resulting ratios must be integers.
func Table1(cfg MicroConfig) (*results.Table, error) {
	cfg = cfg.withDefaults()
	table := results.NewTable("Table I: memory accesses generated per 2LM demand request",
		"scenario", "dram_read", "dram_write", "nvram_read", "nvram_write", "amplification")

	type scenario struct {
		name string
		run  func() (*core.System, error)
	}

	// Arrays: "fit" fits the DRAM cache without aliasing; "big" is the
	// paper's 420 GB array at over twice the cache size.
	scenarios := []scenario{
		{"LLC read hit", func() (*core.System, error) {
			sys, err := cfg.new2LM()
			if err != nil {
				return nil, err
			}
			region, err := sys.AddressSpace().Alloc(sys.Platform().DRAMSize() / 4)
			if err != nil {
				return nil, err
			}
			kernels.PrimeClean(sys, region)
			_, err = kernels.Run(sys, region, kernels.Spec{Op: kernels.ReadOnly, Pattern: mem.Sequential, Threads: 24})
			return sys, err
		}},
		{"LLC read miss (clean)", func() (*core.System, error) {
			sys, err := cfg.new2LM()
			if err != nil {
				return nil, err
			}
			region, err := sys.AddressSpace().Alloc(sys.Platform().ScaleBytes(fig4Array))
			if err != nil {
				return nil, err
			}
			kernels.PrimeClean(sys, region)
			_, err = kernels.Run(sys, region, kernels.Spec{Op: kernels.ReadOnly, Pattern: mem.Sequential, Threads: 24})
			return sys, err
		}},
		{"LLC read miss (dirty)", func() (*core.System, error) {
			// The paper measures this "early in the iteration", before
			// the reads themselves refill the cache with clean data:
			// we read a prefix no larger than the cache after priming
			// the whole array dirty.
			sys, err := cfg.new2LM()
			if err != nil {
				return nil, err
			}
			region, err := sys.AddressSpace().Alloc(sys.Platform().ScaleBytes(fig4Array))
			if err != nil {
				return nil, err
			}
			kernels.PrimeDirty(sys, region)
			prefix := mem.Region{Base: region.Base, Size: sys.Platform().DRAMSize() / 2}
			_, err = kernels.Run(sys, prefix, kernels.Spec{Op: kernels.ReadOnly, Pattern: mem.Sequential, Threads: 24})
			return sys, err
		}},
		{"LLC write hit", func() (*core.System, error) {
			sys, err := cfg.new2LM()
			if err != nil {
				return nil, err
			}
			region, err := sys.AddressSpace().Alloc(sys.Platform().DRAMSize() / 4)
			if err != nil {
				return nil, err
			}
			kernels.PrimeDirty(sys, region)
			_, err = kernels.Run(sys, region, kernels.Spec{Op: kernels.WriteOnly, Store: kernels.Nontemporal, Pattern: mem.Sequential, Threads: 24})
			return sys, err
		}},
		{"LLC write miss (clean)", func() (*core.System, error) {
			// Mirror of the dirty-read-miss measurement: a clean-primed
			// cache stays clean only ahead of the write front, so we
			// measure a prefix no larger than the cache.
			sys, err := cfg.new2LM()
			if err != nil {
				return nil, err
			}
			region, err := sys.AddressSpace().Alloc(sys.Platform().ScaleBytes(fig4Array))
			if err != nil {
				return nil, err
			}
			kernels.PrimeClean(sys, region)
			prefix := mem.Region{Base: region.Base, Size: sys.Platform().DRAMSize() / 2}
			_, err = kernels.Run(sys, prefix, kernels.Spec{Op: kernels.WriteOnly, Store: kernels.Nontemporal, Pattern: mem.Sequential, Threads: 24})
			return sys, err
		}},
		{"LLC write miss (dirty)", func() (*core.System, error) {
			sys, err := cfg.new2LM()
			if err != nil {
				return nil, err
			}
			region, err := sys.AddressSpace().Alloc(sys.Platform().ScaleBytes(fig4Array))
			if err != nil {
				return nil, err
			}
			kernels.PrimeDirty(sys, region)
			_, err = kernels.Run(sys, region, kernels.Spec{Op: kernels.WriteOnly, Store: kernels.Nontemporal, Pattern: mem.Sequential, Threads: 24})
			return sys, err
		}},
		{"LLC write (DDO)", func() (*core.System, error) {
			// Standard-store writebacks after an RFO of a resident
			// line: the paper's Section IV-C scenario.
			sys, err := cfg.new2LM()
			if err != nil {
				return nil, err
			}
			region, err := sys.AddressSpace().Alloc(sys.Platform().DRAMSize() / 4)
			if err != nil {
				return nil, err
			}
			kernels.PrimeClean(sys, region)
			_, err = kernels.Run(sys, region, kernels.Spec{Op: kernels.ReadModifyWrite, Store: kernels.Standard, Pattern: mem.Sequential, Threads: 4})
			return sys, err
		}},
	}

	for _, sc := range scenarios {
		sys, err := sc.run()
		if err != nil {
			return nil, fmt.Errorf("table1 %q: %w", sc.name, err)
		}
		ctr := sys.Counters()
		demand := ctr.Demand()
		if demand == 0 {
			return nil, fmt.Errorf("table1 %q: no demand requests", sc.name)
		}
		if sc.name == "LLC write (DDO)" {
			// Isolate the write side: subtract the read-hit traffic
			// (1 DRAM read per demand read, no other events) through the
			// clamped counter pipeline rather than ad-hoc field math.
			ctr = ctr.Sub(imc.Counters{DRAMRead: ctr.LLCRead})
			demand = ctr.LLCWrite
		}
		per := func(n uint64) float64 { return float64(n) / float64(demand) }
		amp := per(ctr.DRAMRead) + per(ctr.DRAMWrite) + per(ctr.NVRAMRead) + per(ctr.NVRAMWrite)
		table.AddRow(sc.name, per(ctr.DRAMRead), per(ctr.DRAMWrite), per(ctr.NVRAMRead), per(ctr.NVRAMWrite), amp)
	}
	return table, nil
}

// Fig4Row holds one access-mode row of a Figure 4 panel.
type Fig4Row struct {
	Mode        string
	DRAMRead    float64 // GB/s
	DRAMWrite   float64
	NVRAMRead   float64
	NVRAMWrite  float64
	Effective   float64
	HitRate     float64
	Amplif      float64
	MediaWriteA float64 // NVRAM media write amplification
}

// fig4Modes returns the access-mode sweep: sequential plus each random
// granularity.
func (c MicroConfig) fig4Modes() []kernels.Spec {
	specs := []kernels.Spec{{Pattern: mem.Sequential}}
	for _, g := range c.Granularities {
		specs = append(specs, kernels.Spec{Pattern: mem.Random, Granularity: g})
	}
	return specs
}

// fig4Panel primes a fresh over-capacity 2LM system per mode and runs
// the kernel, returning one row per access mode.
func (c MicroConfig) fig4Panel(op kernels.Op, store kernels.StoreType, threads int, dirtyPrime bool) ([]Fig4Row, error) {
	var rows []Fig4Row
	for _, base := range c.fig4Modes() {
		sys, err := c.new2LM()
		if err != nil {
			return nil, err
		}
		region, err := sys.AddressSpace().Alloc(sys.Platform().ScaleBytes(fig4Array))
		if err != nil {
			return nil, err
		}
		spec := base
		spec.Op = op
		spec.Store = store
		spec.Threads = threads
		// Prime with an unmeasured pass in the same iteration order, as
		// the paper does with its deterministic benchmarks, so the
		// measured pass misses on every access.
		if err := kernels.PrimeFor(sys, region, spec, dirtyPrime); err != nil {
			return nil, err
		}
		res, err := kernels.Run(sys, region, spec)
		if err != nil {
			return nil, err
		}
		mode := "sequential"
		if spec.Pattern == mem.Random {
			mode = fmt.Sprintf("random-%dB", spec.Granularity)
		}
		rows = append(rows, Fig4Row{
			Mode:        mode,
			DRAMRead:    res.DRAMReadBW() / mem.GB,
			DRAMWrite:   res.DRAMWriteBW() / mem.GB,
			NVRAMRead:   res.NVRAMReadBW() / mem.GB,
			NVRAMWrite:  res.NVRAMWriteBW() / mem.GB,
			Effective:   res.EffectiveBW() / mem.GB,
			HitRate:     res.Delta.HitRate(),
			Amplif:      res.Delta.Amplification(),
			MediaWriteA: sys.Controller().NVRAM.WriteAmplification(),
		})
	}
	return rows, nil
}

// fig4Table renders Fig4 rows.
func fig4Table(title string, rows []Fig4Row) *results.Table {
	t := results.NewTable(title,
		"access", "dram_read_gbs", "dram_write_gbs", "nvram_read_gbs", "nvram_write_gbs",
		"effective_gbs", "hit_rate", "amplification")
	for _, r := range rows {
		t.AddRow(r.Mode, r.DRAMRead, r.DRAMWrite, r.NVRAMRead, r.NVRAMWrite, r.Effective, r.HitRate, r.Amplif)
	}
	return t
}

// Fig4a reproduces Figure 4a: read-only benchmark over an array
// exceeding the DRAM cache — 100% clean LLC read misses, 24 threads.
func Fig4a(cfg MicroConfig) (*results.Table, []Fig4Row, error) {
	cfg = cfg.withDefaults()
	rows, err := cfg.fig4Panel(kernels.ReadOnly, kernels.Standard, 24, false)
	if err != nil {
		return nil, nil, err
	}
	return fig4Table("Figure 4a: read-only, clean LLC read misses, 24 threads (GB/s)", rows), rows, nil
}

// Fig4b reproduces Figure 4b: write-only benchmark with nontemporal
// stores — 100% dirty LLC write misses, 24 threads.
func Fig4b(cfg MicroConfig) (*results.Table, []Fig4Row, error) {
	cfg = cfg.withDefaults()
	rows, err := cfg.fig4Panel(kernels.WriteOnly, kernels.Nontemporal, 24, true)
	if err != nil {
		return nil, nil, err
	}
	return fig4Table("Figure 4b: write-only, dirty LLC write misses, 24 threads, nontemporal stores (GB/s)", rows), rows, nil
}

// Fig4c reproduces Figure 4c: read-modify-write with standard stores —
// dirty LLC read miss followed by a later DDO LLC write, 4 threads.
func Fig4c(cfg MicroConfig) (*results.Table, []Fig4Row, error) {
	cfg = cfg.withDefaults()
	rows, err := cfg.fig4Panel(kernels.ReadModifyWrite, kernels.Standard, 4, true)
	if err != nil {
		return nil, nil, err
	}
	return fig4Table("Figure 4c: read-modify-write, dirty read miss + DDO write, 4 threads, standard stores (GB/s)", rows), rows, nil
}
