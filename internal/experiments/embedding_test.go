package experiments

import (
	"strconv"
	"testing"
)

func testEmbedConfig() EmbedConfig {
	cfg := DefaultEmbedConfig()
	cfg.Scale = 16384 // 12 MiB DRAM
	cfg.Model.Tables = 4
	cfg.Model.RowsPerTable = 1 << 17 // 64 MiB model: > 5x the cache
	cfg.Model.Dim = 32
	cfg.Model.Batch = 1024
	cfg.Steps = 6
	return cfg
}

// TestEmbedStudyShape: four rows (inference/training x 2LM/software),
// software wins training, and the hardware cache shows tag activity
// while the software placement shows none.
func TestEmbedStudyShape(t *testing.T) {
	table, err := EmbedStudy(testEmbedConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(table.Rows))
	}
	// Row order: inference 2LM, inference software, training 2LM,
	// training software.
	for i, wantMode := range []string{"2LM", "software", "2LM", "software"} {
		if table.Rows[i][1] != wantMode {
			t.Errorf("row %d placement = %q, want %q", i, table.Rows[i][1], wantMode)
		}
	}
	// 2LM rows have a hit rate; software rows have 0 (no tags).
	hit2LM, _ := strconv.ParseFloat(table.Rows[0][3], 64)
	hitSW, _ := strconv.ParseFloat(table.Rows[1][3], 64)
	if hit2LM <= 0 {
		t.Error("2LM inference shows no cache hits")
	}
	if hitSW != 0 {
		t.Errorf("software placement shows tag hits: %f", hitSW)
	}
	// The software placement must at least match 2LM performance —
	// Bandana's actual claim is equal service at a fraction of the
	// DRAM and NVRAM cost, not raw speed.
	sp := table.Rows[3][6]
	v, err := strconv.ParseFloat(sp[:len(sp)-1], 64)
	if err != nil {
		t.Fatalf("speedup cell %q: %v", sp, err)
	}
	if v < 0.95 {
		t.Errorf("software training ran %.2fx of 2LM, want >= 0.95 (no regression)", v)
	}
	// 2LM training must write NVRAM (dirty evictions); software writes
	// less.
	w2LM, _ := strconv.Atoi(table.Rows[2][5])
	wSW, _ := strconv.Atoi(table.Rows[3][5])
	if w2LM == 0 {
		t.Error("2LM training wrote no NVRAM")
	}
	if wSW >= w2LM {
		t.Errorf("software NVRAM writes (%d) not below 2LM (%d)", wSW, w2LM)
	}
	// And total NVRAM traffic (the wear and amplification story) must
	// be substantially lower under software management.
	r2LM, _ := strconv.Atoi(table.Rows[2][4])
	rSW, _ := strconv.Atoi(table.Rows[3][4])
	if total2LM, totalSW := r2LM+w2LM, rSW+wSW; float64(totalSW) > 0.8*float64(total2LM) {
		t.Errorf("software NVRAM traffic (%d) not well below 2LM (%d)", totalSW, total2LM)
	}
}
