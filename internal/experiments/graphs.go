// Graph case-study experiments: Figure 7 (kernel performance when the
// input fits versus exceeds the DRAM cache), Figure 8 (total data
// moved, NUMA baseline versus 2LM) and Figure 9 (pagerank bandwidth
// and tag traces), plus the Sage-style semi-asymmetric comparison of
// Section VII-A-2.

package experiments

import (
	"fmt"

	"twolm/internal/analytics"
	"twolm/internal/core"
	"twolm/internal/graph"
	"twolm/internal/mem"
	"twolm/internal/perfcounter"
	"twolm/internal/platform"
	"twolm/internal/results"
	"twolm/internal/sage"
)

// GraphConfig parameterizes the graph case study. The defaults mirror
// the paper's setup at 1/4096 footprint scale: a Kronecker graph at
// ~10% of the DRAM-cache capacity (kron30 vs 384 GB) and a web-crawl-
// shaped graph at ~130% of it (wdc12's 507 GB vs 384 GB).
type GraphConfig struct {
	// Scale is the platform footprint divisor (power of two).
	Scale uint64
	// SmallScale/SmallEdgeFactor generate the fits-in-cache Kronecker
	// input (the kron30 stand-in).
	SmallScale, SmallEdgeFactor int
	// LargeScale/LargeEdgeFactor generate the exceeds-cache web-like
	// input (the wdc12 stand-in).
	LargeScale, LargeEdgeFactor int
	// Threads is the modeled worker count (96: both sockets).
	Threads int
	// PRRounds bounds pagerank (paper: 100; scaled default: 5).
	PRRounds int
	// KCoreK is the k-core parameter scaled to the graph's degrees.
	KCoreK int
	// Seed drives the generators.
	Seed int64
}

// DefaultGraphConfig returns the calibrated study configuration.
func DefaultGraphConfig() GraphConfig {
	return GraphConfig{
		Scale:           4096,
		SmallScale:      18,
		SmallEdgeFactor: 8,
		LargeScale:      21,
		LargeEdgeFactor: 14,
		Threads:         96,
		PRRounds:        5,
		KCoreK:          10,
		Seed:            1,
	}
}

func (c GraphConfig) withDefaults() GraphConfig {
	d := DefaultGraphConfig()
	if c.Scale == 0 {
		c.Scale = d.Scale
	}
	if c.SmallScale == 0 {
		c.SmallScale = d.SmallScale
	}
	if c.SmallEdgeFactor == 0 {
		c.SmallEdgeFactor = d.SmallEdgeFactor
	}
	if c.LargeScale == 0 {
		c.LargeScale = d.LargeScale
	}
	if c.LargeEdgeFactor == 0 {
		c.LargeEdgeFactor = d.LargeEdgeFactor
	}
	if c.Threads == 0 {
		c.Threads = d.Threads
	}
	if c.PRRounds == 0 {
		c.PRRounds = d.PRRounds
	}
	if c.KCoreK == 0 {
		c.KCoreK = d.KCoreK
	}
	if c.Seed == 0 {
		c.Seed = d.Seed
	}
	return c
}

// GraphMode is a placement/mode configuration of one run.
type GraphMode string

const (
	// Mode2LMFlat is memory mode: the hardware cache manages placement.
	Mode2LMFlat GraphMode = "2LM"
	// ModeNUMA is app-direct with NUMA-preferred allocation (DRAM
	// first, spilling to NVRAM) — the paper's Figure 8a baseline.
	ModeNUMA GraphMode = "NUMA"
	// ModeSage is app-direct with the graph pinned read-only in NVRAM
	// and mutable auxiliaries in DRAM.
	ModeSage GraphMode = "Sage"
)

// KernelNames lists the lonestar kernels in the paper's order.
var KernelNames = []string{"bfs", "cc", "kcore", "pr"}

// GraphRun is one (graph, mode, kernel) measurement.
type GraphRun struct {
	Graph   string
	Mode    GraphMode
	Kernel  string
	Result  analytics.Result
	HitRate float64
}

// Study holds every run of the graph case study; the figure functions
// derive their tables from it.
type Study struct {
	Config GraphConfig
	Small  *graph.Graph
	Large  *graph.Graph
	Runs   []GraphRun
}

// newSystem builds the two-socket platform in the given mode.
func (c GraphConfig) newSystem(mode core.Mode) (*core.System, error) {
	return core.New(core.Config{
		Platform: platform.CascadeLake(2, c.Scale, c.Threads),
		Mode:     mode,
	})
}

// runKernels executes all four kernels against g in the given mode,
// each on a fresh system (matching the paper's quiet-system runs).
func (c GraphConfig) runKernels(g *graph.Graph, mode GraphMode) ([]GraphRun, error) {
	var runs []GraphRun
	for _, kernel := range KernelNames {
		var (
			sys *core.System
			cfg analytics.Config
			err error
		)
		base := analytics.Config{
			Threads:  c.Threads,
			PRRounds: c.PRRounds,
			KCoreK:   c.KCoreK,
		}
		var res analytics.Result
		switch mode {
		case Mode2LMFlat:
			sys, err = c.newSystem(core.Mode2LM)
			if err != nil {
				return nil, err
			}
			layout, perr := g.Place(sys.AddressSpace().Alloc)
			if perr != nil {
				return nil, perr
			}
			cfg = base
			cfg.Sys, cfg.G, cfg.Layout = sys, g, layout
			cfg.AllocProp = sys.AddressSpace().Alloc
			res, err = runOne(cfg, kernel, g)
		case ModeNUMA:
			sys, err = c.newSystem(core.Mode1LM)
			if err != nil {
				return nil, err
			}
			layout, perr := g.Place(sys.AddressSpace().Alloc)
			if perr != nil {
				return nil, perr
			}
			cfg = base
			cfg.Sys, cfg.G, cfg.Layout = sys, g, layout
			cfg.AllocProp = sys.AddressSpace().Alloc
			res, err = runOne(cfg, kernel, g)
		case ModeSage:
			sys, err = c.newSystem(core.Mode1LM)
			if err != nil {
				return nil, err
			}
			session, serr := sage.New(sys, g)
			if serr != nil {
				return nil, serr
			}
			switch kernel {
			case "bfs":
				res, err = session.BFS(base, g.MaxOutDegreeNode())
			case "cc":
				res, err = session.CC(base)
			case "kcore":
				res, err = session.KCore(base)
			case "pr":
				res, err = session.PageRank(base)
			}
		}
		if err != nil {
			return nil, fmt.Errorf("experiments: %s/%s/%s: %w", g.Name, mode, kernel, err)
		}
		runs = append(runs, GraphRun{
			Graph:   g.Name,
			Mode:    mode,
			Kernel:  kernel,
			Result:  res,
			HitRate: res.Delta.HitRate(),
		})
	}
	return runs, nil
}

// runOne dispatches a kernel by name.
func runOne(cfg analytics.Config, kernel string, g *graph.Graph) (analytics.Result, error) {
	switch kernel {
	case "bfs":
		return analytics.BFS(cfg, g.MaxOutDegreeNode())
	case "cc":
		return analytics.CC(cfg)
	case "kcore":
		return analytics.KCore(cfg)
	case "pr":
		return analytics.PageRank(cfg)
	default:
		return analytics.Result{}, fmt.Errorf("unknown kernel %q", kernel)
	}
}

// RunGraphStudy generates both inputs and executes every kernel in
// 2LM (both graphs), NUMA (large graph — the Figure 8 baseline) and
// Sage (large graph — the Section VII comparison).
func RunGraphStudy(cfg GraphConfig) (*Study, error) {
	cfg = cfg.withDefaults()
	small, err := graph.Kronecker(cfg.SmallScale, cfg.SmallEdgeFactor, cfg.Seed)
	if err != nil {
		return nil, err
	}
	large, err := graph.WebLike(cfg.LargeScale, cfg.LargeEdgeFactor, cfg.Seed)
	if err != nil {
		return nil, err
	}
	study := &Study{Config: cfg, Small: small, Large: large}

	for _, spec := range []struct {
		g    *graph.Graph
		mode GraphMode
	}{
		{small, Mode2LMFlat},
		{large, Mode2LMFlat},
		{large, ModeNUMA},
		{large, ModeSage},
	} {
		runs, err := cfg.runKernels(spec.g, spec.mode)
		if err != nil {
			return nil, err
		}
		study.Runs = append(study.Runs, runs...)
	}
	return study, nil
}

// find returns the run matching the key, or nil.
func (s *Study) find(graphName string, mode GraphMode, kernel string) *GraphRun {
	for i := range s.Runs {
		r := &s.Runs[i]
		if r.Graph == graphName && r.Mode == mode && r.Kernel == kernel {
			return r
		}
	}
	return nil
}

// unscaleSeconds converts simulated seconds to unscaled equivalents.
func (s *Study) unscaleSeconds(t float64) float64 { return t * float64(s.Config.Scale) }

// Fig7 renders Figure 7: per-kernel runtime and average bandwidth in
// 2LM for the fits-in-cache and exceeds-cache inputs.
func (s *Study) Fig7() *results.Table {
	t := results.NewTable(
		fmt.Sprintf("Figure 7: graph kernels in 2LM, %d threads (bandwidths GB/s)", s.Config.Threads),
		"graph", "kernel", "runtime_s", "dram_bw_gbs", "nvram_bw_gbs", "hit_rate", "amplification")
	for _, g := range []*graph.Graph{s.Small, s.Large} {
		for _, kernel := range KernelNames {
			r := s.find(g.Name, Mode2LMFlat, kernel)
			if r == nil {
				continue
			}
			el := r.Result.Elapsed
			d := r.Result.Delta
			dramBW, nvramBW := 0.0, 0.0
			if el > 0 {
				dramBW = float64((d.DRAMRead+d.DRAMWrite)*mem.Line) / el / mem.GB
				nvramBW = float64((d.NVRAMRead+d.NVRAMWrite)*mem.Line) / el / mem.GB
			}
			t.AddRow(g.Name, kernel, s.unscaleSeconds(el), dramBW, nvramBW, r.HitRate, d.Amplification())
		}
	}
	return t
}

// Fig8 renders Figure 8: total data moved per kernel on the large
// graph, NUMA baseline versus 2LM, with the resulting amplification.
func (s *Study) Fig8() *results.Table {
	t := results.NewTable(
		"Figure 8: total data moved on the over-capacity graph (scaled GB)",
		"kernel", "numa_total_gb", "2lm_total_gb", "2lm_vs_numa", "numa_nvram_gb", "2lm_nvram_gb")
	for _, kernel := range KernelNames {
		numa := s.find(s.Large.Name, ModeNUMA, kernel)
		twolm := s.find(s.Large.Name, Mode2LMFlat, kernel)
		if numa == nil || twolm == nil {
			continue
		}
		nd, td := numa.Result.Delta, twolm.Result.Delta
		numaTotal := float64(nd.MemoryAccesses()*mem.Line) / mem.GB
		twoTotal := float64(td.MemoryAccesses()*mem.Line) / mem.GB
		ratio := 0.0
		if numaTotal > 0 {
			ratio = twoTotal / numaTotal
		}
		t.AddRow(kernel, numaTotal, twoTotal, ratio,
			float64((nd.NVRAMRead+nd.NVRAMWrite)*mem.Line)/mem.GB,
			float64((td.NVRAMRead+td.NVRAMWrite)*mem.Line)/mem.GB)
	}
	return t
}

// Fig9Traces returns the pagerank counter traces: (a) the small graph
// in 2LM, (b/c) the large graph in 2LM (bandwidth and tag events come
// from the same series).
func (s *Study) Fig9Traces() (small, large *perfcounter.Series) {
	if r := s.find(s.Small.Name, Mode2LMFlat, "pr"); r != nil {
		small = r.Result.Series
	}
	if r := s.find(s.Large.Name, Mode2LMFlat, "pr"); r != nil {
		large = r.Result.Series
	}
	return small, large
}

// Fig9 renders the pagerank comparison as a table of per-round rates.
func (s *Study) Fig9() *results.Table {
	t := results.NewTable(
		"Figure 9: pagerank-push traces (per-round averages, GB/s)",
		"graph", "round", "dram_read", "dram_write", "nvram_read", "nvram_write", "tag_hit", "tag_miss_clean", "tag_miss_dirty")
	smallTr, largeTr := s.Fig9Traces()
	for _, tr := range []struct {
		name string
		s    *perfcounter.Series
	}{{s.Small.Name, smallTr}, {s.Large.Name, largeTr}} {
		if tr.s == nil {
			continue
		}
		round := 0
		for _, sample := range tr.s.Samples() {
			if sample.Dur == 0 {
				continue
			}
			round++
			t.AddRow(tr.name, sample.Label,
				sample.DRAMReadBW()/mem.GB, sample.DRAMWriteBW()/mem.GB,
				sample.NVRAMReadBW()/mem.GB, sample.NVRAMWriteBW()/mem.GB,
				fmt.Sprint(sample.Delta.TagHit), fmt.Sprint(sample.Delta.TagMissClean), fmt.Sprint(sample.Delta.TagMissDirty))
		}
	}
	return t
}

// SageTable renders the Section VII-A-2 comparison: Sage placement
// versus 2LM on the over-capacity graph.
func (s *Study) SageTable() *results.Table {
	t := results.NewTable(
		"Sage-style semi-asymmetric placement vs 2LM (over-capacity graph)",
		"kernel", "2lm_runtime_s", "sage_runtime_s", "speedup", "2lm_nvram_writes", "sage_nvram_writes")
	for _, kernel := range KernelNames {
		twolm := s.find(s.Large.Name, Mode2LMFlat, kernel)
		sg := s.find(s.Large.Name, ModeSage, kernel)
		if twolm == nil || sg == nil {
			continue
		}
		speedup := 0.0
		if sg.Result.Elapsed > 0 {
			speedup = twolm.Result.Elapsed / sg.Result.Elapsed
		}
		t.AddRow(kernel,
			s.unscaleSeconds(twolm.Result.Elapsed), s.unscaleSeconds(sg.Result.Elapsed),
			fmt.Sprintf("%.2fx", speedup),
			fmt.Sprint(twolm.Result.Delta.NVRAMWrite), fmt.Sprint(sg.Result.Delta.NVRAMWrite))
	}
	return t
}
