package experiments

import (
	"strconv"
	"strings"
	"testing"
)

// testCNNConfig shrinks footprints for the test suite while keeping
// the footprint >> DRAM-cache relationship.
func testCNNConfig() CNNConfig {
	return CNNConfig{
		Scale:          8192,
		DenseNetBatch:  1664,
		ResNetBatch:    1792,
		InceptionBatch: 3584,
		Warmup:         1,
	}
}

func TestCompileNetworkNames(t *testing.T) {
	cfg := testCNNConfig()
	for _, name := range []string{"densenet264", "resnet200", "inceptionv4"} {
		plan, err := cfg.CompileNetwork(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		// Footprint exceeds 650 GB unscaled, per the paper's setup.
		if gb := cfg.unscaleGB(plan.HeapSize); gb < 600 {
			t.Errorf("%s footprint = %.0f GB unscaled, want > 650", name, gb)
		}
	}
	if _, err := cfg.CompileNetwork("vgg16"); err == nil {
		t.Error("unknown network accepted")
	}
}

// TestFig5Shape: the DenseNet 2LM iteration must show the paper's
// Figure 5 signatures: dirty misses dominate clean misses, and the
// overall hit rate is well below 1.
func TestFig5Shape(t *testing.T) {
	res, err := Fig5(testCNNConfig())
	if err != nil {
		t.Fatal(err)
	}
	ctr := res.Exec.Counters
	if ctr.TagMissDirty < 5*ctr.TagMissClean {
		t.Errorf("dirty misses (%d) should dwarf clean misses (%d) — paper Fig 5b observation (1)",
			ctr.TagMissDirty, ctr.TagMissClean)
	}
	if hr := ctr.HitRate(); hr > 0.95 || hr < 0.3 {
		t.Errorf("hit rate %.3f outside the mixed-phase regime", hr)
	}
	if res.Trace.Len() == 0 || res.Liveness == nil || len(res.Liveness.Rows) == 0 {
		t.Error("missing trace or liveness artifacts")
	}
	// NVRAM write traffic must be substantial (dirty write-backs of
	// dead data) — comparable to NVRAM reads.
	if ctr.NVRAMWrite < ctr.NVRAMRead/2 {
		t.Errorf("NVRAM writes (%d) unexpectedly small vs reads (%d)", ctr.NVRAMWrite, ctr.NVRAMRead)
	}
}

// TestFig6ConcatAndBatchNormAreBottlenecks: within dense-block kernels,
// the memory-bound Concat/BatchNorm take longer per byte than convs.
func TestFig6ConcatAndBatchNormAreBottlenecks(t *testing.T) {
	table, err := Fig6(testCNNConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) == 0 {
		t.Fatal("empty Figure 6 table")
	}
	var concatDur, convDur float64
	for _, row := range table.Rows {
		dur, _ := strconv.ParseFloat(row[len(row)-1], 64)
		switch {
		case row[1] == "Concat":
			if dur > concatDur {
				concatDur = dur
			}
		case strings.HasPrefix(row[1], "Conv1x1"):
			if dur > convDur {
				convDur = dur
			}
		}
	}
	if concatDur == 0 {
		t.Fatal("no Concat kernel in the snapshot")
	}
	if concatDur <= convDur {
		t.Errorf("Concat (%.1f ms) should outlast Conv1x1 (%.1f ms)", concatDur, convDur)
	}
}

// TestFig10PhaseSeparation: AutoTM writes NVRAM only in the forward
// pass and reads it only in the backward pass.
func TestFig10PhaseSeparation(t *testing.T) {
	res, err := Fig10(testCNNConfig())
	if err != nil {
		t.Fatal(err)
	}
	rows := res.PhaseTable.Rows
	if len(rows) != 2 {
		t.Fatalf("phase table rows = %d", len(rows))
	}
	fwdR, _ := strconv.ParseFloat(rows[0][1], 64)
	fwdW, _ := strconv.ParseFloat(rows[0][2], 64)
	bwdR, _ := strconv.ParseFloat(rows[1][1], 64)
	bwdW, _ := strconv.ParseFloat(rows[1][2], 64)
	if fwdW == 0 || bwdR == 0 {
		t.Errorf("missing stash/restore traffic: fwdW=%.1f bwdR=%.1f", fwdW, bwdR)
	}
	if bwdW > fwdW*0.25 {
		t.Errorf("backward writes %.1f GB not concentrated forward (%.1f GB)", bwdW, fwdW)
	}
	if fwdR > bwdR*0.5 {
		t.Errorf("forward reads %.1f GB not concentrated backward (%.1f GB)", fwdR, bwdR)
	}
}

// TestTable2Shape: the paper's Table II relationships —
// AutoTM wins on every network, by more on DenseNet than Inception,
// with 40-70% of the NVRAM traffic and comparable DRAM traffic.
func TestTable2Shape(t *testing.T) {
	_, rows, err := Table2(testCNNConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(rows))
	}
	byName := map[string]Table2Row{}
	for _, r := range rows {
		byName[r.Network] = r
		if r.Speedup <= 1.3 {
			t.Errorf("%s: AutoTM speedup %.2f <= 1.3", r.Network, r.Speedup)
		}
		if r.Speedup > 5 {
			t.Errorf("%s: AutoTM speedup %.2f implausibly large", r.Network, r.Speedup)
		}
		if r.NVRatio < 0.3 || r.NVRatio > 0.8 {
			t.Errorf("%s: NVRAM traffic ratio %.2f outside [0.3, 0.8] (paper: 50-60%%)", r.Network, r.NVRatio)
		}
		dramRatio := (r.AutoTM.DRAMReadGB + r.AutoTM.DRAMWriteGB) /
			(r.TwoLM.DRAMReadGB + r.TwoLM.DRAMWriteGB)
		if dramRatio < 0.7 || dramRatio > 1.3 {
			t.Errorf("%s: DRAM traffic ratio %.2f should be ~1 (paper: similar)", r.Network, dramRatio)
		}
	}
	// Ordering: DenseNet benefits most, Inception least (paper: 3.1x,
	// 2.2x, 1.8x).
	if !(byName["densenet264"].Speedup > byName["resnet200"].Speedup &&
		byName["resnet200"].Speedup > byName["inceptionv4"].Speedup) {
		t.Errorf("speedup ordering broken: densenet %.2f, resnet %.2f, inception %.2f",
			byName["densenet264"].Speedup, byName["resnet200"].Speedup, byName["inceptionv4"].Speedup)
	}
}
