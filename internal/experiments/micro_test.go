package experiments

import (
	"strconv"
	"testing"
)

// testMicroConfig keeps simulated footprints small for the test suite.
func testMicroConfig() MicroConfig {
	return MicroConfig{
		Scale:         16384,
		Threads:       []int{1, 4, 8, 24},
		Granularities: []int{64, 256},
	}
}

func cell(t *testing.T, tab [][]string, row, col int) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(tab[row][col], 64)
	if err != nil {
		t.Fatalf("cell (%d,%d) = %q: %v", row, col, tab[row][col], err)
	}
	return v
}

// TestFig2aAnchors: sequential read saturates near 30 GB/s by 8
// threads; random never exceeds sequential.
func TestFig2aAnchors(t *testing.T) {
	table, err := Fig2a(testMicroConfig())
	if err != nil {
		t.Fatal(err)
	}
	rows := table.Rows
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(rows))
	}
	// Row order follows the thread sweep; column 1 is sequential.
	seq8 := cell(t, rows, 2, 1)
	seq24 := cell(t, rows, 3, 1)
	if seq8 < 28 || seq8 > 32 {
		t.Errorf("sequential read @8 threads = %.1f GB/s, want ~30", seq8)
	}
	if seq24 != seq8 {
		t.Errorf("sequential read should be saturated: %.1f vs %.1f", seq24, seq8)
	}
	for r := range rows {
		seq := cell(t, rows, r, 1)
		for c := 2; c < 4; c++ {
			if rnd := cell(t, rows, r, c); rnd > seq+0.01 {
				t.Errorf("row %d col %d: random %.1f exceeds sequential %.1f", r, c, rnd, seq)
			}
		}
	}
}

// TestFig2bAnchors: write bandwidth peaks near 11 GB/s at 4 threads;
// random 64 B is several times lower (media write amplification).
func TestFig2bAnchors(t *testing.T) {
	table, err := Fig2b(testMicroConfig())
	if err != nil {
		t.Fatal(err)
	}
	rows := table.Rows
	seq4 := cell(t, rows, 1, 1)
	if seq4 < 9 || seq4 > 12 {
		t.Errorf("sequential write @4 threads = %.1f GB/s, want ~10.6", seq4)
	}
	seq24 := cell(t, rows, 3, 1)
	if seq24 >= seq4 {
		t.Errorf("write bandwidth should decline past 4 threads: %.2f !< %.2f", seq24, seq4)
	}
	r64 := cell(t, rows, 1, 2)
	r256 := cell(t, rows, 1, 3)
	if ratio := r256 / r64; ratio < 2.5 {
		t.Errorf("256B/64B random write ratio = %.2f, want >2.5", ratio)
	}
}

// TestTable1MatchesPaper: the measured table must reproduce the
// paper's Table I integers exactly.
func TestTable1MatchesPaper(t *testing.T) {
	table, err := Table1(testMicroConfig())
	if err != nil {
		t.Fatal(err)
	}
	want := map[string][5]float64{
		"LLC read hit":           {1, 0, 0, 0, 1},
		"LLC read miss (clean)":  {1, 1, 1, 0, 3},
		"LLC read miss (dirty)":  {1, 1, 1, 1, 4},
		"LLC write hit":          {1, 1, 0, 0, 2},
		"LLC write miss (clean)": {1, 2, 1, 0, 4},
		"LLC write miss (dirty)": {1, 2, 1, 1, 5},
		"LLC write (DDO)":        {0, 1, 0, 0, 1},
	}
	if len(table.Rows) != len(want) {
		t.Fatalf("rows = %d, want %d", len(table.Rows), len(want))
	}
	for r, row := range table.Rows {
		exp, ok := want[row[0]]
		if !ok {
			t.Errorf("unexpected scenario %q", row[0])
			continue
		}
		for i := 0; i < 5; i++ {
			got := cell(t, table.Rows, r, i+1)
			if diff := got - exp[i]; diff > 0.01 || diff < -0.01 {
				t.Errorf("%s col %d = %.2f, want %.0f", row[0], i+1, got, exp[i])
			}
		}
	}
}

// TestFig4aAnchors: 100%% clean misses, 3x amplification, sequential
// effective ~23 GB/s (60-80%% of the 30 GB/s 1LM read peak).
func TestFig4aAnchors(t *testing.T) {
	_, rows, err := Fig4a(testMicroConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.HitRate != 0 {
			t.Errorf("%s: hit rate %.3f, want 0", r.Mode, r.HitRate)
		}
		if r.Amplif < 2.99 || r.Amplif > 3.01 {
			t.Errorf("%s: amplification %.2f, want 3", r.Mode, r.Amplif)
		}
		if r.NVRAMWrite != 0 {
			t.Errorf("%s: clean misses wrote NVRAM at %.2f GB/s", r.Mode, r.NVRAMWrite)
		}
	}
	seq := rows[0]
	if seq.Effective < 21 || seq.Effective > 25 {
		t.Errorf("sequential effective = %.1f GB/s, want ~23", seq.Effective)
	}
}

// TestFig4bAnchors: 5x amplification, DRAM writes at twice the demand
// rate, sequential effective ~8 GB/s (~72%% of the write peak).
func TestFig4bAnchors(t *testing.T) {
	_, rows, err := Fig4b(testMicroConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Amplif < 4.99 || r.Amplif > 5.01 {
			t.Errorf("%s: amplification %.2f, want 5", r.Mode, r.Amplif)
		}
		if ratio := r.DRAMWrite / r.Effective; ratio < 1.99 || ratio > 2.01 {
			t.Errorf("%s: DRAM-write/demand ratio %.2f, want 2 (the paper's extra insert write)", r.Mode, ratio)
		}
	}
	seq := rows[0]
	if seq.Effective < 7 || seq.Effective > 9 {
		t.Errorf("sequential effective = %.1f GB/s, want ~8", seq.Effective)
	}
}

// TestFig4cAnchors: every load is a dirty miss, every writeback a DDO,
// and sequential achieves the highest NVRAM write bandwidth of any 2LM
// benchmark (paper, Figure 4c caption).
func TestFig4cAnchors(t *testing.T) {
	_, rows, err := Fig4c(testMicroConfig())
	if err != nil {
		t.Fatal(err)
	}
	seq := rows[0]
	if seq.HitRate < 0.49 || seq.HitRate > 0.51 {
		t.Errorf("hit rate %.3f, want 0.5 (all writes DDO-hit, all reads miss)", seq.HitRate)
	}
	if seq.Amplif < 2.49 || seq.Amplif > 2.51 {
		t.Errorf("amplification %.2f, want 2.5", seq.Amplif)
	}
	_, rows4b, err := Fig4b(testMicroConfig())
	if err != nil {
		t.Fatal(err)
	}
	if seq.NVRAMWrite <= rows4b[0].NVRAMWrite {
		t.Errorf("Fig4c sequential NVRAM write %.2f should exceed Fig4b's %.2f", seq.NVRAMWrite, rows4b[0].NVRAMWrite)
	}
}

// Test2LMCeilingsBelow1LM: the headline claim — best-case 2LM read and
// write bandwidths are well below the 1LM device peaks.
func Test2LMCeilingsBelow1LM(t *testing.T) {
	cfg := testMicroConfig()
	_, rowsA, err := Fig4a(cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, rowsB, err := Fig4b(cfg)
	if err != nil {
		t.Fatal(err)
	}
	best2LMRead, best2LMWrite := 0.0, 0.0
	for _, r := range rowsA {
		if r.Effective > best2LMRead {
			best2LMRead = r.Effective
		}
	}
	for _, r := range rowsB {
		if r.Effective > best2LMWrite {
			best2LMWrite = r.Effective
		}
	}
	// Paper: 60-77% of 30 GB/s read, ~72% of 11 GB/s write.
	if frac := best2LMRead / 30.6; frac < 0.6 || frac > 0.85 {
		t.Errorf("2LM/1LM read fraction = %.2f, want ~0.75", frac)
	}
	if frac := best2LMWrite / 10.6; frac < 0.6 || frac > 0.85 {
		t.Errorf("2LM/1LM write fraction = %.2f, want ~0.72", frac)
	}
}
