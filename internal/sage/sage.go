// Package sage reproduces the Sage-style semi-asymmetric placement
// (Dhulipala et al., VLDB'20) the paper offers as the graph-side
// software mitigation (Section VII-A-2): run the system in app-direct
// (1LM) mode, keep the large graph structure *read-only in NVRAM*, and
// keep all mutable per-node state in a compact DRAM-resident auxiliary
// structure. Mutation then never generates NVRAM write traffic, which
// sidesteps both NVRAM's low write bandwidth and the 2LM cache's write
// amplification.
package sage

import (
	"fmt"

	"twolm/internal/analytics"
	"twolm/internal/core"
	"twolm/internal/graph"
)

// Session holds a graph placed semi-asymmetrically on a 1LM system.
type Session struct {
	Sys    *core.System
	G      *graph.Graph
	Layout graph.Layout
}

// New places g on sys: CSR arrays pinned in NVRAM, leaving DRAM for
// the mutable auxiliaries. sys must be in app-direct mode.
func New(sys *core.System, g *graph.Graph) (*Session, error) {
	if sys.Mode() != core.Mode1LM {
		return nil, fmt.Errorf("sage: requires a 1LM (app-direct) system, got %v", sys.Mode())
	}
	layout, err := g.Place(sys.AddressSpace().AllocNVRAM)
	if err != nil {
		return nil, err
	}
	return &Session{Sys: sys, G: g, Layout: layout}, nil
}

// config builds the kernel configuration: properties allocate from
// DRAM only — Sage's defining invariant.
func (s *Session) config(base analytics.Config) analytics.Config {
	base.Sys = s.Sys
	base.G = s.G
	base.Layout = s.Layout
	base.AllocProp = s.Sys.AddressSpace().AllocDRAM
	return base
}

// BFS runs breadth-first search with DRAM-resident distances.
func (s *Session) BFS(base analytics.Config, src uint32) (analytics.Result, error) {
	return analytics.BFS(s.config(base), src)
}

// CC runs connected components with DRAM-resident labels.
func (s *Session) CC(base analytics.Config) (analytics.Result, error) {
	return analytics.CC(s.config(base))
}

// KCore runs k-core decomposition with DRAM-resident degree counters.
func (s *Session) KCore(base analytics.Config) (analytics.Result, error) {
	return analytics.KCore(s.config(base))
}

// PageRank runs pagerank-push with DRAM-resident ranks and residuals.
func (s *Session) PageRank(base analytics.Config) (analytics.Result, error) {
	return analytics.PageRank(s.config(base))
}
