package sage

import (
	"testing"

	"twolm/internal/analytics"
	"twolm/internal/core"
	"twolm/internal/graph"
	"twolm/internal/mem"
	"twolm/internal/platform"
)

func newSystem(t *testing.T, mode core.Mode) *core.System {
	t.Helper()
	sys, err := core.New(core.Config{
		Platform: platform.Config{
			Sockets: 1, ChannelsPerSocket: 6,
			DRAMPerChannel:  mem.MiB,
			NVRAMPerChannel: 64 * mem.MiB,
			Scale:           1, Threads: 24,
		},
		Mode:     mode,
		LLCBytes: 32 * mem.KiB,
	})
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestRequires1LM(t *testing.T) {
	g, _ := graph.Kronecker(8, 4, 1)
	if _, err := New(newSystem(t, core.Mode2LM), g); err == nil {
		t.Error("2LM system accepted")
	}
}

// TestNoNVRAMWrites is Sage's defining property: mutation only touches
// DRAM, so kernels generate zero NVRAM write traffic.
func TestNoNVRAMWrites(t *testing.T) {
	g, err := graph.Kronecker(10, 8, 9)
	if err != nil {
		t.Fatal(err)
	}
	sys := newSystem(t, core.Mode1LM)
	s, err := New(sys, g)
	if err != nil {
		t.Fatal(err)
	}
	base := analytics.Config{Threads: 24, PRRounds: 3}
	res, err := s.PageRank(base)
	if err != nil {
		t.Fatal(err)
	}
	if res.Delta.NVRAMWrite != 0 {
		t.Errorf("Sage pagerank wrote NVRAM %d times", res.Delta.NVRAMWrite)
	}
	if res.Delta.NVRAMRead == 0 {
		t.Error("graph structure reads should hit NVRAM")
	}
	if res.Delta.DRAMWrite == 0 {
		t.Error("mutations should hit DRAM")
	}
}

// TestSameAnswersAsFlatPlacement: placement must not change results.
func TestSameAnswersAsFlatPlacement(t *testing.T) {
	g, err := graph.Kronecker(9, 6, 21)
	if err != nil {
		t.Fatal(err)
	}
	src := g.MaxOutDegreeNode()

	sageSys := newSystem(t, core.Mode1LM)
	s, err := New(sageSys, g)
	if err != nil {
		t.Fatal(err)
	}
	sageRes, err := s.BFS(analytics.Config{Threads: 24}, src)
	if err != nil {
		t.Fatal(err)
	}

	flatSys := newSystem(t, core.Mode2LM)
	layout, err := g.Place(flatSys.AddressSpace().Alloc)
	if err != nil {
		t.Fatal(err)
	}
	flatRes, err := analytics.BFS(analytics.Config{
		Sys: flatSys, G: g, Layout: layout,
		AllocProp: flatSys.AddressSpace().Alloc, Threads: 24,
	}, src)
	if err != nil {
		t.Fatal(err)
	}

	a := sageRes.Output.([]uint32)
	b := flatRes.Output.([]uint32)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("dist[%d]: sage %d vs flat %d", i, a[i], b[i])
		}
	}
}

// TestAllKernelsRun exercises every wrapper.
func TestAllKernelsRun(t *testing.T) {
	g, err := graph.Kronecker(8, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	sys := newSystem(t, core.Mode1LM)
	s, err := New(sys, g)
	if err != nil {
		t.Fatal(err)
	}
	base := analytics.Config{Threads: 24, PRRounds: 2, KCoreK: 4}
	if _, err := s.BFS(base, 0); err != nil {
		t.Errorf("BFS: %v", err)
	}
	if _, err := s.CC(base); err != nil {
		t.Errorf("CC: %v", err)
	}
	if _, err := s.KCore(base); err != nil {
		t.Errorf("KCore: %v", err)
	}
	if _, err := s.PageRank(base); err != nil {
		t.Errorf("PageRank: %v", err)
	}
}
