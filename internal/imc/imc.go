// Package imc models the integrated memory controller of a Cascade Lake
// socket operating in 2LM ("memory mode"): DRAM as a transparent,
// hardware-managed, direct-mapped cache in front of NVRAM.
//
// The controller implements exactly the decision flow the paper reverse
// engineers (Figure 3) and generates exactly the per-request DRAM and
// NVRAM transactions of Table I:
//
//	                LLC Read            LLC Write
//	             Hit  MissC MissD   Hit  MissC MissD  DDO
//	DRAM Read     1     1     1      1     1     1     -
//	DRAM Write    -     1     1      1     2     2     1
//	NVRAM Read    -     1     1      -     1     1     -
//	NVRAM Write   -     -     1      -     -     1     -
//	Amplification 1     3     4      2     4     5     1
//
// Key behaviors:
//
//   - Tags live in the DRAM ECC bits, so every DRAM data read returns
//     the tag for free, but a write requires a preceding read purely for
//     the tag check.
//   - The controller always inserts on a miss, even a write miss whose
//     incoming line fully overwrites the fetched data (the paper's
//     "best guess" for the observed second DRAM write; Section IV-B).
//   - Dirty victims are written back to NVRAM by the miss handler.
//   - Dirty Data Optimization (DDO): an LLC writeback of a line that the
//     on-chip hierarchy acquired from this controller (and whose set has
//     not been re-allocated since) skips the tag check and goes straight
//     to DRAM. The paper observes the effect but not the mechanism
//     (Section IV-C); tracking LLC ownership reproduces the observed
//     traffic: read-modify-write with standard stores gets DDO, while
//     nontemporal store streams do not.
package imc

import (
	"fmt"

	"twolm/internal/cache"
	"twolm/internal/dram"
	"twolm/internal/mem"
	"twolm/internal/nvram"
	"twolm/internal/telemetry"
)

// Counters are the uncore performance-counter events the controller
// exposes, in 64 B line units, matching the taxonomy of the paper's
// Section III-B (CAS counts, PMM read/write requests, 2LM tag events).
type Counters struct {
	DRAMRead   uint64 // DRAM CAS reads
	DRAMWrite  uint64 // DRAM CAS writes
	NVRAMRead  uint64 // NVRAM read requests
	NVRAMWrite uint64 // NVRAM write requests

	TagHit       uint64 // 2LM tag hit
	TagMissClean uint64 // 2LM tag miss, clean victim
	TagMissDirty uint64 // 2LM tag miss, dirty victim

	DDO uint64 // writes forwarded via the Dirty Data Optimization

	LLCRead  uint64 // demand requests from the LLC (loads + RFOs)
	LLCWrite uint64 // writebacks / nontemporal stores from the LLC
}

// Add returns c with other added field-wise.
func (c Counters) Add(other Counters) Counters {
	c.DRAMRead += other.DRAMRead
	c.DRAMWrite += other.DRAMWrite
	c.NVRAMRead += other.NVRAMRead
	c.NVRAMWrite += other.NVRAMWrite
	c.TagHit += other.TagHit
	c.TagMissClean += other.TagMissClean
	c.TagMissDirty += other.TagMissDirty
	c.DDO += other.DDO
	c.LLCRead += other.LLCRead
	c.LLCWrite += other.LLCWrite
	return c
}

// sub64 subtracts b from a, clamping at zero instead of wrapping.
func sub64(a, b uint64) uint64 {
	if b > a {
		return 0
	}
	return a - b
}

// Sub returns c minus other field-wise, clamping each field at zero;
// used for interval deltas. Counters are monotonic, so a snapshot taken
// later can never be smaller — a field that would underflow means the
// snapshots were swapped, and clamping keeps the bad delta visible as
// zero instead of a wrapped near-2^64 count that corrupts every derived
// rate and amplification.
func (c Counters) Sub(other Counters) Counters {
	c.DRAMRead = sub64(c.DRAMRead, other.DRAMRead)
	c.DRAMWrite = sub64(c.DRAMWrite, other.DRAMWrite)
	c.NVRAMRead = sub64(c.NVRAMRead, other.NVRAMRead)
	c.NVRAMWrite = sub64(c.NVRAMWrite, other.NVRAMWrite)
	c.TagHit = sub64(c.TagHit, other.TagHit)
	c.TagMissClean = sub64(c.TagMissClean, other.TagMissClean)
	c.TagMissDirty = sub64(c.TagMissDirty, other.TagMissDirty)
	c.DDO = sub64(c.DDO, other.DDO)
	c.LLCRead = sub64(c.LLCRead, other.LLCRead)
	c.LLCWrite = sub64(c.LLCWrite, other.LLCWrite)
	return c
}

// Demand returns the number of demand (LLC-originated) requests.
func (c Counters) Demand() uint64 { return c.LLCRead + c.LLCWrite }

// MemoryAccesses returns all DRAM + NVRAM transactions generated.
func (c Counters) MemoryAccesses() uint64 {
	return c.DRAMRead + c.DRAMWrite + c.NVRAMRead + c.NVRAMWrite
}

// Amplification returns memory accesses per demand request — the
// paper's "access amplification" metric (Lowe-Power 2017).
func (c Counters) Amplification() float64 {
	d := c.Demand()
	if d == 0 {
		return 0
	}
	return float64(c.MemoryAccesses()) / float64(d)
}

// TagAccesses returns the total tag events (hits + misses).
func (c Counters) TagAccesses() uint64 {
	return c.TagHit + c.TagMissClean + c.TagMissDirty
}

// HitRate returns TagHit / tag accesses, or 0 with no accesses.
func (c Counters) HitRate() float64 {
	t := c.TagAccesses()
	if t == 0 {
		return 0
	}
	return float64(c.TagHit) / float64(t)
}

// String renders the counters compactly for logs and reports.
func (c Counters) String() string {
	return fmt.Sprintf(
		"dramR=%d dramW=%d nvR=%d nvW=%d hit=%d missC=%d missD=%d ddo=%d llcR=%d llcW=%d",
		c.DRAMRead, c.DRAMWrite, c.NVRAMRead, c.NVRAMWrite,
		c.TagHit, c.TagMissClean, c.TagMissDirty, c.DDO, c.LLCRead, c.LLCWrite)
}

// Policy configures the controller's allocation behavior. The real
// hardware always inserts on a miss for both reads and writes; the
// alternatives exist for the ablation experiments exploring the
// future-hardware fixes the paper's discussion suggests.
type Policy struct {
	// Ways is the DRAM cache associativity (hardware: 1).
	Ways int
	// WriteAllocate inserts the line on a write miss (hardware: true).
	// When false, write misses go straight to NVRAM after the tag
	// check, leaving the cache untouched ("write-around").
	WriteAllocate bool
	// ReadAllocate inserts the line on a read miss (hardware: true).
	// When false, read misses are forwarded from NVRAM uncached.
	ReadAllocate bool
	// DisableDDO turns the Dirty Data Optimization off.
	DisableDDO bool
}

// HardwarePolicy returns the Cascade Lake behavior the paper measures.
func HardwarePolicy() Policy {
	return Policy{Ways: 1, WriteAllocate: true, ReadAllocate: true}
}

// Controller is a 2LM memory controller: the DRAM cache metadata plus
// the backing DRAM and NVRAM modules and the event counters.
type Controller struct {
	Cache *cache.Assoc
	DRAM  *dram.Module
	NVRAM *nvram.Module

	// DisableDDO turns the Dirty Data Optimization off, for ablation
	// studies of the mechanism the paper could not pin down.
	DisableDDO bool

	policy   Policy
	counters Counters

	// Geometry, copied out of the tag store and DRAM module so the hot
	// request paths touch one cache line of controller state.
	sets uint64
	nch  int

	// Telemetry: an optional sink sampled at demand-line boundaries.
	// The hooks live only at the batched range entry points, behind a
	// nil check, so the disabled cost is one branch per range. The
	// boundary arithmetic lives in telemetry.NextBoundary — this
	// package's hot paths stay division-free (hotdiv).
	sink        telemetry.Sink
	sampleEvery uint64
	nextSample  uint64
	lastSample  uint64 // demand at the last recorded sample
	haveSample  bool

	// Batched dispatch scratch (scatter.go), reused across batches so
	// the steady-state random path allocates nothing.
	scat scatterState

	// scatShuffle, when non-nil, routes each batch's deferred NVRAM
	// work through per-(DIMM, direction) queues and permutes the order
	// the queues are applied in — a test-only hook for the commutation
	// property test. It receives the queue apply order to permute in
	// place.
	scatShuffle func(order []uint32)

	// Per-stream locator memos. LLC demand reads and LLC writebacks
	// each tend to sweep consecutive lines (the writeback stream is the
	// eviction shadow of the demand stream, trailing it by the on-chip
	// cache size), so each stream remembers its previous line's
	// set/tag/channel and advances them by one instead of re-dividing.
	// The memo is a pure function of the address — nothing in cache or
	// counter state can invalidate it.
	readLoc  streamLocator
	writeLoc streamLocator
}

// streamLocator memoizes the (set, tag, channel) decomposition of the
// previous line of one request stream.
type streamLocator struct {
	line  uint64
	set   uint64
	tag   uint32
	chIdx int
	valid bool
}

// locate decomposes addr into its tag-store set/tag and DRAM channel
// index, taking the incremental path when addr is the line right after
// the stream's previous one.
func (c *Controller) locate(m *streamLocator, addr uint64) (set uint64, tag uint32, chIdx int) {
	line := addr >> mem.LineShift
	if m.valid && line == m.line+1 {
		set, tag, chIdx = m.set+1, m.tag, m.chIdx+1
		if set == c.sets {
			set, tag = 0, tag+1
		}
		if chIdx == c.nch {
			chIdx = 0
		}
	} else {
		set, tag = c.Cache.Index(addr)
		chIdx = c.DRAM.ChannelIndex(addr)
	}
	m.line, m.set, m.tag, m.chIdx, m.valid = line, set, tag, chIdx, true
	return set, tag, chIdx
}

// config collects the optional construction parameters of New.
type config struct {
	policy      Policy
	sink        telemetry.Sink
	sampleEvery uint64
}

// Option configures optional behavior of New.
type Option func(*config)

// WithPolicy overrides the hardware allocation policy, for the
// ablation experiments.
func WithPolicy(p Policy) Option {
	return func(c *config) { c.policy = p }
}

// WithTelemetry attaches a telemetry sink sampled every `every` demand
// lines at range boundaries (every == 0 samples at each range). A nil
// sink leaves telemetry disabled.
func WithTelemetry(sink telemetry.Sink, every uint64) Option {
	return func(c *config) {
		c.sink = sink
		c.sampleEvery = every
	}
}

// New assembles a controller over the given DRAM and NVRAM modules,
// with the Cascade Lake hardware policy unless overridden by options.
// The DRAM module's capacity fixes the cache size; NVRAM backs the
// full address space.
//
// A policy with Ways < 1 is rejected rather than silently clamped to
// direct mapped: an ablation config with a typo'd associativity must
// fail loudly, not run the wrong experiment. Start from HardwarePolicy
// and override fields to get the hardware default of 1.
func New(dramMod *dram.Module, nvramMod *nvram.Module, opts ...Option) (*Controller, error) {
	cfg := config{policy: HardwarePolicy()}
	for _, opt := range opts {
		opt(&cfg)
	}
	if cfg.policy.Ways < 1 {
		return nil, fmt.Errorf("imc: policy ways %d must be >= 1 (start from HardwarePolicy to get the hardware default)", cfg.policy.Ways)
	}
	dc, err := cache.NewAssoc(dramMod.Capacity(), cfg.policy.Ways)
	if err != nil {
		return nil, fmt.Errorf("imc: %w", err)
	}
	c := &Controller{
		Cache:      dc,
		DRAM:       dramMod,
		NVRAM:      nvramMod,
		DisableDDO: cfg.policy.DisableDDO,
		policy:     cfg.policy,
		sets:       dc.Sets(),
		nch:        dramMod.Channels(),
	}
	c.initScatter()
	c.SetTelemetry(cfg.sink, cfg.sampleEvery)
	return c, nil
}

// SetTelemetry attaches (or, with a nil sink, detaches) a telemetry
// sink sampled every `every` demand lines. The next boundary is
// computed from the current counters, so attaching mid-run starts a
// fresh sampling phase.
func (c *Controller) SetTelemetry(sink telemetry.Sink, every uint64) {
	c.sink = sink
	c.sampleEvery = every
	c.haveSample = false
	c.lastSample = 0
	if sink != nil {
		c.nextSample = telemetry.NextBoundary(c.counters.Demand(), every)
	}
}

// Snapshot implements telemetry.Source: the controller counters plus
// per-channel DRAM CAS counts. NVRAM media counters are deliberately
// absent — media merging depends on how the address stream is
// partitioned over combining buffers, which serial and sharded
// executions do differently; use nvram.Module.Snapshot for media.
func (c *Controller) Snapshot() telemetry.Sample {
	ctr := c.counters
	s := telemetry.Sample{
		Demand:       ctr.Demand(),
		LLCRead:      ctr.LLCRead,
		LLCWrite:     ctr.LLCWrite,
		DRAMRead:     ctr.DRAMRead,
		DRAMWrite:    ctr.DRAMWrite,
		NVRAMRead:    ctr.NVRAMRead,
		NVRAMWrite:   ctr.NVRAMWrite,
		TagHit:       ctr.TagHit,
		TagMissClean: ctr.TagMissClean,
		TagMissDirty: ctr.TagMissDirty,
		DDO:          ctr.DDO,
	}
	chs := c.DRAM.ChannelCounters()
	s.ChannelReads = make([]uint64, len(chs))
	s.ChannelWrites = make([]uint64, len(chs))
	for i, ch := range chs {
		s.ChannelReads[i] = ch.CASReads
		s.ChannelWrites[i] = ch.CASWrites
	}
	return s
}

// maybeSample records a sample if the demand clock crossed the next
// sampling boundary. Callers have already checked sink != nil.
func (c *Controller) maybeSample() {
	d := c.counters.Demand()
	if d < c.nextSample {
		return
	}
	c.recordSample(d)
}

//alloc:cold telemetry samples fire once per sampling interval, not per line; the snapshot copies amortize to ~0 allocs/op
func (c *Controller) recordSample(d uint64) {
	c.sink.Record(c.Snapshot())
	c.lastSample = d
	c.haveSample = true
	c.nextSample = telemetry.NextBoundary(d, c.sampleEvery)
}

// FlushTelemetry records a final sample for the partial tail interval
// if demand advanced past the last recorded sample (or none was
// recorded yet). No-op without a sink.
func (c *Controller) FlushTelemetry() {
	if c.sink == nil {
		return
	}
	d := c.counters.Demand()
	if c.haveSample && d == c.lastSample {
		return
	}
	c.recordSample(d)
}

// Policy returns the controller's configured policy.
func (c *Controller) Policy() Policy { return c.policy }

// Counters returns a snapshot of the event counters.
//
//hot:entry observers snapshot pooled controllers between and during jobs
func (c *Controller) Counters() Counters { return c.counters }

// ResetCounters zeroes the event counters without touching cache state,
// mirroring how the paper primes the cache and then measures: tags
// installed before the reset keep producing hits after it.
//
// Despite its name, it also resets the backing DRAM and NVRAM modules:
// their CAS/media counters (and the NVRAM write-combining state) belong
// to the same measurement interval, and leaving them running would let
// device counters diverge from the controller counters they must match.
//
// Use Reset instead to also invalidate the cache contents — i.e. to
// make a recycled controller indistinguishable from a freshly
// constructed one.
func (c *Controller) ResetCounters() {
	c.counters = Counters{}
	c.DRAM.Reset()
	c.NVRAM.Reset()
	if c.sink != nil {
		// The demand clock rewound to zero; restart the sampling phase.
		c.haveSample = false
		c.lastSample = 0
		c.nextSample = telemetry.NextBoundary(0, c.sampleEvery)
	}
}

// Reset returns the controller to its as-constructed state: counters
// AND cache contents, so a recycled controller is observationally
// identical to one built fresh by New over zeroed modules — the
// property the sweep engine's per-geometry controller reuse depends
// on, proven by the recycled-vs-fresh differential test.
//
// Contrast with ResetCounters, which deliberately preserves cache
// contents (the paper's prime-then-measure protocol). Reset subsumes
// it: counters, device modules, telemetry phase, tag store, stream
// locators, and scatter scratch all rewind. Nothing is reallocated —
// geometry (capacities, channels, DIMMs, ways) and policy are fixed at
// construction, so every buffer is zeroed in place and a worker can
// recycle one controller per geometry class at 0 allocs per job.
//
// Like ResetCounters, Reset rewinds the demand clock, so a snapshot
// delta must not straddle it (the resetcheck analyzer enforces this).
//
//hot:entry sweep workers recycle pooled controllers between jobs
//alloc:free controller recycling is part of the 0-allocs/job sweep contract
func (c *Controller) Reset() {
	c.Cache.Reset()
	// The stream locators memoize a pure function of the address, so
	// stale memos would still be correct — but a fresh controller
	// starts with invalid memos, and Reset promises indistinguishable
	// state, not merely indistinguishable counters.
	c.readLoc = streamLocator{}
	c.writeLoc = streamLocator{}
	// Deferred-queue cursors are already zero after any completed
	// batch (applyQueues drains them); clear them anyway so a
	// controller abandoned mid-batch cannot leak requests into the
	// next job if a caller recycles it regardless.
	clear(c.scat.qcur)
	c.ResetCounters()
}

// countMiss records the miss classification into ctr and writes back a
// dirty victim at h.
func (c *Controller) countMiss(ctr *Counters, h uint64, res cache.LookupResult) {
	if res == cache.MissDirty {
		ctr.TagMissDirty++
		if victim, ok := c.Cache.VictimAddr(h); ok {
			ctr.NVRAMWrite++
			c.NVRAM.Write(victim)
		}
	} else {
		ctr.TagMissClean++
	}
}

// missHandler implements the shared miss path of Figure 3: write back
// the victim if dirty, fetch the requested line from NVRAM, and insert
// it into the DRAM cache. ctr is the counter set to record into (the
// live counters, or a batch-local delta) and ch is addr's DRAM channel,
// resolved once by the caller.
func (c *Controller) missHandler(ctr *Counters, ch *dram.Channel, addr, h uint64, tag uint32, res cache.LookupResult) {
	c.countMiss(ctr, h, res)
	// Fetch the requested line from NVRAM...
	ctr.NVRAMRead++
	c.NVRAM.Read(addr)
	// ...and insert it into the cache (always insert on miss).
	ctr.DRAMWrite++
	ch.CASWrites++
	c.Cache.InstallTag(h, tag)
}

// LLCRead services a demand request from the LLC: a load miss or an RFO
// for a store. The data (and its ECC tag) is read from DRAM; on a tag
// miss the miss handler fills from NVRAM.
//
//hot:entry sweep workers and replay goroutines drive pooled controllers concurrently
//alloc:free per-line demand path, 0 allocs/op by benchmark contract
func (c *Controller) LLCRead(addr uint64) cache.LookupResult {
	c.counters.LLCRead++
	set, tag, chIdx := c.locate(&c.readLoc, addr)
	h, res := c.Cache.ProbeAt(set, tag)
	ch := c.DRAM.ChannelAt(chIdx)

	// DRAM read: fetch tag and data together.
	c.counters.DRAMRead++
	ch.CASReads++

	switch {
	case res == cache.Hit:
		c.counters.TagHit++
	case !c.policy.ReadAllocate:
		// Ablation: forward from NVRAM without caching. No victim is
		// disturbed, so the miss counts as clean.
		c.counters.TagMissClean++
		c.counters.NVRAMRead++
		c.NVRAM.Read(addr)
		return res
	default:
		c.missHandler(&c.counters, ch, addr, h, tag, res)
	}
	// The hierarchy now holds this line; its eventual writeback can use
	// the Dirty Data Optimization.
	c.Cache.SetLLCOwned(h, true)
	return res
}

// LLCWrite services a writeback from the LLC — either the eviction of a
// dirty line or a nontemporal store. Returns the tag-check result, or
// Hit with ddo=true when the Dirty Data Optimization elided the check.
//
//hot:entry sweep workers and replay goroutines drive pooled controllers concurrently
//alloc:free per-line writeback path, 0 allocs/op by benchmark contract
func (c *Controller) LLCWrite(addr uint64) (res cache.LookupResult, ddo bool) {
	c.counters.LLCWrite++
	set, tag, chIdx := c.locate(&c.writeLoc, addr)
	h, res := c.Cache.ProbeAt(set, tag)
	ch := c.DRAM.ChannelAt(chIdx)

	if !c.DisableDDO && res == cache.Hit && c.Cache.LLCOwned(h) {
		// DDO: the controller knows the LLC owns this exact line, so
		// the tag check is unnecessary — forward the write to DRAM.
		c.counters.DDO++
		c.counters.TagHit++
		c.counters.DRAMWrite++
		ch.CASWrites++
		c.Cache.MarkDirty(h)
		c.Cache.SetLLCOwned(h, false)
		return res, true
	}

	// DRAM read purely for the tag check.
	c.counters.DRAMRead++
	ch.CASReads++

	switch {
	case res == cache.Hit:
		c.counters.TagHit++
	case !c.policy.WriteAllocate:
		// Ablation: write-around. The line goes straight to NVRAM and
		// the cache (including any victim) is left alone.
		c.counters.TagMissClean++
		c.counters.NVRAMWrite++
		c.NVRAM.Write(addr)
		return res, false
	default:
		// Insert-on-miss, even for a full-line write: the miss handler
		// fetches the line from NVRAM and installs it first.
		c.missHandler(&c.counters, ch, addr, h, tag, res)
	}

	// The actual write of the incoming line.
	c.counters.DRAMWrite++
	ch.CASWrites++
	c.Cache.MarkDirty(h)
	c.Cache.SetLLCOwned(h, false)
	return res, false
}

// LLCReadRange services n consecutive line reads starting at the line
// containing addr — the batched form of calling LLCRead on each line in
// ascending order. Counters accumulate in a local and flush once, and
// the per-line DRAM data read (which happens unconditionally, hit or
// miss) is distributed over the channels arithmetically instead of line
// by line. Tag probes and NVRAM traffic remain per line because they
// depend on cache state. Counter results — imc.Counters, per-channel
// CAS, NVRAM media counters — are byte-identical to the per-line path
// (the differential tests pin this).
//
//hot:entry batched demand path, driven on pooled controllers
//alloc:free batched read path, 0 allocs/op by benchmark contract
func (c *Controller) LLCReadRange(addr uint64, n uint64) {
	if n == 0 {
		return
	}
	// Direct-mapped stores with read-allocate take the closed-form
	// set-stride fold (seqfold.go); Ways>1 and the no-allocate ablation
	// keep the per-line walk below.
	if entries := c.Cache.DirectEntries(); entries != nil && c.policy.ReadAllocate {
		c.seqReadRange(entries, addr, n)
		if c.sink != nil {
			c.maybeSample()
		}
		return
	}
	var d Counters
	d.LLCRead = n
	d.DRAMRead = n
	c.DRAM.ReadRange(addr, n)
	// Consecutive lines map to consecutive tag-store sets and DRAM
	// channels, so the walk advances both incrementally after a single
	// division at the range start.
	sets := c.Cache.Sets()
	set, tag := c.Cache.Index(addr)
	nch := c.DRAM.Channels()
	chIdx := c.DRAM.ChannelIndex(addr)
	end := addr + n*mem.Line
	for a := addr; a < end; a += mem.Line {
		h, res := c.Cache.ProbeAt(set, tag)
		switch {
		case res == cache.Hit:
			d.TagHit++
			c.Cache.SetLLCOwned(h, true)
		case !c.policy.ReadAllocate:
			// Ablation: forward from NVRAM without caching; the
			// hierarchy never owns an uncached line.
			d.TagMissClean++
			d.NVRAMRead++
			c.NVRAM.Read(a)
		default:
			if res == cache.MissDirty {
				d.TagMissDirty++
				if victim, ok := c.Cache.VictimAddr(h); ok {
					d.NVRAMWrite++
					c.NVRAM.Write(victim)
				}
			} else {
				d.TagMissClean++
			}
			d.NVRAMRead++
			c.NVRAM.Read(a)
			d.DRAMWrite++
			c.DRAM.ChannelAt(chIdx).CASWrites++
			c.Cache.InstallTag(h, tag)
			c.Cache.SetLLCOwned(h, true)
		}
		set++
		if set == sets {
			set, tag = 0, tag+1
		}
		chIdx++
		if chIdx == nch {
			chIdx = 0
		}
	}
	c.counters = c.counters.Add(d)
	if c.sink != nil {
		c.maybeSample()
	}
}

// LLCWriteRange services n consecutive line writebacks starting at the
// line containing addr — the batched form of calling LLCWrite on each
// line in ascending order, with counters accumulated in a local and
// flushed once. DRAM traffic stays per line because it depends on the
// per-line DDO and tag-check outcomes. Counter-identical to the
// per-line path.
//
//hot:entry batched writeback path, driven on pooled controllers
//alloc:free batched write path, 0 allocs/op by benchmark contract
func (c *Controller) LLCWriteRange(addr uint64, n uint64) {
	if n == 0 {
		return
	}
	// Direct-mapped stores with write-allocate take the closed-form
	// set-stride fold (seqfold.go; DisableDDO folds too — it only picks
	// the uniform write formula). Ways>1 and write-around fall back.
	if entries := c.Cache.DirectEntries(); entries != nil && c.policy.WriteAllocate {
		c.seqWriteRange(entries, addr, n)
		if c.sink != nil {
			c.maybeSample()
		}
		return
	}
	var d Counters
	d.LLCWrite = n
	sets := c.Cache.Sets()
	set, tag := c.Cache.Index(addr)
	nch := c.DRAM.Channels()
	chIdx := c.DRAM.ChannelIndex(addr)
	end := addr + n*mem.Line
	for a := addr; a < end; a += mem.Line {
		h, res := c.Cache.ProbeAt(set, tag)
		ch := c.DRAM.ChannelAt(chIdx)

		switch {
		case !c.DisableDDO && res == cache.Hit && c.Cache.LLCOwned(h):
			d.DDO++
			d.TagHit++
			d.DRAMWrite++
			ch.CASWrites++
			c.Cache.MarkDirty(h)
			c.Cache.SetLLCOwned(h, false)
		case res == cache.Hit:
			// DRAM read purely for the tag check.
			d.DRAMRead++
			ch.CASReads++
			d.TagHit++
			d.DRAMWrite++
			ch.CASWrites++
			c.Cache.MarkDirty(h)
			c.Cache.SetLLCOwned(h, false)
		case !c.policy.WriteAllocate:
			// Ablation: write-around straight to NVRAM after the tag
			// check.
			d.DRAMRead++
			ch.CASReads++
			d.TagMissClean++
			d.NVRAMWrite++
			c.NVRAM.Write(a)
		default:
			d.DRAMRead++
			ch.CASReads++
			if res == cache.MissDirty {
				d.TagMissDirty++
				if victim, ok := c.Cache.VictimAddr(h); ok {
					d.NVRAMWrite++
					c.NVRAM.Write(victim)
				}
			} else {
				d.TagMissClean++
			}
			d.NVRAMRead++
			c.NVRAM.Read(a)
			d.DRAMWrite++
			ch.CASWrites++
			c.Cache.InstallTag(h, tag)
			// The actual write of the incoming line.
			d.DRAMWrite++
			ch.CASWrites++
			c.Cache.MarkDirty(h)
			c.Cache.SetLLCOwned(h, false)
		}

		set++
		if set == sets {
			set, tag = 0, tag+1
		}
		chIdx++
		if chIdx == nch {
			chIdx = 0
		}
	}
	c.counters = c.counters.Add(d)
	if c.sink != nil {
		c.maybeSample()
	}
}

// FlushAll writes every dirty line back to NVRAM and invalidates the
// cache, modeling an ADR-style flush or mode transition. Counter events
// are recorded for the writebacks. O(lines).
func (c *Controller) FlushAll() {
	c.Cache.ForEachDirty(func(addr uint64) {
		c.counters.NVRAMWrite++
		c.NVRAM.Write(addr)
	})
	c.Cache.Reset()
}
