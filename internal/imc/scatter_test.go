package imc

import (
	"bytes"
	"math/rand"
	"testing"

	"twolm/internal/lfsr"
	"twolm/internal/mem"
	"twolm/internal/telemetry"
)

// scatterPolicies is the acceptance matrix of the batched dispatch:
// every policy ablation crossed with direct-mapped (the branchless
// dispatchHW / dispatchAblate loops) and 4-way associativity (the
// serial fallback, which must stay byte-identical too).
func scatterPolicies() map[string]Policy {
	base := map[string]Policy{}
	hw := HardwarePolicy()
	base["hardware"] = hw
	noWA := hw
	noWA.WriteAllocate = false
	base["no-write-allocate"] = noWA
	noRA := hw
	noRA.ReadAllocate = false
	base["no-read-allocate"] = noRA
	noDDO := hw
	noDDO.DisableDDO = true
	base["ddo-off"] = noDDO

	out := map[string]Policy{}
	for name, p := range base {
		p1 := p
		p1.Ways = 1
		out[name+"-w1"] = p1
		p4 := p
		p4.Ways = 4
		out[name+"-w4"] = p4
	}
	return out
}

// newScatterController builds one controller with the differential-run
// geometry of newRangePair.
func newScatterController(t *testing.T, policy Policy) *Controller {
	t.Helper()
	c, _ := newRangePair(t, policy)
	return c
}

// scatterStream generates a deterministic LFSR-random request stream
// over span lines: every line touched once per pass, alternating reads
// and writes on the index parity, for two passes (the second pass runs
// against the dirtied state the first left behind, so hits, clean
// misses, dirty victims, and DDO writebacks all occur).
func scatterStream(t *testing.T, spanLines uint64) []Req {
	t.Helper()
	reqs := make([]Req, 0, 2*spanLines)
	for pass := 0; pass < 2; pass++ {
		err := lfsr.Sequence(spanLines, 0xBEEF+uint32(pass), func(idx uint64) {
			addr := idx * mem.Line
			if (idx+uint64(pass))&1 == 0 {
				reqs = append(reqs, ReadReq(addr))
			} else {
				reqs = append(reqs, WriteReq(addr))
			}
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	return reqs
}

// replaySerial dispatches reqs through the per-line entry points in
// slice order — the reference semantics LLCScatter must reproduce.
func replaySerial(c *Controller, reqs []Req) {
	for _, r := range reqs {
		if uint64(r)&1 == 0 {
			c.LLCRead(uint64(r))
		} else {
			c.LLCWrite(uint64(r) &^ 1)
		}
	}
}

// TestScatterMatchesPerLine is the tentpole legality proof: over the
// same mixed LFSR-random request stream — split into odd-sized batches
// that straddle the dispatch chunk size — LLCScatter produces
// byte-identical imc.Counters, per-channel CAS counts, and NVRAM
// interface and media counters to per-line dispatch in request order,
// for every policy ablation at Ways 1 and 4.
func TestScatterMatchesPerLine(t *testing.T) {
	for name, policy := range scatterPolicies() {
		t.Run(name, func(t *testing.T) {
			perLine, batched := newRangePair(t, policy)
			spanLines := uint64(2*perLine.DRAM.Capacity()) / mem.Line
			reqs := scatterStream(t, spanLines)
			// 1337 is odd and not a divisor or multiple of dispatchChunk,
			// so batches end mid-chunk and chunks straddle batch edges.
			const batch = 1337
			for off := 0; off < len(reqs); off += batch {
				end := off + batch
				if end > len(reqs) {
					end = len(reqs)
				}
				replaySerial(perLine, reqs[off:end])
				batched.LLCScatter(reqs[off:end])
			}
			assertSameTraffic(t, name, perLine, batched)
		})
	}
}

// TestScatterWrappersMatchPerLine pins the address-slice wrappers:
// LLCReadScatter and LLCWriteScatter are byte-identical to per-line
// LLCRead/LLCWrite in slice order.
func TestScatterWrappersMatchPerLine(t *testing.T) {
	for name, policy := range scatterPolicies() {
		t.Run(name, func(t *testing.T) {
			perLine, batched := newRangePair(t, policy)
			spanLines := uint64(2*perLine.DRAM.Capacity()) / mem.Line
			addrs := make([]uint64, 0, spanLines)
			err := lfsr.Sequence(spanLines, 0xACE1, func(idx uint64) {
				addrs = append(addrs, idx*mem.Line)
			})
			if err != nil {
				t.Fatal(err)
			}
			for _, a := range addrs {
				perLine.LLCRead(a)
			}
			batched.LLCReadScatter(addrs)
			for _, a := range addrs {
				perLine.LLCWrite(a)
			}
			batched.LLCWriteScatter(addrs)
			assertSameTraffic(t, name, perLine, batched)
		})
	}
}

// TestScatterChunkBoundaries sweeps batch lengths around the dispatch
// chunk size (empty, single, one off either side of one and two full
// chunks), where cursor and chunk-slicing bugs would live.
func TestScatterChunkBoundaries(t *testing.T) {
	sizes := []int{0, 1, 2, dispatchChunk - 1, dispatchChunk,
		dispatchChunk + 1, 2*dispatchChunk - 1, 2 * dispatchChunk, 2*dispatchChunk + 3}
	perLine, batched := newRangePair(t, HardwarePolicy())
	spanLines := uint64(2*perLine.DRAM.Capacity()) / mem.Line
	stream := scatterStream(t, spanLines)
	off := 0
	for _, n := range sizes {
		if off+n > len(stream) {
			t.Fatalf("stream too short: need %d have %d", off+n, len(stream))
		}
		reqs := stream[off : off+n]
		off += n
		replaySerial(perLine, reqs)
		batched.LLCScatter(reqs)
	}
	assertSameTraffic(t, "chunk-boundaries", perLine, batched)
}

// TestScatterShuffleCommutes is the commutation property of the
// deferred NVRAM work: the per-(DIMM, direction) queues a batch
// defers may be applied in ANY order without changing a single
// counter, because DIMMs share no state and within a DIMM the read
// path and the write path touch disjoint fields. The scatShuffle hook
// permutes the queue apply order with a seeded PRNG per batch; the
// run must stay byte-identical — imc.Counters, per-channel CAS, NVRAM
// interface and media counters, and the telemetry Recorder's CSV and
// JSON series — to both an unshuffled batched run and the per-line
// reference. (The serial-vs-sharded replay Recorder identity is pinned
// separately by engine.TestTelemetrySerialVsSharded.)
func TestScatterShuffleCommutes(t *testing.T) {
	for name, policy := range scatterPolicies() {
		t.Run(name, func(t *testing.T) {
			const every = 4096
			run := func(shuffleSeed int64) (*Controller, []byte, []byte) {
				c := newScatterController(t, policy)
				rec := telemetry.NewRecorder()
				c.SetTelemetry(rec, every)
				if shuffleSeed != 0 {
					rng := rand.New(rand.NewSource(shuffleSeed))
					c.scatShuffle = func(order []uint32) {
						rng.Shuffle(len(order), func(i, j int) {
							order[i], order[j] = order[j], order[i]
						})
					}
				}
				spanLines := uint64(2*c.DRAM.Capacity()) / mem.Line
				reqs := scatterStream(t, spanLines)
				const batch = 997
				for off := 0; off < len(reqs); off += batch {
					end := off + batch
					if end > len(reqs) {
						end = len(reqs)
					}
					c.LLCScatter(reqs[off:end])
				}
				c.FlushTelemetry()
				var csv, js bytes.Buffer
				if err := rec.WriteCSV(&csv); err != nil {
					t.Fatal(err)
				}
				if err := rec.WriteJSON(&js); err != nil {
					t.Fatal(err)
				}
				return c, csv.Bytes(), js.Bytes()
			}

			base, baseCSV, baseJSON := run(0)
			for _, seed := range []int64{1, 42, 0xD15C} {
				shuf, shufCSV, shufJSON := run(seed)
				assertSameTraffic(t, name, base, shuf)
				if !bytes.Equal(baseCSV, shufCSV) {
					t.Errorf("%s seed %d: CSV telemetry series diverges under shuffled queue order:\nbase:\n%s\nshuffled:\n%s",
						name, seed, baseCSV, shufCSV)
				}
				if !bytes.Equal(baseJSON, shufJSON) {
					t.Errorf("%s seed %d: JSON telemetry series diverges under shuffled queue order", name, seed)
				}
			}
			if len(baseCSV) == 0 || !bytes.Contains(baseCSV, []byte("\n")) {
				t.Fatalf("%s: recorder produced no series", name)
			}

			// The unshuffled batched run itself matches per-line dispatch
			// (counter identity; the per-line sample boundaries differ, so
			// only the counters are compared here).
			perLine := newScatterController(t, policy)
			spanLines := uint64(2*perLine.DRAM.Capacity()) / mem.Line
			replaySerial(perLine, scatterStream(t, spanLines))
			assertSameTraffic(t, name+"-vs-per-line", perLine, base)
		})
	}
}

// TestScatterReversedQueueOrder pins the strongest fixed permutation —
// the exact reverse, which applies every write queue before every read
// queue — deterministically rather than through a PRNG.
func TestScatterReversedQueueOrder(t *testing.T) {
	perLine, batched := newRangePair(t, HardwarePolicy())
	batched.scatShuffle = func(order []uint32) {
		for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
			order[i], order[j] = order[j], order[i]
		}
	}
	spanLines := uint64(2*perLine.DRAM.Capacity()) / mem.Line
	reqs := scatterStream(t, spanLines)
	replaySerial(perLine, reqs)
	batched.LLCScatter(reqs)
	assertSameTraffic(t, "reversed", perLine, batched)
}

// TestScatterEmptyBatch pins that an empty batch is a no-op.
func TestScatterEmptyBatch(t *testing.T) {
	perLine, batched := newRangePair(t, HardwarePolicy())
	batched.LLCScatter(nil)
	batched.LLCReadScatter(nil)
	batched.LLCWriteScatter(nil)
	assertSameTraffic(t, "empty", perLine, batched)
}
