// Batched random dispatch: the random-traffic counterpart of the
// LLCReadRange/LLCWriteRange fast paths. Random demand defeats both of
// the controller's sequential-stream devices — the per-stream locator
// memo never hits, and every tag probe lands on a cold cache line of
// the (multi-megabyte) tag array. LLCScatter takes the whole batch at
// once and restructures the work two ways:
//
//  1. The request loop is split into chunked passes. A light pass
//     resolves each request's set/tag/channel and touches its tag word,
//     in a loop small enough that the out-of-order window holds dozens
//     of iterations — the random tag-array fetches overlap at the
//     memory system's full concurrency. The heavy pass then probes and
//     updates the same (now cache-warm) words IN REQUEST ORDER, so the
//     tag state sequence, every imc counter, and the per-channel CAS
//     counts are byte-identical to serial dispatch by construction.
//
//  2. NVRAM device calls are not issued inside the heavy pass (a
//     call per miss on an unpredictable branch). Each miss's fill read
//     and each dirty victim's writeback are instead appended — still in
//     request order — to a queue per (DIMM, direction), and the queues
//     are applied after the batch as tight homogeneous loops inside the
//     nvram package. Legality: the interleave map is a pure function of
//     the address, DIMMs share no state, and within one DIMM the read
//     path (read memo, media read count) and the write path (combining
//     buffer, write memo, media write count) touch disjoint fields — so
//     the only orders that matter are the per-DIMM same-direction
//     orders, which append order preserves exactly. Every interface and
//     media counter is byte-identical to serial dispatch, and the
//     queues may be applied in ANY order — the shuffle property test
//     permutes them and asserts byte-identity; the differential tests
//     pin byte-identity against the per-line path across all policy
//     ablations. See DESIGN.md §4e for the full argument.
package imc

import (
	"twolm/internal/cache"
	"twolm/internal/fastdiv"
	"twolm/internal/mem"
	"twolm/internal/nvram"
)

// Req is one LLC-level request, packed into a single word: the
// line-aligned address with the operation in the low (sub-line) bits.
// Build with ReadReq/WriteReq.
type Req uint64

const (
	// reqWrite marks a writeback; clear means a demand read. Line
	// addresses are 64 B aligned, so the low six bits are free.
	reqWrite uint64 = 1

	lineMask = uint64(mem.Line - 1)
)

// ReadReq packs a demand read (load miss / RFO) of addr's line.
func ReadReq(addr uint64) Req { return Req(addr &^ lineMask) }

// WriteReq packs an LLC writeback (or nontemporal store) of addr's line.
func WriteReq(addr uint64) Req { return Req(addr&^lineMask | reqWrite) }

// chiWrite marks a writeback in the packed channel word of the chunk
// scratch; the channel index occupies the low 31 bits.
const chiWrite uint32 = 1 << 31

// dispatchChunk is the two-pass granularity: small enough that a
// chunk's resolved tag words survive in cache until the heavy pass
// reuses them, large enough to amortize the loop split.
const dispatchChunk = 512

// scatterState is the controller-owned scratch of LLCScatter, reused
// across batches so the steady-state random path allocates nothing.
type scatterState struct {
	serial bool // geometry exceeds the packed channel encoding

	// touchSink keeps the resolve pass's tag-word loads observable:
	// accumulating into controller-owned memory stops the compiler
	// from discarding the loads as dead code (which would silently
	// turn the touch into pure bounds checks and reintroduce the
	// stalls it exists to hide). Controller-owned rather than a
	// package variable so concurrent controllers — engine shards,
	// sweep workers — never share a write target.
	touchSink uint64

	// Per-chunk scratch of the resolve pass.
	cset [dispatchChunk]uint64
	ctag [dispatchChunk]uint32
	cchi [dispatchChunk]uint32 // channel | chiWrite

	// Per-chunk deferred-NVRAM staging: fill reads and victim
	// writebacks collected by the heavy pass through register cursors,
	// partitioned into the per-DIMM queues by the tiny loops that
	// follow it.
	cfill [dispatchChunk]uint64
	cvict [dispatchChunk]uint64

	casR []uint64 // per-channel CAS deltas of the current batch
	casW []uint64

	// Deferred NVRAM queues: one per (DIMM, direction) — read queues
	// first, then write queues. Entries are line addresses in request
	// order; buffers grow monotonically and are reused across batches.
	qbuf    [][]uint64
	qcur    []int
	order   []uint32 // queue apply order (identity; test hook permutes)
	ndimm   int
	dimmDiv fastdiv.Divisor

	// Divisor copies for the resolve pass: DivMod/Mod on a local
	// Divisor value inline fully, where the cache and DRAM method
	// calls per request do not. Same construction, same quotients.
	setDiv fastdiv.Divisor
	chDiv  fastdiv.Divisor

	reqs []Req // packing buffer for the address-slice wrappers
}

// initScatter captures the NVRAM interleave geometry and sizes the
// fixed scratch.
func (c *Controller) initScatter() {
	st := &c.scat
	// The chunk scratch packs the channel index beside the operation
	// bit; a geometry exceeding 31 bits of channel index (never built
	// in practice) falls back to serial dispatch instead of truncating.
	if uint64(c.nch) >= uint64(chiWrite) {
		st.serial = true
		return
	}
	st.casR = make([]uint64, c.nch)
	st.casW = make([]uint64, c.nch)
	nd := c.NVRAM.DIMMs()
	st.ndimm = nd
	st.dimmDiv = c.NVRAM.DIMMDivisor()
	st.setDiv = fastdiv.New(c.sets)
	st.chDiv = fastdiv.New(uint64(c.nch))
	st.qbuf = make([][]uint64, 2*nd)
	st.qcur = make([]int, 2*nd)
	st.order = make([]uint32, 2*nd)
	for i := range st.order {
		st.order[i] = uint32(i)
	}
}

// queueReserve guarantees every deferred queue has room for n more
// entries, so the dispatch loop can append with an unconditional store
// and a masked cursor bump instead of a per-append capacity branch.
//
//alloc:cold queue growth is amortized: buffers double, survive Reset, and are reused across batches (0 steady-state allocs)
func (c *Controller) queueReserve(n int) {
	st := &c.scat
	for j := range st.qbuf {
		need := st.qcur[j] + n
		if need <= len(st.qbuf[j]) {
			continue
		}
		ncap := 2 * len(st.qbuf[j])
		if ncap < need {
			ncap = need
		}
		if ncap < 4096 {
			ncap = 4096
		}
		nb := make([]uint64, ncap)
		copy(nb, st.qbuf[j][:st.qcur[j]])
		st.qbuf[j] = nb
	}
}

// applyQueues drains the deferred NVRAM queues. The apply order is
// immaterial (disjoint DIMMs; disjoint read/write state within a DIMM)
// — the scatShuffle hook permutes it to let the property test prove
// exactly that. Applying through the DIMM batch entry points bypasses
// the Module's interleave memos, which are pure lookup caches with no
// counter effect.
func (c *Controller) applyQueues() {
	st := &c.scat
	if c.scatShuffle != nil {
		c.scatShuffle(st.order)
	}
	nd := st.ndimm
	for _, j := range st.order {
		n := st.qcur[j]
		st.qcur[j] = 0
		if n == 0 {
			continue
		}
		q := st.qbuf[j][:n]
		if int(j) < nd {
			c.NVRAM.DIMMAt(int(j)).ReadBatch(q)
		} else {
			c.NVRAM.DIMMAt(int(j) - nd).WriteBatch(q)
		}
	}
}

// LLCReadScatter services a batch of demand reads at arbitrary line
// addresses — the random-traffic analogue of LLCReadRange. Counter
// results are byte-identical to calling LLCRead on each address in
// slice order.
//
//hot:entry random-traffic batch path, driven on pooled controllers
//alloc:free 0 allocs/op by benchmark contract (BenchmarkLLCReadScatter)
func (c *Controller) LLCReadScatter(addrs []uint64) {
	reqs := c.scat.reqs[:0]
	for _, a := range addrs {
		reqs = append(reqs, ReadReq(a))
	}
	c.scat.reqs = reqs
	c.LLCScatter(reqs)
}

// LLCWriteScatter services a batch of LLC writebacks at arbitrary line
// addresses — the random-traffic analogue of LLCWriteRange. Counter
// results are byte-identical to calling LLCWrite on each address in
// slice order.
//
//hot:entry random-traffic batch path, driven on pooled controllers
//alloc:free 0 allocs/op by benchmark contract (BenchmarkLLCWriteScatter)
func (c *Controller) LLCWriteScatter(addrs []uint64) {
	reqs := c.scat.reqs[:0]
	for _, a := range addrs {
		reqs = append(reqs, WriteReq(a))
	}
	c.scat.reqs = reqs
	c.LLCScatter(reqs)
}

// scatterSerial dispatches a batch through the per-line entry points:
// the associative (Ways > 1) ablations and geometry fallbacks, where
// request order and device-call order are trivially serial.
func (c *Controller) scatterSerial(reqs []Req) {
	for _, r := range reqs {
		if uint64(r)&reqWrite == 0 {
			c.LLCRead(uint64(r) &^ lineMask)
		} else {
			c.LLCWrite(uint64(r) &^ lineMask)
		}
	}
	if c.sink != nil {
		c.maybeSample()
	}
}

// LLCScatter services a mixed batch of packed requests. Counter
// results — imc.Counters, per-channel CAS, NVRAM interface and media
// counters — are byte-identical to dispatching each request serially
// in slice order (the differential tests pin this); requests are
// processed in slice order, with only the NVRAM device calls regrouped
// per DIMM and direction.
//
//hot:entry mixed-batch dispatch path, driven on pooled controllers
//alloc:free 0 allocs/op by benchmark contract (PR 7 steady-state guarantee)
func (c *Controller) LLCScatter(reqs []Req) {
	if len(reqs) == 0 {
		return
	}
	st := &c.scat
	words := c.Cache.DirectEntries()
	if st.serial || words == nil {
		c.scatterSerial(reqs)
		return
	}
	clear(st.casR)
	clear(st.casW)
	var d Counters
	if c.policy.ReadAllocate && c.policy.WriteAllocate && !c.DisableDDO {
		c.dispatchHW(&d, words, reqs)
	} else {
		c.dispatchAblate(&d, words, reqs)
	}
	for i, r := range st.casR {
		c.DRAM.ChannelAt(i).CASReads += r
	}
	for i, w := range st.casW {
		c.DRAM.ChannelAt(i).CASWrites += w
	}
	c.applyQueues()
	c.counters = c.counters.Add(d)
	if c.sink != nil {
		c.maybeSample()
	}
}

// dispatchHW is the dispatch loop for the configuration every headline
// experiment runs: direct mapped (Ways==1) with the hardware policy
// (read + write allocate, DDO on). The tag outcome splits the demand
// stream roughly in half under random traffic, so any branch on it
// mispredicts constantly; the heavy pass is straight-line instead —
// every counter update is predicated arithmetic on the probe outcome
// bits, and the deferred NVRAM appends store unconditionally with a
// masked cursor bump (the slot is overwritten when the request defers
// nothing). Counter results are identical to the per-line path (the
// differential and shuffle tests run the same traffic through every
// ablation at Ways 1 and 4).
func (c *Controller) dispatchHW(d *Counters, words []uint64, reqs []Req) {
	st := &c.scat
	sets := c.sets
	casR, casW := st.casR, st.casW
	nd := st.ndimm
	dimmDiv := st.dimmDiv
	// Counter accumulators live in plain locals so they stay in
	// registers: a += on a shared *Counters field is a memory
	// read-modify-write whose store the next iteration's load depends
	// on, and a dozen such chains per request serialize the whole loop.
	// Only the four independent outcomes are counted; the rest are
	// derived once at the end (on this policy every request reads DRAM
	// unless DDO elides it, every miss reads NVRAM and fills DRAM, and
	// every dirty victim writes NVRAM).
	var nW, nHit, nMissD, nDDO uint64
	for off := 0; off < len(reqs); off += dispatchChunk {
		chunk := reqs[off:]
		if len(chunk) > dispatchChunk {
			chunk = chunk[:dispatchChunk]
		}
		// Resolve pass: split each address once, with fully inlined
		// divisor arithmetic — the cache and DRAM method calls would
		// cost a call per request.
		for k, r := range chunk {
			line := (uint64(r) &^ lineMask) >> mem.LineShift
			tag, set := st.setDiv.DivMod(line)
			st.cset[k] = set
			st.ctag[k] = uint32(tag)
			st.cchi[k] = uint32(st.chDiv.Mod(line)) | uint32(uint64(r)&reqWrite)<<31
		}
		// Touch pass: pull the chunk's tag words toward the core. Three
		// micro-ops per iteration, so the reorder window holds dozens
		// of them and the random fetches overlap at the memory system's
		// full concurrency, where the heavy pass below would stall on
		// them a few at a time.
		var touch uint64
		for k := range chunk {
			touch += words[st.cset[k]]
		}
		st.touchSink += touch
		// Heavy pass, in request order: probe, predicated counters and
		// tag-word update, masked staging of the deferred NVRAM work.
		var nf, nv int
		for k, r := range chunk {
			a := uint64(r) &^ lineMask
			set := st.cset[k]
			tag := st.ctag[k]
			chi := st.cchi[k] &^ chiWrite
			isW := uint64(st.cchi[k] >> 31)
			w := words[set]

			// Probe outcome as 0/1 predicates. The packed-entry flag
			// layout (EntryValid=1<<0, EntryDirty=1<<1,
			// EntryLLCOwned=1<<2, tag above bit 8) is part of the cache
			// package's exported word format: masking the dirty and
			// owned bits off the resident word leaves exactly the valid
			// tag image to compare against.
			var hit, dv, ddo uint64
			if w&^(cache.EntryDirty|cache.EntryLLCOwned) == cache.PackEntry(tag, cache.EntryValid) {
				hit = 1
			}
			if w&(cache.EntryValid|cache.EntryDirty) == cache.EntryValid|cache.EntryDirty {
				dv = 1 - hit // miss with valid dirty victim
			}
			miss := 1 - hit
			ddo = isW & hit & (w >> 2) & 1

			nW += isW
			nHit += hit
			nMissD += dv
			nDDO += ddo
			casR[chi] += 1 - ddo
			casW[chi] += miss + isW

			// Stage the miss's fill read and the dirty victim's
			// writeback, in request order, through register cursors:
			// the slot is stored unconditionally and abandoned when the
			// cursor does not advance (the reconstructed victim address
			// is garbage when dv is 0, and discarded the same way).
			st.cfill[nf] = a
			nf += int(miss)
			va := (uint64(cache.EntryTagOf(w))*sets + set) << mem.LineShift
			st.cvict[nv] = va
			nv += int(dv)

			// New entry word: a read hit gains the LLC-owned flag, a
			// write hit gains dirty and drops owned, and a miss installs
			// the incoming tag (owned for reads, dirty for writes).
			addBits := cache.EntryLLCOwned - 2*isW // 4 on reads, 2 on writes
			nw := cache.PackEntry(tag, cache.EntryValid|addBits)
			if hit == 1 {
				nw = (w | addBits) &^ (cache.EntryLLCOwned * isW)
			}
			words[set] = nw
		}
		// Hand the staged work to the device model, still in request
		// order per direction (reads and writes commute within a DIMM,
		// so splitting the directions preserves byte-identity). With
		// the shuffle hook installed, the property-test path instead
		// partitions into the per-DIMM queues applied after the batch,
		// so the test can permute the apply order.
		if c.scatShuffle == nil {
			c.NVRAM.ReadBatch(st.cfill[:nf])
			c.NVRAM.WriteBatch(st.cvict[:nv])
		} else {
			c.queueReserve(len(chunk))
			for _, a := range st.cfill[:nf] {
				di := dimmDiv.Mod(a / nvram.InterleaveGranularity)
				st.qbuf[di][st.qcur[di]] = a
				st.qcur[di]++
			}
			for _, va := range st.cvict[:nv] {
				dj := uint64(nd) + dimmDiv.Mod(va/nvram.InterleaveGranularity)
				st.qbuf[dj][st.qcur[dj]] = va
				st.qcur[dj]++
			}
		}
	}
	nTotal := uint64(len(reqs))
	nMiss := nTotal - nHit
	d.LLCRead += nTotal - nW
	d.LLCWrite += nW
	d.DRAMRead += nTotal - nDDO
	d.DRAMWrite += nMiss + nW
	d.NVRAMRead += nMiss
	d.NVRAMWrite += nMissD
	d.TagHit += nHit
	d.TagMissClean += nMiss - nMissD
	d.TagMissDirty += nMissD
	d.DDO += nDDO
}

// dispatchAblate is the dispatch loop for the direct-mapped (Ways==1)
// tag store under the ablation policies. Requests run in order with
// direct NVRAM calls (victim writeback before fill, exactly as the
// per-line miss path issues them), so byte-identity is by construction;
// the probe and every tag-state transition still fold into one load and
// one store of the packed entry word. Ablations are off the headline
// benchmark path, so this loop keeps the readable branchy form.
func (c *Controller) dispatchAblate(d *Counters, words []uint64, reqs []Req) {
	st := &c.scat
	sets := c.sets
	readAlloc := c.policy.ReadAllocate
	writeAlloc := c.policy.WriteAllocate
	ddoOK := !c.DisableDDO
	casR, casW := st.casR, st.casW
	for _, r := range reqs {
		a := uint64(r) &^ lineMask
		set, tag := c.Cache.Index(a)
		chi := c.DRAM.ChannelIndex(a)
		w := words[set]
		hit := w&cache.EntryValid != 0 && cache.EntryTagOf(w) == tag

		if uint64(r)&reqWrite == 0 {
			// Demand read: DRAM fetches tag and data together.
			d.LLCRead++
			d.DRAMRead++
			casR[chi]++
			switch {
			case hit:
				d.TagHit++
				words[set] = w | cache.EntryLLCOwned
			case !readAlloc:
				// Ablation: forward from NVRAM without caching.
				d.TagMissClean++
				d.NVRAMRead++
				c.NVRAM.Read(a)
			default:
				if w&(cache.EntryValid|cache.EntryDirty) == cache.EntryValid|cache.EntryDirty {
					d.TagMissDirty++
					d.NVRAMWrite++
					c.NVRAM.Write((uint64(cache.EntryTagOf(w))*sets + set) << mem.LineShift)
				} else {
					d.TagMissClean++
				}
				d.NVRAMRead++
				c.NVRAM.Read(a)
				d.DRAMWrite++
				casW[chi]++
				words[set] = cache.PackEntry(tag, cache.EntryValid|cache.EntryLLCOwned)
			}
			continue
		}

		// LLC writeback.
		d.LLCWrite++
		switch {
		case ddoOK && hit && w&cache.EntryLLCOwned != 0:
			d.DDO++
			d.TagHit++
			d.DRAMWrite++
			casW[chi]++
			words[set] = (w | cache.EntryDirty) &^ cache.EntryLLCOwned
		case hit:
			// DRAM read purely for the tag check.
			d.DRAMRead++
			casR[chi]++
			d.TagHit++
			d.DRAMWrite++
			casW[chi]++
			words[set] = (w | cache.EntryDirty) &^ cache.EntryLLCOwned
		case !writeAlloc:
			// Ablation: write-around straight to NVRAM.
			d.DRAMRead++
			casR[chi]++
			d.TagMissClean++
			d.NVRAMWrite++
			c.NVRAM.Write(a)
		default:
			d.DRAMRead++
			casR[chi]++
			if w&(cache.EntryValid|cache.EntryDirty) == cache.EntryValid|cache.EntryDirty {
				d.TagMissDirty++
				d.NVRAMWrite++
				c.NVRAM.Write((uint64(cache.EntryTagOf(w))*sets + set) << mem.LineShift)
			} else {
				d.TagMissClean++
			}
			d.NVRAMRead++
			c.NVRAM.Read(a)
			// Insert-on-miss, then the actual write of the line.
			d.DRAMWrite += 2
			casW[chi] += 2
			words[set] = cache.PackEntry(tag, cache.EntryValid|cache.EntryDirty)
		}
	}
}
