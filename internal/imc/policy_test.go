package imc

import (
	"testing"

	"twolm/internal/cache"
	"twolm/internal/dram"
	"twolm/internal/mem"
	"twolm/internal/nvram"
)

// newPolicyController builds a controller with the given policy.
func newPolicyController(t *testing.T, cacheCapacity uint64, p Policy) *Controller {
	t.Helper()
	d, err := dram.New(6, cacheCapacity)
	if err != nil {
		t.Fatal(err)
	}
	n, err := nvram.New(6, 64*cacheCapacity)
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(d, n, WithPolicy(p))
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestHardwarePolicyDefaults(t *testing.T) {
	p := HardwarePolicy()
	if p.Ways != 1 || !p.WriteAllocate || !p.ReadAllocate || p.DisableDDO {
		t.Errorf("unexpected hardware policy: %+v", p)
	}
}

// TestInvalidWaysRejected: a zero or negative associativity is a config
// typo and must be an error, not a silent rewrite to direct mapped.
func TestInvalidWaysRejected(t *testing.T) {
	d, err := dram.New(6, mem.KiB)
	if err != nil {
		t.Fatal(err)
	}
	n, err := nvram.New(6, 64*mem.KiB)
	if err != nil {
		t.Fatal(err)
	}
	for _, ways := range []int{0, -1, -8} {
		p := HardwarePolicy()
		p.Ways = ways
		if c, err := New(d, n, WithPolicy(p)); err == nil {
			t.Errorf("Ways=%d: New returned a %d-way controller, want error", ways, c.Cache.Ways())
		}
	}
}

// TestNoWriteAllocate: a write miss under write-around costs 1 DRAM
// read (tag check) + 1 NVRAM write, amplification 2, and disturbs
// nothing.
func TestNoWriteAllocate(t *testing.T) {
	p := HardwarePolicy()
	p.WriteAllocate = false
	c := newPolicyController(t, mem.KiB, p)
	addr := uint64(2 * mem.Line)
	d := delta(c, func() {
		res, ddo := c.LLCWrite(addr)
		if res == cache.Hit || ddo {
			t.Fatalf("expected plain miss, got %v ddo=%v", res, ddo)
		}
	})
	want := Counters{DRAMRead: 1, NVRAMWrite: 1, TagMissClean: 1, LLCWrite: 1}
	if d != want {
		t.Errorf("write-around miss = {%v}, want {%v}", d, want)
	}
	if amp := d.Amplification(); amp != 2 {
		t.Errorf("amplification = %.1f, want 2 (vs 4-5 with write-allocate)", amp)
	}
	// The line must NOT be cached.
	if _, res := c.Cache.Probe(addr); res == cache.Hit {
		t.Error("write-around inserted the line")
	}
}

// TestNoWriteAllocatePreservesVictim: write-around must not write back
// or evict the aliasing occupant.
func TestNoWriteAllocatePreservesVictim(t *testing.T) {
	p := HardwarePolicy()
	p.WriteAllocate = false
	c := newPolicyController(t, mem.KiB, p)
	victim := uint64(2 * mem.Line)
	c.LLCRead(victim) // insert clean occupant (read-allocate still on)
	before := c.Counters()
	c.LLCWrite(alias(c, victim, 1))
	d := c.Counters().Sub(before)
	if d.NVRAMRead != 0 {
		t.Error("write-around fetched the line")
	}
	if _, res := c.Cache.Probe(victim); res != cache.Hit {
		t.Error("write-around evicted the victim")
	}
}

// TestNoReadAllocate: a read miss without allocation costs 1 DRAM read
// + 1 NVRAM read, amplification 2, uncached.
func TestNoReadAllocate(t *testing.T) {
	p := HardwarePolicy()
	p.ReadAllocate = false
	c := newPolicyController(t, mem.KiB, p)
	addr := uint64(2 * mem.Line)
	d := delta(c, func() { c.LLCRead(addr) })
	want := Counters{DRAMRead: 1, NVRAMRead: 1, TagMissClean: 1, LLCRead: 1}
	if d != want {
		t.Errorf("no-allocate read miss = {%v}, want {%v}", d, want)
	}
	if _, res := c.Cache.Probe(addr); res == cache.Hit {
		t.Error("no-allocate read inserted the line")
	}
	// A repeat read misses again (nothing was cached).
	d = delta(c, func() { c.LLCRead(addr) })
	if d.NVRAMRead != 1 {
		t.Error("repeat read should miss again")
	}
}

// TestAssociativityAbsorbsAliasingWrites: 2 ways hold two dirty
// aliases that thrash a direct-mapped cache — quantifying the paper's
// limitation #1.
func TestAssociativityAbsorbsAliasingWrites(t *testing.T) {
	run := func(ways int) Counters {
		p := HardwarePolicy()
		p.Ways = ways
		c := newPolicyController(t, mem.KiB, p)
		a := uint64(2 * mem.Line)
		// addr + capacity lands in the same set with a different tag
		// for any associativity.
		b := a + c.Cache.Capacity()
		for i := 0; i < 16; i++ {
			c.LLCWrite(a)
			c.LLCWrite(b)
		}
		return c.Counters()
	}
	dm := run(1)
	tw := run(2)
	if dm.TagMissDirty == 0 {
		t.Fatal("direct-mapped alias ping-pong produced no dirty misses")
	}
	if tw.TagMissDirty != 0 {
		t.Errorf("2-way cache still dirty-missed %d times", tw.TagMissDirty)
	}
	if tw.NVRAMWrite >= dm.NVRAMWrite {
		t.Errorf("associativity did not reduce NVRAM writes: %d vs %d", tw.NVRAMWrite, dm.NVRAMWrite)
	}
}

// TestPolicyAccessor round trips.
func TestPolicyAccessor(t *testing.T) {
	p := Policy{Ways: 4, WriteAllocate: true, ReadAllocate: false, DisableDDO: true}
	c := newPolicyController(t, mem.KiB, p)
	if got := c.Policy(); got != p {
		t.Errorf("Policy() = %+v, want %+v", got, p)
	}
	if !c.DisableDDO {
		t.Error("DisableDDO not propagated from policy")
	}
}
