package imc

import (
	"testing"

	"twolm/internal/dram"
	"twolm/internal/mem"
	"twolm/internal/nvram"
)

// newFoldPair builds two identically configured controllers with a
// small DRAM cache (3072 sets) so modest ranges cross the probe wrap
// into the uniform remainder of the closed-form fold.
func newFoldPair(t *testing.T, policy Policy) (perLine, batched *Controller) {
	t.Helper()
	build := func() *Controller {
		d, err := dram.New(6, 192*mem.KiB)
		if err != nil {
			t.Fatal(err)
		}
		n, err := nvram.New(6, 48*mem.MiB)
		if err != nil {
			t.Fatal(err)
		}
		c, err := New(d, n, WithPolicy(policy))
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	return build(), build()
}

// assertSameTagState asserts the two controllers' tag stores are in
// identical final states — the part of the fold the counter comparison
// cannot see (a wrong bulk stamp only shows up in later traffic).
func assertSameTagState(t *testing.T, label string, perLine, batched *Controller) {
	t.Helper()
	a, b := perLine.Cache.DirectEntries(), batched.Cache.DirectEntries()
	if a == nil || b == nil {
		if (a == nil) != (b == nil) {
			t.Fatalf("%s: layout diverges: per-line direct=%v, batched direct=%v", label, a != nil, b != nil)
		}
		// Ways > 1: the fold never engages; spot-check the aggregates.
		if x, y := perLine.Cache.DirtyLines(), batched.Cache.DirtyLines(); x != y {
			t.Errorf("%s: dirty lines diverge: per-line %d, batched %d", label, x, y)
		}
		if x, y := perLine.Cache.ValidLines(), batched.Cache.ValidLines(); x != y {
			t.Errorf("%s: valid lines diverge: per-line %d, batched %d", label, x, y)
		}
		return
	}
	for set := range a {
		if a[set] != b[set] {
			t.Fatalf("%s: tag state diverges at set %d: per-line %#x, batched %#x",
				label, set, a[set], b[set])
		}
	}
}

// foldPrimings returns named priming functions that put both
// controllers of a pair into interesting identical pre-range states.
func foldPrimings(sets uint64) map[string]func(c *Controller) {
	return map[string]func(c *Controller){
		"cold": func(c *Controller) {},
		"warm-clean": func(c *Controller) {
			// Every set valid and clean, tags one wrap behind the test
			// ranges' span start.
			for a := uint64(0); a < sets*mem.Line; a += mem.Line {
				c.LLCRead(a)
			}
		},
		"warm-dirty": func(c *Controller) {
			// Every set dirty — read folds must flush a full second wrap.
			for a := uint64(0); a < sets*mem.Line; a += mem.Line {
				c.LLCWrite(a)
			}
		},
		"adversarial": func(c *Controller) {
			// Aliased strided traffic: alternating tags per set region,
			// a mix of dirty, clean, owned, and invalid sets, so a probe
			// wrap sees every Table-I outcome.
			for i := uint64(0); i < sets; i += 2 {
				c.LLCWrite((i*7%sets + (i%5)*sets) * mem.Line)
			}
			for i := uint64(0); i < sets; i += 3 {
				c.LLCRead((i + (i%3)*sets) * mem.Line)
			}
		},
	}
}

// TestSeqFoldLongRanges drives read and write ranges long enough to
// cross from the predicated probe wraps into the uniform remainder —
// including exact-wrap, wrap+1, and multi-wrap-plus-tail lengths at
// aligned and unaligned bases — against every policy and priming, and
// demands byte-identical traffic and final tag state versus per-line
// dispatch.
func TestSeqFoldLongRanges(t *testing.T) {
	for name, policy := range rangeTestPolicies() {
		t.Run(name, func(t *testing.T) {
			probe, _ := newFoldPair(t, policy)
			sets := probe.Cache.Sets()
			for pname, prime := range foldPrimings(sets) {
				t.Run(pname, func(t *testing.T) {
					perLine, batched := newFoldPair(t, policy)
					prime(perLine)
					prime(batched)
					for _, n := range []uint64{1, sets - 1, sets, sets + 1, 2*sets + 137, 3 * sets} {
						for _, base := range []uint64{0, 513 * mem.Line, 7*mem.Line + 24} {
							for a, i := base, uint64(0); i < n; i++ {
								perLine.LLCRead(a)
								a += mem.Line
							}
							batched.LLCReadRange(base, n)
							for a, i := base, uint64(0); i < n; i++ {
								perLine.LLCWrite(a)
								a += mem.Line
							}
							batched.LLCWriteRange(base, n)
						}
					}
					assertSameTraffic(t, pname, perLine, batched)
					assertSameTagState(t, pname, perLine, batched)
				})
			}
		})
	}
}

// TestWritebackReadRangeMatchesPerLine proves LLCWritebackReadRange —
// fold and fallback alike — generates exactly the traffic and state of
// the per-pair LLCWrite/LLCRead interleave it batches, across lags
// inside the fold window (1 to sets-1), at and beyond it (fallback),
// with mixed alignment, for every policy and priming.
func TestWritebackReadRangeMatchesPerLine(t *testing.T) {
	for name, policy := range rangeTestPolicies() {
		t.Run(name, func(t *testing.T) {
			probe, _ := newFoldPair(t, policy)
			sets := probe.Cache.Sets()
			lags := []uint64{1, 7, sets / 2, sets - 1, sets, sets + 5}
			for pname, prime := range foldPrimings(sets) {
				t.Run(pname, func(t *testing.T) {
					perLine, batched := newFoldPair(t, policy)
					prime(perLine)
					prime(batched)
					for _, lag := range lags {
						for _, n := range []uint64{1, sets, 2*sets + 77} {
							for _, off := range []uint64{0, 24} {
								waddr := 11*mem.Line + off
								raddr := waddr + lag*mem.Line - off
								for i := uint64(0); i < n; i++ {
									perLine.LLCWrite(waddr + i*mem.Line)
									perLine.LLCRead(raddr + i*mem.Line)
								}
								batched.LLCWritebackReadRange(waddr, raddr, n)
							}
						}
					}
					// Degenerate orderings must take the fallback.
					perLine.LLCWrite(5 * mem.Line)
					perLine.LLCRead(5 * mem.Line)
					batched.LLCWritebackReadRange(5*mem.Line, 5*mem.Line, 1)
					perLine.LLCWrite(9 * mem.Line)
					perLine.LLCRead(3 * mem.Line)
					batched.LLCWritebackReadRange(9*mem.Line, 3*mem.Line, 1)
					batched.LLCWritebackReadRange(0, mem.Line, 0)
					assertSameTraffic(t, pname, perLine, batched)
					assertSameTagState(t, pname, perLine, batched)
				})
			}
		})
	}
}

// TestRangeSplitCommutes is the range-split property test: servicing a
// sequential range in one call and servicing it as back-to-back
// subranges split at arbitrary cut points must produce byte-identical
// traffic and tag state — the fold's segment boundaries (probe wraps,
// uniform remainder, stamp window) cannot leak into the results.
func TestRangeSplitCommutes(t *testing.T) {
	for name, policy := range rangeTestPolicies() {
		t.Run(name, func(t *testing.T) {
			probe, _ := newFoldPair(t, policy)
			sets := probe.Cache.Sets()
			n := 3*sets + 311
			cutVectors := [][]uint64{
				{1},                       // peel one line
				{sets},                    // exactly the probe wrap
				{sets + 1},                // one past it
				{sets / 3, sets + 7},      // mid-wrap and early-uniform
				{2*sets + 5, 3 * sets},    // both cuts in the remainder
				{1, 2, 3, sets, 3 * sets}, // many uneven pieces
			}
			for _, cuts := range cutVectors {
				for _, write := range []bool{false, true} {
					whole, split := newFoldPair(t, policy)
					// Shared priming: a dirty stripe so splits land on
					// non-trivial state.
					for a := uint64(0); a < sets*mem.Line; a += 2 * mem.Line {
						whole.LLCWrite(a)
						split.LLCWrite(a)
					}
					const base = 17 * mem.Line
					run := func(c *Controller, start, cnt uint64) {
						if write {
							c.LLCWriteRange(base+start*mem.Line, cnt)
						} else {
							c.LLCReadRange(base+start*mem.Line, cnt)
						}
					}
					run(whole, 0, n)
					prev := uint64(0)
					for _, cut := range cuts {
						run(split, prev, cut-prev)
						prev = cut
					}
					run(split, prev, n-prev)
					label := name
					if write {
						label += "-write"
					} else {
						label += "-read"
					}
					assertSameTraffic(t, label, whole, split)
					assertSameTagState(t, label, whole, split)
				}
			}
		})
	}
}
