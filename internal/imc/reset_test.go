package imc

import (
	"testing"

	"twolm/internal/lfsr"
	"twolm/internal/mem"
)

// resetTestPolicies is the reuse acceptance matrix: all four policy
// ablations at both associativities.
func resetTestPolicies() map[string]Policy {
	out := map[string]Policy{}
	for _, ways := range []int{1, 4} {
		hw := HardwarePolicy()
		hw.Ways = ways
		noWA := hw
		noWA.WriteAllocate = false
		noRA := hw
		noRA.ReadAllocate = false
		noDDO := hw
		noDDO.DisableDDO = true
		suffix := map[int]string{1: "/1-way", 4: "/4-way"}[ways]
		out["hardware"+suffix] = hw
		out["no-write-allocate"+suffix] = noWA
		out["no-read-allocate"+suffix] = noRA
		out["ddo-off"+suffix] = noDDO
	}
	return out
}

// exerciseController drives every request shape the controller has —
// per-line, batched ranges, and scatter dispatch — over a footprint
// exceeding the cache, so hits, clean misses, dirty misses and DDO
// paths all fire.
func exerciseController(t *testing.T, c *Controller, seed uint32) {
	t.Helper()
	const span = 24 * mem.MiB / mem.Line // footprint lines, 8x the 3 MiB cache
	// Sequential demand + writeback streams, offset so the writeback
	// stream evicts the demand stream's installs.
	c.LLCReadRange(0, 4096)
	c.LLCWriteRange(1024*mem.Line, 4096)
	// Per-line stragglers.
	for i := uint64(0); i < 64; i++ {
		c.LLCRead(i * 3 * mem.Line)
		c.LLCWrite(i * 5 * mem.Line)
	}
	// LFSR-random scatter mix across the whole footprint.
	reqs := make([]Req, 0, 4096)
	i := 0
	err := lfsr.Sequence(span, seed, func(idx uint64) {
		if len(reqs) == cap(reqs) {
			return
		}
		addr := idx * mem.Line
		if i&1 == 0 {
			reqs = append(reqs, ReadReq(addr))
		} else {
			reqs = append(reqs, WriteReq(addr))
		}
		i++
	})
	if err != nil {
		t.Fatal(err)
	}
	c.LLCScatter(reqs)
}

// TestResetMatchesFresh is the recycled-controller differential test
// behind the sweep engine's arena: a controller that has run an
// arbitrary prior workload and then Reset produces counters, per-
// channel CAS counts, and NVRAM interface/media counters identical to
// a freshly constructed controller, over all four policy ablations x
// Ways 1,4.
func TestResetMatchesFresh(t *testing.T) {
	for name, policy := range resetTestPolicies() {
		t.Run(name, func(t *testing.T) {
			fresh, recycled := newRangePair(t, policy)
			// Dirty the recycled controller with a different workload
			// (different seed, so different tag state, combining-
			// buffer state, and locator phase), then rewind it.
			exerciseController(t, recycled, 0xDEAD)
			recycled.Reset()
			// Identical measurement workload on both.
			exerciseController(t, fresh, 0x2B1A)
			exerciseController(t, recycled, 0x2B1A)
			assertSameTraffic(t, name, fresh, recycled)
		})
	}
}

// TestResetVsResetCounters pins the semantic split the two methods
// document: ResetCounters preserves cache contents (the paper's
// prime-then-measure protocol), Reset also invalidates them (the
// recycle-a-controller protocol).
func TestResetVsResetCounters(t *testing.T) {
	c, _ := newRangePair(t, HardwarePolicy())
	const lines = 1024 // well inside the 3 MiB cache

	// Prime: install every line, then rewind counters only.
	c.LLCReadRange(0, lines)
	c.ResetCounters()
	if got := c.Counters(); got != (Counters{}) {
		t.Fatalf("ResetCounters left counters %v", got)
	}
	if r, w := c.DRAM.ChannelCounters(), c.NVRAM.TotalReads(); w != 0 || func() bool {
		for _, ch := range r {
			if ch.CASReads != 0 || ch.CASWrites != 0 {
				return true
			}
		}
		return false
	}() {
		t.Fatal("ResetCounters left device counters running")
	}

	// The primed tags survive ResetCounters: a re-read is all hits.
	c.LLCReadRange(0, lines)
	if got := c.Counters(); got.TagHit != lines || got.TagMissClean != 0 {
		t.Errorf("after ResetCounters: %d hits, %d clean misses; want all %d hits (cache preserved)",
			got.TagHit, got.TagMissClean, lines)
	}

	// Reset also invalidates the tags: the same re-read is all misses.
	c.Reset()
	if got := c.Counters(); got != (Counters{}) {
		t.Fatalf("Reset left counters %v", got)
	}
	c.LLCReadRange(0, lines)
	if got := c.Counters(); got.TagHit != 0 || got.TagMissClean != lines {
		t.Errorf("after Reset: %d hits, %d clean misses; want all %d misses (cache invalidated)",
			got.TagHit, got.TagMissClean, lines)
	}
}

// TestResetIsAllocFree pins the arena's perf contract at the
// controller level: recycling is in-place zeroing, never
// reallocation.
func TestResetIsAllocFree(t *testing.T) {
	c, _ := newRangePair(t, HardwarePolicy())
	exerciseController(t, c, 0x2B1A)
	if allocs := testing.AllocsPerRun(10, c.Reset); allocs != 0 {
		t.Errorf("Controller.Reset allocates %.1f objects, want 0", allocs)
	}
}
