// Closed-form set-stride fold for sequential demand (DESIGN.md §4h).
//
// A sequential line range walks the direct-mapped tag store's sets with
// unit stride, wrapping set -> 0 with a tag carry. Against arbitrary
// prior state, the first visit to each set can take any Table-I outcome
// — but this range's own visit leaves the set in a state the policy
// fully determines, so from the second wrap on (reads may need one more
// wrap to flush dirt that a hit preserved) every line takes exactly one
// outcome:
//
//	reads:  tag miss, clean victim (this range's own install),
//	        NVRAM fill + DRAM install
//	writes: tag miss, dirty victim = the line one set-wrap back,
//	        victim writeback + fill + install + data write
//
// The fold therefore splits a range into predicated probe wraps (one
// packed-word load/store per set, at most two wraps for reads, one for
// writes) and a uniform remainder committed arithmetically: counters in
// O(1), per-channel CAS through dram's range distributor, NVRAM media
// through the ascending-run entry points, and the final tag state as a
// bulk stamp of the last window of sets. The interleaved writeback+read
// fold does the same for the eviction shadow a store stream drags
// behind its demand reads. Fallbacks: associativity > 1 (no flat entry
// array) and the no-allocate ablations take the per-line loops;
// DisableDDO folds (it only changes which uniform write formula
// applies). Legality is pinned by the differential and range-split
// tests in seqfold_test.go — byte-identical counters, channel CAS,
// NVRAM media counters, and final tag state versus per-line dispatch.

package imc

import (
	"twolm/internal/cache"
	"twolm/internal/mem"
)

// seqReadRange is the closed-form body of LLCReadRange. Preconditions:
// n > 0, entries is the flat Ways==1 tag array, and ReadAllocate holds.
// The caller flushes telemetry.
func (c *Controller) seqReadRange(entries []uint64, addr, n uint64) {
	var d Counters
	d.LLCRead = n
	// Every read costs one DRAM data+tag read, hit or miss.
	d.DRAMRead = n
	c.DRAM.ReadRange(addr, n)

	sets := c.sets
	rem := n
	a := addr
	// Probe wraps: the first visit to each set runs predicated against
	// whatever the set held. A read hit preserves a dirty bit, so one
	// more wrap of dirt can follow; after a wrap with no dirty hits the
	// remainder is uniform. Two wraps is the fixed point: a second wrap
	// cannot hit (its tags are one carry past the tags it installed).
	for rem > 0 {
		w := min(rem, sets)
		dirtyHits := c.readProbeWrap(entries, &d, a, w)
		a += w * mem.Line
		rem -= w
		if dirtyHits == 0 {
			break
		}
	}
	// Uniform remainder: every line misses clean against this range's
	// own install and refills.
	if rem > 0 {
		d.TagMissClean += rem
		d.NVRAMRead += rem
		c.NVRAM.ReadLineRun(a, rem)
		d.DRAMWrite += rem
		c.DRAM.WriteRange(a, rem)
		wlen := min(rem, sets)
		ws, wt := c.Cache.Index(a + (rem-wlen)*mem.Line)
		c.Cache.StampSeqRun(ws, wt, wlen, cache.EntryValid|cache.EntryLLCOwned)
	}
	c.counters = c.counters.Add(d)
}

// readProbeWrap services n consecutive read lines (n <= sets) with
// LLCRead's per-line semantics folded to one packed-word load and store
// per set, and reports how many hits preserved a dirty bit — the
// condition for another predicated wrap. The per-line DRAM data read is
// accounted by the caller for the whole range.
func (c *Controller) readProbeWrap(entries []uint64, d *Counters, addr, n uint64) (dirtyHits uint64) {
	sets := c.sets
	nch := c.nch
	set, tag := c.Cache.Index(addr)
	chIdx := c.DRAM.ChannelIndex(addr)
	a := addr
	for i := uint64(0); i < n; i++ {
		w := entries[set]
		if w&cache.EntryValid != 0 && cache.EntryTagOf(w) == tag {
			d.TagHit++
			entries[set] = w | cache.EntryLLCOwned
			if w&cache.EntryDirty != 0 {
				dirtyHits++
			}
		} else {
			if w&(cache.EntryValid|cache.EntryDirty) == cache.EntryValid|cache.EntryDirty {
				d.TagMissDirty++
				d.NVRAMWrite++
				c.NVRAM.Write((uint64(cache.EntryTagOf(w))*sets + set) << mem.LineShift)
			} else {
				d.TagMissClean++
			}
			d.NVRAMRead++
			c.NVRAM.Read(a)
			d.DRAMWrite++
			c.DRAM.ChannelAt(chIdx).CASWrites++
			entries[set] = cache.PackEntry(tag, cache.EntryValid|cache.EntryLLCOwned)
		}
		set++
		if set == sets {
			set, tag = 0, tag+1
		}
		chIdx++
		if chIdx == nch {
			chIdx = 0
		}
		a += mem.Line
	}
	return dirtyHits
}

// seqWriteRange is the closed-form body of LLCWriteRange. Preconditions:
// n > 0, entries is the flat Ways==1 tag array, and WriteAllocate holds
// (DisableDDO folds). The caller flushes telemetry.
func (c *Controller) seqWriteRange(entries []uint64, addr, n uint64) {
	var d Counters
	d.LLCWrite = n

	sets := c.sets
	// One probe wrap reaches the fixed point: every write branch leaves
	// its set valid and dirty with this wrap's tag, so the next wrap
	// always takes the dirty-miss path.
	head := min(n, sets)
	c.writeProbeWrap(entries, &d, addr, head)
	rem := n - head
	if rem > 0 {
		a := addr + head*mem.Line
		// Tag-check read, then: victim writeback of the line one wrap
		// back, fill, install, and the data write.
		d.DRAMRead += rem
		c.DRAM.ReadRange(a, rem)
		d.TagMissDirty += rem
		d.NVRAMWrite += rem
		c.NVRAM.WriteLineRun(a-sets*mem.Line, rem)
		d.NVRAMRead += rem
		c.NVRAM.ReadLineRun(a, rem)
		d.DRAMWrite += 2 * rem
		c.DRAM.WriteRange(a, rem)
		c.DRAM.WriteRange(a, rem)
		wlen := min(rem, sets)
		ws, wt := c.Cache.Index(a + (rem-wlen)*mem.Line)
		c.Cache.StampSeqRun(ws, wt, wlen, cache.EntryValid|cache.EntryDirty)
	}
	c.counters = c.counters.Add(d)
}

// writeProbeWrap services n consecutive writeback lines (n <= sets)
// with LLCWrite's per-line semantics folded to one packed-word load and
// store per set.
func (c *Controller) writeProbeWrap(entries []uint64, d *Counters, addr, n uint64) {
	sets := c.sets
	nch := c.nch
	set, tag := c.Cache.Index(addr)
	chIdx := c.DRAM.ChannelIndex(addr)
	a := addr
	for i := uint64(0); i < n; i++ {
		w := entries[set]
		ch := c.DRAM.ChannelAt(chIdx)
		hit := w&cache.EntryValid != 0 && cache.EntryTagOf(w) == tag
		switch {
		case hit && !c.DisableDDO && w&cache.EntryLLCOwned != 0:
			d.DDO++
			d.TagHit++
			d.DRAMWrite++
			ch.CASWrites++
			entries[set] = (w | cache.EntryDirty) &^ cache.EntryLLCOwned
		case hit:
			// DRAM read purely for the tag check, then the data write.
			d.DRAMRead++
			ch.CASReads++
			d.TagHit++
			d.DRAMWrite++
			ch.CASWrites++
			entries[set] = (w | cache.EntryDirty) &^ cache.EntryLLCOwned
		default:
			d.DRAMRead++
			ch.CASReads++
			if w&(cache.EntryValid|cache.EntryDirty) == cache.EntryValid|cache.EntryDirty {
				d.TagMissDirty++
				d.NVRAMWrite++
				c.NVRAM.Write((uint64(cache.EntryTagOf(w))*sets + set) << mem.LineShift)
			} else {
				d.TagMissClean++
			}
			d.NVRAMRead++
			c.NVRAM.Read(a)
			// Fill write, then the data write of the incoming line.
			d.DRAMWrite += 2
			ch.CASWrites += 2
			entries[set] = cache.PackEntry(tag, cache.EntryValid|cache.EntryDirty)
		}
		set++
		if set == sets {
			set, tag = 0, tag+1
		}
		chIdx++
		if chIdx == nch {
			chIdx = 0
		}
		a += mem.Line
	}
}

// LLCWritebackReadRange services n interleaved (writeback, read) line
// pairs: for each i in [0, n), an LLCWrite of the line at waddr+i*64
// followed by an LLCRead of the line at raddr+i*64 — the stream an LLC
// filter emits in its streaming steady state, where every demand read
// evicts the dirty line `lag` lines behind it (waddr = raddr - lag*64).
// Counter results are byte-identical to the per-line interleave.
//
// When the write stream trails the read stream by 0 < lag < sets lines
// on a direct-mapped store with both allocate policies, the fold
// applies: after one predicated set wrap, every write hits the line its
// paired read installed lag pairs earlier (the Dirty Data Optimization
// case, or a plain tag hit with DDO disabled), and every read evicts
// the dirty line one set wrap back. Other configurations fall back to
// the per-line entry points.
//
//hot:entry batched streaming-store path, driven on pooled controllers
//alloc:free batched writeback+read path, 0 allocs/op by benchmark contract
func (c *Controller) LLCWritebackReadRange(waddr, raddr, n uint64) {
	if n == 0 {
		return
	}
	entries := c.Cache.DirectEntries()
	lag := (raddr >> mem.LineShift) - (waddr >> mem.LineShift)
	if entries == nil || !c.policy.ReadAllocate || !c.policy.WriteAllocate ||
		raddr <= waddr || lag == 0 || lag >= c.sets {
		for i := uint64(0); i < n; i++ {
			c.LLCWrite(waddr + i*mem.Line)
			c.LLCRead(raddr + i*mem.Line)
		}
		if c.sink != nil {
			c.maybeSample()
		}
		return
	}

	var d Counters
	d.LLCWrite = n
	d.LLCRead = n
	// Every read costs one DRAM data+tag read, hit or miss.
	d.DRAMRead = n
	c.DRAM.ReadRange(raddr, n)

	sets := c.sets
	head := min(n, sets)
	c.pairProbeWrap(entries, &d, waddr, raddr, head)
	rem := n - head
	if rem > 0 {
		wa := waddr + head*mem.Line
		ra := raddr + head*mem.Line
		// Write stream: every write hits the line its paired read
		// installed lag pairs ago and still owns.
		d.TagHit += rem
		if c.DisableDDO {
			d.DRAMRead += rem
			c.DRAM.ReadRange(wa, rem)
		} else {
			d.DDO += rem
		}
		d.DRAMWrite += rem
		c.DRAM.WriteRange(wa, rem)
		// Read stream: every probe evicts the dirty line installed one
		// set wrap back, writes it back, refills, and reinstalls.
		d.TagMissDirty += rem
		d.NVRAMWrite += rem
		c.NVRAM.WriteLineRun(ra-sets*mem.Line, rem)
		d.NVRAMRead += rem
		c.NVRAM.ReadLineRun(ra, rem)
		d.DRAMWrite += rem
		c.DRAM.WriteRange(ra, rem)
		// Final tag state. A set's last toucher is the read stream when
		// no write follows it (the trailing lag pairs), the write
		// stream when no read revisits the set (the trailing sets-lag
		// write lines); both stamp the tag of the line involved, since
		// a write's set was (re)installed by its own paired read. Sets
		// last touched inside the probe wrap already hold their state.
		gw := min(rem, sets-lag)
		sw, tw := c.Cache.Index(waddr + (n-gw)*mem.Line)
		c.Cache.StampSeqRun(sw, tw, gw, cache.EntryValid|cache.EntryDirty)
		gr := min(rem, lag)
		sr, tr := c.Cache.Index(raddr + (n-gr)*mem.Line)
		c.Cache.StampSeqRun(sr, tr, gr, cache.EntryValid|cache.EntryLLCOwned)
	}
	c.counters = c.counters.Add(d)
	if c.sink != nil {
		c.maybeSample()
	}
}

// pairProbeWrap services n interleaved (writeback, read) pairs (n <=
// sets) predicated against arbitrary tag state, folding each op to one
// packed-word load and store. The read stream's per-line DRAM data read
// is accounted by the caller for the whole range.
func (c *Controller) pairProbeWrap(entries []uint64, d *Counters, waddr, raddr, n uint64) {
	sets := c.sets
	nch := c.nch
	sw, tw := c.Cache.Index(waddr)
	cw := c.DRAM.ChannelIndex(waddr)
	sr, tr := c.Cache.Index(raddr)
	cr := c.DRAM.ChannelIndex(raddr)
	wa, ra := waddr, raddr
	for i := uint64(0); i < n; i++ {
		// Writeback op, LLCWrite semantics.
		w := entries[sw]
		ch := c.DRAM.ChannelAt(cw)
		hit := w&cache.EntryValid != 0 && cache.EntryTagOf(w) == tw
		switch {
		case hit && !c.DisableDDO && w&cache.EntryLLCOwned != 0:
			d.DDO++
			d.TagHit++
			d.DRAMWrite++
			ch.CASWrites++
			entries[sw] = (w | cache.EntryDirty) &^ cache.EntryLLCOwned
		case hit:
			d.DRAMRead++
			ch.CASReads++
			d.TagHit++
			d.DRAMWrite++
			ch.CASWrites++
			entries[sw] = (w | cache.EntryDirty) &^ cache.EntryLLCOwned
		default:
			d.DRAMRead++
			ch.CASReads++
			if w&(cache.EntryValid|cache.EntryDirty) == cache.EntryValid|cache.EntryDirty {
				d.TagMissDirty++
				d.NVRAMWrite++
				c.NVRAM.Write((uint64(cache.EntryTagOf(w))*sets + sw) << mem.LineShift)
			} else {
				d.TagMissClean++
			}
			d.NVRAMRead++
			c.NVRAM.Read(wa)
			d.DRAMWrite += 2
			ch.CASWrites += 2
			entries[sw] = cache.PackEntry(tw, cache.EntryValid|cache.EntryDirty)
		}
		// Demand read op, LLCRead semantics.
		w = entries[sr]
		if w&cache.EntryValid != 0 && cache.EntryTagOf(w) == tr {
			d.TagHit++
			entries[sr] = w | cache.EntryLLCOwned
		} else {
			if w&(cache.EntryValid|cache.EntryDirty) == cache.EntryValid|cache.EntryDirty {
				d.TagMissDirty++
				d.NVRAMWrite++
				c.NVRAM.Write((uint64(cache.EntryTagOf(w))*sets + sr) << mem.LineShift)
			} else {
				d.TagMissClean++
			}
			d.NVRAMRead++
			c.NVRAM.Read(ra)
			d.DRAMWrite++
			c.DRAM.ChannelAt(cr).CASWrites++
			entries[sr] = cache.PackEntry(tr, cache.EntryValid|cache.EntryLLCOwned)
		}
		sw++
		if sw == sets {
			sw, tw = 0, tw+1
		}
		sr++
		if sr == sets {
			sr, tr = 0, tr+1
		}
		cw++
		if cw == nch {
			cw = 0
		}
		cr++
		if cr == nch {
			cr = 0
		}
		wa += mem.Line
		ra += mem.Line
	}
}
