package imc

import (
	"testing"

	"twolm/internal/dram"
	"twolm/internal/mem"
	"twolm/internal/nvram"
	"twolm/internal/telemetry"
)

func newTestModules(t *testing.T) (*dram.Module, *nvram.Module) {
	t.Helper()
	d, err := dram.New(1, 48*mem.KiB)
	if err != nil {
		t.Fatal(err)
	}
	nv, err := nvram.New(1, 288*mem.KiB)
	if err != nil {
		t.Fatal(err)
	}
	return d, nv
}

// TestNewDefaultsToHardwarePolicy: New without options is the Cascade
// Lake hardware controller, and an explicit WithPolicy(HardwarePolicy())
// builds the identical configuration.
func TestNewDefaultsToHardwarePolicy(t *testing.T) {
	d, nv := newTestModules(t)
	c, err := New(d, nv)
	if err != nil {
		t.Fatal(err)
	}
	if c.Policy() != HardwarePolicy() {
		t.Errorf("default policy = %+v, want %+v", c.Policy(), HardwarePolicy())
	}
	d2, nv2 := newTestModules(t)
	explicit, err := New(d2, nv2, WithPolicy(HardwarePolicy()))
	if err != nil {
		t.Fatal(err)
	}
	if explicit.Policy() != c.Policy() {
		t.Errorf("explicit hardware policy = %+v, want %+v", explicit.Policy(), c.Policy())
	}
}

// TestWithTelemetryHook: a controller built with WithTelemetry records
// samples at demand boundaries from the range entry points, and
// FlushTelemetry captures the tail.
func TestWithTelemetryHook(t *testing.T) {
	d, nv := newTestModules(t)
	rec := telemetry.NewRecorder()
	c, err := New(d, nv, WithTelemetry(rec, 100))
	if err != nil {
		t.Fatal(err)
	}
	c.LLCReadRange(0, 250)
	if rec.Len() != 1 {
		t.Fatalf("after one 250-line range: %d samples, want 1", rec.Len())
	}
	if got := rec.Last().Demand; got != 250 {
		t.Errorf("sample demand = %d, want 250 (boundary crossed mid-range records at the range end)", got)
	}
	c.LLCWriteRange(0, 49)
	if rec.Len() != 1 {
		t.Error("sampled below the next boundary")
	}
	c.LLCWriteRange(0, 1)
	if rec.Len() != 2 {
		t.Error("boundary crossing at 300 demand lines not sampled")
	}
	c.LLCReadRange(0, 7)
	c.FlushTelemetry()
	if rec.Len() != 3 || rec.Last().Demand != 307 {
		t.Errorf("flush: len=%d last=%d, want 3 samples ending at 307", rec.Len(), rec.Last().Demand)
	}
	c.FlushTelemetry()
	if rec.Len() != 3 {
		t.Error("idle flush recorded a duplicate")
	}
}

// TestSnapshotMatchesCounters: the telemetry sample mirrors the
// counter snapshot field for field and carries per-channel CAS counts.
func TestSnapshotMatchesCounters(t *testing.T) {
	d, nv := newTestModules(t)
	c, err := New(d, nv)
	if err != nil {
		t.Fatal(err)
	}
	c.LLCReadRange(0, 1000)
	c.LLCWriteRange(0, 500)
	ctr := c.Counters()
	s := c.Snapshot()
	if s.Demand != ctr.Demand() || s.LLCRead != ctr.LLCRead || s.LLCWrite != ctr.LLCWrite ||
		s.DRAMRead != ctr.DRAMRead || s.DRAMWrite != ctr.DRAMWrite ||
		s.NVRAMRead != ctr.NVRAMRead || s.NVRAMWrite != ctr.NVRAMWrite ||
		s.TagHit != ctr.TagHit || s.TagMissClean != ctr.TagMissClean ||
		s.TagMissDirty != ctr.TagMissDirty || s.DDO != ctr.DDO {
		t.Errorf("snapshot %+v does not mirror counters %v", s, ctr)
	}
	if s.MediaReads != 0 || s.MediaWrites != 0 {
		t.Error("controller snapshots must not carry media counters")
	}
	var chTotal uint64
	for i := range s.ChannelReads {
		chTotal += s.ChannelReads[i] + s.ChannelWrites[i]
	}
	if chTotal != ctr.DRAMRead+ctr.DRAMWrite {
		t.Errorf("channel CAS total %d, want %d", chTotal, ctr.DRAMRead+ctr.DRAMWrite)
	}
}

// TestResetCountersRestartsSampling: after a reset the demand clock
// rewinds, and sampling restarts from the first boundary.
func TestResetCountersRestartsSampling(t *testing.T) {
	d, nv := newTestModules(t)
	rec := telemetry.NewRecorder()
	c, err := New(d, nv, WithTelemetry(rec, 100))
	if err != nil {
		t.Fatal(err)
	}
	c.LLCReadRange(0, 150)
	c.ResetCounters()
	c.LLCReadRange(0, 50)
	if rec.Len() != 1 {
		t.Fatalf("sample count after reset = %d, want 1 (no boundary crossed yet)", rec.Len())
	}
	c.LLCReadRange(0, 50)
	if rec.Len() != 2 || rec.Last().Demand != 100 {
		t.Errorf("post-reset boundary: len=%d last=%d, want sample at demand 100", rec.Len(), rec.Last().Demand)
	}
}
