package imc

import (
	"testing"

	"twolm/internal/dram"
	"twolm/internal/lfsr"
	"twolm/internal/mem"
	"twolm/internal/nvram"
)

// newRangePair builds two identically configured controllers for
// differential runs.
func newRangePair(t *testing.T, policy Policy) (perLine, batched *Controller) {
	t.Helper()
	build := func() *Controller {
		d, err := dram.New(6, 3*mem.MiB)
		if err != nil {
			t.Fatal(err)
		}
		n, err := nvram.New(6, 48*mem.MiB)
		if err != nil {
			t.Fatal(err)
		}
		c, err := New(d, n, WithPolicy(policy))
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	return build(), build()
}

// assertSameTraffic asserts byte-identical controller counters,
// per-channel CAS counts, and NVRAM interface/media counters.
func assertSameTraffic(t *testing.T, label string, perLine, batched *Controller) {
	t.Helper()
	if a, b := perLine.Counters(), batched.Counters(); a != b {
		t.Errorf("%s: counters diverge\n per-line: %v\n batched:  %v", label, a, b)
	}
	ac, bc := perLine.DRAM.ChannelCounters(), batched.DRAM.ChannelCounters()
	for i := range ac {
		if ac[i] != bc[i] {
			t.Errorf("%s: channel %d CAS diverges: per-line %+v, batched %+v", label, i, ac[i], bc[i])
		}
	}
	type media struct{ r, w, mr, mw uint64 }
	am := media{perLine.NVRAM.TotalReads(), perLine.NVRAM.TotalWrites(),
		perLine.NVRAM.TotalMediaReads(), perLine.NVRAM.TotalMediaWrites()}
	bm := media{batched.NVRAM.TotalReads(), batched.NVRAM.TotalWrites(),
		batched.NVRAM.TotalMediaReads(), batched.NVRAM.TotalMediaWrites()}
	if am != bm {
		t.Errorf("%s: NVRAM media counters diverge: per-line %+v, batched %+v", label, am, bm)
	}
}

// rangeTestPolicies is the policy matrix of the acceptance criteria.
func rangeTestPolicies() map[string]Policy {
	hw := HardwarePolicy()
	noWA := hw
	noWA.WriteAllocate = false
	noRA := hw
	noRA.ReadAllocate = false
	noDDO := hw
	noDDO.DisableDDO = true
	ways4 := hw
	ways4.Ways = 4
	return map[string]Policy{
		"hardware": hw, "no-write-allocate": noWA,
		"no-read-allocate": noRA, "ddo-off": noDDO, "4-way": ways4,
	}
}

// TestRangeMatchesPerLine replays the same interleaved read/write
// chunk sequence through per-line LLCRead/LLCWrite and through the
// batched range entry points and demands exactly equal traffic, for
// every policy of the acceptance matrix.
func TestRangeMatchesPerLine(t *testing.T) {
	const chunk = 37 // lines per range call; odd so chunks straddle channels
	const span = 96 * mem.KiB
	for name, policy := range rangeTestPolicies() {
		t.Run(name, func(t *testing.T) {
			perLine, batched := newRangePair(t, policy)
			// Alternate read and write chunks over a span exceeding the
			// DRAM cache so hits, clean misses, and dirty misses all
			// occur; a second pass hits DDO-eligible lines.
			for pass := 0; pass < 2; pass++ {
				write := pass == 1
				for base := uint64(0); base+chunk*mem.Line <= span; base += chunk * mem.Line {
					if write {
						for a := base; a < base+chunk*mem.Line; a += mem.Line {
							perLine.LLCWrite(a)
						}
						batched.LLCWriteRange(base, chunk)
					} else {
						for a := base; a < base+chunk*mem.Line; a += mem.Line {
							perLine.LLCRead(a)
						}
						batched.LLCReadRange(base, chunk)
					}
					write = !write
				}
			}
			assertSameTraffic(t, name, perLine, batched)
		})
	}
}

// TestRangeRMWPattern drives the read-then-writeback pattern that
// exercises the DDO path through the range entry points: every chunk
// is read (acquiring LLC ownership) and then written back.
func TestRangeRMWPattern(t *testing.T) {
	const chunk = 64
	const span = 64 * mem.KiB
	for name, policy := range rangeTestPolicies() {
		t.Run(name, func(t *testing.T) {
			perLine, batched := newRangePair(t, policy)
			for base := uint64(0); base+chunk*mem.Line <= span; base += chunk * mem.Line {
				for a := base; a < base+chunk*mem.Line; a += mem.Line {
					perLine.LLCRead(a)
				}
				for a := base; a < base+chunk*mem.Line; a += mem.Line {
					perLine.LLCWrite(a)
				}
				batched.LLCReadRange(base, chunk)
				batched.LLCWriteRange(base, chunk)
			}
			assertSameTraffic(t, name, perLine, batched)
		})
	}
}

// TestRangeAfterRandomState scatters LFSR-random per-line traffic
// first so the batched calls run against a populated, partially dirty
// cache rather than a cold one.
func TestRangeAfterRandomState(t *testing.T) {
	const lines = 1 << 12
	for name, policy := range rangeTestPolicies() {
		t.Run(name, func(t *testing.T) {
			perLine, batched := newRangePair(t, policy)
			err := lfsr.Sequence(lines, 0xC0DE, func(idx uint64) {
				addr := idx * mem.Line
				if idx&1 == 0 {
					perLine.LLCRead(addr)
					batched.LLCRead(addr)
				} else {
					perLine.LLCWrite(addr)
					batched.LLCWrite(addr)
				}
			})
			if err != nil {
				t.Fatal(err)
			}
			const chunk = 113
			for base := uint64(0); base+chunk*mem.Line <= lines*mem.Line; base += chunk * mem.Line {
				for a := base; a < base+chunk*mem.Line; a += mem.Line {
					perLine.LLCRead(a)
				}
				batched.LLCReadRange(base, chunk)
				for a := base; a < base+chunk*mem.Line; a += mem.Line {
					perLine.LLCWrite(a)
				}
				batched.LLCWriteRange(base, chunk)
			}
			assertSameTraffic(t, name, perLine, batched)
		})
	}
}

// TestRangeZeroLines pins that a zero-length range is a no-op.
func TestRangeZeroLines(t *testing.T) {
	perLine, batched := newRangePair(t, HardwarePolicy())
	batched.LLCReadRange(0, 0)
	batched.LLCWriteRange(0, 0)
	assertSameTraffic(t, "zero", perLine, batched)
}
