package imc

import (
	"math/rand"
	"testing"

	"twolm/internal/cache"
	"twolm/internal/dram"
	"twolm/internal/mem"
	"twolm/internal/nvram"
)

// newController builds a controller with a cacheCapacity-byte DRAM
// cache over a large NVRAM space.
func newController(t *testing.T, cacheCapacity uint64) *Controller {
	t.Helper()
	d, err := dram.New(6, cacheCapacity)
	if err != nil {
		t.Fatal(err)
	}
	n, err := nvram.New(6, 64*cacheCapacity)
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(d, n)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// delta runs fn and returns the counter increments it caused.
func delta(c *Controller, fn func()) Counters {
	before := c.Counters()
	fn()
	return c.Counters().Sub(before)
}

// alias returns an address mapping to the same set as addr with a
// different tag.
func alias(c *Controller, addr uint64, n uint64) uint64 {
	return addr + n*c.Cache.Capacity()
}

// --- Table I: exact per-scenario transaction counts -------------------

// TestTable1ReadHit: LLC read hit = 1 DRAM read, amplification 1.
func TestTable1ReadHit(t *testing.T) {
	c := newController(t, mem.KiB)
	addr := uint64(2 * mem.Line)
	c.LLCRead(addr) // prime (miss)
	d := delta(c, func() {
		if res := c.LLCRead(addr); res != cache.Hit {
			t.Fatalf("expected hit, got %v", res)
		}
	})
	want := Counters{DRAMRead: 1, TagHit: 1, LLCRead: 1}
	if d != want {
		t.Errorf("read hit delta = {%v}, want {%v}", d, want)
	}
	if amp := d.Amplification(); amp != 1 {
		t.Errorf("amplification = %.1f, want 1", amp)
	}
}

// TestTable1ReadMissClean: 1 DRAM read + 1 NVRAM read + 1 DRAM write,
// amplification 3.
func TestTable1ReadMissClean(t *testing.T) {
	c := newController(t, mem.KiB)
	addr := uint64(2 * mem.Line)
	d := delta(c, func() {
		if res := c.LLCRead(addr); res != cache.MissClean {
			t.Fatalf("expected clean miss, got %v", res)
		}
	})
	want := Counters{DRAMRead: 1, DRAMWrite: 1, NVRAMRead: 1, TagMissClean: 1, LLCRead: 1}
	if d != want {
		t.Errorf("clean read miss delta = {%v}, want {%v}", d, want)
	}
	if amp := d.Amplification(); amp != 3 {
		t.Errorf("amplification = %.1f, want 3", amp)
	}
}

// TestTable1ReadMissDirty: clean-miss traffic + 1 NVRAM writeback,
// amplification 4.
func TestTable1ReadMissDirty(t *testing.T) {
	c := newController(t, mem.KiB)
	addr := uint64(2 * mem.Line)
	c.LLCWrite(addr) // prime a dirty occupant
	d := delta(c, func() {
		if res := c.LLCRead(alias(c, addr, 1)); res != cache.MissDirty {
			t.Fatalf("expected dirty miss, got %v", res)
		}
	})
	want := Counters{DRAMRead: 1, DRAMWrite: 1, NVRAMRead: 1, NVRAMWrite: 1, TagMissDirty: 1, LLCRead: 1}
	if d != want {
		t.Errorf("dirty read miss delta = {%v}, want {%v}", d, want)
	}
	if amp := d.Amplification(); amp != 4 {
		t.Errorf("amplification = %.1f, want 4", amp)
	}
}

// TestTable1WriteHit: a nontemporal-store hit (no prior LLC ownership)
// costs a tag-check DRAM read plus the data write, amplification 2.
func TestTable1WriteHit(t *testing.T) {
	c := newController(t, mem.KiB)
	addr := uint64(2 * mem.Line)
	c.LLCWrite(addr) // prime: dirty write miss inserts the line
	d := delta(c, func() {
		res, ddo := c.LLCWrite(addr)
		if res != cache.Hit || ddo {
			t.Fatalf("expected plain hit, got %v ddo=%v", res, ddo)
		}
	})
	want := Counters{DRAMRead: 1, DRAMWrite: 1, TagHit: 1, LLCWrite: 1}
	if d != want {
		t.Errorf("write hit delta = {%v}, want {%v}", d, want)
	}
	if amp := d.Amplification(); amp != 2 {
		t.Errorf("amplification = %.1f, want 2", amp)
	}
}

// TestTable1WriteMissClean: tag check + insert-on-miss (NVRAM read +
// DRAM write) + the actual data write: 1 DRAM read, 2 DRAM writes,
// 1 NVRAM read — amplification 4.
func TestTable1WriteMissClean(t *testing.T) {
	c := newController(t, mem.KiB)
	addr := uint64(2 * mem.Line)
	d := delta(c, func() {
		res, ddo := c.LLCWrite(addr)
		if res != cache.MissClean || ddo {
			t.Fatalf("expected clean miss, got %v ddo=%v", res, ddo)
		}
	})
	want := Counters{DRAMRead: 1, DRAMWrite: 2, NVRAMRead: 1, TagMissClean: 1, LLCWrite: 1}
	if d != want {
		t.Errorf("clean write miss delta = {%v}, want {%v}", d, want)
	}
	if amp := d.Amplification(); amp != 4 {
		t.Errorf("amplification = %.1f, want 4", amp)
	}
}

// TestTable1WriteMissDirty: the worst case — 5 memory accesses for one
// demand store ("a single demand request can require up to 5 memory
// accesses").
func TestTable1WriteMissDirty(t *testing.T) {
	c := newController(t, mem.KiB)
	addr := uint64(2 * mem.Line)
	c.LLCWrite(addr) // prime dirty occupant
	d := delta(c, func() {
		res, ddo := c.LLCWrite(alias(c, addr, 1))
		if res != cache.MissDirty || ddo {
			t.Fatalf("expected dirty miss, got %v ddo=%v", res, ddo)
		}
	})
	want := Counters{DRAMRead: 1, DRAMWrite: 2, NVRAMRead: 1, NVRAMWrite: 1, TagMissDirty: 1, LLCWrite: 1}
	if d != want {
		t.Errorf("dirty write miss delta = {%v}, want {%v}", d, want)
	}
	if amp := d.Amplification(); amp != 5 {
		t.Errorf("amplification = %.1f, want 5", amp)
	}
}

// TestTable1DDO: a writeback of a line the LLC acquired via a read
// skips the tag check — 1 DRAM write, amplification 1.
func TestTable1DDO(t *testing.T) {
	c := newController(t, mem.KiB)
	addr := uint64(2 * mem.Line)
	c.LLCRead(addr) // the RFO/load: grants LLC ownership
	d := delta(c, func() {
		res, ddo := c.LLCWrite(addr)
		if res != cache.Hit || !ddo {
			t.Fatalf("expected DDO hit, got %v ddo=%v", res, ddo)
		}
	})
	want := Counters{DRAMWrite: 1, TagHit: 1, DDO: 1, LLCWrite: 1}
	if d != want {
		t.Errorf("DDO delta = {%v}, want {%v}", d, want)
	}
	if amp := d.Amplification(); amp != 1 {
		t.Errorf("amplification = %.1f, want 1", amp)
	}
}

// TestDDOConsumedByWrite: a second writeback without a new read must
// pay the tag check again (ownership was released).
func TestDDOConsumedByWrite(t *testing.T) {
	c := newController(t, mem.KiB)
	addr := uint64(2 * mem.Line)
	c.LLCRead(addr)
	c.LLCWrite(addr) // DDO
	d := delta(c, func() {
		_, ddo := c.LLCWrite(addr)
		if ddo {
			t.Fatal("second writeback should not get DDO")
		}
	})
	if d.DRAMRead != 1 {
		t.Errorf("second writeback skipped the tag check: %v", d)
	}
}

// TestDDOInvalidatedByConflict: if the set is re-allocated between the
// read and the writeback, the optimization must not apply.
func TestDDOInvalidatedByConflict(t *testing.T) {
	c := newController(t, mem.KiB)
	addr := uint64(2 * mem.Line)
	c.LLCRead(addr)
	c.LLCRead(alias(c, addr, 1)) // conflict evicts addr
	d := delta(c, func() {
		res, ddo := c.LLCWrite(addr)
		if ddo {
			t.Fatal("DDO applied after the set was re-allocated")
		}
		if res == cache.Hit {
			t.Fatal("stale line still resident")
		}
	})
	if d.DRAMRead != 1 {
		t.Errorf("expected a tag check, got %v", d)
	}
}

// TestDDOStaleOwnershipAfterWriteConflict: the paper requires DDO only
// when the set "has not been re-allocated since" the LLC acquired the
// line. Here the re-allocation comes from a conflicting *write* miss:
// the later writeback of the evicted line must miss and pay the tag
// check, never the DDO fast path.
func TestDDOStaleOwnershipAfterWriteConflict(t *testing.T) {
	c := newController(t, mem.KiB)
	addr := uint64(2 * mem.Line)
	c.LLCRead(addr) // LLC acquires addr; ownership granted
	// Conflicting write miss re-allocates the set (install-on-miss).
	if res, _ := c.LLCWrite(alias(c, addr, 1)); res == cache.Hit {
		t.Fatal("conflicting write did not miss")
	}
	d := delta(c, func() {
		res, ddo := c.LLCWrite(addr)
		if ddo {
			t.Fatal("DDO applied to a line evicted by a conflicting install")
		}
		if res == cache.Hit {
			t.Fatal("evicted line still probes as resident")
		}
	})
	if d.DRAMRead != 1 {
		t.Errorf("writeback of evicted line skipped the tag check: %v", d)
	}
	if d.DDO != 0 {
		t.Errorf("DDO counter incremented: %v", d)
	}
}

// TestNoReadAllocateDoesNotGrantOwnership: with ReadAllocate off, a
// read miss forwards from NVRAM without installing — it must not mark
// the probe handle (some *other* resident line's slot) as LLC-owned,
// or that occupant's next writeback would falsely skip its tag check.
func TestNoReadAllocateDoesNotGrantOwnership(t *testing.T) {
	p := HardwarePolicy()
	p.ReadAllocate = false
	c := newPolicyController(t, mem.KiB, p)
	occupant := uint64(2 * mem.Line)
	c.LLCWrite(occupant) // write-allocate installs it, not LLC-owned
	// Uncached read of an alias probes the occupant's slot as victim.
	c.LLCRead(alias(c, occupant, 1))
	d := delta(c, func() {
		res, ddo := c.LLCWrite(occupant)
		if ddo {
			t.Fatal("occupant writeback took DDO after an unrelated no-allocate read")
		}
		if res != cache.Hit {
			t.Fatalf("occupant should still be resident, got %v", res)
		}
	})
	if d.DRAMRead != 1 {
		t.Errorf("occupant writeback skipped the tag check: %v", d)
	}
}

// TestDisableDDO: the ablation switch forces the full write-hit path.
func TestDisableDDO(t *testing.T) {
	c := newController(t, mem.KiB)
	c.DisableDDO = true
	addr := uint64(2 * mem.Line)
	c.LLCRead(addr)
	d := delta(c, func() {
		_, ddo := c.LLCWrite(addr)
		if ddo {
			t.Fatal("DDO fired while disabled")
		}
	})
	want := Counters{DRAMRead: 1, DRAMWrite: 1, TagHit: 1, LLCWrite: 1}
	if d != want {
		t.Errorf("disabled-DDO write hit = {%v}, want {%v}", d, want)
	}
}

// TestRMWSequenceMatchesFig4c: dirty read miss followed by a DDO
// writeback — the paper's Figure 4c scenario: per demand pair,
// 1 DRAM read, 2 DRAM writes, 1 NVRAM read, 1 NVRAM write.
func TestRMWSequenceMatchesFig4c(t *testing.T) {
	c := newController(t, mem.KiB)
	// Prime: make the whole cache dirty.
	lines := c.Cache.Sets()
	for i := uint64(0); i < lines; i++ {
		c.LLCWrite(i * mem.Line)
	}
	// RMW over an aliasing array: load (dirty miss) ... writeback (DDO).
	d := delta(c, func() {
		for i := uint64(0); i < lines; i++ {
			addr := alias(c, i*mem.Line, 1)
			if res := c.LLCRead(addr); res != cache.MissDirty {
				t.Fatalf("line %d: expected dirty read miss, got %v", i, res)
			}
			if _, ddo := c.LLCWrite(addr); !ddo {
				t.Fatalf("line %d: expected DDO writeback", i)
			}
		}
	})
	n := lines
	want := Counters{
		DRAMRead: n, DRAMWrite: 2 * n, NVRAMRead: n, NVRAMWrite: n,
		TagMissDirty: n, TagHit: n, DDO: n, LLCRead: n, LLCWrite: n,
	}
	if d != want {
		t.Errorf("RMW deltas = {%v}, want {%v}", d, want)
	}
}

// --- consistency properties -------------------------------------------

// TestRandomStreamInvariants drives a random mix of reads and writes
// and checks global counter invariants that must hold for any stream.
func TestRandomStreamInvariants(t *testing.T) {
	c := newController(t, 4*mem.KiB)
	rng := rand.New(rand.NewSource(42))
	space := 16 * c.Cache.Capacity()
	const ops = 200000
	for i := 0; i < ops; i++ {
		addr := (rng.Uint64() % (space / mem.Line)) * mem.Line
		if rng.Intn(2) == 0 {
			c.LLCRead(addr)
		} else {
			c.LLCWrite(addr)
		}
	}
	ctr := c.Counters()

	if got := ctr.Demand(); got != ops {
		t.Errorf("demand = %d, want %d", got, ops)
	}
	// Every demand produces exactly one tag event.
	if got := ctr.TagAccesses(); got != ops {
		t.Errorf("tag events = %d, want %d", got, ops)
	}
	// NVRAM reads == misses (insert-on-miss).
	if ctr.NVRAMRead != ctr.TagMissClean+ctr.TagMissDirty {
		t.Errorf("NVRAM reads %d != misses %d", ctr.NVRAMRead, ctr.TagMissClean+ctr.TagMissDirty)
	}
	// NVRAM writes == dirty misses (plus nothing else pre-flush).
	if ctr.NVRAMWrite != ctr.TagMissDirty {
		t.Errorf("NVRAM writes %d != dirty misses %d", ctr.NVRAMWrite, ctr.TagMissDirty)
	}
	// DRAM device counters agree with IMC counters.
	if c.DRAM.TotalReads() != ctr.DRAMRead || c.DRAM.TotalWrites() != ctr.DRAMWrite {
		t.Errorf("DRAM device counters diverge from IMC: dev %d/%d vs imc %d/%d",
			c.DRAM.TotalReads(), c.DRAM.TotalWrites(), ctr.DRAMRead, ctr.DRAMWrite)
	}
	if c.NVRAM.TotalReads() != ctr.NVRAMRead || c.NVRAM.TotalWrites() != ctr.NVRAMWrite {
		t.Errorf("NVRAM device counters diverge from IMC")
	}
	// Amplification is bounded by Table I's extremes.
	if amp := ctr.Amplification(); amp < 1 || amp > 5 {
		t.Errorf("amplification %.2f outside [1, 5]", amp)
	}
}

// TestFlushAllWritesBackDirty: flushing writes exactly the dirty lines.
func TestFlushAllWritesBackDirty(t *testing.T) {
	c := newController(t, mem.KiB)
	for i := uint64(0); i < 8; i++ {
		c.LLCWrite(i * mem.Line) // dirty
	}
	for i := uint64(8); i < 12; i++ {
		c.LLCRead(i * mem.Line) // clean
	}
	dirty := c.Cache.DirtyLines()
	before := c.Counters().NVRAMWrite
	c.FlushAll()
	wrote := c.Counters().NVRAMWrite - before
	if wrote != dirty {
		t.Errorf("flush wrote %d lines, want %d", wrote, dirty)
	}
	if c.Cache.ValidLines() != 0 {
		t.Error("flush left valid lines")
	}
}

// TestCountersAddSub: Add and Sub are inverses.
func TestCountersAddSub(t *testing.T) {
	a := Counters{DRAMRead: 5, NVRAMWrite: 3, TagHit: 2, LLCRead: 7, DDO: 1}
	b := Counters{DRAMRead: 1, DRAMWrite: 2, TagMissClean: 4, LLCWrite: 2}
	if got := a.Add(b).Sub(b); got != a {
		t.Errorf("Add/Sub round trip failed: %v", got)
	}
}

// TestCountersSubClampsUnderflow: interval snapshots taken out of order
// (earlier minus later) must clamp at zero, not wrap to near-2^64
// values that silently corrupt every derived rate.
func TestCountersSubClampsUnderflow(t *testing.T) {
	earlier := Counters{DRAMRead: 10, NVRAMWrite: 1, TagHit: 5, LLCRead: 8}
	later := Counters{DRAMRead: 25, DRAMWrite: 4, NVRAMWrite: 3, TagHit: 9, TagMissClean: 2, LLCRead: 15, LLCWrite: 2}

	// Swapped-snapshot delta: every field clamps at zero.
	if got := earlier.Sub(later); got != (Counters{}) {
		t.Errorf("swapped-snapshot delta = {%v}, want all-zero", got)
	}
	// Mixed case: only the underflowing field clamps.
	a := Counters{DRAMRead: 5, DRAMWrite: 1}
	b := Counters{DRAMRead: 2, DRAMWrite: 7}
	got := a.Sub(b)
	want := Counters{DRAMRead: 3, DRAMWrite: 0}
	if got != want {
		t.Errorf("mixed underflow delta = {%v}, want {%v}", got, want)
	}
	// The correct ordering is unaffected.
	if got := later.Sub(earlier); got.DRAMRead != 15 || got.LLCRead != 7 {
		t.Errorf("ordered delta wrong: {%v}", got)
	}
}

func TestHitRate(t *testing.T) {
	c := Counters{TagHit: 3, TagMissClean: 1, TagMissDirty: 0}
	if hr := c.HitRate(); hr != 0.75 {
		t.Errorf("hit rate = %.2f, want 0.75", hr)
	}
	if (Counters{}).HitRate() != 0 {
		t.Error("empty counters hit rate should be 0")
	}
	if (Counters{}).Amplification() != 0 {
		t.Error("empty counters amplification should be 0")
	}
}

func TestResetCounters(t *testing.T) {
	c := newController(t, mem.KiB)
	c.LLCWrite(0)
	c.ResetCounters()
	if c.Counters() != (Counters{}) {
		t.Error("ResetCounters left nonzero counters")
	}
	// Cache state must survive: the next write is still a hit.
	if res, _ := c.LLCWrite(0); res != cache.Hit {
		t.Error("ResetCounters disturbed cache contents")
	}
}
