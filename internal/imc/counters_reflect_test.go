package imc

import (
	"reflect"
	"strings"
	"testing"
)

// These tests are the runtime half of the counterdrift static check:
// they walk the Counters struct with reflection, so a field added
// without updating Add/Sub/String fails here even if the linter never
// runs.

// TestCountersFieldsAreUint64 pins the struct shape the reflection
// probes below rely on: every field is an exported uint64.
func TestCountersFieldsAreUint64(t *testing.T) {
	rt := reflect.TypeOf(Counters{})
	if rt.NumField() == 0 {
		t.Fatal("Counters has no fields")
	}
	for i := 0; i < rt.NumField(); i++ {
		f := rt.Field(i)
		if !f.IsExported() {
			t.Errorf("field %s is unexported; counters must be externally mergeable", f.Name)
		}
		if f.Type.Kind() != reflect.Uint64 {
			t.Errorf("field %s is %s, want uint64", f.Name, f.Type)
		}
	}
}

// setField returns a Counters with only field i set to v.
func setField(t *testing.T, i int, v uint64) Counters {
	t.Helper()
	var c Counters
	reflect.ValueOf(&c).Elem().Field(i).SetUint(v)
	return c
}

// field reads field i of c.
func field(c Counters, i int) uint64 {
	return reflect.ValueOf(c).Field(i).Uint()
}

// TestAddCoversEveryField: for each field in turn, zero.Add(one-hot)
// must carry exactly that field through — a field Add forgets comes
// back zero and a field Add double-counts comes back doubled.
func TestAddCoversEveryField(t *testing.T) {
	rt := reflect.TypeOf(Counters{})
	for i := 0; i < rt.NumField(); i++ {
		name := rt.Field(i).Name
		got := Counters{}.Add(setField(t, i, 7))
		for j := 0; j < rt.NumField(); j++ {
			want := uint64(0)
			if j == i {
				want = 7
			}
			if v := field(got, j); v != want {
				t.Errorf("Add(one-hot %s): field %s = %d, want %d",
					name, rt.Field(j).Name, v, want)
			}
		}
	}
}

// TestSubInvertsAddPerField: (a.Add(b)).Sub(b) == a with every field
// populated distinctly, so a drifting field cannot cancel out.
func TestSubInvertsAddPerField(t *testing.T) {
	rt := reflect.TypeOf(Counters{})
	var a, b Counters
	av, bv := reflect.ValueOf(&a).Elem(), reflect.ValueOf(&b).Elem()
	for i := 0; i < rt.NumField(); i++ {
		av.Field(i).SetUint(uint64(100 + i))
		bv.Field(i).SetUint(uint64(1 + i))
	}
	if got := a.Add(b).Sub(b); got != a {
		t.Errorf("a.Add(b).Sub(b) = %+v, want %+v", got, a)
	}
	// Sub must also touch each field individually.
	for i := 0; i < rt.NumField(); i++ {
		one := setField(t, i, 3)
		if got := one.Sub(one); got != (Counters{}) {
			t.Errorf("one-hot %s: c.Sub(c) = %+v, want zero", rt.Field(i).Name, got)
		}
	}
}

// TestStringCoversEveryField: flipping any single field must change
// the String rendering, otherwise a counter is invisible in reports.
func TestStringCoversEveryField(t *testing.T) {
	rt := reflect.TypeOf(Counters{})
	base := Counters{}.String()
	for i := 0; i < rt.NumField(); i++ {
		name := rt.Field(i).Name
		if s := setField(t, i, 99).String(); s == base {
			t.Errorf("String() does not reflect field %s", name)
		} else if !strings.Contains(s, "99") {
			t.Errorf("String() with %s=99 does not render the value: %q", name, s)
		}
	}
}
