package imc

import (
	"math/rand"
	"testing"

	"twolm/internal/mem"
)

// refModel is an independent, deliberately naive reimplementation of
// the Table I bookkeeping: a map-based direct-mapped cache that
// derives every counter from first principles. The production
// controller is differential-tested against it on random streams —
// two implementations agreeing on millions of events is strong
// evidence both encode the paper's Table I correctly.
type refModel struct {
	sets    uint64
	tags    map[uint64]uint64 // set -> resident line number
	dirty   map[uint64]bool
	owned   map[uint64]bool
	counter Counters
}

func newRefModel(capacity uint64) *refModel {
	return &refModel{
		sets:  capacity / mem.Line,
		tags:  make(map[uint64]uint64),
		dirty: make(map[uint64]bool),
		owned: make(map[uint64]bool),
	}
}

func (r *refModel) classify(line uint64) (set uint64, hit, dirtyMiss bool) {
	set = line % r.sets
	resident, ok := r.tags[set]
	if ok && resident == line {
		return set, true, false
	}
	return set, false, ok && r.dirty[set]
}

func (r *refModel) fill(set, line uint64) {
	if r.dirty[set] {
		r.counter.NVRAMWrite++
	}
	r.counter.NVRAMRead++
	r.counter.DRAMWrite++
	r.tags[set] = line
	r.dirty[set] = false
	r.owned[set] = false
}

func (r *refModel) read(addr uint64) {
	line := addr >> mem.LineShift
	r.counter.LLCRead++
	r.counter.DRAMRead++
	set, hit, dirtyMiss := r.classify(line)
	switch {
	case hit:
		r.counter.TagHit++
	case dirtyMiss:
		r.counter.TagMissDirty++
		r.fill(set, line)
	default:
		r.counter.TagMissClean++
		r.fill(set, line)
	}
	r.owned[set] = true
}

func (r *refModel) write(addr uint64) {
	line := addr >> mem.LineShift
	r.counter.LLCWrite++
	set, hit, dirtyMiss := r.classify(line)
	if hit && r.owned[set] {
		r.counter.DDO++
		r.counter.TagHit++
		r.counter.DRAMWrite++
		r.dirty[set] = true
		r.owned[set] = false
		return
	}
	r.counter.DRAMRead++ // tag check
	switch {
	case hit:
		r.counter.TagHit++
	case dirtyMiss:
		r.counter.TagMissDirty++
		r.fill(set, line)
	default:
		r.counter.TagMissClean++
		r.fill(set, line)
	}
	r.counter.DRAMWrite++
	r.dirty[set] = true
	r.owned[set] = false
}

// TestDifferentialAgainstReference drives both implementations with
// identical random streams across several cache sizes and compares
// every counter.
func TestDifferentialAgainstReference(t *testing.T) {
	for _, capacity := range []uint64{mem.KiB, 8 * mem.KiB, 64 * mem.KiB} {
		ctrl := newController(t, capacity)
		ref := newRefModel(capacity)
		rng := rand.New(rand.NewSource(int64(capacity)))
		space := 8 * capacity
		const ops = 300000
		for i := 0; i < ops; i++ {
			addr := (rng.Uint64() % (space / mem.Line)) * mem.Line
			if rng.Intn(3) == 0 {
				ctrl.LLCWrite(addr)
				ref.write(addr)
			} else {
				ctrl.LLCRead(addr)
				ref.read(addr)
			}
			if i%50000 == 0 {
				if got, want := ctrl.Counters(), ref.counter; got != want {
					t.Fatalf("capacity %d, op %d: divergence\n ctrl: %v\n ref:  %v",
						capacity, i, got, want)
				}
			}
		}
		if got, want := ctrl.Counters(), ref.counter; got != want {
			t.Fatalf("capacity %d: final divergence\n ctrl: %v\n ref:  %v", capacity, got, want)
		}
	}
}

// TestDifferentialSequentialStreams covers the structured patterns the
// benchmarks use (ascending read, write, alternating) where off-by-one
// set-index bugs would hide from random testing.
func TestDifferentialSequentialStreams(t *testing.T) {
	capacity := uint64(4 * mem.KiB)
	ctrl := newController(t, capacity)
	ref := newRefModel(capacity)
	span := 4 * capacity
	// Pass 1: sequential reads; pass 2: sequential writes; pass 3:
	// read-then-write per line.
	for a := uint64(0); a < span; a += mem.Line {
		ctrl.LLCRead(a)
		ref.read(a)
	}
	for a := uint64(0); a < span; a += mem.Line {
		ctrl.LLCWrite(a)
		ref.write(a)
	}
	for a := uint64(0); a < span; a += mem.Line {
		ctrl.LLCRead(a)
		ref.read(a)
		ctrl.LLCWrite(a)
		ref.write(a)
	}
	if got, want := ctrl.Counters(), ref.counter; got != want {
		t.Fatalf("sequential divergence\n ctrl: %v\n ref:  %v", got, want)
	}
}
