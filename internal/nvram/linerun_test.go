package nvram

import (
	"fmt"
	"testing"

	"twolm/internal/lfsr"
	"twolm/internal/mem"
)

// newLineRunPair builds two identically configured modules for
// differential runs of the bulk line-run entry points.
func newLineRunPair(t *testing.T, dimms int) (perCall, bulk *Module) {
	t.Helper()
	build := func() *Module {
		m, err := New(dimms, 48*mem.MiB)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	return build(), build()
}

// assertSameModule compares every per-DIMM interface and media counter.
func assertSameModule(t *testing.T, label string, perCall, bulk *Module) {
	t.Helper()
	a, b := moduleCounters(perCall), moduleCounters(bulk)
	if a != b {
		t.Errorf("%s: counters diverge: per-call %v, bulk %v", label, a, b)
	}
	for i := 0; i < perCall.DIMMs(); i++ {
		x, y := perCall.DIMMAt(i), bulk.DIMMAt(i)
		got := [4]uint64{x.Reads, x.Writes, x.MediaReads, x.MediaWrites}
		want := [4]uint64{y.Reads, y.Writes, y.MediaReads, y.MediaWrites}
		if got != want {
			t.Errorf("%s: DIMM %d diverges: per-call %v, bulk %v", label, i, got, want)
		}
	}
}

// lineRunCases sweeps run lengths and bases across chunk and media
// block boundaries, including unaligned bases (a line's chunk and block
// are those of its start address, so sub-line offsets must not shift
// the accounting).
func lineRunCases() []struct{ addr, n uint64 } {
	return []struct{ addr, n uint64 }{
		{0, 1},
		{0, 3},
		{0, 64},                       // exactly one 4 KiB chunk
		{0, 65},                       // one line into the next chunk
		{0, 1024},                     // many chunks, all DIMMs
		{3 * mem.Line, 4},             // inside one media block
		{4096 - mem.Line, 2},          // straddles a chunk boundary
		{4096 - mem.Line, 130},        // crosses two boundaries
		{5*4096 + 7*mem.Line, 500},    // offset base, long run
		{24, 64},                      // sub-line offset
		{4096 - mem.Line + 40, 128},   // sub-line offset straddling chunks
		{12345, 333},                  // arbitrary misalignment
		{7 * mem.MiB, 4096},           // deep base, 64 chunks
		{mem.MiB + 256 - mem.Line, 8}, // straddles a media block edge
	}
}

// TestReadLineRunMatchesPerCall proves ReadLineRun is byte-identical to
// per-call Read over each case, both from cold state and with the read
// memo pre-seeded by earlier traffic.
func TestReadLineRunMatchesPerCall(t *testing.T) {
	for _, dimms := range []int{1, 6} {
		for _, seeded := range []bool{false, true} {
			t.Run(fmt.Sprintf("dimms=%d/seeded=%v", dimms, seeded), func(t *testing.T) {
				perCall, bulk := newLineRunPair(t, dimms)
				for _, c := range lineRunCases() {
					if seeded {
						// Leave the memo pointing at (or near) the run's
						// first block so the b0 discount path triggers.
						perCall.Read(c.addr)
						bulk.Read(c.addr)
					}
					for i := uint64(0); i < c.n; i++ {
						perCall.Read(c.addr + i*mem.Line)
					}
					bulk.ReadLineRun(c.addr, c.n)
				}
				bulk.ReadLineRun(0, 0) // no-op
				assertSameModule(t, "read", perCall, bulk)
			})
		}
	}
}

// TestWriteLineRunMatchesPerCall proves WriteLineRun is byte-identical
// to per-call Write — including the write-combining ring, its eviction
// order, and the merge memo — from cold state and against a ring primed
// with LFSR-random blocks (so merges against pre-run residents occur).
func TestWriteLineRunMatchesPerCall(t *testing.T) {
	for _, dimms := range []int{1, 6} {
		for _, primed := range []bool{false, true} {
			t.Run(fmt.Sprintf("dimms=%d/primed=%v", dimms, primed), func(t *testing.T) {
				perCall, bulk := newLineRunPair(t, dimms)
				for _, c := range lineRunCases() {
					if primed {
						err := lfsr.Sequence(64, 0xBEEF, func(idx uint64) {
							a := c.addr + idx*3*MediaBlock
							perCall.Write(a)
							bulk.Write(a)
						})
						if err != nil {
							t.Fatal(err)
						}
					}
					for i := uint64(0); i < c.n; i++ {
						perCall.Write(c.addr + i*mem.Line)
					}
					bulk.WriteLineRun(c.addr, c.n)
				}
				bulk.WriteLineRun(0, 0) // no-op
				assertSameModule(t, "write", perCall, bulk)
			})
		}
	}
}

// TestLineRunInterleavesWithPerCall drives runs and per-call traffic
// alternately through the same modules: the bulk paths must leave the
// memos and ring in exactly the state the per-call path would, so that
// traffic after a run is also identical.
func TestLineRunInterleavesWithPerCall(t *testing.T) {
	perCall, bulk := newLineRunPair(t, 6)
	span := uint64(2 * mem.MiB)
	for round := uint64(0); round < 4; round++ {
		base := round * span
		for i := uint64(0); i < 200; i++ {
			perCall.Write(base + i*mem.Line)
			perCall.Read(base + i*mem.Line)
		}
		for i := uint64(0); i < 200; i++ {
			bulk.Write(base + i*mem.Line)
			bulk.Read(base + i*mem.Line)
		}
		runBase := base + 100*mem.Line // overlaps the per-call tail
		for i := uint64(0); i < 300; i++ {
			perCall.Write(runBase + i*mem.Line)
		}
		bulk.WriteLineRun(runBase, 300)
		for i := uint64(0); i < 300; i++ {
			perCall.Read(runBase + i*mem.Line)
		}
		bulk.ReadLineRun(runBase, 300)
	}
	assertSameModule(t, "interleave", perCall, bulk)
}
