// Package nvram models Intel Optane DC Persistent Memory DIMMs: an
// interleaved set of phase-change-memory devices with asymmetric read
// and write bandwidth, a 256 B internal media granularity, and a small
// on-DIMM write-combining buffer (the "XPBuffer").
//
// The model counts 64 B line transactions at the DIMM interface — the
// quantity the Cascade Lake uncore counters report as PMM RPQ/WPQ
// inserts — and additionally tracks *media* traffic: consecutive line
// writes that land in the same 256 B media block within the combining
// window merge into a single media write; isolated line writes cost a
// full media block (write amplification 4x for 64 B random stores).
// The media counters let experiments report device wear and explain the
// bandwidth cliffs of the paper's Figure 2b; elapsed time itself comes
// from internal/bwmodel.
package nvram

import (
	"fmt"

	"twolm/internal/fastdiv"
	"twolm/internal/mem"
	"twolm/internal/telemetry"
)

// MediaBlock is the Optane media access granularity in bytes.
const MediaBlock = 256

// DIMM is a single Optane module with interface and media counters.
// Counters are in line (64 B) units except the media counters, which
// are in MediaBlock units.
type DIMM struct {
	Reads  uint64 // 64 B read transactions at the DDR-T interface
	Writes uint64 // 64 B write transactions at the DDR-T interface

	MediaReads  uint64 // 256 B media block reads
	MediaWrites uint64 // 256 B media block writes

	// xpbuffer models the write-combining window: the media block
	// addresses of the most recent pending writes, in a fixed ring so
	// the membership scan compares against a constant-size array.
	xpbuf     [xpBufferEntries]uint64
	xpbufLen  int
	xpbufNext int

	// lastWriteBlock short-circuits the common case: the block written
	// by the previous Write is always resident in the buffer (a merge
	// finds it there; an insert just put it there), so a repeat of the
	// same block merges without scanning. Sequential 64 B streams take
	// this path three times out of four.
	lastWriteBlock uint64
	haveLastWrite  bool

	// xpbufBound is an upper bound on the block addresses resident in
	// the buffer (the maximum ever inserted, never decreased). A block
	// above the bound cannot be resident, so the membership scan is
	// skipped — which makes the miss path of a monotonically ascending
	// write stream O(1) instead of a full ring scan. A stale-high bound
	// only costs a useless scan, never a wrong merge.
	xpbufBound uint64

	lastReadBlock uint64
	haveLastRead  bool
}

// xpBufferEntries is the modeled number of merge slots in the on-DIMM
// write buffer. Small on purpose: the paper notes "limited buffer space
// within the Optane DIMM decreases the media controller's ability to
// merge sequential 64 B writes".
const xpBufferEntries = 16

// newDIMM returns a DIMM with an empty combining buffer.
func newDIMM() *DIMM {
	return &DIMM{}
}

// Read records a 64 B read at addr, merging consecutive reads of the
// same media block into one media read.
func (d *DIMM) Read(addr uint64) {
	d.Reads++
	block := addr / MediaBlock
	if d.haveLastRead && block == d.lastReadBlock {
		return
	}
	d.MediaReads++
	d.lastReadBlock = block
	d.haveLastRead = true
}

// Write records a 64 B write at addr. Writes to a media block already
// pending in the combining buffer merge; otherwise a new media write is
// counted and the block occupies a buffer slot (round-robin replacement).
func (d *DIMM) Write(addr uint64) {
	d.Writes++
	block := addr / MediaBlock
	if d.haveLastWrite && block == d.lastWriteBlock {
		return // merged into a pending media write
	}
	if block <= d.xpbufBound {
		for i := 0; i < d.xpbufLen; i++ {
			if d.xpbuf[i] == block {
				d.lastWriteBlock = block
				d.haveLastWrite = true
				return // merged into a pending media write
			}
		}
	}
	d.MediaWrites++
	if d.xpbufLen < xpBufferEntries {
		d.xpbuf[d.xpbufLen] = block
		d.xpbufLen++
	} else {
		d.xpbuf[d.xpbufNext] = block
		d.xpbufNext++
		if d.xpbufNext == xpBufferEntries {
			d.xpbufNext = 0
		}
	}
	if block > d.xpbufBound {
		d.xpbufBound = block
	}
	d.lastWriteBlock = block
	d.haveLastWrite = true
}

// ReadBatch records a read transaction for every address in order.
// Byte-identical to calling Read per address; the merge memo lives in
// locals across the loop instead of being reloaded per transaction.
func (d *DIMM) ReadBatch(addrs []uint64) {
	last, have := d.lastReadBlock, d.haveLastRead
	var media uint64
	for _, a := range addrs {
		block := a / MediaBlock
		if have && block == last {
			continue
		}
		media++
		last = block
		have = true
	}
	d.Reads += uint64(len(addrs))
	d.MediaReads += media
	d.lastReadBlock, d.haveLastRead = last, have
}

// WriteBatch records a write transaction for every address in order.
// Byte-identical to calling Write per address, with the combining-
// buffer bookkeeping hoisted into locals across the loop.
func (d *DIMM) WriteBatch(addrs []uint64) {
	last, have := d.lastWriteBlock, d.haveLastWrite
	bound := d.xpbufBound
	blen, bnext := d.xpbufLen, d.xpbufNext
	var media uint64
	for _, a := range addrs {
		block := a / MediaBlock
		if have && block == last {
			continue
		}
		if block <= bound {
			merged := false
			for i := 0; i < blen; i++ {
				if d.xpbuf[i] == block {
					merged = true
					break
				}
			}
			if merged {
				last = block
				have = true
				continue
			}
		}
		media++
		if blen < xpBufferEntries {
			d.xpbuf[blen] = block
			blen++
		} else {
			d.xpbuf[bnext] = block
			bnext++
			if bnext == xpBufferEntries {
				bnext = 0
			}
		}
		if block > bound {
			bound = block
		}
		last = block
		have = true
	}
	d.Writes += uint64(len(addrs))
	d.MediaWrites += media
	d.lastWriteBlock, d.haveLastWrite = last, have
	d.xpbufBound = bound
	d.xpbufLen, d.xpbufNext = blen, bnext
}

// WriteAmplification returns media bytes written per interface byte
// written (1.0 = perfect merging, 4.0 = no merging).
func (d *DIMM) WriteAmplification() float64 {
	if d.Writes == 0 {
		return 1
	}
	return float64(d.MediaWrites*MediaBlock) / float64(d.Writes*mem.Line)
}

// Module is one socket's worth of NVRAM: n interleaved DIMMs.
type Module struct {
	dimms    []*DIMM
	dimmDiv  fastdiv.Divisor
	capacity uint64

	// Memoized interleave lookups. The chunk-to-DIMM mapping is static,
	// so a memo hit is always correct; reads and writes memoize
	// separately because the controller's miss path interleaves a
	// sequential victim-writeback stream with a sequential fill-read
	// stream, and a shared memo would thrash between the two. A Module
	// is driven by one goroutine (the sharded engine gives each shard
	// its own modules), so the memo fields need no synchronization.
	lastReadChunk  uint64
	lastRead       *DIMM
	lastWriteChunk uint64
	lastWrite      *DIMM
}

// New returns an NVRAM module with the given DIMM count and total
// capacity in bytes.
func New(dimms int, capacity uint64) (*Module, error) {
	if dimms <= 0 {
		return nil, fmt.Errorf("nvram: dimm count %d must be positive", dimms)
	}
	if capacity == 0 || capacity%mem.Line != 0 {
		return nil, fmt.Errorf("nvram: capacity %d must be a positive multiple of %d", capacity, mem.Line)
	}
	m := &Module{
		dimms:    make([]*DIMM, dimms),
		dimmDiv:  fastdiv.New(uint64(dimms)),
		capacity: capacity,
	}
	for i := range m.dimms {
		m.dimms[i] = newDIMM()
	}
	return m, nil
}

// DIMMs returns the number of DIMMs in the interleave set.
func (m *Module) DIMMs() int { return len(m.dimms) }

// Capacity returns the module capacity in bytes.
func (m *Module) Capacity() uint64 { return m.capacity }

// dimm maps a line address onto its interleaved DIMM. Optane interleave
// granularity is 4 KiB on real platforms. Six DIMMs per socket is not a
// power of two, so the interleave mod uses a precomputed reciprocal.
const interleaveGranularity = 4 * 1024

// InterleaveGranularity is the byte granularity at which consecutive
// address chunks rotate across the DIMM set, exported for dispatchers
// that partition deferred traffic per DIMM.
const InterleaveGranularity = interleaveGranularity

func (m *Module) dimm(addr uint64) *DIMM {
	return m.dimms[m.dimmDiv.Mod(addr/interleaveGranularity)]
}

// DIMMIndex maps an address to the index of the DIMM that services it.
// The interleave map is a pure function of the address.
func (m *Module) DIMMIndex(addr uint64) int {
	return int(m.dimmDiv.Mod(addr / interleaveGranularity))
}

// DIMMAt returns the i-th DIMM of the interleave set.
func (m *Module) DIMMAt(i int) *DIMM { return m.dimms[i] }

// DIMMDivisor returns the precomputed DIMM-count divisor, so hot
// dispatch loops can inline the interleave map instead of paying a
// method call per deferred operation.
func (m *Module) DIMMDivisor() fastdiv.Divisor { return m.dimmDiv }

// Read records one 64 B read transaction at addr.
func (m *Module) Read(addr uint64) {
	chunk := addr / interleaveGranularity
	d := m.lastRead
	if d == nil || chunk != m.lastReadChunk {
		d = m.dimms[m.dimmDiv.Mod(chunk)]
		m.lastRead, m.lastReadChunk = d, chunk
	}
	d.Read(addr)
}

// Write records one 64 B write transaction at addr.
func (m *Module) Write(addr uint64) {
	chunk := addr / interleaveGranularity
	d := m.lastWrite
	if d == nil || chunk != m.lastWriteChunk {
		d = m.dimms[m.dimmDiv.Mod(chunk)]
		m.lastWrite, m.lastWriteChunk = d, chunk
	}
	d.Write(addr)
}

// ReadBatch records one 64 B read transaction per address, in slice
// order. Byte-identical to calling Read per address: the interleave
// map is a pure function of the address, and the per-DIMM merge state
// advances in the same order. The Module-level interleave memo is
// bypassed (it is a pure lookup cache); the DIMM structs themselves
// are small enough to stay cache-resident across the loop, which is
// what makes this the batch dispatcher's device path.
func (m *Module) ReadBatch(addrs []uint64) {
	dimms := m.dimms
	div := m.dimmDiv
	for _, a := range addrs {
		d := dimms[div.Mod(a/interleaveGranularity)]
		d.Reads++
		block := a / MediaBlock
		if d.haveLastRead && block == d.lastReadBlock {
			continue
		}
		d.MediaReads++
		d.lastReadBlock = block
		d.haveLastRead = true
	}
}

// WriteBatch records one 64 B write transaction per address, in slice
// order. Byte-identical to calling Write per address, for the same
// reasons as ReadBatch. The combining-buffer membership scan runs
// branchlessly over the whole ring: under random traffic the buffer
// almost never holds the block, so an early-exit scan predicts badly,
// while sixteen flag-accumulating compares retire in a handful of
// cycles.
func (m *Module) WriteBatch(addrs []uint64) {
	dimms := m.dimms
	div := m.dimmDiv
	for _, a := range addrs {
		d := dimms[div.Mod(a/interleaveGranularity)]
		d.Writes++
		block := a / MediaBlock
		if d.haveLastWrite && block == d.lastWriteBlock {
			continue // merged into a pending media write
		}
		if block <= d.xpbufBound {
			var hitSlot uint64
			for i := 0; i < d.xpbufLen; i++ {
				if d.xpbuf[i] == block {
					hitSlot = 1
				}
			}
			if hitSlot != 0 {
				d.lastWriteBlock = block
				d.haveLastWrite = true
				continue // merged into a pending media write
			}
		}
		d.MediaWrites++
		if d.xpbufLen < xpBufferEntries {
			d.xpbuf[d.xpbufLen] = block
			d.xpbufLen++
		} else {
			d.xpbuf[d.xpbufNext] = block
			d.xpbufNext++
			if d.xpbufNext == xpBufferEntries {
				d.xpbufNext = 0
			}
		}
		if block > d.xpbufBound {
			d.xpbufBound = block
		}
		d.lastWriteBlock = block
		d.haveLastWrite = true
	}
}

// ReadLineRun records n consecutive ascending 64 B line reads starting
// at addr — the closed form of calling Read on each line in order. An
// ascending run visits each interleave chunk once and each media block
// with consecutive lines only, so the merge memo collapses every block
// to exactly one media read; the whole run costs one arithmetic step
// per 4 KiB chunk instead of one memo check per line. Byte-identical to
// the per-line path (the differential tests pin this).
//
//hot:entry sequential-fold device path, driven on pooled controllers
//alloc:free bulk run path, 0 allocs/op by benchmark contract
func (m *Module) ReadLineRun(addr, n uint64) {
	if n == 0 {
		return
	}
	end := addr + n*mem.Line
	dimms := m.dimms
	div := m.dimmDiv
	for a := addr; a < end; {
		chunk := a / interleaveGranularity
		stop := (chunk + 1) * interleaveGranularity
		if stop > end {
			stop = end
		}
		d := dimms[div.Mod(chunk)]
		// Lines starting before stop belong to this chunk (a line's
		// chunk is that of its start address; an unaligned run may leave
		// the last such line straddling the boundary, so the walk
		// advances by whole lines, not to stop).
		cnt := (stop - a + mem.Line - 1) >> mem.LineShift
		last := a + (cnt-1)*mem.Line
		// The chunk's lines cover media blocks b0..b1, each visited by
		// 1-4 consecutive lines; distinct blocks collapse to one media
		// read apiece, minus one if the DIMM's memo already holds b0
		// (this DIMM's previous chunk cannot end in b0 — chunks of one
		// DIMM are 4 KiB apart — but pre-run state can).
		b0 := a / MediaBlock
		b1 := last / MediaBlock
		media := b1 - b0 + 1
		if d.haveLastRead && d.lastReadBlock == b0 {
			media--
		}
		d.Reads += cnt
		d.MediaReads += media
		d.lastReadBlock = b1
		d.haveLastRead = true
		a += cnt * mem.Line
	}
}

// WriteLineRun records n consecutive ascending 64 B line writes
// starting at addr — the bulk form of calling Write on each line in
// order, walking media blocks instead of lines. For each DIMM the
// block subsequence is strictly ascending, so a block can merge only
// with pre-run ring contents: the membership scan runs only while the
// block is below the maximum pre-chunk ring entry, after which every
// block is a guaranteed insert. Byte-identical to the per-line path.
//
//hot:entry sequential-fold device path, driven on pooled controllers
//alloc:free bulk run path, 0 allocs/op by benchmark contract
func (m *Module) WriteLineRun(addr, n uint64) {
	if n == 0 {
		return
	}
	end := addr + n*mem.Line
	dimms := m.dimms
	div := m.dimmDiv
	for a := addr; a < end; {
		chunk := a / interleaveGranularity
		stop := (chunk + 1) * interleaveGranularity
		if stop > end {
			stop = end
		}
		d := dimms[div.Mod(chunk)]
		cnt := (stop - a + mem.Line - 1) >> mem.LineShift
		last := a + (cnt-1)*mem.Line
		d.Writes += cnt
		// ringMax bounds the ring's resident blocks from above. Blocks
		// inserted below never need rechecking: the walk ascends, so a
		// later block can only equal a ring entry that predates this
		// chunk. A stale-high bound costs a useless scan, never a wrong
		// merge — the same contract as xpbufBound.
		ringMax := uint64(0)
		for i := 0; i < d.xpbufLen; i++ {
			if d.xpbuf[i] > ringMax {
				ringMax = d.xpbuf[i]
			}
		}
		b0 := a / MediaBlock
		b1 := last / MediaBlock
		for b := b0; b <= b1; b++ {
			if d.haveLastWrite && b == d.lastWriteBlock {
				continue // merged into a pending media write
			}
			if b <= d.xpbufBound && b <= ringMax {
				merged := false
				for i := 0; i < d.xpbufLen; i++ {
					if d.xpbuf[i] == b {
						merged = true
					}
				}
				if merged {
					d.lastWriteBlock = b
					d.haveLastWrite = true
					continue // merged into a pending media write
				}
			}
			d.MediaWrites++
			if d.xpbufLen < xpBufferEntries {
				d.xpbuf[d.xpbufLen] = b
				d.xpbufLen++
			} else {
				d.xpbuf[d.xpbufNext] = b
				d.xpbufNext++
				if d.xpbufNext == xpBufferEntries {
					d.xpbufNext = 0
				}
			}
			if b > d.xpbufBound {
				d.xpbufBound = b
			}
			d.lastWriteBlock = b
			d.haveLastWrite = true
		}
		a += cnt * mem.Line
	}
}

// TotalReads returns interface read transactions summed over DIMMs.
func (m *Module) TotalReads() uint64 {
	var n uint64
	for _, d := range m.dimms {
		n += d.Reads
	}
	return n
}

// TotalWrites returns interface write transactions summed over DIMMs.
func (m *Module) TotalWrites() uint64 {
	var n uint64
	for _, d := range m.dimms {
		n += d.Writes
	}
	return n
}

// TotalMediaReads returns media block reads summed over DIMMs.
func (m *Module) TotalMediaReads() uint64 {
	var n uint64
	for _, d := range m.dimms {
		n += d.MediaReads
	}
	return n
}

// TotalMediaWrites returns media block writes summed over DIMMs.
func (m *Module) TotalMediaWrites() uint64 {
	var n uint64
	for _, d := range m.dimms {
		n += d.MediaWrites
	}
	return n
}

// WriteAmplification returns the aggregate media write amplification.
func (m *Module) WriteAmplification() float64 {
	var iface, media uint64
	for _, d := range m.dimms {
		iface += d.Writes
		media += d.MediaWrites
	}
	if iface == 0 {
		return 1
	}
	return float64(media*MediaBlock) / float64(iface*mem.Line)
}

// Snapshot implements telemetry.Source with the module's aggregate
// interface and media counters. This is the one telemetry source that
// carries media-block counts: merging depends on how the address
// stream is partitioned over the combining buffers, so media counters
// are meaningful per module but are excluded from the controller- and
// engine-level samples compared across serial and sharded runs.
func (m *Module) Snapshot() telemetry.Sample {
	return telemetry.Sample{
		NVRAMRead:   m.TotalReads(),
		NVRAMWrite:  m.TotalWrites(),
		MediaReads:  m.TotalMediaReads(),
		MediaWrites: m.TotalMediaWrites(),
	}
}

// Reset zeroes all counters and combining state in place. The DIMM
// objects are retained rather than replaced — a recycled module must
// not allocate, because the sweep engine resets thousands of
// controllers per second and holds its steady state at 0 allocs per
// job. A zeroed DIMM is field-for-field identical to a fresh one, so
// post-reset counters match a newly constructed module exactly. The
// interleave memos are dropped so the first post-reset access
// recomputes its chunk.
func (m *Module) Reset() {
	for _, d := range m.dimms {
		*d = DIMM{}
	}
	m.lastRead, m.lastWrite = nil, nil
}
