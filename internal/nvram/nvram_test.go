package nvram

import (
	"testing"

	"twolm/internal/lfsr"
	"twolm/internal/mem"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(0, mem.MiB); err == nil {
		t.Error("zero DIMMs accepted")
	}
	if _, err := New(6, 0); err == nil {
		t.Error("zero capacity accepted")
	}
	if _, err := New(6, 100); err == nil {
		t.Error("non-line-multiple capacity accepted")
	}
	m, err := New(6, 3*mem.GiB)
	if err != nil {
		t.Fatal(err)
	}
	if m.DIMMs() != 6 || m.Capacity() != 3*mem.GiB {
		t.Errorf("got %d DIMMs, capacity %d", m.DIMMs(), m.Capacity())
	}
}

// TestSequentialWriteMerging: an ascending 64 B write stream should
// merge into 256 B media writes with amplification ~1.
func TestSequentialWriteMerging(t *testing.T) {
	m, _ := New(1, mem.GiB)
	const lines = 4096
	for i := uint64(0); i < lines; i++ {
		m.Write(i * mem.Line)
	}
	if m.TotalWrites() != lines {
		t.Fatalf("interface writes = %d, want %d", m.TotalWrites(), lines)
	}
	wantMedia := uint64(lines * mem.Line / MediaBlock)
	if m.TotalMediaWrites() != wantMedia {
		t.Errorf("media writes = %d, want %d", m.TotalMediaWrites(), wantMedia)
	}
	if wa := m.WriteAmplification(); wa != 1.0 {
		t.Errorf("sequential write amplification = %.2f, want 1.0", wa)
	}
}

// TestRandomWriteAmplification: LFSR-random 64 B writes should fail to
// merge and approach 4x media write amplification.
func TestRandomWriteAmplification(t *testing.T) {
	m, _ := New(1, mem.GiB)
	const lines = 1 << 16
	if err := lfsr.Sequence(lines, 1, func(i uint64) {
		m.Write(i * mem.Line)
	}); err != nil {
		t.Fatal(err)
	}
	wa := m.WriteAmplification()
	if wa < 3.0 || wa > 4.0 {
		t.Errorf("random 64B write amplification = %.2f, want ~4", wa)
	}
}

// TestRandom256BWritesDoNotAmplify: touching 4 consecutive lines per
// random location merges back to amplification ~1.
func TestRandom256BWritesDoNotAmplify(t *testing.T) {
	m, _ := New(1, mem.GiB)
	const blocks = 1 << 14
	if err := lfsr.Sequence(blocks, 1, func(i uint64) {
		base := i * MediaBlock
		for l := uint64(0); l < MediaBlock/mem.Line; l++ {
			m.Write(base + l*mem.Line)
		}
	}); err != nil {
		t.Fatal(err)
	}
	if wa := m.WriteAmplification(); wa > 1.05 {
		t.Errorf("random 256B write amplification = %.2f, want ~1", wa)
	}
}

// TestSequentialReadMerging: consecutive reads of a media block count
// one media read.
func TestSequentialReadMerging(t *testing.T) {
	m, _ := New(1, mem.GiB)
	const lines = 1024
	for i := uint64(0); i < lines; i++ {
		m.Read(i * mem.Line)
	}
	wantMedia := uint64(lines * mem.Line / MediaBlock)
	if m.TotalMediaReads() != wantMedia {
		t.Errorf("media reads = %d, want %d", m.TotalMediaReads(), wantMedia)
	}
}

func TestInterleaveAcrossDIMMs(t *testing.T) {
	m, _ := New(6, 6*mem.GiB)
	// Touch 6 interleave units; each should land on a distinct DIMM.
	for i := uint64(0); i < 6; i++ {
		m.Read(i * 4096)
	}
	for i, d := range m.dimms {
		if d.Reads != 1 {
			t.Errorf("DIMM %d reads = %d, want 1", i, d.Reads)
		}
	}
}

func TestWriteAmplificationEmpty(t *testing.T) {
	m, _ := New(2, mem.GiB)
	if wa := m.WriteAmplification(); wa != 1 {
		t.Errorf("empty module amplification = %.2f, want 1", wa)
	}
}

func TestReset(t *testing.T) {
	m, _ := New(2, mem.GiB)
	m.Read(0)
	m.Write(64)
	m.Reset()
	if m.TotalReads() != 0 || m.TotalWrites() != 0 || m.TotalMediaReads() != 0 || m.TotalMediaWrites() != 0 {
		t.Error("Reset left nonzero counters")
	}
}
