package nvram

import (
	"math/rand"
	"testing"

	"twolm/internal/mem"
)

// refXPBuffer is the straight-line reference model of the combining
// window: a grow-then-round-robin slice scanned linearly, exactly as
// the DIMM implemented it before the last-hit short circuit and fixed
// ring. The differential test below proves the optimized DIMM counts
// media writes identically on every stream shape.
type refXPBuffer struct {
	buf  []uint64
	next int
}

// write returns true when the block merges into a pending media write.
func (r *refXPBuffer) write(block uint64) (merged bool) {
	for _, b := range r.buf {
		if b == block {
			return true
		}
	}
	if len(r.buf) < xpBufferEntries {
		r.buf = append(r.buf, block)
		return false
	}
	r.buf[r.next] = block
	r.next = (r.next + 1) % len(r.buf)
	return false
}

// TestXPBufferMatchesReference drives sequential, random, strided, and
// ping-pong write streams through the DIMM and the reference model and
// demands identical media write counts at every step.
func TestXPBufferMatchesReference(t *testing.T) {
	streams := map[string]func(i int, rng *rand.Rand) uint64{
		"sequential": func(i int, _ *rand.Rand) uint64 { return uint64(i) * mem.Line },
		"random":     func(_ int, rng *rand.Rand) uint64 { return uint64(rng.Intn(1 << 16)) * mem.Line },
		"strided":    func(i int, _ *rand.Rand) uint64 { return uint64(i) * 3 * MediaBlock },
		"ping-pong": func(i int, _ *rand.Rand) uint64 {
			// Alternates between two far-apart blocks, defeating the
			// last-hit short circuit on every other write.
			return uint64(i&1) * 64 * MediaBlock
		},
		"thrash": func(i int, _ *rand.Rand) uint64 {
			// Cycles through more blocks than the buffer holds, forcing
			// round-robin replacement of every slot.
			return uint64(i%(2*xpBufferEntries)) * MediaBlock
		},
	}
	for name, gen := range streams {
		t.Run(name, func(t *testing.T) {
			d := newDIMM()
			var ref refXPBuffer
			var refMedia uint64
			rng := rand.New(rand.NewSource(13))
			for i := 0; i < 100000; i++ {
				addr := gen(i, rng)
				d.Write(addr)
				if !ref.write(addr / MediaBlock) {
					refMedia++
				}
				if d.MediaWrites != refMedia {
					t.Fatalf("%s: after write %d (addr %#x): media writes %d, reference %d",
						name, i, addr, d.MediaWrites, refMedia)
				}
			}
			if d.Writes != 100000 {
				t.Fatalf("%s: interface writes = %d", name, d.Writes)
			}
		})
	}
}
