package nvram

import (
	"testing"

	"twolm/internal/lfsr"
	"twolm/internal/mem"
)

// batchAddrs builds a deterministic address stream mixing sequential
// runs (which exercise the read memo and the write combining buffer)
// with LFSR-random jumps (which exercise misses and ring eviction).
func batchAddrs(t *testing.T, span uint64) []uint64 {
	t.Helper()
	lines := span / mem.Line
	addrs := make([]uint64, 0, 2*lines)
	err := lfsr.Sequence(lines/4, 0x7E57, func(idx uint64) {
		base := idx * 4 * mem.Line
		// A short ascending run at each random base.
		for k := uint64(0); k < 4; k++ {
			addrs = append(addrs, base+k*mem.Line)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	err = lfsr.Sequence(lines, 0xA5A5, func(idx uint64) {
		addrs = append(addrs, idx*mem.Line)
	})
	if err != nil {
		t.Fatal(err)
	}
	return addrs
}

// moduleCounters snapshots every interface and media counter.
func moduleCounters(m *Module) [4]uint64 {
	return [4]uint64{m.TotalReads(), m.TotalWrites(), m.TotalMediaReads(), m.TotalMediaWrites()}
}

// TestModuleBatchMatchesPerCall proves Module.ReadBatch and
// Module.WriteBatch are byte-identical to per-call Read/Write in slice
// order, including the per-DIMM media counters behind the totals.
func TestModuleBatchMatchesPerCall(t *testing.T) {
	const dimms = 6
	const span = 8 * mem.MiB
	serial, err := New(dimms, span)
	if err != nil {
		t.Fatal(err)
	}
	batched, err := New(dimms, span)
	if err != nil {
		t.Fatal(err)
	}
	addrs := batchAddrs(t, span)
	// Interleave read and write phases in odd-sized chunks so both the
	// read memo and the combining buffer carry state across batch edges.
	const chunk = 353
	for off := 0; off < len(addrs); off += chunk {
		end := off + chunk
		if end > len(addrs) {
			end = len(addrs)
		}
		part := addrs[off:end]
		if (off/chunk)%2 == 0 {
			for _, a := range part {
				serial.Read(a)
			}
			batched.ReadBatch(part)
		} else {
			for _, a := range part {
				serial.Write(a)
			}
			batched.WriteBatch(part)
		}
	}
	if a, b := moduleCounters(serial), moduleCounters(batched); a != b {
		t.Errorf("module counters diverge: per-call %v, batched %v", a, b)
	}
	for i := 0; i < dimms; i++ {
		sd, bd := serial.DIMMAt(i), batched.DIMMAt(i)
		if sd.Reads != bd.Reads || sd.Writes != bd.Writes ||
			sd.MediaReads != bd.MediaReads || sd.MediaWrites != bd.MediaWrites {
			t.Errorf("DIMM %d diverges: per-call {%d %d %d %d}, batched {%d %d %d %d}",
				i, sd.Reads, sd.Writes, sd.MediaReads, sd.MediaWrites,
				bd.Reads, bd.Writes, bd.MediaReads, bd.MediaWrites)
		}
	}
}

// TestDIMMBatchMatchesPerCall proves the DIMM-level batch entry points
// (the ones the controller's deferred queues drain through) match
// per-call dispatch on the same address sequence.
func TestDIMMBatchMatchesPerCall(t *testing.T) {
	const span = 4 * mem.MiB
	mkDIMM := func() *DIMM {
		m, err := New(1, span)
		if err != nil {
			t.Fatal(err)
		}
		return m.DIMMAt(0)
	}
	addrs := batchAddrs(t, span)

	sr, br := mkDIMM(), mkDIMM()
	for _, a := range addrs {
		sr.Read(a)
	}
	br.ReadBatch(addrs)
	if sr.Reads != br.Reads || sr.MediaReads != br.MediaReads {
		t.Errorf("read path diverges: per-call {%d %d}, batched {%d %d}",
			sr.Reads, sr.MediaReads, br.Reads, br.MediaReads)
	}

	sw, bw := mkDIMM(), mkDIMM()
	for _, a := range addrs {
		sw.Write(a)
	}
	bw.WriteBatch(addrs)
	if sw.Writes != bw.Writes || sw.MediaWrites != bw.MediaWrites {
		t.Errorf("write path diverges: per-call {%d %d}, batched {%d %d}",
			sw.Writes, sw.MediaWrites, bw.Writes, bw.MediaWrites)
	}
}

// TestBatchReadsWritesCommute is the unit-level form of the dispatch
// commutation argument: because the read path and the write path of a
// DIMM touch disjoint state, regrouping an interleaved read/write
// stream into a read batch and a write batch (each preserving its own
// internal order) leaves every counter byte-identical.
func TestBatchReadsWritesCommute(t *testing.T) {
	const span = 4 * mem.MiB
	serial, err := New(3, span)
	if err != nil {
		t.Fatal(err)
	}
	split, err := New(3, span)
	if err != nil {
		t.Fatal(err)
	}
	addrs := batchAddrs(t, span)
	var reads, writes []uint64
	for i, a := range addrs {
		if i%3 == 0 {
			serial.Write(a)
			writes = append(writes, a)
		} else {
			serial.Read(a)
			reads = append(reads, a)
		}
	}
	// Apply writes before reads — the opposite of every interleaving
	// above that put a read first.
	split.WriteBatch(writes)
	split.ReadBatch(reads)
	if a, b := moduleCounters(serial), moduleCounters(split); a != b {
		t.Errorf("direction split changed counters: interleaved %v, split %v", a, b)
	}
}
