// Package telemetry is the unified instrumentation surface of the
// simulator: one Sample shape for every counter producer, one Source
// interface for snapshotting them, and one Sink interface for
// consuming deterministic counter time-series.
//
// The paper's core evidence is time-series uncore-counter traces
// (Figures 5-9: DRAM and NVRAM bandwidth over the run, not just
// end-of-run totals). Before this package the repository had four
// ad-hoc observability surfaces — imc.Controller.Counters snapshots,
// internal/perfcounter, engine.ThroughputReport's bespoke JSON and
// results.Table — each with its own sampling and serialization
// conventions. telemetry replaces that scatter with a single seam:
//
//   - Source is implemented by imc.Controller, engine.Sharded,
//     core.System and nvram.Module; a Snapshot is cheap and always
//     consistent because every producer is single-writer.
//   - Sink has three shipped implementations: Recorder (deterministic
//     in-memory time series with CSV/JSON writers), TraceSink (the
//     Figure 5-9-style artifact writer), and Prom (Prometheus text
//     exposition over HTTP for live inspection of long runs).
//
// # Determinism rules
//
// Samples are clocked by *demand lines*, not wall time: a producer
// samples when its cumulative LLC demand count crosses a multiple of
// the configured interval. Wall clocks never enter a Sample (the
// detrange analyzer enforces this package-wide), so a recorded series
// is byte-identical across runs and — because the sharded engine's
// merged counters equal the serial controller's at every op-stream
// prefix — across serial and channel-sharded executions of the same
// op stream. TestRecorderSerialVsSharded pins this.
//
// Hooks in producers live only at batched range boundaries
// (imc LLCReadRange/LLCWriteRange, the core.System Range entry
// points, engine.Sharded replay chunks) behind a nil-sink check, so
// the disabled cost of the whole subsystem is one branch per range.
package telemetry

// Sample is one cumulative observation of a producer's counters. All
// counter fields are monotonic totals since the producer's last
// reset; interval deltas are derived by Sub. Line-granular fields are
// in 64 B lines, media fields in 256 B media blocks.
type Sample struct {
	// Demand is the sample clock: cumulative LLC demand requests
	// (reads + writes) observed by the producer, in lines. Sampling
	// is keyed to this, never to wall time.
	Demand uint64 `json:"demand"`
	// Clock is the producer's simulated time in seconds, for sources
	// with a time model (core.System); 0 otherwise.
	Clock float64 `json:"clock_s"`
	// Label annotates the sample (kernel phase, experiment, source).
	Label string `json:"label,omitempty"`

	LLCRead  uint64 `json:"llc_read"`
	LLCWrite uint64 `json:"llc_write"`

	DRAMRead   uint64 `json:"dram_read"`
	DRAMWrite  uint64 `json:"dram_write"`
	NVRAMRead  uint64 `json:"nvram_read"`
	NVRAMWrite uint64 `json:"nvram_write"`

	TagHit       uint64 `json:"tag_hit"`
	TagMissClean uint64 `json:"tag_miss_clean"`
	TagMissDirty uint64 `json:"tag_miss_dirty"`
	DDO          uint64 `json:"ddo"`

	// ChannelReads/ChannelWrites are per-DRAM-channel CAS counters,
	// when the producer exposes them (nil otherwise). The sharded
	// engine concatenates its shards' channels in shard order, which
	// makes the slices byte-identical to a serial controller's.
	ChannelReads  []uint64 `json:"channel_reads,omitempty"`
	ChannelWrites []uint64 `json:"channel_writes,omitempty"`

	// MediaReads/MediaWrites are NVRAM media-block counters, filled
	// by media-granularity sources (nvram.Module). They are kept out
	// of controller samples because media merging depends on how the
	// address stream is partitioned over combining buffers, which is
	// exactly what serial and sharded executions do differently.
	MediaReads  uint64 `json:"media_reads,omitempty"`
	MediaWrites uint64 `json:"media_writes,omitempty"`
}

// Source is a counter producer that can be snapshotted at any point
// between operations. Implementations are single-writer: a Snapshot
// taken from the owning goroutine is always consistent.
type Source interface {
	Snapshot() Sample
}

// Sink consumes cumulative samples. Record must be cheap; sinks that
// do I/O should buffer. A Sink used from a parallel producer
// (engine.Sharded replay) is only ever called between barriers, so it
// needs no internal locking for that path — Prom locks anyway because
// HTTP scrapes are concurrent by nature.
type Sink interface {
	Record(Sample)
}

// Sub returns s minus earlier field-wise, clamping counters at zero —
// the interval-delta form used by bandwidth traces. Slices are
// subtracted element-wise over the shorter length.
func (s Sample) Sub(earlier Sample) Sample {
	d := s
	d.LLCRead = subU64(s.LLCRead, earlier.LLCRead)
	d.LLCWrite = subU64(s.LLCWrite, earlier.LLCWrite)
	d.DRAMRead = subU64(s.DRAMRead, earlier.DRAMRead)
	d.DRAMWrite = subU64(s.DRAMWrite, earlier.DRAMWrite)
	d.NVRAMRead = subU64(s.NVRAMRead, earlier.NVRAMRead)
	d.NVRAMWrite = subU64(s.NVRAMWrite, earlier.NVRAMWrite)
	d.TagHit = subU64(s.TagHit, earlier.TagHit)
	d.TagMissClean = subU64(s.TagMissClean, earlier.TagMissClean)
	d.TagMissDirty = subU64(s.TagMissDirty, earlier.TagMissDirty)
	d.DDO = subU64(s.DDO, earlier.DDO)
	d.MediaReads = subU64(s.MediaReads, earlier.MediaReads)
	d.MediaWrites = subU64(s.MediaWrites, earlier.MediaWrites)
	d.Demand = subU64(s.Demand, earlier.Demand)
	d.Clock = s.Clock - earlier.Clock
	if d.Clock < 0 {
		d.Clock = 0
	}
	d.ChannelReads = subSlices(s.ChannelReads, earlier.ChannelReads)
	d.ChannelWrites = subSlices(s.ChannelWrites, earlier.ChannelWrites)
	return d
}

func subU64(a, b uint64) uint64 {
	if b > a {
		return 0
	}
	return a - b
}

func subSlices(a, b []uint64) []uint64 {
	if a == nil {
		return nil
	}
	out := make([]uint64, len(a))
	for i, v := range a {
		if i < len(b) {
			out[i] = subU64(v, b[i])
		} else {
			out[i] = v
		}
	}
	return out
}

// lineBytes is the transaction granularity of every line-counter
// field (64 B cache lines).
const lineBytes = 64

// bytesPerSec converts a line count over dur seconds into bytes/s.
func bytesPerSec(lines uint64, dur float64) float64 {
	if dur <= 0 {
		return 0
	}
	return float64(lines*lineBytes) / dur
}

// DRAMReadBW returns the delta sample's DRAM read bandwidth in
// bytes/s (0 when the sample carries no time).
func (s Sample) DRAMReadBW() float64 { return bytesPerSec(s.DRAMRead, s.Clock) }

// DRAMWriteBW returns the delta sample's DRAM write bandwidth in bytes/s.
func (s Sample) DRAMWriteBW() float64 { return bytesPerSec(s.DRAMWrite, s.Clock) }

// NVRAMReadBW returns the delta sample's NVRAM read bandwidth in bytes/s.
func (s Sample) NVRAMReadBW() float64 { return bytesPerSec(s.NVRAMRead, s.Clock) }

// NVRAMWriteBW returns the delta sample's NVRAM write bandwidth in bytes/s.
func (s Sample) NVRAMWriteBW() float64 { return bytesPerSec(s.NVRAMWrite, s.Clock) }

// MemoryAccesses returns all DRAM + NVRAM line transactions.
func (s Sample) MemoryAccesses() uint64 {
	return s.DRAMRead + s.DRAMWrite + s.NVRAMRead + s.NVRAMWrite
}

// Amplification returns memory accesses per demand request — the
// paper's access-amplification metric — or 0 with no demand.
func (s Sample) Amplification() float64 {
	if s.Demand == 0 {
		return 0
	}
	return float64(s.MemoryAccesses()) / float64(s.Demand)
}

// --- sink combinators -------------------------------------------------

// tee fans a sample out to several sinks in order.
type tee struct{ sinks []Sink }

func (t tee) Record(s Sample) {
	for _, sk := range t.sinks {
		sk.Record(s)
	}
}

// Tee returns a sink that forwards every sample to each non-nil sink
// in order. Nil entries are dropped; with zero (or all-nil) sinks it
// returns nil, which producers treat as telemetry-disabled.
func Tee(sinks ...Sink) Sink {
	kept := make([]Sink, 0, len(sinks))
	for _, s := range sinks {
		if s != nil {
			kept = append(kept, s)
		}
	}
	switch len(kept) {
	case 0:
		return nil
	case 1:
		return kept[0]
	}
	return tee{sinks: kept}
}

// labeled stamps a label onto unlabeled samples.
type labeled struct {
	sink  Sink
	label string
}

func (l labeled) Record(s Sample) {
	if s.Label == "" {
		s.Label = l.label
	}
	l.sink.Record(s)
}

// WithLabel returns a sink that stamps label onto samples recorded
// through it, leaving already-labeled samples alone. Nil sinks pass
// through as nil.
func WithLabel(sink Sink, label string) Sink {
	if sink == nil {
		return nil
	}
	return labeled{sink: sink, label: label}
}

// --- sampler ----------------------------------------------------------

// Sampler drives a Sink from a Source at a fixed demand-line
// interval: Tick snapshots the source and records iff the source's
// cumulative demand has crossed the next multiple of Every since the
// last recorded sample. It is the generic driver for producers that
// do not embed their own hook (per-op replay loops, tests); the
// controller and engine hooks implement the same boundary rule
// inline so their disabled cost stays one branch.
type Sampler struct {
	src   Source
	sink  Sink
	every uint64
	next  uint64
	last  uint64 // demand at the last recorded sample
	have  bool   // a sample has been recorded
}

// NewSampler returns a sampler emitting every `every` demand lines
// (every == 0 records on each Tick).
func NewSampler(src Source, sink Sink, every uint64) *Sampler {
	return &Sampler{src: src, sink: sink, every: every, next: every}
}

// Tick samples the source if its demand clock crossed the sampling
// boundary, returning whether a sample was recorded. Multiple
// boundaries crossed since the last Tick collapse into one sample —
// the recorded series reflects the producer's batching points, which
// deterministic comparisons must share.
func (sp *Sampler) Tick() bool {
	snap := sp.src.Snapshot()
	if snap.Demand < sp.next {
		return false
	}
	sp.record(snap)
	return true
}

// Flush records a final sample if demand advanced past the last
// recorded sample — the end-of-run partial interval.
func (sp *Sampler) Flush() bool {
	snap := sp.src.Snapshot()
	if sp.have && snap.Demand == sp.last {
		return false
	}
	sp.record(snap)
	return true
}

func (sp *Sampler) record(snap Sample) {
	sp.sink.Record(snap)
	sp.last = snap.Demand
	sp.have = true
	if sp.every == 0 {
		sp.next = snap.Demand + 1
	} else {
		sp.next = (snap.Demand/sp.every + 1) * sp.every
	}
}

// NextBoundary returns the first sampling boundary strictly above
// demand for the given interval — the shared advance rule of every
// inline producer hook (every == 0 means "next demand line").
func NextBoundary(demand, every uint64) uint64 {
	if every == 0 {
		return demand + 1
	}
	return (demand/every + 1) * every
}
