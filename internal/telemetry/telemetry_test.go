package telemetry

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func sampleAt(demand uint64) Sample {
	return Sample{
		Demand:   demand,
		LLCRead:  demand / 2,
		LLCWrite: demand - demand/2,
		DRAMRead: demand * 2, DRAMWrite: demand,
		NVRAMRead: demand / 4, NVRAMWrite: demand / 8,
		TagHit: demand / 2, TagMissClean: demand / 4, TagMissDirty: demand / 8,
		DDO: demand / 16,
	}
}

func TestSubClampsAndDiffs(t *testing.T) {
	a := sampleAt(100)
	a.Clock = 1.5
	a.ChannelReads = []uint64{10, 20}
	a.ChannelWrites = []uint64{1, 2}
	b := sampleAt(300)
	b.Clock = 2.0
	b.ChannelReads = []uint64{15, 29}
	b.ChannelWrites = []uint64{4, 4}

	d := b.Sub(a)
	if d.Demand != 200 || d.DRAMRead != 400 || d.Clock != 0.5 {
		t.Fatalf("unexpected delta: %+v", d)
	}
	if d.ChannelReads[0] != 5 || d.ChannelReads[1] != 9 || d.ChannelWrites[0] != 3 {
		t.Fatalf("unexpected channel delta: %+v", d)
	}

	// Subtracting a later sample clamps at zero instead of wrapping.
	c := a.Sub(b)
	if c.Demand != 0 || c.DRAMRead != 0 || c.Clock != 0 {
		t.Fatalf("expected clamped delta, got %+v", c)
	}
}

func TestBandwidthHelpers(t *testing.T) {
	d := Sample{DRAMRead: 1000, Clock: 2}
	want := float64(1000*lineBytes) / 2
	if bw := d.DRAMReadBW(); bw != want {
		t.Fatalf("DRAMReadBW = %v, want %v", bw, want)
	}
	if bw := (Sample{DRAMRead: 5}).DRAMReadBW(); bw != 0 {
		t.Fatalf("zero-duration bandwidth should be 0, got %v", bw)
	}
	s := Sample{Demand: 10, DRAMRead: 15, NVRAMWrite: 5}
	if s.MemoryAccesses() != 20 {
		t.Fatalf("MemoryAccesses = %d, want 20", s.MemoryAccesses())
	}
	if s.Amplification() != 2 {
		t.Fatalf("Amplification = %v, want 2", s.Amplification())
	}
	if (Sample{}).Amplification() != 0 {
		t.Fatal("zero-demand amplification should be 0")
	}
}

func TestTeeAndWithLabel(t *testing.T) {
	if Tee() != nil || Tee(nil, nil) != nil {
		t.Fatal("Tee of no sinks should be nil")
	}
	r1, r2 := NewRecorder(), NewRecorder()
	if got := Tee(nil, r1); got != Sink(r1) {
		t.Fatal("Tee of one sink should return it directly")
	}
	sink := WithLabel(Tee(r1, r2), "phase")
	sink.Record(Sample{Demand: 1})
	sink.Record(Sample{Demand: 2, Label: "explicit"})
	for _, r := range []*Recorder{r1, r2} {
		if r.Len() != 2 {
			t.Fatalf("recorder got %d samples, want 2", r.Len())
		}
		if r.Samples()[0].Label != "phase" || r.Samples()[1].Label != "explicit" {
			t.Fatalf("labels not stamped as expected: %+v", r.Samples())
		}
	}
	if WithLabel(nil, "x") != nil {
		t.Fatal("WithLabel(nil) should stay nil")
	}
}

// fakeSource is a Source whose demand the test advances by hand.
type fakeSource struct{ s Sample }

func (f *fakeSource) Snapshot() Sample { return f.s }

func TestSamplerBoundaries(t *testing.T) {
	src := &fakeSource{}
	rec := NewRecorder()
	sp := NewSampler(src, rec, 100)

	src.s = sampleAt(50)
	if sp.Tick() {
		t.Fatal("should not sample below the first boundary")
	}
	src.s = sampleAt(100)
	if !sp.Tick() {
		t.Fatal("should sample at the boundary")
	}
	// Crossing several boundaries at once collapses into one sample.
	src.s = sampleAt(450)
	if !sp.Tick() {
		t.Fatal("should sample after skipping boundaries")
	}
	src.s = sampleAt(460)
	if sp.Tick() {
		t.Fatal("next boundary should be 500 after sampling at 450")
	}
	// Flush records the partial tail exactly once.
	if !sp.Flush() {
		t.Fatal("flush with advanced demand should record")
	}
	if sp.Flush() {
		t.Fatal("second flush without progress should not record")
	}
	demands := []uint64{}
	for _, s := range rec.Samples() {
		demands = append(demands, s.Demand)
	}
	want := []uint64{100, 450, 460}
	if len(demands) != len(want) {
		t.Fatalf("recorded demands %v, want %v", demands, want)
	}
	for i := range want {
		if demands[i] != want[i] {
			t.Fatalf("recorded demands %v, want %v", demands, want)
		}
	}
}

func TestSamplerEveryZeroRecordsEachTick(t *testing.T) {
	src := &fakeSource{}
	rec := NewRecorder()
	sp := NewSampler(src, rec, 0)
	src.s = sampleAt(1)
	if !sp.Tick() {
		t.Fatal("every=0 should record on each advancing tick")
	}
	if sp.Tick() {
		t.Fatal("every=0 should not re-record without progress")
	}
	src.s = sampleAt(2)
	if !sp.Tick() {
		t.Fatal("every=0 should record after progress")
	}
}

func TestNextBoundary(t *testing.T) {
	cases := []struct{ demand, every, want uint64 }{
		{0, 100, 100},
		{99, 100, 100},
		{100, 100, 200},
		{450, 100, 500},
		{7, 0, 8},
	}
	for _, c := range cases {
		if got := NextBoundary(c.demand, c.every); got != c.want {
			t.Fatalf("NextBoundary(%d,%d) = %d, want %d", c.demand, c.every, got, c.want)
		}
	}
}

func TestRecorderDeltasAndLast(t *testing.T) {
	r := NewRecorder()
	if last := r.Last(); last.Demand != 0 || last.DRAMRead != 0 {
		t.Fatal("empty recorder Last should be zero")
	}
	r.Record(sampleAt(100))
	r.Record(sampleAt(300))
	d := r.Deltas()
	if len(d) != 2 || d[0].Demand != 100 || d[1].Demand != 200 {
		t.Fatalf("unexpected deltas: %+v", d)
	}
	if r.Last().Demand != 300 {
		t.Fatalf("Last = %+v", r.Last())
	}
	r.Reset()
	if r.Len() != 0 {
		t.Fatal("Reset should drop samples")
	}
}

func recordDemo(r *Recorder) {
	s1 := sampleAt(1000)
	s1.Clock = 0.001
	s1.ChannelReads = []uint64{500, 600}
	s1.ChannelWrites = []uint64{100, 120}
	s2 := sampleAt(2000)
	s2.Clock = 0.002
	s2.Label = "phase,two" // exercises CSV quoting
	s2.ChannelReads = []uint64{900, 1100}
	s2.ChannelWrites = []uint64{220, 250}
	r.Record(s1)
	r.Record(s2)
}

func TestRecorderWritersDeterministic(t *testing.T) {
	render := func() (string, string) {
		r := NewRecorder()
		recordDemo(r)
		var csv, js bytes.Buffer
		if err := r.WriteCSV(&csv); err != nil {
			t.Fatal(err)
		}
		if err := r.WriteJSON(&js); err != nil {
			t.Fatal(err)
		}
		return csv.String(), js.String()
	}
	csv1, js1 := render()
	csv2, js2 := render()
	if csv1 != csv2 || js1 != js2 {
		t.Fatal("recorder serialization is not deterministic across runs")
	}
	if !strings.Contains(csv1, `"phase,two"`) {
		t.Fatalf("CSV should quote the comma-bearing label:\n%s", csv1)
	}
	if !strings.Contains(csv1, "ch1_writes") {
		t.Fatalf("CSV should carry per-channel columns:\n%s", csv1)
	}
	if !strings.Contains(js1, `"demand": 2000`) {
		t.Fatalf("JSON should carry cumulative samples:\n%s", js1)
	}
}

func TestWriteCSVRowsQuoting(t *testing.T) {
	var buf bytes.Buffer
	err := WriteCSVRows(&buf,
		[]string{"a", "b"},
		[][]string{{`plain`, `has,comma`}, {`has"quote`, "has\nnewline"}})
	if err != nil {
		t.Fatal(err)
	}
	want := "a,b\nplain,\"has,comma\"\n\"has\"\"quote\",\"has\nnewline\"\n"
	if buf.String() != want {
		t.Fatalf("got %q, want %q", buf.String(), want)
	}
}

func TestWriteJSONEmptySeries(t *testing.T) {
	var buf bytes.Buffer
	if err := NewRecorder().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(buf.String()) != "[]" {
		t.Fatalf("empty series should serialize as [], got %q", buf.String())
	}
}

func TestTraceSinkWritesArtifacts(t *testing.T) {
	dir := t.TempDir()
	ts := NewTraceSink(filepath.Join(dir, "results"), "trace_demo")
	recordDemo(&ts.Recorder)
	if err := ts.Close(); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"trace_demo.csv", "trace_demo.json"} {
		b, err := os.ReadFile(filepath.Join(dir, "results", name))
		if err != nil {
			t.Fatal(err)
		}
		if len(b) == 0 {
			t.Fatalf("%s is empty", name)
		}
	}
}
