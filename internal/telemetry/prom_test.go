package telemetry

import (
	"bytes"
	"flag"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

func demoProm() *Prom {
	p := NewProm()
	s1 := sampleAt(1000)
	s1.Clock = 0.25
	s1.ChannelReads = []uint64{500, 600}
	s1.ChannelWrites = []uint64{100, 120}
	p.Record(s1) // unlabeled → DefaultSourceLabel
	s2 := sampleAt(4000)
	s2.Label = "throughput"
	s2.MediaReads = 40
	s2.MediaWrites = 12
	p.Record(s2)
	p.SetGauge("jobs_total", "Experiment jobs in the run.", 9)
	p.AddGauge("jobs_completed", "Experiment jobs finished so far.", 1)
	p.AddGauge("jobs_completed", "Experiment jobs finished so far.", 1)
	return p
}

func TestPromGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := demoProm().Render(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "prom.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("exposition drifted from golden file (re-run with -update to accept):\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}
}

func TestPromRenderDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	p := demoProm()
	if err := p.Render(&a); err != nil {
		t.Fatal(err)
	}
	if err := p.Render(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("Render is not deterministic for the same state")
	}
}

func TestPromServeHTTP(t *testing.T) {
	p := demoProm()
	rr := httptest.NewRecorder()
	p.ServeHTTP(rr, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rr.Header().Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("unexpected content type %q", ct)
	}
	body := rr.Body.String()
	for _, want := range []string{
		`twolm_dram_read_lines_total{source="sim"} 2000`,
		`twolm_dram_read_lines_total{source="throughput"} 8000`,
		`twolm_sim_clock_seconds{source="sim"} 0.25`,
		`twolm_dram_channel_cas_total{source="sim",channel="1",op="write"} 120`,
		`twolm_nvram_media_read_blocks_total{source="throughput"} 40`,
		`twolm_jobs_completed 2`,
		`twolm_jobs_total 9`,
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("exposition missing %q:\n%s", want, body)
		}
	}
}

func TestPromLatestWins(t *testing.T) {
	p := NewProm()
	p.Record(Sample{Demand: 1, DRAMRead: 10})
	p.Record(Sample{Demand: 2, DRAMRead: 30})
	var buf bytes.Buffer
	if err := p.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `twolm_dram_read_lines_total{source="sim"} 30`) {
		t.Fatalf("latest sample should win:\n%s", buf.String())
	}
	if strings.Contains(buf.String(), "} 10\n") && strings.Contains(buf.String(), "dram_read_lines_total{source=\"sim\"} 10") {
		t.Fatalf("stale sample still exposed:\n%s", buf.String())
	}
}

func TestEscapeLabel(t *testing.T) {
	if got := escapeLabel(`a\b` + "\n"); got != `a\\b\n` {
		t.Fatalf("escapeLabel = %q", got)
	}
}
