// The Recorder sink: a deterministic in-memory counter time series
// with CSV and JSON writers, plus the TraceSink artifact writer that
// regenerates Figure 5-9-style bandwidth traces under a results
// directory. The serialized forms contain only sample state — no
// wall-clock timestamps, no map iteration — so two runs that record
// the same samples produce byte-identical artifacts.

package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// Recorder is a Sink that appends every sample to an in-memory
// series. It is not internally synchronized: producers record from
// one goroutine at a time (the engine's parallel replay records only
// at barriers).
type Recorder struct {
	samples []Sample
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// Record implements Sink.
func (r *Recorder) Record(s Sample) { r.samples = append(r.samples, s) }

// Samples returns the recorded cumulative samples (shared backing
// array; callers must not mutate).
func (r *Recorder) Samples() []Sample { return r.samples }

// Len returns the number of recorded samples.
func (r *Recorder) Len() int { return len(r.samples) }

// Reset drops all recorded samples.
func (r *Recorder) Reset() { r.samples = nil }

// Last returns the most recent sample, or a zero sample if empty.
func (r *Recorder) Last() Sample {
	if len(r.samples) == 0 {
		return Sample{}
	}
	return r.samples[len(r.samples)-1]
}

// Deltas returns the interval-delta form of the series: element i is
// sample i minus sample i-1 (the first delta is against zero). This
// is the shape bandwidth traces plot.
func (r *Recorder) Deltas() []Sample {
	out := make([]Sample, len(r.samples))
	var prev Sample
	for i, s := range r.samples {
		out[i] = s.Sub(prev)
		prev = s
	}
	return out
}

// header returns the CSV column names: the fixed counter columns
// followed by one reads/writes pair per channel (nch is the widest
// channel slice in the series).
func header(nch int) []string {
	cols := []string{
		"demand", "clock_s", "label",
		"llc_read", "llc_write",
		"dram_read", "dram_write", "nvram_read", "nvram_write",
		"tag_hit", "tag_miss_clean", "tag_miss_dirty", "ddo",
		"media_read", "media_write",
		"d_demand", "d_clock_s",
		"dram_read_gbs", "dram_write_gbs", "nvram_read_gbs", "nvram_write_gbs",
	}
	for i := 0; i < nch; i++ {
		cols = append(cols, fmt.Sprintf("ch%d_reads", i), fmt.Sprintf("ch%d_writes", i))
	}
	return cols
}

// WriteCSV emits the series with one row per sample: the cumulative
// counters, the interval deltas, delta bandwidths in GB/s (0 when
// the source has no time model), and per-channel CAS columns when
// any sample carries them. The layout matches what the paper's
// figures plot, with the demand clock as the deterministic x axis.
func (r *Recorder) WriteCSV(w io.Writer) error {
	nch := 0
	for _, s := range r.samples {
		if len(s.ChannelReads) > nch {
			nch = len(s.ChannelReads)
		}
	}
	rows := make([][]string, 0, len(r.samples))
	var prev Sample
	for _, s := range r.samples {
		d := s.Sub(prev)
		prev = s
		row := []string{
			strconv.FormatUint(s.Demand, 10),
			formatSeconds(s.Clock),
			s.Label,
			strconv.FormatUint(s.LLCRead, 10),
			strconv.FormatUint(s.LLCWrite, 10),
			strconv.FormatUint(s.DRAMRead, 10),
			strconv.FormatUint(s.DRAMWrite, 10),
			strconv.FormatUint(s.NVRAMRead, 10),
			strconv.FormatUint(s.NVRAMWrite, 10),
			strconv.FormatUint(s.TagHit, 10),
			strconv.FormatUint(s.TagMissClean, 10),
			strconv.FormatUint(s.TagMissDirty, 10),
			strconv.FormatUint(s.DDO, 10),
			strconv.FormatUint(s.MediaReads, 10),
			strconv.FormatUint(s.MediaWrites, 10),
			strconv.FormatUint(d.Demand, 10),
			formatSeconds(d.Clock),
			formatGBs(d.DRAMReadBW()),
			formatGBs(d.DRAMWriteBW()),
			formatGBs(d.NVRAMReadBW()),
			formatGBs(d.NVRAMWriteBW()),
		}
		for i := 0; i < nch; i++ {
			var cr, cw uint64
			if i < len(s.ChannelReads) {
				cr = s.ChannelReads[i]
			}
			if i < len(s.ChannelWrites) {
				cw = s.ChannelWrites[i]
			}
			row = append(row, strconv.FormatUint(cr, 10), strconv.FormatUint(cw, 10))
		}
		rows = append(rows, row)
	}
	return WriteCSVRows(w, header(nch), rows)
}

// formatSeconds renders simulated seconds with fixed microsecond
// precision, matching the perfcounter trace convention.
func formatSeconds(s float64) string { return strconv.FormatFloat(s, 'f', 6, 64) }

// formatGBs renders a bytes/s rate in GB/s with fixed precision.
func formatGBs(bps float64) string { return strconv.FormatFloat(bps/1e9, 'f', 3, 64) }

// WriteJSON emits the cumulative series as an indented JSON array.
func (r *Recorder) WriteJSON(w io.Writer) error {
	samples := r.samples
	if samples == nil {
		samples = []Sample{}
	}
	return EncodeJSON(w, samples)
}

// --- shared serialization helpers ------------------------------------

// WriteCSVRows emits a header row and data rows, quoting cells that
// contain commas, quotes or newlines. It is the one CSV convention of
// the repository: results.Table and the telemetry writers both
// serialize through it.
func WriteCSVRows(w io.Writer, headers []string, rows [][]string) error {
	writeRow := func(cells []string) error {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if strings.ContainsAny(c, ",\"\n") {
				c = `"` + strings.ReplaceAll(c, `"`, `""`) + `"`
			}
			parts[i] = c
		}
		_, err := fmt.Fprintln(w, strings.Join(parts, ","))
		return err
	}
	if err := writeRow(headers); err != nil {
		return err
	}
	for _, r := range rows {
		if err := writeRow(r); err != nil {
			return err
		}
	}
	return nil
}

// EncodeJSON writes v as indented JSON — the one JSON convention of
// the repository's artifacts (telemetry traces, the throughput
// baseline report).
func EncodeJSON(w io.Writer, v any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

// --- artifact writer --------------------------------------------------

// TraceSink records a series and, on Close, writes it as a pair of
// artifacts — <dir>/<name>.csv and <dir>/<name>.json — the
// Figure 5-9-style bandwidth-trace files of the reproduction's
// results directory.
type TraceSink struct {
	Recorder
	dir  string
	name string
}

// NewTraceSink returns a trace artifact writer for dir/name.{csv,json}.
func NewTraceSink(dir, name string) *TraceSink {
	return &TraceSink{dir: dir, name: name}
}

// Close writes both artifact files. It may be called more than once;
// each call rewrites the files from the full series.
func (t *TraceSink) Close() error {
	if err := os.MkdirAll(t.dir, 0o755); err != nil {
		return err
	}
	csvF, err := os.Create(filepath.Join(t.dir, t.name+".csv"))
	if err != nil {
		return err
	}
	if err := t.WriteCSV(csvF); err != nil {
		csvF.Close()
		return err
	}
	if err := csvF.Close(); err != nil {
		return err
	}
	jsonF, err := os.Create(filepath.Join(t.dir, t.name+".json"))
	if err != nil {
		return err
	}
	if err := t.WriteJSON(jsonF); err != nil {
		jsonF.Close()
		return err
	}
	return jsonF.Close()
}
