// The Prom sink: Prometheus text-exposition (version 0.0.4) export of
// the latest sample per source, plus free-form gauges for run
// progress. It is the live-inspection endpoint for long runs —
// cmd/repro -metrics-addr wires it behind /metrics — and the one
// telemetry sink that is internally locked, because HTTP scrapes are
// concurrent with the simulation by nature.
//
// Rendering is deterministic: sources and gauges are emitted in
// sorted order (the golden-file test pins the exact bytes), so the
// endpoint obeys the same byte-identical-artifact contract as every
// other serializer in the repository.

package telemetry

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// promNamespace prefixes every exported metric name.
const promNamespace = "twolm"

// DefaultSourceLabel is the source label used for samples recorded
// without a Label.
const DefaultSourceLabel = "sim"

// gauge is one free-form exported value.
type gauge struct {
	help  string
	value float64
}

// Prom is a Sink that retains the latest sample per source label and
// serves the whole set in Prometheus text exposition format. The
// zero value is not usable; construct with NewProm.
type Prom struct {
	mu     sync.Mutex
	latest map[string]Sample
	gauges map[string]gauge
}

// NewProm returns an empty Prometheus exporter.
func NewProm() *Prom {
	return &Prom{latest: map[string]Sample{}, gauges: map[string]gauge{}}
}

// Record implements Sink: the sample replaces the previous one for
// its source label (empty labels map to DefaultSourceLabel).
func (p *Prom) Record(s Sample) {
	key := s.Label
	if key == "" {
		key = DefaultSourceLabel
	}
	p.mu.Lock()
	p.latest[key] = s
	p.mu.Unlock()
}

// SetGauge publishes one named gauge (for example run progress:
// completed experiment jobs). The name is used verbatim, so callers
// should follow Prometheus conventions (snake_case, unit suffix).
func (p *Prom) SetGauge(name, help string, v float64) {
	p.mu.Lock()
	p.gauges[name] = gauge{help: help, value: v}
	p.mu.Unlock()
}

// AddGauge adds delta to a named gauge, creating it at delta if new —
// the concurrent-increment form used by job-completion callbacks.
func (p *Prom) AddGauge(name, help string, delta float64) {
	p.mu.Lock()
	g := p.gauges[name]
	g.help = help
	g.value += delta
	p.gauges[name] = g
	p.mu.Unlock()
}

// ServeHTTP implements http.Handler with the text exposition format.
func (p *Prom) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	p.Render(w)
}

// counterMetric describes one exported counter derived from a Sample.
type counterMetric struct {
	name string
	help string
	get  func(Sample) uint64
}

// counterMetrics is the fixed export schema, in output order.
var counterMetrics = []counterMetric{
	{"llc_read_lines_total", "Demand reads from the LLC (loads + RFOs), in 64 B lines.", func(s Sample) uint64 { return s.LLCRead }},
	{"llc_write_lines_total", "Writebacks / nontemporal stores from the LLC, in 64 B lines.", func(s Sample) uint64 { return s.LLCWrite }},
	{"dram_read_lines_total", "DRAM CAS reads, in 64 B lines.", func(s Sample) uint64 { return s.DRAMRead }},
	{"dram_write_lines_total", "DRAM CAS writes, in 64 B lines.", func(s Sample) uint64 { return s.DRAMWrite }},
	{"nvram_read_lines_total", "NVRAM read requests, in 64 B lines.", func(s Sample) uint64 { return s.NVRAMRead }},
	{"nvram_write_lines_total", "NVRAM write requests, in 64 B lines.", func(s Sample) uint64 { return s.NVRAMWrite }},
	{"tag_hit_total", "2LM DRAM-cache tag hits.", func(s Sample) uint64 { return s.TagHit }},
	{"tag_miss_clean_total", "2LM tag misses with a clean victim.", func(s Sample) uint64 { return s.TagMissClean }},
	{"tag_miss_dirty_total", "2LM tag misses with a dirty victim.", func(s Sample) uint64 { return s.TagMissDirty }},
	{"ddo_total", "Writes forwarded via the Dirty Data Optimization.", func(s Sample) uint64 { return s.DDO }},
	{"nvram_media_read_blocks_total", "NVRAM media reads, in 256 B media blocks.", func(s Sample) uint64 { return s.MediaReads }},
	{"nvram_media_write_blocks_total", "NVRAM media writes, in 256 B media blocks.", func(s Sample) uint64 { return s.MediaWrites }},
}

// Render renders the full exposition deterministically.
func (p *Prom) Render(w io.Writer) error {
	p.mu.Lock()
	labels := make([]string, 0, len(p.latest))
	for l := range p.latest {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	samples := make([]Sample, len(labels))
	for i, l := range labels {
		samples[i] = p.latest[l]
	}
	names := make([]string, 0, len(p.gauges))
	for n := range p.gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	gauges := make([]gauge, len(names))
	for i, n := range names {
		gauges[i] = p.gauges[n]
	}
	p.mu.Unlock()

	for _, m := range counterMetrics {
		full := promNamespace + "_" + m.name
		if err := writeHeader(w, full, m.help, "counter"); err != nil {
			return err
		}
		for i, l := range labels {
			if _, err := fmt.Fprintf(w, "%s{source=%q} %d\n", full, escapeLabel(l), m.get(samples[i])); err != nil {
				return err
			}
		}
	}

	// Simulated clock and the demand sample clock, as gauges: they
	// describe the latest sample, not a monotonic process counter.
	if err := writeHeader(w, promNamespace+"_sim_clock_seconds", "Simulated elapsed time of the latest sample.", "gauge"); err != nil {
		return err
	}
	for i, l := range labels {
		if _, err := fmt.Fprintf(w, "%s_sim_clock_seconds{source=%q} %s\n",
			promNamespace, escapeLabel(l), formatFloat(samples[i].Clock)); err != nil {
			return err
		}
	}
	if err := writeHeader(w, promNamespace+"_demand_lines", "Demand-line sample clock of the latest sample.", "gauge"); err != nil {
		return err
	}
	for i, l := range labels {
		if _, err := fmt.Fprintf(w, "%s_demand_lines{source=%q} %d\n",
			promNamespace, escapeLabel(l), samples[i].Demand); err != nil {
			return err
		}
	}

	// Per-channel CAS counters, for sources that expose them.
	if err := writeHeader(w, promNamespace+"_dram_channel_cas_total", "Per-channel DRAM CAS transactions, in 64 B lines.", "counter"); err != nil {
		return err
	}
	for i, l := range labels {
		s := samples[i]
		for ch, v := range s.ChannelReads {
			if _, err := fmt.Fprintf(w, "%s_dram_channel_cas_total{source=%q,channel=\"%d\",op=\"read\"} %d\n",
				promNamespace, escapeLabel(l), ch, v); err != nil {
				return err
			}
		}
		for ch, v := range s.ChannelWrites {
			if _, err := fmt.Fprintf(w, "%s_dram_channel_cas_total{source=%q,channel=\"%d\",op=\"write\"} %d\n",
				promNamespace, escapeLabel(l), ch, v); err != nil {
				return err
			}
		}
	}

	for i, n := range names {
		full := promNamespace + "_" + n
		if err := writeHeader(w, full, gauges[i].help, "gauge"); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s %s\n", full, formatFloat(gauges[i].value)); err != nil {
			return err
		}
	}
	return nil
}

// writeHeader emits the HELP/TYPE preamble for one metric.
func writeHeader(w io.Writer, name, help, typ string) error {
	if help != "" {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n", name, help); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "# TYPE %s %s\n", name, typ)
	return err
}

// escapeLabel escapes a label value per the exposition format
// (backslash, quote, newline).
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return v
}

// formatFloat renders a float the way Prometheus clients expect
// (shortest round-trip representation).
func formatFloat(f float64) string {
	return strconv.FormatFloat(f, 'g', -1, 64)
}
