package trace

import (
	"bytes"
	"fmt"
	"testing"

	"twolm/internal/core"
	"twolm/internal/kernels"
	"twolm/internal/mem"
)

// TestLiveTapReplayEquivalence guards the batched fast path's tap
// fallback from three sides at once. For each kernel shape it runs:
//
//   - a live system with no tap, which takes the batched range fast
//     paths through the demand pipeline;
//   - a live system with the trace recorder attached, which forces
//     every Range call down the per-line slow path so the tap observes
//     each operation;
//   - a fresh system driven by replaying the recorded trace, which
//     issues the operations one by one through the public per-line API.
//
// All three must land on byte-identical imc.Counters, per-channel CAS
// counts, and NVRAM media counters: if the fast path ever diverged
// from the per-line path, or the tap missed an operation, recorded
// traces would silently stop being faithful stand-ins for live runs.
func TestLiveTapReplayEquivalence(t *testing.T) {
	specs := []kernels.Spec{
		{Op: kernels.ReadOnly, Pattern: mem.Sequential, Threads: 4},
		{Op: kernels.WriteOnly, Pattern: mem.Sequential, Threads: 4},
		{Op: kernels.WriteOnly, Pattern: mem.Sequential, Store: kernels.Nontemporal, Threads: 4},
		{Op: kernels.ReadModifyWrite, Pattern: mem.Sequential, Threads: 4},
		{Op: kernels.ReadModifyWrite, Pattern: mem.Random, Granularity: 128, Threads: 4},
	}
	for _, mode := range []core.Mode{core.Mode2LM, core.Mode1LM} {
		for _, spec := range specs {
			t.Run(fmt.Sprintf("%s/%s", mode, spec.Name()), func(t *testing.T) {
				run := func(sys *core.System) mem.Region {
					region, err := sys.AddressSpace().Alloc(2 * sys.Platform().DRAMSize())
					if err != nil {
						t.Fatal(err)
					}
					if _, err := kernels.Run(sys, region, spec); err != nil {
						t.Fatal(err)
					}
					return region
				}

				fast := newSystem(t, mode)
				run(fast)

				recSys := newSystem(t, mode)
				var buf bytes.Buffer
				w := NewWriter(&buf)
				w.Attach(recSys)
				run(recSys)
				Detach(recSys)
				if err := w.Close(); err != nil {
					t.Fatal(err)
				}
				if w.Ops() == 0 {
					t.Fatal("recorder observed no operations")
				}

				replaySys := newSystem(t, mode)
				replaySys.SetThreads(recSys.Threads())
				if _, err := Replay(replaySys, &buf); err != nil {
					t.Fatal(err)
				}
				// kernels.Run drains the LLC and syncs; the replayed
				// stream contains only the demand ops, so drain to match.
				replaySys.DrainLLC()

				assertSameTraffic(t, "fast vs tapped", fast, recSys)
				assertSameTraffic(t, "tapped vs replayed", recSys, replaySys)
			})
		}
	}
}

// assertSameTraffic asserts byte-identical controller counters,
// per-channel CAS counts, and NVRAM interface/media counters.
func assertSameTraffic(t *testing.T, label string, a, b *core.System) {
	t.Helper()
	if ac, bc := a.Counters(), b.Counters(); ac != bc {
		t.Errorf("%s: counters diverge\n a: %v\n b: %v", label, ac, bc)
	}
	ach, bch := a.DRAM().ChannelCounters(), b.DRAM().ChannelCounters()
	for i := range ach {
		if ach[i] != bch[i] {
			t.Errorf("%s: channel %d CAS diverges: %+v vs %+v", label, i, ach[i], bch[i])
		}
	}
	type media struct{ r, w, mr, mw uint64 }
	am := media{a.NVRAM().TotalReads(), a.NVRAM().TotalWrites(),
		a.NVRAM().TotalMediaReads(), a.NVRAM().TotalMediaWrites()}
	bm := media{b.NVRAM().TotalReads(), b.NVRAM().TotalWrites(),
		b.NVRAM().TotalMediaReads(), b.NVRAM().TotalMediaWrites()}
	if am != bm {
		t.Errorf("%s: NVRAM media counters diverge: %+v vs %+v", label, am, bm)
	}
}
