package trace

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"testing"
	"testing/quick"

	"twolm/internal/core"
	"twolm/internal/kernels"
	"twolm/internal/mem"
	"twolm/internal/platform"
)

func newSystem(t *testing.T, mode core.Mode) *core.System {
	t.Helper()
	sys, err := core.New(core.Config{
		Platform: platform.Config{
			Sockets: 1, ChannelsPerSocket: 6,
			DRAMPerChannel:  mem.MiB,
			NVRAMPerChannel: 64 * mem.MiB,
			Scale:           1, Threads: 24,
		},
		Mode:     mode,
		LLCBytes: 16 * mem.KiB,
	})
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// TestRoundTrip: events decode to exactly what was encoded.
func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	events := []Event{
		{Op: core.TapLoad, Addr: 0},
		{Op: core.TapLoad, Addr: 64},
		{Op: core.TapStore, Addr: 1 << 30},
		{IsSync: true, Label: "k1", Compute: 0.125},
		{Op: core.TapStoreNT, Addr: 128},
		{Op: core.TapRMW, Addr: 0xdeadbe40},
		{IsSync: true, Label: "", Compute: 0},
	}
	for _, ev := range events {
		if ev.IsSync {
			w.Sync(ev.Label, ev.Compute)
		} else {
			w.Access(ev.Op, ev.Addr)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if w.Ops() != 5 {
		t.Errorf("Ops = %d, want 5", w.Ops())
	}

	r := NewReader(&buf)
	for i, want := range events {
		got, err := r.Next()
		if err != nil {
			t.Fatalf("event %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("event %d: got %+v, want %+v", i, got, want)
		}
	}
	if _, err := r.Next(); !errors.Is(err, io.EOF) {
		t.Errorf("expected clean EOF, got %v", err)
	}
	// Subsequent reads stay EOF.
	if _, err := r.Next(); !errors.Is(err, io.EOF) {
		t.Errorf("EOF not sticky: %v", err)
	}
}

// TestRoundTripProperty: arbitrary address sequences survive encoding.
func TestRoundTripProperty(t *testing.T) {
	f := func(addrs []uint32, ops []uint8) bool {
		var buf bytes.Buffer
		w := NewWriter(&buf)
		var want []Event
		for i, a := range addrs {
			op := core.TapOp(0)
			if i < len(ops) {
				op = core.TapOp(ops[i] % 4)
			}
			addr := uint64(a)
			w.Access(op, addr)
			want = append(want, Event{Op: op, Addr: addr})
		}
		if err := w.Close(); err != nil {
			return false
		}
		r := NewReader(&buf)
		for _, wv := range want {
			got, err := r.Next()
			if err != nil || got != wv {
				return false
			}
		}
		_, err := r.Next()
		return errors.Is(err, io.EOF)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestCorruptStreams: bad inputs produce ErrCorrupt, not panics.
func TestCorruptStreams(t *testing.T) {
	cases := [][]byte{
		{},                         // empty
		{'X', 'X', 'X', 'X'},       // bad magic
		{'2', 'L', 'M', '1'},       // missing end marker
		{'2', 'L', 'M', '1', 99},   // unknown opcode
		{'2', 'L', 'M', '1', 0},    // truncated delta
		{'2', 'L', 'M', '1', 4, 1}, // truncated sync
	}
	for i, raw := range cases {
		r := NewReader(bytes.NewReader(raw))
		for {
			_, err := r.Next()
			if errors.Is(err, io.EOF) {
				t.Errorf("case %d: corrupt stream decoded cleanly", i)
				break
			}
			if err != nil {
				if !errors.Is(err, ErrCorrupt) {
					t.Errorf("case %d: error %v is not ErrCorrupt", i, err)
				}
				break
			}
		}
	}
}

// TestRecordReplayEquivalence is the package's reason to exist: a
// workload recorded on one system replays onto an identical fresh
// system with identical counters and clock.
func TestRecordReplayEquivalence(t *testing.T) {
	recSys := newSystem(t, core.Mode2LM)
	region, err := recSys.AddressSpace().Alloc(4 * recSys.Platform().DRAMSize())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Attach(recSys)
	if _, err := kernels.Run(recSys, region, kernels.Spec{
		Op: kernels.ReadModifyWrite, Pattern: mem.Random, Threads: 24,
	}); err != nil {
		t.Fatal(err)
	}
	Detach(recSys)
	w.Sync("end", 0)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	replaySys := newSystem(t, core.Mode2LM)
	replaySys.SetThreads(24)
	replaySys.SetTraffic(mem.Random, mem.Line)
	ops, err := Replay(replaySys, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if ops == 0 {
		t.Fatal("nothing replayed")
	}
	replaySys.DrainLLC()
	replaySys.Sync("drain", 0)

	a, b := recSys.Counters(), replaySys.Counters()
	if a != b {
		t.Errorf("counters diverge:\nrecorded: %v\nreplayed: %v", a, b)
	}
}

// TestReplayAcrossPolicies: the same trace drives differently
// configured systems — here the DDO ablation — and the counters react.
func TestReplayAcrossPolicies(t *testing.T) {
	recSys := newSystem(t, core.Mode2LM)
	region, _ := recSys.AddressSpace().Alloc(recSys.Platform().DRAMSize() / 4)
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Attach(recSys)
	if _, err := kernels.Run(recSys, region, kernels.Spec{Op: kernels.ReadModifyWrite, Threads: 4}); err != nil {
		t.Fatal(err)
	}
	Detach(recSys)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	run := func(disableDDO bool) uint64 {
		sys := newSystem(t, core.Mode2LM)
		sys.Controller().DisableDDO = disableDDO
		if _, err := Replay(sys, bytes.NewReader(raw)); err != nil {
			t.Fatal(err)
		}
		sys.DrainLLC()
		return sys.Counters().DRAMRead
	}
	if with, without := run(false), run(true); without <= with {
		t.Errorf("replayed ablation showed no extra tag checks: %d vs %d", without, with)
	}
}

// TestCompactEncoding: sequential traces cost ~2 bytes per access.
func TestCompactEncoding(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	const n = 10000
	for i := uint64(0); i < n; i++ {
		w.Access(core.TapLoad, i*mem.Line)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Opcode byte + 2-byte varint for the 64 B stride.
	if perOp := float64(buf.Len()) / n; perOp > 3.1 {
		t.Errorf("sequential encoding costs %.1f bytes/op, want ~3", perOp)
	}
}

// TestWriterErrorSticky: a failing underlying writer surfaces at Close.
func TestWriterErrorSticky(t *testing.T) {
	w := NewWriter(failWriter{})
	for i := 0; i < 10000; i++ { // enough to overflow the bufio buffer
		w.Access(core.TapLoad, rand.Uint64())
	}
	if err := w.Close(); err == nil {
		t.Error("Close succeeded despite write failures")
	}
}

type failWriter struct{}

func (failWriter) Write(p []byte) (int, error) { return 0, errors.New("boom") }
