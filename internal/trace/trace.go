// Package trace records and replays demand-access traces. The paper's
// methodology leans on deterministic, repeatable access streams ("our
// benchmarks are long running and largely deterministic, we run them
// twice to obtain both bandwidth and tag events"); this package makes
// any simulated workload repeatable the same way: record its operation
// stream once, then replay it against differently configured systems
// (other modes, policies, associativities) for apples-to-apples
// counter comparisons.
//
// The format is a compact binary stream: each record is one opcode
// byte followed by a zigzag-varint address delta (accesses) or a
// float64 plus a length-prefixed label (sync points). Sequential
// streams encode in ~2 bytes per access.
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"twolm/internal/core"
)

// magic identifies trace streams.
var magic = [4]byte{'2', 'L', 'M', '1'}

// Opcodes.
const (
	opLoad byte = iota
	opStore
	opStoreNT
	opRMW
	opSync
	opEnd
)

// Writer serializes a trace.
type Writer struct {
	w        *bufio.Writer
	lastAddr uint64
	started  bool
	err      error
	ops      uint64
}

// NewWriter returns a Writer over w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriter(w)}
}

// start lazily emits the header.
func (t *Writer) start() {
	if t.started || t.err != nil {
		return
	}
	t.started = true
	_, t.err = t.w.Write(magic[:])
}

// putUvarint writes v.
func (t *Writer) putUvarint(v uint64) {
	if t.err != nil {
		return
	}
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	_, t.err = t.w.Write(buf[:n])
}

// zigzag encodes a signed delta as unsigned.
func zigzag(d int64) uint64 { return uint64(d<<1) ^ uint64(d>>63) }

// unzigzag inverts zigzag.
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// Access records one demand operation.
func (t *Writer) Access(op core.TapOp, addr uint64) {
	t.start()
	if t.err != nil {
		return
	}
	var code byte
	switch op {
	case core.TapLoad:
		code = opLoad
	case core.TapStore:
		code = opStore
	case core.TapStoreNT:
		code = opStoreNT
	case core.TapRMW:
		code = opRMW
	default:
		t.err = fmt.Errorf("trace: unknown op %d", op)
		return
	}
	t.err = t.w.WriteByte(code)
	t.putUvarint(zigzag(int64(addr) - int64(t.lastAddr)))
	t.lastAddr = addr
	t.ops++
}

// Sync records an interval boundary with its compute time and label.
func (t *Writer) Sync(label string, computeSeconds float64) {
	t.start()
	if t.err != nil {
		return
	}
	t.err = t.w.WriteByte(opSync)
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], math.Float64bits(computeSeconds))
	if t.err == nil {
		_, t.err = t.w.Write(buf[:])
	}
	t.putUvarint(uint64(len(label)))
	if t.err == nil {
		_, t.err = t.w.WriteString(label)
	}
}

// Ops returns the number of accesses recorded.
func (t *Writer) Ops() uint64 { return t.ops }

// Close terminates and flushes the stream.
func (t *Writer) Close() error {
	t.start()
	if t.err != nil {
		return t.err
	}
	if err := t.w.WriteByte(opEnd); err != nil {
		return err
	}
	return t.w.Flush()
}

// Attach wires the writer into sys: every subsequent demand operation
// is recorded. Call sys.SetTap(nil) (or Detach) when done; Sync events
// must be recorded explicitly via the returned sync function, since
// the system does not tap its own Sync.
func (t *Writer) Attach(sys *core.System) {
	sys.SetTap(t.Access)
}

// Detach removes the tap.
func Detach(sys *core.System) { sys.SetTap(nil) }

// Event is one decoded trace record.
type Event struct {
	// Op is the demand operation; valid when !IsSync.
	Op   core.TapOp
	Addr uint64
	// IsSync marks an interval boundary carrying Label and Compute.
	IsSync  bool
	Label   string
	Compute float64
}

// Reader decodes a trace.
type Reader struct {
	r        *bufio.Reader
	lastAddr uint64
	started  bool
	done     bool
}

// NewReader returns a Reader over r.
func NewReader(r io.Reader) *Reader {
	return &Reader{r: bufio.NewReader(r)}
}

// ErrCorrupt reports a malformed trace stream.
var ErrCorrupt = errors.New("trace: corrupt stream")

// Next decodes the next event; io.EOF signals a clean end.
func (t *Reader) Next() (Event, error) {
	if t.done {
		return Event{}, io.EOF
	}
	if !t.started {
		var hdr [4]byte
		if _, err := io.ReadFull(t.r, hdr[:]); err != nil {
			return Event{}, fmt.Errorf("%w: missing header", ErrCorrupt)
		}
		if hdr != magic {
			return Event{}, fmt.Errorf("%w: bad magic %q", ErrCorrupt, hdr[:])
		}
		t.started = true
	}
	code, err := t.r.ReadByte()
	if err != nil {
		return Event{}, fmt.Errorf("%w: truncated", ErrCorrupt)
	}
	switch code {
	case opEnd:
		t.done = true
		return Event{}, io.EOF
	case opSync:
		var buf [8]byte
		if _, err := io.ReadFull(t.r, buf[:]); err != nil {
			return Event{}, fmt.Errorf("%w: truncated sync", ErrCorrupt)
		}
		compute := math.Float64frombits(binary.LittleEndian.Uint64(buf[:]))
		n, err := binary.ReadUvarint(t.r)
		if err != nil {
			return Event{}, fmt.Errorf("%w: truncated label length", ErrCorrupt)
		}
		if n > 1<<20 {
			return Event{}, fmt.Errorf("%w: label length %d", ErrCorrupt, n)
		}
		label := make([]byte, n)
		if _, err := io.ReadFull(t.r, label); err != nil {
			return Event{}, fmt.Errorf("%w: truncated label", ErrCorrupt)
		}
		return Event{IsSync: true, Label: string(label), Compute: compute}, nil
	case opLoad, opStore, opStoreNT, opRMW:
		d, err := binary.ReadUvarint(t.r)
		if err != nil {
			return Event{}, fmt.Errorf("%w: truncated delta", ErrCorrupt)
		}
		addr := uint64(int64(t.lastAddr) + unzigzag(d))
		t.lastAddr = addr
		var op core.TapOp
		switch code {
		case opLoad:
			op = core.TapLoad
		case opStore:
			op = core.TapStore
		case opStoreNT:
			op = core.TapStoreNT
		default:
			op = core.TapRMW
		}
		return Event{Op: op, Addr: addr}, nil
	default:
		return Event{}, fmt.Errorf("%w: opcode %d", ErrCorrupt, code)
	}
}

// Replay drives sys with every event of the trace: accesses become
// demand operations, sync records close intervals. Returns the number
// of accesses replayed.
func Replay(sys *core.System, r io.Reader) (uint64, error) {
	tr := NewReader(r)
	var ops uint64
	for {
		ev, err := tr.Next()
		if errors.Is(err, io.EOF) {
			return ops, nil
		}
		if err != nil {
			return ops, err
		}
		if ev.IsSync {
			sys.Sync(ev.Label, ev.Compute)
			continue
		}
		ops++
		switch ev.Op {
		case core.TapLoad:
			sys.Load(ev.Addr)
		case core.TapStore:
			sys.Store(ev.Addr)
		case core.TapStoreNT:
			sys.StoreNT(ev.Addr)
		case core.TapRMW:
			sys.RMW(ev.Addr)
		}
	}
}
