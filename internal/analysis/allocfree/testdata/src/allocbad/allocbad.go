// Package allocbad exercises every construct allocfree flags, both in
// the marked function itself and in a helper it reaches.
package allocbad

import "fmt"

type req struct{ addr uint64 }

type batch struct {
	reqs  []req
	sink  func()
	names map[string]int
}

//alloc:free the per-op dispatch path must stay at 0 allocs/op
func (b *batch) Dispatch(addr uint64) {
	b.reqs = append(b.reqs, req{addr: addr}) // self-append: exempt
	tmp := make([]req, 4)                    // want `allocates on the //alloc:free path \(allocbad\.\(batch\)\.Dispatch\): make`
	_ = tmp
	p := new(req) // want `allocates on the //alloc:free path .*: new`
	_ = p
	other := append(tmp, req{}) // want `append to a destination other than its source`
	_ = other
	s := []req{{addr: 1}} // want `slice literal`
	_ = s
	m := map[string]int{} // want `map literal`
	_ = m
	e := &req{addr: addr} // want `&-escaping composite literal`
	_ = e
	b.sink = func() {} // want `function literal`
	go b.helper(addr)  // want `go statement`
	fmt.Println(addr)  // want `fmt\.Println call`
	bs := []byte("x")  // want `string/byte-slice conversion`
	_ = bs
	b.box(addr) // boxing happens inside the reachable helper
	b.helper(addr)
}

// helper is reachable from Dispatch, so it is scanned too.
func (b *batch) helper(addr uint64) {
	b.reqs = append(b.reqs, req{addr: addr}, req{addr: addr + 1}) // self-append: exempt
	s := string([]byte{byte(addr)})                               // want `string/byte-slice conversion` `slice literal`
	_ = s
}

func (b *batch) box(v uint64) {
	b.record(v) // want `concrete value converted to interface parameter \(boxing\)`
}

func (b *batch) record(v interface{}) { _ = v }
