// Package allocok is the clean counterpart: the amortized-allocation
// idioms the hot paths actually use, all exempt. allocfree must
// report nothing here.
package allocok

import "fmt"

type req struct{ addr uint64 }

type batch struct {
	reqs []req
	lazy *[8]uint64
}

// grow is the declared amortization boundary; it may allocate freely.
//
//alloc:cold grow-once capacity maintenance, amortized to 0 allocs/op
func (b *batch) grow(n int) {
	next := make([]req, len(b.reqs), n)
	copy(next, b.reqs)
	b.reqs = next
}

//alloc:free steady-state dispatch is proven 0 allocs/op by benchmark
func (b *batch) Dispatch(addrs []uint64) error {
	if cap(b.reqs) < len(b.reqs)+len(addrs) {
		b.reqs = make([]req, len(b.reqs), 2*(len(b.reqs)+len(addrs))) // cap-guarded: exempt
	}
	if b.lazy == nil {
		b.lazy = new([8]uint64) // nil-guarded lazy init: exempt
	}
	for _, a := range addrs {
		b.reqs = append(b.reqs, req{addr: a}) // self-append: exempt
		b.lazy[a%8]++
	}
	if err := b.flush(); err != nil {
		return fmt.Errorf("dispatch: %w", err) // error path: exempt
	}
	b.grow(1024)           // behind the //alloc:cold boundary: not scanned
	var scratch [16]uint64 // array value: stack, fine
	_ = scratch
	s := struct{ n int }{n: len(addrs)} // struct literal: stack, fine
	_ = s
	return nil
}

func (b *batch) flush() error {
	b.reqs = b.reqs[:0]
	return nil
}
