// Package allocfree turns the repo's benchmark-only 0-allocs/op
// guarantees into a compile-time invariant: functions marked
// //alloc:free — and everything reachable from them through the
// lintkit call graph — must not contain allocation-inducing
// constructs.
//
// Flagged: make and new, slice/map composite literals (and &-escaping
// literals), append whose destination differs from its source, fmt
// calls, function literals (closures), go statements, string<->[]byte
// and string<->[]rune conversions, and concrete values passed to
// interface parameters (boxing).
//
// Two escape hatches keep the amortized-allocation discipline the hot
// paths actually use expressible:
//
//   - Statements inside an if-block whose condition compares len/cap
//     or tests nil are exempt: `if cap(b.reqs) < n { b.reqs = make(...) }`
//     and `if s.batch == nil { s.batch = new(Batch) }` are grow-once
//     cold paths, and `if err != nil { return fmt.Errorf(...) }` is an
//     error path that only fires when the run is already over.
//   - //alloc:cold <reason> on a function declaration cuts reachability
//     there: the marked function (a constructor, a sampling slow path)
//     is the declared amortization boundary and is not scanned.
//
// Self-append (x = append(x, ...)) is exempt everywhere: with
// maintained capacity it is the repo's standard 0-alloc batching
// idiom, and the capacity maintenance itself is what the guards and
// cold markers declare.
package allocfree

import (
	"go/ast"
	"go/token"
	"go/types"

	"twolm/internal/analysis/lintkit"
)

const (
	// FreeMarker declares the 0-allocs/op contract on a function; the
	// analyzer scans it and everything it reaches.
	FreeMarker = "alloc:free"
	// ColdMarker declares an amortization boundary: the marked
	// function may allocate (construction, growth, sampling) and
	// reachability stops there. The trailing reason is mandatory.
	ColdMarker = "alloc:cold"
)

var Analyzer = &lintkit.Analyzer{
	Name: "allocfree",
	Doc: "flags allocation-inducing constructs in //alloc:free functions and " +
		"everything reachable from them (stopping at //alloc:cold boundaries), " +
		"making the hot paths' 0-allocs/op benchmark guarantee a static invariant",
	Run: run,
}

func run(pass *lintkit.Pass) error {
	mod := pass.Module
	entries := mod.MarkedFuncs(FreeMarker)
	if len(entries) == 0 {
		return nil
	}
	cold := func(fn *types.Func) bool { return mod.FuncMarked(fn, ColdMarker) }
	reach := mod.Graph.ReachableFiltered(entries, cold)

	for _, fn := range mod.Funcs() {
		if reach[fn] == nil || cold(fn) {
			continue
		}
		fd, pkg := mod.FuncDecl(fn)
		if pkg == nil || pkg.Types != pass.Pkg || fd.Body == nil {
			continue
		}
		checkBody(pass, pkg, fn, fd, reach)
	}
	return nil
}

// checkBody walks one function body, skipping cold-guarded if-blocks,
// and reports every allocation-inducing construct.
func checkBody(pass *lintkit.Pass, pkg *lintkit.Package, fn *types.Func, fd *ast.FuncDecl, reach map[*types.Func]*types.Func) {
	info := pkg.Info
	selfAppends := selfAppendCalls(fd.Body)
	report := func(pos token.Pos, what string) {
		pass.Reportf(pos, "allocates on the //alloc:free path (%s): %s; hoist it behind a len/cap/nil guard or an //alloc:cold boundary",
			lintkit.WitnessPath(reach, fn), what)
	}

	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		ast.Inspect(n, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.IfStmt:
				if coldGuard(info, x.Cond) {
					if x.Init != nil {
						walk(x.Init)
					}
					return false // guarded block: declared cold path
				}
			case *ast.FuncLit:
				report(x.Pos(), "function literal (closures escape to the heap)")
				return false
			case *ast.GoStmt:
				report(x.Pos(), "go statement (goroutine launch allocates)")
			case *ast.CompositeLit:
				switch info.TypeOf(x).Underlying().(type) {
				case *types.Slice:
					report(x.Pos(), "slice literal")
				case *types.Map:
					report(x.Pos(), "map literal")
				}
			case *ast.UnaryExpr:
				if x.Op == token.AND {
					if _, ok := ast.Unparen(x.X).(*ast.CompositeLit); ok {
						report(x.Pos(), "&-escaping composite literal")
						return false
					}
				}
			case *ast.CallExpr:
				checkCall(info, x, selfAppends, report)
			}
			return true
		})
	}
	walk(fd.Body)
}

// checkCall classifies one call expression.
func checkCall(info *types.Info, ce *ast.CallExpr, selfAppends map[*ast.CallExpr]bool, report func(token.Pos, string)) {
	// Builtins.
	if id, ok := ast.Unparen(ce.Fun).(*ast.Ident); ok {
		if b, ok := info.ObjectOf(id).(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				report(ce.Pos(), "make")
			case "new":
				report(ce.Pos(), "new")
			case "append":
				if !selfAppends[ce] {
					report(ce.Pos(), "append to a destination other than its source (self-append with maintained capacity is exempt)")
				}
			}
			return
		}
	}
	// Conversions: string <-> []byte/[]rune allocate a copy.
	if tv, ok := info.Types[ce.Fun]; ok && tv.IsType() && len(ce.Args) == 1 {
		dst, src := tv.Type.Underlying(), info.TypeOf(ce.Args[0])
		if src != nil && stringBytesConversion(dst, src.Underlying()) {
			report(ce.Pos(), "string/byte-slice conversion copies its operand")
		}
		return
	}
	// fmt anywhere on the hot path allocates (boxing + formatting).
	if se, ok := ast.Unparen(ce.Fun).(*ast.SelectorExpr); ok {
		if f, ok := info.Uses[se.Sel].(*types.Func); ok && f.Pkg() != nil && f.Pkg().Path() == "fmt" {
			report(ce.Pos(), "fmt."+f.Name()+" call")
			return
		}
	}
	// Interface boxing: a concrete argument to an interface parameter.
	sig, ok := info.TypeOf(ce.Fun).(*types.Signature)
	if !ok {
		return
	}
	for i, arg := range ce.Args {
		pt := paramType(sig, i)
		if pt == nil {
			continue
		}
		if _, ok := pt.Underlying().(*types.Interface); !ok {
			continue
		}
		at := info.TypeOf(arg)
		if at == nil || at == types.Typ[types.UntypedNil] {
			continue
		}
		if _, ok := at.Underlying().(*types.Interface); ok {
			continue
		}
		if types.IsInterface(at) {
			continue
		}
		report(arg.Pos(), "concrete value converted to interface parameter (boxing)")
	}
}

// paramType resolves the parameter type for argument i, expanding the
// variadic tail.
func paramType(sig *types.Signature, i int) types.Type {
	n := sig.Params().Len()
	if n == 0 {
		return nil
	}
	if sig.Variadic() && i >= n-1 {
		if s, ok := sig.Params().At(n - 1).Type().(*types.Slice); ok {
			return s.Elem()
		}
		return nil
	}
	if i >= n {
		return nil
	}
	return sig.Params().At(i).Type()
}

// stringBytesConversion reports whether a conversion between dst and
// src underlying types is a copying string conversion.
func stringBytesConversion(dst, src types.Type) bool {
	isStr := func(t types.Type) bool {
		b, ok := t.(*types.Basic)
		return ok && b.Kind() == types.String
	}
	isByteRuneSlice := func(t types.Type) bool {
		s, ok := t.(*types.Slice)
		if !ok {
			return false
		}
		b, ok := s.Elem().Underlying().(*types.Basic)
		return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune ||
			b.Kind() == types.Uint8 || b.Kind() == types.Int32)
	}
	return (isStr(dst) && isByteRuneSlice(src)) || (isByteRuneSlice(dst) && isStr(src))
}

// selfAppendCalls collects append calls of the amortized form
// `x = append(x, ...)`, where the destination expression is
// structurally identical to append's first argument.
func selfAppendCalls(body ast.Node) map[*ast.CallExpr]bool {
	out := map[*ast.CallExpr]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			ce, ok := ast.Unparen(rhs).(*ast.CallExpr)
			if !ok || len(ce.Args) == 0 {
				continue
			}
			if id, ok := ast.Unparen(ce.Fun).(*ast.Ident); !ok || id.Name != "append" {
				continue
			}
			if types.ExprString(as.Lhs[i]) == types.ExprString(ce.Args[0]) {
				out[ce] = true
			}
		}
		return true
	})
	return out
}

// coldGuard reports whether an if-condition declares a cold path: a
// comparison involving len or cap (capacity checks), or a nil test
// (lazy init, error paths). Any operand of && / || qualifying makes
// the whole condition a guard.
func coldGuard(info *types.Info, cond ast.Expr) bool {
	be, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok {
		return false
	}
	switch be.Op {
	case token.LAND, token.LOR:
		return coldGuard(info, be.X) || coldGuard(info, be.Y)
	case token.EQL, token.NEQ, token.LSS, token.GTR, token.LEQ, token.GEQ:
		if isNilExpr(info, be.X) || isNilExpr(info, be.Y) {
			return true
		}
		return mentionsLenCap(info, be.X) || mentionsLenCap(info, be.Y)
	}
	return false
}

func isNilExpr(info *types.Info, e ast.Expr) bool {
	if id, ok := ast.Unparen(e).(*ast.Ident); ok {
		_, isNil := info.ObjectOf(id).(*types.Nil)
		return isNil
	}
	return false
}

func mentionsLenCap(info *types.Info, e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		ce, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := ast.Unparen(ce.Fun).(*ast.Ident); ok {
			if b, ok := info.ObjectOf(id).(*types.Builtin); ok && (b.Name() == "len" || b.Name() == "cap") {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
