package allocfree_test

import (
	"testing"

	"twolm/internal/analysis/allocfree"
	"twolm/internal/analysis/analysistest"
)

func TestFlagsAllocatingConstructs(t *testing.T) {
	diags := analysistest.Run(t, allocfree.Analyzer, "allocbad")
	if len(diags) == 0 {
		t.Fatal("allocbad fixture produced no diagnostics")
	}
}

// TestAmortizedIdiomsExempt proves the repo's real 0-alloc idioms
// (self-append, cap-guarded growth, nil-guarded lazy init, error-path
// fmt, //alloc:cold boundaries) pass untouched.
func TestAmortizedIdiomsExempt(t *testing.T) {
	diags := analysistest.Run(t, allocfree.Analyzer, "allocok")
	if len(diags) != 0 {
		t.Fatalf("allocok fixture should be clean, got %d diagnostics", len(diags))
	}
}
