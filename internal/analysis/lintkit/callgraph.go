// Interprocedural layer: a module-local call graph plus reachability
// from declared entry points.
//
// The per-file analyzers that seeded simlint (hotdiv, ctrmut, ...)
// check one package at a time, which is exactly the blind spot the
// repo's two shipped data races exploited: the racing write lived in a
// helper several calls below the concurrent entry point, in code no
// single-file rule could connect to it. A Module closes that gap. It
// holds every loaded package of one Go module, a conservative static
// call graph over all of them, and the inventory of marker-declared
// functions — so an analyzer can ask "is this assignment reachable
// from a declared hot entry point?" across package boundaries.
//
// # Entry-point declaration syntax
//
// Entry points are declared in source, next to the function they
// describe, with a marker directive in the function's doc comment (or
// on the declaration line):
//
//	//hot:entry sweep workers drive controllers of this type concurrently
//	func (c *Controller) LLCScatter(reqs []Req) { ... }
//
// The marker name is analyzer-defined ("hot:entry" for shardsafe,
// "alloc:free" and "alloc:cold" for allocfree); the trailing text is a
// mandatory human-readable reason, so a declaration reads as a
// contract, not an incantation. Marker directives are contract
// declarations that *widen* what the analyzers check; they are not
// suppressions, and the hot-quartet zero-suppression guarantee
// deliberately permits them.
//
// # Conservatism
//
// The graph resolves direct calls, method calls through concrete
// receivers, interface method calls (to every module method that
// implements the interface), and bare function-value references (a
// function whose value escapes is assumed callable). Calls through
// stored function fields and out-of-module callbacks are not resolved;
// analyzers that need those edges declare the callee an entry point
// directly, which is why sweep's job body carries its own //hot:entry
// instead of relying on an edge through engine.Job.Run.
package lintkit

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// A Module is a set of loaded packages analyzed as one unit, with the
// call graph over all of them.
type Module struct {
	// Packages in load order.
	Packages []*Package

	byPath map[string]*Package
	// Graph is the module-local call graph.
	Graph *CallGraph
}

// A CallGraph maps every declared function or method in the module to
// the module-local functions it may call.
type CallGraph struct {
	callees map[*types.Func][]*types.Func
	decls   map[*types.Func]*ast.FuncDecl
	pkgOf   map[*types.Func]*Package
}

// NewModule builds the module view (including the call graph) over the
// given packages. All packages must come from the same Loader so type
// objects are shared.
func NewModule(pkgs []*Package) *Module {
	m := &Module{Packages: pkgs, byPath: map[string]*Package{}}
	for _, p := range pkgs {
		m.byPath[p.ImportPath] = p
	}
	m.Graph = buildCallGraph(pkgs)
	return m
}

// Package returns the loaded package with the given import path, or
// nil when the path is outside the module view.
func (m *Module) Package(path string) *Package { return m.byPath[path] }

// PackageFor returns the loaded package that declares obj, or nil for
// objects outside the module view (standard library, universe).
func (m *Module) PackageFor(obj types.Object) *Package {
	if obj == nil || obj.Pkg() == nil {
		return nil
	}
	return m.byPath[obj.Pkg().Path()]
}

// FuncDecl returns the declaration of fn and the package holding it,
// or nil when fn was not declared in the module view.
func (m *Module) FuncDecl(fn *types.Func) (*ast.FuncDecl, *Package) {
	return m.Graph.decls[fn], m.Graph.pkgOf[fn]
}

// Funcs returns every function and method declared in the module, in
// a deterministic (position) order.
func (m *Module) Funcs() []*types.Func {
	out := make([]*types.Func, 0, len(m.Graph.decls))
	for fn := range m.Graph.decls {
		out = append(out, fn)
	}
	sort.Slice(out, func(i, j int) bool {
		if pi, pj := out[i].Pkg().Path(), out[j].Pkg().Path(); pi != pj {
			return pi < pj
		}
		return out[i].Pos() < out[j].Pos()
	})
	return out
}

// FuncMarked reports whether fn's declaration carries the marker
// directive (a comment line starting with "//<marker>") in its doc
// comment or trailing on the declaration line.
func (m *Module) FuncMarked(fn *types.Func, marker string) bool {
	fd, pkg := m.FuncDecl(fn)
	if fd == nil {
		return false
	}
	if hasDirective(fd.Doc, marker) {
		return true
	}
	// Trailing form on the func line, for one-line declarations.
	return LineDirective(pkg.Fset, pkg.Files, fd.Pos(), "//"+marker)
}

// MarkedFuncs returns every function in the module whose declaration
// carries the marker directive, in deterministic order.
func (m *Module) MarkedFuncs(marker string) []*types.Func {
	var out []*types.Func
	for _, fn := range m.Funcs() {
		if m.FuncMarked(fn, marker) {
			out = append(out, fn)
		}
	}
	return out
}

// hasDirective reports whether the comment group has a line whose text
// begins with "//<marker>" (no space between // and the marker, the
// standard Go directive form).
func hasDirective(cg *ast.CommentGroup, marker string) bool {
	if cg == nil {
		return false
	}
	for _, c := range cg.List {
		if rest, ok := strings.CutPrefix(c.Text, "//"+marker); ok {
			if rest == "" || rest[0] == ' ' || rest[0] == '\t' {
				return true
			}
		}
	}
	return false
}

// Callees returns the module-local functions fn may call, in source
// order of the first call site.
func (g *CallGraph) Callees(fn *types.Func) []*types.Func { return g.callees[fn] }

// Decl returns the AST declaration of fn, or nil for functions outside
// the module.
func (g *CallGraph) Decl(fn *types.Func) *ast.FuncDecl { return g.decls[fn] }

// Reachable walks the graph from the entry set and returns the set of
// reachable functions, each mapped to its BFS predecessor (entries map
// to themselves). The predecessor chain renders a human-readable
// witness path for diagnostics.
func (g *CallGraph) Reachable(entries []*types.Func) map[*types.Func]*types.Func {
	parent := map[*types.Func]*types.Func{}
	queue := make([]*types.Func, 0, len(entries))
	for _, e := range entries {
		if e == nil || parent[e] != nil {
			continue
		}
		parent[e] = e
		queue = append(queue, e)
	}
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		for _, callee := range g.callees[fn] {
			if parent[callee] != nil {
				continue
			}
			parent[callee] = fn
			queue = append(queue, callee)
		}
	}
	return parent
}

// ReachableFiltered is Reachable with a stop predicate: functions for
// which stop returns true are not expanded (their callees are not
// visited through them). The allocfree analyzer uses this to cut
// reachability at declared //alloc:cold boundaries.
func (g *CallGraph) ReachableFiltered(entries []*types.Func, stop func(*types.Func) bool) map[*types.Func]*types.Func {
	parent := map[*types.Func]*types.Func{}
	var queue []*types.Func
	for _, e := range entries {
		if e == nil || parent[e] != nil {
			continue
		}
		parent[e] = e
		queue = append(queue, e)
	}
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		if stop != nil && stop(fn) {
			continue
		}
		for _, callee := range g.callees[fn] {
			if parent[callee] != nil {
				continue
			}
			parent[callee] = fn
			queue = append(queue, callee)
		}
	}
	return parent
}

// WitnessPath renders "a -> b -> c" from entry to fn using the parent
// map returned by Reachable. Names are qualified relative to pkg.
func WitnessPath(parent map[*types.Func]*types.Func, fn *types.Func) string {
	var chain []string
	for cur := fn; ; {
		chain = append(chain, FuncDisplayName(cur))
		next := parent[cur]
		if next == nil || next == cur {
			break
		}
		cur = next
	}
	for i, j := 0, len(chain)-1; i < j; i, j = i+1, j-1 {
		chain[i], chain[j] = chain[j], chain[i]
	}
	return strings.Join(chain, " -> ")
}

// WitnessEntry returns the entry point that reaches fn in the parent
// map (the root of fn's predecessor chain).
func WitnessEntry(parent map[*types.Func]*types.Func, fn *types.Func) *types.Func {
	for cur := fn; ; {
		next := parent[cur]
		if next == nil || next == cur {
			return cur
		}
		cur = next
	}
}

// FuncDisplayName renders fn as pkgname.Func or pkgname.(Type).Method.
func FuncDisplayName(fn *types.Func) string {
	name := fn.Name()
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if n, ok := t.(*types.Named); ok {
			name = "(" + n.Obj().Name() + ")." + name
		}
	}
	if fn.Pkg() != nil {
		name = fn.Pkg().Name() + "." + name
	}
	return name
}

// methodInfo indexes one declared method for interface resolution.
type methodInfo struct {
	fn   *types.Func
	recv types.Type // receiver type as declared (possibly pointer)
}

// buildCallGraph constructs the conservative static call graph.
func buildCallGraph(pkgs []*Package) *CallGraph {
	g := &CallGraph{
		callees: map[*types.Func][]*types.Func{},
		decls:   map[*types.Func]*ast.FuncDecl{},
		pkgOf:   map[*types.Func]*Package{},
	}

	// Pass 1: index declarations and methods.
	var methods []methodInfo
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				g.decls[fn] = fd
				g.pkgOf[fn] = pkg
				if sig := fn.Type().(*types.Signature); sig.Recv() != nil {
					methods = append(methods, methodInfo{fn: fn, recv: sig.Recv().Type()})
				}
			}
		}
	}

	inModule := func(fn *types.Func) bool { return g.decls[fn] != nil }

	// Pass 2: edges.
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				caller, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				seen := map[*types.Func]bool{}
				addEdge := func(callee *types.Func) {
					if callee == nil || !inModule(callee) || seen[callee] {
						return
					}
					seen[callee] = true
					g.callees[caller] = append(g.callees[caller], callee)
				}
				// Identify expressions in call-function position, so a
				// bare function reference (value escape) can be told
				// apart from a call.
				callFuns := map[ast.Expr]bool{}
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					if ce, ok := n.(*ast.CallExpr); ok {
						callFuns[ce.Fun] = true
					}
					return true
				})
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					switch e := n.(type) {
					case *ast.CallExpr:
						for _, callee := range resolveCall(pkg, e, methods) {
							addEdge(callee)
						}
					case *ast.Ident:
						if callFuns[e] {
							return true
						}
						if fn, ok := pkg.Info.Uses[e].(*types.Func); ok {
							// Function value reference: assume callable.
							addEdge(fn)
						}
					case *ast.SelectorExpr:
						if callFuns[e] {
							// Still descend: the receiver expression may
							// itself reference functions.
							return true
						}
						if fn, ok := pkg.Info.Uses[e.Sel].(*types.Func); ok {
							addEdge(fn)
						}
					}
					return true
				})
			}
		}
	}
	return g
}

// resolveCall returns the module functions a call expression may
// invoke: the static callee for direct and concrete-method calls, or
// every implementing module method for an interface method call.
func resolveCall(pkg *Package, ce *ast.CallExpr, methods []methodInfo) []*types.Func {
	switch fun := ast.Unparen(ce.Fun).(type) {
	case *ast.Ident:
		if fn, ok := pkg.Info.Uses[fun].(*types.Func); ok {
			return []*types.Func{fn}
		}
	case *ast.SelectorExpr:
		if sel, ok := pkg.Info.Selections[fun]; ok && sel.Kind() == types.MethodVal {
			fn, ok := sel.Obj().(*types.Func)
			if !ok {
				return nil
			}
			if iface, ok := sel.Recv().Underlying().(*types.Interface); ok {
				return implementers(iface, fn.Name(), methods)
			}
			return []*types.Func{fn}
		}
		// Qualified call (pkgname.Func) or method expression.
		if fn, ok := pkg.Info.Uses[fun.Sel].(*types.Func); ok {
			return []*types.Func{fn}
		}
	}
	return nil
}

// implementers returns every module method named name whose receiver
// type satisfies iface.
func implementers(iface *types.Interface, name string, methods []methodInfo) []*types.Func {
	var out []*types.Func
	for _, m := range methods {
		if m.fn.Name() != name {
			continue
		}
		if types.Implements(m.recv, iface) {
			out = append(out, m.fn)
			continue
		}
		// A value receiver also serves pointer callers; check the
		// pointer type when the declared receiver is a value.
		if _, isPtr := m.recv.(*types.Pointer); !isPtr {
			if types.Implements(types.NewPointer(m.recv), iface) {
				out = append(out, m.fn)
			}
		}
	}
	return out
}
