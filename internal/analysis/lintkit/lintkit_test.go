package lintkit_test

import (
	"go/ast"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"twolm/internal/analysis/lintkit"
)

// probe flags every return statement, giving the suppression tests a
// deterministic diagnostic source.
var probe = &lintkit.Analyzer{
	Name: "probe",
	Doc:  "flags every return statement (test analyzer)",
	Run: func(pass *lintkit.Pass) error {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				if r, ok := n.(*ast.ReturnStmt); ok {
					pass.Reportf(r.Pos(), "return statement")
				}
				return true
			})
		}
		return nil
	},
}

// loadTemp writes src as a single-file module package and loads it.
func loadTemp(t *testing.T, src string) *lintkit.Package {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "p.go"), []byte(src), 0o666); err != nil {
		t.Fatal(err)
	}
	loader := lintkit.NewModuleLoader(dir, "tmp")
	pkg, err := loader.Load("tmp")
	if err != nil {
		t.Fatal(err)
	}
	return pkg
}

func run(t *testing.T, pkg *lintkit.Package) []lintkit.Diagnostic {
	t.Helper()
	diags, err := lintkit.Run(pkg, []*lintkit.Analyzer{probe})
	if err != nil {
		t.Fatal(err)
	}
	return diags
}

// TestSuppressionForms: trailing and line-above directives suppress;
// a directive for a different analyzer does not.
func TestSuppressionForms(t *testing.T) {
	pkg := loadTemp(t, `package p
func a() int {
	return 1 //lint:ignore probe trailing form
}
func b() int {
	//lint:ignore probe line-above form
	return 2
}
func c() int {
	return 3 //lint:ignore otherlint wrong analyzer name
}
`)
	diags := run(t, pkg)
	// c's return survives, and the otherlint directive is unused.
	if len(diags) != 2 {
		t.Fatalf("got %d diagnostics, want 2: %v", len(diags), diags)
	}
	if diags[0].Analyzer != "probe" {
		t.Errorf("first diagnostic from %s, want probe", diags[0].Analyzer)
	}
	if diags[1].Analyzer != "lintdirective" || !strings.Contains(diags[1].Message, "unused") {
		t.Errorf("second diagnostic = [%s] %s, want unused lintdirective", diags[1].Analyzer, diags[1].Message)
	}
}

// TestMalformedDirective: suppressing without a reason is itself
// reported, and the suppression does not take effect.
func TestMalformedDirective(t *testing.T) {
	pkg := loadTemp(t, `package p
func a() int {
	//lint:ignore probe
	return 1
}
`)
	diags := run(t, pkg)
	if len(diags) != 2 {
		t.Fatalf("got %d diagnostics, want 2 (unsuppressed probe + malformed): %v", len(diags), diags)
	}
	var haveProbe, haveMalformed bool
	for _, d := range diags {
		haveProbe = haveProbe || d.Analyzer == "probe"
		haveMalformed = haveMalformed || (d.Analyzer == "lintdirective" && strings.Contains(d.Message, "reason is mandatory"))
	}
	if !haveProbe || !haveMalformed {
		t.Errorf("diagnostics = %v, want a surviving probe finding and a malformed-directive finding", diags)
	}
}

// TestCommaList: one directive can name several analyzers.
func TestCommaList(t *testing.T) {
	pkg := loadTemp(t, `package p
func a() int {
	return 1 //lint:ignore otherlint,probe listed second
}
`)
	if diags := run(t, pkg); len(diags) != 0 {
		t.Fatalf("got %d diagnostics, want 0: %v", len(diags), diags)
	}
}

// TestRawDiagnostics: the guarantee-test entry point sees through
// suppressions.
func TestRawDiagnostics(t *testing.T) {
	pkg := loadTemp(t, `package p
func a() int {
	return 1 //lint:ignore probe suppressed for the filtered path only
}
`)
	raw, err := lintkit.RawDiagnostics(pkg, []*lintkit.Analyzer{probe})
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) != 1 {
		t.Fatalf("raw diagnostics = %v, want the suppressed finding", raw)
	}
}

// TestLoaderCrossImport: module packages import each other and the
// standard library through the source loader.
func TestLoaderCrossImport(t *testing.T) {
	dir := t.TempDir()
	if err := os.MkdirAll(filepath.Join(dir, "inner"), 0o777); err != nil {
		t.Fatal(err)
	}
	files := map[string]string{
		"go.mod":        "module tmp\n\ngo 1.22\n",
		"p.go":          "package p\n\nimport (\n\t\"fmt\"\n\n\t\"tmp/inner\"\n)\n\nfunc Render() string { return fmt.Sprint(inner.X) }\n",
		"inner/q.go":    "package inner\n\nvar X = 42\n",
		"inner/q_test.go": "package inner\n\nthis is not Go but test files are never parsed\n",
	}
	for name, src := range files {
		if err := os.WriteFile(filepath.Join(dir, filepath.FromSlash(name)), []byte(src), 0o666); err != nil {
			t.Fatal(err)
		}
	}
	loader := lintkit.NewModuleLoader(dir, "tmp")
	pkg, err := loader.Load("tmp")
	if err != nil {
		t.Fatal(err)
	}
	if pkg.Types.Name() != "p" {
		t.Errorf("loaded package %q, want p", pkg.Types.Name())
	}

	paths, err := lintkit.DiscoverModule(dir, "tmp")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"tmp", "tmp/inner"}
	if len(paths) != len(want) || paths[0] != want[0] || paths[1] != want[1] {
		t.Errorf("DiscoverModule = %v, want %v", paths, want)
	}

	mod, err := lintkit.ModuleInfo(dir)
	if err != nil || mod != "tmp" {
		t.Errorf("ModuleInfo = %q, %v, want tmp", mod, err)
	}
}

// TestLineDirective: marker detection on the declaration line and the
// line above.
func TestLineDirective(t *testing.T) {
	pkg := loadTemp(t, `package p

type s struct {
	marked   int //mark:here declared
	unmarked int
}
`)
	var marked, unmarked token.Pos
	ast.Inspect(pkg.Files[0], func(n ast.Node) bool {
		if f, ok := n.(*ast.Field); ok && len(f.Names) == 1 {
			switch f.Names[0].Name {
			case "marked":
				marked = f.Names[0].Pos()
			case "unmarked":
				unmarked = f.Names[0].Pos()
			}
		}
		return true
	})
	if !lintkit.LineDirective(pkg.Fset, pkg.Files, marked, "mark:here") {
		t.Error("marked field not detected")
	}
	if lintkit.LineDirective(pkg.Fset, pkg.Files, unmarked, "mark:here") {
		t.Error("unmarked field falsely detected")
	}
}
