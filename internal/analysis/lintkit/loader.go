package lintkit

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// A Package is one fully parsed and type-checked package, ready for
// analysis.
type Package struct {
	Fset       *token.FileSet
	Dir        string
	ImportPath string
	Files      []*ast.File // non-test files only
	Types      *types.Package
	Info       *types.Info
}

// A Loader parses and type-checks packages from source with no
// toolchain invocation and no third-party dependencies. Import paths
// are resolved by Resolve; anything it declines falls back to the
// standard library, type-checked from $GOROOT/src by the stdlib
// source importer.
type Loader struct {
	Fset *token.FileSet
	// Resolve maps an import path to the directory holding its
	// source, or ok=false to delegate to the standard library.
	Resolve func(importPath string) (dir string, ok bool)

	std  types.ImporterFrom
	pkgs map[string]*Package
}

// NewLoader returns a loader with the given resolver.
func NewLoader(resolve func(string) (string, bool)) *Loader {
	fset := token.NewFileSet()
	return &Loader{
		Fset:    fset,
		Resolve: resolve,
		std:     importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
		pkgs:    map[string]*Package{},
	}
}

// NewModuleLoader returns a loader rooted at a module directory:
// import paths under modulePath resolve to subdirectories of root.
func NewModuleLoader(root, modulePath string) *Loader {
	return NewLoader(func(path string) (string, bool) {
		if path == modulePath {
			return root, true
		}
		if rel, ok := strings.CutPrefix(path, modulePath+"/"); ok {
			return filepath.Join(root, filepath.FromSlash(rel)), true
		}
		return "", false
	})
}

// Import implements types.Importer over the resolver, so packages
// under analysis can import each other.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if p, ok := l.pkgs[path]; ok {
		return p.Types, nil
	}
	dir, ok := l.Resolve(path)
	if !ok {
		return l.std.Import(path)
	}
	p, err := l.load(path, dir)
	if err != nil {
		return nil, err
	}
	return p.Types, nil
}

// Load parses and type-checks the package at importPath, resolving it
// through the loader's resolver. Results are memoized, so loading a
// package that was already pulled in as a dependency is free.
func (l *Loader) Load(importPath string) (*Package, error) {
	if p, ok := l.pkgs[importPath]; ok {
		return p, nil
	}
	dir, ok := l.Resolve(importPath)
	if !ok {
		return nil, fmt.Errorf("lintkit: import path %q does not resolve to a source directory", importPath)
	}
	return l.load(importPath, dir)
}

func (l *Loader) load(importPath, dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("lintkit: %w", err)
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") {
			continue
		}
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lintkit: %w", err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lintkit: no non-test Go files in %s", dir)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(importPath, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lintkit: type-checking %s: %w", importPath, err)
	}
	p := &Package{
		Fset:       l.Fset,
		Dir:        dir,
		ImportPath: importPath,
		Files:      files,
		Types:      tpkg,
		Info:       info,
	}
	l.pkgs[importPath] = p
	return p, nil
}

// DiscoverModule walks a module root and returns the import paths of
// every package in it (directories holding at least one non-test .go
// file), sorted. testdata trees, hidden directories, and vendor are
// skipped, matching the go tool's ./... semantics.
func DiscoverModule(root, modulePath string) ([]string, error) {
	var out []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		entries, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		for _, e := range entries {
			n := e.Name()
			if !e.IsDir() && strings.HasSuffix(n, ".go") && !strings.HasSuffix(n, "_test.go") && !strings.HasPrefix(n, ".") {
				rel, err := filepath.Rel(root, path)
				if err != nil {
					return err
				}
				if rel == "." {
					out = append(out, modulePath)
				} else {
					out = append(out, modulePath+"/"+filepath.ToSlash(rel))
				}
				break
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(out)
	return out, nil
}

// ModuleInfo reads the module path out of root/go.mod.
func ModuleInfo(root string) (string, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("lintkit: no module directive in %s/go.mod", root)
}
