// Package lintkit is a minimal, dependency-free reimplementation of the
// golang.org/x/tools/go/analysis vocabulary on top of the standard
// library's go/ast and go/types. The module vendors no third-party
// code, so the simlint analyzers (internal/analysis/...) are written
// against this package instead of x/tools; the API is shaped the same
// way (Analyzer, Pass, Diagnostic) so the analyzers port mechanically
// if x/tools ever becomes available.
//
// Beyond the x/tools subset, lintkit owns the suppression discipline:
// a diagnostic may be silenced only by an explicit, auditable
//
//	//lint:ignore <analyzer>[,<analyzer>...] <reason>
//
// directive on the flagged line or the line directly above it. The
// reason is mandatory, and a directive that silences nothing is itself
// a diagnostic, so stale exceptions cannot accumulate.
package lintkit

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one invariant check. Run inspects a single
// type-checked package via the Pass and reports findings with
// Pass.Reportf.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //lint:ignore directives. Lowercase, no spaces.
	Name string
	// Doc is a one-paragraph description of the invariant enforced,
	// shown by `simlint -list`.
	Doc string
	// Run performs the check. It reports findings via pass.Reportf
	// and returns an error only for internal failures (a broken
	// invariant is a Diagnostic, not an error).
	Run func(pass *Pass) error
}

// A Pass is one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Module is the whole-module view backing interprocedural
	// analyzers: every loaded package plus the call graph. Always
	// non-nil; when a caller analyzes a single package in isolation
	// the module degenerates to that one package.
	Module *Module

	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      pos,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// InTestFile reports whether node's file is a _test.go file. The
// invariants simlint guards are production hot-path properties;
// tests legitimately use `%` oracles, map iteration, and wall clocks,
// so every analyzer skips test files via this helper.
func (p *Pass) InTestFile(node ast.Node) bool {
	f := p.Fset.File(node.Pos())
	return f != nil && strings.HasSuffix(f.Name(), "_test.go")
}

// A Diagnostic is one reported invariant violation.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// ignoreDirective is one parsed //lint:ignore comment.
type ignoreDirective struct {
	pos       token.Pos
	file      string
	line      int // source line the directive text sits on
	analyzers map[string]bool
	names     []string // analyzer names in written order
	reason    string
	malformed string // non-empty: why the directive could not be parsed
	used      bool
}

// DirectiveInfo is one //lint:ignore directive as the module-wide
// suppression inventory reports it.
type DirectiveInfo struct {
	File      string
	Line      int
	Analyzers []string // names in written order; empty when malformed
	Reason    string
	Malformed string // non-empty: why the directive could not be parsed
}

// FileDirectives returns every //lint:ignore directive in f, in
// source order. The suppressions report (cmd/simlint -suppressions)
// builds the auditable module inventory from this.
func FileDirectives(fset *token.FileSet, f *ast.File) []DirectiveInfo {
	var out []DirectiveInfo
	for _, d := range parseDirectives(fset, f) {
		out = append(out, DirectiveInfo{
			File:      d.file,
			Line:      d.line,
			Analyzers: d.names,
			Reason:    d.reason,
			Malformed: d.malformed,
		})
	}
	return out
}

// parseDirectives extracts //lint:ignore directives from a file's
// comments. A directive suppresses matching diagnostics on its own
// line (trailing form) and on the line immediately below (standalone
// form above the offending statement).
func parseDirectives(fset *token.FileSet, f *ast.File) []*ignoreDirective {
	var out []*ignoreDirective
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimPrefix(c.Text, "//")
			text = strings.TrimPrefix(text, "lint:ignore")
			if len(text) == len(c.Text)-2 { // prefix absent
				continue
			}
			pos := fset.Position(c.Pos())
			d := &ignoreDirective{pos: c.Pos(), file: pos.Filename, line: pos.Line}
			fields := strings.Fields(text)
			switch {
			case len(fields) == 0:
				d.malformed = "missing analyzer name and reason"
			case len(fields) == 1:
				d.malformed = fmt.Sprintf("suppressing %q without a reason; the reason is mandatory so exceptions stay auditable", fields[0])
			default:
				d.analyzers = map[string]bool{}
				d.names = strings.Split(fields[0], ",")
				for _, name := range d.names {
					d.analyzers[name] = true
				}
				d.reason = strings.Join(fields[1:], " ")
			}
			out = append(out, d)
		}
	}
	return out
}

// Run executes the analyzers over one loaded package, applies the
// //lint:ignore suppression discipline, and returns the surviving
// diagnostics sorted by position. Malformed and unused directives are
// reported under the pseudo-analyzer name "lintdirective" so that a
// suppression can never rot silently. The module view degenerates to
// the single package; interprocedural analyzers see only pkg.
func Run(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	return RunModule(NewModule([]*Package{pkg}), pkg, analyzers)
}

// RunModule is Run with an explicit whole-module view, so
// interprocedural analyzers can trace reachability across package
// boundaries. pkg is the package diagnostics are reported for and must
// be one of mod's packages.
func RunModule(mod *Module, pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	raw, err := rawDiagnostics(mod, pkg, analyzers)
	if err != nil {
		return nil, err
	}

	var directives []*ignoreDirective
	for _, f := range pkg.Files {
		if tf := pkg.Fset.File(f.Pos()); tf != nil && strings.HasSuffix(tf.Name(), "_test.go") {
			continue
		}
		directives = append(directives, parseDirectives(pkg.Fset, f)...)
	}

	var kept []Diagnostic
	for _, d := range raw {
		p := pkg.Fset.Position(d.Pos)
		suppressed := false
		for _, dir := range directives {
			if dir.malformed != "" || dir.file != p.Filename || !dir.analyzers[d.Analyzer] {
				continue
			}
			if dir.line == p.Line || dir.line == p.Line-1 {
				dir.used = true
				suppressed = true
			}
		}
		if !suppressed {
			kept = append(kept, d)
		}
	}
	for _, dir := range directives {
		switch {
		case dir.malformed != "":
			kept = append(kept, Diagnostic{Pos: dir.pos, Analyzer: "lintdirective",
				Message: "malformed //lint:ignore directive: " + dir.malformed})
		case !dir.used:
			names := make([]string, 0, len(dir.analyzers))
			for n := range dir.analyzers {
				names = append(names, n)
			}
			sort.Strings(names)
			kept = append(kept, Diagnostic{Pos: dir.pos, Analyzer: "lintdirective",
				Message: fmt.Sprintf("unused //lint:ignore directive for %s: nothing is suppressed here; delete it", strings.Join(names, ","))})
		}
	}
	sort.Slice(kept, func(i, j int) bool {
		pi, pj := pkg.Fset.Position(kept[i].Pos), pkg.Fset.Position(kept[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		return kept[i].Message < kept[j].Message
	})
	return kept, nil
}

// RawDiagnostics runs the analyzers with suppression disabled,
// returning every finding including ones a //lint:ignore directive
// would hide. The hot-package guarantee test uses this to prove the
// four hot packages are clean outright, not clean-via-suppression.
func RawDiagnostics(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	return RawDiagnosticsModule(NewModule([]*Package{pkg}), pkg, analyzers)
}

// RawDiagnosticsModule is RawDiagnostics with an explicit whole-module
// view for interprocedural analyzers.
func RawDiagnosticsModule(mod *Module, pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	return rawDiagnostics(mod, pkg, analyzers)
}

// rawDiagnostics runs the analyzers over pkg with the module view
// attached, applying no suppression.
func rawDiagnostics(mod *Module, pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var raw []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			Module:    mod,
			diags:     &raw,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analyzer %s on %s: %w", a.Name, pkg.ImportPath, err)
		}
	}
	return raw, nil
}

// LineDirective reports whether the source line holding pos, or the
// line directly above it, carries a comment containing marker (for
// example "ctrmut:accumulator"). Analyzers use this for declaration
// markers that are part of an invariant's contract rather than a
// suppression.
func LineDirective(fset *token.FileSet, files []*ast.File, pos token.Pos, marker string) bool {
	p := fset.Position(pos)
	for _, f := range files {
		tf := fset.File(f.Pos())
		if tf == nil || tf.Name() != p.Filename {
			continue
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.Contains(c.Text, marker) {
					continue
				}
				cl := fset.Position(c.Pos()).Line
				if cl == p.Line {
					return true
				}
				// A marker on the line above only counts when the
				// comment starts the line; a trailing comment on the
				// previous declaration must not bless this one.
				if cl == p.Line-1 && fset.Position(c.Pos()).Column <= firstColumn(fset, f, cl) {
					return true
				}
			}
		}
	}
	return false
}

// firstColumn returns the smallest column of any non-comment token on
// the given line of f, or a sentinel larger than any real column when
// the line holds nothing but comments.
func firstColumn(fset *token.FileSet, f *ast.File, line int) int {
	min := 1 << 30
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		if p := fset.Position(n.Pos()); p.Line == line && p.Column < min {
			min = p.Column
		}
		return true
	})
	return min
}
