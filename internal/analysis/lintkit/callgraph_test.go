package lintkit_test

import (
	"go/types"
	"os"
	"path/filepath"
	"testing"

	"twolm/internal/analysis/lintkit"
)

// loadModule writes the files (path -> source, relative to the module
// root) as a module named tmp and loads every package into a Module.
func loadModule(t *testing.T, files map[string]string) *lintkit.Module {
	t.Helper()
	dir := t.TempDir()
	for name, src := range files {
		path := filepath.Join(dir, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o777); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o666); err != nil {
			t.Fatal(err)
		}
	}
	paths, err := lintkit.DiscoverModule(dir, "tmp")
	if err != nil {
		t.Fatal(err)
	}
	loader := lintkit.NewModuleLoader(dir, "tmp")
	var pkgs []*lintkit.Package
	for _, p := range paths {
		pkg, err := loader.Load(p)
		if err != nil {
			t.Fatal(err)
		}
		pkgs = append(pkgs, pkg)
	}
	return lintkit.NewModule(pkgs)
}

// fn looks a function up by its display name (pkg.Func or
// pkg.(Type).Method).
func fn(t *testing.T, m *lintkit.Module, display string) *types.Func {
	t.Helper()
	for _, f := range m.Funcs() {
		if lintkit.FuncDisplayName(f) == display {
			return f
		}
	}
	t.Fatalf("function %q not found in module", display)
	return nil
}

func TestCallGraphDirectAndCrossPackage(t *testing.T) {
	m := loadModule(t, map[string]string{
		"a.go": `package a

import "tmp/b"

//hot:entry declared entry for the reachability test
func Entry() { step() }

func step() { b.Helper() }

func unrelated() {}
`,
		"b/b.go": `package b

func Helper() { leaf() }

func leaf() {}
`,
	})
	entries := m.MarkedFuncs("hot:entry")
	if len(entries) != 1 || entries[0].Name() != "Entry" {
		t.Fatalf("MarkedFuncs = %v, want [Entry]", entries)
	}
	reach := m.Graph.Reachable(entries)
	for _, name := range []string{"a.Entry", "a.step", "b.Helper", "b.leaf"} {
		if reach[fn(t, m, name)] == nil {
			t.Errorf("%s not reachable from Entry", name)
		}
	}
	if reach[fn(t, m, "a.unrelated")] != nil {
		t.Error("unrelated reachable from Entry")
	}

	leaf := fn(t, m, "b.leaf")
	if got := lintkit.WitnessPath(reach, leaf); got != "a.Entry -> a.step -> b.Helper -> b.leaf" {
		t.Errorf("WitnessPath = %q", got)
	}
	if e := lintkit.WitnessEntry(reach, leaf); e != entries[0] {
		t.Errorf("WitnessEntry = %v, want Entry", e)
	}
}

func TestCallGraphMethodsAndClosures(t *testing.T) {
	m := loadModule(t, map[string]string{
		"a.go": `package a

type T struct{ n int }

func (t *T) Launch() {
	go func() { t.work() }()
}

func (t *T) work() { t.n++ }

func UseValue() {
	f := helper // bare function reference: assumed callable
	_ = f
}

func helper() {}
`,
	})
	reach := m.Graph.Reachable([]*types.Func{fn(t, m, "a.(T).Launch")})
	if reach[fn(t, m, "a.(T).work")] == nil {
		t.Error("method called from a goroutine closure not attributed to the launcher")
	}
	reach = m.Graph.Reachable([]*types.Func{fn(t, m, "a.UseValue")})
	if reach[fn(t, m, "a.helper")] == nil {
		t.Error("function value reference should create a conservative call edge")
	}
}

func TestCallGraphInterfaceResolution(t *testing.T) {
	m := loadModule(t, map[string]string{
		"a.go": `package a

type Doer interface{ Do() }

type Impl struct{}

func (Impl) Do() { target() }

type PtrImpl struct{}

func (*PtrImpl) Do() {}

func target() {}

func Drive(d Doer) { d.Do() }
`,
	})
	reach := m.Graph.Reachable([]*types.Func{fn(t, m, "a.Drive")})
	if reach[fn(t, m, "a.(Impl).Do")] == nil {
		t.Error("value-receiver implementation not resolved for interface call")
	}
	if reach[fn(t, m, "a.(PtrImpl).Do")] == nil {
		t.Error("pointer-receiver implementation not resolved for interface call")
	}
	if reach[fn(t, m, "a.target")] == nil {
		t.Error("callee of an interface implementation not transitively reachable")
	}
}

func TestReachableFilteredStopsAtBoundary(t *testing.T) {
	m := loadModule(t, map[string]string{
		"a.go": `package a

//alloc:free hot entry
func Hot() { cold() }

//alloc:cold constructs scratch once
func cold() { deep() }

func deep() {}
`,
	})
	entries := m.MarkedFuncs("alloc:free")
	coldSet := map[*types.Func]bool{}
	for _, f := range m.MarkedFuncs("alloc:cold") {
		coldSet[f] = true
	}
	reach := m.Graph.ReachableFiltered(entries, func(f *types.Func) bool { return coldSet[f] })
	if reach[fn(t, m, "a.cold")] == nil {
		t.Error("cold boundary function itself should be visited (and markable)")
	}
	if reach[fn(t, m, "a.deep")] != nil {
		t.Error("functions behind an //alloc:cold boundary must not be reachable")
	}
}

func TestFuncMarkedTrailingForm(t *testing.T) {
	m := loadModule(t, map[string]string{
		"a.go": `package a

func One() {} //hot:entry trailing declaration form

func Two() {}
`,
	})
	if !m.FuncMarked(fn(t, m, "a.One"), "hot:entry") {
		t.Error("trailing-form marker not detected")
	}
	if m.FuncMarked(fn(t, m, "a.Two"), "hot:entry") {
		t.Error("unmarked function reported as marked")
	}
}
