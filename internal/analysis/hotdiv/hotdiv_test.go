package hotdiv_test

import (
	"testing"

	"twolm/internal/analysis/analysistest"
	"twolm/internal/analysis/hotdiv"
)

// TestHotPath: runtime divisors flagged; constants, floats, and
// constructors exempt.
func TestHotPath(t *testing.T) {
	diags := analysistest.Run(t, hotdiv.Analyzer, "hotbad")
	if len(diags) != 3 {
		t.Errorf("got %d diagnostics, want 3", len(diags))
	}
}

// TestSuppression: a reasoned //lint:ignore silences one finding; a
// stale directive is reported instead of rotting silently.
func TestSuppression(t *testing.T) {
	diags := analysistest.Run(t, hotdiv.Analyzer, "hotsup")
	var kinds []string
	for _, d := range diags {
		kinds = append(kinds, d.Analyzer)
	}
	if len(diags) != 2 {
		t.Errorf("got %d diagnostics (%v), want 2: one surviving hotdiv, one lintdirective", len(diags), kinds)
	}
}
