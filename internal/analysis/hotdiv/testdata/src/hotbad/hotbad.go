// Package hotbad exercises every hotdiv decision: runtime divisors
// are flagged, constant divisors and cold constructors are not.
package hotbad

const lineSize = 64

type geom struct {
	sets uint64
}

// NewGeom is a constructor: geometry division at build time is cold
// by convention and exempt.
func NewGeom(capacity, ways uint64) geom {
	return geom{sets: capacity / ways}
}

// Index is hot-path shaped: both divisor forms must be flagged.
func (g geom) Index(addr uint64) (uint64, uint64) {
	set := addr % g.sets  // want `integer modulo \(%\) with a non-constant divisor`
	tag := addr / g.sets  // want `integer division \(/\) with a non-constant divisor`
	return set, tag
}

// Mixed shows the exemptions inside a hot function.
func Mixed(addr, n uint64, scale float64) float64 {
	line := addr / lineSize // constant divisor: compiler strength-reduces
	frac := scale / 2.5     // float division is never flagged
	line /= lineSize        // constant divisor via assign-op
	line %= n               // want `integer modulo \(%\) with a non-constant divisor`
	return float64(line) * frac
}
