// Package hotsup pins the suppression discipline: an explicit
// //lint:ignore with a reason silences a finding, and a directive
// that silences nothing is itself reported.
package hotsup

// Cold is measured and genuinely off the per-line path, so the
// exception is declared and audited.
func Cold(a, b uint64) uint64 {
	//lint:ignore hotdiv epoch rollover division, runs once per epoch not per line
	return a / b
}

// Unsuppressed sits right next to it and is still caught.
func Unsuppressed(a, b uint64) uint64 {
	return a % b // want `integer modulo \(%\) with a non-constant divisor`
}

//lint:ignore hotdiv stale exception kept after the code was fixed // want `unused //lint:ignore directive for hotdiv`

// Fixed no longer divides, so the directive above has nothing to do.
func Fixed(a uint64) uint64 {
	return a >> 3
}
