// Package hotdiv guards the batched fast path's throughput win:
// integer division or modulo with a non-constant divisor inside a hot
// simulator package must be routed through internal/fastdiv (one
// reciprocal multiply) instead of the hardware divider.
//
// Divisions by compile-time constants are exempt — the compiler
// already strength-reduces those to shifts or magic-number multiplies,
// which is exactly the transformation fastdiv provides for divisors
// that are only fixed at configuration time. Constructors (New*/new*)
// and init functions are exempt as well: geometry setup runs once per
// experiment, not per simulated line.
package hotdiv

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"twolm/internal/analysis/lintkit"
)

// Analyzer is the hotdiv analyzer.
var Analyzer = &lintkit.Analyzer{
	Name: "hotdiv",
	Doc: "integer / and % with a non-constant divisor on the hot path must " +
		"go through internal/fastdiv; protects the batched pipeline's " +
		"measured 2.5x lines/s win",
	Run: run,
}

func run(pass *lintkit.Pass) error {
	for _, f := range pass.Files {
		if pass.InTestFile(f) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || coldFunc(fd.Name.Name) {
				continue
			}
			checkBody(pass, fd.Body)
		}
	}
	return nil
}

// coldFunc reports whether a function is setup-time by convention:
// constructors and package init run once per configuration, so a real
// divide there costs nothing per simulated line.
func coldFunc(name string) bool {
	return name == "init" || strings.HasPrefix(name, "New") || strings.HasPrefix(name, "new")
}

func checkBody(pass *lintkit.Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.BinaryExpr:
			if e.Op != token.QUO && e.Op != token.REM {
				return true
			}
			report(pass, e.OpPos, e.Op, e, e.Y)
		case *ast.AssignStmt:
			if e.Tok != token.QUO_ASSIGN && e.Tok != token.REM_ASSIGN {
				return true
			}
			op := token.QUO
			if e.Tok == token.REM_ASSIGN {
				op = token.REM
			}
			report(pass, e.TokPos, op, e.Lhs[0], e.Rhs[0])
		}
		return true
	})
}

// report flags the operation if it is an integer divide/modulo whose
// divisor is not a compile-time constant.
func report(pass *lintkit.Pass, pos token.Pos, op token.Token, result, divisor ast.Expr) {
	rt := pass.TypesInfo.TypeOf(result)
	if rt == nil || !isInteger(rt) {
		return
	}
	// A fully constant expression folds away at compile time.
	if tv, ok := pass.TypesInfo.Types[divisor]; ok && tv.Value != nil {
		return
	}
	word := "division (/)"
	if op == token.REM {
		word = "modulo (%)"
	}
	pass.Reportf(pos,
		"integer %s with a non-constant divisor on the hot path; hoist the divisor into a fastdiv.Divisor (internal/fastdiv) so per-line work stays division-free", word)
}

func isInteger(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}
