// Package analysistest is a golden-file test harness for lintkit
// analyzers, modeled on golang.org/x/tools/go/analysis/analysistest
// but built on the repo's dependency-free lintkit loader.
//
// A fixture is a package under the calling test's
// testdata/src/<name>/ directory. Fixture source marks expected
// findings with trailing comments of the form
//
//	// want `regexp` `another regexp`
//
// Each pattern must match at least one diagnostic reported on that
// line, and every diagnostic must be matched by some pattern on its
// line; anything else fails the test. Fixture packages may import
// each other by bare name (testdata/src acts as the import root), and
// //lint:ignore suppression is active, so fixtures can also pin the
// suppression behavior itself.
package analysistest

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"twolm/internal/analysis/lintkit"
)

var wantRE = regexp.MustCompile("`([^`]*)`")

type expectation struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

// Run loads testdata/src/<fixture> relative to the test's working
// directory, applies the analyzer (with suppression directives
// honored), and checks the diagnostics against the fixture's want
// comments. It returns the surviving diagnostics for any extra
// assertions the caller wants to make.
func Run(t *testing.T, analyzer *lintkit.Analyzer, fixture string) []lintkit.Diagnostic {
	t.Helper()
	return RunModule(t, analyzer, fixture)
}

// RunModule is Run for interprocedural analyzers: it loads every named
// fixture package into one lintkit.Module (so the call graph spans all
// of them), applies the analyzer to each package, and checks the
// combined diagnostics against the want comments of every fixture. A
// single fixture degenerates to Run's behavior.
func RunModule(t *testing.T, analyzer *lintkit.Analyzer, fixtures ...string) []lintkit.Diagnostic {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	srcRoot := filepath.Join(wd, "testdata", "src")
	loader := lintkit.NewLoader(func(path string) (string, bool) {
		dir := filepath.Join(srcRoot, filepath.FromSlash(path))
		if st, err := os.Stat(dir); err == nil && st.IsDir() {
			return dir, true
		}
		return "", false
	})
	var pkgs []*lintkit.Package
	for _, fixture := range fixtures {
		pkg, err := loader.Load(fixture)
		if err != nil {
			t.Fatalf("loading fixture %s: %v", fixture, err)
		}
		pkgs = append(pkgs, pkg)
	}
	mod := lintkit.NewModule(pkgs)

	var expects []*expectation
	var all []lintkit.Diagnostic
	for _, pkg := range pkgs {
		ex, err := parseExpectations(pkg.Dir)
		if err != nil {
			t.Fatal(err)
		}
		expects = append(expects, ex...)

		diags, err := lintkit.RunModule(mod, pkg, []*lintkit.Analyzer{analyzer})
		if err != nil {
			t.Fatalf("running %s on %s: %v", analyzer.Name, pkg.ImportPath, err)
		}
		for _, d := range diags {
			p := pkg.Fset.Position(d.Pos)
			ok := false
			for _, e := range expects {
				if e.file == p.Filename && e.line == p.Line && e.pattern.MatchString(d.Message) {
					e.matched = true
					ok = true
				}
			}
			if !ok {
				t.Errorf("%s:%d: unexpected diagnostic [%s] %s", p.Filename, p.Line, d.Analyzer, d.Message)
			}
		}
		all = append(all, diags...)
	}
	for _, e := range expects {
		if !e.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", e.file, e.line, e.pattern)
		}
	}
	return all
}

// parseExpectations scans every .go file in dir for want comments.
func parseExpectations(dir string) ([]*expectation, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var out []*expectation
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		for i, line := range strings.Split(string(data), "\n") {
			_, rest, ok := strings.Cut(line, "// want ")
			if !ok {
				continue
			}
			ms := wantRE.FindAllStringSubmatch(rest, -1)
			if len(ms) == 0 {
				return nil, fmt.Errorf("%s:%d: want comment without a backquoted pattern", path, i+1)
			}
			for _, m := range ms {
				re, err := regexp.Compile(m[1])
				if err != nil {
					return nil, fmt.Errorf("%s:%d: bad want pattern %q: %v", path, i+1, m[1], err)
				}
				out = append(out, &expectation{file: path, line: i + 1, pattern: re})
			}
		}
	}
	return out, nil
}
