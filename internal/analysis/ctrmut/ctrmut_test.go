package ctrmut_test

import (
	"testing"

	"twolm/internal/analysis/analysistest"
	"twolm/internal/analysis/ctrmut"
)

// TestOwnPackage: Controller/Counters methods and local accumulators
// pass; a free-function poke is flagged even inside imc.
func TestOwnPackage(t *testing.T) {
	diags := analysistest.Run(t, ctrmut.Analyzer, "imc")
	if len(diags) != 1 {
		t.Errorf("got %d diagnostics, want 1", len(diags))
	}
}

// TestConsumerPackage: declared accumulators and the Add pipeline
// pass; ad-hoc cross-package mutation is flagged.
func TestConsumerPackage(t *testing.T) {
	diags := analysistest.Run(t, ctrmut.Analyzer, "ctruse")
	if len(diags) != 2 {
		t.Errorf("got %d diagnostics, want 2", len(diags))
	}
}
