// Package imc is a miniature clone of the real controller package:
// ctrmut keys on a struct named Counters declared in a package named
// imc, so the fixture reproduces that shape.
package imc

type Counters struct {
	Reads  uint64
	Writes uint64
}

// Add is a Counters method: mutation of the value receiver's fields
// is the sanctioned pipeline.
func (c Counters) Add(o Counters) Counters {
	c.Reads += o.Reads
	c.Writes += o.Writes
	return c
}

type Controller struct {
	counters Counters
}

// Read mutates through a Controller method: allowed.
func (c *Controller) Read() { c.counters.Reads++ }

// Counters returns a snapshot.
func (c *Controller) Counters() Counters { return c.counters }

// drain uses the batched range paths' local-accumulator flush shape:
// allowed in the counters' own package.
func drain(n int) Counters {
	var d Counters
	for i := 0; i < n; i++ {
		d.Writes++
	}
	return d
}

// Tamper is a free function poking a controller's counters from
// outside any method: flagged even inside the imc package.
func Tamper(c *Controller) {
	c.counters.Reads++ // want `counter field imc\.Reads mutated outside the counter pipeline`
}

var _ = drain
