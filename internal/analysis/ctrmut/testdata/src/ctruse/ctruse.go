// Package ctruse mutates imported imc.Counters every way a consumer
// might: through the Add pipeline (fine), through a declared
// accumulator (fine), and ad hoc (flagged).
package ctruse

import "imc"

// Report carries a counter snapshot by value.
type Report struct {
	C imc.Counters
}

// Stats declares its accumulator explicitly, the way core declares
// its 1LM flat-mode counters; the marker keeps the exception
// auditable and the guarantee test greppable.
type Stats struct {
	flat imc.Counters //ctrmut:accumulator fixture accumulator, flushed via Total
}

// Bump mutates through the declared accumulator: allowed.
func (s *Stats) Bump() { s.flat.Reads++ }

// Total drains the accumulator through the pipeline.
func (s *Stats) Total(base imc.Counters) imc.Counters { return base.Add(s.flat) }

// Fudge rewrites a snapshot field in place: exactly the ad-hoc
// cross-package mutation ctrmut exists to stop.
func Fudge(r *Report) {
	r.C.Reads++ // want `counter field imc\.Reads mutated outside the counter pipeline`
}

// LocalDrift shows that even a local accumulator is not sanctioned
// outside the counters' own package: merge with Add instead.
func LocalDrift(rs []Report) imc.Counters {
	var total imc.Counters
	for _, r := range rs {
		total.Reads += r.C.Reads // want `counter field imc\.Reads mutated outside the counter pipeline`
	}
	return total
}
