// Package ctrmut fences counter mutation behind the controller. The
// imc.Counters bookkeeping is the model's ground truth, so a field
// increment is legal only in three shapes:
//
//   - inside a Controller or Counters method in the counters' own
//     package (the Figure 3 decision flow and the Add/Sub pipeline),
//   - through a function-local accumulator in the counters' own
//     package (the batched range paths' `var d Counters ... flush`
//     pattern),
//   - through a field or variable explicitly declared as an
//     accumulator with a trailing `//ctrmut:accumulator <reason>`
//     marker in the package that declares it (core's 1LM flat-mode
//     counters), which keeps cross-package exceptions auditable.
//
// Everything else — an ad-hoc `ctrl.Counters().X++` from another
// package, a stray fixup in an experiment — is a lint error, because
// a mutation the differential tests don't know about is exactly how
// parallel-vs-serial counter exactness rots.
package ctrmut

import (
	"go/ast"
	"go/types"

	"twolm/internal/analysis/lintkit"
)

// Analyzer is the ctrmut analyzer.
var Analyzer = &lintkit.Analyzer{
	Name: "ctrmut",
	Doc: "imc.Counters fields may be mutated only in Controller/Counters " +
		"methods, package-local accumulators, or //ctrmut:accumulator-" +
		"declared fields; no ad-hoc counter writes from other packages",
	Run: run,
}

func run(pass *lintkit.Pass) error {
	for _, f := range pass.Files {
		if pass.InTestFile(f) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			inAllowedMethod := allowedReceiver(pass, fd)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch s := n.(type) {
				case *ast.IncDecStmt:
					check(pass, s.X, inAllowedMethod)
				case *ast.AssignStmt:
					for _, lhs := range s.Lhs {
						check(pass, lhs, inAllowedMethod)
					}
				}
				return true
			})
		}
	}
	return nil
}

// allowedReceiver reports whether fd is a method whose receiver is
// the Controller or Counters of the package under analysis.
func allowedReceiver(pass *lintkit.Pass, fd *ast.FuncDecl) bool {
	if fd.Recv == nil || len(fd.Recv.List) != 1 {
		return false
	}
	t := pass.TypesInfo.TypeOf(fd.Recv.List[0].Type)
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	name := n.Obj().Name()
	return (name == "Controller" || name == "Counters") && n.Obj().Pkg() == pass.Pkg
}

// check flags target if it mutates a field of a Counters struct
// declared in a package named imc without a valid allowance.
func check(pass *lintkit.Pass, target ast.Expr, inAllowedMethod bool) {
	se, ok := target.(*ast.SelectorExpr)
	if !ok {
		return
	}
	sel, ok := pass.TypesInfo.Selections[se]
	if !ok || sel.Kind() != types.FieldVal {
		return
	}
	owner := countersOwner(sel.Recv())
	if owner == nil {
		return
	}
	samePkg := owner.Obj().Pkg() == pass.Pkg

	if inAllowedMethod && samePkg {
		return
	}
	if samePkg && localAccumulator(pass, se.X, owner) {
		return
	}
	if declaredAccumulator(pass, se.X) {
		return
	}
	pass.Reportf(se.Sel.Pos(),
		"counter field %s.%s mutated outside the counter pipeline; counters change only via Controller/Counters methods, a package-local accumulator, or a //ctrmut:accumulator-declared field",
		owner.Obj().Pkg().Name(), sel.Obj().Name())
}

// countersOwner returns the named type if t is (a pointer to) a
// struct named Counters declared in a package named imc.
func countersOwner(t types.Type) *types.Named {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok || n.Obj().Name() != "Counters" {
		return nil
	}
	if _, ok := n.Underlying().(*types.Struct); !ok {
		return nil
	}
	if pkg := n.Obj().Pkg(); pkg == nil || pkg.Name() != "imc" {
		return nil
	}
	return n
}

// localAccumulator reports whether base is a function-local variable
// (or pointer parameter) of the Counters type — the `var d Counters`
// flush pattern and the `ctr *Counters` helper-parameter pattern.
func localAccumulator(pass *lintkit.Pass, base ast.Expr, owner *types.Named) bool {
	id, ok := base.(*ast.Ident)
	if !ok {
		return false
	}
	obj, ok := pass.TypesInfo.Uses[id].(*types.Var)
	if !ok || obj.IsField() {
		return false
	}
	// Package-scope vars are not local accumulators.
	if obj.Parent() == pass.Pkg.Scope() {
		return false
	}
	t := obj.Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	return ok && n.Obj() == owner.Obj()
}

// declaredAccumulator reports whether the base of the mutated
// selector resolves to a field or variable whose declaration carries
// a //ctrmut:accumulator marker in the package under analysis.
func declaredAccumulator(pass *lintkit.Pass, base ast.Expr) bool {
	var obj types.Object
	switch b := base.(type) {
	case *ast.Ident:
		obj = pass.TypesInfo.Uses[b]
	case *ast.SelectorExpr:
		if sel, ok := pass.TypesInfo.Selections[b]; ok {
			obj = sel.Obj()
		} else {
			obj = pass.TypesInfo.Uses[b.Sel]
		}
	default:
		return false
	}
	if obj == nil || obj.Pkg() != pass.Pkg {
		return false
	}
	return lintkit.LineDirective(pass.Fset, pass.Files, obj.Pos(), "ctrmut:accumulator")
}
