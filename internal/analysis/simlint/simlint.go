// Package simlint is the registry and driver for the repro's
// invariant analyzers. It decides which analyzer runs on which
// package — the analyzers themselves are policy-free — and exposes
// the in-process entry point shared by cmd/simlint and the
// hot-package guarantee test.
//
// Scoping, from ISSUE/DESIGN:
//
//   - hotdiv runs on the per-line hot packages (imc, cache, dram,
//     nvram, core) plus the sharded engine's routing layer;
//   - detrange additionally covers every package that feeds counters,
//     results artifacts, or replay logs (mem, trace, results, and the
//     telemetry surface, whose serialized series are byte-identical
//     artifacts by contract);
//   - counterdrift runs where Counters and its aggregators live (imc,
//     engine);
//   - ctrmut and resetcheck are whole-module rules: ad-hoc counter
//     mutation or reversed snapshot deltas are wrong anywhere;
//   - shardsafe and allocfree are whole-module rules too — their
//     scoping is declared in source (//hot:entry, //alloc:free), and
//     reachability from those declarations crosses package borders,
//     so every package must be able to report its own findings.
//
// Check and CheckRaw load the whole module before analyzing anything:
// the interprocedural analyzers (shardsafe, allocfree, cross-package
// detrange) need the full call graph even when the caller asks about
// a single package.
package simlint

import (
	"fmt"
	"go/token"
	"path/filepath"
	"strings"

	"twolm/internal/analysis/allocfree"
	"twolm/internal/analysis/counterdrift"
	"twolm/internal/analysis/ctrmut"
	"twolm/internal/analysis/detrange"
	"twolm/internal/analysis/hotdiv"
	"twolm/internal/analysis/lintkit"
	"twolm/internal/analysis/resetcheck"
	"twolm/internal/analysis/shardsafe"
)

func init() {
	// The cross-package detrange check skips callees that answer for
	// their own determinism; hand it the registry's scope.
	detrange.InScope = func(p string) bool {
		return deterministicPackages[NormalizeImportPath(p)]
	}
}

// A Rule pairs an analyzer with the set of packages it applies to.
type Rule struct {
	Analyzer *lintkit.Analyzer
	Match    func(importPath string) bool
}

// HotQuartet is the set of packages that must stay suppression-free
// outright (the nolint-free guarantee test enforces this): the four
// packages on the per-simulated-line path.
var HotQuartet = []string{
	"twolm/internal/imc",
	"twolm/internal/cache",
	"twolm/internal/dram",
	"twolm/internal/nvram",
}

var hotPackages = map[string]bool{
	"twolm/internal/imc":    true,
	"twolm/internal/cache":  true,
	"twolm/internal/dram":   true,
	"twolm/internal/nvram":  true,
	"twolm/internal/core":   true,
	"twolm/internal/engine": true,
}

var deterministicPackages = map[string]bool{
	"twolm/internal/imc":       true,
	"twolm/internal/cache":     true,
	"twolm/internal/dram":      true,
	"twolm/internal/nvram":     true,
	"twolm/internal/core":      true,
	"twolm/internal/engine":    true,
	"twolm/internal/mem":       true,
	"twolm/internal/trace":     true,
	"twolm/internal/results":   true,
	"twolm/internal/telemetry": true,
	// The sweep engine's merged tables must be byte-identical across
	// worker counts, so it lives under the same determinism fence as
	// the packages it drives (ctrmut/resetcheck already apply
	// module-wide). Registered with zero suppressions: all sweep
	// timing lives in callers outside the deterministic scope
	// (benchmarks, cmd/benchcheck).
	"twolm/internal/sweep": true,
	// The jobspec package is the wire format every front end (repro,
	// nvsweep, simd) lowers through; a nondeterministic source there
	// would silently fan out to byte-different artifacts everywhere,
	// so it sits inside the determinism fence too.
	"twolm/internal/jobspec": true,
}

var counterPackages = map[string]bool{
	"twolm/internal/imc":    true,
	"twolm/internal/engine": true,
}

// Rules returns every analyzer with its package scope.
func Rules() []Rule {
	inModule := func(path string) bool {
		return path == "twolm" || strings.HasPrefix(path, "twolm/")
	}
	return []Rule{
		{counterdrift.Analyzer, func(p string) bool { return counterPackages[p] }},
		{hotdiv.Analyzer, func(p string) bool { return hotPackages[p] }},
		{detrange.Analyzer, func(p string) bool { return deterministicPackages[p] }},
		{ctrmut.Analyzer, inModule},
		{resetcheck.Analyzer, inModule},
		{shardsafe.Analyzer, inModule},
		{allocfree.Analyzer, inModule},
	}
}

// AnalyzersFor returns the analyzers that apply to importPath. Vet
// test-variant unit names ("pkg [pkg.test]") are normalized first.
func AnalyzersFor(importPath string) []*lintkit.Analyzer {
	importPath = NormalizeImportPath(importPath)
	var out []*lintkit.Analyzer
	for _, r := range Rules() {
		if r.Match(importPath) {
			out = append(out, r.Analyzer)
		}
	}
	return out
}

// NormalizeImportPath strips the test-variant suffix go vet uses for
// packages recompiled with their test files.
func NormalizeImportPath(p string) string {
	if i := strings.Index(p, " ["); i >= 0 {
		return p[:i]
	}
	return p
}

// A Finding is one resolved diagnostic with its source position.
type Finding struct {
	Position token.Position
	Analyzer string
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: [%s] %s", f.Position, f.Analyzer, f.Message)
}

// LoadModule loads every package of the module rooted at root into
// one lintkit.Module — the whole-module view the interprocedural
// analyzers require.
func LoadModule(root, modulePath string) (*lintkit.Module, error) {
	paths, err := lintkit.DiscoverModule(root, modulePath)
	if err != nil {
		return nil, err
	}
	loader := lintkit.NewModuleLoader(root, modulePath)
	var pkgs []*lintkit.Package
	for _, p := range paths {
		pkg, err := loader.Load(p)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return lintkit.NewModule(pkgs), nil
}

// Check loads and analyzes the given module packages (import paths)
// with suppression directives honored, returning all surviving
// findings sorted per package. root is the module root directory. The
// whole module is loaded regardless of which packages are requested:
// reachability from //hot:entry and //alloc:free declarations crosses
// package borders.
func Check(root, modulePath string, importPaths []string) ([]Finding, error) {
	return check(root, modulePath, importPaths, false)
}

// CheckRaw is Check with suppression disabled: every violation is
// returned even if a //lint:ignore directive covers it. The guarantee
// test uses this to prove the hot quartet is clean without
// exceptions.
func CheckRaw(root, modulePath string, importPaths []string) ([]Finding, error) {
	return check(root, modulePath, importPaths, true)
}

func check(root, modulePath string, importPaths []string, raw bool) ([]Finding, error) {
	mod, err := LoadModule(root, modulePath)
	if err != nil {
		return nil, err
	}
	var out []Finding
	for _, path := range importPaths {
		analyzers := AnalyzersFor(path)
		if len(analyzers) == 0 {
			continue
		}
		pkg := mod.Package(NormalizeImportPath(path))
		if pkg == nil {
			return nil, fmt.Errorf("simlint: package %s is not part of module %s", path, modulePath)
		}
		var diags []lintkit.Diagnostic
		if raw {
			diags, err = lintkit.RawDiagnosticsModule(mod, pkg, analyzers)
		} else {
			diags, err = lintkit.RunModule(mod, pkg, analyzers)
		}
		if err != nil {
			return nil, err
		}
		for _, d := range diags {
			out = append(out, Finding{
				Position: pkg.Fset.Position(d.Pos),
				Analyzer: d.Analyzer,
				Message:  d.Message,
			})
		}
	}
	return out, nil
}

// A Suppression is one //lint:ignore directive somewhere in the
// module's non-test sources, as reported by cmd/simlint -suppressions.
type Suppression struct {
	File      string // path relative to the module root
	Line      int
	Analyzers []string // names in written order; empty when malformed
	Reason    string
}

func (s Suppression) String() string {
	names := strings.Join(s.Analyzers, ",")
	if names == "" {
		names = "(malformed)"
	}
	return fmt.Sprintf("%s:%d: %s: %s", s.File, s.Line, names, s.Reason)
}

// Suppressions inventories every //lint:ignore directive in the
// module, in deterministic (file, line) order. The guarantee test
// pins the count so a new suppression is always a deliberate diff.
func Suppressions(root, modulePath string) ([]Suppression, error) {
	mod, err := LoadModule(root, modulePath)
	if err != nil {
		return nil, err
	}
	var out []Suppression
	for _, pkg := range mod.Packages {
		for _, f := range pkg.Files {
			for _, d := range lintkit.FileDirectives(pkg.Fset, f) {
				rel, err := filepath.Rel(root, d.File)
				if err != nil {
					rel = d.File
				}
				reason := d.Reason
				if d.Malformed != "" {
					reason = "(malformed: " + d.Malformed + ")"
				}
				out = append(out, Suppression{
					File:      filepath.ToSlash(rel),
					Line:      d.Line,
					Analyzers: d.Analyzers,
					Reason:    reason,
				})
			}
		}
	}
	return out, nil
}
