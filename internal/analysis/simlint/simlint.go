// Package simlint is the registry and driver for the repro's
// invariant analyzers. It decides which analyzer runs on which
// package — the analyzers themselves are policy-free — and exposes
// the in-process entry point shared by cmd/simlint and the
// hot-package guarantee test.
//
// Scoping, from ISSUE/DESIGN:
//
//   - hotdiv runs on the per-line hot packages (imc, cache, dram,
//     nvram, core) plus the sharded engine's routing layer;
//   - detrange additionally covers every package that feeds counters,
//     results artifacts, or replay logs (mem, trace, results, and the
//     telemetry surface, whose serialized series are byte-identical
//     artifacts by contract);
//   - counterdrift runs where Counters and its aggregators live (imc,
//     engine);
//   - ctrmut and resetcheck are whole-module rules: ad-hoc counter
//     mutation or reversed snapshot deltas are wrong anywhere.
package simlint

import (
	"fmt"
	"go/token"
	"strings"

	"twolm/internal/analysis/counterdrift"
	"twolm/internal/analysis/ctrmut"
	"twolm/internal/analysis/detrange"
	"twolm/internal/analysis/hotdiv"
	"twolm/internal/analysis/lintkit"
	"twolm/internal/analysis/resetcheck"
)

// A Rule pairs an analyzer with the set of packages it applies to.
type Rule struct {
	Analyzer *lintkit.Analyzer
	Match    func(importPath string) bool
}

// HotQuartet is the set of packages that must stay suppression-free
// outright (the nolint-free guarantee test enforces this): the four
// packages on the per-simulated-line path.
var HotQuartet = []string{
	"twolm/internal/imc",
	"twolm/internal/cache",
	"twolm/internal/dram",
	"twolm/internal/nvram",
}

var hotPackages = map[string]bool{
	"twolm/internal/imc":    true,
	"twolm/internal/cache":  true,
	"twolm/internal/dram":   true,
	"twolm/internal/nvram":  true,
	"twolm/internal/core":   true,
	"twolm/internal/engine": true,
}

var deterministicPackages = map[string]bool{
	"twolm/internal/imc":       true,
	"twolm/internal/cache":     true,
	"twolm/internal/dram":      true,
	"twolm/internal/nvram":     true,
	"twolm/internal/core":      true,
	"twolm/internal/engine":    true,
	"twolm/internal/mem":       true,
	"twolm/internal/trace":     true,
	"twolm/internal/results":   true,
	"twolm/internal/telemetry": true,
	// The sweep engine's merged tables must be byte-identical across
	// worker counts, so it lives under the same determinism fence as
	// the packages it drives (ctrmut/resetcheck already apply
	// module-wide). Registered with zero suppressions: all sweep
	// timing lives in callers outside the deterministic scope
	// (benchmarks, cmd/benchcheck).
	"twolm/internal/sweep": true,
}

var counterPackages = map[string]bool{
	"twolm/internal/imc":    true,
	"twolm/internal/engine": true,
}

// Rules returns every analyzer with its package scope.
func Rules() []Rule {
	inModule := func(path string) bool {
		return path == "twolm" || strings.HasPrefix(path, "twolm/")
	}
	return []Rule{
		{counterdrift.Analyzer, func(p string) bool { return counterPackages[p] }},
		{hotdiv.Analyzer, func(p string) bool { return hotPackages[p] }},
		{detrange.Analyzer, func(p string) bool { return deterministicPackages[p] }},
		{ctrmut.Analyzer, inModule},
		{resetcheck.Analyzer, inModule},
	}
}

// AnalyzersFor returns the analyzers that apply to importPath. Vet
// test-variant unit names ("pkg [pkg.test]") are normalized first.
func AnalyzersFor(importPath string) []*lintkit.Analyzer {
	importPath = NormalizeImportPath(importPath)
	var out []*lintkit.Analyzer
	for _, r := range Rules() {
		if r.Match(importPath) {
			out = append(out, r.Analyzer)
		}
	}
	return out
}

// NormalizeImportPath strips the test-variant suffix go vet uses for
// packages recompiled with their test files.
func NormalizeImportPath(p string) string {
	if i := strings.Index(p, " ["); i >= 0 {
		return p[:i]
	}
	return p
}

// A Finding is one resolved diagnostic with its source position.
type Finding struct {
	Position token.Position
	Analyzer string
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: [%s] %s", f.Position, f.Analyzer, f.Message)
}

// Check loads and analyzes the given module packages (import paths)
// with suppression directives honored, returning all surviving
// findings sorted per package. root is the module root directory.
func Check(root, modulePath string, importPaths []string) ([]Finding, error) {
	loader := lintkit.NewModuleLoader(root, modulePath)
	var out []Finding
	for _, path := range importPaths {
		analyzers := AnalyzersFor(path)
		if len(analyzers) == 0 {
			continue
		}
		pkg, err := loader.Load(path)
		if err != nil {
			return nil, err
		}
		diags, err := lintkit.Run(pkg, analyzers)
		if err != nil {
			return nil, err
		}
		for _, d := range diags {
			out = append(out, Finding{
				Position: pkg.Fset.Position(d.Pos),
				Analyzer: d.Analyzer,
				Message:  d.Message,
			})
		}
	}
	return out, nil
}

// CheckRaw is Check with suppression disabled: every violation is
// returned even if a //lint:ignore directive covers it. The guarantee
// test uses this to prove the hot quartet is clean without
// exceptions.
func CheckRaw(root, modulePath string, importPaths []string) ([]Finding, error) {
	loader := lintkit.NewModuleLoader(root, modulePath)
	var out []Finding
	for _, path := range importPaths {
		analyzers := AnalyzersFor(path)
		if len(analyzers) == 0 {
			continue
		}
		pkg, err := loader.Load(path)
		if err != nil {
			return nil, err
		}
		diags, err := lintkit.RawDiagnostics(pkg, analyzers)
		if err != nil {
			return nil, err
		}
		for _, d := range diags {
			out = append(out, Finding{
				Position: pkg.Fset.Position(d.Pos),
				Analyzer: d.Analyzer,
				Message:  d.Message,
			})
		}
	}
	return out, nil
}
