package simlint_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"twolm/internal/analysis/simlint"
)

// moduleRoot walks up from the package directory to go.mod.
func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("go.mod not found above test directory")
		}
		dir = parent
	}
}

// TestHotQuartetHasNoSuppressions greps the four hot packages' source
// for every escape hatch the lint suite understands. The point of the
// guarantee is that imc/cache/dram/nvram pass the analyzers outright:
// no //lint:ignore, no nolint, no //ctrmut:accumulator declarations.
func TestHotQuartetHasNoSuppressions(t *testing.T) {
	root := moduleRoot(t)
	markers := []string{"lint:ignore", "nolint", "ctrmut:accumulator", "shardsafe:guarded"}
	for _, pkg := range simlint.HotQuartet {
		dir := filepath.Join(root, strings.TrimPrefix(pkg, "twolm/"))
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatalf("reading %s: %v", dir, err)
		}
		for _, e := range entries {
			if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
				continue
			}
			src, err := os.ReadFile(filepath.Join(dir, e.Name()))
			if err != nil {
				t.Fatal(err)
			}
			for _, m := range markers {
				if strings.Contains(string(src), m) {
					t.Errorf("%s/%s contains %q; hot-path packages must pass the analyzers without suppressions", pkg, e.Name(), m)
				}
			}
		}
	}
}

// TestHotQuartetCleanWithoutSuppression runs every applicable analyzer
// over the hot quartet with the suppression machinery disabled — the
// in-process form of the nolint-free guarantee.
func TestHotQuartetCleanWithoutSuppression(t *testing.T) {
	root := moduleRoot(t)
	findings, err := simlint.CheckRaw(root, "twolm", simlint.HotQuartet)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("raw finding on hot path: %s", f)
	}
}

// TestBulkEntryPointsDeclared pins the analyzer root set over the
// batched hot paths: every bulk range/run entry point must carry both
// //hot:entry (shardsafe roots its reachability walk there) and
// //alloc:free (allocfree proves the path allocation-free). Without the
// markers the closed-form fold paths would silently fall out of the
// shardsafe/allocfree/hotdiv guarantees this file exists to keep.
func TestBulkEntryPointsDeclared(t *testing.T) {
	root := moduleRoot(t)
	entries := map[string][]string{
		"internal/imc/imc.go":     {"func (c *Controller) LLCReadRange", "func (c *Controller) LLCWriteRange"},
		"internal/imc/seqfold.go": {"func (c *Controller) LLCWritebackReadRange"},
		"internal/nvram/nvram.go": {"func (m *Module) ReadLineRun", "func (m *Module) WriteLineRun"},
	}
	for file, funcs := range entries {
		src, err := os.ReadFile(filepath.Join(root, file))
		if err != nil {
			t.Fatal(err)
		}
		for _, fn := range funcs {
			idx := strings.Index(string(src), fn)
			if idx < 0 {
				t.Errorf("%s: entry point %q not found", file, fn)
				continue
			}
			// The markers live in the doc comment directly above the
			// declaration.
			doc := string(src[:idx])
			if cut := strings.LastIndex(doc, "\n\n"); cut >= 0 {
				doc = doc[cut:]
			}
			for _, marker := range []string{"//hot:entry", "//alloc:free"} {
				if !strings.Contains(doc, marker) {
					t.Errorf("%s: %q lacks %s in its doc comment", file, fn, marker)
				}
			}
		}
	}
}

// TestVettoolHotQuartet builds cmd/simlint and drives it through the
// real `go vet -vettool` protocol over the hot quartet, proving the
// unitchecker shim works end to end against the live tree.
func TestVettoolHotQuartet(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary and recompiles four packages")
	}
	root := moduleRoot(t)
	tool := filepath.Join(t.TempDir(), "simlint")

	build := exec.Command("go", "build", "-o", tool, "./cmd/simlint")
	build.Dir = root
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build ./cmd/simlint: %v\n%s", err, out)
	}

	args := append([]string{"vet", "-vettool=" + tool}, simlint.HotQuartet...)
	vet := exec.Command("go", args...)
	vet.Dir = root
	if out, err := vet.CombinedOutput(); err != nil {
		t.Fatalf("go vet -vettool over hot quartet failed: %v\n%s", err, out)
	}
}

// TestRegistryScope pins the package→analyzer mapping the registry
// promises, including vet test-variant normalization.
func TestRegistryScope(t *testing.T) {
	names := func(p string) map[string]bool {
		out := map[string]bool{}
		for _, a := range simlint.AnalyzersFor(p) {
			out[a.Name] = true
		}
		return out
	}

	imc := names("twolm/internal/imc")
	for _, want := range []string{"counterdrift", "hotdiv", "detrange", "ctrmut", "resetcheck", "shardsafe", "allocfree"} {
		if !imc[want] {
			t.Errorf("imc should get %s", want)
		}
	}

	res := names("twolm/internal/results")
	if res["hotdiv"] {
		t.Error("results is not a hot-path package; hotdiv should not apply")
	}
	if !res["detrange"] {
		t.Error("results emits report artifacts; detrange should apply")
	}
	if res["counterdrift"] {
		t.Error("counterdrift is scoped to imc and engine only")
	}
	for _, want := range []string{"shardsafe", "allocfree"} {
		if !res[want] {
			t.Errorf("%s is module-wide (reachability crosses package borders); results should get it", want)
		}
	}

	// The jobspec wire format feeds every front end; a wall-clock or
	// global-rand source there would fan out to byte-different
	// artifacts everywhere, so it sits in the detrange scope (but is
	// not a hot-path package).
	jb := names("twolm/internal/jobspec")
	if !jb["detrange"] {
		t.Error("jobspec is the shared wire format; detrange should apply")
	}
	if jb["hotdiv"] || jb["counterdrift"] {
		t.Error("jobspec is not a hot-path or counter package")
	}

	if got := names("twolm/internal/engine [twolm/internal/engine.test]"); !got["counterdrift"] {
		t.Error("test-variant unit name should normalize to the engine scope")
	}

	if got := names("example.com/other"); len(got) != 0 {
		t.Errorf("foreign import path matched analyzers: %v", got)
	}
}

// pinnedSuppressionCount is the audited number of //lint:ignore
// directives in the module's non-test sources. Adding a suppression
// anywhere means editing this constant, so it is always a deliberate,
// reviewable diff — never a drive-by. The two current entries are the
// engine's wall-clock reads (pool idle accounting and throughput
// timing), which are measurement plumbing, not simulated state.
const pinnedSuppressionCount = 2

// TestModuleSuppressionCount pins the module-wide suppression
// inventory to the audited count, and checks none of them live in the
// hot quartet (redundant with the grep test, but through the parsed
// directive surface the -suppressions report uses).
func TestModuleSuppressionCount(t *testing.T) {
	root := moduleRoot(t)
	sups, err := simlint.Suppressions(root, "twolm")
	if err != nil {
		t.Fatal(err)
	}
	if len(sups) != pinnedSuppressionCount {
		for _, s := range sups {
			t.Logf("suppression: %s", s)
		}
		t.Errorf("module has %d suppressions, pinned count is %d; audit the new directive and update the pin deliberately", len(sups), pinnedSuppressionCount)
	}
	for _, s := range sups {
		for _, pkg := range simlint.HotQuartet {
			dir := strings.TrimPrefix(pkg, "twolm/") + "/"
			if strings.HasPrefix(s.File, dir) {
				t.Errorf("suppression inside the hot quartet: %s", s)
			}
		}
	}
	for _, s := range sups {
		if strings.HasPrefix(s.Reason, "(malformed") {
			t.Errorf("malformed suppression directive: %s", s)
		}
	}
}
