// Package counterdrift enforces the repro's counting-exactness
// contract at build time: every field of a Counters struct must flow
// through the whole snapshot pipeline — field-wise Add, clamped Sub,
// and the String rendering — and every Merge-style aggregator must
// either delegate to Add or touch every field itself.
//
// The invariant this encodes is the paper's headline property: the
// serial controller, the channel-sharded engine, and the batched
// range paths must produce byte-identical imc.Counters. A new counter
// field that is bumped on the request path but missing from Add is
// exactly the kind of silent parallel-vs-serial divergence the
// differential tests can only catch if a workload happens to exercise
// it; counterdrift makes it a lint failure on every build.
package counterdrift

import (
	"go/ast"
	"go/types"

	"twolm/internal/analysis/lintkit"
)

// Analyzer is the counterdrift analyzer.
var Analyzer = &lintkit.Analyzer{
	Name: "counterdrift",
	Doc: "every Counters field must be referenced in Add, Sub, and String, " +
		"and Merge* aggregators must use Add or touch every field; guards " +
		"byte-identical counters across serial, sharded, and batched paths",
	Run: run,
}

// methods whose bodies must reference every counter field.
var requiredMethods = []string{"Add", "Sub", "String"}

func run(pass *lintkit.Pass) error {
	named, fields := localCounters(pass)
	if named != nil {
		checkMethods(pass, named, fields)
	}
	checkMergers(pass)
	return nil
}

// localCounters returns the package's own Counters struct type and
// its field objects, or nil if the package does not declare one.
func localCounters(pass *lintkit.Pass) (*types.Named, []*types.Var) {
	obj, ok := pass.Pkg.Scope().Lookup("Counters").(*types.TypeName)
	if !ok {
		return nil, nil
	}
	named, ok := obj.Type().(*types.Named)
	if !ok {
		return nil, nil
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return nil, nil
	}
	fields := make([]*types.Var, 0, st.NumFields())
	for i := 0; i < st.NumFields(); i++ {
		fields = append(fields, st.Field(i))
	}
	return named, fields
}

func checkMethods(pass *lintkit.Pass, named *types.Named, fields []*types.Var) {
	found := map[string]*ast.FuncDecl{}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil {
				continue
			}
			if receiverNamed(pass, fd) == named.Obj() {
				found[fd.Name.Name] = fd
			}
		}
	}
	for _, name := range requiredMethods {
		fd, ok := found[name]
		if !ok {
			pass.Reportf(named.Obj().Pos(),
				"Counters has no %s method; counters must support field-wise Add, clamped Sub, and a String snapshot", name)
			continue
		}
		touched := fieldsReferenced(pass, fd.Body, fields)
		for _, fv := range fields {
			if !touched[fv] {
				pass.Reportf(fv.Pos(),
					"counter field %s is not referenced in Counters.%s; a field outside the %s path silently diverges between the serial, sharded, and batched engines",
					fv.Name(), name, name)
			}
		}
	}
}

// checkMergers enforces the aggregation rule on Merge* functions,
// which may aggregate a Counters type imported from another package
// (engine.MergeCounters over imc.Counters).
func checkMergers(pass *lintkit.Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || len(fd.Name.Name) < 5 || fd.Name.Name[:5] != "Merge" {
				continue
			}
			named := countersInSignature(pass, fd)
			if named == nil {
				continue
			}
			if callsAdd(pass, fd.Body, named) {
				continue
			}
			st := named.Underlying().(*types.Struct)
			fields := make([]*types.Var, 0, st.NumFields())
			for i := 0; i < st.NumFields(); i++ {
				fields = append(fields, st.Field(i))
			}
			touched := fieldsReferenced(pass, fd.Body, fields)
			for _, fv := range fields {
				if !touched[fv] {
					pass.Reportf(fd.Name.Pos(),
						"%s aggregates %s.Counters without calling Add and without referencing field %s; drifted merges break parallel-vs-serial counter exactness",
						fd.Name.Name, named.Obj().Pkg().Name(), fv.Name())
				}
			}
		}
	}
}

// receiverNamed resolves a method's receiver base type object.
func receiverNamed(pass *lintkit.Pass, fd *ast.FuncDecl) *types.TypeName {
	if len(fd.Recv.List) != 1 {
		return nil
	}
	t := pass.TypesInfo.TypeOf(fd.Recv.List[0].Type)
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj()
	}
	return nil
}

// fieldsReferenced reports which of the given field objects appear as
// selections anywhere in body.
func fieldsReferenced(pass *lintkit.Pass, body *ast.BlockStmt, fields []*types.Var) map[*types.Var]bool {
	want := map[types.Object]bool{}
	for _, fv := range fields {
		want[fv] = true
	}
	out := map[*types.Var]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		se, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		sel, ok := pass.TypesInfo.Selections[se]
		if !ok || sel.Kind() != types.FieldVal {
			return true
		}
		if want[sel.Obj()] {
			out[sel.Obj().(*types.Var)] = true
		}
		return true
	})
	return out
}

// callsAdd reports whether body calls an Add method on the given
// Counters type.
func callsAdd(pass *lintkit.Pass, body *ast.BlockStmt, named *types.Named) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		ce, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		se, ok := ce.Fun.(*ast.SelectorExpr)
		if !ok || se.Sel.Name != "Add" {
			return true
		}
		if isCounters(pass.TypesInfo.TypeOf(se.X), named) {
			found = true
		}
		return true
	})
	return found
}

// countersInSignature returns the named Counters type mentioned in a
// function's parameters or results, unwrapping pointers, slices, and
// variadics.
func countersInSignature(pass *lintkit.Pass, fd *ast.FuncDecl) *types.Named {
	sig, ok := pass.TypesInfo.TypeOf(fd.Name).(*types.Signature)
	if !ok {
		return nil
	}
	check := func(tup *types.Tuple) *types.Named {
		for i := 0; i < tup.Len(); i++ {
			if n := countersNamed(tup.At(i).Type()); n != nil {
				return n
			}
		}
		return nil
	}
	if n := check(sig.Params()); n != nil {
		return n
	}
	return check(sig.Results())
}

// countersNamed unwraps t and returns it if it is a struct type named
// Counters.
func countersNamed(t types.Type) *types.Named {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
		case *types.Slice:
			t = u.Elem()
		default:
			if n, ok := t.(*types.Named); ok && n.Obj().Name() == "Counters" {
				if _, ok := n.Underlying().(*types.Struct); ok {
					return n
				}
			}
			return nil
		}
	}
}

// isCounters reports whether t is (a pointer to) the given named type.
func isCounters(t types.Type, named *types.Named) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	return ok && n.Obj() == named.Obj()
}
