package counterdrift_test

import (
	"testing"

	"twolm/internal/analysis/analysistest"
	"twolm/internal/analysis/counterdrift"
)

// TestDrift: a seeded fake field missing from Add/Sub/String and a
// hand-rolled merge are both caught.
func TestDrift(t *testing.T) {
	diags := analysistest.Run(t, counterdrift.Analyzer, "drift")
	// One finding per missing pipeline stage plus one for the merge.
	if len(diags) != 4 {
		t.Errorf("got %d diagnostics, want 4 (Add, Sub, String, MergeCounters)", len(diags))
	}
}

// TestClean: the compliant shape produces no findings.
func TestClean(t *testing.T) {
	if diags := analysistest.Run(t, counterdrift.Analyzer, "driftok"); len(diags) != 0 {
		t.Errorf("clean fixture produced %d diagnostics", len(diags))
	}
}

// TestMissingMethods: dropping Sub and String is itself an error.
func TestMissingMethods(t *testing.T) {
	analysistest.Run(t, counterdrift.Analyzer, "driftnostring")
}
