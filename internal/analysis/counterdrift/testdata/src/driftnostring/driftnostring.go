// Package driftnostring drops a required method entirely.
package driftnostring

type Counters struct { // want `Counters has no String method` `Counters has no Sub method`
	Reads uint64
}

func (c Counters) Add(o Counters) Counters {
	c.Reads += o.Reads
	return c
}
