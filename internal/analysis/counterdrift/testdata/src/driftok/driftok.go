// Package driftok is the clean shape: every field flows through Add,
// Sub, and String, and the merge delegates to Add.
package driftok

import "fmt"

type Counters struct {
	Reads  uint64
	Writes uint64
}

func (c Counters) Add(o Counters) Counters {
	c.Reads += o.Reads
	c.Writes += o.Writes
	return c
}

func (c Counters) Sub(o Counters) Counters {
	c.Reads -= o.Reads
	c.Writes -= o.Writes
	return c
}

func (c Counters) String() string {
	return fmt.Sprintf("r=%d w=%d", c.Reads, c.Writes)
}

// MergeCounters aggregates through Add, so new fields can never fall
// out of the merge.
func MergeCounters(cs ...Counters) Counters {
	var total Counters
	for _, c := range cs {
		total = total.Add(c)
	}
	return total
}
