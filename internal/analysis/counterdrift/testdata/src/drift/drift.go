// Package drift seeds a fake counter field to prove counterdrift
// catches a field that is wired into the request path but not into
// the Add/Sub/String snapshot pipeline.
package drift

import "fmt"

type Counters struct {
	Reads  uint64
	Writes uint64
	// Spilled is bumped on the request path below but deliberately
	// missing from Add, Sub, and String.
	Spilled uint64 // want `Spilled is not referenced in Counters\.(Add|Sub|String)`
}

func (c Counters) Add(o Counters) Counters {
	c.Reads += o.Reads
	c.Writes += o.Writes
	return c
}

func (c Counters) Sub(o Counters) Counters {
	c.Reads -= o.Reads
	c.Writes -= o.Writes
	return c
}

func (c Counters) String() string {
	return fmt.Sprintf("r=%d w=%d", c.Reads, c.Writes)
}

// Record drives the fake field so the fixture mirrors a real drift:
// the hot path counts events that aggregation then loses.
func (c *Counters) Record(spill bool) {
	c.Reads++
	if spill {
		c.Spilled++
	}
}

// MergeCounters drifts the same way: it folds two fields by hand
// instead of delegating to Add.
func MergeCounters(cs ...Counters) Counters { // want `MergeCounters aggregates drift\.Counters without calling Add and without referencing field Spilled`
	var total Counters
	for _, c := range cs {
		total.Reads += c.Reads
		total.Writes += c.Writes
	}
	return total
}
