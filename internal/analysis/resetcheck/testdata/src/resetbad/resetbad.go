// Package resetbad exercises the snapshot-pairing rules around a
// miniature controller.
package resetbad

type Counters struct {
	N uint64
}

func (c Counters) Sub(o Counters) Counters {
	if o.N > c.N {
		c.N = 0
	} else {
		c.N -= o.N
	}
	return c
}

type Ctrl struct {
	c Counters
}

func (c *Ctrl) Counters() Counters { return c.c }
func (c *Ctrl) ResetCounters()     { c.c = Counters{} }
func (c *Ctrl) Reset()             { c.c = Counters{} }
func (c *Ctrl) Work()              { c.c.N++ }

// Delta is the correct shape: later.Sub(earlier), no reset between.
func Delta(ct *Ctrl) Counters {
	before := ct.Counters()
	ct.Work()
	after := ct.Counters()
	return after.Sub(before)
}

// Reversed subtracts the later snapshot from the earlier one; every
// monotonic field clamps to zero.
func Reversed(ct *Ctrl) Counters {
	before := ct.Counters()
	ct.Work()
	after := ct.Counters()
	return before.Sub(after) // want `reversed snapshot delta`
}

// Straddle resets the controller between the two captures, so the
// delta measures nothing.
func Straddle(ct *Ctrl) Counters {
	before := ct.Counters()
	ct.ResetCounters()
	ct.Work()
	after := ct.Counters()
	return after.Sub(before) // want `snapshot delta straddles ResetCounters`
}

// StraddleFullReset recycles the controller between the two captures:
// the full-state Reset rewinds the counters exactly like
// ResetCounters, so the delta is equally meaningless.
func StraddleFullReset(ct *Ctrl) Counters {
	before := ct.Counters()
	ct.Reset()
	ct.Work()
	after := ct.Counters()
	return after.Sub(before) // want `snapshot delta straddles Reset`
}

// ResetBeforeBothCaptures is clean: the recycle happens before the
// measurement interval opens, not inside it.
func ResetBeforeBothCaptures(ct *Ctrl) Counters {
	ct.Reset()
	before := ct.Counters()
	ct.Work()
	after := ct.Counters()
	return after.Sub(before)
}

// InlineDelta captures the receiver side inline: still the correct
// order, still clean.
func InlineDelta(ct *Ctrl) Counters {
	before := ct.Counters()
	ct.Work()
	return ct.Counters().Sub(before)
}

// InlineReversed captures the argument side inline: the argument is
// taken after the receiver, which is the reversed order.
func InlineReversed(ct *Ctrl) Counters {
	before := ct.Counters()
	ct.Work()
	return before.Sub(ct.Counters()) // want `reversed snapshot delta`
}

// TwoControllers subtracts snapshots of different receivers; the
// lexical analysis stays out of it.
func TwoControllers(a, b *Ctrl) Counters {
	ca := a.Counters()
	cb := b.Counters()
	return cb.Sub(ca)
}
