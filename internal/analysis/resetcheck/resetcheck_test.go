package resetcheck_test

import (
	"testing"

	"twolm/internal/analysis/analysistest"
	"twolm/internal/analysis/resetcheck"
)

// TestSnapshotPairing: reversed deltas and deltas straddling either
// reset flavor (ResetCounters or the full-state Reset) are flagged;
// correct, pre-interval-reset and cross-receiver shapes pass.
func TestSnapshotPairing(t *testing.T) {
	diags := analysistest.Run(t, resetcheck.Analyzer, "resetbad")
	if len(diags) != 4 {
		t.Errorf("got %d diagnostics, want 4", len(diags))
	}
}
