package resetcheck_test

import (
	"testing"

	"twolm/internal/analysis/analysistest"
	"twolm/internal/analysis/resetcheck"
)

// TestSnapshotPairing: reversed deltas and deltas straddling
// ResetCounters are flagged; correct and cross-receiver shapes pass.
func TestSnapshotPairing(t *testing.T) {
	diags := analysistest.Run(t, resetcheck.Analyzer, "resetbad")
	if len(diags) != 3 {
		t.Errorf("got %d diagnostics, want 3", len(diags))
	}
}
