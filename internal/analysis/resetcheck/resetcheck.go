// Package resetcheck flags broken Counters snapshot arithmetic at the
// call site. Counters are monotonic within a measurement interval, so
// an interval delta is always later.Sub(earlier); two misuses produce
// silently-wrong data instead of errors, because Sub clamps at zero:
//
//   - reversed operands — earlier.Sub(later) clamps every field to 0,
//   - snapshots straddling ResetCounters or Reset — the controller
//     (and its DRAM/NVRAM modules) restarted from zero between the
//     two captures, so their difference measures nothing. Reset
//     (which additionally invalidates cache contents for controller
//     recycling) rewinds the demand clock exactly like ResetCounters,
//     so both are reset points here.
//
// The analysis is lexical within one function body: it tracks
// `x := recv.Counters()` captures, recv.ResetCounters() and
// recv.Reset() calls, and
// a.Sub(b) uses on the same receiver, comparing source positions. It
// deliberately ignores control flow — a pattern tangled enough to
// defeat it should be rewritten, or carry an explicit //lint:ignore
// with its justification.
package resetcheck

import (
	"go/ast"
	"go/token"
	"go/types"

	"twolm/internal/analysis/lintkit"
)

// Analyzer is the resetcheck analyzer.
var Analyzer = &lintkit.Analyzer{
	Name: "resetcheck",
	Doc: "Counters snapshot deltas must be later.Sub(earlier) with no " +
		"ResetCounters or Reset between the captures; clamped Sub turns " +
		"both misuses into silent zeros",
	Run: run,
}

type capture struct {
	pos  token.Pos
	recv string
	// method names the reset call for resets collected by the first
	// pass ("ResetCounters" or "Reset"); empty for snapshot captures.
	method string
}

func run(pass *lintkit.Pass) error {
	for _, f := range pass.Files {
		if pass.InTestFile(f) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd.Body)
		}
	}
	return nil
}

func checkFunc(pass *lintkit.Pass, body *ast.BlockStmt) {
	snaps := map[types.Object]capture{}
	var resets []capture

	// First pass: collect snapshot captures and reset positions.
	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			if len(s.Lhs) != len(s.Rhs) {
				return true
			}
			for i, rhs := range s.Rhs {
				id, ok := s.Lhs[i].(*ast.Ident)
				if !ok {
					continue
				}
				recv, ok := snapshotCall(pass, rhs, "Counters")
				if !ok {
					continue
				}
				obj := pass.TypesInfo.Defs[id]
				if obj == nil {
					obj = pass.TypesInfo.Uses[id]
				}
				if obj != nil {
					snaps[obj] = capture{pos: rhs.Pos(), recv: recv}
				}
			}
		case *ast.ExprStmt:
			// Both reset flavors rewind the counters: ResetCounters
			// (counters only, cache preserved) and Reset (full
			// recycle, cache invalidated too). A delta across either
			// is meaningless.
			for _, method := range [...]string{"ResetCounters", "Reset"} {
				if recv, ok := snapshotCall(pass, s.X, method); ok {
					resets = append(resets, capture{pos: s.X.Pos(), recv: recv, method: method})
				}
			}
		}
		return true
	})

	// Second pass: audit every Counters.Sub call.
	ast.Inspect(body, func(n ast.Node) bool {
		ce, ok := n.(*ast.CallExpr)
		if !ok || len(ce.Args) != 1 {
			return true
		}
		se, ok := ce.Fun.(*ast.SelectorExpr)
		if !ok || se.Sel.Name != "Sub" || !isCounters(pass.TypesInfo.TypeOf(se.X)) {
			return true
		}
		a, aok := operand(pass, snaps, se.X)
		b, bok := operand(pass, snaps, ce.Args[0])
		if !aok || !bok || a.recv != b.recv {
			return true
		}
		switch {
		case a.pos < b.pos:
			pass.Reportf(ce.Pos(),
				"reversed snapshot delta: the receiver of Sub was captured before its argument, so every monotonic field clamps to zero; swap the operands")
		case straddles(resets, a, b) != "":
			pass.Reportf(ce.Pos(),
				"snapshot delta straddles %s on %s: the counters restarted from zero between the two captures, so the difference is meaningless", straddles(resets, a, b), a.recv)
		}
		return true
	})
}

// snapshotCall matches a zero-argument method call named method and
// returns a stable key for its receiver expression.
func snapshotCall(pass *lintkit.Pass, e ast.Expr, method string) (string, bool) {
	ce, ok := e.(*ast.CallExpr)
	if !ok || len(ce.Args) != 0 {
		return "", false
	}
	se, ok := ce.Fun.(*ast.SelectorExpr)
	if !ok || se.Sel.Name != method {
		return "", false
	}
	return types.ExprString(se.X), true
}

// operand resolves one side of a Sub call to its capture: either a
// tracked snapshot identifier or an inline recv.Counters() call.
func operand(pass *lintkit.Pass, snaps map[types.Object]capture, e ast.Expr) (capture, bool) {
	switch v := e.(type) {
	case *ast.Ident:
		if obj := pass.TypesInfo.Uses[v]; obj != nil {
			c, ok := snaps[obj]
			return c, ok
		}
	case *ast.CallExpr:
		if recv, ok := snapshotCall(pass, v, "Counters"); ok {
			return capture{pos: v.Pos(), recv: recv}, true
		}
	}
	return capture{}, false
}

// straddles returns the name of a reset method on the same receiver
// falling between the two capture positions (b earlier, a later), or
// "" when the delta is clean.
func straddles(resets []capture, a, b capture) string {
	for _, r := range resets {
		if r.recv == a.recv && b.pos < r.pos && r.pos < a.pos {
			return r.method
		}
	}
	return ""
}

// isCounters reports whether t is (a pointer to) a struct type named
// Counters — scoping the Sub pattern away from time.Time.Sub and
// friends.
func isCounters(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok || n.Obj().Name() != "Counters" {
		return false
	}
	_, ok = n.Underlying().(*types.Struct)
	return ok
}
