// Package detcross models a deterministic package leaning on an
// out-of-scope helper package that reads the wall clock two calls
// down — invisible to the per-package check, caught by the
// interprocedural one.
package detcross

import "detclock"

// Run feeds counters, so this package is in the deterministic scope.
func Run(n int) int64 {
	total := int64(n)
	total += detclock.Stamp()  // want `cross-package call to detclock\.Stamp reaches time\.Now`
	total += detclock.Jitter() // want `cross-package call to detclock\.Jitter reaches rand\.Int63`
	total += detclock.Pure(n)  // clean helper: no finding
	return total
}
