// Package detbad exercises all three determinism hazards plus the
// allowed shapes next to each.
package detbad

import (
	"math/rand"
	"sort"
	"time"
)

// EmitUnsorted walks a map directly into an artifact: order changes
// run to run.
func EmitUnsorted(counts map[string]uint64, emit func(string, uint64)) {
	for k, v := range counts { // want `iteration over map\[string\]uint64 has randomized order`
		emit(k, v)
	}
}

// EmitSorted is the deterministic shape: collect, sort, then walk the
// slice. The key-collection loop is recognized and exempt, so the
// canonical fix is itself lint-clean.
func EmitSorted(counts map[string]uint64, emit func(string, uint64)) {
	keys := make([]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		emit(k, counts[k])
	}
}

// Stamp leaks the wall clock into simulated state.
func Stamp() int64 {
	return time.Now().UnixNano() // want `time\.Now in simulator code`
}

// Roll draws from the shared global source.
func Roll(n int) int {
	return rand.Intn(n) // want `rand\.Intn draws from the global math/rand source`
}

// RollSeeded is the reproducible shape: an explicit seeded generator.
func RollSeeded(seed int64, n int) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(n)
}
