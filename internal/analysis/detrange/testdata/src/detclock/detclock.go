// Package detclock is the out-of-scope helper: it is never analyzed
// by detrange itself (out of scope), so its wall-clock and global-rand
// reads surface only at cross-package call sites.
package detclock

import (
	"math/rand"
	"time"
)

// Stamp reaches time.Now through one more hop.
func Stamp() int64 {
	return stamp()
}

func stamp() int64 {
	return time.Now().UnixNano() // want `time\.Now in simulator code`
}

// Jitter draws from the global math/rand source.
func Jitter() int64 {
	return rand.Int63() // want `rand\.Int63 draws from the global math/rand source`
}

// Pure is deterministic; calls to it must stay clean.
func Pure(n int) int64 {
	return int64(n * 2)
}
