// Package detrange guards determinism in every code path that feeds
// counters, results artifacts, or replay logs. The channel-sharded
// engine's counter-exactness proof and the byte-identical artifact
// contract (diff -r between -parallel runs) both assume that
// simulator code never observes nondeterministic ordering or ambient
// entropy. Three constructs break that silently:
//
//   - ranging over a map (iteration order is randomized per run),
//   - time.Now (wall clock leaks into simulated state or artifacts),
//   - the global math/rand source (shared, unseeded, order-dependent).
//
// Seeded generators (rand.New(rand.NewSource(seed))) remain fine; the
// analyzer only flags calls through the package-level source.
//
// The check is also interprocedural: a call into another module
// package whose callee transitively reaches time.Now or the global
// math/rand source (through direct calls — interface dispatch is not
// followed) is a finding at the call site, unless the callee's
// package is itself inside the deterministic scope (then its own run
// already reports, or suppresses with a reason, at the source). The
// scope is injected via InScope by the simlint registry.
package detrange

import (
	"go/ast"
	"go/types"

	"twolm/internal/analysis/lintkit"
)

// Analyzer is the detrange analyzer.
var Analyzer = &lintkit.Analyzer{
	Name: "detrange",
	Doc: "no map iteration, time.Now, or global math/rand in simulator " +
		"packages; counter exactness and byte-identical artifacts assume " +
		"deterministic ordering",
	Run: run,
}

// seededConstructors are math/rand functions that build explicit,
// seedable generators rather than drawing from the global source.
var seededConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

// InScope reports whether an import path belongs to the deterministic
// scope detrange runs on. The simlint registry injects its scope map
// here so the cross-package check knows which callees already answer
// for their own determinism. When nil (standalone use, fixtures),
// only the package under analysis is considered in scope — the
// strictest reading.
var InScope func(importPath string) bool

func run(pass *lintkit.Pass) error {
	nondet := newNondetIndex(pass)
	for _, f := range pass.Files {
		if pass.InTestFile(f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch e := n.(type) {
			case *ast.RangeStmt:
				t := pass.TypesInfo.TypeOf(e.X)
				if t == nil {
					return true
				}
				if m, ok := t.Underlying().(*types.Map); ok && !keyCollectionLoop(e) {
					pass.Reportf(e.X.Pos(),
						"iteration over %s has randomized order; counter, artifact, and replay paths must be deterministic — collect and sort the keys first", types.TypeString(m, types.RelativeTo(pass.Pkg)))
				}
			case *ast.CallExpr:
				checkCall(pass, e)
				nondet.checkCrossPackageCall(pass, e)
			}
			return true
		})
	}
	return nil
}

// keyCollectionLoop matches the first half of the canonical
// deterministic idiom — `for k := range m { keys = append(keys, k) }`
// — whose body is order-insensitive by construction (the sort that
// follows fixes the order). Exempting it keeps the recommended fix
// itself lint-clean.
func keyCollectionLoop(rs *ast.RangeStmt) bool {
	key, ok := rs.Key.(*ast.Ident)
	if !ok || rs.Value != nil || len(rs.Body.List) != 1 {
		return false
	}
	as, ok := rs.Body.List[0].(*ast.AssignStmt)
	if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return false
	}
	dst, ok := as.Lhs[0].(*ast.Ident)
	if !ok {
		return false
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok || len(call.Args) != 2 {
		return false
	}
	fn, ok := call.Fun.(*ast.Ident)
	if !ok || fn.Name != "append" {
		return false
	}
	src, ok := call.Args[0].(*ast.Ident)
	arg, ok2 := call.Args[1].(*ast.Ident)
	return ok && ok2 && src.Name == dst.Name && arg.Name == key.Name
}

func checkCall(pass *lintkit.Pass, ce *ast.CallExpr) {
	se, ok := ce.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	id, ok := se.X.(*ast.Ident)
	if !ok {
		return
	}
	pn, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
	if !ok {
		return
	}
	switch pn.Imported().Path() {
	case "time":
		if se.Sel.Name == "Now" {
			pass.Reportf(ce.Pos(),
				"time.Now in simulator code leaks wall-clock nondeterminism into state that must replay identically; model time explicitly or suppress with a reason if this measures the simulator itself")
		}
	case "math/rand", "math/rand/v2":
		if !seededConstructors[se.Sel.Name] {
			pass.Reportf(ce.Pos(),
				"rand.%s draws from the global math/rand source, which is order-dependent across goroutines and runs; use a seeded rand.New(rand.NewSource(seed))", se.Sel.Name)
		}
	}
}

// ---- interprocedural cross-package check ----

// nondetSource names the nondeterminism a call expression introduces
// directly ("time.Now", "rand.Shuffle"), or "".
func nondetSource(info *types.Info, ce *ast.CallExpr) string {
	se, ok := ast.Unparen(ce.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	id, ok := se.X.(*ast.Ident)
	if !ok {
		return ""
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	if !ok {
		return ""
	}
	switch pn.Imported().Path() {
	case "time":
		if se.Sel.Name == "Now" {
			return "time.Now"
		}
	case "math/rand", "math/rand/v2":
		if !seededConstructors[se.Sel.Name] {
			return "rand." + se.Sel.Name
		}
	}
	return ""
}

// staticCallee resolves a call to its single static module-level
// callee: a plain function, a qualified function, or a concrete
// method. Interface dispatch returns nil — the cross-package check
// deliberately follows only edges the programmer wrote explicitly, so
// pluggable sinks (telemetry, experiments) don't smear their own
// nondeterminism onto every caller of the interface.
func staticCallee(info *types.Info, ce *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(ce.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok && sel.Kind() == types.MethodVal {
			if _, ok := sel.Recv().Underlying().(*types.Interface); ok {
				return nil
			}
		}
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// nondetIndex memoizes, per module function, the nondeterminism
// source it transitively reaches through direct calls.
type nondetIndex struct {
	mod   *lintkit.Module
	state map[*types.Func]int // 0 unvisited, 1 in progress, 2 done
	src   map[*types.Func]string
}

func newNondetIndex(pass *lintkit.Pass) *nondetIndex {
	return &nondetIndex{
		mod:   pass.Module,
		state: map[*types.Func]int{},
		src:   map[*types.Func]string{},
	}
}

// reaches returns the nondeterminism source fn transitively reaches,
// or "".
func (ix *nondetIndex) reaches(fn *types.Func) string {
	if ix.state[fn] != 0 {
		return ix.src[fn] // in-progress cycles read as clean-so-far
	}
	ix.state[fn] = 1
	fd, fpkg := ix.mod.FuncDecl(fn)
	if fd == nil || fd.Body == nil {
		ix.state[fn] = 2
		return ""
	}
	found := ""
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found != "" {
			return false
		}
		ce, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if s := nondetSource(fpkg.Info, ce); s != "" {
			found = s
			return false
		}
		if callee := staticCallee(fpkg.Info, ce); callee != nil && callee != fn {
			if s := ix.reaches(callee); s != "" {
				found = s
				return false
			}
		}
		return true
	})
	ix.src[fn] = found
	ix.state[fn] = 2
	return found
}

// checkCrossPackageCall flags a call whose module-local callee lives
// in another package outside the deterministic scope and transitively
// reaches a nondeterminism source. In-scope callees are skipped: their
// own package run reports (or suppresses, with an auditable reason)
// at the source.
func (ix *nondetIndex) checkCrossPackageCall(pass *lintkit.Pass, ce *ast.CallExpr) {
	callee := staticCallee(pass.TypesInfo, ce)
	if callee == nil || callee.Pkg() == nil || callee.Pkg() == pass.Pkg {
		return
	}
	if fd, _ := ix.mod.FuncDecl(callee); fd == nil {
		return // outside the module view
	}
	if InScope != nil && InScope(callee.Pkg().Path()) {
		return
	}
	if s := ix.reaches(callee); s != "" {
		pass.Reportf(ce.Pos(),
			"cross-package call to %s reaches %s, and %s is outside the deterministic scope so nothing reports it there; model the dependency explicitly or bring the package into the detrange scope",
			lintkit.FuncDisplayName(callee), s, callee.Pkg().Path())
	}
}
