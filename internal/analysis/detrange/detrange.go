// Package detrange guards determinism in every code path that feeds
// counters, results artifacts, or replay logs. The channel-sharded
// engine's counter-exactness proof and the byte-identical artifact
// contract (diff -r between -parallel runs) both assume that
// simulator code never observes nondeterministic ordering or ambient
// entropy. Three constructs break that silently:
//
//   - ranging over a map (iteration order is randomized per run),
//   - time.Now (wall clock leaks into simulated state or artifacts),
//   - the global math/rand source (shared, unseeded, order-dependent).
//
// Seeded generators (rand.New(rand.NewSource(seed))) remain fine; the
// analyzer only flags calls through the package-level source.
package detrange

import (
	"go/ast"
	"go/types"

	"twolm/internal/analysis/lintkit"
)

// Analyzer is the detrange analyzer.
var Analyzer = &lintkit.Analyzer{
	Name: "detrange",
	Doc: "no map iteration, time.Now, or global math/rand in simulator " +
		"packages; counter exactness and byte-identical artifacts assume " +
		"deterministic ordering",
	Run: run,
}

// seededConstructors are math/rand functions that build explicit,
// seedable generators rather than drawing from the global source.
var seededConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

func run(pass *lintkit.Pass) error {
	for _, f := range pass.Files {
		if pass.InTestFile(f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch e := n.(type) {
			case *ast.RangeStmt:
				t := pass.TypesInfo.TypeOf(e.X)
				if t == nil {
					return true
				}
				if m, ok := t.Underlying().(*types.Map); ok && !keyCollectionLoop(e) {
					pass.Reportf(e.X.Pos(),
						"iteration over %s has randomized order; counter, artifact, and replay paths must be deterministic — collect and sort the keys first", types.TypeString(m, types.RelativeTo(pass.Pkg)))
				}
			case *ast.CallExpr:
				checkCall(pass, e)
			}
			return true
		})
	}
	return nil
}

// keyCollectionLoop matches the first half of the canonical
// deterministic idiom — `for k := range m { keys = append(keys, k) }`
// — whose body is order-insensitive by construction (the sort that
// follows fixes the order). Exempting it keeps the recommended fix
// itself lint-clean.
func keyCollectionLoop(rs *ast.RangeStmt) bool {
	key, ok := rs.Key.(*ast.Ident)
	if !ok || rs.Value != nil || len(rs.Body.List) != 1 {
		return false
	}
	as, ok := rs.Body.List[0].(*ast.AssignStmt)
	if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return false
	}
	dst, ok := as.Lhs[0].(*ast.Ident)
	if !ok {
		return false
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok || len(call.Args) != 2 {
		return false
	}
	fn, ok := call.Fun.(*ast.Ident)
	if !ok || fn.Name != "append" {
		return false
	}
	src, ok := call.Args[0].(*ast.Ident)
	arg, ok2 := call.Args[1].(*ast.Ident)
	return ok && ok2 && src.Name == dst.Name && arg.Name == key.Name
}

func checkCall(pass *lintkit.Pass, ce *ast.CallExpr) {
	se, ok := ce.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	id, ok := se.X.(*ast.Ident)
	if !ok {
		return
	}
	pn, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
	if !ok {
		return
	}
	switch pn.Imported().Path() {
	case "time":
		if se.Sel.Name == "Now" {
			pass.Reportf(ce.Pos(),
				"time.Now in simulator code leaks wall-clock nondeterminism into state that must replay identically; model time explicitly or suppress with a reason if this measures the simulator itself")
		}
	case "math/rand", "math/rand/v2":
		if !seededConstructors[se.Sel.Name] {
			pass.Reportf(ce.Pos(),
				"rand.%s draws from the global math/rand source, which is order-dependent across goroutines and runs; use a seeded rand.New(rand.NewSource(seed))", se.Sel.Name)
		}
	}
}
