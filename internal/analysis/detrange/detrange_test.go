package detrange_test

import (
	"testing"

	"twolm/internal/analysis/analysistest"
	"twolm/internal/analysis/detrange"
)

// TestDeterminism: map iteration, time.Now, and global rand are
// flagged; the sorted-keys idiom and seeded generators are not.
func TestDeterminism(t *testing.T) {
	diags := analysistest.Run(t, detrange.Analyzer, "detbad")
	if len(diags) != 3 {
		t.Errorf("got %d diagnostics, want 3 (map range, time.Now, rand.Intn)", len(diags))
	}
}
