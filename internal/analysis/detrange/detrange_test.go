package detrange_test

import (
	"testing"

	"twolm/internal/analysis/analysistest"
	"twolm/internal/analysis/detrange"
)

// TestDeterminism: map iteration, time.Now, and global rand are
// flagged; the sorted-keys idiom and seeded generators are not.
func TestDeterminism(t *testing.T) {
	diags := analysistest.Run(t, detrange.Analyzer, "detbad")
	if len(diags) != 3 {
		t.Errorf("got %d diagnostics, want 3 (map range, time.Now, rand.Intn)", len(diags))
	}
}

// TestCrossPackage: a deterministic package calling an out-of-scope
// helper that transitively reaches time.Now or the global rand source
// is a finding at the call site; calls to clean helpers are not.
func TestCrossPackage(t *testing.T) {
	analysistest.RunModule(t, detrange.Analyzer, "detcross", "detclock")
}
