package shardsafe_test

import (
	"testing"

	"twolm/internal/analysis/analysistest"
	"twolm/internal/analysis/shardsafe"
)

// TestTouchSinkRegression is the PR 7 race, reproduced as a failing
// fixture: the analyzer must flag the package-level touch sink written
// two calls below the hot entry point.
func TestTouchSinkRegression(t *testing.T) {
	diags := analysistest.Run(t, shardsafe.Analyzer, "touchsink")
	if len(diags) == 0 {
		t.Fatal("touchsink fixture produced no diagnostics: the PR 7 race would ship again")
	}
}

// TestShardedRegression is the PR 4 race: goroutine-written shards
// observed without a lock, in both the no-mutex and leaky-accessor
// shapes.
func TestShardedRegression(t *testing.T) {
	diags := analysistest.Run(t, shardsafe.Analyzer, "sharded")
	if len(diags) < 2 {
		t.Fatalf("sharded fixture produced %d diagnostics, want the missing-mutex and unlocked-accessor findings", len(diags))
	}
}

func TestCleanPackage(t *testing.T) {
	analysistest.Run(t, shardsafe.Analyzer, "shardok")
}

// TestCrossPackage proves reachability crosses package boundaries: the
// entry lives in crossentry, the racy write in crosshelper.
func TestCrossPackage(t *testing.T) {
	analysistest.RunModule(t, shardsafe.Analyzer, "crossentry", "crosshelper")
}
