// Package crosshelper holds the shared accumulator a hot entry point
// in another package reaches — the cross-package blind spot the
// interprocedural layer exists to close.
package crosshelper

var total int

// Bump is only dangerous because crossentry.Run is hot; nothing in
// this package alone says so.
func Bump() {
	total++ // want `hot path writes package-level var total \(crossentry\.Run -> crosshelper\.Bump\)`
}
