// Package sharded models the PR 4 engine.Sharded observation race:
// ReplayParallel's workers mutate per-channel controllers behind
// s.shards while an unlocked observer walks the same slice from
// another goroutine. Unlocked is the pre-fix shape (no mutex at all);
// Locked has the mutex but leaks one unlocked accessor.
package sharded

import "sync"

// Counters is a toy counter block.
type Counters struct{ Reads, Writes uint64 }

// ctrl models one per-channel controller.
type ctrl struct{ ctr Counters }

func (c *ctrl) replay(ops []uint64) {
	for range ops {
		c.ctr.Reads++
	}
}

// Unlocked is the pre-fix Sharded: goroutines write the controllers
// behind shards and nothing guards the observers.
type Unlocked struct { // want `goroutines launched in sharded\.\(Unlocked\)\.ReplayParallel write field\(s\) shards of Unlocked, but the type has no sync\.Mutex`
	shards []*ctrl
}

//hot:entry suites replay concurrently with observers
func (s *Unlocked) ReplayParallel(ops []uint64) {
	var wg sync.WaitGroup
	for w := range s.shards {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := s.shards[w]
			c.replay(ops)
		}(w)
	}
	wg.Wait()
}

// Counters is the racy observer that shipped: it walks shards with no
// synchronization anywhere in the type.
func (s *Unlocked) Counters() Counters {
	var t Counters
	for _, c := range s.shards {
		t.Reads += c.ctr.Reads
		t.Writes += c.ctr.Writes
	}
	return t
}

// Locked is the post-fix shape — except Shard, which hands out a
// live controller without taking the lock.
type Locked struct {
	mu     sync.Mutex
	shards []*ctrl
}

//hot:entry suites replay concurrently with observers
func (l *Locked) ReplayParallel(ops []uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	var wg sync.WaitGroup
	for w := range l.shards {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			l.shards[w].replay(ops)
		}(w)
	}
	wg.Wait()
}

// Counters locks: fine.
func (l *Locked) Counters() Counters {
	l.mu.Lock()
	defer l.mu.Unlock()
	var t Counters
	for _, c := range l.shards {
		t.Reads += c.ctr.Reads
	}
	return t
}

// Snapshot delegates to a locking helper: also fine.
func (l *Locked) Snapshot() []Counters {
	return l.snapshotLocked()
}

func (l *Locked) snapshotLocked() []Counters {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Counters, len(l.shards))
	for i, c := range l.shards {
		out[i] = c.ctr
	}
	return out
}

// Channels only reads the slice header: exempt.
func (l *Locked) Channels() int {
	return len(l.shards)
}

// Shard leaks an unguarded view of a goroutine-written field.
func (l *Locked) Shard(i int) *ctrl { // want `sharded\.\(Locked\)\.Shard touches field\(s\) shards, written by goroutines launched in sharded\.\(Locked\)\.ReplayParallel, without acquiring mu`
	return l.shards[i]
}
