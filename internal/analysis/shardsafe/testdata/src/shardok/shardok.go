// Package shardok is the clean counterpart: receiver-confined state,
// atomics, guarded declarations, and a fully locked sharded type.
// shardsafe must report nothing here.
package shardok

import (
	"sync"
	"sync/atomic"
)

// table is a read-only lookup initialized at package init; hot paths
// only read it, which is fine.
var table = [4]uint64{1, 2, 4, 8}

var inFlight atomic.Int64

type worker struct{ sum uint64 }

func (w *worker) step(v uint64) { w.sum += v }

// Pool is a correctly locked goroutine-sharing type.
type Pool struct {
	mu      sync.Mutex
	workers []*worker
}

//hot:entry drives all workers concurrently
func (p *Pool) Run(ops []uint64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	inFlight.Add(1)
	var wg sync.WaitGroup
	for i := range p.workers {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for _, v := range ops {
				p.workers[i].step(table[v%4])
			}
		}(i)
	}
	wg.Wait()
	inFlight.Add(-1)
}

// Sum locks before reading what the goroutines wrote.
func (p *Pool) Sum() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	var t uint64
	for _, w := range p.workers {
		t += w.sum
	}
	return t
}

// Size reads only the slice header.
func (p *Pool) Size() int { return len(p.workers) }
