// Package touchsink models the PR 7 LLCScatter race: the MLP touch
// pass summed into a package-level sink shared by every controller,
// so concurrent sweep workers raced on it. The racing write sits two
// calls below the hot entry point — only an interprocedural check can
// connect them.
package touchsink

import "sync/atomic"

// touchSink is the bug: one accumulator shared by every controller.
var touchSink uint64

// opsTotal is fine: atomics synchronize themselves.
var opsTotal atomic.Uint64

// legacyOps is fine too, as long as it is only touched through
// sync/atomic calls.
var legacyOps uint64

//shardsafe:guarded test-only debug accumulator, never read during concurrent runs
var debugSeeds [4]uint64

// Controller models one pooled cache controller.
type Controller struct {
	tags []uint64
}

//hot:entry sweep workers drive pooled controllers of this type concurrently
func (c *Controller) LLCScatter(reqs []uint64) {
	for _, r := range reqs {
		c.dispatch(r)
	}
}

func (c *Controller) dispatch(r uint64) {
	var touch uint64
	for _, t := range c.tags {
		touch += t ^ r
	}
	touchSink += touch // want `hot path writes package-level var touchSink`
}

//hot:entry observers may run while controllers are live
func Escape() *uint64 {
	return &touchSink // want `hot path takes the address of package-level var touchSink`
}

//hot:entry atomic counters are safe to share across controllers
func Count() {
	opsTotal.Add(1)
	atomic.AddUint64(&legacyOps, 1)
}

//hot:entry guarded declarations are audited exceptions
func Seed(i int, v uint64) {
	debugSeeds[i] = v
}
