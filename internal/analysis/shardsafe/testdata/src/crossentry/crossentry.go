// Package crossentry declares the hot entry point whose reachability
// crosses into crosshelper.
package crossentry

import "crosshelper"

//hot:entry concurrent jobs call Run on pooled state
func Run() {
	crosshelper.Bump()
}
