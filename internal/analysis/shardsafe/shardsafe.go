// Package shardsafe flags shared mutable state reachable from
// declared hot entry points — the static form of the discipline that
// lets sweep workers and engine.Sharded drive many controllers
// concurrently: per-instance state must be confined to the instance.
//
// Two checks, both interprocedural over the lintkit call graph:
//
//  1. Package-level state. Any function reachable from a
//     //hot:entry-marked function must not write a package-level var,
//     take its address, or call a receiver-mutating method on it.
//     This is the PR 7 touchSink race shape: the racing write lived
//     two calls below LLCScatter in the same package, invisible to
//     any per-function rule. sync/sync-atomic-typed vars and
//     //shardsafe:guarded-marked declarations are exempt, as are
//     &-args to sync/atomic calls.
//
//  2. Goroutine-shared receiver fields. If a hot-reachable method of
//     type T launches goroutines that write T's fields — directly, or
//     by calling receiver-mutating methods on values pulled out of
//     those fields — then T needs a sync.Mutex/RWMutex field, and
//     every exported method of T touching a goroutine-written field
//     must acquire it (len/cap-only touches are exempt). This is the
//     PR 4 engine.Sharded shape: workers mutate controllers behind
//     s.shards while an unlocked Counters() walks the same slice.
package shardsafe

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"twolm/internal/analysis/lintkit"
)

const (
	// EntryMarker declares a hot entry point: sweep workers or the
	// sharded engine call the marked function on concurrent
	// controllers. The trailing text is a mandatory reason.
	EntryMarker = "hot:entry"
	// GuardMarker declares a package-level var as deliberately shared
	// (externally synchronized or test-only); it exempts the var from
	// check 1. Forbidden in the hot quartet by the guarantee test.
	GuardMarker = "shardsafe:guarded"
)

var Analyzer = &lintkit.Analyzer{
	Name: "shardsafe",
	Doc: "flags package-level state written on //hot:entry-reachable paths and " +
		"goroutine-shared receiver fields accessed without their mutex, so " +
		"concurrent controllers provably share no unsynchronized mutable state",
	Run: run,
}

func run(pass *lintkit.Pass) error {
	mod := pass.Module
	entries := mod.MarkedFuncs(EntryMarker)
	if len(entries) == 0 {
		return nil
	}
	reach := mod.Graph.Reachable(entries)
	writers := receiverWriters(mod)

	for _, fn := range mod.Funcs() {
		if reach[fn] == nil {
			continue
		}
		fd, pkg := mod.FuncDecl(fn)
		if pkg == nil || pkg.Types != pass.Pkg || fd.Body == nil {
			continue
		}
		checkGlobals(pass, mod, fn, fd, pkg, reach, writers)
	}

	checkGoroutines(pass, mod, reach, writers)
	return nil
}

// checkGlobals reports hot-path mutation of package-level vars in one
// function body (check 1).
func checkGlobals(pass *lintkit.Pass, mod *lintkit.Module, fn *types.Func, fd *ast.FuncDecl, pkg *lintkit.Package, reach map[*types.Func]*types.Func, writers map[*types.Func]bool) {
	// &-expressions passed straight to sync/atomic functions are the
	// blessed way to share a plain counter word; collect them first.
	atomicArgs := map[ast.Expr]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		ce, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if se, ok := ast.Unparen(ce.Fun).(*ast.SelectorExpr); ok {
			if f, ok := pkg.Info.Uses[se.Sel].(*types.Func); ok && f.Pkg() != nil && f.Pkg().Path() == "sync/atomic" {
				for _, a := range ce.Args {
					atomicArgs[ast.Unparen(a)] = true
				}
			}
		}
		return true
	})

	report := func(pos token.Pos, v *types.Var, how string) {
		if exemptVar(mod, v) {
			return
		}
		pass.Reportf(pos, "hot path %s package-level var %s (%s); concurrent controllers must not share mutable state — confine it to a receiver or mark the declaration //shardsafe:guarded <reason>",
			how, v.Name(), lintkit.WitnessPath(reach, fn))
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range st.Lhs {
				if v := globalBase(pkg.Info, lhs); v != nil {
					report(lhs.Pos(), v, "writes")
				}
			}
		case *ast.IncDecStmt:
			if v := globalBase(pkg.Info, st.X); v != nil {
				report(st.X.Pos(), v, "writes")
			}
		case *ast.UnaryExpr:
			if st.Op == token.AND && !atomicArgs[st] {
				if v := globalBase(pkg.Info, st.X); v != nil {
					report(st.Pos(), v, "takes the address of")
				}
			}
		case *ast.CallExpr:
			if se, ok := ast.Unparen(st.Fun).(*ast.SelectorExpr); ok {
				if m, ok := pkg.Info.Uses[se.Sel].(*types.Func); ok && writers[m] {
					if v := globalBase(pkg.Info, se.X); v != nil {
						report(se.Pos(), v, "calls the receiver-mutating method "+m.Name()+" on")
					}
				}
			}
		}
		return true
	})
}

// globalBase resolves the base of an lvalue chain (selectors, indexes,
// derefs) to a package-level variable, or nil.
func globalBase(info *types.Info, e ast.Expr) *types.Var {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			v, ok := info.ObjectOf(x).(*types.Var)
			if ok && !v.IsField() && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
				return v
			}
			return nil
		case *ast.SelectorExpr:
			// Qualified reference to another package's var.
			if v, ok := info.Uses[x.Sel].(*types.Var); ok && !v.IsField() && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
				return v
			}
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// exemptVar reports whether a package-level var is allowed to be
// touched on hot paths: sync primitives and atomics synchronize
// themselves, //shardsafe:guarded declares an audited exception, and
// vars outside the module view (stdlib) are out of scope.
func exemptVar(mod *lintkit.Module, v *types.Var) bool {
	if isSyncPkgType(v.Type()) {
		return true
	}
	pkg := mod.PackageFor(v)
	if pkg == nil {
		return true
	}
	return lintkit.LineDirective(pkg.Fset, pkg.Files, v.Pos(), "//"+GuardMarker)
}

// isSyncPkgType reports whether t (or its pointee) is declared in sync
// or sync/atomic.
func isSyncPkgType(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	o := n.Obj()
	return o.Pkg() != nil && (o.Pkg().Path() == "sync" || o.Pkg().Path() == "sync/atomic")
}

// isSyncLock reports whether t is sync.Mutex or sync.RWMutex (possibly
// behind a pointer).
func isSyncLock(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	o := n.Obj()
	return o.Pkg() != nil && o.Pkg().Path() == "sync" && (o.Name() == "Mutex" || o.Name() == "RWMutex")
}

// ---- receiver effect analysis ----

// method is one module method with the context needed to analyze its
// body.
type method struct {
	fn    *types.Func
	fd    *ast.FuncDecl
	pkg   *lintkit.Package
	recv  types.Object // receiver object; nil when unnamed
	named *types.Named
}

// moduleMethods collects every module method with a named receiver.
func moduleMethods(mod *lintkit.Module) []method {
	var out []method
	for _, fn := range mod.Funcs() {
		fd, pkg := mod.FuncDecl(fn)
		if fd == nil || fd.Recv == nil || fd.Body == nil {
			continue
		}
		recv, named := receiverOf(pkg, fd)
		if named == nil {
			continue
		}
		out = append(out, method{fn: fn, fd: fd, pkg: pkg, recv: recv, named: named})
	}
	return out
}

// receiverOf returns the receiver object (nil if unnamed) and the
// receiver's named type for a method declaration.
func receiverOf(pkg *lintkit.Package, fd *ast.FuncDecl) (types.Object, *types.Named) {
	fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
	if !ok {
		return nil, nil
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil, nil
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, _ := t.(*types.Named)
	var obj types.Object
	if f := fd.Recv.List[0]; len(f.Names) > 0 {
		obj = pkg.Info.Defs[f.Names[0]]
	}
	return obj, named
}

// receiverWriters computes, by fixpoint, the set of module methods
// that mutate their own receiver: a direct field write or address
// escape, or a call to another writer on the receiver or on a value
// derived from its fields.
func receiverWriters(mod *lintkit.Module) map[*types.Func]bool {
	methods := moduleMethods(mod)
	writes := map[*types.Func]bool{}
	for changed := true; changed; {
		changed = false
		for _, m := range methods {
			if writes[m.fn] || m.recv == nil {
				continue
			}
			eff := bodyEffects(m.pkg.Info, m.fd.Body, m.recv, m.named, writes)
			if len(eff.fields) > 0 {
				writes[m.fn] = true
				changed = true
				continue
			}
			for _, c := range eff.recvCallees {
				if writes[c] {
					writes[m.fn] = true
					changed = true
					break
				}
			}
		}
	}
	return writes
}

// effects is what one body does to its receiver: the fields it writes
// (bare-receiver writes map to "*"), and the same-type methods it
// invokes directly on the receiver.
type effects struct {
	fields      map[string]bool
	recvCallees []*types.Func
}

// bodyEffects scans body in the context of receiver recv. writers is
// the current receiver-writer set, used to treat a mutating method
// call on a field-derived value (ctrl := s.shards[w]; ctrl.LLCWrite())
// as a write of that field — the exact shape of the PR 4 race.
func bodyEffects(info *types.Info, body ast.Node, recv types.Object, named *types.Named, writers map[*types.Func]bool) effects {
	eff := effects{fields: map[string]bool{}}
	// taint maps locals to the receiver field their value derives from.
	taint := map[types.Object]string{}
	mark := func(f string) {
		if f == "" {
			f = "*"
		}
		eff.fields[f] = true
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range st.Lhs {
				if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
					obj := info.ObjectOf(id)
					if obj == recv {
						continue // reassigning the receiver ident itself
					}
					if obj != nil && i < len(st.Rhs) {
						if f, on := sourceField(info, st.Rhs[i], recv, taint); on && f != "" {
							taint[obj] = f
						}
					}
					continue
				}
				if f, on := sourceField(info, lhs, recv, taint); on {
					mark(f)
				}
			}
		case *ast.RangeStmt:
			if f, on := sourceField(info, st.X, recv, taint); on && f != "" {
				for _, e := range []ast.Expr{st.Key, st.Value} {
					if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
						if obj := info.ObjectOf(id); obj != nil {
							taint[obj] = f
						}
					}
				}
			}
		case *ast.IncDecStmt:
			if f, on := sourceField(info, st.X, recv, taint); on {
				mark(f)
			}
		case *ast.UnaryExpr:
			if st.Op == token.AND {
				if f, on := sourceField(info, st.X, recv, taint); on && f != "" {
					mark(f)
				}
			}
		case *ast.CallExpr:
			se, ok := ast.Unparen(st.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			callee, ok := info.Uses[se.Sel].(*types.Func)
			if !ok {
				return true
			}
			f, on := sourceField(info, se.X, recv, taint)
			if !on {
				return true
			}
			if f == "" {
				// Method invoked on the bare receiver.
				if sameNamed(callee, named) {
					eff.recvCallees = append(eff.recvCallees, callee)
				}
				return true
			}
			// Method invoked on a value pulled out of a receiver
			// field: a writer mutates state owned by that field.
			if writers[callee] {
				mark(f)
			}
		}
		return true
	})
	return eff
}

// sourceField walks an expression down to its base. It returns the
// receiver field the value derives from and whether the base is the
// receiver (directly or through a tainted local). A bare receiver
// reference returns ("", true).
func sourceField(info *types.Info, e ast.Expr, recv types.Object, taint map[types.Object]string) (string, bool) {
	field := ""
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			obj := info.ObjectOf(x)
			if obj != nil && obj == recv {
				return field, true
			}
			if f, ok := taint[obj]; ok {
				return f, true
			}
			return "", false
		case *ast.SelectorExpr:
			field = x.Sel.Name
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return "", false
		}
	}
}

// sameNamed reports whether fn is a method of named (pointer or value
// receiver).
func sameNamed(fn *types.Func, named *types.Named) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	return ok && n.Obj() == named.Obj()
}

// ---- check 2: goroutine-shared receiver fields ----

type launchInfo struct {
	fields   map[string]bool
	launcher *types.Func
}

// checkGoroutines finds hot-reachable methods that launch goroutines
// mutating receiver fields, then audits the receiver type's lock
// discipline (check 2). Diagnostics are emitted only for declarations
// in pass's package.
func checkGoroutines(pass *lintkit.Pass, mod *lintkit.Module, reach map[*types.Func]*types.Func, writers map[*types.Func]bool) {
	methods := moduleMethods(mod)
	byType := map[*types.Named]*launchInfo{}
	for _, m := range methods {
		if reach[m.fn] == nil || m.recv == nil {
			continue
		}
		ast.Inspect(m.fd.Body, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			fields := goroutineMutations(mod, m, gs, writers)
			if len(fields) > 0 {
				li := byType[m.named]
				if li == nil {
					li = &launchInfo{fields: map[string]bool{}, launcher: m.fn}
					byType[m.named] = li
				}
				for f := range fields {
					li.fields[f] = true
				}
			}
			return true
		})
	}

	audited := map[*types.Named]bool{}
	for _, m := range methods { // methods are in deterministic order; audit each type once
		li := byType[m.named]
		if li == nil || audited[m.named] {
			continue
		}
		audited[m.named] = true
		auditType(pass, mod, m.named, li, methods)
	}
}

// auditType enforces the lock discipline on one goroutine-sharing
// type.
func auditType(pass *lintkit.Pass, mod *lintkit.Module, named *types.Named, li *launchInfo, methods []method) {
	var fields []string
	for f := range li.fields {
		fields = append(fields, f)
	}
	sort.Strings(fields)
	fieldList := strings.Join(fields, ", ")
	launcher := lintkit.FuncDisplayName(li.launcher)

	mu := mutexFieldName(named)
	if mu == "" {
		if named.Obj().Pkg() == pass.Pkg {
			pass.Reportf(named.Obj().Pos(), "goroutines launched in %s write field(s) %s of %s, but the type has no sync.Mutex or sync.RWMutex field to guard them",
				launcher, fieldList, named.Obj().Name())
		}
		return
	}

	for _, m := range methods {
		if m.named.Obj() != named.Obj() || !m.fn.Exported() || m.recv == nil {
			continue
		}
		if m.pkg.Types != pass.Pkg {
			continue
		}
		if !methodTouches(mod, m, li.fields, map[*types.Func]bool{}) {
			continue
		}
		if methodLocks(mod, m, map[*types.Func]bool{}) {
			continue
		}
		pass.Reportf(m.fd.Name.Pos(), "%s touches field(s) %s, written by goroutines launched in %s, without acquiring %s; lock around every access to goroutine-shared fields",
			lintkit.FuncDisplayName(m.fn), fieldList, launcher, mu)
	}
}

// mutexFieldName returns the name of the first sync.Mutex/RWMutex
// field of named's underlying struct, or "".
func mutexFieldName(named *types.Named) string {
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return ""
	}
	for i := 0; i < st.NumFields(); i++ {
		if isSyncLock(st.Field(i).Type()) {
			return st.Field(i).Name()
		}
	}
	return ""
}

// goroutineMutations returns the receiver fields a goroutine launch
// may write: direct writes in the launched closure, plus writes in
// same-type methods the goroutine (transitively) calls on the
// receiver.
func goroutineMutations(mod *lintkit.Module, m method, gs *ast.GoStmt, writers map[*types.Func]bool) map[string]bool {
	fields := map[string]bool{}
	var work []*types.Func
	absorb := func(eff effects) {
		for f := range eff.fields {
			if f == "*" {
				f = "(receiver)"
			}
			fields[f] = true
		}
		work = append(work, eff.recvCallees...)
	}

	if lit, ok := ast.Unparen(gs.Call.Fun).(*ast.FuncLit); ok {
		absorb(bodyEffects(m.pkg.Info, lit.Body, m.recv, m.named, writers))
	} else if se, ok := ast.Unparen(gs.Call.Fun).(*ast.SelectorExpr); ok {
		if callee, ok := m.pkg.Info.Uses[se.Sel].(*types.Func); ok && sameNamed(callee, m.named) {
			if _, on := sourceField(m.pkg.Info, se.X, m.recv, nil); on {
				work = append(work, callee)
			}
		}
	}

	seen := map[*types.Func]bool{}
	for len(work) > 0 {
		fn := work[0]
		work = work[1:]
		if seen[fn] {
			continue
		}
		seen[fn] = true
		fd, pkg := mod.FuncDecl(fn)
		if fd == nil || fd.Body == nil {
			continue
		}
		recv, named := receiverOf(pkg, fd)
		if recv == nil {
			continue
		}
		absorb(bodyEffects(pkg.Info, fd.Body, recv, named, writers))
	}
	return fields
}

// methodTouches reports whether m (or a same-type method it calls on
// its receiver) reads or writes any of the given fields. Accesses
// that appear only inside len()/cap() arguments are exempt: slice
// headers of goroutine-written fields are stable.
func methodTouches(mod *lintkit.Module, m method, fields map[string]bool, visited map[*types.Func]bool) bool {
	if visited[m.fn] || m.recv == nil {
		return false
	}
	visited[m.fn] = true
	touched := false
	ast.Inspect(m.fd.Body, func(n ast.Node) bool {
		if touched {
			return false
		}
		if ce, ok := n.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(ce.Fun).(*ast.Ident); ok {
				if b, ok := m.pkg.Info.ObjectOf(id).(*types.Builtin); ok && (b.Name() == "len" || b.Name() == "cap") {
					return false // don't descend: len/cap touches are exempt
				}
			}
			if se, ok := ast.Unparen(ce.Fun).(*ast.SelectorExpr); ok {
				if callee, ok := m.pkg.Info.Uses[se.Sel].(*types.Func); ok && sameNamed(callee, m.named) {
					if _, on := sourceField(m.pkg.Info, se.X, m.recv, nil); on {
						if cm, ok := lookupMethod(mod, callee); ok && methodTouches(mod, cm, fields, visited) {
							touched = true
							return false
						}
					}
				}
			}
		}
		if se, ok := n.(*ast.SelectorExpr); ok && fields[se.Sel.Name] {
			if id, ok := baseIdent(se.X); ok && m.pkg.Info.ObjectOf(id) == m.recv {
				touched = true
				return false
			}
		}
		return true
	})
	return touched
}

// methodLocks reports whether m (or a same-type method it calls on its
// receiver) acquires a sync.Mutex/RWMutex held in a receiver field —
// a call to Lock or RLock on a receiver-derived sync value.
func methodLocks(mod *lintkit.Module, m method, visited map[*types.Func]bool) bool {
	if visited[m.fn] || m.recv == nil {
		return false
	}
	visited[m.fn] = true
	locks := false
	ast.Inspect(m.fd.Body, func(n ast.Node) bool {
		if locks {
			return false
		}
		ce, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		se, ok := ast.Unparen(ce.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		callee, ok := m.pkg.Info.Uses[se.Sel].(*types.Func)
		if !ok {
			return true
		}
		if callee.Pkg() != nil && callee.Pkg().Path() == "sync" && (callee.Name() == "Lock" || callee.Name() == "RLock") {
			if _, on := sourceField(m.pkg.Info, se.X, m.recv, nil); on {
				locks = true
				return false
			}
		}
		if sameNamed(callee, m.named) {
			if _, on := sourceField(m.pkg.Info, se.X, m.recv, nil); on {
				if cm, ok := lookupMethod(mod, callee); ok && methodLocks(mod, cm, visited) {
					locks = true
					return false
				}
			}
		}
		return true
	})
	return locks
}

// lookupMethod rebuilds the method context for fn.
func lookupMethod(mod *lintkit.Module, fn *types.Func) (method, bool) {
	fd, pkg := mod.FuncDecl(fn)
	if fd == nil || fd.Body == nil || fd.Recv == nil {
		return method{}, false
	}
	recv, named := receiverOf(pkg, fd)
	if named == nil {
		return method{}, false
	}
	return method{fn: fn, fd: fd, pkg: pkg, recv: recv, named: named}, true
}

// baseIdent unwraps parens, indexes, slices, and derefs down to a base
// identifier.
func baseIdent(e ast.Expr) (*ast.Ident, bool) {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return x, true
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil, false
		}
	}
}
