// Package mem provides the shared vocabulary of the memory-system
// simulator: line sizes, access kinds, traffic patterns, byte-size
// helpers and address regions.
//
// Every other package in the simulator speaks in these terms. Addresses
// are plain uint64 byte addresses; all device traffic happens in units
// of Line (64 B), matching the CPU cache-line size and the access
// granularity of the Cascade Lake 2LM DRAM cache.
package mem

import "fmt"

// Line is the cache-line size in bytes. It is both the CPU line size and
// the access granularity of the 2LM DRAM cache.
const Line = 64

// LineShift is log2(Line), for cheap address-to-line conversion.
const LineShift = 6

// Byte-size multipliers.
const (
	KiB uint64 = 1 << 10
	MiB uint64 = 1 << 20
	GiB uint64 = 1 << 30
	TiB uint64 = 1 << 40
)

// GB is a decimal gigabyte. Bandwidths throughout the simulator are
// expressed in bytes/second and reported in GB/s (decimal), matching the
// units used in the paper's figures.
const GB = 1e9

// AccessKind classifies a CPU-visible memory operation.
type AccessKind uint8

const (
	// Read is a demand load (or the read half of a read-modify-write).
	Read AccessKind = iota
	// Write is a standard store: it implies a Read-For-Ownership at the
	// LLC followed by an eventual dirty writeback.
	Write
	// WriteNT is a nontemporal (streaming) store: it bypasses the
	// on-chip cache and arrives at the memory controller as an LLC
	// write with no preceding RFO.
	WriteNT
)

// String implements fmt.Stringer.
func (k AccessKind) String() string {
	switch k {
	case Read:
		return "read"
	case Write:
		return "write"
	case WriteNT:
		return "write-nt"
	default:
		return fmt.Sprintf("AccessKind(%d)", uint8(k))
	}
}

// Pattern describes the spatial shape of a traffic stream. The bandwidth
// model uses it to pick merge/prefetch efficiencies.
type Pattern uint8

const (
	// Sequential is an ascending unit-stride stream.
	Sequential Pattern = iota
	// Random is a pseudo-random stream touching each address once
	// (the paper's LFSR iteration).
	Random
	// InterleavedSeq is the stream the NVRAM sees behind the 2LM miss
	// handler: several sequential per-thread streams interleaved into
	// 64 B line requests at the IMC. It merges worse than a pure
	// sequential stream but better than random.
	InterleavedSeq
)

// String implements fmt.Stringer.
func (p Pattern) String() string {
	switch p {
	case Sequential:
		return "sequential"
	case Random:
		return "random"
	case InterleavedSeq:
		return "interleaved-seq"
	default:
		return fmt.Sprintf("Pattern(%d)", uint8(p))
	}
}

// Region is a contiguous range of the simulated physical address space.
type Region struct {
	Base uint64
	Size uint64
}

// End returns the first address past the region.
func (r Region) End() uint64 { return r.Base + r.Size }

// Lines returns the number of cache lines the region spans, assuming the
// base is line aligned.
func (r Region) Lines() uint64 { return (r.Size + Line - 1) / Line }

// Contains reports whether addr falls inside the region.
func (r Region) Contains(addr uint64) bool {
	return addr >= r.Base && addr < r.Base+r.Size
}

// String implements fmt.Stringer.
func (r Region) String() string {
	return fmt.Sprintf("[%#x, %#x)", r.Base, r.Base+r.Size)
}

// AlignUp rounds n up to the next multiple of align (a power of two).
func AlignUp(n, align uint64) uint64 {
	return (n + align - 1) &^ (align - 1)
}

// FormatBytes renders a byte count with a binary-unit suffix, e.g.
// "192.0 MiB". It is used by the reporting tools.
func FormatBytes(n uint64) string {
	switch {
	case n >= TiB:
		return fmt.Sprintf("%.1f TiB", float64(n)/float64(TiB))
	case n >= GiB:
		return fmt.Sprintf("%.1f GiB", float64(n)/float64(GiB))
	case n >= MiB:
		return fmt.Sprintf("%.1f MiB", float64(n)/float64(MiB))
	case n >= KiB:
		return fmt.Sprintf("%.1f KiB", float64(n)/float64(KiB))
	default:
		return fmt.Sprintf("%d B", n)
	}
}

// FormatGB renders a byte count in decimal gigabytes, the unit the
// paper's tables use.
func FormatGB(n uint64) string {
	return fmt.Sprintf("%.1f GB", float64(n)/GB)
}
