package mem

import (
	"testing"
	"testing/quick"
)

func TestRegionEnd(t *testing.T) {
	r := Region{Base: 128, Size: 256}
	if got := r.End(); got != 384 {
		t.Errorf("End() = %d, want 384", got)
	}
}

func TestRegionLines(t *testing.T) {
	cases := []struct {
		size uint64
		want uint64
	}{
		{0, 0},
		{1, 1},
		{63, 1},
		{64, 1},
		{65, 2},
		{128, 2},
		{1024, 16},
	}
	for _, c := range cases {
		r := Region{Base: 0, Size: c.size}
		if got := r.Lines(); got != c.want {
			t.Errorf("Region{Size: %d}.Lines() = %d, want %d", c.size, got, c.want)
		}
	}
}

func TestRegionContains(t *testing.T) {
	r := Region{Base: 100, Size: 50}
	for _, tc := range []struct {
		addr uint64
		want bool
	}{
		{99, false}, {100, true}, {149, true}, {150, false}, {0, false},
	} {
		if got := r.Contains(tc.addr); got != tc.want {
			t.Errorf("Contains(%d) = %v, want %v", tc.addr, got, tc.want)
		}
	}
}

func TestAlignUp(t *testing.T) {
	cases := []struct {
		n, align, want uint64
	}{
		{0, 64, 0},
		{1, 64, 64},
		{63, 64, 64},
		{64, 64, 64},
		{65, 64, 128},
		{100, 8, 104},
	}
	for _, c := range cases {
		if got := AlignUp(c.n, c.align); got != c.want {
			t.Errorf("AlignUp(%d, %d) = %d, want %d", c.n, c.align, got, c.want)
		}
	}
}

func TestAlignUpProperties(t *testing.T) {
	f := func(n uint32) bool {
		got := AlignUp(uint64(n), Line)
		return got >= uint64(n) && got%Line == 0 && got-uint64(n) < Line
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAccessKindString(t *testing.T) {
	if Read.String() != "read" || Write.String() != "write" || WriteNT.String() != "write-nt" {
		t.Errorf("unexpected AccessKind strings: %v %v %v", Read, Write, WriteNT)
	}
	if AccessKind(99).String() == "" {
		t.Error("unknown AccessKind should still render")
	}
}

func TestPatternString(t *testing.T) {
	if Sequential.String() != "sequential" || Random.String() != "random" || InterleavedSeq.String() != "interleaved-seq" {
		t.Errorf("unexpected Pattern strings")
	}
}

func TestFormatBytes(t *testing.T) {
	cases := []struct {
		n    uint64
		want string
	}{
		{0, "0 B"},
		{512, "512 B"},
		{KiB, "1.0 KiB"},
		{MiB + MiB/2, "1.5 MiB"},
		{GiB, "1.0 GiB"},
		{3 * TiB, "3.0 TiB"},
	}
	for _, c := range cases {
		if got := FormatBytes(c.n); got != c.want {
			t.Errorf("FormatBytes(%d) = %q, want %q", c.n, got, c.want)
		}
	}
}

func TestFormatGB(t *testing.T) {
	if got := FormatGB(1500000000); got != "1.5 GB" {
		t.Errorf("FormatGB = %q, want 1.5 GB", got)
	}
}

func TestLineShiftConsistent(t *testing.T) {
	if 1<<LineShift != Line {
		t.Fatalf("LineShift %d inconsistent with Line %d", LineShift, Line)
	}
}
