// Package embed models the other workload class the paper's
// introduction motivates for NVRAM capacity: recommendation engines
// ("recommendation engines (such as ... DLRM) can have over 100
// billion parameters requiring hundreds of gigabytes to terabytes of
// memory"), whose memory behavior is dominated by sparse lookups into
// enormous embedding tables — the use case of Eisenman et al.'s
// Bandana, which the paper cites.
//
// The workload: per step, a batch of Zipf-distributed row lookups
// across a set of embedding tables (inference), optionally followed by
// sparse gradient updates to the same rows (training). Two placements
// mirror the paper's hardware-vs-software theme:
//
//   - Flat2LM: tables live in memory mode; the hardware DRAM cache
//     decides what stays in DRAM. Cold lookups pay the 3x clean-miss
//     amplification and training updates leave dirty lines whose
//     eviction costs NVRAM write bandwidth.
//   - SoftwareManaged: app-direct mode with a Bandana-style split —
//     the hottest rows are pinned in DRAM, cold rows are read straight
//     from NVRAM with no amplification, and cold-row updates go to
//     NVRAM with nontemporal stores.
package embed

import (
	"fmt"
	"math/rand"
	"sort"

	"twolm/internal/core"
	"twolm/internal/imc"
	"twolm/internal/mem"
)

// Placement selects the management strategy.
type Placement uint8

const (
	// Flat2LM places tables in memory mode behind the hardware cache.
	Flat2LM Placement = iota
	// SoftwareManaged pins hot rows in DRAM and serves cold rows from
	// NVRAM directly (app-direct mode).
	SoftwareManaged
)

// String implements fmt.Stringer.
func (p Placement) String() string {
	if p == SoftwareManaged {
		return "software"
	}
	return "2LM"
}

// Config describes the model and workload.
type Config struct {
	// Tables is the number of embedding tables (DLRM: one per sparse
	// feature).
	Tables int
	// RowsPerTable is the row count of each table.
	RowsPerTable int
	// Dim is the embedding dimensionality (f32 elements per row).
	Dim int
	// Batch is the lookups per table per step.
	Batch int
	// ZipfS is the skew of the row popularity distribution (>1).
	ZipfS float64
	// Train adds a sparse gradient update of every row touched.
	Train bool
	// HotFraction is the fraction of rows the software placement pins
	// in DRAM (by popularity rank).
	HotFraction float64
	// FlushEvery is how many steps the software placement buffers
	// cold-row gradients in DRAM before flushing them to NVRAM (one
	// combined write per dirty row — Bandana-style update batching).
	// 0 selects 4.
	FlushEvery int
	// Seed drives the lookup stream.
	Seed int64
}

// DefaultConfig returns a model whose tables dwarf the scaled DRAM.
func DefaultConfig() Config {
	return Config{
		Tables:       8,
		RowsPerTable: 1 << 17,
		Dim:          64,
		Batch:        2048,
		ZipfS:        1.2,
		HotFraction:  0.10,
		FlushEvery:   4,
		Seed:         1,
	}
}

// RowBytes returns the byte size of one embedding row.
func (c Config) RowBytes() uint64 { return uint64(c.Dim) * 4 }

// TableBytes returns the byte size of one table.
func (c Config) TableBytes() uint64 { return uint64(c.RowsPerTable) * c.RowBytes() }

// TotalBytes returns the full model size.
func (c Config) TotalBytes() uint64 { return uint64(c.Tables) * c.TableBytes() }

// Model is a placed embedding model over a simulated system.
type Model struct {
	cfg       Config
	sys       *core.System
	placement Placement
	// hot[t] and cold[t] are the per-table regions; in 2LM cold covers
	// the whole table and hot is unused.
	hot     []mem.Region
	cold    []mem.Region
	hotRows int
	rng     *rand.Rand
	zipf    *rand.Zipf

	// Software-placement update buffering: cold-row gradients land in
	// a DRAM staging pool and flush to NVRAM in batches.
	staging    mem.Region
	dirtyCold  map[int]bool // table*RowsPerTable + row
	flushEvery int
}

// New places the model on sys. Flat2LM requires a memory-mode system;
// SoftwareManaged an app-direct one.
func New(sys *core.System, cfg Config, placement Placement) (*Model, error) {
	if cfg.Tables < 1 || cfg.RowsPerTable < 1 || cfg.Dim < 1 || cfg.Batch < 1 {
		return nil, fmt.Errorf("embed: non-positive dimensions: %+v", cfg)
	}
	if cfg.ZipfS <= 1 {
		return nil, fmt.Errorf("embed: zipf skew %f must exceed 1", cfg.ZipfS)
	}
	switch placement {
	case Flat2LM:
		if sys.Mode() != core.Mode2LM {
			return nil, fmt.Errorf("embed: Flat2LM needs a 2LM system, got %v", sys.Mode())
		}
	case SoftwareManaged:
		if sys.Mode() != core.Mode1LM {
			return nil, fmt.Errorf("embed: SoftwareManaged needs a 1LM system, got %v", sys.Mode())
		}
	default:
		return nil, fmt.Errorf("embed: unknown placement %d", placement)
	}

	m := &Model{cfg: cfg, sys: sys, placement: placement}
	m.rng = rand.New(rand.NewSource(cfg.Seed))
	m.zipf = rand.NewZipf(m.rng, cfg.ZipfS, 1, uint64(cfg.RowsPerTable-1))

	space := sys.AddressSpace()
	for t := 0; t < cfg.Tables; t++ {
		switch placement {
		case Flat2LM:
			r, err := space.Alloc(cfg.TableBytes())
			if err != nil {
				return nil, fmt.Errorf("embed: table %d: %w", t, err)
			}
			m.cold = append(m.cold, r)
		case SoftwareManaged:
			m.hotRows = int(cfg.HotFraction * float64(cfg.RowsPerTable))
			hot, err := space.AllocDRAM(uint64(m.hotRows) * cfg.RowBytes())
			if err != nil {
				return nil, fmt.Errorf("embed: hot rows of table %d: %w", t, err)
			}
			coldRows := cfg.RowsPerTable - m.hotRows
			cold, err := space.AllocNVRAM(uint64(coldRows) * cfg.RowBytes())
			if err != nil {
				return nil, fmt.Errorf("embed: cold rows of table %d: %w", t, err)
			}
			m.hot = append(m.hot, hot)
			m.cold = append(m.cold, cold)
		}
	}
	if placement == SoftwareManaged && cfg.Train {
		// Staging pool: one batch worth of gradient rows, recycled.
		staging, err := space.AllocDRAM(uint64(cfg.Batch) * cfg.RowBytes())
		if err != nil {
			return nil, fmt.Errorf("embed: staging pool: %w", err)
		}
		m.staging = staging
		m.dirtyCold = make(map[int]bool)
		m.flushEvery = cfg.FlushEvery
		if m.flushEvery <= 0 {
			m.flushEvery = 4
		}
	}
	return m, nil
}

// rowRegion returns the region holding a row's data. The Zipf sampler
// emits small values most often, so row index order IS popularity
// rank — the software placement's profile is exact, the way Bandana's
// offline profiling approximates it.
func (m *Model) rowRegion(table, row int) mem.Region {
	rb := m.cfg.RowBytes()
	if m.placement == SoftwareManaged {
		if row < m.hotRows {
			return mem.Region{Base: m.hot[table].Base + uint64(row)*rb, Size: rb}
		}
		return mem.Region{Base: m.cold[table].Base + uint64(row-m.hotRows)*rb, Size: rb}
	}
	return mem.Region{Base: m.cold[table].Base + uint64(row)*rb, Size: rb}
}

// flushCold writes every buffered cold-row gradient to its NVRAM home
// with nontemporal stores, in ascending row order for merge-friendly
// traffic, then clears the buffer.
func (m *Model) flushCold() {
	if len(m.dirtyCold) == 0 {
		return
	}
	keys := make([]int, 0, len(m.dirtyCold))
	for k := range m.dirtyCold {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	// The flush is its own interval: a single ascending nontemporal
	// stream, the bandwidth-optimal NVRAM write pattern of Section III.
	m.sys.Sync("embed:pre-flush", 0)
	m.sys.SetTraffic(mem.Sequential, int(m.cfg.RowBytes()))
	for _, k := range keys {
		table, row := k/m.cfg.RowsPerTable, k%m.cfg.RowsPerTable
		m.sys.StoreNTRange(m.rowRegion(table, row))
	}
	m.sys.Sync("embed:flush", 0)
	m.sys.SetTraffic(mem.Random, int(m.cfg.RowBytes()))
	clear(m.dirtyCold)
}

// Result reports a workload run.
type Result struct {
	Placement Placement
	Steps     int
	Lookups   uint64
	Updates   uint64
	Elapsed   float64
	Counters  imc.Counters
}

// LookupsPerSecond returns the model-time lookup throughput.
func (r Result) LookupsPerSecond() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Lookups) / r.Elapsed
}

// Run executes steps of the workload and returns aggregate results.
func (m *Model) Run(steps int) (Result, error) {
	if steps < 1 {
		return Result{}, fmt.Errorf("embed: steps %d must be positive", steps)
	}
	sys := m.sys
	sys.SetTraffic(mem.Random, int(m.cfg.RowBytes()))
	sys.SetStreams(2)
	// Lookup streams are independent (no pointer chasing): near the
	// hardware MLP.
	sys.SetMLP(8)

	start := sys.Clock()
	ctr0 := sys.Counters()
	var lookups, updates uint64

	rows := make([]int, m.cfg.Batch)
	for step := 0; step < steps; step++ {
		for t := 0; t < m.cfg.Tables; t++ {
			for i := range rows {
				rows[i] = int(m.zipf.Uint64())
			}
			for _, row := range rows {
				m.sys.LoadRange(m.rowRegion(t, row))
				lookups++
			}
			if m.cfg.Train {
				for i, row := range rows {
					if m.placement == SoftwareManaged && row >= m.hotRows {
						// Cold-row gradient: accumulate in the DRAM
						// staging pool; the row flushes to NVRAM in a
						// batch, once, no matter how often it was hit.
						slot := mem.Region{
							Base: m.staging.Base + uint64(i)*m.cfg.RowBytes(),
							Size: m.cfg.RowBytes(),
						}
						m.sys.StoreRange(slot)
						m.dirtyCold[t*m.cfg.RowsPerTable+row] = true
					} else {
						m.sys.StoreRange(m.rowRegion(t, row))
					}
					updates++
				}
			}
		}
		if m.dirtyCold != nil && (step+1)%m.flushEvery == 0 {
			m.flushCold()
		}
		sys.DrainLLC()
		sys.Sync(fmt.Sprintf("embed:%s:step%d", m.placement, step), 0)
	}
	if m.dirtyCold != nil {
		m.flushCold()
		sys.DrainLLC()
		sys.Sync("embed:final-drain", 0)
	}

	if err := sys.ValidateCounters(); err != nil {
		return Result{}, fmt.Errorf("embed: %w", err)
	}
	return Result{
		Placement: m.placement,
		Steps:     steps,
		Lookups:   lookups,
		Updates:   updates,
		Elapsed:   sys.Clock() - start,
		Counters:  sys.Counters().Sub(ctr0),
	}, nil
}
