package embed

import (
	"testing"

	"twolm/internal/core"
	"twolm/internal/mem"
	"twolm/internal/platform"
)

// testConfig builds tables several times larger than the test DRAM.
func testConfig(train bool) Config {
	cfg := DefaultConfig()
	cfg.Tables = 4
	cfg.RowsPerTable = 1 << 14
	cfg.Dim = 32
	cfg.Batch = 512
	cfg.Train = train
	return cfg
}

func newSystem(t *testing.T, mode core.Mode) *core.System {
	t.Helper()
	sys, err := core.New(core.Config{
		Platform: platform.Config{
			Sockets: 1, ChannelsPerSocket: 6,
			DRAMPerChannel:  256 * mem.KiB, // 1.5 MiB DRAM vs 8 MiB model
			NVRAMPerChannel: 64 * mem.MiB,
			Scale:           1, Threads: 24,
		},
		Mode:     mode,
		LLCBytes: 32 * mem.KiB,
	})
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestConfigSizes(t *testing.T) {
	cfg := testConfig(false)
	if cfg.RowBytes() != 128 {
		t.Errorf("RowBytes = %d", cfg.RowBytes())
	}
	if cfg.TotalBytes() != uint64(cfg.Tables)*cfg.TableBytes() {
		t.Error("TotalBytes inconsistent")
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(newSystem(t, core.Mode2LM), Config{ZipfS: 1.2}, Flat2LM); err == nil {
		t.Error("zero dimensions accepted")
	}
	bad := testConfig(false)
	bad.ZipfS = 0.5
	if _, err := New(newSystem(t, core.Mode2LM), bad, Flat2LM); err == nil {
		t.Error("invalid skew accepted")
	}
	if _, err := New(newSystem(t, core.Mode1LM), testConfig(false), Flat2LM); err == nil {
		t.Error("Flat2LM on a 1LM system accepted")
	}
	if _, err := New(newSystem(t, core.Mode2LM), testConfig(false), SoftwareManaged); err == nil {
		t.Error("SoftwareManaged on a 2LM system accepted")
	}
}

func TestRunCountsLookups(t *testing.T) {
	cfg := testConfig(false)
	m, err := New(newSystem(t, core.Mode2LM), cfg, Flat2LM)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run(3)
	if err != nil {
		t.Fatal(err)
	}
	want := uint64(3 * cfg.Tables * cfg.Batch)
	if res.Lookups != want {
		t.Errorf("lookups = %d, want %d", res.Lookups, want)
	}
	if res.Updates != 0 {
		t.Errorf("inference performed %d updates", res.Updates)
	}
	if res.LookupsPerSecond() <= 0 {
		t.Error("no throughput")
	}
}

// TestSoftwarePlacementSplitsTraffic: hot lookups hit DRAM, cold ones
// NVRAM, with zero tag machinery.
func TestSoftwarePlacementSplitsTraffic(t *testing.T) {
	cfg := testConfig(false)
	m, err := New(newSystem(t, core.Mode1LM), cfg, SoftwareManaged)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run(3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Counters.DRAMRead == 0 || res.Counters.NVRAMRead == 0 {
		t.Errorf("expected both pools to serve lookups: %v", res.Counters)
	}
	// The Zipf skew concentrates lookups on the pinned hot rows.
	if res.Counters.DRAMRead < res.Counters.NVRAMRead {
		t.Errorf("hot-row DRAM reads (%d) should dominate cold NVRAM reads (%d)",
			res.Counters.DRAMRead, res.Counters.NVRAMRead)
	}
	if res.Counters.TagAccesses() != 0 {
		t.Error("software placement has no tag events")
	}
}

// TestTrainingDirtiesThe2LMCache: sparse updates under 2LM produce
// dirty misses and NVRAM write-backs; the software placement's
// NVRAM writes are exactly its cold-row updates.
func TestTrainingDirtiesThe2LMCache(t *testing.T) {
	hw, err := New(newSystem(t, core.Mode2LM), testConfig(true), Flat2LM)
	if err != nil {
		t.Fatal(err)
	}
	hwRes, err := hw.Run(12)
	if err != nil {
		t.Fatal(err)
	}
	if hwRes.Counters.TagMissDirty == 0 {
		t.Error("2LM training produced no dirty misses")
	}
	if hwRes.Counters.NVRAMWrite == 0 {
		t.Error("2LM training produced no NVRAM write-backs")
	}

	sw, err := New(newSystem(t, core.Mode1LM), testConfig(true), SoftwareManaged)
	if err != nil {
		t.Fatal(err)
	}
	swRes, err := sw.Run(12)
	if err != nil {
		t.Fatal(err)
	}
	if swRes.Counters.NVRAMWrite == 0 {
		t.Error("software training wrote no cold rows")
	}
	// Fewer NVRAM writes than 2LM: hot-row updates stay in DRAM
	// forever instead of aging out of the hardware cache.
	if swRes.Counters.NVRAMWrite >= hwRes.Counters.NVRAMWrite {
		t.Errorf("software NVRAM writes (%d) not below 2LM (%d)",
			swRes.Counters.NVRAMWrite, hwRes.Counters.NVRAMWrite)
	}
}

// TestSoftwareBeats2LMOnTraining: the Bandana-style placement wins
// end to end.
func TestSoftwareBeats2LMOnTraining(t *testing.T) {
	hw, err := New(newSystem(t, core.Mode2LM), testConfig(true), Flat2LM)
	if err != nil {
		t.Fatal(err)
	}
	hwRes, err := hw.Run(12)
	if err != nil {
		t.Fatal(err)
	}
	sw, err := New(newSystem(t, core.Mode1LM), testConfig(true), SoftwareManaged)
	if err != nil {
		t.Fatal(err)
	}
	swRes, err := sw.Run(12)
	if err != nil {
		t.Fatal(err)
	}
	if swRes.Elapsed >= hwRes.Elapsed {
		t.Errorf("software placement (%.5fs) not faster than 2LM (%.5fs)",
			swRes.Elapsed, hwRes.Elapsed)
	}
	// Same work either way.
	if swRes.Lookups != hwRes.Lookups || swRes.Updates != hwRes.Updates {
		t.Error("placements performed different work")
	}
}

// TestDeterminism: same seed, same stream.
func TestDeterminism(t *testing.T) {
	run := func() Result {
		m, err := New(newSystem(t, core.Mode2LM), testConfig(true), Flat2LM)
		if err != nil {
			t.Fatal(err)
		}
		res, err := m.Run(2)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Counters != b.Counters || a.Elapsed != b.Elapsed {
		t.Error("identical configurations produced different results")
	}
}

func TestRunRejectsBadSteps(t *testing.T) {
	m, err := New(newSystem(t, core.Mode2LM), testConfig(false), Flat2LM)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(0); err == nil {
		t.Error("zero steps accepted")
	}
}

func TestPlacementString(t *testing.T) {
	if Flat2LM.String() != "2LM" || SoftwareManaged.String() != "software" {
		t.Error("unexpected Placement strings")
	}
}
