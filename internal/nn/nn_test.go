package nn

import (
	"strings"
	"testing"

	"twolm/internal/tensor"
)

// tinyNet builds a small conv net training program for fast tests.
func tinyNet(t *testing.T, batch int) *Program {
	t.Helper()
	b := NewBuilder("tiny", batch)
	x := b.Input(8, 8, 3)
	x = b.Conv(x, 3, 1, 1, 4)
	x = b.BatchNorm(x)
	x = b.ReLU(x)
	x = b.MaxPool(x, 2, 2, 0)
	x = b.GlobalAvgPool(x)
	logits := b.FC(x, 10)
	p, err := b.Train(logits)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestTinyNetValidates(t *testing.T) {
	p := tinyNet(t, 2)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.ForwardKernels == 0 || p.ForwardKernels >= len(p.Kernels) {
		t.Errorf("forward kernels = %d of %d", p.ForwardKernels, len(p.Kernels))
	}
}

func TestShapesPropagate(t *testing.T) {
	b := NewBuilder("shapes", 4)
	x := b.Input(32, 32, 3)
	if got := b.shape(x); got.Elems() != 4*32*32*3 {
		t.Fatalf("input shape %v", got)
	}
	c := b.Conv(x, 3, 2, 1, 16)
	if got := b.shape(c); got[1] != 16 || got[2] != 16 || got[3] != 16 {
		t.Errorf("stride-2 conv shape %v, want [4x16x16x16]", got)
	}
	p := b.MaxPool(c, 2, 2, 0)
	if got := b.shape(p); got[1] != 8 || got[3] != 16 {
		t.Errorf("pool shape %v", got)
	}
}

func TestConcatShapes(t *testing.T) {
	b := NewBuilder("concat", 2)
	x := b.Input(8, 8, 4)
	y := b.Conv(x, 3, 1, 1, 6)
	z := b.Concat(x, y)
	if got := b.shape(z); got[3] != 10 {
		t.Errorf("concat channels = %d, want 10", got[3])
	}
}

func TestConcatMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("mismatched Concat did not panic")
		}
	}()
	b := NewBuilder("bad", 2)
	x := b.Input(8, 8, 4)
	y := b.Conv(x, 3, 2, 1, 4) // different spatial size
	b.Concat(x, y)
}

// TestBackwardKeepsActivationsLive: forward activations must be read
// by backward kernels (the liveness the paper's Figure 5d shows).
func TestBackwardKeepsActivationsLive(t *testing.T) {
	p := tinyNet(t, 2)
	// Find the conv input activation and check a backward kernel reads
	// it (ConvBpropFilter needs the saved input).
	convIdx := -1
	for ki, k := range p.Kernels {
		if strings.HasPrefix(k.Name, "Conv3x3") && ki < p.ForwardKernels {
			convIdx = ki
			break
		}
	}
	if convIdx < 0 {
		t.Fatal("no forward conv kernel found")
	}
	input := p.Kernels[convIdx].Reads[0]
	readInBackward := false
	for ki := p.ForwardKernels; ki < len(p.Kernels); ki++ {
		for _, r := range p.Kernels[ki].Reads {
			if r == input {
				readInBackward = true
			}
		}
	}
	if !readInBackward {
		t.Error("conv input activation is not re-read in the backward pass")
	}
}

// TestGradientAccumulation: a tensor consumed by two ops must receive
// an accumulation kernel.
func TestGradientAccumulation(t *testing.T) {
	b := NewBuilder("fanout", 2)
	x := b.Input(8, 8, 4)
	y1 := b.Conv(x, 3, 1, 1, 4)
	y2 := b.Conv(x, 3, 1, 1, 4)
	s := b.Add(y1, y2)
	s = b.GlobalAvgPool(s)
	logits := b.FC(s, 10)
	p, err := b.Train(logits)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, k := range p.Kernels {
		if k.Name == "GradAccum" {
			found = true
		}
	}
	if !found {
		t.Error("fan-out input did not produce a GradAccum kernel")
	}
}

func TestValidateCatchesReadBeforeWrite(t *testing.T) {
	p := &Program{
		Tensors: []TensorDef{
			{ID: 0, Name: "a", Kind: Activation, Shape: tensor.Shape{1}},
			{ID: 1, Name: "b", Kind: Activation, Shape: tensor.Shape{1}},
		},
		Kernels: []Kernel{{Name: "k", Reads: []int{0}, Writes: []int{1}}},
	}
	if err := p.Validate(); err == nil {
		t.Error("read-before-write accepted")
	}
}

func TestValidateCatchesEmptyWrites(t *testing.T) {
	p := &Program{
		Tensors: []TensorDef{{ID: 0, Name: "a", Kind: Weight, Shape: tensor.Shape{1}}},
		Kernels: []Kernel{{Name: "k", Reads: []int{0}}},
	}
	if err := p.Validate(); err == nil {
		t.Error("kernel with no writes accepted")
	}
}

func TestTensorKindString(t *testing.T) {
	if Activation.String() != "activation" || Weight.String() != "weight" || Gradient.String() != "gradient" {
		t.Error("unexpected TensorKind strings")
	}
}

// TestFootprintScalesWithBatch: activations scale linearly, weights
// don't.
func TestFootprintScalesWithBatch(t *testing.T) {
	p1 := tinyNet(t, 2)
	p2 := tinyNet(t, 4)
	// Weight gradients don't scale with batch, so the ratio is just
	// under 2.
	ratio := float64(p2.ActivationBytes()) / float64(p1.ActivationBytes())
	if ratio < 1.85 || ratio > 2.0 {
		t.Errorf("activation bytes ratio = %.3f, want ~2 (batch doubled)", ratio)
	}
	if p1.WeightBytes() != p2.WeightBytes() {
		t.Error("weight bytes changed with batch")
	}
}

// --- the three study networks ------------------------------------------

func TestDenseNet264Structure(t *testing.T) {
	p, err := DenseNet264(8)
	if err != nil {
		t.Fatal(err)
	}
	// ~33M parameters (the published DenseNet-264 size), within 15%.
	params := p.WeightBytes() / 4
	if params < 28e6 || params > 40e6 {
		t.Errorf("DenseNet-264 parameters = %dM, want ~33M", params/1e6)
	}
	if p.Name != "densenet-264" {
		t.Errorf("name = %q", p.Name)
	}
	// The dense-block kernel chain must include Concat.
	concats := 0
	for _, k := range p.Kernels[:p.ForwardKernels] {
		if k.Name == "Concat" {
			concats++
		}
	}
	if concats != 6+12+64+48+1 { // one per dense layer (+1 none: stem has no concat)
		// 130 dense layers => 130 concats.
		if concats != 130 {
			t.Errorf("forward Concat kernels = %d, want 130", concats)
		}
	}
}

func TestResNet200Structure(t *testing.T) {
	p, err := ResNet200(8)
	if err != nil {
		t.Fatal(err)
	}
	// ~64M parameters.
	params := p.WeightBytes() / 4
	if params < 55e6 || params > 75e6 {
		t.Errorf("ResNet-200 parameters = %dM, want ~64M", params/1e6)
	}
	adds := 0
	for _, k := range p.Kernels[:p.ForwardKernels] {
		if k.Name == "Add" {
			adds++
		}
	}
	if adds != 3+24+36+3 {
		t.Errorf("residual adds = %d, want 66", adds)
	}
}

func TestInceptionV4Structure(t *testing.T) {
	p, err := InceptionV4(8)
	if err != nil {
		t.Fatal(err)
	}
	params := p.WeightBytes() / 4
	// Inception-v4 is ~43M; our 3x3-equivalent factorization lands in
	// the same range.
	if params < 30e6 || params > 80e6 {
		t.Errorf("Inception-v4 parameters = %dM, want ~43M", params/1e6)
	}
}

func TestVGG16Structure(t *testing.T) {
	p, err := VGG16(8)
	if err != nil {
		t.Fatal(err)
	}
	// VGG-16 is famously parameter-heavy: ~138M.
	params := p.WeightBytes() / 4
	if params < 120e6 || params > 150e6 {
		t.Errorf("VGG-16 parameters = %dM, want ~138M", params/1e6)
	}
	convs := 0
	for _, k := range p.Kernels[:p.ForwardKernels] {
		if strings.HasPrefix(k.Name, "Conv3x3") {
			convs++
		}
	}
	if convs != 13 {
		t.Errorf("3x3 convolutions = %d, want 13", convs)
	}
}

// TestNetworksBatchFLOPs: training FLOPs per image should be ~3x the
// published forward FLOPs (~6 GF DenseNet-264, ~15 GF ResNet-200).
func TestNetworksBatchFLOPs(t *testing.T) {
	p, err := DenseNet264(64)
	if err != nil {
		t.Fatal(err)
	}
	perImage := float64(p.TotalFLOPs()) / 64 / 1e9
	if perImage < 20 || perImage > 60 {
		t.Errorf("DenseNet-264 training GFLOPs/image = %.1f, want ~36", perImage)
	}
}
