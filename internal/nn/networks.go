// Network builders for the three CNNs the paper trains (Section V):
// DenseNet 264, ResNet 200 and Inception v4. Structures follow the
// original papers closely enough to reproduce the memory phenomena the
// study depends on: DenseNet's concat-heavy dense blocks, ResNet's
// bottleneck residuals, and Inception's multi-branch modules.

package nn

import "fmt"

// DenseNet264 builds a training program for DenseNet-264 (growth rate
// 32, block configuration 6/12/64/48, bottleneck layers) at the given
// batch size over 224x224x3 inputs. The paper trains it at batch 3072
// for a ~688 GB footprint.
func DenseNet264(batch int) (*Program, error) {
	return DenseNet(batch, 32, []int{6, 12, 64, 48})
}

// DenseNet builds a DenseNet variant with the given growth rate and
// per-block layer counts.
func DenseNet(batch, growth int, blocks []int) (*Program, error) {
	b := NewBuilder(fmt.Sprintf("densenet-%d", denseNetDepth(blocks)), batch)
	x := b.Input(224, 224, 3)
	x = b.Conv(x, 7, 2, 3, 2*growth)
	x = b.BatchNorm(x)
	x = b.ReLU(x)
	x = b.MaxPool(x, 3, 2, 1)

	channels := 2 * growth
	for bi, layers := range blocks {
		// Dense block: each layer is Concat -> BN -> ReLU -> Conv1x1
		// -> BN -> ReLU -> Conv3x3, with its output concatenated onto
		// the running feature map (the paper's Figure 6 kernel chain).
		for l := 0; l < layers; l++ {
			y := b.BatchNorm(x)
			y = b.ReLU(y)
			y = b.Conv(y, 1, 1, 0, 4*growth) // bottleneck
			y = b.BatchNorm(y)
			y = b.ReLU(y)
			y = b.Conv(y, 3, 1, 1, growth)
			x = b.Concat(x, y)
			channels += growth
		}
		// Transition layer (except after the last block): BN, 1x1 conv
		// halving channels, 2x2 average pool.
		if bi != len(blocks)-1 {
			x = b.BatchNorm(x)
			x = b.ReLU(x)
			channels /= 2
			x = b.Conv(x, 1, 1, 0, channels)
			x = b.AvgPool(x, 2, 2, 0)
		}
	}
	x = b.BatchNorm(x)
	x = b.ReLU(x)
	x = b.GlobalAvgPool(x)
	logits := b.FC(x, 1000)
	return b.Train(logits)
}

func denseNetDepth(blocks []int) int {
	d := 4 // stem conv + transition convs + classifier, conventionally
	for _, l := range blocks {
		d += 2 * l
	}
	if d == 244 {
		return 264 // block config 6/12/64/48 is named DenseNet-264
	}
	return d
}

// ResNet200 builds a training program for ResNet-200 (bottleneck
// blocks, configuration 3/24/36/3) at the given batch size.
func ResNet200(batch int) (*Program, error) {
	return ResNet(batch, []int{3, 24, 36, 3})
}

// ResNet builds a bottleneck ResNet with the given stage depths.
func ResNet(batch int, stages []int) (*Program, error) {
	depth := 2
	for _, s := range stages {
		depth += 3 * s
	}
	b := NewBuilder(fmt.Sprintf("resnet-%d", depth), batch)
	x := b.Input(224, 224, 3)
	x = b.Conv(x, 7, 2, 3, 64)
	x = b.BatchNorm(x)
	x = b.ReLU(x)
	x = b.MaxPool(x, 3, 2, 1)

	width := 64
	for si, blocks := range stages {
		for l := 0; l < blocks; l++ {
			stride := 1
			if si > 0 && l == 0 {
				stride = 2
			}
			// Bottleneck: 1x1 reduce, 3x3, 1x1 expand (4x), residual.
			shortcut := x
			y := b.Conv(x, 1, stride, 0, width)
			y = b.BatchNorm(y)
			y = b.ReLU(y)
			y = b.Conv(y, 3, 1, 1, width)
			y = b.BatchNorm(y)
			y = b.ReLU(y)
			y = b.Conv(y, 1, 1, 0, 4*width)
			y = b.BatchNorm(y)
			if l == 0 {
				// Projection shortcut on the first block of each stage.
				shortcut = b.Conv(x, 1, stride, 0, 4*width)
				shortcut = b.BatchNorm(shortcut)
			}
			x = b.Add(y, shortcut)
			x = b.ReLU(x)
		}
		width *= 2
	}
	x = b.GlobalAvgPool(x)
	logits := b.FC(x, 1000)
	return b.Train(logits)
}

// VGG16 builds a training program for VGG-16 (Simonyan & Zisserman,
// cited alongside the paper's three main networks as a representative
// large CNN). Its nearly-flat activation profile makes it a useful
// contrast to DenseNet's concat-driven footprint growth.
func VGG16(batch int) (*Program, error) {
	b := NewBuilder("vgg-16", batch)
	x := b.Input(224, 224, 3)
	block := func(x, convs, channels int) int {
		for i := 0; i < convs; i++ {
			x = b.Conv(x, 3, 1, 1, channels)
			x = b.ReLU(x)
		}
		return b.MaxPool(x, 2, 2, 0)
	}
	x = block(x, 2, 64)
	x = block(x, 2, 128)
	x = block(x, 3, 256)
	x = block(x, 3, 512)
	x = block(x, 3, 512)
	x = b.FC(x, 4096)
	x = b.ReLU(x)
	x = b.FC(x, 4096)
	x = b.ReLU(x)
	logits := b.FC(x, 1000)
	return b.Train(logits)
}

// InceptionV4 builds a training program for Inception-v4 (stem, 4x
// Inception-A, Reduction-A, 7x Inception-B, Reduction-B, 3x
// Inception-C) at the given batch size over 299x299x3 inputs.
func InceptionV4(batch int) (*Program, error) {
	b := NewBuilder("inception-v4", batch)
	x := b.Input(299, 299, 3)

	// Stem (simplified to the dominant path: the mixed stem branches
	// are folded into equivalent-width convolutions).
	x = b.Conv(x, 3, 2, 0, 32)
	x = b.BatchNorm(x)
	x = b.ReLU(x)
	x = b.Conv(x, 3, 1, 0, 32)
	x = b.BatchNorm(x)
	x = b.ReLU(x)
	x = b.Conv(x, 3, 1, 1, 64)
	x = b.BatchNorm(x)
	x = b.ReLU(x)
	pa := b.MaxPool(x, 3, 2, 0)
	pb := b.Conv(x, 3, 2, 0, 96)
	pb = b.BatchNorm(pb)
	pb = b.ReLU(pb)
	x = b.Concat(pa, pb)
	x = b.Conv(x, 3, 1, 0, 192)
	x = b.BatchNorm(x)
	x = b.ReLU(x)
	x = b.Conv(x, 3, 2, 0, 192)
	x = b.BatchNorm(x)
	x = b.ReLU(x)

	branchConvBN := func(x, k, stride, pad, outC int) int {
		y := b.Conv(x, k, stride, pad, outC)
		y = b.BatchNorm(y)
		return b.ReLU(y)
	}

	// 4x Inception-A.
	for i := 0; i < 4; i++ {
		b1 := branchConvBN(x, 1, 1, 0, 96)
		b2 := branchConvBN(x, 1, 1, 0, 64)
		b2 = branchConvBN(b2, 3, 1, 1, 96)
		b3 := branchConvBN(x, 1, 1, 0, 64)
		b3 = branchConvBN(b3, 3, 1, 1, 96)
		b3 = branchConvBN(b3, 3, 1, 1, 96)
		b4 := b.AvgPool(x, 3, 1, 1)
		b4 = branchConvBN(b4, 1, 1, 0, 96)
		x = b.Concat(b1, b2, b3, b4)
	}
	// Reduction-A.
	{
		r1 := branchConvBN(x, 3, 2, 0, 384)
		r2 := branchConvBN(x, 1, 1, 0, 192)
		r2 = branchConvBN(r2, 3, 1, 1, 224)
		r2 = branchConvBN(r2, 3, 2, 0, 256)
		r3 := b.MaxPool(x, 3, 2, 0)
		x = b.Concat(r1, r2, r3)
	}
	// 7x Inception-B (the 1x7/7x1 factorized convolutions are modeled
	// as 3x3-equivalent-cost convolutions at matched channel widths).
	for i := 0; i < 7; i++ {
		b1 := branchConvBN(x, 1, 1, 0, 384)
		b2 := branchConvBN(x, 1, 1, 0, 192)
		b2 = branchConvBN(b2, 3, 1, 1, 224)
		b2 = branchConvBN(b2, 3, 1, 1, 256)
		b3 := branchConvBN(x, 1, 1, 0, 192)
		b3 = branchConvBN(b3, 3, 1, 1, 192)
		b3 = branchConvBN(b3, 3, 1, 1, 224)
		b3 = branchConvBN(b3, 3, 1, 1, 224)
		b3 = branchConvBN(b3, 3, 1, 1, 256)
		b4 := b.AvgPool(x, 3, 1, 1)
		b4 = branchConvBN(b4, 1, 1, 0, 128)
		x = b.Concat(b1, b2, b3, b4)
	}
	// Reduction-B.
	{
		r1 := branchConvBN(x, 1, 1, 0, 192)
		r1 = branchConvBN(r1, 3, 2, 0, 192)
		r2 := branchConvBN(x, 1, 1, 0, 256)
		r2 = branchConvBN(r2, 3, 1, 1, 320)
		r2 = branchConvBN(r2, 3, 2, 0, 320)
		r3 := b.MaxPool(x, 3, 2, 0)
		x = b.Concat(r1, r2, r3)
	}
	// 3x Inception-C.
	for i := 0; i < 3; i++ {
		b1 := branchConvBN(x, 1, 1, 0, 256)
		b2 := branchConvBN(x, 1, 1, 0, 384)
		b2a := branchConvBN(b2, 3, 1, 1, 256)
		b2b := branchConvBN(b2, 3, 1, 1, 256)
		b3 := branchConvBN(x, 1, 1, 0, 384)
		b3 = branchConvBN(b3, 3, 1, 1, 512)
		b3a := branchConvBN(b3, 3, 1, 1, 256)
		b3b := branchConvBN(b3, 3, 1, 1, 256)
		b4 := b.AvgPool(x, 3, 1, 1)
		b4 = branchConvBN(b4, 1, 1, 0, 256)
		x = b.Concat(b1, b2a, b2b, b3a, b3b, b4)
	}
	x = b.GlobalAvgPool(x)
	logits := b.FC(x, 1000)
	return b.Train(logits)
}
