// Package nn is the compute-graph substrate for the paper's CNN case
// study: a miniature ngraph. It builds *training programs* — linear
// schedules of forward and backward kernels over tensor descriptors —
// for the three networks the paper evaluates (Inception v4, ResNet 200,
// DenseNet 264).
//
// A Program records, for every kernel, which tensors it reads and
// writes and how many floating-point operations it performs. That is
// exactly the information the memory-system study needs: tensor sizes
// and lifetimes determine DRAM-cache behavior, and FLOPs determine how
// much compute time can hide memory traffic. Values are never
// materialized.
//
// Backward kernels are generated automatically from a forward tape,
// mirroring backpropagation's defining memory property: intermediate
// activations produced in the forward pass are *kept live* until their
// consuming backward kernel runs (the paper's Figure 5d).
package nn

import (
	"fmt"

	"twolm/internal/tensor"
)

// TensorKind classifies a program tensor.
type TensorKind uint8

const (
	// Activation tensors are produced and consumed by kernels; their
	// lifetimes drive the heap behavior the paper studies.
	Activation TensorKind = iota
	// Weight tensors are network parameters: live for the whole
	// program.
	Weight
	// Gradient tensors are backward-pass products.
	Gradient
)

// String implements fmt.Stringer.
func (k TensorKind) String() string {
	switch k {
	case Weight:
		return "weight"
	case Gradient:
		return "gradient"
	default:
		return "activation"
	}
}

// TensorDef describes one program tensor.
type TensorDef struct {
	ID    int
	Name  string
	Kind  TensorKind
	Shape tensor.Shape
	DType tensor.DType
}

// Bytes returns the tensor size in bytes.
func (t TensorDef) Bytes() uint64 { return t.Shape.Bytes(t.DType) }

// Kernel is one schedulable compute step.
type Kernel struct {
	Name   string
	Reads  []int // tensor IDs read
	Writes []int // tensor IDs written
	FLOPs  uint64
}

// Program is a linear training schedule.
type Program struct {
	Name    string
	Tensors []TensorDef
	Kernels []Kernel
	// ForwardKernels is the number of leading kernels belonging to the
	// forward pass (the rest are backward), used for phase-labeled
	// reporting like the paper's Figure 5d annotations.
	ForwardKernels int
}

// Tensor returns the definition of tensor id.
func (p *Program) Tensor(id int) TensorDef { return p.Tensors[id] }

// TotalFLOPs sums kernel FLOPs.
func (p *Program) TotalFLOPs() uint64 {
	var n uint64
	for i := range p.Kernels {
		n += p.Kernels[i].FLOPs
	}
	return n
}

// WeightBytes sums parameter tensor sizes.
func (p *Program) WeightBytes() uint64 {
	var n uint64
	for i := range p.Tensors {
		if p.Tensors[i].Kind == Weight {
			n += p.Tensors[i].Bytes()
		}
	}
	return n
}

// ActivationBytes sums non-weight tensor sizes (the upper bound on
// dynamic heap demand before lifetime reuse).
func (p *Program) ActivationBytes() uint64 {
	var n uint64
	for i := range p.Tensors {
		if p.Tensors[i].Kind != Weight {
			n += p.Tensors[i].Bytes()
		}
	}
	return n
}

// Validate checks referential integrity: kernels only touch defined
// tensors, each tensor is written before it is read, and every kernel
// writes something.
func (p *Program) Validate() error {
	written := make([]bool, len(p.Tensors))
	for i := range p.Tensors {
		if p.Tensors[i].ID != i {
			return fmt.Errorf("nn: tensor %d has ID %d", i, p.Tensors[i].ID)
		}
		if p.Tensors[i].Kind == Weight {
			written[i] = true // parameters are initialized before the run
		}
	}
	for ki, k := range p.Kernels {
		if len(k.Writes) == 0 {
			return fmt.Errorf("nn: kernel %d (%s) writes nothing", ki, k.Name)
		}
		for _, id := range k.Reads {
			if id < 0 || id >= len(p.Tensors) {
				return fmt.Errorf("nn: kernel %d (%s) reads undefined tensor %d", ki, k.Name, id)
			}
			if !written[id] {
				return fmt.Errorf("nn: kernel %d (%s) reads tensor %d (%s) before any write",
					ki, k.Name, id, p.Tensors[id].Name)
			}
		}
		for _, id := range k.Writes {
			if id < 0 || id >= len(p.Tensors) {
				return fmt.Errorf("nn: kernel %d (%s) writes undefined tensor %d", ki, k.Name, id)
			}
			written[id] = true
		}
	}
	return nil
}

// opKind tags tape entries for backward generation.
type opKind uint8

const (
	opInput opKind = iota
	opConv
	opBatchNorm
	opReLU
	opMaxPool
	opAvgPool
	opGlobalPool
	opConcat
	opAdd
	opFC
)

// tapeEntry records what backward generation needs about one forward op.
type tapeEntry struct {
	kind    opKind
	inputs  []int // activation inputs
	output  int
	weight  int // weight tensor, or -1
	flops   uint64
	kernel  int // window size for pools
	stride  int
	padding int
}

// Builder constructs a Program: forward ops first, then Train appends
// the backward pass.
type Builder struct {
	prog  *Program
	tape  []tapeEntry
	batch int
	dtype tensor.DType
}

// NewBuilder starts a program with the given name and batch size.
func NewBuilder(name string, batch int) *Builder {
	return &Builder{
		prog:  &Program{Name: name},
		batch: batch,
		dtype: tensor.F32,
	}
}

// Batch returns the builder's batch size.
func (b *Builder) Batch() int { return b.batch }

// newTensor registers a tensor and returns its ID.
func (b *Builder) newTensor(name string, kind TensorKind, shape tensor.Shape) int {
	id := len(b.prog.Tensors)
	b.prog.Tensors = append(b.prog.Tensors, TensorDef{
		ID: id, Name: name, Kind: kind, Shape: shape, DType: b.dtype,
	})
	return id
}

// emit appends a kernel.
func (b *Builder) emit(name string, reads, writes []int, flops uint64) {
	b.prog.Kernels = append(b.prog.Kernels, Kernel{Name: name, Reads: reads, Writes: writes, FLOPs: flops})
}

// shape returns the shape of tensor id.
func (b *Builder) shape(id int) tensor.Shape { return b.prog.Tensors[id].Shape }

// Input declares the network input (written by a data-load kernel so
// that it has a defined producer).
func (b *Builder) Input(h, w, c int) int {
	id := b.newTensor("input", Activation, tensor.NHWC(b.batch, h, w, c))
	b.emit("LoadBatch", nil, []int{id}, 0)
	b.tape = append(b.tape, tapeEntry{kind: opInput, output: id, weight: -1})
	return id
}

// Conv appends a 2D convolution with the given kernel size, stride,
// symmetric padding and output channels.
func (b *Builder) Conv(x, kh, stride, pad, outC int) int {
	in := b.shape(x)
	n, h, w, c := in[0], in[1], in[2], in[3]
	oh := tensor.Conv2DOut(h, kh, stride, pad)
	ow := tensor.Conv2DOut(w, kh, stride, pad)
	wid := b.newTensor(fmt.Sprintf("w_conv%dx%d_%d", kh, kh, outC), Weight, tensor.Shape{kh, kh, c, outC})
	out := b.newTensor(fmt.Sprintf("conv%dx%d", kh, kh), Activation, tensor.NHWC(n, oh, ow, outC))
	flops := 2 * uint64(n) * uint64(oh) * uint64(ow) * uint64(outC) * uint64(c) * uint64(kh) * uint64(kh)
	b.emit(fmt.Sprintf("Conv%dx%d/%d", kh, kh, stride), []int{x, wid}, []int{out}, flops)
	b.tape = append(b.tape, tapeEntry{kind: opConv, inputs: []int{x}, output: out, weight: wid, flops: flops, kernel: kh, stride: stride, padding: pad})
	return out
}

// BatchNorm appends a batch normalization (training flavor: computes
// batch statistics — bandwidth bound, as the paper stresses).
func (b *Builder) BatchNorm(x int) int {
	out := b.newTensor("bn", Activation, b.shape(x))
	flops := 10 * b.shape(x).Elems()
	b.emit("BatchNorm", []int{x}, []int{out}, flops)
	b.tape = append(b.tape, tapeEntry{kind: opBatchNorm, inputs: []int{x}, output: out, weight: -1, flops: flops})
	return out
}

// ReLU appends a rectifier.
func (b *Builder) ReLU(x int) int {
	out := b.newTensor("relu", Activation, b.shape(x))
	flops := b.shape(x).Elems()
	b.emit("ReLU", []int{x}, []int{out}, flops)
	b.tape = append(b.tape, tapeEntry{kind: opReLU, inputs: []int{x}, output: out, weight: -1, flops: flops})
	return out
}

// MaxPool appends a max pooling layer.
func (b *Builder) MaxPool(x, k, stride, pad int) int {
	return b.pool(x, k, stride, pad, true)
}

// AvgPool appends an average pooling layer.
func (b *Builder) AvgPool(x, k, stride, pad int) int {
	return b.pool(x, k, stride, pad, false)
}

func (b *Builder) pool(x, k, stride, pad int, isMax bool) int {
	in := b.shape(x)
	n, h, w, c := in[0], in[1], in[2], in[3]
	oh := tensor.Conv2DOut(h, k, stride, pad)
	ow := tensor.Conv2DOut(w, k, stride, pad)
	name, kind := "AvgPool", opAvgPool
	if isMax {
		name, kind = "MaxPool", opMaxPool
	}
	out := b.newTensor(name, Activation, tensor.NHWC(n, oh, ow, c))
	flops := uint64(n) * uint64(oh) * uint64(ow) * uint64(c) * uint64(k) * uint64(k)
	b.emit(fmt.Sprintf("%s%dx%d/%d", name, k, k, stride), []int{x}, []int{out}, flops)
	b.tape = append(b.tape, tapeEntry{kind: kind, inputs: []int{x}, output: out, weight: -1, flops: flops, kernel: k, stride: stride, padding: pad})
	return out
}

// GlobalAvgPool reduces the spatial dimensions to 1x1.
func (b *Builder) GlobalAvgPool(x int) int {
	in := b.shape(x)
	out := b.newTensor("gap", Activation, tensor.NHWC(in[0], 1, 1, in[3]))
	flops := in.Elems()
	b.emit("GlobalAvgPool", []int{x}, []int{out}, flops)
	b.tape = append(b.tape, tapeEntry{kind: opGlobalPool, inputs: []int{x}, output: out, weight: -1, flops: flops})
	return out
}

// Concat appends a channel concatenation — the memory-bound kernel the
// paper singles out in DenseNet's dense blocks (Figure 6).
func (b *Builder) Concat(xs ...int) int {
	if len(xs) == 0 {
		panic("nn: Concat of nothing")
	}
	first := b.shape(xs[0])
	n, h, w := first[0], first[1], first[2]
	totalC := 0
	for _, x := range xs {
		s := b.shape(x)
		if s[0] != n || s[1] != h || s[2] != w {
			panic(fmt.Sprintf("nn: Concat shape mismatch: %v vs %v", first, s))
		}
		totalC += s[3]
	}
	out := b.newTensor("concat", Activation, tensor.NHWC(n, h, w, totalC))
	// Pure data movement: negligible FLOPs, heavy bandwidth.
	b.emit("Concat", append([]int(nil), xs...), []int{out}, 0)
	b.tape = append(b.tape, tapeEntry{kind: opConcat, inputs: append([]int(nil), xs...), output: out, weight: -1})
	return out
}

// Add appends an elementwise residual addition.
func (b *Builder) Add(x, y int) int {
	out := b.newTensor("add", Activation, b.shape(x))
	flops := b.shape(x).Elems()
	b.emit("Add", []int{x, y}, []int{out}, flops)
	b.tape = append(b.tape, tapeEntry{kind: opAdd, inputs: []int{x, y}, output: out, weight: -1, flops: flops})
	return out
}

// FC appends a fully connected layer over the flattened input.
func (b *Builder) FC(x, outFeatures int) int {
	in := b.shape(x)
	inFeatures := int(in.Elems()) / in[0]
	wid := b.newTensor(fmt.Sprintf("w_fc_%d", outFeatures), Weight, tensor.Shape{inFeatures, outFeatures})
	out := b.newTensor("fc", Activation, tensor.Shape{in[0], outFeatures})
	flops := 2 * uint64(in[0]) * uint64(inFeatures) * uint64(outFeatures)
	b.emit("FC", []int{x, wid}, []int{out}, flops)
	b.tape = append(b.tape, tapeEntry{kind: opFC, inputs: []int{x}, output: out, weight: wid, flops: flops})
	return out
}

// Train appends the backward pass for a scalar loss over logits and
// returns the finished program. Backward kernels re-read the saved
// forward activations, which is what keeps them live across the pass.
func (b *Builder) Train(logits int) (*Program, error) {
	b.prog.ForwardKernels = len(b.prog.Kernels)
	gradOf := make(map[int]int)

	// Loss gradient seeds the backward pass.
	gLogits := b.newTensor("g_logits", Gradient, b.shape(logits))
	b.emit("SoftmaxLossBprop", []int{logits}, []int{gLogits}, 4*b.shape(logits).Elems())
	gradOf[logits] = gLogits

	addGrad := func(act, g int) {
		if prev, ok := gradOf[act]; ok {
			sum := b.newTensor("g_accum", Gradient, b.shape(act))
			b.emit("GradAccum", []int{prev, g}, []int{sum}, b.shape(act).Elems())
			gradOf[act] = sum
			return
		}
		gradOf[act] = g
	}
	newGrad := func(of int) int {
		return b.newTensor("g_"+b.prog.Tensors[of].Name, Gradient, b.shape(of))
	}

	for i := len(b.tape) - 1; i >= 0; i-- {
		e := b.tape[i]
		gy, ok := gradOf[e.output]
		if !ok {
			// Dead branch (possible only for the network input).
			continue
		}
		switch e.kind {
		case opInput:
			// No gradient flows past the input data.
		case opConv:
			x := e.inputs[0]
			gx := newGrad(x)
			b.emit("ConvBpropData", []int{gy, e.weight}, []int{gx}, e.flops)
			addGrad(x, gx)
			gw := b.newTensor("g_"+b.prog.Tensors[e.weight].Name, Gradient, b.shape(e.weight))
			b.emit("ConvBpropFilter", []int{gy, x}, []int{gw}, e.flops)
		case opBatchNorm:
			x := e.inputs[0]
			gx := newGrad(x)
			b.emit("BatchNormBprop", []int{gy, x}, []int{gx}, 2*e.flops)
			addGrad(x, gx)
		case opReLU:
			x := e.inputs[0]
			gx := newGrad(x)
			b.emit("ReLUBprop", []int{gy, x}, []int{gx}, e.flops)
			addGrad(x, gx)
		case opMaxPool:
			x := e.inputs[0]
			gx := newGrad(x)
			b.emit("MaxPoolBprop", []int{gy, x}, []int{gx}, e.flops)
			addGrad(x, gx)
		case opAvgPool, opGlobalPool:
			x := e.inputs[0]
			gx := newGrad(x)
			name := "AvgPoolBprop"
			if e.kind == opGlobalPool {
				name = "GlobalAvgPoolBprop"
			}
			b.emit(name, []int{gy}, []int{gx}, e.flops)
			addGrad(x, gx)
		case opConcat:
			// One slice kernel per input: reads the shared gy, writes
			// the per-input gradient.
			for _, x := range e.inputs {
				gx := newGrad(x)
				b.emit("ConcatSliceBprop", []int{gy}, []int{gx}, 0)
				addGrad(x, gx)
			}
		case opAdd:
			// The gradient passes through to both addends.
			for _, x := range e.inputs {
				addGrad(x, gy)
			}
		case opFC:
			x := e.inputs[0]
			gx := newGrad(x)
			b.emit("FCBpropData", []int{gy, e.weight}, []int{gx}, e.flops)
			addGrad(x, gx)
			gw := b.newTensor("g_"+b.prog.Tensors[e.weight].Name, Gradient, b.shape(e.weight))
			b.emit("FCBpropFilter", []int{gy, x}, []int{gw}, e.flops)
		}
	}

	if err := b.prog.Validate(); err != nil {
		return nil, err
	}
	return b.prog, nil
}
