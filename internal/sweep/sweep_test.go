package sweep

import (
	"bytes"
	"sync/atomic"
	"testing"

	"twolm/internal/engine"
	"twolm/internal/telemetry"
)

// testSpec is a small grid covering every pattern, all four policy
// ablations and both associativities — the acceptance matrix at sweep
// granularity.
func testSpec() Spec {
	return Spec{
		Name:     "test",
		CacheKiB: []uint64{64, 128},
		Ways:     []int{1, 4},
		Policies: []string{PolicyHardware, PolicyNoWriteAllocate, PolicyNoReadAllocate, PolicyDDOOff},
		Ratios:   []uint64{2},
		Patterns: []string{PatternSequential, PatternRandom, PatternWrite},
		Seeds:    []uint32{0x2B1A, 0xBEEF},
		Passes:   1,
	}
}

// TestExpandOrderAndDefaults: expansion is the documented cross
// product — slowest axis first, indexes dense from zero — and
// seed-independent patterns expand once regardless of the seed axis.
func TestExpandOrderAndDefaults(t *testing.T) {
	points, err := Expand(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	// 2 sizes x 2 ways x 4 policies x 1 ch x 1 dimm x 1 ratio =
	// 16 classes; sequential + write expand once, random twice (two
	// seeds) = 4 points per class.
	if len(points) != 64 {
		t.Fatalf("expanded %d points, want 64", len(points))
	}
	for i, p := range points {
		if p.Index != i {
			t.Fatalf("point %d has Index %d", i, p.Index)
		}
		if p.Pattern != PatternRandom && p.Seed != 0x2B1A {
			t.Errorf("point %d: %s pattern varied by seed %#x", i, p.Pattern, p.Seed)
		}
	}
	// First class: both random seeds present, in axis order.
	if points[0].Pattern != PatternSequential || points[1].Pattern != PatternRandom ||
		points[2].Pattern != PatternRandom || points[3].Pattern != PatternWrite {
		t.Errorf("pattern axis order violated: %s %s %s %s",
			points[0].Pattern, points[1].Pattern, points[2].Pattern, points[3].Pattern)
	}
	if points[1].Seed != 0x2B1A || points[2].Seed != 0xBEEF {
		t.Errorf("seed axis order violated: %#x %#x", points[1].Seed, points[2].Seed)
	}
}

// TestExpandSharesGeometry: points of one geometry class share the
// same canonical *Geometry — the read-only precomputation the arena
// keys controller reuse on — and distinct classes get distinct keys.
func TestExpandSharesGeometry(t *testing.T) {
	points, err := Expand(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	keys := map[*Geometry]uint64{}
	for _, p := range points {
		keys[p.Geom] = p.Geom.Key()
	}
	if len(keys) != 16 {
		t.Fatalf("%d canonical geometries, want 16", len(keys))
	}
	seen := map[uint64]bool{}
	for _, k := range keys {
		if seen[k] {
			t.Fatalf("geometry hash collision on %#x across the test grid", k)
		}
		seen[k] = true
	}
	if points[0].Geom != points[3].Geom {
		t.Error("points of one class do not share a canonical Geometry")
	}
}

// TestExpandRejectsBadAxes pins the validation errors.
func TestExpandRejectsBadAxes(t *testing.T) {
	cases := map[string]Spec{
		"no cache axis":   {},
		"unknown policy":  {CacheKiB: []uint64{64}, Policies: []string{"write-around"}},
		"unknown pattern": {CacheKiB: []uint64{64}, Patterns: []string{"zipf"}},
		"unaligned ways":  {CacheKiB: []uint64{1}, Ways: []int{3}},
		"zero ratio":      {CacheKiB: []uint64{64}, Ratios: []uint64{0}},
		"zero channels":   {CacheKiB: []uint64{64}, Channels: []int{0}},
		"zero dimms":      {CacheKiB: []uint64{64}, DIMMs: []int{0}},
	}
	for name, spec := range cases {
		if _, err := Expand(spec); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// runTables executes the spec at the given worker count and returns
// the merged CSV and JSON bytes.
func runTables(t *testing.T, spec Spec, workers int, fresh bool) (csv, js []byte) {
	t.Helper()
	r, err := New(spec)
	if err != nil {
		t.Fatal(err)
	}
	r.Fresh = fresh
	rows, err := r.Run(workers, nil)
	if err != nil {
		t.Fatal(err)
	}
	var cb, jb bytes.Buffer
	if err := WriteCSV(&cb, rows); err != nil {
		t.Fatal(err)
	}
	if err := WriteJSON(&jb, rows); err != nil {
		t.Fatal(err)
	}
	return cb.Bytes(), jb.Bytes()
}

// TestMergedTablesDeterministicAcrossWorkers is the sweep-level
// determinism property test: the same spec at -parallel 1, 2 and 8
// yields byte-identical merged CSV and JSON tables. Completion order
// differs wildly across worker counts; the merge key (point index)
// must erase it.
func TestMergedTablesDeterministicAcrossWorkers(t *testing.T) {
	spec := testSpec()
	csv1, js1 := runTables(t, spec, 1, false)
	for _, workers := range []int{2, 8} {
		csvN, jsN := runTables(t, spec, workers, false)
		if !bytes.Equal(csv1, csvN) {
			t.Errorf("CSV table differs between 1 and %d workers", workers)
		}
		if !bytes.Equal(js1, jsN) {
			t.Errorf("JSON table differs between 1 and %d workers", workers)
		}
	}
}

// TestPooledMatchesFresh is the sweep-level recycled-controller
// differential: the pooled runner (controllers recycled through
// imc.Controller.Reset across jobs of a class) produces tables
// byte-identical to the naive fresh-controller-per-job baseline, over
// all four policy ablations x Ways 1,4 x every pattern.
func TestPooledMatchesFresh(t *testing.T) {
	spec := testSpec()
	pooledCSV, pooledJS := runTables(t, spec, 4, false)
	freshCSV, freshJS := runTables(t, spec, 4, true)
	if !bytes.Equal(pooledCSV, freshCSV) {
		t.Error("pooled and fresh-per-job CSV tables differ")
	}
	if !bytes.Equal(pooledJS, freshJS) {
		t.Error("pooled and fresh-per-job JSON tables differ")
	}
}

// TestRunReusesStateDeterministically: repeated Run calls on one
// Runner (the benchmark loop's shape, with a fully warmed arena)
// reproduce the first call's table exactly.
func TestRunReusesStateDeterministically(t *testing.T) {
	r, err := New(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	var first bytes.Buffer
	rows, err := r.Run(4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteCSV(&first, rows); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		rows, err := r.Run(4, nil)
		if err != nil {
			t.Fatal(err)
		}
		var again bytes.Buffer
		if err := WriteCSV(&again, rows); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(first.Bytes(), again.Bytes()) {
			t.Fatalf("run %d diverged from the first run", i+2)
		}
	}
}

// TestSteadyStateZeroAllocsPerJob pins the perf contract: once the
// arena holds a rig for a point's class, executing the point
// allocates nothing — the result row is written in place into
// preallocated storage.
func TestSteadyStateZeroAllocsPerJob(t *testing.T) {
	r, err := New(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	// Warm the arena serially so every class has a pooled rig.
	if _, err := r.Run(1, nil); err != nil {
		t.Fatal(err)
	}
	for _, i := range []int{0, 1, 3, len(r.points) - 1} {
		p, row := &r.points[i], &r.rows[i]
		allocs := testing.AllocsPerRun(10, func() {
			if err := r.executePoint(p, row); err != nil {
				t.Fatal(err)
			}
		})
		if allocs != 0 {
			t.Errorf("point %d (%s): %.1f allocs/job in steady state, want 0", i, p.Pattern, allocs)
		}
	}
}

// TestObserveSeesEveryJob: the observe callback fires once per point
// (the Prometheus progress-gauge contract).
func TestObserveSeesEveryJob(t *testing.T) {
	r, err := New(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	var count atomic.Int64
	_, err = r.Run(4, func(engine.Outcome) { count.Add(1) })
	if err != nil {
		t.Fatal(err)
	}
	if int(count.Load()) != len(r.points) {
		t.Errorf("observe fired %d times, want %d", count.Load(), len(r.points))
	}
}

// TestEmitSamples: one labeled cumulative sample per point, in point
// order, with the row's demand-line clock.
func TestEmitSamples(t *testing.T) {
	r, err := New(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	rows, err := r.Run(2, nil)
	if err != nil {
		t.Fatal(err)
	}
	var rec telemetry.Recorder
	r.EmitSamples(&rec)
	samples := rec.Samples()
	if len(samples) != len(rows) {
		t.Fatalf("%d samples, want %d", len(samples), len(rows))
	}
	for i, s := range samples {
		if s.Demand != rows[i].Lines {
			t.Errorf("sample %d demand %d, want %d", i, s.Demand, rows[i].Lines)
		}
		if s.Label == "" {
			t.Errorf("sample %d has no point label", i)
		}
		if s.MediaWrites != rows[i].MediaWrites {
			t.Errorf("sample %d media writes %d, want %d", i, s.MediaWrites, rows[i].MediaWrites)
		}
	}
}
