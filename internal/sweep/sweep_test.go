package sweep

import (
	"bytes"
	"context"
	"errors"
	"sync/atomic"
	"testing"

	"twolm/internal/engine"
	"twolm/internal/jobspec"
	"twolm/internal/telemetry"
)

// testSpec is a small grid covering every pattern, all four policy
// ablations and both associativities — the acceptance matrix at sweep
// granularity.
func testSpec() Spec {
	return Spec{
		Name: "test",
		Axes: jobspec.Axes{
			CacheKiB: []uint64{64, 128},
			Ways:     []int{1, 4},
			Policies: []string{PolicyHardware, PolicyNoWriteAllocate, PolicyNoReadAllocate, PolicyDDOOff},
			Ratios:   []uint64{2},
			Patterns: []string{PatternSequential, PatternRandom, PatternWrite},
			Seeds:    []uint32{0x2B1A, 0xBEEF},
			Passes:   1,
		},
	}
}

// TestExpandOrderAndDefaults: expansion is the documented cross
// product — slowest axis first, indexes dense from zero — and
// seed-independent patterns expand once regardless of the seed axis.
func TestExpandOrderAndDefaults(t *testing.T) {
	points, err := Expand(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	// 2 sizes x 2 ways x 4 policies x 1 ch x 1 dimm x 1 ratio =
	// 16 classes; sequential + write expand once, random twice (two
	// seeds) = 4 points per class.
	if len(points) != 64 {
		t.Fatalf("expanded %d points, want 64", len(points))
	}
	for i, p := range points {
		if p.Index != i {
			t.Fatalf("point %d has Index %d", i, p.Index)
		}
		if p.Pattern != PatternRandom && p.Seed != 0x2B1A {
			t.Errorf("point %d: %s pattern varied by seed %#x", i, p.Pattern, p.Seed)
		}
	}
	// First class: both random seeds present, in axis order.
	if points[0].Pattern != PatternSequential || points[1].Pattern != PatternRandom ||
		points[2].Pattern != PatternRandom || points[3].Pattern != PatternWrite {
		t.Errorf("pattern axis order violated: %s %s %s %s",
			points[0].Pattern, points[1].Pattern, points[2].Pattern, points[3].Pattern)
	}
	if points[1].Seed != 0x2B1A || points[2].Seed != 0xBEEF {
		t.Errorf("seed axis order violated: %#x %#x", points[1].Seed, points[2].Seed)
	}
}

// TestExpandSharesGeometry: points of one geometry class share the
// same canonical *Geometry — the read-only precomputation the arena
// keys controller reuse on — and distinct classes get distinct keys.
func TestExpandSharesGeometry(t *testing.T) {
	points, err := Expand(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	keys := map[*Geometry]uint64{}
	for _, p := range points {
		keys[p.Geom] = p.Geom.Key()
	}
	if len(keys) != 16 {
		t.Fatalf("%d canonical geometries, want 16", len(keys))
	}
	seen := map[uint64]bool{}
	for _, k := range keys {
		if seen[k] {
			t.Fatalf("geometry hash collision on %#x across the test grid", k)
		}
		seen[k] = true
	}
	if points[0].Geom != points[3].Geom {
		t.Error("points of one class do not share a canonical Geometry")
	}
}

// TestExpandRejectsBadAxes pins the validation errors.
func TestExpandRejectsBadAxes(t *testing.T) {
	ax := func(a jobspec.Axes) Spec { return Spec{Axes: a} }
	cases := map[string]Spec{
		"no cache axis":   {},
		"unknown policy":  ax(jobspec.Axes{CacheKiB: []uint64{64}, Policies: []string{"write-around"}}),
		"unknown pattern": ax(jobspec.Axes{CacheKiB: []uint64{64}, Patterns: []string{"zipf"}}),
		"unaligned ways":  ax(jobspec.Axes{CacheKiB: []uint64{1}, Ways: []int{3}}),
		"zero ratio":      ax(jobspec.Axes{CacheKiB: []uint64{64}, Ratios: []uint64{0}}),
		"zero channels":   ax(jobspec.Axes{CacheKiB: []uint64{64}, Channels: []int{0}}),
		"zero dimms":      ax(jobspec.Axes{CacheKiB: []uint64{64}, DIMMs: []int{0}}),
	}
	for name, spec := range cases {
		if _, err := Expand(spec); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// runTables executes the spec at the given worker count and returns
// the merged CSV and JSON bytes.
func runTables(t *testing.T, spec Spec, workers int, fresh bool) (csv, js []byte) {
	t.Helper()
	r, err := New(spec)
	if err != nil {
		t.Fatal(err)
	}
	r.Fresh = fresh
	rows, err := r.Run(context.Background(), workers, nil)
	if err != nil {
		t.Fatal(err)
	}
	var cb, jb bytes.Buffer
	if err := WriteCSV(&cb, rows); err != nil {
		t.Fatal(err)
	}
	if err := WriteJSON(&jb, rows); err != nil {
		t.Fatal(err)
	}
	return cb.Bytes(), jb.Bytes()
}

// TestMergedTablesDeterministicAcrossWorkers is the sweep-level
// determinism property test: the same spec at -parallel 1, 2 and 8
// yields byte-identical merged CSV and JSON tables. Completion order
// differs wildly across worker counts; the merge key (point index)
// must erase it.
func TestMergedTablesDeterministicAcrossWorkers(t *testing.T) {
	spec := testSpec()
	csv1, js1 := runTables(t, spec, 1, false)
	for _, workers := range []int{2, 8} {
		csvN, jsN := runTables(t, spec, workers, false)
		if !bytes.Equal(csv1, csvN) {
			t.Errorf("CSV table differs between 1 and %d workers", workers)
		}
		if !bytes.Equal(js1, jsN) {
			t.Errorf("JSON table differs between 1 and %d workers", workers)
		}
	}
}

// TestPooledMatchesFresh is the sweep-level recycled-controller
// differential: the pooled runner (controllers recycled through
// imc.Controller.Reset across jobs of a class) produces tables
// byte-identical to the naive fresh-controller-per-job baseline, over
// all four policy ablations x Ways 1,4 x every pattern.
func TestPooledMatchesFresh(t *testing.T) {
	spec := testSpec()
	pooledCSV, pooledJS := runTables(t, spec, 4, false)
	freshCSV, freshJS := runTables(t, spec, 4, true)
	if !bytes.Equal(pooledCSV, freshCSV) {
		t.Error("pooled and fresh-per-job CSV tables differ")
	}
	if !bytes.Equal(pooledJS, freshJS) {
		t.Error("pooled and fresh-per-job JSON tables differ")
	}
}

// TestPooledMatchesFreshAfterCancel extends the recycled-controller
// differential with cancellation: a run cancelled mid-grid returns
// its rigs to the arena through release (i.e. Reset-clean), so a
// subsequent complete run on the SAME runner and arena still matches
// the fresh-per-job baseline byte for byte. A leaked dirty rig would
// show up as a counter difference on the reused class.
func TestPooledMatchesFreshAfterCancel(t *testing.T) {
	spec := testSpec()
	r, err := New(spec)
	if err != nil {
		t.Fatal(err)
	}
	// Cancel partway: run with a context cancelled by the observe
	// callback after a handful of completions, so some points ran to
	// completion, some were cancelled mid-stream, some were skipped.
	ctx, cancel := context.WithCancel(context.Background())
	var seen atomic.Int64
	_, err = r.Run(ctx, 4, func(engine.Outcome) {
		if seen.Add(1) == 5 {
			cancel()
		}
	})
	cancel()
	if err == nil {
		t.Fatal("cancelled run reported no error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled run error = %v, want context.Canceled", err)
	}
	// Now a full run on the same (cancel-polluted, were it buggy)
	// arena must match the naive fresh baseline.
	rows, err := r.Run(context.Background(), 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	var pooled bytes.Buffer
	if err := WriteCSV(&pooled, rows); err != nil {
		t.Fatal(err)
	}
	freshCSV, _ := runTables(t, spec, 4, true)
	if !bytes.Equal(pooled.Bytes(), freshCSV) {
		t.Error("post-cancel pooled table differs from the fresh baseline: a cancelled job leaked rig state")
	}
}

// TestRunJobPointMatchesGrid: the single-point jobspec form and the
// equivalent one-point grid form produce byte-identical artifacts
// through RunJob — the cross-binary reproducibility contract in
// miniature.
func TestRunJobPointMatchesGrid(t *testing.T) {
	point := jobspec.Spec{
		Version:  jobspec.Version,
		Name:     "pt",
		Geometry: &jobspec.Geometry{CacheKiB: 128, Ways: 1, Channels: 2, DIMMs: 1},
		Policy:   jobspec.PolicyHardware,
		Workload: &jobspec.Workload{Pattern: jobspec.PatternRandom, Ratio: 2, Seed: 0xBEEF, Passes: 1},
	}
	grid := jobspec.Spec{
		Version: jobspec.Version,
		Name:    "pt",
		Sweep: &jobspec.Axes{
			CacheKiB: []uint64{128},
			Channels: []int{2},
			Ratios:   []uint64{2},
			Patterns: []string{jobspec.PatternRandom},
			Seeds:    []uint32{0xBEEF},
		},
	}
	a, err := RunJob(context.Background(), point, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunJob(context.Background(), grid, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.CSV, b.CSV) || !bytes.Equal(a.JSON, b.JSON) {
		t.Error("point-form and grid-form artifacts differ for the same job")
	}
	if a.Lines == 0 || a.CSV == nil || a.JSON == nil {
		t.Errorf("missing artifacts: lines=%d csv=%d json=%d bytes", a.Lines, len(a.CSV), len(a.JSON))
	}
}

// TestRunJobSharedArena: two jobs of the same geometry through one
// shared Arena reuse the pooled rig (the fleet-wide reuse the simd
// service depends on) and still produce identical artifacts.
func TestRunJobSharedArena(t *testing.T) {
	job := jobspec.Spec{
		Version:  jobspec.Version,
		Geometry: &jobspec.Geometry{CacheKiB: 64},
		Workload: &jobspec.Workload{Pattern: jobspec.PatternSequential},
	}
	pool := NewArena()
	a, err := RunJob(context.Background(), job, 1, pool)
	if err != nil {
		t.Fatal(err)
	}
	if len(pool.free) != 1 {
		t.Fatalf("arena holds %d classes after first job, want 1", len(pool.free))
	}
	b, err := RunJob(context.Background(), job, 1, pool)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.CSV, b.CSV) {
		t.Error("recycled-rig job artifact differs from first run")
	}
	for _, rigs := range pool.free {
		if len(rigs) != 1 {
			t.Errorf("arena grew to %d rigs for one class: sharing did not recycle", len(rigs))
		}
	}
}

// TestRunJobTrace: a single-point job with telemetry.sample_lines
// yields deterministic trace artifacts alongside the result table.
func TestRunJobTrace(t *testing.T) {
	job := jobspec.Spec{
		Version:   jobspec.Version,
		Geometry:  &jobspec.Geometry{CacheKiB: 64},
		Workload:  &jobspec.Workload{Pattern: jobspec.PatternRandom},
		Telemetry: &jobspec.Telemetry{SampleLines: 512},
	}
	a, err := RunJob(context.Background(), job, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if a.TraceCSV == nil || a.TraceJSON == nil {
		t.Fatalf("traced job missing trace artifacts: csv=%d json=%d bytes", len(a.TraceCSV), len(a.TraceJSON))
	}
	b, err := RunJob(context.Background(), job, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.TraceCSV, b.TraceCSV) {
		t.Error("trace artifact not deterministic across calls")
	}
}

// TestRunReusesStateDeterministically: repeated Run calls on one
// Runner (the benchmark loop's shape, with a fully warmed arena)
// reproduce the first call's table exactly.
func TestRunReusesStateDeterministically(t *testing.T) {
	r, err := New(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	var first bytes.Buffer
	rows, err := r.Run(context.Background(), 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteCSV(&first, rows); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		rows, err := r.Run(context.Background(), 4, nil)
		if err != nil {
			t.Fatal(err)
		}
		var again bytes.Buffer
		if err := WriteCSV(&again, rows); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(first.Bytes(), again.Bytes()) {
			t.Fatalf("run %d diverged from the first run", i+2)
		}
	}
}

// TestSteadyStateZeroAllocsPerJob pins the perf contract: once the
// arena holds a rig for a point's class, executing the point
// allocates nothing — the result row is written in place into
// preallocated storage.
func TestSteadyStateZeroAllocsPerJob(t *testing.T) {
	r, err := New(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	// Warm the arena serially so every class has a pooled rig.
	if _, err := r.Run(context.Background(), 1, nil); err != nil {
		t.Fatal(err)
	}
	for _, i := range []int{0, 1, 3, len(r.points) - 1} {
		p, row := &r.points[i], &r.rows[i]
		allocs := testing.AllocsPerRun(10, func() {
			if err := r.executePoint(context.Background(), p, row); err != nil {
				t.Fatal(err)
			}
		})
		if allocs != 0 {
			t.Errorf("point %d (%s): %.1f allocs/job in steady state, want 0", i, p.Pattern, allocs)
		}
	}
}

// TestObserveSeesEveryJob: the observe callback fires once per point
// (the Prometheus progress-gauge contract).
func TestObserveSeesEveryJob(t *testing.T) {
	r, err := New(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	var count atomic.Int64
	_, err = r.Run(context.Background(), 4, func(engine.Outcome) { count.Add(1) })
	if err != nil {
		t.Fatal(err)
	}
	if int(count.Load()) != len(r.points) {
		t.Errorf("observe fired %d times, want %d", count.Load(), len(r.points))
	}
}

// TestEmitSamples: one labeled cumulative sample per point, in point
// order, with the row's demand-line clock.
func TestEmitSamples(t *testing.T) {
	r, err := New(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	rows, err := r.Run(context.Background(), 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	var rec telemetry.Recorder
	r.EmitSamples(&rec)
	samples := rec.Samples()
	if len(samples) != len(rows) {
		t.Fatalf("%d samples, want %d", len(samples), len(rows))
	}
	for i, s := range samples {
		if s.Demand != rows[i].Lines {
			t.Errorf("sample %d demand %d, want %d", i, s.Demand, rows[i].Lines)
		}
		if s.Label == "" {
			t.Errorf("sample %d has no point label", i)
		}
		if s.MediaWrites != rows[i].MediaWrites {
			t.Errorf("sample %d media writes %d, want %d", i, s.MediaWrites, rows[i].MediaWrites)
		}
	}
}
