package sweep

import (
	"bytes"
	"context"
	"os"
	"path/filepath"

	"twolm/internal/jobspec"
	"twolm/internal/telemetry"
)

// Result is one executed jobspec: the lowered axes, the merged result
// rows, and the serialized artifacts the spec's telemetry section
// asked for. The artifact bytes are rendered here, in one place, so
// every consumer — cmd/repro -job, cmd/nvsweep -job, a simd job
// fetched over HTTP — returns byte-identical output for the same spec.
type Result struct {
	// Spec is the normalized sweep form the job lowered to.
	Spec Spec
	// Rows is the merged result table in point order (the Result's own
	// copy, stable after the runner is reused).
	Rows []Row
	// Lines is the total demand lines across all points.
	Lines uint64

	// CSV and JSON are the rendered result table, present when the
	// spec's telemetry.formats asked for that serialization.
	CSV  []byte
	JSON []byte
	// TraceCSV and TraceJSON are the sampled bandwidth trace, present
	// only for single-point jobs with telemetry.sample_lines set (a
	// grid's points would interleave nondeterministically, so grids
	// never trace).
	TraceCSV  []byte
	TraceJSON []byte
}

// RunJob executes one validated jobspec end to end: lower to axes,
// expand, run on the pooled arena, render the requested artifacts.
// This is the single execution path behind all three front ends.
//
// pool, when non-nil, replaces the runner's private arena — the simd
// service passes its fleet-wide pool here so every admitted job
// recycles the same controllers. workers sizes the engine pool for
// grid jobs; traced single-point jobs always run serially so the
// sample stream is deterministic. ctx cancellation (per-job deadline,
// server drain) aborts mid-grid and returns ctx.Err with every rig
// back in the arena Reset-clean.
func RunJob(ctx context.Context, j jobspec.Spec, workers int, pool *Arena) (*Result, error) {
	sp, err := FromSpec(j)
	if err != nil {
		return nil, err
	}
	r, err := New(sp)
	if err != nil {
		return nil, err
	}
	if pool != nil {
		r.Pool = pool
	}
	n := j.Normalized()
	var rec *telemetry.Recorder
	if n.Telemetry.SampleLines > 0 && len(r.Points()) == 1 {
		rec = telemetry.NewRecorder()
		r.Trace = rec
		r.TraceEvery = n.Telemetry.SampleLines
		workers = 1
	}
	rows, err := r.Run(ctx, workers, nil)
	if err != nil {
		return nil, err
	}
	res := &Result{Spec: r.Spec(), Rows: append([]Row(nil), rows...)}
	for i := range res.Rows {
		res.Lines += res.Rows[i].Lines
	}
	var buf bytes.Buffer
	if j.WantsFormat(jobspec.FormatCSV) {
		if err := WriteCSV(&buf, res.Rows); err != nil {
			return nil, err
		}
		res.CSV = append([]byte(nil), buf.Bytes()...)
		if rec != nil {
			buf.Reset()
			if err := rec.WriteCSV(&buf); err != nil {
				return nil, err
			}
			res.TraceCSV = append([]byte(nil), buf.Bytes()...)
		}
	}
	if j.WantsFormat(jobspec.FormatJSON) {
		buf.Reset()
		if err := WriteJSON(&buf, res.Rows); err != nil {
			return nil, err
		}
		res.JSON = append([]byte(nil), buf.Bytes()...)
		if rec != nil {
			buf.Reset()
			if err := rec.WriteJSON(&buf); err != nil {
				return nil, err
			}
			res.TraceJSON = append([]byte(nil), buf.Bytes()...)
		}
	}
	return res, nil
}

// Write persists every rendered artifact under dir using the jobspec
// artifact-name contract (job_results.csv / job_results.json and, for
// traced jobs, job_trace.csv / job_trace.json), creating dir as
// needed.
func (res *Result) Write(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	files := []struct {
		name string
		data []byte
	}{
		{jobspec.ResultCSVName, res.CSV},
		{jobspec.ResultJSONName, res.JSON},
		{jobspec.TraceCSVName, res.TraceCSV},
		{jobspec.TraceJSONName, res.TraceJSON},
	}
	for _, f := range files {
		if f.data == nil {
			continue
		}
		if err := os.WriteFile(filepath.Join(dir, f.name), f.data, 0o644); err != nil {
			return err
		}
	}
	return nil
}
