// Package sweep turns a declarative design-space specification into
// thousands of deterministic simulation jobs and executes them at high
// throughput on the engine worker pool.
//
// The paper's argument is comparative — it only lands by measuring
// many cache geometries and policies against each other — and Babaie
// et al. ("Enabling Design Space Exploration of DRAM Caches in
// Emerging Memory Systems") make the case for sweeping
// size/associativity/ratio grids wholesale. A Spec names the axes;
// Expand crosses them into Points in a fixed documented order; a
// Runner executes every point and produces one Row per point, merged
// into tables that are byte-identical regardless of worker count.
//
// The perf headline is amortized job execution: points sharing a
// Geometry (capacities, channel/DIMM counts, associativity, policy)
// recycle pooled controllers via imc.Controller.Reset instead of
// paying a cold construction per job, and all immutable per-class
// precomputation (resolved capacities, footprint line counts, fastdiv
// reciprocals and interleave memos inside the pooled controller) is
// computed once per class and shared read-only across its jobs. The
// recycled-vs-fresh differential tests prove the reuse is
// observationally invisible.
package sweep

import (
	"fmt"

	"twolm/internal/imc"
	"twolm/internal/jobspec"
	"twolm/internal/mem"
)

// Pattern names accepted by Spec.Patterns — aliases of the canonical
// jobspec definitions so existing callers keep compiling.
const (
	PatternSequential = jobspec.PatternSequential
	PatternRandom     = jobspec.PatternRandom
	PatternWrite      = jobspec.PatternWrite
)

// Policy ablation names accepted by Spec.Policies, matching the
// acceptance matrix used by the differential tests since PR 2 —
// aliases of the canonical jobspec definitions.
const (
	PolicyHardware        = jobspec.PolicyHardware
	PolicyNoWriteAllocate = jobspec.PolicyNoWriteAllocate
	PolicyNoReadAllocate  = jobspec.PolicyNoReadAllocate
	PolicyDDOOff          = jobspec.PolicyDDOOff
)

// Spec is a declarative sweep: a name plus the canonical jobspec grid
// axes. Each axis field is one axis and the sweep is the cross
// product; zero-value axes are filled by Normalized with
// single-element defaults, so a minimal spec names only the axes it
// varies. The embedded jobspec.Axes carries the JSON field set, so
// the cmd/nvsweep -spec file format IS the `sweep` section of a
// versioned jobspec document — one grid description, two containers.
type Spec struct {
	// Name labels the sweep in artifacts and progress gauges.
	Name string `json:"name,omitempty"`

	jobspec.Axes
}

// Normalized returns the spec with every defaultable axis filled in
// (the shared jobspec defaulting rule).
func (s Spec) Normalized() Spec {
	s.Axes = s.Axes.Normalized()
	return s
}

// FromSpec lowers a validated jobspec document into the sweep's axis
// form — the one conversion every consumer (cmd/repro -job,
// cmd/nvsweep -job, cmd/simd) shares, which is what makes their result
// artifacts byte-identical for the same spec file. A grid spec maps
// axis-for-axis; a single-point spec becomes a one-point grid, with
// the workload's power-of-two Scale divisor lowered onto SampleLines
// (footprint/Scale demand lines per pass — the -scale flag semantics).
func FromSpec(j jobspec.Spec) (Spec, error) {
	if err := j.Validate(); err != nil {
		return Spec{}, err
	}
	n := j.Normalized()
	if n.Sweep != nil {
		return Spec{Name: n.Name, Axes: *n.Sweep}, nil
	}
	g, w := n.Geometry, n.Workload
	ax := jobspec.Axes{
		CacheKiB: []uint64{g.CacheKiB},
		Ways:     []int{g.Ways},
		Policies: []string{n.Policy},
		Channels: []int{g.Channels},
		DIMMs:    []int{g.DIMMs},
		Ratios:   []uint64{w.Ratio},
		Patterns: []string{w.Pattern},
		Seeds:    []uint32{w.Seed},
		Passes:   w.Passes,
	}
	if w.Scale > 1 {
		lines := g.CacheKiB * 1024 / mem.Line * w.Ratio
		ax.SampleLines = lines / w.Scale
		if ax.SampleLines == 0 {
			ax.SampleLines = 1
		}
	}
	return Spec{Name: n.Name, Axes: ax}, nil
}

// policyFor maps an ablation name onto the controller policy at the
// given associativity.
func policyFor(name string, ways int) (imc.Policy, error) {
	p := imc.HardwarePolicy()
	p.Ways = ways
	switch name {
	case PolicyHardware:
	case PolicyNoWriteAllocate:
		p.WriteAllocate = false
	case PolicyNoReadAllocate:
		p.ReadAllocate = false
	case PolicyDDOOff:
		p.DisableDDO = true
	default:
		return imc.Policy{}, fmt.Errorf("sweep: unknown policy %q (want %s|%s|%s|%s)",
			name, PolicyHardware, PolicyNoWriteAllocate, PolicyNoReadAllocate, PolicyDDOOff)
	}
	return p, nil
}

// patternKind is the dispatch-ready form of a pattern name.
type patternKind uint8

const (
	patSequential patternKind = iota
	patRandom
	patWrite
)

func patternFor(name string) (patternKind, error) {
	switch name {
	case PatternSequential:
		return patSequential, nil
	case PatternRandom:
		return patRandom, nil
	case PatternWrite:
		return patWrite, nil
	}
	return 0, fmt.Errorf("sweep: unknown pattern %q (want %s|%s|%s)",
		name, PatternSequential, PatternRandom, PatternWrite)
}

// Geometry is the immutable precomputation shared by every point of
// one geometry class: the resolved capacities and derived line counts
// that fix a controller's allocation shape and policy. Expand builds
// exactly one Geometry value per distinct class and every Point of the
// class references it read-only, so the per-class work (validation,
// capacity arithmetic, and — inside the pooled controllers built from
// it — fastdiv reciprocals, interleave memos, and the packed tag-array
// shell) is paid once, not per job.
type Geometry struct {
	CacheKiB   uint64
	CacheBytes uint64
	NVRAMBytes uint64
	Ratio      uint64
	Channels   int
	DIMMs      int
	PolicyName string
	Policy     imc.Policy

	// CacheLines and Lines are the cache and footprint sizes in 64 B
	// lines; PassLines is the demand lines each pass touches after
	// the SampleLines cap.
	CacheLines uint64
	Lines      uint64
	PassLines  uint64

	// id is the exact-value class identity the controller Arena keys
	// by, set once by resolveClass. Keying the pool by value (not by
	// the *Geometry pointer) is what lets independent Runners — every
	// job the simd service admits builds its own — share one pooled
	// fleet of controllers.
	id classID
}

// Key returns the class's stable FNV-1a geometry hash — the arena and
// label key for controller reuse. Two points may share pooled state
// only when every field that shapes controller allocation or behavior
// hashes in here; Expand additionally dedupes classes by exact field
// value, so equal keys always mean equal geometry.
func (g *Geometry) Key() uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= prime
			v >>= 8
		}
	}
	mix(g.CacheBytes)
	mix(g.NVRAMBytes)
	mix(uint64(g.Channels))
	mix(uint64(g.DIMMs))
	mix(uint64(g.Policy.Ways))
	var bits uint64
	if g.Policy.WriteAllocate {
		bits |= 1
	}
	if g.Policy.ReadAllocate {
		bits |= 2
	}
	if g.Policy.DisableDDO {
		bits |= 4
	}
	mix(bits)
	return h
}

// classID is the comparable exact-value identity used to dedupe
// geometry classes during expansion and to key the controller Arena.
// Because it compares every field that shapes controller allocation
// exactly, a (vanishingly unlikely) hash collision in Key could
// mislabel a class but can never hand a job a wrong-geometry
// controller.
type classID struct {
	cacheBytes uint64
	nvramBytes uint64
	channels   int
	dimms      int
	policy     imc.Policy
}

// Point is one fully resolved job of the sweep: a geometry class plus
// the per-point workload parameters. Index is the point's position in
// expansion order — the merge key that makes result tables independent
// of execution order.
type Point struct {
	Index   int
	Geom    *Geometry
	Pattern string
	Seed    uint32
	Passes  int

	kind patternKind
}

// Expand normalizes and validates the spec and crosses its axes into
// the deterministic point list. Axis order is fixed and documented:
// cache size, ways, policy, channels, DIMMs, ratio, pattern, seed —
// the slowest-varying axis first. The same spec always yields the
// same points in the same order, which is what lets merged tables be
// compared byte-for-byte across runs and worker counts.
func Expand(s Spec) ([]Point, error) {
	s = s.Normalized()
	if len(s.CacheKiB) == 0 {
		return nil, fmt.Errorf("sweep: spec has no cache_kib axis")
	}
	if s.Passes < 1 {
		return nil, fmt.Errorf("sweep: passes %d must be positive", s.Passes)
	}
	classes := make(map[classID]*Geometry)
	var points []Point
	for _, kib := range s.CacheKiB {
		for _, ways := range s.Ways {
			for _, polName := range s.Policies {
				for _, ch := range s.Channels {
					for _, dimms := range s.DIMMs {
						for _, ratio := range s.Ratios {
							g, err := resolveClass(classes, s, kib, ways, polName, ch, dimms, ratio)
							if err != nil {
								return nil, err
							}
							for _, pat := range s.Patterns {
								kind, err := patternFor(pat)
								if err != nil {
									return nil, err
								}
								seeds := s.Seeds
								if kind != patRandom {
									// Seed-independent patterns expand
									// once, not once per seed.
									seeds = s.Seeds[:1]
								}
								for _, seed := range seeds {
									points = append(points, Point{
										Index:   len(points),
										Geom:    g,
										Pattern: pat,
										Seed:    seed,
										Passes:  s.Passes,
										kind:    kind,
									})
								}
							}
						}
					}
				}
			}
		}
	}
	return points, nil
}

// resolveClass validates one geometry combination and returns its
// canonical shared Geometry, creating it on first sight.
func resolveClass(classes map[classID]*Geometry, s Spec, kib uint64, ways int, polName string, ch, dimms int, ratio uint64) (*Geometry, error) {
	pol, err := policyFor(polName, ways)
	if err != nil {
		return nil, err
	}
	if kib == 0 {
		return nil, fmt.Errorf("sweep: cache size must be positive")
	}
	cacheBytes := kib * 1024
	if cacheBytes%(mem.Line*uint64(ways)) != 0 {
		return nil, fmt.Errorf("sweep: cache %d KiB is not a multiple of %d ways x %d B lines", kib, ways, mem.Line)
	}
	if ch < 1 {
		return nil, fmt.Errorf("sweep: channel count %d must be positive", ch)
	}
	if dimms < 1 {
		return nil, fmt.Errorf("sweep: dimm count %d must be positive", dimms)
	}
	if ratio < 1 {
		return nil, fmt.Errorf("sweep: ratio %d must be >= 1", ratio)
	}
	id := classID{cacheBytes: cacheBytes, nvramBytes: cacheBytes * ratio, channels: ch, dimms: dimms, policy: pol}
	if g, ok := classes[id]; ok {
		return g, nil
	}
	g := &Geometry{
		CacheKiB:   kib,
		CacheBytes: cacheBytes,
		NVRAMBytes: cacheBytes * ratio,
		Ratio:      ratio,
		Channels:   ch,
		DIMMs:      dimms,
		PolicyName: polName,
		Policy:     pol,
		CacheLines: cacheBytes / mem.Line,
		id:         id,
	}
	g.Lines = g.NVRAMBytes / mem.Line
	g.PassLines = g.Lines
	if s.SampleLines != 0 && s.SampleLines < g.PassLines {
		g.PassLines = s.SampleLines
	}
	classes[id] = g
	return g, nil
}

// DefaultSpec is the full nvsweep grid: the paper's comparison axes
// (size, associativity, all four policy ablations, DRAM:NVRAM ratio)
// over both stream shapes. 432 points.
func DefaultSpec() Spec {
	return Spec{
		Name: "default",
		Axes: jobspec.Axes{
			CacheKiB: []uint64{256, 512, 1024},
			Ways:     []int{1, 4},
			Policies: []string{PolicyHardware, PolicyNoWriteAllocate, PolicyNoReadAllocate, PolicyDDOOff},
			Channels: []int{1, 6},
			Ratios:   []uint64{2, 4, 8},
			Patterns: []string{PatternSequential, PatternRandom},
			Passes:   1,
		},
	}
}

// QuickSpec is the CI smoke grid: small caches, every pattern and
// policy, two worker-visible geometry axes. 48 points, sub-second.
func QuickSpec() Spec {
	return Spec{
		Name: "quick",
		Axes: jobspec.Axes{
			CacheKiB: []uint64{64, 128},
			Ways:     []int{1, 4},
			Policies: []string{PolicyHardware, PolicyNoWriteAllocate, PolicyNoReadAllocate, PolicyDDOOff},
			Ratios:   []uint64{2},
			Patterns: []string{PatternSequential, PatternRandom, PatternWrite},
			Passes:   1,
		},
	}
}

// BenchmarkSpec is the 1024-point grid behind BenchmarkSweepThroughput
// and the benchcheck sweep_jobs_per_sec gate: 16 geometry classes
// (2 sizes x 2 ways x 4 policies) x 64 random seeds, sampled at 4096
// lines per job so per-job work is bounded while the per-job setup a
// naive runner would pay (a multi-MiB tag array per point) is not —
// the regime controller reuse exists for.
func BenchmarkSpec() Spec {
	seeds := make([]uint32, 64)
	for i := range seeds {
		seeds[i] = 0x2B1A + uint32(i)*0x9E37
	}
	return Spec{
		Name: "bench",
		Axes: jobspec.Axes{
			CacheKiB:    []uint64{2048, 4096},
			Ways:        []int{1, 4},
			Policies:    []string{PolicyHardware, PolicyNoWriteAllocate, PolicyNoReadAllocate, PolicyDDOOff},
			Ratios:      []uint64{4},
			Patterns:    []string{PatternRandom},
			Seeds:       seeds,
			Passes:      1,
			SampleLines: 4096,
		},
	}
}
