// Package sweep turns a declarative design-space specification into
// thousands of deterministic simulation jobs and executes them at high
// throughput on the engine worker pool.
//
// The paper's argument is comparative — it only lands by measuring
// many cache geometries and policies against each other — and Babaie
// et al. ("Enabling Design Space Exploration of DRAM Caches in
// Emerging Memory Systems") make the case for sweeping
// size/associativity/ratio grids wholesale. A Spec names the axes;
// Expand crosses them into Points in a fixed documented order; a
// Runner executes every point and produces one Row per point, merged
// into tables that are byte-identical regardless of worker count.
//
// The perf headline is amortized job execution: points sharing a
// Geometry (capacities, channel/DIMM counts, associativity, policy)
// recycle pooled controllers via imc.Controller.Reset instead of
// paying a cold construction per job, and all immutable per-class
// precomputation (resolved capacities, footprint line counts, fastdiv
// reciprocals and interleave memos inside the pooled controller) is
// computed once per class and shared read-only across its jobs. The
// recycled-vs-fresh differential tests prove the reuse is
// observationally invisible.
package sweep

import (
	"fmt"

	"twolm/internal/imc"
	"twolm/internal/mem"
)

// Pattern names accepted by Spec.Patterns.
const (
	// PatternSequential streams a demand-read pass followed by a
	// writeback pass over the footprint — the paper's streaming
	// regime.
	PatternSequential = "sequential"
	// PatternRandom issues an LFSR-ordered read/write mix over the
	// footprint — the paper's random-access regime.
	PatternRandom = "random"
	// PatternWrite streams writeback-only passes — the NT-store
	// regime that exercises DDO and write-allocate policy.
	PatternWrite = "write"
)

// Policy ablation names accepted by Spec.Policies, matching the
// acceptance matrix used by the differential tests since PR 2.
const (
	PolicyHardware        = "hardware"
	PolicyNoWriteAllocate = "no-write-allocate"
	PolicyNoReadAllocate  = "no-read-allocate"
	PolicyDDOOff          = "ddo-off"
)

// Spec is a declarative sweep: each field is one axis, and the sweep
// is the cross product. Zero-value axes are filled by Normalized with
// single-element defaults, so a minimal spec names only the axes it
// varies. JSON tags define the cmd/nvsweep -spec file format.
type Spec struct {
	// Name labels the sweep in artifacts and progress gauges.
	Name string `json:"name,omitempty"`

	// CacheKiB is the DRAM-cache capacity axis, in KiB per
	// controller. Required: it is the one axis without a default.
	CacheKiB []uint64 `json:"cache_kib"`
	// Ways is the tag-store associativity axis (default 1, the
	// Cascade Lake direct-mapped hardware).
	Ways []int `json:"ways,omitempty"`
	// Policies is the allocation-policy ablation axis (default
	// hardware). See the Policy* constants.
	Policies []string `json:"policies,omitempty"`
	// Channels is the DRAM channel-count axis (default 1).
	Channels []int `json:"channels,omitempty"`
	// DIMMs is the NVRAM DIMM-count axis (default 1).
	DIMMs []int `json:"dimms,omitempty"`
	// Ratios is the NVRAM:DRAM capacity-ratio axis (default 2): the
	// workload footprint is Ratio x the cache capacity, so every
	// ratio >= 2 runs the paper's miss-heavy regime.
	Ratios []uint64 `json:"ratios,omitempty"`
	// Patterns is the workload-pattern axis (default sequential).
	Patterns []string `json:"patterns,omitempty"`
	// Seeds is the random-pattern seed axis (default 0x2B1A, the
	// throughput benchmark seed). Only PatternRandom points vary by
	// seed; other patterns are seed-independent and expand once,
	// pinned to Seeds[0].
	Seeds []uint32 `json:"seeds,omitempty"`

	// Passes is how many times each point repeats its pattern
	// (default 1).
	Passes int `json:"passes,omitempty"`
	// SampleLines, when nonzero, caps the demand lines each pass
	// touches. Design-space sweeps bound per-point cost this way: the
	// measurement samples the footprint instead of scaling with it,
	// so a point over a 1 GiB footprint costs the same as one over
	// 16 MiB. Random passes draw the sample from the whole footprint
	// (the LFSR order spreads it); sequential and write passes
	// truncate the stream.
	SampleLines uint64 `json:"sample_lines,omitempty"`
}

// Normalized returns the spec with every defaultable axis filled in.
func (s Spec) Normalized() Spec {
	if len(s.Ways) == 0 {
		s.Ways = []int{1}
	}
	if len(s.Policies) == 0 {
		s.Policies = []string{PolicyHardware}
	}
	if len(s.Channels) == 0 {
		s.Channels = []int{1}
	}
	if len(s.DIMMs) == 0 {
		s.DIMMs = []int{1}
	}
	if len(s.Ratios) == 0 {
		s.Ratios = []uint64{2}
	}
	if len(s.Patterns) == 0 {
		s.Patterns = []string{PatternSequential}
	}
	if len(s.Seeds) == 0 {
		s.Seeds = []uint32{0x2B1A}
	}
	if s.Passes == 0 {
		s.Passes = 1
	}
	return s
}

// policyFor maps an ablation name onto the controller policy at the
// given associativity.
func policyFor(name string, ways int) (imc.Policy, error) {
	p := imc.HardwarePolicy()
	p.Ways = ways
	switch name {
	case PolicyHardware:
	case PolicyNoWriteAllocate:
		p.WriteAllocate = false
	case PolicyNoReadAllocate:
		p.ReadAllocate = false
	case PolicyDDOOff:
		p.DisableDDO = true
	default:
		return imc.Policy{}, fmt.Errorf("sweep: unknown policy %q (want %s|%s|%s|%s)",
			name, PolicyHardware, PolicyNoWriteAllocate, PolicyNoReadAllocate, PolicyDDOOff)
	}
	return p, nil
}

// patternKind is the dispatch-ready form of a pattern name.
type patternKind uint8

const (
	patSequential patternKind = iota
	patRandom
	patWrite
)

func patternFor(name string) (patternKind, error) {
	switch name {
	case PatternSequential:
		return patSequential, nil
	case PatternRandom:
		return patRandom, nil
	case PatternWrite:
		return patWrite, nil
	}
	return 0, fmt.Errorf("sweep: unknown pattern %q (want %s|%s|%s)",
		name, PatternSequential, PatternRandom, PatternWrite)
}

// Geometry is the immutable precomputation shared by every point of
// one geometry class: the resolved capacities and derived line counts
// that fix a controller's allocation shape and policy. Expand builds
// exactly one Geometry value per distinct class and every Point of the
// class references it read-only, so the per-class work (validation,
// capacity arithmetic, and — inside the pooled controllers built from
// it — fastdiv reciprocals, interleave memos, and the packed tag-array
// shell) is paid once, not per job.
type Geometry struct {
	CacheKiB   uint64
	CacheBytes uint64
	NVRAMBytes uint64
	Ratio      uint64
	Channels   int
	DIMMs      int
	PolicyName string
	Policy     imc.Policy

	// CacheLines and Lines are the cache and footprint sizes in 64 B
	// lines; PassLines is the demand lines each pass touches after
	// the SampleLines cap.
	CacheLines uint64
	Lines      uint64
	PassLines  uint64
}

// Key returns the class's stable FNV-1a geometry hash — the arena and
// label key for controller reuse. Two points may share pooled state
// only when every field that shapes controller allocation or behavior
// hashes in here; Expand additionally dedupes classes by exact field
// value, so equal keys always mean equal geometry.
func (g *Geometry) Key() uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= prime
			v >>= 8
		}
	}
	mix(g.CacheBytes)
	mix(g.NVRAMBytes)
	mix(uint64(g.Channels))
	mix(uint64(g.DIMMs))
	mix(uint64(g.Policy.Ways))
	var bits uint64
	if g.Policy.WriteAllocate {
		bits |= 1
	}
	if g.Policy.ReadAllocate {
		bits |= 2
	}
	if g.Policy.DisableDDO {
		bits |= 4
	}
	mix(bits)
	return h
}

// classID is the comparable exact-value identity used to dedupe
// geometry classes during expansion. The pool itself is keyed by the
// canonical *Geometry this produces, so a (vanishingly unlikely) hash
// collision in Key could mislabel a class but can never hand a job a
// wrong-geometry controller.
type classID struct {
	cacheBytes uint64
	nvramBytes uint64
	channels   int
	dimms      int
	policy     imc.Policy
}

// Point is one fully resolved job of the sweep: a geometry class plus
// the per-point workload parameters. Index is the point's position in
// expansion order — the merge key that makes result tables independent
// of execution order.
type Point struct {
	Index   int
	Geom    *Geometry
	Pattern string
	Seed    uint32
	Passes  int

	kind patternKind
}

// Expand normalizes and validates the spec and crosses its axes into
// the deterministic point list. Axis order is fixed and documented:
// cache size, ways, policy, channels, DIMMs, ratio, pattern, seed —
// the slowest-varying axis first. The same spec always yields the
// same points in the same order, which is what lets merged tables be
// compared byte-for-byte across runs and worker counts.
func Expand(s Spec) ([]Point, error) {
	s = s.Normalized()
	if len(s.CacheKiB) == 0 {
		return nil, fmt.Errorf("sweep: spec has no cache_kib axis")
	}
	if s.Passes < 1 {
		return nil, fmt.Errorf("sweep: passes %d must be positive", s.Passes)
	}
	classes := make(map[classID]*Geometry)
	var points []Point
	for _, kib := range s.CacheKiB {
		for _, ways := range s.Ways {
			for _, polName := range s.Policies {
				for _, ch := range s.Channels {
					for _, dimms := range s.DIMMs {
						for _, ratio := range s.Ratios {
							g, err := resolveClass(classes, s, kib, ways, polName, ch, dimms, ratio)
							if err != nil {
								return nil, err
							}
							for _, pat := range s.Patterns {
								kind, err := patternFor(pat)
								if err != nil {
									return nil, err
								}
								seeds := s.Seeds
								if kind != patRandom {
									// Seed-independent patterns expand
									// once, not once per seed.
									seeds = s.Seeds[:1]
								}
								for _, seed := range seeds {
									points = append(points, Point{
										Index:   len(points),
										Geom:    g,
										Pattern: pat,
										Seed:    seed,
										Passes:  s.Passes,
										kind:    kind,
									})
								}
							}
						}
					}
				}
			}
		}
	}
	return points, nil
}

// resolveClass validates one geometry combination and returns its
// canonical shared Geometry, creating it on first sight.
func resolveClass(classes map[classID]*Geometry, s Spec, kib uint64, ways int, polName string, ch, dimms int, ratio uint64) (*Geometry, error) {
	pol, err := policyFor(polName, ways)
	if err != nil {
		return nil, err
	}
	if kib == 0 {
		return nil, fmt.Errorf("sweep: cache size must be positive")
	}
	cacheBytes := kib * 1024
	if cacheBytes%(mem.Line*uint64(ways)) != 0 {
		return nil, fmt.Errorf("sweep: cache %d KiB is not a multiple of %d ways x %d B lines", kib, ways, mem.Line)
	}
	if ch < 1 {
		return nil, fmt.Errorf("sweep: channel count %d must be positive", ch)
	}
	if dimms < 1 {
		return nil, fmt.Errorf("sweep: dimm count %d must be positive", dimms)
	}
	if ratio < 1 {
		return nil, fmt.Errorf("sweep: ratio %d must be >= 1", ratio)
	}
	id := classID{cacheBytes: cacheBytes, nvramBytes: cacheBytes * ratio, channels: ch, dimms: dimms, policy: pol}
	if g, ok := classes[id]; ok {
		return g, nil
	}
	g := &Geometry{
		CacheKiB:   kib,
		CacheBytes: cacheBytes,
		NVRAMBytes: cacheBytes * ratio,
		Ratio:      ratio,
		Channels:   ch,
		DIMMs:      dimms,
		PolicyName: polName,
		Policy:     pol,
		CacheLines: cacheBytes / mem.Line,
	}
	g.Lines = g.NVRAMBytes / mem.Line
	g.PassLines = g.Lines
	if s.SampleLines != 0 && s.SampleLines < g.PassLines {
		g.PassLines = s.SampleLines
	}
	classes[id] = g
	return g, nil
}

// DefaultSpec is the full nvsweep grid: the paper's comparison axes
// (size, associativity, all four policy ablations, DRAM:NVRAM ratio)
// over both stream shapes. 432 points.
func DefaultSpec() Spec {
	return Spec{
		Name:     "default",
		CacheKiB: []uint64{256, 512, 1024},
		Ways:     []int{1, 4},
		Policies: []string{PolicyHardware, PolicyNoWriteAllocate, PolicyNoReadAllocate, PolicyDDOOff},
		Channels: []int{1, 6},
		Ratios:   []uint64{2, 4, 8},
		Patterns: []string{PatternSequential, PatternRandom},
		Passes:   1,
	}
}

// QuickSpec is the CI smoke grid: small caches, every pattern and
// policy, two worker-visible geometry axes. 48 points, sub-second.
func QuickSpec() Spec {
	return Spec{
		Name:     "quick",
		CacheKiB: []uint64{64, 128},
		Ways:     []int{1, 4},
		Policies: []string{PolicyHardware, PolicyNoWriteAllocate, PolicyNoReadAllocate, PolicyDDOOff},
		Ratios:   []uint64{2},
		Patterns: []string{PatternSequential, PatternRandom, PatternWrite},
		Passes:   1,
	}
}

// BenchmarkSpec is the 1024-point grid behind BenchmarkSweepThroughput
// and the benchcheck sweep_jobs_per_sec gate: 16 geometry classes
// (2 sizes x 2 ways x 4 policies) x 64 random seeds, sampled at 4096
// lines per job so per-job work is bounded while the per-job setup a
// naive runner would pay (a multi-MiB tag array per point) is not —
// the regime controller reuse exists for.
func BenchmarkSpec() Spec {
	seeds := make([]uint32, 64)
	for i := range seeds {
		seeds[i] = 0x2B1A + uint32(i)*0x9E37
	}
	return Spec{
		Name:        "bench",
		CacheKiB:    []uint64{2048, 4096},
		Ways:        []int{1, 4},
		Policies:    []string{PolicyHardware, PolicyNoWriteAllocate, PolicyNoReadAllocate, PolicyDDOOff},
		Ratios:      []uint64{4},
		Patterns:    []string{PatternRandom},
		Seeds:       seeds,
		Passes:      1,
		SampleLines: 4096,
	}
}
