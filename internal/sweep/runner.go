package sweep

import (
	"context"
	"fmt"
	"sync"

	"twolm/internal/dram"
	"twolm/internal/engine"
	"twolm/internal/imc"
	"twolm/internal/lfsr"
	"twolm/internal/mem"
	"twolm/internal/nvram"
	"twolm/internal/telemetry"
)

// batchLines is the random-pattern staging size: indices are drawn
// from the LFSR stream and handed to the controller's scatter path in
// chunks of this many requests, matching engine.RandPass.
const batchLines = 2048

// rig is one pooled execution context: a controller plus the
// fixed-size scratch the random pattern stages requests through. Rigs
// never migrate between geometry classes — the class is fixed at
// build — and a released rig is Reset before it re-enters the arena,
// so an acquired rig is always observationally identical to a fresh
// one.
type rig struct {
	id   classID
	ctrl *imc.Controller
	idx  [batchLines]uint32
	reqs [batchLines]imc.Req
}

// Arena is the sync.Pool-style controller store behind job execution:
// free rigs keyed by exact geometry class identity. Unlike sync.Pool
// it never discards rigs under GC pressure — the whole point is that
// a 1000-job sweep allocates one rig per (class, concurrently active
// worker), not one per job. It keys by the comparable classID (every
// field that shapes controller allocation, compared by value), so
// even a Geometry.Key hash collision could not hand a job a
// wrong-shaped controller — and because the key is a value, not a
// per-expansion pointer, independent Runners can share one Arena:
// cmd/simd hands every admitted job the same fleet-wide pool, and
// jobs repeating a popular geometry skip construction entirely.
type Arena struct {
	mu   sync.Mutex
	free map[classID][]*rig
}

// NewArena returns an empty controller pool.
func NewArena() *Arena { return &Arena{} }

// acquire returns a ready rig for the class, recycling a pooled one
// when available. With fresh set it always constructs — the naive
// baseline BenchmarkSweepThroughputFresh measures against.
func (a *Arena) acquire(g *Geometry, fresh bool) (*rig, error) {
	if !fresh {
		a.mu.Lock()
		if rigs := a.free[g.id]; len(rigs) > 0 {
			rg := rigs[len(rigs)-1]
			a.free[g.id] = rigs[:len(rigs)-1]
			a.mu.Unlock()
			return rg, nil
		}
		a.mu.Unlock()
	}
	return buildRig(g)
}

// release resets the rig and returns it to the class's free list —
// including rigs whose job was cancelled mid-pass, which is why the
// Reset here (not in acquire) is load-bearing: a rig re-enters the
// arena only in the as-constructed state. In fresh mode the rig is
// dropped for the GC to reclaim, like the naive one-controller-per-job
// runner this mode reproduces.
func (a *Arena) release(rg *rig, fresh bool) {
	if fresh {
		return
	}
	rg.ctrl.Reset()
	a.mu.Lock()
	if a.free == nil {
		a.free = make(map[classID][]*rig)
	}
	a.free[rg.id] = append(a.free[rg.id], rg)
	a.mu.Unlock()
}

// buildRig constructs the controller stack for one geometry class.
//
//alloc:cold rig construction happens once per geometry class (or per job only under the deliberately naive Fresh mode)
func buildRig(g *Geometry) (*rig, error) {
	d, err := dram.New(g.Channels, g.CacheBytes)
	if err != nil {
		return nil, fmt.Errorf("sweep: %w", err)
	}
	n, err := nvram.New(g.DIMMs, g.NVRAMBytes)
	if err != nil {
		return nil, fmt.Errorf("sweep: %w", err)
	}
	ctrl, err := imc.New(d, n, imc.WithPolicy(g.Policy))
	if err != nil {
		return nil, fmt.Errorf("sweep: %w", err)
	}
	return &rig{id: g.id, ctrl: ctrl}, nil
}

// Runner executes an expanded sweep on the engine worker pool. Build
// one with New; Run may be called repeatedly (the benchmark loop does)
// and reuses the job list, row storage, and controller arena across
// calls, so steady-state execution allocates nothing per job.
type Runner struct {
	// Fresh disables controller recycling: every job constructs its
	// full controller stack from scratch. This is the naive baseline
	// the ≥1.5x jobs/sec target is measured against; leave it false
	// for real sweeps.
	Fresh bool

	// Pool is the controller arena jobs acquire rigs from. New
	// installs a private arena; replace it (before the first Run)
	// to share pooled controllers across runners, the way the simd
	// service shares one fleet-wide arena across every admitted job.
	Pool *Arena

	// Trace, when non-nil, attaches a telemetry sink to each point's
	// controller, sampled every TraceEvery demand lines and flushed
	// after the final pass — the Figure 5-9-style bandwidth-trace
	// artifact. Sinks see points in execution order, so tracing is
	// only deterministic for single-point runs on one worker; RunJob
	// enforces that, and multi-point grids leave it nil.
	Trace telemetry.Sink
	// TraceEvery is the Trace sampling interval in demand lines.
	TraceEvery uint64

	spec   Spec
	points []Point
	rows   []Row
	jobs   []engine.Job
}

// New expands and validates the spec and prepares the reusable job
// list. The one-time cost here (point expansion, job closures, row
// storage, per-point names) is deliberately front-loaded so Run's
// steady state stays allocation free.
func New(spec Spec) (*Runner, error) {
	points, err := Expand(spec)
	if err != nil {
		return nil, err
	}
	if len(points) == 0 {
		return nil, fmt.Errorf("sweep: spec %q expands to no points", spec.Name)
	}
	r := &Runner{
		Pool:   NewArena(),
		spec:   spec.Normalized(),
		points: points,
		rows:   make([]Row, len(points)),
	}
	r.jobs = make([]engine.Job, len(points))
	for i := range points {
		p := &r.points[i]
		row := &r.rows[i]
		r.jobs[i] = engine.Job{
			Name: pointName(p),
			Run: func(ctx context.Context) ([]engine.Artifact, error) {
				return nil, r.executePoint(ctx, p, row)
			},
		}
	}
	return r, nil
}

// pointName renders the point's stable human-readable label, used for
// job progress and error attribution (the merge key is Index, never
// the name).
func pointName(p *Point) string {
	return fmt.Sprintf("%04d %dKiB/w%d/%s/ch%d/d%d/r%d/%s/0x%X",
		p.Index, p.Geom.CacheKiB, p.Geom.Policy.Ways, p.Geom.PolicyName,
		p.Geom.Channels, p.Geom.DIMMs, p.Geom.Ratio, p.Pattern, p.Seed)
}

// Points returns the expanded point list in execution (= merge) order.
func (r *Runner) Points() []Point { return r.points }

// Spec returns the normalized spec the runner was built from.
func (r *Runner) Spec() Spec { return r.spec }

// Run executes every point on workers goroutines and returns one Row
// per point in point order — independent of completion order, so the
// returned table is byte-identical for any worker count. observe, when
// non-nil, is called once per completed job from worker goroutines in
// completion order (progress gauges; anything order-sensitive belongs
// on the rows). The returned slice is the runner's own row storage and
// is overwritten by the next Run.
//
// Cancelling ctx (a per-job deadline, a server drain) stops the grid:
// in-flight points stop at their next pass or batch boundary, pending
// points are skipped, and every rig goes back to the arena through
// release — i.e. Reset-clean — so a cancelled run can never leak a
// dirty controller into the pool. The error is ctx.Err.
func (r *Runner) Run(ctx context.Context, workers int, observe func(engine.Outcome)) ([]Row, error) {
	outs := engine.RunJobsObserved(ctx, r.jobs, workers, observe)
	return r.rows, engine.FirstError(outs)
}

// executePoint runs one point on a pooled (or, under Fresh, newly
// built) rig and writes its result row. The row write is a whole-value
// store of fields already resolved at expansion, so the only per-job
// heap traffic in steady state is none at all. The rig is released on
// every exit path — success, pattern error, cancellation — because
// release is where the Reset that keeps the arena clean lives.
//
//hot:entry sweep workers execute points concurrently on the shared rig pool
//alloc:free 0 steady-state allocs/job is the pooled-runner contract (PR 7)
func (r *Runner) executePoint(ctx context.Context, p *Point, row *Row) error {
	rg, err := r.Pool.acquire(p.Geom, r.Fresh)
	if err != nil {
		return err
	}
	if r.Trace != nil {
		rg.ctrl.SetTelemetry(r.Trace, r.TraceEvery)
	}
	err = r.runPasses(ctx, rg, p)
	if err == nil {
		g := p.Geom
		ctr := rg.ctrl.Counters()
		*row = Row{
			Index:       p.Index,
			CacheKiB:    g.CacheKiB,
			Ways:        g.Policy.Ways,
			Policy:      g.PolicyName,
			Channels:    g.Channels,
			DIMMs:       g.DIMMs,
			Ratio:       g.Ratio,
			Pattern:     p.Pattern,
			Seed:        p.Seed,
			Passes:      p.Passes,
			Lines:       ctr.Demand(),
			Counters:    ctr,
			MediaReads:  rg.ctrl.NVRAM.TotalMediaReads(),
			MediaWrites: rg.ctrl.NVRAM.TotalMediaWrites(),
		}
		if r.Trace != nil {
			rg.ctrl.FlushTelemetry()
		}
	}
	if r.Trace != nil {
		// Detach before the rig re-enters the arena: Reset restarts
		// the sampling phase but deliberately keeps the sink, and a
		// pooled rig must not stream one job's telemetry into the
		// next job's run.
		rg.ctrl.SetTelemetry(nil, 0)
	}
	r.Pool.release(rg, r.Fresh)
	return err
}

// runPasses issues the point's demand stream, checking for
// cancellation at every pass boundary (and, inside random passes, at
// every staged batch).
func (r *Runner) runPasses(ctx context.Context, rg *rig, p *Point) error {
	g := p.Geom
	switch p.kind {
	case patSequential:
		for pass := 0; pass < p.Passes; pass++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			rg.ctrl.LLCReadRange(0, g.PassLines)
			rg.ctrl.LLCWriteRange(0, g.PassLines)
		}
	case patWrite:
		for pass := 0; pass < p.Passes; pass++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			rg.ctrl.LLCWriteRange(0, g.PassLines)
		}
	case patRandom:
		for pass := 0; pass < p.Passes; pass++ {
			if err := r.randomPass(ctx, rg, g, p.Seed); err != nil {
				return err
			}
		}
	}
	return nil
}

// randomPass issues one LFSR-ordered pass: PassLines demand lines
// drawn from the full footprint, alternating read and write, staged
// through the rig's fixed buffers into the batched scatter path.
func (r *Runner) randomPass(ctx context.Context, rg *rig, g *Geometry, seed uint32) error {
	s, err := lfsr.NewStream(g.Lines, seed)
	if err != nil {
		return fmt.Errorf("sweep: %w", err)
	}
	var emitted uint64
	for emitted < g.PassLines {
		if err := ctx.Err(); err != nil {
			return err
		}
		n, err := s.Fill(rg.idx[:])
		if err != nil {
			return fmt.Errorf("sweep: %w", err)
		}
		if n == 0 {
			break
		}
		if rem := g.PassLines - emitted; uint64(n) > rem {
			n = int(rem)
		}
		for i := 0; i < n; i++ {
			addr := uint64(rg.idx[i]) << mem.LineShift
			if (emitted+uint64(i))&1 == 0 {
				rg.reqs[i] = imc.ReadReq(addr)
			} else {
				rg.reqs[i] = imc.WriteReq(addr)
			}
		}
		rg.ctrl.LLCScatter(rg.reqs[:n])
		emitted += uint64(n)
	}
	return nil
}
