package sweep

import (
	"fmt"
	"sync"

	"twolm/internal/dram"
	"twolm/internal/engine"
	"twolm/internal/imc"
	"twolm/internal/lfsr"
	"twolm/internal/mem"
	"twolm/internal/nvram"
)

// batchLines is the random-pattern staging size: indices are drawn
// from the LFSR stream and handed to the controller's scatter path in
// chunks of this many requests, matching engine.RandPass.
const batchLines = 2048

// rig is one pooled execution context: a controller plus the
// fixed-size scratch the random pattern stages requests through. Rigs
// never migrate between geometry classes — geom is fixed at build —
// and a released rig is Reset before it re-enters the arena, so an
// acquired rig is always observationally identical to a fresh one.
type rig struct {
	geom *Geometry
	ctrl *imc.Controller
	idx  [batchLines]uint32
	reqs [batchLines]imc.Req
}

// arena is the sync.Pool-style controller store behind job execution:
// free rigs keyed by canonical geometry class. Unlike sync.Pool it
// never discards rigs under GC pressure — the whole point is that a
// 1000-job sweep allocates one rig per (class, concurrently active
// worker), not one per job — and it keys by the canonical *Geometry
// from Expand, so even a Geometry.Key hash collision could not hand a
// job a wrong-shaped controller.
type arena struct {
	mu   sync.Mutex
	free map[*Geometry][]*rig
}

// acquire returns a ready rig for the class, recycling a pooled one
// when available. With fresh set it always constructs — the naive
// baseline BenchmarkSweepThroughputFresh measures against.
func (a *arena) acquire(g *Geometry, fresh bool) (*rig, error) {
	if !fresh {
		a.mu.Lock()
		if rigs := a.free[g]; len(rigs) > 0 {
			rg := rigs[len(rigs)-1]
			a.free[g] = rigs[:len(rigs)-1]
			a.mu.Unlock()
			return rg, nil
		}
		a.mu.Unlock()
	}
	return buildRig(g)
}

// release resets the rig and returns it to the class's free list. In
// fresh mode the rig is dropped for the GC to reclaim, like the naive
// one-controller-per-job runner this mode reproduces.
func (a *arena) release(rg *rig, fresh bool) {
	if fresh {
		return
	}
	rg.ctrl.Reset()
	a.mu.Lock()
	if a.free == nil {
		a.free = make(map[*Geometry][]*rig)
	}
	a.free[rg.geom] = append(a.free[rg.geom], rg)
	a.mu.Unlock()
}

// buildRig constructs the controller stack for one geometry class.
//
//alloc:cold rig construction happens once per geometry class (or per job only under the deliberately naive Fresh mode)
func buildRig(g *Geometry) (*rig, error) {
	d, err := dram.New(g.Channels, g.CacheBytes)
	if err != nil {
		return nil, fmt.Errorf("sweep: %w", err)
	}
	n, err := nvram.New(g.DIMMs, g.NVRAMBytes)
	if err != nil {
		return nil, fmt.Errorf("sweep: %w", err)
	}
	ctrl, err := imc.New(d, n, imc.WithPolicy(g.Policy))
	if err != nil {
		return nil, fmt.Errorf("sweep: %w", err)
	}
	return &rig{geom: g, ctrl: ctrl}, nil
}

// Runner executes an expanded sweep on the engine worker pool. Build
// one with New; Run may be called repeatedly (the benchmark loop does)
// and reuses the job list, row storage, and controller arena across
// calls, so steady-state execution allocates nothing per job.
type Runner struct {
	// Fresh disables controller recycling: every job constructs its
	// full controller stack from scratch. This is the naive baseline
	// the ≥1.5x jobs/sec target is measured against; leave it false
	// for real sweeps.
	Fresh bool

	spec   Spec
	points []Point
	rows   []Row
	jobs   []engine.Job
	pool   arena
}

// New expands and validates the spec and prepares the reusable job
// list. The one-time cost here (point expansion, job closures, row
// storage, per-point names) is deliberately front-loaded so Run's
// steady state stays allocation free.
func New(spec Spec) (*Runner, error) {
	points, err := Expand(spec)
	if err != nil {
		return nil, err
	}
	if len(points) == 0 {
		return nil, fmt.Errorf("sweep: spec %q expands to no points", spec.Name)
	}
	r := &Runner{
		spec:   spec.Normalized(),
		points: points,
		rows:   make([]Row, len(points)),
	}
	r.jobs = make([]engine.Job, len(points))
	for i := range points {
		p := &r.points[i]
		row := &r.rows[i]
		r.jobs[i] = engine.Job{
			Name: pointName(p),
			Run: func() ([]engine.Artifact, error) {
				return nil, r.executePoint(p, row)
			},
		}
	}
	return r, nil
}

// pointName renders the point's stable human-readable label, used for
// job progress and error attribution (the merge key is Index, never
// the name).
func pointName(p *Point) string {
	return fmt.Sprintf("%04d %dKiB/w%d/%s/ch%d/d%d/r%d/%s/0x%X",
		p.Index, p.Geom.CacheKiB, p.Geom.Policy.Ways, p.Geom.PolicyName,
		p.Geom.Channels, p.Geom.DIMMs, p.Geom.Ratio, p.Pattern, p.Seed)
}

// Points returns the expanded point list in execution (= merge) order.
func (r *Runner) Points() []Point { return r.points }

// Spec returns the normalized spec the runner was built from.
func (r *Runner) Spec() Spec { return r.spec }

// Run executes every point on workers goroutines and returns one Row
// per point in point order — independent of completion order, so the
// returned table is byte-identical for any worker count. observe, when
// non-nil, is called once per completed job from worker goroutines in
// completion order (progress gauges; anything order-sensitive belongs
// on the rows). The returned slice is the runner's own row storage and
// is overwritten by the next Run.
func (r *Runner) Run(workers int, observe func(engine.Outcome)) ([]Row, error) {
	outs := engine.RunJobsObserved(r.jobs, workers, observe)
	return r.rows, engine.FirstError(outs)
}

// executePoint runs one point on a pooled (or, under Fresh, newly
// built) rig and writes its result row. The row write is a whole-value
// store of fields already resolved at expansion, so the only per-job
// heap traffic in steady state is none at all.
//
//hot:entry sweep workers execute points concurrently on the shared rig pool
//alloc:free 0 steady-state allocs/job is the pooled-runner contract (PR 7)
func (r *Runner) executePoint(p *Point, row *Row) error {
	rg, err := r.pool.acquire(p.Geom, r.Fresh)
	if err != nil {
		return err
	}
	g := p.Geom
	switch p.kind {
	case patSequential:
		for pass := 0; pass < p.Passes; pass++ {
			rg.ctrl.LLCReadRange(0, g.PassLines)
			rg.ctrl.LLCWriteRange(0, g.PassLines)
		}
	case patWrite:
		for pass := 0; pass < p.Passes; pass++ {
			rg.ctrl.LLCWriteRange(0, g.PassLines)
		}
	case patRandom:
		for pass := 0; pass < p.Passes; pass++ {
			if err := r.randomPass(rg, g, p.Seed); err != nil {
				return err
			}
		}
	}
	ctr := rg.ctrl.Counters()
	*row = Row{
		Index:       p.Index,
		CacheKiB:    g.CacheKiB,
		Ways:        g.Policy.Ways,
		Policy:      g.PolicyName,
		Channels:    g.Channels,
		DIMMs:       g.DIMMs,
		Ratio:       g.Ratio,
		Pattern:     p.Pattern,
		Seed:        p.Seed,
		Passes:      p.Passes,
		Lines:       ctr.Demand(),
		Counters:    ctr,
		MediaReads:  rg.ctrl.NVRAM.TotalMediaReads(),
		MediaWrites: rg.ctrl.NVRAM.TotalMediaWrites(),
	}
	r.pool.release(rg, r.Fresh)
	return nil
}

// randomPass issues one LFSR-ordered pass: PassLines demand lines
// drawn from the full footprint, alternating read and write, staged
// through the rig's fixed buffers into the batched scatter path.
func (r *Runner) randomPass(rg *rig, g *Geometry, seed uint32) error {
	s, err := lfsr.NewStream(g.Lines, seed)
	if err != nil {
		return fmt.Errorf("sweep: %w", err)
	}
	var emitted uint64
	for emitted < g.PassLines {
		n, err := s.Fill(rg.idx[:])
		if err != nil {
			return fmt.Errorf("sweep: %w", err)
		}
		if n == 0 {
			break
		}
		if rem := g.PassLines - emitted; uint64(n) > rem {
			n = int(rem)
		}
		for i := 0; i < n; i++ {
			addr := uint64(rg.idx[i]) << mem.LineShift
			if (emitted+uint64(i))&1 == 0 {
				rg.reqs[i] = imc.ReadReq(addr)
			} else {
				rg.reqs[i] = imc.WriteReq(addr)
			}
		}
		rg.ctrl.LLCScatter(rg.reqs[:n])
		emitted += uint64(n)
	}
	return nil
}
