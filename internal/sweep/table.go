package sweep

import (
	"io"
	"strconv"

	"twolm/internal/imc"
	"twolm/internal/telemetry"
)

// Row is one point's merged-table entry: the resolved axis values
// followed by the measured counters. Rows are produced in point order
// regardless of worker count or completion order — Index is the merge
// key — which is what makes WriteCSV/WriteJSON output byte-identical
// across -parallel settings.
type Row struct {
	Index    int
	CacheKiB uint64
	Ways     int
	Policy   string
	Channels int
	DIMMs    int
	Ratio    uint64
	Pattern  string
	Seed     uint32
	Passes   int

	// Lines is the demand lines the point issued (Counters.Demand).
	Lines    uint64
	Counters imc.Counters
	// MediaReads/MediaWrites are the NVRAM media-block counters,
	// which live on the module rather than in imc.Counters.
	MediaReads  uint64
	MediaWrites uint64
}

// tableHeader is the merged CSV column contract, pinned by the
// determinism tests: axes first, raw counters next, derived metrics
// last.
var tableHeader = []string{
	"index", "cache_kib", "ways", "policy", "channels", "dimms", "ratio",
	"pattern", "seed", "passes", "lines",
	"llc_read", "llc_write", "dram_read", "dram_write",
	"nvram_read", "nvram_write",
	"tag_hit", "tag_miss_clean", "tag_miss_dirty", "ddo",
	"media_reads", "media_writes",
	"hit_rate", "amplification",
}

func u(v uint64) string { return strconv.FormatUint(v, 10) }
func f(v float64) string { return strconv.FormatFloat(v, 'f', 6, 64) }

// WriteCSV writes the merged result table through the telemetry CSV
// convention. Output depends only on the rows, so two sweeps of the
// same spec produce byte-identical tables whatever their worker
// counts.
func WriteCSV(w io.Writer, rows []Row) error {
	recs := make([][]string, len(rows))
	for i := range rows {
		r := &rows[i]
		c := r.Counters
		recs[i] = []string{
			strconv.Itoa(r.Index), u(r.CacheKiB), strconv.Itoa(r.Ways), r.Policy,
			strconv.Itoa(r.Channels), strconv.Itoa(r.DIMMs), u(r.Ratio),
			r.Pattern, u(uint64(r.Seed)), strconv.Itoa(r.Passes), u(r.Lines),
			u(c.LLCRead), u(c.LLCWrite), u(c.DRAMRead), u(c.DRAMWrite),
			u(c.NVRAMRead), u(c.NVRAMWrite),
			u(c.TagHit), u(c.TagMissClean), u(c.TagMissDirty), u(c.DDO),
			u(r.MediaReads), u(r.MediaWrites),
			f(c.HitRate()), f(c.Amplification()),
		}
	}
	return telemetry.WriteCSVRows(w, tableHeader, recs)
}

// rowJSON is the flattened JSON shape of a Row: snake_case keys
// matching the CSV columns, derived metrics included.
type rowJSON struct {
	Index    int    `json:"index"`
	CacheKiB uint64 `json:"cache_kib"`
	Ways     int    `json:"ways"`
	Policy   string `json:"policy"`
	Channels int    `json:"channels"`
	DIMMs    int    `json:"dimms"`
	Ratio    uint64 `json:"ratio"`
	Pattern  string `json:"pattern"`
	Seed     uint32 `json:"seed"`
	Passes   int    `json:"passes"`
	Lines    uint64 `json:"lines"`

	LLCRead      uint64 `json:"llc_read"`
	LLCWrite     uint64 `json:"llc_write"`
	DRAMRead     uint64 `json:"dram_read"`
	DRAMWrite    uint64 `json:"dram_write"`
	NVRAMRead    uint64 `json:"nvram_read"`
	NVRAMWrite   uint64 `json:"nvram_write"`
	TagHit       uint64 `json:"tag_hit"`
	TagMissClean uint64 `json:"tag_miss_clean"`
	TagMissDirty uint64 `json:"tag_miss_dirty"`
	DDO          uint64 `json:"ddo"`
	MediaReads   uint64 `json:"media_reads"`
	MediaWrites  uint64 `json:"media_writes"`

	HitRate       float64 `json:"hit_rate"`
	Amplification float64 `json:"amplification"`
}

// WriteJSON writes the merged result table as indented JSON through
// the telemetry encoder, byte-identical across worker counts like the
// CSV form.
func WriteJSON(w io.Writer, rows []Row) error {
	out := make([]rowJSON, len(rows))
	for i := range rows {
		r := &rows[i]
		c := r.Counters
		out[i] = rowJSON{
			Index: r.Index, CacheKiB: r.CacheKiB, Ways: r.Ways, Policy: r.Policy,
			Channels: r.Channels, DIMMs: r.DIMMs, Ratio: r.Ratio,
			Pattern: r.Pattern, Seed: r.Seed, Passes: r.Passes, Lines: r.Lines,
			LLCRead: c.LLCRead, LLCWrite: c.LLCWrite,
			DRAMRead: c.DRAMRead, DRAMWrite: c.DRAMWrite,
			NVRAMRead: c.NVRAMRead, NVRAMWrite: c.NVRAMWrite,
			TagHit: c.TagHit, TagMissClean: c.TagMissClean, TagMissDirty: c.TagMissDirty,
			DDO: c.DDO, MediaReads: r.MediaReads, MediaWrites: r.MediaWrites,
			HitRate: c.HitRate(), Amplification: c.Amplification(),
		}
	}
	return telemetry.EncodeJSON(w, out)
}

// EmitSamples streams one cumulative telemetry sample per row, in
// point order, into sink — the sweep-level Source/Sink bridge. Each
// sample's Demand clock is the row's own demand-line count and its
// Label is the point's stable name, so a Recorder attached here
// produces a deterministic per-point trace.
func (r *Runner) EmitSamples(sink telemetry.Sink) {
	if sink == nil {
		return
	}
	for i := range r.rows {
		row := &r.rows[i]
		c := row.Counters
		sink.Record(telemetry.Sample{
			Demand:       row.Lines,
			Label:        r.jobs[i].Name,
			LLCRead:      c.LLCRead,
			LLCWrite:     c.LLCWrite,
			DRAMRead:     c.DRAMRead,
			DRAMWrite:    c.DRAMWrite,
			NVRAMRead:    c.NVRAMRead,
			NVRAMWrite:   c.NVRAMWrite,
			TagHit:       c.TagHit,
			TagMissClean: c.TagMissClean,
			TagMissDirty: c.TagMissDirty,
			DDO:          c.DDO,
			MediaReads:   row.MediaReads,
			MediaWrites:  row.MediaWrites,
		})
	}
}
