// Package analytics implements the Galois-lonestar graph kernels of
// the paper's Section VI — breadth-first search, connected components,
// k-core decomposition and pagerank-push — instrumented to drive the
// memory-system simulator while computing real results.
//
// Every array the algorithms touch (CSR offsets, edges, and the
// per-node property arrays) is placed in the simulated address space;
// each element access is forwarded to the System, whose on-chip cache
// model coalesces same-line touches exactly as hardware would. The
// kernels close a Sync interval per round, producing the time series
// of the paper's Figure 9.
package analytics

import (
	"fmt"
	"math"

	"twolm/internal/core"
	"twolm/internal/graph"
	"twolm/internal/imc"
	"twolm/internal/lfsr"
	"twolm/internal/mem"
	"twolm/internal/perfcounter"
)

// Config wires a kernel run.
type Config struct {
	// Sys is the simulated system.
	Sys *core.System
	// G is the input graph, already placed at Layout.
	G      *graph.Graph
	Layout graph.Layout
	// AllocProp allocates property arrays; it encodes the placement
	// policy (flat in 2LM, NUMA-preferred in 1LM, DRAM-pinned for
	// Sage).
	AllocProp func(size uint64) (mem.Region, error)
	// Threads is the modeled worker count (96 in the paper's graph
	// experiments).
	Threads int

	// PRRounds bounds pagerank-push (the paper runs 100 rounds; scaled
	// runs use fewer). 0 selects the default.
	PRRounds int
	// PRTolerance is the pagerank residual threshold (paper: 1e-6).
	PRTolerance float64
	// KCoreK is the k-core parameter (paper: k=100 on billion-edge
	// graphs; scaled graphs use a k matched to their degree scale).
	KCoreK int
	// MaxRounds bounds iterative kernels against pathological inputs.
	MaxRounds int
	// SequentialOrder makes round-based kernels visit nodes in
	// ascending order. The default (false) visits them in a shuffled
	// order, matching Galois's unordered worklist scheduling — which
	// is what turns the CSR scan of an over-capacity graph into the
	// random miss stream the paper measures.
	SequentialOrder bool
}

func (c Config) withDefaults() Config {
	if c.Threads <= 0 {
		c.Threads = 96
	}
	if c.PRRounds <= 0 {
		c.PRRounds = 10
	}
	if c.PRTolerance <= 0 {
		c.PRTolerance = 1e-6
	}
	if c.KCoreK <= 0 {
		c.KCoreK = 10
	}
	if c.MaxRounds <= 0 {
		c.MaxRounds = 1000
	}
	return c
}

// Result reports one kernel execution.
type Result struct {
	Kernel  string
	Elapsed float64
	Delta   imc.Counters
	Rounds  int
	// Output holds the kernel's computed answer for correctness
	// checks: []uint32 distances (bfs), []uint32 labels (cc),
	// remaining-node count (kcore), []float32 ranks (pr).
	Output any
	// Series is the per-round counter trace.
	Series *perfcounter.Series
}

// DemandGB returns CPU-visible traffic in (scaled) decimal GB.
func (r Result) DemandGB() float64 {
	return float64(r.Delta.Demand()*mem.Line) / mem.GB
}

// runner carries shared per-kernel state.
type runner struct {
	cfg  Config
	sys  *core.System
	g    *graph.Graph
	l    graph.Layout
	ctr0 imc.Counters
	t0   float64
	n0   int // samples before the run
}

func newRunner(cfg Config) (*runner, error) {
	cfg = cfg.withDefaults()
	if cfg.Sys == nil || cfg.G == nil || cfg.AllocProp == nil {
		return nil, fmt.Errorf("analytics: Sys, G and AllocProp are required")
	}
	cfg.Sys.SetThreads(cfg.Threads)
	cfg.Sys.SetTraffic(mem.Random, mem.Line)
	cfg.Sys.SetStreams(4) // offsets + edges + properties + write-backs
	// Graph traversal chains dependent accesses (offset -> edges ->
	// property); deep worklists recover some parallelism across
	// activities, but nowhere near the hardware's 10+ line-fill
	// buffers.
	cfg.Sys.SetMLP(3.5)
	return &runner{
		cfg:  cfg,
		sys:  cfg.Sys,
		g:    cfg.G,
		l:    cfg.Layout,
		ctr0: cfg.Sys.Counters(),
		t0:   cfg.Sys.Clock(),
		n0:   cfg.Sys.Series().Len(),
	}, nil
}

func (r *runner) finish(kernel string, rounds int, output any) Result {
	r.sys.DrainLLC()
	r.sys.Sync(kernel+":drain", 0)
	var series perfcounter.Series
	for _, s := range r.sys.Series().Samples()[r.n0:] {
		series.Append(s)
	}
	return Result{
		Kernel:  kernel,
		Elapsed: r.sys.Clock() - r.t0,
		Delta:   r.sys.Counters().Sub(r.ctr0),
		Rounds:  rounds,
		Output:  output,
		Series:  &series,
	}
}

// forEachNode visits every node once, in worklist (shuffled) or
// sequential order per the configuration.
func (r *runner) forEachNode(round int, fn func(u uint32)) {
	n := uint64(r.g.NumNodes())
	if r.cfg.SequentialOrder {
		for u := uint64(0); u < n; u++ {
			fn(uint32(u))
		}
		return
	}
	// Unordered-worklist stand-in: a deterministic shuffled order that
	// changes per round.
	if err := lfsr.Sequence(n, uint32(round)*2654435761+1, func(u uint64) {
		fn(uint32(u))
	}); err != nil {
		// Falls back to sequential order on generator failure (cannot
		// happen for in-range node counts).
		for u := uint64(0); u < n; u++ {
			fn(uint32(u))
		}
	}
}

// allocProp allocates a 4-byte-per-node property array.
func (r *runner) allocProp(name string) (mem.Region, error) {
	reg, err := r.cfg.AllocProp(uint64(r.g.NumNodes()) * 4)
	if err != nil {
		return mem.Region{}, fmt.Errorf("analytics: allocating %s: %w", name, err)
	}
	return reg, nil
}

// --- simulated element accesses ---------------------------------------

// loadElem records a 4-byte element load.
func (r *runner) loadElem(reg mem.Region, idx uint32) {
	r.sys.Load(reg.Base + uint64(idx)*4)
}

// rmwElem records a read-modify-write of a 4-byte element (load + RFO
// + deferred writeback, coalesced on chip).
func (r *runner) rmwElem(reg mem.Region, idx uint32) {
	r.sys.RMW(reg.Base + uint64(idx)*4)
}

// storeElem records a 4-byte element store.
func (r *runner) storeElem(reg mem.Region, idx uint32) {
	r.sys.Store(reg.Base + uint64(idx)*4)
}

// loadSpan records loads covering elements [start, end) of a 4-byte
// array — one access per cache line, the way a scan reads it.
func (r *runner) loadSpan(reg mem.Region, start, end uint32) {
	if start >= end {
		return
	}
	first := reg.Base + uint64(start)*4
	last := reg.Base + uint64(end)*4 - 1
	for a := first &^ (mem.Line - 1); a <= last; a += mem.Line {
		r.sys.Load(a)
	}
}

// neighbors reads node u's degree bounds and adjacency list, recording
// the offset loads and the edge-array scan.
func (r *runner) neighbors(u uint32) []uint32 {
	r.loadElem(r.l.Offsets, u)
	r.loadElem(r.l.Offsets, u+1)
	start, end := r.g.Offsets[u], r.g.Offsets[u+1]
	r.loadSpan(r.l.Edges, start, end)
	return r.g.Edges[start:end]
}

// --- kernels -----------------------------------------------------------

// InfDist marks unreached nodes in BFS output.
const InfDist = math.MaxUint32

// BFS runs frontier-based breadth-first search from src and returns
// the distance array.
func BFS(cfg Config, src uint32) (Result, error) {
	r, err := newRunner(cfg)
	if err != nil {
		return Result{}, err
	}
	distReg, err := r.allocProp("dist")
	if err != nil {
		return Result{}, err
	}
	n := r.g.NumNodes()
	dist := make([]uint32, n)
	for i := range dist {
		dist[i] = InfDist
	}
	dist[src] = 0
	r.storeElem(distReg, src)

	frontier := []uint32{src}
	level := uint32(0)
	rounds := 0
	for len(frontier) > 0 && rounds < r.cfg.MaxRounds {
		level++
		rounds++
		var next []uint32
		for _, u := range frontier {
			for _, v := range r.neighbors(u) {
				r.loadElem(distReg, v)
				if dist[v] == InfDist {
					dist[v] = level
					r.storeElem(distReg, v)
					next = append(next, v)
				}
			}
		}
		frontier = next
		r.sys.Sync(fmt.Sprintf("bfs:level%d", level), 0)
	}
	return r.finish("bfs", rounds, dist), nil
}

// CC runs label-propagation connected components (over the directed
// edges treated as undirected via symmetric propagation) and returns
// the label array.
func CC(cfg Config) (Result, error) {
	r, err := newRunner(cfg)
	if err != nil {
		return Result{}, err
	}
	labReg, err := r.allocProp("labels")
	if err != nil {
		return Result{}, err
	}
	n := r.g.NumNodes()
	labels := make([]uint32, n)
	for i := range labels {
		labels[i] = uint32(i)
	}
	rounds := 0
	for changed := true; changed && rounds < r.cfg.MaxRounds; {
		changed = false
		rounds++
		r.forEachNode(rounds, func(u uint32) {
			lu := labels[u]
			r.loadElem(labReg, u)
			for _, v := range r.neighbors(u) {
				r.loadElem(labReg, v)
				switch {
				case labels[v] < lu:
					lu = labels[v]
				case labels[v] > lu:
					// Symmetric propagation: push the smaller label
					// out along the edge.
					labels[v] = lu
					r.storeElem(labReg, v)
					changed = true
				}
			}
			if lu != labels[u] {
				labels[u] = lu
				r.storeElem(labReg, u)
				changed = true
			}
		})
		r.sys.Sync(fmt.Sprintf("cc:round%d", rounds), 0)
	}
	return r.finish("cc", rounds, labels), nil
}

// KCore peels nodes of degree < k until a fixed point and returns the
// number of nodes remaining in the k-core.
func KCore(cfg Config) (Result, error) {
	r, err := newRunner(cfg)
	if err != nil {
		return Result{}, err
	}
	degReg, err := r.allocProp("degrees")
	if err != nil {
		return Result{}, err
	}
	k := r.cfg.KCoreK
	n := r.g.NumNodes()
	deg := make([]int32, n)
	alive := make([]bool, n)
	var worklist []uint32
	for u := 0; u < n; u++ {
		d := int32(r.g.OutDegree(uint32(u)))
		deg[u] = d
		alive[u] = true
		r.storeElem(degReg, uint32(u))
		if d < int32(k) {
			worklist = append(worklist, uint32(u))
		}
	}
	r.sys.Sync("kcore:init", 0)

	rounds := 0
	for len(worklist) > 0 && rounds < r.cfg.MaxRounds {
		rounds++
		var next []uint32
		for _, u := range worklist {
			if !alive[u] {
				continue
			}
			alive[u] = false
			for _, v := range r.neighbors(u) {
				if !alive[v] {
					continue
				}
				r.rmwElem(degReg, v)
				deg[v]--
				if deg[v] == int32(k)-1 {
					next = append(next, v)
				}
			}
		}
		worklist = next
		r.sys.Sync(fmt.Sprintf("kcore:round%d", rounds), 0)
	}
	remaining := 0
	for _, a := range alive {
		if a {
			remaining++
		}
	}
	return r.finish("kcore", rounds, remaining), nil
}

// PRAlpha is the pagerank damping factor.
const PRAlpha = 0.85

// PageRank runs residual-based pagerank-push for cfg.PRRounds rounds
// (or until all residuals drop below tolerance) and returns the rank
// array. Pushes mutate the residual array in place — the write-heavy
// access pattern the paper identifies as pathological under 2LM.
func PageRank(cfg Config) (Result, error) {
	r, err := newRunner(cfg)
	if err != nil {
		return Result{}, err
	}
	rankReg, err := r.allocProp("ranks")
	if err != nil {
		return Result{}, err
	}
	resReg, err := r.allocProp("residuals")
	if err != nil {
		return Result{}, err
	}
	n := r.g.NumNodes()
	rank := make([]float32, n)
	residual := make([]float32, n)
	for i := range residual {
		residual[i] = 1 - PRAlpha
		r.storeElem(resReg, uint32(i))
	}
	r.sys.Sync("pr:init", 0)

	tol := float32(r.cfg.PRTolerance)
	rounds := 0
	for ; rounds < r.cfg.PRRounds; rounds++ {
		active := 0
		r.forEachNode(rounds+1, func(u uint32) {
			r.loadElem(resReg, u)
			res := residual[u]
			if res <= tol {
				return
			}
			active++
			rank[u] += res
			r.rmwElem(rankReg, u)
			residual[u] = 0
			r.storeElem(resReg, u)
			nbrs := r.neighbors(u)
			if len(nbrs) == 0 {
				return
			}
			share := res * PRAlpha / float32(len(nbrs))
			for _, v := range nbrs {
				residual[v] += share
				r.rmwElem(resReg, v)
			}
		})
		r.sys.Sync(fmt.Sprintf("pr:round%d", rounds+1), 0)
		if active == 0 {
			rounds++
			break
		}
	}
	return r.finish("pr", rounds, rank), nil
}
