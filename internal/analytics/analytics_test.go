package analytics

import (
	"testing"

	"twolm/internal/core"
	"twolm/internal/graph"
	"twolm/internal/mem"
	"twolm/internal/platform"
)

// newSystem builds a small 2LM system for kernel tests.
func newSystem(t *testing.T) *core.System {
	t.Helper()
	sys, err := core.New(core.Config{
		Platform: platform.Config{
			Sockets: 1, ChannelsPerSocket: 6,
			DRAMPerChannel:  mem.MiB,
			NVRAMPerChannel: 64 * mem.MiB,
			Scale:           1, Threads: 24,
		},
		Mode:     core.Mode2LM,
		LLCBytes: 32 * mem.KiB,
	})
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// setup places g on a fresh system and returns a base config.
func setup(t *testing.T, g *graph.Graph) Config {
	t.Helper()
	sys := newSystem(t)
	layout, err := g.Place(sys.AddressSpace().Alloc)
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		Sys: sys, G: g, Layout: layout,
		AllocProp: sys.AddressSpace().Alloc,
		Threads:   24,
	}
}

// lineGraph builds 0 -> 1 -> 2 -> ... -> n-1.
func lineGraph(t *testing.T, n int) *graph.Graph {
	t.Helper()
	src := make([]uint32, n-1)
	dst := make([]uint32, n-1)
	for i := 0; i < n-1; i++ {
		src[i] = uint32(i)
		dst[i] = uint32(i + 1)
	}
	g, err := graph.FromEdges("line", n, src, dst)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// refBFS is a plain reference BFS.
func refBFS(g *graph.Graph, src uint32) []uint32 {
	dist := make([]uint32, g.NumNodes())
	for i := range dist {
		dist[i] = InfDist
	}
	dist[src] = 0
	queue := []uint32{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.Neighbors(u) {
			if dist[v] == InfDist {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}

func TestBFSCorrectOnLine(t *testing.T) {
	g := lineGraph(t, 50)
	res, err := BFS(setup(t, g), 0)
	if err != nil {
		t.Fatal(err)
	}
	dist := res.Output.([]uint32)
	for i := 0; i < 50; i++ {
		if dist[i] != uint32(i) {
			t.Fatalf("dist[%d] = %d, want %d", i, dist[i], i)
		}
	}
}

func TestBFSMatchesReferenceOnKron(t *testing.T) {
	g, err := graph.Kronecker(10, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	src := g.MaxOutDegreeNode()
	res, err := BFS(setup(t, g), src)
	if err != nil {
		t.Fatal(err)
	}
	got := res.Output.([]uint32)
	want := refBFS(g, src)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("dist[%d] = %d, want %d", i, got[i], want[i])
		}
	}
	if res.Delta.Demand() == 0 {
		t.Error("BFS generated no memory traffic")
	}
	if res.Elapsed <= 0 {
		t.Error("BFS took no time")
	}
}

// refCC computes weakly connected components by union-find.
func refCC(g *graph.Graph) []uint32 {
	parent := make([]uint32, g.NumNodes())
	for i := range parent {
		parent[i] = uint32(i)
	}
	var find func(x uint32) uint32
	find = func(x uint32) uint32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for u := 0; u < g.NumNodes(); u++ {
		for _, v := range g.Neighbors(uint32(u)) {
			ru, rv := find(uint32(u)), find(v)
			if ru != rv {
				if ru < rv {
					parent[rv] = ru
				} else {
					parent[ru] = rv
				}
			}
		}
	}
	out := make([]uint32, g.NumNodes())
	for i := range out {
		out[i] = find(uint32(i))
	}
	return out
}

func TestCCMatchesUnionFind(t *testing.T) {
	g, err := graph.Kronecker(9, 6, 5)
	if err != nil {
		t.Fatal(err)
	}
	res, err := CC(setup(t, g))
	if err != nil {
		t.Fatal(err)
	}
	labels := res.Output.([]uint32)
	want := refCC(g)
	// Components must partition identically: same label iff same root.
	seen := map[[2]uint32]bool{}
	for i := range labels {
		seen[[2]uint32{labels[i], want[i]}] = true
	}
	byLabel := map[uint32]uint32{}
	for i := range labels {
		if root, ok := byLabel[labels[i]]; ok {
			if root != want[i] {
				t.Fatalf("label %d spans union-find roots %d and %d", labels[i], root, want[i])
			}
		} else {
			byLabel[labels[i]] = want[i]
		}
	}
	byRoot := map[uint32]uint32{}
	for i := range want {
		if lab, ok := byRoot[want[i]]; ok {
			if lab != labels[i] {
				t.Fatalf("root %d spans labels %d and %d", want[i], lab, labels[i])
			}
		} else {
			byRoot[want[i]] = labels[i]
		}
	}
	_ = seen
}

// refKCore computes the k-core size by repeated peeling.
func refKCore(g *graph.Graph, k int) int {
	n := g.NumNodes()
	deg := make([]int, n)
	alive := make([]bool, n)
	for u := 0; u < n; u++ {
		deg[u] = g.OutDegree(uint32(u))
		alive[u] = true
	}
	for {
		removed := false
		for u := 0; u < n; u++ {
			if alive[u] && deg[u] < k {
				alive[u] = false
				removed = true
				for _, v := range g.Neighbors(uint32(u)) {
					if alive[v] {
						deg[v]--
					}
				}
			}
		}
		if !removed {
			break
		}
	}
	count := 0
	for _, a := range alive {
		if a {
			count++
		}
	}
	return count
}

func TestKCoreMatchesReference(t *testing.T) {
	g, err := graph.Kronecker(9, 8, 11)
	if err != nil {
		t.Fatal(err)
	}
	cfg := setup(t, g)
	cfg.KCoreK = 8
	res, err := KCore(cfg)
	if err != nil {
		t.Fatal(err)
	}
	got := res.Output.(int)
	want := refKCore(g, 8)
	if got != want {
		t.Fatalf("k-core size = %d, want %d", got, want)
	}
}

func TestKCoreEmptyAndFull(t *testing.T) {
	g := lineGraph(t, 20) // out-degrees <= 1
	cfg := setup(t, g)
	cfg.KCoreK = 2
	res, err := KCore(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Output.(int) != 0 {
		t.Errorf("line graph 2-core = %d, want 0", res.Output.(int))
	}
}

func TestPageRankConservesMass(t *testing.T) {
	g, err := graph.Kronecker(9, 8, 13)
	if err != nil {
		t.Fatal(err)
	}
	cfg := setup(t, g)
	cfg.PRRounds = 30
	res, err := PageRank(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ranks := res.Output.([]float32)
	var sum float64
	for _, r := range ranks {
		if r < 0 {
			t.Fatal("negative rank")
		}
		sum += float64(r)
	}
	// Push-style pagerank distributes at most n*(1-alpha)/(1-alpha)=n
	// total mass; with damping the absorbed rank converges below n.
	n := float64(g.NumNodes())
	if sum <= 0.2*n || sum > n+1 {
		t.Errorf("rank mass %.1f outside (%.1f, %.1f]", sum, 0.2*n, n)
	}
	if res.Rounds == 0 {
		t.Error("no rounds executed")
	}
	// High-degree hubs should outrank leaves on a skewed graph.
	hub := g.MaxOutDegreeNode()
	if ranks[hub] <= 1-PRAlpha {
		t.Errorf("hub rank %.4f no higher than base", ranks[hub])
	}
}

func TestPageRankSeriesPerRound(t *testing.T) {
	g, err := graph.Kronecker(8, 4, 17)
	if err != nil {
		t.Fatal(err)
	}
	cfg := setup(t, g)
	cfg.PRRounds = 5
	res, err := PageRank(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// init + rounds + drain samples.
	if res.Series.Len() < res.Rounds+2 {
		t.Errorf("series has %d samples for %d rounds", res.Series.Len(), res.Rounds)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := BFS(Config{}, 0); err == nil {
		t.Error("empty config accepted")
	}
}

// TestLoadSpanCoversLines: spans touching k lines generate k loads.
func TestLoadSpanCoversLines(t *testing.T) {
	g := lineGraph(t, 4)
	cfg := setup(t, g)
	r, err := newRunner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	reg, _ := cfg.AllocProp(1024)
	before := cfg.Sys.Counters().LLCRead
	r.loadSpan(reg, 0, 32) // 128 bytes = 2 lines
	got := cfg.Sys.Counters().LLCRead - before
	if got != 2 {
		t.Errorf("loadSpan issued %d line loads, want 2", got)
	}
	// Empty span: nothing.
	before = cfg.Sys.Counters().LLCRead
	r.loadSpan(reg, 5, 5)
	if cfg.Sys.Counters().LLCRead != before {
		t.Error("empty span generated traffic")
	}
}
