// Package dma models copy engines for the hardware/software co-design
// direction the paper closes with (Section VII-B): software-managed
// data movement currently burns CPU cores on loads and nontemporal
// stores and cannot easily run asynchronously; "if software, with its
// high level knowledge of data access patterns, could work with the
// hardware, then we could realize the benefits of hardware
// acceleration without the limitations presented above."
//
// An Engine is a bandwidth ceiling plus a name; core.System.DMACopy
// provides the transfer mechanics (device traffic without CPU issue
// cost, overlapping compute). The autotm package accepts an Engine to
// switch its tensor moves from synchronous CPU copies to asynchronous
// engine transfers, and the ablation experiments compare the
// generations.
package dma

import "twolm/internal/mem"

// Engine describes a copy engine.
type Engine struct {
	// Name identifies the engine in reports.
	Name string
	// Bandwidth is the engine's transfer ceiling in bytes/s (counting
	// both the read and the write side of each copy).
	Bandwidth float64
}

// CurrentGenIOAT models today's I/O-oriented DMA engines (Intel
// I/OAT-class): a few GB/s, designed for NIC and storage descriptor
// rings — the engines the paper says "do not fit the requirements of
// this data movement".
func CurrentGenIOAT() Engine {
	return Engine{Name: "ioat", Bandwidth: 6 * mem.GB}
}

// FutureGen models a co-designed high-bandwidth mover able to saturate
// the NVRAM devices (DSA-class and beyond).
func FutureGen() Engine {
	return Engine{Name: "future", Bandwidth: 60 * mem.GB}
}
