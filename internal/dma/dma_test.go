package dma

import "testing"

func TestPresets(t *testing.T) {
	ioat := CurrentGenIOAT()
	future := FutureGen()
	if ioat.Bandwidth <= 0 || future.Bandwidth <= 0 {
		t.Fatal("non-positive engine bandwidth")
	}
	if future.Bandwidth <= ioat.Bandwidth {
		t.Error("the co-designed engine should out-run the I/O-class engine")
	}
	if ioat.Name == "" || future.Name == "" {
		t.Error("engines need names for reports")
	}
	// The I/OAT-class engine must be slower than the NVRAM read peak
	// (30.6 GB/s), which is what makes it unfit for this data movement
	// (the paper's Section VII-B claim).
	if ioat.Bandwidth >= 30e9 {
		t.Errorf("I/OAT-class bandwidth %.1f GB/s should sit below the device peak", ioat.Bandwidth/1e9)
	}
}
