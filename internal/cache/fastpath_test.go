package cache

import (
	"math/rand"
	"testing"

	"twolm/internal/mem"
)

// TestAssocDirectMappedEquivalence proves the Ways==1 specialized
// Probe/Install path (which skips the way loop and the LRU stamp
// clock) classifies every access and reconstructs every victim exactly
// like the independent DirectMapped implementation, over a long random
// op stream on a non-power-of-two set count.
func TestAssocDirectMappedEquivalence(t *testing.T) {
	const capacity = 528 * mem.Line // non-power-of-two sets
	assoc, err := NewAssoc(capacity, 1)
	if err != nil {
		t.Fatal(err)
	}
	dm, err := New(capacity)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200000; i++ {
		addr := uint64(rng.Intn(4*528)) * mem.Line
		h, aRes := assoc.Probe(addr)
		set, tag, dRes := dm.Lookup(addr)
		if aRes != dRes {
			t.Fatalf("op %d addr %#x: Assoc %v, DirectMapped %v", i, addr, aRes, dRes)
		}
		if h != set {
			t.Fatalf("op %d addr %#x: handle %d != set %d", i, addr, h, set)
		}
		aVic, aOK := assoc.VictimAddr(h)
		dVic, dOK := dm.VictimAddr(set)
		if aVic != dVic || aOK != dOK {
			t.Fatalf("op %d addr %#x: victim %#x/%v != %#x/%v", i, addr, aVic, aOK, dVic, dOK)
		}
		switch rng.Intn(4) {
		case 0: // install on miss
			if aRes != Hit {
				assoc.Install(h, addr)
				dm.Insert(set, tag)
			}
		case 1:
			if aRes == Hit {
				assoc.MarkDirty(h)
				dm.MarkDirty(set)
			}
		case 2:
			if aRes == Hit {
				assoc.Invalidate(h)
				dm.Invalidate(set)
			}
		case 3:
			owned := rng.Intn(2) == 0
			assoc.SetLLCOwned(h, owned)
			dm.SetLLCOwned(set, owned)
		}
		if assoc.IsDirty(h) != dm.IsDirty(set) || assoc.LLCOwned(h) != dm.LLCOwned(set) {
			t.Fatalf("op %d addr %#x: flag state diverged", i, addr)
		}
	}
	if assoc.DirtyLines() != dm.DirtyLines() || assoc.ValidLines() != dm.ValidLines() {
		t.Fatalf("aggregate state diverged: dirty %d/%d valid %d/%d",
			assoc.DirtyLines(), dm.DirtyLines(), assoc.ValidLines(), dm.ValidLines())
	}
}

// TestAssocWaysMatrixVictims cross-checks the reciprocal-based
// index/VictimAddr round trip at several associativities and
// non-power-of-two set counts.
func TestAssocWaysMatrixVictims(t *testing.T) {
	for _, ways := range []int{1, 2, 3, 4, 8} {
		c, err := NewAssoc(uint64(ways)*528*mem.Line, ways)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(int64(ways)))
		for i := 0; i < 50000; i++ {
			addr := uint64(rng.Intn(8*528*ways)) * mem.Line
			h, res := c.Probe(addr)
			if res != Hit {
				c.Install(h, addr)
			}
			got, ok := c.VictimAddr(h)
			if !ok || got != addr {
				t.Fatalf("ways %d: VictimAddr after install of %#x = %#x, %v", ways, addr, got, ok)
			}
		}
	}
}
