package cache

import (
	"testing"
	"testing/quick"

	"twolm/internal/mem"
)

func newAssoc(t *testing.T, capacity uint64, ways int) *Assoc {
	t.Helper()
	c, err := NewAssoc(capacity, ways)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewAssocValidation(t *testing.T) {
	if _, err := NewAssoc(mem.KiB, 0); err == nil {
		t.Error("0 ways accepted")
	}
	if _, err := NewAssoc(0, 1); err == nil {
		t.Error("0 capacity accepted")
	}
	if _, err := NewAssoc(mem.KiB, 3); err == nil {
		// 1 KiB = 16 lines, not a multiple of 3 ways.
		t.Error("non-dividing ways accepted")
	}
	c := newAssoc(t, 4*mem.KiB, 4)
	if c.Sets() != 16 || c.Ways() != 4 || c.Lines() != 64 {
		t.Errorf("sets=%d ways=%d lines=%d", c.Sets(), c.Ways(), c.Lines())
	}
}

func TestAssocHitAfterInstall(t *testing.T) {
	c := newAssoc(t, mem.KiB, 2)
	addr := uint64(5 * mem.Line)
	h, res := c.Probe(addr)
	if res != MissClean {
		t.Fatalf("cold probe = %v", res)
	}
	c.Install(h, addr)
	h2, res := c.Probe(addr)
	if res != Hit || h2 != h {
		t.Fatalf("probe after install = %v at %d (installed at %d)", res, h2, h)
	}
}

// TestAssocConflictsAbsorbed: a 2-way cache holds two aliasing lines
// where the direct-mapped cache would thrash — the paper's
// inflexibility finding, inverted.
func TestAssocConflictsAbsorbed(t *testing.T) {
	dm := newAssoc(t, mem.KiB, 1)
	tw := newAssoc(t, mem.KiB, 2)

	a := uint64(3 * mem.Line)
	// Aliases must be computed per-geometry: sets differ with ways.
	aliasOf := func(c *Assoc, addr uint64) uint64 { return addr + c.Sets()*mem.Line }

	// Direct mapped: installing the alias evicts the original.
	h, _ := dm.Probe(a)
	dm.Install(h, a)
	h2, _ := dm.Probe(aliasOf(dm, a))
	dm.Install(h2, aliasOf(dm, a))
	if _, res := dm.Probe(a); res == Hit {
		t.Error("direct-mapped cache kept both aliases")
	}

	// Two way: both fit.
	h, _ = tw.Probe(a)
	tw.Install(h, a)
	h2, _ = tw.Probe(aliasOf(tw, a))
	tw.Install(h2, aliasOf(tw, a))
	if _, res := tw.Probe(a); res != Hit {
		t.Error("2-way cache evicted the first alias")
	}
	if _, res := tw.Probe(aliasOf(tw, a)); res != Hit {
		t.Error("2-way cache lost the second alias")
	}
}

// TestAssocLRUReplacement: the least recently used way is evicted.
func TestAssocLRUReplacement(t *testing.T) {
	c := newAssoc(t, mem.KiB, 2) // 8 sets
	alias := func(n uint64) uint64 { return n * c.Sets() * mem.Line }

	h, _ := c.Probe(alias(0))
	c.Install(h, alias(0))
	h, _ = c.Probe(alias(1))
	c.Install(h, alias(1))
	// Touch alias(0) so alias(1) becomes LRU.
	if _, res := c.Probe(alias(0)); res != Hit {
		t.Fatal("lost alias(0)")
	}
	// Install a third alias: it must evict alias(1).
	h, res := c.Probe(alias(2))
	if res == Hit {
		t.Fatal("phantom hit")
	}
	if victim, ok := c.VictimAddr(h); !ok || victim != alias(1) {
		t.Errorf("victim = %#x, want %#x (the LRU way)", victim, alias(1))
	}
	c.Install(h, alias(2))
	if _, res := c.Probe(alias(0)); res != Hit {
		t.Error("MRU way was evicted")
	}
}

// TestAssocPrefersInvalidWay: misses fill empty ways before evicting.
func TestAssocPrefersInvalidWay(t *testing.T) {
	c := newAssoc(t, mem.KiB, 4)
	alias := func(n uint64) uint64 { return n * c.Sets() * mem.Line }
	for n := uint64(0); n < 4; n++ {
		h, res := c.Probe(alias(n))
		if res != MissClean {
			t.Fatalf("fill %d: %v (must use the invalid way)", n, res)
		}
		if _, ok := c.VictimAddr(h); ok {
			t.Fatalf("fill %d displaced a valid line", n)
		}
		c.Install(h, alias(n))
	}
	// All four resident.
	for n := uint64(0); n < 4; n++ {
		if _, res := c.Probe(alias(n)); res != Hit {
			t.Errorf("alias %d evicted during fill", n)
		}
	}
}

func TestAssocDirtyVictim(t *testing.T) {
	c := newAssoc(t, mem.KiB, 1)
	addr := uint64(0)
	h, _ := c.Probe(addr)
	c.Install(h, addr)
	c.MarkDirty(h)
	if !c.IsDirty(h) {
		t.Fatal("MarkDirty had no effect")
	}
	if _, res := c.Probe(addr + c.Sets()*mem.Line); res != MissDirty {
		t.Errorf("alias probe = %v, want miss-dirty", res)
	}
	c.Invalidate(h)
	if c.IsDirty(h) || c.ValidLines() != 0 {
		t.Error("Invalidate left state")
	}
}

func TestAssocVictimAddrRoundTrip(t *testing.T) {
	c := newAssoc(t, 4*mem.KiB, 4)
	f := func(lineRaw uint16) bool {
		addr := uint64(lineRaw) << mem.LineShift
		h, _ := c.Probe(addr)
		c.Install(h, addr)
		got, ok := c.VictimAddr(h)
		return ok && got == addr
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAssocOwnedFlag(t *testing.T) {
	c := newAssoc(t, mem.KiB, 2)
	h, _ := c.Probe(0)
	c.Install(h, 0)
	if c.LLCOwned(h) {
		t.Error("fresh line owned")
	}
	c.SetLLCOwned(h, true)
	if !c.LLCOwned(h) {
		t.Error("SetLLCOwned(true) had no effect")
	}
	c.SetLLCOwned(h, false)
	if c.LLCOwned(h) {
		t.Error("SetLLCOwned(false) had no effect")
	}
}

// TestAssocInstallClearsStaleFlags: re-allocating a slot must drop the
// victim's dirty and LLC-owned bits — a stale owned bit on the new
// occupant would let the IMC's Dirty Data Optimization skip a tag check
// for a line the on-chip hierarchy never acquired.
func TestAssocInstallClearsStaleFlags(t *testing.T) {
	c := newAssoc(t, mem.KiB, 1)
	victim := uint64(3 * mem.Line)
	h, _ := c.Probe(victim)
	c.Install(h, victim)
	c.MarkDirty(h)
	c.SetLLCOwned(h, true)

	// Conflicting install replaces the victim in the same slot.
	conflicting := victim + c.Sets()*mem.Line
	h2, res := c.Probe(conflicting)
	if h2 != h || res != MissDirty {
		t.Fatalf("conflict probe = handle %d res %v, want handle %d miss-dirty", h2, res, h)
	}
	c.Install(h2, conflicting)
	if c.LLCOwned(h2) {
		t.Error("Install preserved the victim's LLC-owned bit")
	}
	if c.IsDirty(h2) {
		t.Error("Install preserved the victim's dirty bit")
	}
}

func TestAssocForEachDirtyAndReset(t *testing.T) {
	c := newAssoc(t, mem.KiB, 2)
	want := map[uint64]bool{}
	for i := uint64(0); i < 6; i++ {
		addr := i * mem.Line
		h, _ := c.Probe(addr)
		c.Install(h, addr)
		if i%2 == 0 {
			c.MarkDirty(h)
			want[addr] = true
		}
	}
	got := map[uint64]bool{}
	c.ForEachDirty(func(addr uint64) { got[addr] = true })
	if len(got) != len(want) {
		t.Fatalf("ForEachDirty visited %d lines, want %d", len(got), len(want))
	}
	for a := range want {
		if !got[a] {
			t.Errorf("missing dirty line %#x", a)
		}
	}
	if c.DirtyLines() != uint64(len(want)) {
		t.Errorf("DirtyLines = %d", c.DirtyLines())
	}
	c.Reset()
	if c.ValidLines() != 0 || c.DirtyLines() != 0 {
		t.Error("Reset left lines")
	}
}

// TestWays1MatchesDirectMapped: the degenerate Assoc behaves exactly
// like the DirectMapped implementation on a shared random workload.
func TestWays1MatchesDirectMapped(t *testing.T) {
	dm := newCache(t, 2*mem.KiB)
	as := newAssoc(t, 2*mem.KiB, 1)
	// Same geometry.
	if dm.Sets() != as.Sets() {
		t.Fatalf("geometries differ: %d vs %d sets", dm.Sets(), as.Sets())
	}
	seed := uint64(12345)
	for i := 0; i < 5000; i++ {
		seed = seed*6364136223846793005 + 1442695040888963407
		addr := (seed % (64 * dm.Sets())) * mem.Line
		write := seed&(1<<63) != 0

		_, _, dres := dm.Lookup(addr)
		ah, ares := as.Probe(addr)
		if dres != ares {
			t.Fatalf("op %d: results diverge: dm=%v assoc=%v", i, dres, ares)
		}
		if dres != Hit {
			set, tag := dm.Index(addr)
			dm.Insert(set, tag)
			as.Install(ah, addr)
		}
		if write {
			set, _ := dm.Index(addr)
			dm.MarkDirty(set)
			as.MarkDirty(ah)
		}
	}
	if dm.DirtyLines() != as.DirtyLines() || dm.ValidLines() != as.ValidLines() {
		t.Errorf("final states diverge: dirty %d/%d valid %d/%d",
			dm.DirtyLines(), as.DirtyLines(), dm.ValidLines(), as.ValidLines())
	}
}
