package cache

import (
	"testing"
	"testing/quick"

	"twolm/internal/mem"
)

func newCache(t *testing.T, capacity uint64) *DirectMapped {
	t.Helper()
	c, err := New(capacity)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0); err == nil {
		t.Error("zero capacity accepted")
	}
	if _, err := New(100); err == nil {
		t.Error("non-line-multiple capacity accepted")
	}
	c := newCache(t, 64*mem.KiB)
	if c.Sets() != 1024 || c.Capacity() != 64*mem.KiB {
		t.Errorf("sets = %d, capacity = %d", c.Sets(), c.Capacity())
	}
}

func TestIndexRoundTrip(t *testing.T) {
	c := newCache(t, 64*mem.KiB)
	f := func(lineRaw uint32) bool {
		addr := uint64(lineRaw) << mem.LineShift
		set, tag := c.Index(addr)
		reconstructed := (uint64(tag)*c.Sets() + set) << mem.LineShift
		return reconstructed == addr && set < c.Sets()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestColdLookupIsCleanMiss(t *testing.T) {
	c := newCache(t, mem.KiB)
	_, _, res := c.Lookup(0)
	if res != MissClean {
		t.Errorf("cold lookup = %v, want miss-clean", res)
	}
}

func TestHitAfterInsert(t *testing.T) {
	c := newCache(t, mem.KiB)
	addr := uint64(5 * mem.Line)
	set, tag, _ := c.Lookup(addr)
	c.Insert(set, tag)
	if _, _, res := c.Lookup(addr); res != Hit {
		t.Errorf("lookup after insert = %v, want hit", res)
	}
}

// TestDirectMappedAliasing: two addresses capacity apart map to the
// same set and evict each other.
func TestDirectMappedAliasing(t *testing.T) {
	c := newCache(t, mem.KiB) // 16 sets
	a := uint64(3 * mem.Line)
	b := a + c.Capacity() // same set, different tag
	setA, tagA, _ := c.Lookup(a)
	setB, tagB, _ := c.Lookup(b)
	if setA != setB {
		t.Fatalf("aliasing addresses landed in different sets %d, %d", setA, setB)
	}
	if tagA == tagB {
		t.Fatal("aliasing addresses share a tag")
	}
	c.Insert(setA, tagA)
	if _, _, res := c.Lookup(b); res != MissClean {
		t.Errorf("clean occupant: lookup of alias = %v, want miss-clean", res)
	}
	c.MarkDirty(setA)
	if _, _, res := c.Lookup(b); res != MissDirty {
		t.Errorf("dirty occupant: lookup of alias = %v, want miss-dirty", res)
	}
	// Still a hit for the occupant itself.
	if _, _, res := c.Lookup(a); res != Hit {
		t.Errorf("occupant lookup = %v, want hit", res)
	}
}

func TestVictimAddr(t *testing.T) {
	c := newCache(t, mem.KiB)
	if _, ok := c.VictimAddr(0); ok {
		t.Error("invalid set reported a victim")
	}
	addr := uint64(7*mem.Line) + 3*c.Capacity()
	set, tag, _ := c.Lookup(addr)
	c.Insert(set, tag)
	victim, ok := c.VictimAddr(set)
	if !ok || victim != addr {
		t.Errorf("VictimAddr = %#x, %v; want %#x, true", victim, ok, addr)
	}
}

func TestInsertResetsDirtyAndOwned(t *testing.T) {
	c := newCache(t, mem.KiB)
	set, tag, _ := c.Lookup(0)
	c.Insert(set, tag)
	c.MarkDirty(set)
	c.SetLLCOwned(set, true)
	// Alias insert replaces the line; state must reset.
	c.Insert(set, tag+1)
	if c.IsDirty(set) {
		t.Error("insert did not clear dirty")
	}
	if c.LLCOwned(set) {
		t.Error("insert did not clear LLC-owned")
	}
}

func TestInvalidate(t *testing.T) {
	c := newCache(t, mem.KiB)
	set, tag, _ := c.Lookup(0)
	c.Insert(set, tag)
	c.MarkDirty(set)
	c.Invalidate(set)
	if _, _, res := c.Lookup(0); res != MissClean {
		t.Errorf("lookup after invalidate = %v, want miss-clean", res)
	}
	if c.IsDirty(set) {
		t.Error("invalidate left dirty bit")
	}
}

func TestLLCOwnedFlag(t *testing.T) {
	c := newCache(t, mem.KiB)
	set, tag, _ := c.Lookup(0)
	c.Insert(set, tag)
	if c.LLCOwned(set) {
		t.Error("fresh line owned")
	}
	c.SetLLCOwned(set, true)
	if !c.LLCOwned(set) {
		t.Error("SetLLCOwned(true) had no effect")
	}
	c.SetLLCOwned(set, false)
	if c.LLCOwned(set) {
		t.Error("SetLLCOwned(false) had no effect")
	}
}

func TestDirtyAndValidCounts(t *testing.T) {
	c := newCache(t, mem.KiB)
	for i := uint64(0); i < 8; i++ {
		set, tag, _ := c.Lookup(i * mem.Line)
		c.Insert(set, tag)
		if i%2 == 0 {
			c.MarkDirty(set)
		}
	}
	if got := c.ValidLines(); got != 8 {
		t.Errorf("ValidLines = %d, want 8", got)
	}
	if got := c.DirtyLines(); got != 4 {
		t.Errorf("DirtyLines = %d, want 4", got)
	}
	c.Reset()
	if c.ValidLines() != 0 || c.DirtyLines() != 0 {
		t.Error("Reset left valid or dirty lines")
	}
}

// TestFullCoverageNoAliasing: filling exactly the capacity with a
// contiguous array leaves every lookup a hit (the paper's 51 GiB-array
// hit benchmark relies on this).
func TestFullCoverageNoAliasing(t *testing.T) {
	c := newCache(t, 4*mem.KiB)
	lines := c.Sets()
	for i := uint64(0); i < lines; i++ {
		set, tag, _ := c.Lookup(i * mem.Line)
		c.Insert(set, tag)
	}
	for i := uint64(0); i < lines; i++ {
		if _, _, res := c.Lookup(i * mem.Line); res != Hit {
			t.Fatalf("line %d: %v, want hit", i, res)
		}
	}
}

func TestLookupResultString(t *testing.T) {
	if Hit.String() != "hit" || MissClean.String() != "miss-clean" || MissDirty.String() != "miss-dirty" {
		t.Error("unexpected LookupResult strings")
	}
	if LookupResult(9).String() == "" {
		t.Error("unknown result should render")
	}
}
