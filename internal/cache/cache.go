// Package cache implements the metadata store of the 2LM direct-mapped
// DRAM cache.
//
// The Cascade Lake DRAM cache is direct mapped at 64 B granularity with
// tags stored in the spare ECC bits of each DRAM line (Intel patent
// US 2017/0031821; the paper's Section IV). This package tracks, per
// set, the resident tag, a valid bit, a dirty bit, and an "LLC owned"
// bit used by the IMC's Dirty Data Optimization model. It implements
// pure metadata bookkeeping; the traffic consequences of lookups and
// fills are the IMC's business.
//
// The metadata array is a single flat []uint64 with one packed word
// per entry (tag in the high bits, flag bits in the low byte): eight
// sets per 64 B host cache line, no per-set indirection, so a probe is
// one load and the batched dispatch path in internal/imc can prefetch
// a chunk's tag words at full memory concurrency before probing them.
package cache

import (
	"fmt"

	"twolm/internal/fastdiv"
	"twolm/internal/mem"
)

// Flag bits of a packed entry word. The word layout is
// uint64(tag)<<tagShift | flags; an invalid entry is the zero word.
const (
	flagValid uint64 = 1 << iota
	flagDirty
	flagLLCOwned

	tagShift = 8
)

// packEntry builds a packed entry word.
func packEntry(tag uint32, flags uint64) uint64 {
	return uint64(tag)<<tagShift | flags
}

// entryTag extracts the tag from a packed word.
func entryTag(w uint64) uint32 { return uint32(w >> tagShift) }

// LookupResult classifies a tag check.
type LookupResult uint8

const (
	// Hit: the requested address is resident.
	Hit LookupResult = iota
	// MissClean: another (or no) address occupies the set and its data
	// is unmodified — eviction needs no writeback.
	MissClean
	// MissDirty: the aliasing occupant has been modified and must be
	// written back to NVRAM on eviction.
	MissDirty
)

// String implements fmt.Stringer.
func (r LookupResult) String() string {
	switch r {
	case Hit:
		return "hit"
	case MissClean:
		return "miss-clean"
	case MissDirty:
		return "miss-dirty"
	default:
		return fmt.Sprintf("LookupResult(%d)", uint8(r))
	}
}

// DirectMapped is the metadata array of a direct-mapped, 64 B-granular
// cache over a physical address space.
type DirectMapped struct {
	entries  []uint64
	sets     uint64
	setsDiv  fastdiv.Divisor
	capacity uint64
}

// New returns a direct-mapped cache with the given capacity in bytes
// (must be a positive multiple of the 64 B line size).
func New(capacity uint64) (*DirectMapped, error) {
	if capacity == 0 || capacity%mem.Line != 0 {
		return nil, fmt.Errorf("cache: capacity %d must be a positive multiple of %d", capacity, mem.Line)
	}
	sets := capacity / mem.Line
	return &DirectMapped{
		entries:  make([]uint64, sets),
		sets:     sets,
		setsDiv:  fastdiv.New(sets),
		capacity: capacity,
	}, nil
}

// Capacity returns the cache capacity in bytes.
func (c *DirectMapped) Capacity() uint64 { return c.capacity }

// Sets returns the number of sets (lines) in the cache.
func (c *DirectMapped) Sets() uint64 { return c.sets }

// Index splits an address into its set index and tag. The set count is
// fixed at construction, so the split uses a precomputed reciprocal
// instead of two divide instructions — this runs for every simulated
// demand line (the LLC filter sits in front of the whole pipeline).
func (c *DirectMapped) Index(addr uint64) (set uint64, tag uint32) {
	q, r := c.setsDiv.DivMod(addr >> mem.LineShift)
	return r, uint32(q)
}

// Lookup performs a tag check for addr and returns the set index, the
// requested tag, and the result. It does not modify state.
func (c *DirectMapped) Lookup(addr uint64) (set uint64, tag uint32, res LookupResult) {
	set, tag = c.Index(addr)
	return set, tag, c.LookupAt(set, tag)
}

// LookupAt performs the tag check for a (set, tag) pair previously
// derived from Index. Walkers over consecutive lines derive the pairs
// incrementally — the set of line+1 is set+1 mod Sets, carrying into
// the tag — instead of re-dividing per line.
func (c *DirectMapped) LookupAt(set uint64, tag uint32) LookupResult {
	w := c.entries[set]
	switch {
	case w&flagValid == 0:
		return MissClean
	case entryTag(w) == tag:
		return Hit
	case w&flagDirty != 0:
		return MissDirty
	default:
		return MissClean
	}
}

// VictimAddr reconstructs the physical address of the line currently
// occupying set; ok is false if the set is invalid.
func (c *DirectMapped) VictimAddr(set uint64) (addr uint64, ok bool) {
	w := c.entries[set]
	if w&flagValid == 0 {
		return 0, false
	}
	return (uint64(entryTag(w))*c.sets + set) << mem.LineShift, true
}

// Insert installs tag into set in the clean, not-LLC-owned state,
// replacing any previous occupant.
func (c *DirectMapped) Insert(set uint64, tag uint32) {
	c.entries[set] = packEntry(tag, flagValid)
}

// Invalidate drops the line in set without any writeback.
func (c *DirectMapped) Invalidate(set uint64) {
	c.entries[set] = 0
}

// MarkDirty sets the dirty bit of the line in set.
func (c *DirectMapped) MarkDirty(set uint64) {
	c.entries[set] |= flagDirty
}

// IsDirty reports whether the line in set is valid and dirty.
func (c *DirectMapped) IsDirty(set uint64) bool {
	w := c.entries[set]
	return w&flagValid != 0 && w&flagDirty != 0
}

// SetLLCOwned marks the resident line as held (in E/M state) by the
// on-chip cache hierarchy. The IMC model uses this for the Dirty Data
// Optimization: a writeback of a line the LLC owns needs no tag check.
func (c *DirectMapped) SetLLCOwned(set uint64, owned bool) {
	if owned {
		c.entries[set] |= flagLLCOwned
	} else {
		c.entries[set] &^= flagLLCOwned
	}
}

// LLCOwned reports whether the resident line is marked as LLC owned.
func (c *DirectMapped) LLCOwned(set uint64) bool {
	return c.entries[set]&flagLLCOwned != 0
}

// DirectEntries exposes the flat packed tag array, indexed by set.
// Callers may mutate words in place with the exported Entry*
// primitives — method-based and word-based access see the same state.
// The batched LLC filter in internal/core uses this to fold lookup,
// insert, and dirty-marking into one load and one store per operation.
func (c *DirectMapped) DirectEntries() []uint64 { return c.entries }

// StampSeqRun overwrites count consecutive sets starting at set with
// packed entries carrying the given flags and the tags of consecutive
// lines (tag increments at each set-index wrap) — the final state a
// sequential walk of count lines leaves when every visit installs with
// the same flags. The batched LLC filter in internal/core uses this to
// commit a folded range's residency in one store per set.
func (c *DirectMapped) StampSeqRun(set uint64, tag uint32, count, flags uint64) {
	stampSeqRun(c.entries, c.sets, set, tag, count, flags)
}

// DirtyLines returns the number of valid dirty lines. O(sets); intended
// for tests and reports, not hot paths.
func (c *DirectMapped) DirtyLines() uint64 {
	var n uint64
	for _, w := range c.entries {
		if w&flagValid != 0 && w&flagDirty != 0 {
			n++
		}
	}
	return n
}

// ValidLines returns the number of valid lines. O(sets).
func (c *DirectMapped) ValidLines() uint64 {
	var n uint64
	for _, w := range c.entries {
		if w&flagValid != 0 {
			n++
		}
	}
	return n
}

// Reset invalidates every set.
func (c *DirectMapped) Reset() {
	clear(c.entries)
}
