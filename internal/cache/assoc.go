// Set-associative tag store. The Cascade Lake DRAM cache is direct
// mapped (the paper's limitation #1: "the direct-mapped, insert on
// miss cache is inflexible and many conflicts can increase the miss
// rate"), but the repository also models N-way LRU variants so the
// ablation experiments can quantify how much associativity alone would
// recover — one of the future-hardware directions the paper's
// discussion raises.

package cache

import (
	"fmt"

	"twolm/internal/fastdiv"
	"twolm/internal/mem"
)

// Assoc is an N-way set-associative, 64 B-granular tag store with LRU
// replacement. Ways=1 degenerates to a direct-mapped cache and is the
// configuration matching the real hardware.
//
// Like DirectMapped, the tag array is a single flat []uint64 of packed
// entry words (the ways of a set adjacent), so the Ways==1 hot path is
// one load per probe and bucketed dispatch sweeps it sequentially. LRU
// stamps live in a parallel slice that the Ways==1 path never touches.
//
// Entries are addressed by opaque handles returned from Probe; a
// handle stays valid until the next Probe of the same set.
type Assoc struct {
	entries  []uint64
	stamps   []uint64
	clock    uint64
	sets     uint64
	setsDiv  fastdiv.Divisor
	ways     uint64
	waysDiv  fastdiv.Divisor
	capacity uint64
}

// NewAssoc returns a tag store of the given capacity in bytes and
// associativity.
func NewAssoc(capacity uint64, ways int) (*Assoc, error) {
	if ways < 1 {
		return nil, fmt.Errorf("cache: ways %d must be positive", ways)
	}
	if capacity == 0 || capacity%(mem.Line*uint64(ways)) != 0 {
		return nil, fmt.Errorf("cache: capacity %d must be a positive multiple of %d ways x %d B lines",
			capacity, ways, mem.Line)
	}
	lines := capacity / mem.Line
	sets := lines / uint64(ways)
	return &Assoc{
		entries:  make([]uint64, lines),
		stamps:   make([]uint64, lines),
		sets:     sets,
		setsDiv:  fastdiv.New(sets),
		ways:     uint64(ways),
		waysDiv:  fastdiv.New(uint64(ways)),
		capacity: capacity,
	}, nil
}

// Capacity returns the store capacity in bytes.
func (c *Assoc) Capacity() uint64 { return c.capacity }

// Sets returns the number of sets.
func (c *Assoc) Sets() uint64 { return c.sets }

// Ways returns the associativity.
func (c *Assoc) Ways() int { return int(c.ways) }

// Lines returns the number of line slots.
func (c *Assoc) Lines() uint64 { return c.sets * c.ways }

// index splits an address into set and tag. The set count is fixed at
// construction, so the split uses a precomputed reciprocal instead of
// two divide instructions — Probe and Install run once per simulated
// demand line reaching the memory controller.
func (c *Assoc) index(addr uint64) (set uint64, tag uint32) {
	q, r := c.setsDiv.DivMod(addr >> mem.LineShift)
	return r, uint32(q)
}

// Index splits an address into set and tag, for callers that walk
// consecutive lines and advance the pair incrementally (the set of
// line+1 is set+1 mod Sets, carrying into the tag) before probing with
// ProbeAt.
func (c *Assoc) Index(addr uint64) (set uint64, tag uint32) {
	return c.index(addr)
}

// Probe performs a tag check for addr. On a hit, the returned handle
// identifies the resident entry (its LRU stamp is refreshed). On a
// miss, the handle identifies the replacement victim — an invalid way
// if one exists (MissClean), otherwise the least recently used way
// (MissClean or MissDirty by its state).
//
// Ways==1 — the hardware configuration every headline experiment runs —
// takes a specialized path: the single way is the hit candidate and the
// victim at once, and the LRU stamp clock is never consulted for victim
// choice, so the way loop and the stamp refresh are skipped entirely.
// Results and victim selection are identical to the generic path (the
// direct-mapped equivalence test pins this).
func (c *Assoc) Probe(addr uint64) (handle uint64, res LookupResult) {
	set, tag := c.index(addr)
	return c.ProbeAt(set, tag)
}

// ProbeTag is Probe returning the tag alongside, so a caller on the
// miss path can hand it straight to InstallTag without re-dividing the
// address.
func (c *Assoc) ProbeTag(addr uint64) (handle uint64, tag uint32, res LookupResult) {
	set, tag := c.index(addr)
	handle, res = c.ProbeAt(set, tag)
	return handle, tag, res
}

// ProbeAt is Probe for a (set, tag) pair previously derived from Index.
func (c *Assoc) ProbeAt(set uint64, tag uint32) (handle uint64, res LookupResult) {
	if c.ways == 1 {
		w := c.entries[set]
		switch {
		case w&flagValid == 0:
			return set, MissClean
		case entryTag(w) == tag:
			return set, Hit
		case w&flagDirty != 0:
			return set, MissDirty
		default:
			return set, MissClean
		}
	}
	base := set * c.ways
	victim := base
	victimStamp := ^uint64(0)
	for way := uint64(0); way < c.ways; way++ {
		h := base + way
		w := c.entries[h]
		if w&flagValid == 0 {
			// Remember the first invalid way as the preferred victim,
			// but keep scanning for a hit.
			if victimStamp != 0 {
				victim, victimStamp = h, 0
			}
			continue
		}
		if entryTag(w) == tag {
			c.clock++
			c.stamps[h] = c.clock
			return h, Hit
		}
		if c.stamps[h] < victimStamp {
			victim, victimStamp = h, c.stamps[h]
		}
	}
	w := c.entries[victim]
	if w&flagValid == 0 {
		return victim, MissClean
	}
	if w&flagDirty != 0 {
		return victim, MissDirty
	}
	return victim, MissClean
}

// Install places addr's line at handle in the clean, unowned state.
// With Ways==1 the LRU stamp clock is never read, so it is not
// maintained.
func (c *Assoc) Install(handle, addr uint64) {
	_, tag := c.index(addr)
	c.InstallTag(handle, tag)
}

// InstallTag is Install with the tag already split off the address
// (typically returned by ProbeTag, saving the re-division).
func (c *Assoc) InstallTag(handle uint64, tag uint32) {
	c.entries[handle] = packEntry(tag, flagValid)
	if c.ways == 1 {
		return
	}
	c.clock++
	c.stamps[handle] = c.clock
}

// VictimAddr reconstructs the address of the line at handle.
func (c *Assoc) VictimAddr(handle uint64) (addr uint64, ok bool) {
	w := c.entries[handle]
	if w&flagValid == 0 {
		return 0, false
	}
	set := c.waysDiv.Div(handle)
	return (uint64(entryTag(w))*c.sets + set) << mem.LineShift, true
}

// MarkDirty sets the dirty bit at handle.
func (c *Assoc) MarkDirty(handle uint64) { c.entries[handle] |= flagDirty }

// IsDirty reports whether the entry at handle is valid and dirty.
func (c *Assoc) IsDirty(handle uint64) bool {
	w := c.entries[handle]
	return w&flagValid != 0 && w&flagDirty != 0
}

// Invalidate drops the entry at handle.
func (c *Assoc) Invalidate(handle uint64) {
	c.entries[handle] = 0
	c.stamps[handle] = 0
}

// SetLLCOwned marks the entry at handle as held by the on-chip
// hierarchy (the Dirty Data Optimization precondition).
func (c *Assoc) SetLLCOwned(handle uint64, owned bool) {
	if owned {
		c.entries[handle] |= flagLLCOwned
	} else {
		c.entries[handle] &^= flagLLCOwned
	}
}

// LLCOwned reports the LLC-owned flag at handle.
func (c *Assoc) LLCOwned(handle uint64) bool {
	return c.entries[handle]&flagLLCOwned != 0
}

// Exported packed-entry primitives for the batched controller paths:
// with the tag array flattened into a single []uint64, the bucketed
// drain in internal/imc folds probe + install + flag updates into one
// load and one store per request. Only the Ways==1 layout is exposed —
// the generic path keeps going through Probe/Install.
const (
	// EntryValid, EntryDirty, EntryLLCOwned are the flag bits of a
	// packed tag word, below EntryTagShift.
	EntryValid    uint64 = flagValid
	EntryDirty    uint64 = flagDirty
	EntryLLCOwned uint64 = flagLLCOwned
)

// EntryTagOf extracts the tag of a packed tag word.
func EntryTagOf(w uint64) uint32 { return entryTag(w) }

// PackEntry builds a packed tag word from a tag and flag bits.
func PackEntry(tag uint32, flags uint64) uint64 { return packEntry(tag, flags) }

// DirectEntries exposes the flat packed tag array when the store is
// direct mapped (Ways == 1), indexed by set; nil otherwise. Callers may
// mutate words in place with the Entry* primitives — handle-based and
// word-based access see the same state.
func (c *Assoc) DirectEntries() []uint64 {
	if c.ways != 1 {
		return nil
	}
	return c.entries
}

// StampSeqRun overwrites count consecutive sets starting at set with
// packed entries carrying the given flags and the tags of consecutive
// lines: the first stamped set receives tag, and the tag increments at
// each set-index wrap — exactly the final state a walk over count
// consecutive lines would leave when every visit installs with the same
// flags. Direct-mapped stores only (Ways == 1); the sequential fold in
// internal/imc guards on DirectEntries before calling.
func (c *Assoc) StampSeqRun(set uint64, tag uint32, count, flags uint64) {
	stampSeqRun(c.entries, c.sets, set, tag, count, flags)
}

// stampSeqRun is the shared bulk-stamp kernel of Assoc.StampSeqRun and
// DirectMapped.StampSeqRun: one packed-word store per set, with the tag
// carry folded into the wrap branch.
func stampSeqRun(entries []uint64, sets, set uint64, tag uint32, count, flags uint64) {
	w := packEntry(tag, flags)
	for i := uint64(0); i < count; i++ {
		entries[set] = w
		set++
		if set == sets {
			set = 0
			tag++
			w = packEntry(tag, flags)
		}
	}
}

// DirtyLines returns the number of valid dirty lines. O(lines).
func (c *Assoc) DirtyLines() uint64 {
	var n uint64
	for _, w := range c.entries {
		if w&flagValid != 0 && w&flagDirty != 0 {
			n++
		}
	}
	return n
}

// ValidLines returns the number of valid lines. O(lines).
func (c *Assoc) ValidLines() uint64 {
	var n uint64
	for _, w := range c.entries {
		if w&flagValid != 0 {
			n++
		}
	}
	return n
}

// ForEachDirty calls fn with the address of every valid dirty line.
func (c *Assoc) ForEachDirty(fn func(addr uint64)) {
	for h := range c.entries {
		if c.IsDirty(uint64(h)) {
			if addr, ok := c.VictimAddr(uint64(h)); ok {
				fn(addr)
			}
		}
	}
}

// Reset invalidates every entry, returning the tag store to its
// as-constructed state without allocating. Direct-mapped stores skip
// the LRU stamp clear: Ways==1 never reads or writes a stamp (Probe
// and InstallTag take the specialized path), so for the common sweep
// geometry this halves the words zeroed per controller recycle.
func (c *Assoc) Reset() {
	clear(c.entries)
	if c.ways > 1 {
		clear(c.stamps)
	}
	c.clock = 0
}
