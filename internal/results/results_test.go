package results

import (
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tab := NewTable("My Title", "name", "value")
	tab.AddRow("alpha", 1.5)
	tab.AddRow("beta-longer", 42)
	out := tab.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// Title, underline, header, rule, two rows.
	if len(lines) != 6 {
		t.Fatalf("rendered %d lines:\n%s", len(lines), out)
	}
	if lines[0] != "My Title" {
		t.Errorf("title line = %q", lines[0])
	}
	if !strings.HasPrefix(lines[2], "name") {
		t.Errorf("header line = %q", lines[2])
	}
	if !strings.Contains(lines[4], "1.50") {
		t.Errorf("float cell not formatted: %q", lines[4])
	}
	if !strings.Contains(lines[5], "42") {
		t.Errorf("int cell missing: %q", lines[5])
	}
	// Columns align: "value" column starts at the same offset in all
	// data rows.
	h := strings.Index(lines[2], "value")
	if !strings.HasPrefix(lines[4][h:], "1.50") {
		t.Errorf("column misaligned:\n%s", out)
	}
}

func TestTableWithoutTitle(t *testing.T) {
	tab := NewTable("", "a")
	tab.AddRow("x")
	out := tab.String()
	if strings.Contains(out, "=") {
		t.Errorf("untitled table rendered a title underline:\n%s", out)
	}
}

func TestTableCSV(t *testing.T) {
	tab := NewTable("t", "a", "b")
	tab.AddRow("plain", "with,comma")
	tab.AddRow(`has"quote`, 7)
	var sb strings.Builder
	if err := tab.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("CSV lines = %d", len(lines))
	}
	if lines[0] != "a,b" {
		t.Errorf("header = %q", lines[0])
	}
	if lines[1] != `plain,"with,comma"` {
		t.Errorf("comma cell not quoted: %q", lines[1])
	}
	if lines[2] != `"has""quote",7` {
		t.Errorf("quote cell not escaped: %q", lines[2])
	}
}

func TestBarChart(t *testing.T) {
	c := NewBarChart("BW", "GB/s")
	c.Add("dram", 100)
	c.Add("nvram", 25)
	out := c.String()
	if !strings.Contains(out, "BW") {
		t.Errorf("missing title:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("chart lines = %d:\n%s", len(lines), out)
	}
	dramBars := strings.Count(lines[1], "#")
	nvramBars := strings.Count(lines[2], "#")
	if dramBars != 50 {
		t.Errorf("max bar = %d chars, want full width 50", dramBars)
	}
	if nvramBars < 10 || nvramBars > 14 {
		t.Errorf("quarter bar = %d chars, want ~12", nvramBars)
	}
	if !strings.Contains(lines[2], "25.00 GB/s") {
		t.Errorf("value missing: %q", lines[2])
	}
}

func TestBarChartAllZero(t *testing.T) {
	c := NewBarChart("z", "x")
	c.Add("a", 0)
	out := c.String()
	if strings.Contains(out, "#") {
		t.Errorf("zero-valued chart drew bars:\n%s", out)
	}
}
