// Package results renders experiment output: aligned text tables,
// simple ASCII bar charts for terminal inspection, and CSV for
// plotting. The reproduction harness (cmd/repro) writes one artifact
// per paper table/figure through this package.
package results

import (
	"fmt"
	"io"
	"strings"

	"twolm/internal/telemetry"
)

// Table is a simple column-oriented result table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// NewTable returns a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// widths computes per-column display widths.
func (t *Table) widths() []int {
	w := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		w[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(w) && len(c) > w[i] {
				w[i] = len(c)
			}
		}
	}
	return w
}

// Fprint writes the table in aligned text form.
func (t *Table) Fprint(w io.Writer) error {
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "%s\n%s\n", t.Title, strings.Repeat("=", len(t.Title))); err != nil {
			return err
		}
	}
	widths := t.widths()
	writeRow := func(cells []string) error {
		var sb strings.Builder
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		_, err := fmt.Fprintln(w, strings.TrimRight(sb.String(), " "))
		return err
	}
	if err := writeRow(t.Headers); err != nil {
		return err
	}
	total := len(widths) - 1
	for _, x := range widths {
		total += x + 1
	}
	if _, err := fmt.Fprintln(w, strings.Repeat("-", total)); err != nil {
		return err
	}
	for _, r := range t.Rows {
		if err := writeRow(r); err != nil {
			return err
		}
	}
	return nil
}

// String renders the table.
func (t *Table) String() string {
	var sb strings.Builder
	_ = t.Fprint(&sb)
	return sb.String()
}

// WriteCSV emits the table as CSV (headers + rows), delegating to the
// repository's one CSV convention in internal/telemetry: cells
// containing commas, quotes or newlines are quoted. The emitted bytes
// are identical to the quoting logic this method carried before the
// telemetry package existed.
func (t *Table) WriteCSV(w io.Writer) error {
	return telemetry.WriteCSVRows(w, t.Headers, t.Rows)
}

// Bar is one bar of a bar chart.
type Bar struct {
	Label string
	Value float64
}

// BarChart renders horizontal ASCII bars scaled to width characters,
// with values printed in the given unit. It is the terminal stand-in
// for the paper's bandwidth bar figures.
type BarChart struct {
	Title string
	Unit  string
	Width int
	Bars  []Bar
}

// NewBarChart returns a chart with a default width of 50 characters.
func NewBarChart(title, unit string) *BarChart {
	return &BarChart{Title: title, Unit: unit, Width: 50}
}

// Add appends one bar.
func (c *BarChart) Add(label string, value float64) {
	c.Bars = append(c.Bars, Bar{Label: label, Value: value})
}

// Fprint renders the chart.
func (c *BarChart) Fprint(w io.Writer) error {
	if c.Title != "" {
		if _, err := fmt.Fprintf(w, "%s\n", c.Title); err != nil {
			return err
		}
	}
	maxVal, maxLabel := 0.0, 0
	for _, b := range c.Bars {
		if b.Value > maxVal {
			maxVal = b.Value
		}
		if len(b.Label) > maxLabel {
			maxLabel = len(b.Label)
		}
	}
	for _, b := range c.Bars {
		n := 0
		if maxVal > 0 {
			n = int(b.Value / maxVal * float64(c.Width))
		}
		if _, err := fmt.Fprintf(w, "  %-*s |%s %.2f %s\n",
			maxLabel, b.Label, strings.Repeat("#", n), b.Value, c.Unit); err != nil {
			return err
		}
	}
	return nil
}

// String renders the chart.
func (c *BarChart) String() string {
	var sb strings.Builder
	_ = c.Fprint(&sb)
	return sb.String()
}
