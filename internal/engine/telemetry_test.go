package engine

import (
	"bytes"
	"context"
	"sync"
	"testing"

	"twolm/internal/core"
	"twolm/internal/dram"
	"twolm/internal/imc"
	"twolm/internal/nvram"
	"twolm/internal/telemetry"
)

// newTestSerialChannels builds the single-controller reference with a
// multi-channel DRAM module, so its per-channel CAS counters can be
// compared element-wise against a sharded run's concatenated shards.
func newTestSerialChannels(t *testing.T, channels int, policy imc.Policy, opts ...imc.Option) *imc.Controller {
	t.Helper()
	d, err := dram.New(channels, testDRAM)
	if err != nil {
		t.Fatal(err)
	}
	nv, err := nvram.New(1, testNVRAM)
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := imc.New(d, nv, append([]imc.Option{imc.WithPolicy(policy)}, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	return ctrl
}

// telemetryPolicies is the differential-test policy matrix: every
// ablation crossed with direct-mapped and 4-way associativity.
func telemetryPolicies() map[string]imc.Policy {
	base := map[string]imc.Policy{}
	hw := imc.HardwarePolicy()
	base["hardware"] = hw
	noWA := hw
	noWA.WriteAllocate = false
	base["no-write-allocate"] = noWA
	noRA := hw
	noRA.ReadAllocate = false
	base["no-read-allocate"] = noRA
	noDDO := hw
	noDDO.DisableDDO = true
	base["no-ddo"] = noDDO

	out := map[string]imc.Policy{}
	for name, p := range base {
		p1 := p
		p1.Ways = 1
		out[name+"-w1"] = p1
		p4 := p
		p4.Ways = 4
		out[name+"-w4"] = p4
	}
	return out
}

// renderSeries serializes a recorded series both ways for byte-level
// comparison.
func renderSeries(t *testing.T, rec *telemetry.Recorder) (csv, js []byte) {
	t.Helper()
	var cbuf, jbuf bytes.Buffer
	if err := rec.WriteCSV(&cbuf); err != nil {
		t.Fatal(err)
	}
	if err := rec.WriteJSON(&jbuf); err != nil {
		t.Fatal(err)
	}
	return cbuf.Bytes(), jbuf.Bytes()
}

// TestTelemetrySerialVsSharded is the tentpole determinism property of
// the telemetry surface: over the same op stream, a serial
// imc.Controller with an attached recorder and a sharded parallel
// replay record byte-identical CSV and JSON series — same demand
// sample points, same merged counters, same concatenated per-channel
// CAS slices — for every policy ablation at Ways 1 and 4, and the
// series is identical across repeated runs.
func TestTelemetrySerialVsSharded(t *testing.T) {
	const (
		channels = 6
		workers  = 4
		every    = 512
		nops     = 20000
	)
	for name, policy := range telemetryPolicies() {
		ops := randomOps(int64(len(name)), nops)

		runSerial := func() (csv, js []byte) {
			rec := telemetry.NewRecorder()
			ctrl := newTestSerialChannels(t, channels, policy, imc.WithTelemetry(rec, every))
			// One-line ranges keep the hook firing per op, matching the
			// sharded replay's per-op demand clock.
			for _, op := range ops {
				if op.Write {
					ctrl.LLCWriteRange(op.Addr, 1)
				} else {
					ctrl.LLCReadRange(op.Addr, 1)
				}
			}
			ctrl.FlushTelemetry()
			return renderSeries(t, rec)
		}
		runSharded := func() (csv, js []byte) {
			rec := telemetry.NewRecorder()
			sharded := newTestSharded(t, channels, policy)
			sharded.SetTelemetry(rec, every)
			sharded.ReplayParallel(ops, workers)
			sharded.FlushTelemetry()
			return renderSeries(t, rec)
		}

		sCSV, sJSON := runSerial()
		pCSV, pJSON := runSharded()
		if len(sCSV) == 0 || !bytes.Contains(sCSV, []byte("\n")) {
			t.Fatalf("%s: serial recorder produced no series", name)
		}
		if !bytes.Equal(sCSV, pCSV) {
			t.Errorf("%s: CSV series diverge between serial and sharded runs:\nserial:\n%s\nsharded:\n%s",
				name, sCSV, pCSV)
		}
		if !bytes.Equal(sJSON, pJSON) {
			t.Errorf("%s: JSON series diverge between serial and sharded runs", name)
		}

		// Repeated runs are byte-identical too.
		sCSV2, sJSON2 := runSerial()
		pCSV2, pJSON2 := runSharded()
		if !bytes.Equal(sCSV, sCSV2) || !bytes.Equal(sJSON, sJSON2) {
			t.Errorf("%s: serial series not reproducible across runs", name)
		}
		if !bytes.Equal(pCSV, pCSV2) || !bytes.Equal(pJSON, pJSON2) {
			t.Errorf("%s: sharded series not reproducible across runs", name)
		}
	}
}

// TestTelemetrySeqFoldBoundaries pins telemetry byte-identity across
// the closed-form sequential fold: a system streaming SeqPass through
// the folded Range paths and a system forced down the per-line demand
// path by an installed tap record byte-identical Recorder CSV and JSON
// series — in both operating modes, at sampling intervals chosen to
// land mid-segment (inside the fold's probe wrap and uniform remainder)
// so the demand-line boundary chunking is what is being compared.
func TestTelemetrySeqFoldBoundaries(t *testing.T) {
	for _, mode := range []core.Mode{core.Mode2LM, core.Mode1LM} {
		for _, every := range []uint64{777, 4096} {
			run := func(perLine bool) (csv, js []byte) {
				sys, region, err := NewThroughputSystem(mode, 8192)
				if err != nil {
					t.Fatal(err)
				}
				if perLine {
					sys.SetTap(func(op core.TapOp, addr uint64) {})
				}
				rec := telemetry.NewRecorder()
				sys.SetTelemetry(rec, every)
				for pass := 0; pass < 2; pass++ {
					SeqPass(sys, region)
				}
				sys.FlushTelemetry()
				if rec.Len() == 0 {
					t.Fatalf("mode=%v every=%d perLine=%v: no samples recorded", mode, every, perLine)
				}
				return renderSeries(t, rec)
			}
			foldCSV, foldJSON := run(false)
			lineCSV, lineJSON := run(true)
			if !bytes.Equal(foldCSV, lineCSV) {
				t.Errorf("mode=%v every=%d: CSV series diverge between folded and per-line runs", mode, every)
			}
			if !bytes.Equal(foldJSON, lineJSON) {
				t.Errorf("mode=%v every=%d: JSON series diverge between folded and per-line runs", mode, every)
			}
		}
	}
}

// TestTelemetryShardedSamplePoints pins the demand-boundary rule: with
// interval E, samples land exactly at multiples of E plus a final
// flush sample at the stream tail.
func TestTelemetryShardedSamplePoints(t *testing.T) {
	const every = 1000
	ops := randomOps(11, 4500)
	rec := telemetry.NewRecorder()
	s := newTestSharded(t, 6, imc.HardwarePolicy())
	s.SetTelemetry(rec, every)
	s.ReplayParallel(ops, 4)
	s.FlushTelemetry()
	want := []uint64{1000, 2000, 3000, 4000, 4500}
	if rec.Len() != len(want) {
		t.Fatalf("recorded %d samples, want %d", rec.Len(), len(want))
	}
	for i, sample := range rec.Samples() {
		if sample.Demand != want[i] {
			t.Errorf("sample %d at demand %d, want %d", i, sample.Demand, want[i])
		}
	}
	// Flushing again without progress records nothing.
	s.FlushTelemetry()
	if rec.Len() != len(want) {
		t.Error("idle FlushTelemetry recorded a duplicate sample")
	}
}

// TestCountersDuringReplayParallel is the regression test for the
// mid-run observation race: Counters, ChannelCounters and Snapshot
// used to read shard state while replay workers were writing it. Under
// the documented contract they now block until the replay completes;
// this test drives them concurrently with a parallel replay and must
// stay clean under -race.
func TestCountersDuringReplayParallel(t *testing.T) {
	ops := randomOps(99, 100000)
	s := newTestSharded(t, 6, imc.HardwarePolicy())
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			_ = s.Counters()
			_ = s.ChannelCounters()
			_ = s.Snapshot()
		}
	}()
	s.ReplayParallel(ops, 4)
	<-done

	serial := newTestSerial(t, imc.HardwarePolicy())
	replaySerial(serial, ops)
	if got, want := s.Counters(), serial.Counters(); got != want {
		t.Errorf("counters after concurrent observation diverge from serial:\n sharded %v\n serial  %v", got, want)
	}
}

// TestShardedSnapshotChannels: the sharded snapshot's channel slices
// concatenate the shards in channel order and agree with the serial
// controller's per-channel DRAM counters.
func TestShardedSnapshotChannels(t *testing.T) {
	const channels = 3
	ops := randomOps(5, 8000)

	s := newTestSharded(t, channels, imc.HardwarePolicy())
	s.Replay(ops)
	snap := s.Snapshot()
	if len(snap.ChannelReads) != channels || len(snap.ChannelWrites) != channels {
		t.Fatalf("snapshot has %d/%d channel slots, want %d",
			len(snap.ChannelReads), len(snap.ChannelWrites), channels)
	}

	serial := newTestSerialChannels(t, channels, imc.HardwarePolicy())
	for _, op := range ops {
		if op.Write {
			serial.LLCWrite(op.Addr)
		} else {
			serial.LLCRead(op.Addr)
		}
	}
	want := serial.Snapshot()
	for i := 0; i < channels; i++ {
		if snap.ChannelReads[i] != want.ChannelReads[i] || snap.ChannelWrites[i] != want.ChannelWrites[i] {
			t.Errorf("channel %d: sharded (%d,%d) vs serial (%d,%d)",
				i, snap.ChannelReads[i], snap.ChannelWrites[i],
				want.ChannelReads[i], want.ChannelWrites[i])
		}
	}
}

// TestRunJobsObserved: the completion callback fires once per job on
// both the serial and pooled paths, and outcomes stay in job order.
func TestRunJobsObserved(t *testing.T) {
	jobs := make([]Job, 8)
	for i := range jobs {
		jobs[i] = Job{Name: string(rune('a' + i)), Run: func(context.Context) ([]Artifact, error) { return nil, nil }}
	}
	for _, workers := range []int{1, 4} {
		var seen int
		var mu sync.Mutex
		outs := RunJobsObserved(context.Background(), jobs, workers, func(o Outcome) {
			mu.Lock()
			seen++
			mu.Unlock()
		})
		if seen != len(jobs) {
			t.Errorf("workers=%d: observed %d completions, want %d", workers, seen, len(jobs))
		}
		for i, o := range outs {
			if o.Job != jobs[i].Name {
				t.Errorf("workers=%d: outcome %d is %q, want %q", workers, i, o.Job, jobs[i].Name)
			}
		}
	}
}
