package engine

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"

	"twolm/internal/imc"
	"twolm/internal/results"
)

// countingJobs builds n jobs that record execution and return one
// artifact carrying their index.
func countingJobs(n int, ran *atomic.Int64) []Job {
	jobs := make([]Job, n)
	for i := 0; i < n; i++ {
		i := i
		jobs[i] = Job{Name: fmt.Sprintf("job%02d", i), Run: func(context.Context) ([]Artifact, error) {
			ran.Add(1)
			t := results.NewTable(fmt.Sprintf("table %d", i), "col")
			return []Artifact{{Name: fmt.Sprintf("art%02d", i), Table: t}}, nil
		}}
	}
	return jobs
}

// TestRunJobsOrderIndependent: outcomes arrive in job order with the
// right artifacts for every worker count, including worker counts
// beyond the job count.
func TestRunJobsOrderIndependent(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 4, 32} {
		var ran atomic.Int64
		jobs := countingJobs(9, &ran)
		outs := RunJobs(jobs, workers)
		if len(outs) != len(jobs) {
			t.Fatalf("workers=%d: %d outcomes for %d jobs", workers, len(outs), len(jobs))
		}
		if ran.Load() != int64(len(jobs)) {
			t.Errorf("workers=%d: ran %d of %d jobs", workers, ran.Load(), len(jobs))
		}
		for i, o := range outs {
			if o.Job != jobs[i].Name {
				t.Errorf("workers=%d: outcome %d is %q, want %q", workers, i, o.Job, jobs[i].Name)
			}
			if o.Err != nil || len(o.Artifacts) != 1 || o.Artifacts[0].Name != fmt.Sprintf("art%02d", i) {
				t.Errorf("workers=%d: outcome %d artifacts wrong: %+v err=%v", workers, i, o.Artifacts, o.Err)
			}
		}
	}
}

// TestRunJobsErrorIsolation: one failing job doesn't disturb its
// siblings, and FirstError reports the earliest failure in job order.
func TestRunJobsErrorIsolation(t *testing.T) {
	sentinel := errors.New("boom")
	jobs := []Job{
		{Name: "ok1", Run: func(context.Context) ([]Artifact, error) { return nil, nil }},
		{Name: "bad", Run: func(context.Context) ([]Artifact, error) { return nil, sentinel }},
		{Name: "ok2", Run: func(context.Context) ([]Artifact, error) { return nil, nil }},
	}
	outs := RunJobs(jobs, 3)
	if outs[0].Err != nil || outs[2].Err != nil {
		t.Errorf("healthy jobs failed: %v / %v", outs[0].Err, outs[2].Err)
	}
	if !errors.Is(outs[1].Err, sentinel) {
		t.Errorf("outs[1].Err = %v, want sentinel", outs[1].Err)
	}
	err := FirstError(outs)
	if !errors.Is(err, sentinel) || !strings.Contains(err.Error(), "bad") {
		t.Errorf("FirstError = %v", err)
	}
}

// TestRunJobsPanicRecovered: a panicking job becomes an error outcome
// rather than tearing down the pool.
func TestRunJobsPanicRecovered(t *testing.T) {
	jobs := []Job{
		{Name: "panics", Run: func(context.Context) ([]Artifact, error) { panic("kaboom") }},
		{Name: "fine", Run: func(context.Context) ([]Artifact, error) { return nil, nil }},
	}
	outs := RunJobs(jobs, 2)
	if outs[0].Err == nil || !strings.Contains(outs[0].Err.Error(), "kaboom") {
		t.Errorf("panic not converted: %v", outs[0].Err)
	}
	if outs[1].Err != nil {
		t.Errorf("sibling failed: %v", outs[1].Err)
	}
}

// TestRunJobsObservedCancelled: cancelling the pool context stops the
// run at the next job boundary, every job still gets an outcome (and
// an observe callback), and skipped jobs carry ctx.Err().
func TestRunJobsObservedCancelled(t *testing.T) {
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		var ran, observed atomic.Int64
		jobs := make([]Job, 50)
		for i := range jobs {
			jobs[i] = Job{Name: fmt.Sprintf("job%02d", i), Run: func(ctx context.Context) ([]Artifact, error) {
				// Cancel from inside job 0 so at least one job ran and
				// at least the not-yet-started tail is skipped.
				cancel()
				ran.Add(1)
				return nil, ctx.Err()
			}}
		}
		outs := RunJobsObserved(ctx, jobs, workers, func(Outcome) { observed.Add(1) })
		cancel()
		if len(outs) != len(jobs) {
			t.Fatalf("workers=%d: %d outcomes for %d jobs", workers, len(outs), len(jobs))
		}
		if observed.Load() != int64(len(jobs)) {
			t.Errorf("workers=%d: observe fired %d times, want %d", workers, observed.Load(), len(jobs))
		}
		if ran.Load() >= int64(len(jobs)) {
			t.Errorf("workers=%d: cancellation skipped nothing (%d ran)", workers, ran.Load())
		}
		var skipped int
		for i, o := range outs {
			if o.Job != jobs[i].Name {
				t.Fatalf("workers=%d: outcome %d is %q, want %q", workers, i, o.Job, jobs[i].Name)
			}
			if errors.Is(o.Err, context.Canceled) {
				skipped++
			}
		}
		if skipped == 0 {
			t.Errorf("workers=%d: no outcome carries context.Canceled", workers)
		}
	}
}

// TestMergeCounters: field-wise sum, independent of argument order.
func TestMergeCounters(t *testing.T) {
	a := imc.Counters{LLCRead: 1, DRAMRead: 2, NVRAMWrite: 3}
	b := imc.Counters{LLCRead: 10, DRAMWrite: 5}
	c := imc.Counters{NVRAMRead: 7, NVRAMWrite: 1}
	ab := MergeCounters(a, b, c)
	ba := MergeCounters(c, b, a)
	if ab != ba {
		t.Errorf("merge order-dependent: %v vs %v", ab, ba)
	}
	want := imc.Counters{LLCRead: 11, DRAMRead: 2, DRAMWrite: 5, NVRAMRead: 7, NVRAMWrite: 4}
	if ab != want {
		t.Errorf("merge = %v, want %v", ab, want)
	}
	if (MergeCounters()) != (imc.Counters{}) {
		t.Error("empty merge not zero")
	}
}

// TestSuiteShape: the suite exposes every artifact the repro contract
// names, exactly once, in report order.
func TestSuiteShape(t *testing.T) {
	jobs := Suite(DefaultSuiteConfig(8192, true))
	if len(jobs) < 15 {
		t.Fatalf("suite has only %d jobs", len(jobs))
	}
	seen := map[string]bool{}
	for _, j := range jobs {
		if j.Name == "" || j.Run == nil {
			t.Fatalf("malformed job %+v", j)
		}
		if seen[j.Name] {
			t.Errorf("duplicate job name %q", j.Name)
		}
		seen[j.Name] = true
	}
	for _, name := range []string{
		"fig2a_nvram_read_bw", "table1_access_amplification", "fig5_densenet",
		"graph_study", "multichannel_sharding", "claims_check",
	} {
		if !seen[name] {
			t.Errorf("suite is missing job %q", name)
		}
	}
	if jobs[len(jobs)-1].Name != "claims_check" {
		t.Errorf("claims_check must close the report, got %q", jobs[len(jobs)-1].Name)
	}
}
