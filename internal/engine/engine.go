// Package engine scales the simulator beyond a single memory
// controller: it shards the physical address space across N independent
// imc.Controller instances with the line-interleaved channel mapping of
// the real Cascade Lake platform (6 IMC channels per socket), and runs
// experiment suites concurrently on a worker pool.
//
// # Channel sharding
//
// A Sharded controller routes line address L to channel L mod N, and
// presents the channel-local address L div N to that channel's
// controller — exactly how the socket's system address decoder
// interleaves consecutive lines across IMC channels. Each channel owns
// a 1/N slice of the DRAM cache and the NVRAM space, with its own tag
// store, modules and counters; channels share no state, so they can be
// driven from separate goroutines without synchronization.
//
// # Determinism guarantee
//
// When N divides the serial controller's set count (always true for the
// Cascade Lake geometry, whose capacities carry the factor 6), line
// interleaving maps every serial cache set onto exactly one
// channel-local set, bijectively, preserving tags: serial set s lands
// on channel s mod N as local set s div N, and a line's local tag
// equals its serial tag. Cache decisions (hit, clean/dirty miss, victim
// choice, LRU order, ownership bits) are purely per-set, so each
// channel reproduces the serial controller's per-set decision sequences
// exactly, and the field-wise merge of the channel counters via
// imc.Counters.Add — commutative and associative, hence
// order-independent — is byte-identical to the serial run's counters.
// TestShardedMatchesSerial asserts this property over random streams.
package engine

import (
	"fmt"
	"sync"

	"twolm/internal/cache"
	"twolm/internal/dram"
	"twolm/internal/fastdiv"
	"twolm/internal/imc"
	"twolm/internal/mem"
	"twolm/internal/nvram"
)

// ShardConfig assembles a Sharded controller.
type ShardConfig struct {
	// Channels is the number of IMC channels (6 on Cascade Lake).
	Channels int
	// DRAMCapacity is the total DRAM cache capacity in bytes across all
	// channels; each channel owns 1/Channels of it.
	DRAMCapacity uint64
	// NVRAMCapacity is the total NVRAM capacity in bytes.
	NVRAMCapacity uint64
	// Policy is the per-channel controller policy.
	Policy imc.Policy
}

// Sharded is an N-channel memory controller: N independent
// imc.Controllers over a line-interleaved address split.
type Sharded struct {
	shards []*imc.Controller
	n      uint64
	// nDiv divides by the channel count without a hardware divide;
	// route runs once per replayed op, so the divider matters the same
	// way it does in the per-line demand pipeline.
	nDiv fastdiv.Divisor
}

// NewSharded builds a sharded controller. The per-channel DRAM slice
// must hold a whole number of sets (equivalently: Channels must divide
// the serial set count), which is what makes the sharded run
// counter-identical to a serial run — see the package documentation.
func NewSharded(cfg ShardConfig) (*Sharded, error) {
	if cfg.Channels < 1 {
		return nil, fmt.Errorf("engine: channel count %d must be positive", cfg.Channels)
	}
	n := uint64(cfg.Channels)
	ways := uint64(cfg.Policy.Ways)
	if cfg.Policy.Ways < 1 {
		return nil, fmt.Errorf("engine: policy ways %d must be >= 1", cfg.Policy.Ways)
	}
	if cfg.DRAMCapacity == 0 || cfg.DRAMCapacity%(n*ways*mem.Line) != 0 {
		return nil, fmt.Errorf("engine: DRAM capacity %d must split into %d channels of whole %d-way sets",
			cfg.DRAMCapacity, cfg.Channels, cfg.Policy.Ways)
	}
	if cfg.NVRAMCapacity == 0 || cfg.NVRAMCapacity%(n*mem.Line) != 0 {
		return nil, fmt.Errorf("engine: NVRAM capacity %d must split into %d channels of whole lines",
			cfg.NVRAMCapacity, cfg.Channels)
	}
	s := &Sharded{shards: make([]*imc.Controller, cfg.Channels), n: n, nDiv: fastdiv.New(n)}
	for i := range s.shards {
		d, err := dram.New(1, cfg.DRAMCapacity/n)
		if err != nil {
			return nil, fmt.Errorf("engine: channel %d: %w", i, err)
		}
		nv, err := nvram.New(1, cfg.NVRAMCapacity/n)
		if err != nil {
			return nil, fmt.Errorf("engine: channel %d: %w", i, err)
		}
		ctrl, err := imc.NewWithPolicy(d, nv, cfg.Policy)
		if err != nil {
			return nil, fmt.Errorf("engine: channel %d: %w", i, err)
		}
		s.shards[i] = ctrl
	}
	return s, nil
}

// Channels returns the channel count.
func (s *Sharded) Channels() int { return len(s.shards) }

// Shard returns channel i's controller, for per-channel inspection.
func (s *Sharded) Shard(i int) *imc.Controller { return s.shards[i] }

// ChannelOf returns the channel that owns addr's line.
func (s *Sharded) ChannelOf(addr uint64) int {
	return int(s.nDiv.Mod(addr >> mem.LineShift))
}

// route resolves addr to its owning channel and channel-local address.
// The sub-line offset is preserved so media-granularity modeling in the
// NVRAM module keeps seeing byte addresses.
func (s *Sharded) route(addr uint64) (ctrl *imc.Controller, local uint64) {
	line := addr >> mem.LineShift
	q, r := s.nDiv.DivMod(line)
	local = q<<mem.LineShift | (addr & (mem.Line - 1))
	return s.shards[r], local
}

// LLCRead services a demand read through the owning channel.
func (s *Sharded) LLCRead(addr uint64) cache.LookupResult {
	ctrl, local := s.route(addr)
	return ctrl.LLCRead(local)
}

// LLCWrite services an LLC writeback through the owning channel.
func (s *Sharded) LLCWrite(addr uint64) (cache.LookupResult, bool) {
	ctrl, local := s.route(addr)
	return ctrl.LLCWrite(local)
}

// Counters returns the counters of all channels merged field-wise via
// imc.Counters.Add. Add is commutative and associative, so the merge is
// independent of channel order and of the interleaving the scheduler
// chose during a parallel replay.
func (s *Sharded) Counters() imc.Counters {
	var total imc.Counters
	for _, sh := range s.shards {
		total = total.Add(sh.Counters())
	}
	return total
}

// ChannelCounters returns a per-channel counter snapshot, for balance
// inspection.
func (s *Sharded) ChannelCounters() []imc.Counters {
	out := make([]imc.Counters, len(s.shards))
	for i, sh := range s.shards {
		out[i] = sh.Counters()
	}
	return out
}

// ResetCounters zeroes every channel's counters (and, as on the
// single-controller path, the backing module counters).
func (s *Sharded) ResetCounters() {
	for _, sh := range s.shards {
		sh.ResetCounters()
	}
}

// FlushAll flushes every channel's DRAM cache.
func (s *Sharded) FlushAll() {
	for _, sh := range s.shards {
		sh.FlushAll()
	}
}

// Op is one LLC-level request: a demand read or a writeback.
type Op struct {
	Write bool
	Addr  uint64
}

// Replay drives the ops through the sharded controller in order on the
// calling goroutine.
func (s *Sharded) Replay(ops []Op) {
	for _, op := range ops {
		if op.Write {
			s.LLCWrite(op.Addr)
		} else {
			s.LLCRead(op.Addr)
		}
	}
}

// partition splits ops into per-channel subsequences, preserving the
// original relative order within each channel — the property that keeps
// per-set decision sequences identical to a serial replay.
func (s *Sharded) partition(ops []Op) [][]Op {
	counts := make([]int, len(s.shards))
	for _, op := range ops {
		counts[s.ChannelOf(op.Addr)]++
	}
	parts := make([][]Op, len(s.shards))
	for i, c := range counts {
		parts[i] = make([]Op, 0, c)
	}
	for _, op := range ops {
		ch := s.ChannelOf(op.Addr)
		parts[ch] = append(parts[ch], op)
	}
	return parts
}

// ReplayParallel partitions ops by channel and drives the channels
// concurrently on up to workers goroutines. Each channel is owned by
// exactly one goroutine, so no channel state is shared; the merged
// counters equal those of a serial Replay of the same ops.
func (s *Sharded) ReplayParallel(ops []Op, workers int) {
	if workers < 1 {
		workers = 1
	}
	if workers > len(s.shards) {
		workers = len(s.shards)
	}
	parts := s.partition(ops)
	if workers == 1 {
		for ch, part := range parts {
			s.replayLocal(ch, part)
		}
		return
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Channels are distributed round-robin; each is touched by
			// exactly one worker.
			for ch := w; ch < len(parts); ch += workers {
				s.replayLocal(ch, parts[ch])
			}
		}(w)
	}
	wg.Wait()
}

// replayLocal drives one channel's subsequence, translating global
// addresses to channel-local ones.
func (s *Sharded) replayLocal(ch int, part []Op) {
	ctrl := s.shards[ch]
	for _, op := range part {
		line := op.Addr >> mem.LineShift
		local := s.nDiv.Div(line)<<mem.LineShift | (op.Addr & (mem.Line - 1))
		if op.Write {
			ctrl.LLCWrite(local)
		} else {
			ctrl.LLCRead(local)
		}
	}
}
