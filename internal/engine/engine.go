// Package engine scales the simulator beyond a single memory
// controller: it shards the physical address space across N independent
// imc.Controller instances with the line-interleaved channel mapping of
// the real Cascade Lake platform (6 IMC channels per socket), and runs
// experiment suites concurrently on a worker pool.
//
// # Channel sharding
//
// A Sharded controller routes line address L to channel L mod N, and
// presents the channel-local address L div N to that channel's
// controller — exactly how the socket's system address decoder
// interleaves consecutive lines across IMC channels. Each channel owns
// a 1/N slice of the DRAM cache and the NVRAM space, with its own tag
// store, modules and counters; channels share no state, so they can be
// driven from separate goroutines without synchronization.
//
// # Determinism guarantee
//
// When N divides the serial controller's set count (always true for the
// Cascade Lake geometry, whose capacities carry the factor 6), line
// interleaving maps every serial cache set onto exactly one
// channel-local set, bijectively, preserving tags: serial set s lands
// on channel s mod N as local set s div N, and a line's local tag
// equals its serial tag. Cache decisions (hit, clean/dirty miss, victim
// choice, LRU order, ownership bits) are purely per-set, so each
// channel reproduces the serial controller's per-set decision sequences
// exactly, and the field-wise merge of the channel counters via
// imc.Counters.Add — commutative and associative, hence
// order-independent — is byte-identical to the serial run's counters.
// TestShardedMatchesSerial asserts this property over random streams.
package engine

import (
	"fmt"
	"sync"

	"twolm/internal/cache"
	"twolm/internal/dram"
	"twolm/internal/fastdiv"
	"twolm/internal/imc"
	"twolm/internal/mem"
	"twolm/internal/nvram"
	"twolm/internal/telemetry"
)

// ShardConfig assembles a Sharded controller.
type ShardConfig struct {
	// Channels is the number of IMC channels (6 on Cascade Lake).
	Channels int
	// DRAMCapacity is the total DRAM cache capacity in bytes across all
	// channels; each channel owns 1/Channels of it.
	DRAMCapacity uint64
	// NVRAMCapacity is the total NVRAM capacity in bytes.
	NVRAMCapacity uint64
	// Policy is the per-channel controller policy.
	Policy imc.Policy
}

// Sharded is an N-channel memory controller: N independent
// imc.Controllers over a line-interleaved address split.
//
// # Concurrency contract
//
// Replay and ReplayParallel own all channel state for their full
// duration. Counters, ChannelCounters, Snapshot, ResetCounters and
// FlushAll take the same lock, so calling them mid-run is safe: the
// call blocks until the in-flight replay completes and then observes
// the post-replay state. (Before this guard existed, a mid-run
// Counters call raced with the replay workers; the regression test
// TestCountersDuringReplayParallel pins the fix under -race.)
type Sharded struct {
	shards []*imc.Controller
	n      uint64
	// nDiv divides by the channel count without a hardware divide;
	// route runs once per replayed op, so the divider matters the same
	// way it does in the per-line demand pipeline.
	nDiv fastdiv.Divisor

	// mu serializes replays against counter observation — see the
	// concurrency contract above.
	mu sync.Mutex

	// Telemetry: merged-counter samples recorded at replay chunk
	// barriers, clocked by demand lines so a sharded series is
	// byte-identical to a serial controller's over the same op stream.
	sink        telemetry.Sink
	sampleEvery uint64
	nextSample  uint64
	lastSample  uint64
	haveSample  bool
}

// NewSharded builds a sharded controller. The per-channel DRAM slice
// must hold a whole number of sets (equivalently: Channels must divide
// the serial set count), which is what makes the sharded run
// counter-identical to a serial run — see the package documentation.
func NewSharded(cfg ShardConfig) (*Sharded, error) {
	if cfg.Channels < 1 {
		return nil, fmt.Errorf("engine: channel count %d must be positive", cfg.Channels)
	}
	n := uint64(cfg.Channels)
	ways := uint64(cfg.Policy.Ways)
	if cfg.Policy.Ways < 1 {
		return nil, fmt.Errorf("engine: policy ways %d must be >= 1", cfg.Policy.Ways)
	}
	if cfg.DRAMCapacity == 0 || cfg.DRAMCapacity%(n*ways*mem.Line) != 0 {
		return nil, fmt.Errorf("engine: DRAM capacity %d must split into %d channels of whole %d-way sets",
			cfg.DRAMCapacity, cfg.Channels, cfg.Policy.Ways)
	}
	if cfg.NVRAMCapacity == 0 || cfg.NVRAMCapacity%(n*mem.Line) != 0 {
		return nil, fmt.Errorf("engine: NVRAM capacity %d must split into %d channels of whole lines",
			cfg.NVRAMCapacity, cfg.Channels)
	}
	s := &Sharded{shards: make([]*imc.Controller, cfg.Channels), n: n, nDiv: fastdiv.New(n)}
	for i := range s.shards {
		d, err := dram.New(1, cfg.DRAMCapacity/n)
		if err != nil {
			return nil, fmt.Errorf("engine: channel %d: %w", i, err)
		}
		nv, err := nvram.New(1, cfg.NVRAMCapacity/n)
		if err != nil {
			return nil, fmt.Errorf("engine: channel %d: %w", i, err)
		}
		ctrl, err := imc.New(d, nv, imc.WithPolicy(cfg.Policy))
		if err != nil {
			return nil, fmt.Errorf("engine: channel %d: %w", i, err)
		}
		s.shards[i] = ctrl
	}
	return s, nil
}

// Channels returns the channel count.
func (s *Sharded) Channels() int { return len(s.shards) }

// Shard returns channel i's controller, for per-channel inspection.
// Like every observer it takes the replay lock: the shards slice is
// written by replay workers, and an unlocked read here is exactly the
// PR 4 observation-race shape shardsafe now rejects.
func (s *Sharded) Shard(i int) *imc.Controller {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.shards[i]
}

// ChannelOf returns the channel that owns addr's line.
func (s *Sharded) ChannelOf(addr uint64) int {
	return int(s.nDiv.Mod(addr >> mem.LineShift))
}

// route resolves addr to its owning channel and channel-local address.
// The sub-line offset is preserved so media-granularity modeling in the
// NVRAM module keeps seeing byte addresses.
func (s *Sharded) route(addr uint64) (ctrl *imc.Controller, local uint64) {
	line := addr >> mem.LineShift
	q, r := s.nDiv.DivMod(line)
	local = q<<mem.LineShift | (addr & (mem.Line - 1))
	return s.shards[r], local
}

// LLCRead services a demand read through the owning channel.
//
//hot:entry per-line demand path, callable while observers run
func (s *Sharded) LLCRead(addr uint64) cache.LookupResult {
	s.mu.Lock()
	defer s.mu.Unlock()
	ctrl, local := s.route(addr)
	return ctrl.LLCRead(local)
}

// LLCWrite services an LLC writeback through the owning channel.
//
//hot:entry per-line writeback path, callable while observers run
func (s *Sharded) LLCWrite(addr uint64) (cache.LookupResult, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ctrl, local := s.route(addr)
	return ctrl.LLCWrite(local)
}

// Counters returns the counters of all channels merged field-wise via
// imc.Counters.Add. Add is commutative and associative, so the merge is
// independent of channel order and of the interleaving the scheduler
// chose during a parallel replay. Safe to call during a replay: it
// blocks until the replay completes (see the concurrency contract).
//
//hot:entry the observer half of the PR 4 race: runs concurrently with replays
func (s *Sharded) Counters() imc.Counters {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.countersLocked()
}

func (s *Sharded) countersLocked() imc.Counters {
	var total imc.Counters
	for _, sh := range s.shards {
		total = total.Add(sh.Counters())
	}
	return total
}

// ChannelCounters returns a per-channel counter snapshot, for balance
// inspection. Safe to call during a replay: it blocks until the replay
// completes.
func (s *Sharded) ChannelCounters() []imc.Counters {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]imc.Counters, len(s.shards))
	for i, sh := range s.shards {
		out[i] = sh.Counters()
	}
	return out
}

// ResetCounters zeroes every channel's counters (and, as on the
// single-controller path, the backing module counters).
func (s *Sharded) ResetCounters() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, sh := range s.shards {
		sh.ResetCounters()
	}
	if s.sink != nil {
		// The demand clock rewound to zero; restart the sampling phase.
		s.haveSample = false
		s.lastSample = 0
		s.nextSample = telemetry.NextBoundary(0, s.sampleEvery)
	}
}

// FlushAll flushes every channel's DRAM cache.
func (s *Sharded) FlushAll() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, sh := range s.shards {
		sh.FlushAll()
	}
}

// SetTelemetry attaches (or, with a nil sink, detaches) a telemetry
// sink sampled every `every` demand lines at replay chunk barriers.
// The recorded series uses the same demand-boundary rule as the serial
// controller hook, so for the same op stream the two series are
// byte-identical.
func (s *Sharded) SetTelemetry(sink telemetry.Sink, every uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sink = sink
	s.sampleEvery = every
	s.haveSample = false
	s.lastSample = 0
	if sink != nil {
		s.nextSample = telemetry.NextBoundary(s.countersLocked().Demand(), every)
	}
}

// Snapshot implements telemetry.Source: the merged channel counters,
// with per-channel CAS slices concatenated in channel order. Because
// each shard owns a single-channel DRAM module and shard i serves
// global channel i, the concatenation is element-identical to a serial
// controller's per-channel counters over the same stream. Media
// counters are absent, as on the serial controller (see
// imc.Controller.Snapshot). Safe to call during a replay: it blocks
// until the replay completes.
func (s *Sharded) Snapshot() telemetry.Sample {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.snapshotLocked()
}

func (s *Sharded) snapshotLocked() telemetry.Sample {
	ctr := s.countersLocked()
	sample := telemetry.Sample{
		Demand:       ctr.Demand(),
		LLCRead:      ctr.LLCRead,
		LLCWrite:     ctr.LLCWrite,
		DRAMRead:     ctr.DRAMRead,
		DRAMWrite:    ctr.DRAMWrite,
		NVRAMRead:    ctr.NVRAMRead,
		NVRAMWrite:   ctr.NVRAMWrite,
		TagHit:       ctr.TagHit,
		TagMissClean: ctr.TagMissClean,
		TagMissDirty: ctr.TagMissDirty,
		DDO:          ctr.DDO,
	}
	sample.ChannelReads = make([]uint64, 0, len(s.shards))
	sample.ChannelWrites = make([]uint64, 0, len(s.shards))
	for _, sh := range s.shards {
		for _, ch := range sh.DRAM.ChannelCounters() {
			sample.ChannelReads = append(sample.ChannelReads, ch.CASReads)
			sample.ChannelWrites = append(sample.ChannelWrites, ch.CASWrites)
		}
	}
	return sample
}

// recordLocked records a sample and advances the boundary.
func (s *Sharded) recordLocked(demand uint64) {
	s.sink.Record(s.snapshotLocked())
	s.lastSample = demand
	s.haveSample = true
	s.nextSample = telemetry.NextBoundary(demand, s.sampleEvery)
}

// maybeSampleLocked records a sample if the demand clock crossed the
// sampling boundary.
func (s *Sharded) maybeSampleLocked() {
	d := s.countersLocked().Demand()
	if d < s.nextSample {
		return
	}
	s.recordLocked(d)
}

// FlushTelemetry records a final sample for the partial tail interval
// if demand advanced past the last recorded sample (or none was
// recorded yet). No-op without a sink.
func (s *Sharded) FlushTelemetry() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.sink == nil {
		return
	}
	d := s.countersLocked().Demand()
	if s.haveSample && d == s.lastSample {
		return
	}
	s.recordLocked(d)
}

// Op is one LLC-level request: a demand read or a writeback.
type Op struct {
	Write bool
	Addr  uint64
}

// Replay drives the ops through the sharded controller in order on the
// calling goroutine. It holds the replay lock for its full duration.
//
//hot:entry suite runners and the job pool replay concurrently with observers
func (s *Sharded) Replay(ops []Op) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.replayChunked(ops, 1)
}

// replayChunked splits ops into chunks ending exactly at telemetry
// sampling boundaries and replays each chunk (in parallel when workers
// allow), sampling at every chunk barrier. Each op is one demand line,
// so the chunk cut where cumulative demand reaches the next boundary
// is computable up front; with no sink the whole stream is one chunk
// and the only added cost is one branch.
func (s *Sharded) replayChunked(ops []Op, workers int) {
	for len(ops) > 0 {
		chunk := ops
		if s.sink != nil {
			if d := s.countersLocked().Demand(); s.nextSample > d && s.nextSample-d < uint64(len(ops)) {
				chunk = ops[:s.nextSample-d]
			}
		}
		ops = ops[len(chunk):]
		if workers > 1 {
			s.replayParallelLocked(chunk, workers)
		} else {
			for _, op := range chunk {
				ctrl, local := s.route(op.Addr)
				if op.Write {
					ctrl.LLCWrite(local)
				} else {
					ctrl.LLCRead(local)
				}
			}
		}
		if s.sink != nil {
			s.maybeSampleLocked()
		}
	}
}

// partition splits ops into per-channel subsequences, preserving the
// original relative order within each channel — the property that keeps
// per-set decision sequences identical to a serial replay.
func (s *Sharded) partition(ops []Op) [][]Op {
	counts := make([]int, len(s.shards))
	for _, op := range ops {
		counts[s.ChannelOf(op.Addr)]++
	}
	parts := make([][]Op, len(s.shards))
	for i, c := range counts {
		parts[i] = make([]Op, 0, c)
	}
	for _, op := range ops {
		ch := s.ChannelOf(op.Addr)
		parts[ch] = append(parts[ch], op)
	}
	return parts
}

// ReplayParallel partitions ops by channel and drives the channels
// concurrently on up to workers goroutines. Each channel is owned by
// exactly one goroutine, so no channel state is shared; the merged
// counters equal those of a serial Replay of the same ops. It holds
// the replay lock for its full duration; with a telemetry sink the
// stream is replayed in boundary-aligned chunks with a barrier sample
// after each, which keeps the recorded series identical to a serial
// replay's.
//
//hot:entry launches the replay workers that mutate the per-channel controllers
func (s *Sharded) ReplayParallel(ops []Op, workers int) {
	if workers < 1 {
		workers = 1
	}
	if workers > len(s.shards) {
		workers = len(s.shards)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.replayChunked(ops, workers)
}

// replayParallelLocked fans one chunk out over the channel partitions.
func (s *Sharded) replayParallelLocked(ops []Op, workers int) {
	parts := s.partition(ops)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Channels are distributed round-robin; each is touched by
			// exactly one worker.
			for ch := w; ch < len(parts); ch += workers {
				s.replayLocal(ch, parts[ch])
			}
		}(w)
	}
	wg.Wait()
}

// replayLocal drives one channel's subsequence, translating global
// addresses to channel-local ones.
func (s *Sharded) replayLocal(ch int, part []Op) {
	ctrl := s.shards[ch]
	for _, op := range part {
		line := op.Addr >> mem.LineShift
		local := s.nDiv.Div(line)<<mem.LineShift | (op.Addr & (mem.Line - 1))
		if op.Write {
			ctrl.LLCWrite(local)
		} else {
			ctrl.LLCRead(local)
		}
	}
}
