package engine

import (
	"testing"

	"twolm/internal/core"
)

// TestRandPassZeroAllocs pins the steady-state allocation contract of
// the random demand path: after one warm-up pass has sized the batch
// builder's buffers and the controller's dispatch scratch, a full
// random pass performs zero heap allocations. The CI benchmark run
// asserts the same with -benchmem; this test catches regressions in
// the plain test suite.
func TestRandPassZeroAllocs(t *testing.T) {
	for _, mode := range []core.Mode{core.Mode2LM, core.Mode1LM} {
		t.Run(mode.String(), func(t *testing.T) {
			// A large scale divisor keeps the footprint tiny; the code
			// path is identical at every scale.
			sys, region, err := NewThroughputSystem(mode, 1<<18)
			if err != nil {
				t.Fatal(err)
			}
			SeqPass(sys, region)
			if _, err := RandPass(sys, region, 0x2B1A); err != nil {
				t.Fatal(err)
			}
			seed := uint32(1)
			allocs := testing.AllocsPerRun(10, func() {
				if _, err := RandPass(sys, region, seed); err != nil {
					t.Fatal(err)
				}
				seed++
			})
			if allocs != 0 {
				t.Errorf("%s: RandPass allocates %.1f objects per pass, want 0", mode, allocs)
			}
		})
	}
}

// TestSeqPassZeroAllocs pins the same contract for the sequential
// range path, which shares the controller scratch.
func TestSeqPassZeroAllocs(t *testing.T) {
	for _, mode := range []core.Mode{core.Mode2LM, core.Mode1LM} {
		t.Run(mode.String(), func(t *testing.T) {
			sys, region, err := NewThroughputSystem(mode, 1<<18)
			if err != nil {
				t.Fatal(err)
			}
			SeqPass(sys, region)
			allocs := testing.AllocsPerRun(10, func() { SeqPass(sys, region) })
			if allocs != 0 {
				t.Errorf("%s: SeqPass allocates %.1f objects per pass, want 0", mode, allocs)
			}
		})
	}
}
