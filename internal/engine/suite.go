// The paper-reproduction suite expressed as pool jobs. Each job wraps
// one experiment family from internal/experiments and returns its
// outputs as named artifacts; cmd/repro only decides where the bytes
// go. Job granularity follows the experiments' natural units (one
// figure or table each, the whole graph study as one job since its
// figures share a Study), so a 4-worker pool keeps the long CNN and
// graph jobs off the critical path of the short microbenchmarks.
//
// Artifact names — and the job order, which fixes the report order —
// are part of the repository's output contract: they must match the
// file names EXPERIMENTS.md documents, whether the suite runs on one
// worker or many.

package engine

import (
	"context"
	"fmt"

	"twolm/internal/experiments"
	"twolm/internal/results"
)

// SuiteConfig carries the per-family experiment configurations.
type SuiteConfig struct {
	Micro experiments.MicroConfig
	CNN   experiments.CNNConfig
	Graph experiments.GraphConfig
	Embed experiments.EmbedConfig
	Multi MultiChannelConfig
}

// DefaultSuiteConfig returns the full-study configuration at the given
// footprint scale; quick shrinks footprints for a fast sanity pass
// (scale 8192, smaller graphs), matching the historical -quick flag.
func DefaultSuiteConfig(scale uint64, quick bool) SuiteConfig {
	cfg := SuiteConfig{
		Micro: experiments.DefaultMicroConfig(),
		CNN:   experiments.DefaultCNNConfig(),
		Graph: experiments.DefaultGraphConfig(),
		Embed: experiments.DefaultEmbedConfig(),
		Multi: DefaultMultiChannelConfig(),
	}
	cfg.Micro.Scale = scale
	cfg.CNN.Scale = scale
	if quick {
		cfg.Micro.Scale = 8192
		cfg.CNN.Scale = 8192
		cfg.Graph.Scale = 16384
		cfg.Graph.SmallScale = 14
		cfg.Graph.LargeScale = 19
		cfg.Graph.PRRounds = 3
		cfg.Embed.Scale = 16384
		cfg.Embed.Model.RowsPerTable = 1 << 15
	}
	return cfg
}

// tableJob wraps a single-table experiment as a job with one artifact
// named like the experiment.
func tableJob(name string, fn func() (*results.Table, error)) Job {
	return Job{Name: name, Run: func(context.Context) ([]Artifact, error) {
		t, err := fn()
		if err != nil {
			return nil, err
		}
		return []Artifact{{Name: name, Table: t}}, nil
	}}
}

// Suite assembles the full reproduction as a job list. Job order is
// the report order (microbenchmarks, CNN, graphs, ablations, claims);
// RunJobs preserves it regardless of worker count.
func Suite(cfg SuiteConfig) []Job {
	micro, cnn, gcfg, embed := cfg.Micro, cfg.CNN, cfg.Graph, cfg.Embed
	fig4 := func(fn func(experiments.MicroConfig) (*results.Table, []experiments.Fig4Row, error)) func() (*results.Table, error) {
		return func() (*results.Table, error) {
			t, _, err := fn(micro)
			return t, err
		}
	}
	return []Job{
		// Microbenchmarks: Table I, Figures 2 and 4.
		tableJob("fig2a_nvram_read_bw", func() (*results.Table, error) { return experiments.Fig2a(micro) }),
		tableJob("fig2b_nvram_write_bw", func() (*results.Table, error) { return experiments.Fig2b(micro) }),
		tableJob("table1_access_amplification", func() (*results.Table, error) { return experiments.Table1(micro) }),
		tableJob("fig4a_read_clean_miss", fig4(experiments.Fig4a)),
		tableJob("fig4b_write_dirty_miss", fig4(experiments.Fig4b)),
		tableJob("fig4c_rmw_ddo", fig4(experiments.Fig4c)),

		// CNN case study: Figures 5, 6, 10 and Table II.
		{Name: "fig5_densenet", Run: func(context.Context) ([]Artifact, error) {
			r, err := experiments.Fig5(cnn)
			if err != nil {
				return nil, err
			}
			return []Artifact{
				{Name: "fig5_densenet_summary", Table: r.Summary},
				{Name: "fig5d_densenet_liveness", Table: r.Liveness},
				{Name: "fig5d_heatmap", Text: r.Heatmap.String()},
				{Name: "fig5_densenet_trace", Series: r.Trace},
			}, nil
		}},
		tableJob("fig6_dense_block_kernels", func() (*results.Table, error) { return experiments.Fig6(cnn) }),
		{Name: "fig10_autotm", Run: func(context.Context) ([]Artifact, error) {
			r, err := experiments.Fig10(cnn)
			if err != nil {
				return nil, err
			}
			return []Artifact{
				{Name: "fig10_autotm_phases", Table: r.PhaseTable},
				{Name: "fig10_autotm_trace", Series: r.Trace},
			}, nil
		}},
		tableJob("table2_cnn_2lm_vs_autotm", func() (*results.Table, error) {
			t, _, err := experiments.Table2(cnn)
			return t, err
		}),

		// Graph case study: Figures 7, 8, 9 and the Sage table. One job:
		// the figures share a single Study's runs.
		{Name: "graph_study", Run: func(context.Context) ([]Artifact, error) {
			study, err := experiments.RunGraphStudy(gcfg)
			if err != nil {
				return nil, err
			}
			small, large := study.Fig9Traces()
			return []Artifact{
				{Name: "fig7_graph_kernels_2lm", Table: study.Fig7()},
				{Name: "fig8_data_moved", Table: study.Fig8()},
				{Name: "fig9_pagerank_traces", Table: study.Fig9()},
				{Name: "fig9a_pr_" + study.Small.Name, Series: small},
				{Name: "fig9bc_pr_" + study.Large.Name, Series: large},
				{Name: "sage_vs_2lm", Table: study.SageTable()},
			}, nil
		}},

		// Ablations and co-design.
		tableJob("ablation_ddo", func() (*results.Table, error) { return experiments.AblationDDO(micro) }),
		tableJob("ablation_write_policy", func() (*results.Table, error) { return experiments.AblationWritePolicy(micro) }),
		tableJob("ablation_associativity", func() (*results.Table, error) { return experiments.AblationAssociativity(cnn, nil) }),
		tableJob("codesign_dma", func() (*results.Table, error) { return experiments.CoDesign(cnn) }),
		tableJob("embedding_dlrm", func() (*results.Table, error) { return experiments.EmbedStudy(embed) }),

		// Engine self-check: sharded channels reproduce serial counters.
		tableJob("multichannel_sharding", func() (*results.Table, error) { return MultiChannel(cfg.Multi) }),

		// Final acceptance pass: the paper's claims, re-verified. A
		// failed claim fails the job (and with it the suite).
		{Name: "claims_check", Run: func(context.Context) ([]Artifact, error) {
			t, claims, err := experiments.CheckClaims(micro, cnn, gcfg)
			if err != nil {
				return nil, err
			}
			arts := []Artifact{{Name: "claims_check", Table: t}}
			for _, c := range claims {
				if !c.Pass {
					return arts, fmt.Errorf("claim %s (%s): measured %s, expected %s",
						c.ID, c.Text, c.Measured, c.Expected)
				}
			}
			return arts, nil
		}},
	}
}
