// Worker-pool experiment runner. Every experiment in
// internal/experiments builds its own fresh core.System and shares no
// mutable state with its siblings, so whole experiments are
// embarrassingly parallel; what needs care is keeping the *output*
// deterministic. The pool executes jobs on N goroutines but returns
// outcomes indexed by job order, so artifact files, report ordering and
// merged counters are identical whether the suite ran on 1 worker or 16.

package engine

import (
	"context"
	"fmt"
	"sync"
	"time"

	"twolm/internal/imc"
	"twolm/internal/perfcounter"
	"twolm/internal/results"
)

// Artifact is one named experiment output: a rendered table, a counter
// time series, or a preformatted text block. Exactly one of the three
// payload fields is set.
type Artifact struct {
	Name   string
	Table  *results.Table
	Series *perfcounter.Series
	Text   string
}

// Job is one schedulable experiment: it produces named artifacts and,
// optionally, the raw counters it measured (for cross-job merges).
// Run receives the pool's context; a job that can run long must check
// it at its natural batch boundaries and return ctx.Err() when the
// run is cancelled (per-job deadlines and server drain depend on it).
// Jobs that complete in bounded time may ignore it.
type Job struct {
	Name string
	Run  func(ctx context.Context) ([]Artifact, error)
}

// Outcome is one job's result, in job order.
type Outcome struct {
	Job       string
	Artifacts []Artifact
	Err       error
	Elapsed   time.Duration
}

// RunJobs executes the jobs on a pool of workers goroutines and returns
// one Outcome per job, in job order regardless of completion order.
// workers < 2 degenerates to in-order serial execution on the calling
// goroutine. A job panic is converted into that job's Err rather than
// tearing down the pool.
func RunJobs(jobs []Job, workers int) []Outcome {
	return RunJobsObserved(context.Background(), jobs, workers, nil)
}

// RunJobsObserved is RunJobs with cancellation and a completion
// callback: observe (when non-nil) is invoked once per job as it
// finishes, in completion order, from whichever worker goroutine ran
// the job. Callbacks must therefore be safe for concurrent use when
// workers > 1 — the intended consumer is live progress reporting
// (telemetry gauges), which locks internally. The returned outcomes
// remain in job order.
//
// Cancelling ctx stops the run at the next job boundary: jobs not yet
// started complete immediately with Err = ctx.Err() (observe still
// fires for them, so progress accounting stays exact), and in-flight
// jobs see the same ctx through Job.Run so they can stop mid-stream.
// Every job always has an outcome — cancellation never loses one.
func RunJobsObserved(ctx context.Context, jobs []Job, workers int, observe func(Outcome)) []Outcome {
	outs := make([]Outcome, len(jobs))
	done := func(i int) {
		if observe != nil {
			observe(outs[i])
		}
	}
	if workers < 2 {
		for i := range jobs {
			outs[i] = runOne(ctx, jobs[i])
			done(i)
		}
		return outs
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				// Distinct jobs write distinct slice elements; no
				// further synchronization is needed.
				outs[i] = runOne(ctx, jobs[i])
				done(i)
			}
		}()
	}
	for i := range jobs {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return outs
}

// runOne executes a single job, converting panics to errors. A job
// whose context is already cancelled is skipped outright — its
// outcome carries ctx.Err() — so a cancelled grid drains in O(jobs)
// slice writes instead of running every remaining point to completion.
func runOne(ctx context.Context, j Job) (out Outcome) {
	out.Job = j.Name
	if err := ctx.Err(); err != nil {
		out.Err = err
		return out
	}
	//lint:ignore detrange Outcome.Elapsed is a wall-clock measurement of the simulator itself, not simulated state
	start := time.Now()
	defer func() {
		out.Elapsed = time.Since(start)
		if r := recover(); r != nil {
			out.Err = fmt.Errorf("engine: job %q panicked: %v", j.Name, r)
		}
	}()
	out.Artifacts, out.Err = j.Run(ctx)
	return out
}

// FirstError returns the first failed outcome's error in job order, or
// nil if every job succeeded.
func FirstError(outs []Outcome) error {
	for _, o := range outs {
		if o.Err != nil {
			return fmt.Errorf("%s: %w", o.Job, o.Err)
		}
	}
	return nil
}

// MergeCounters folds counter sets field-wise with imc.Counters.Add.
// Add is commutative and associative over uint64 fields, so the result
// is independent of the order jobs completed in.
func MergeCounters(cs ...imc.Counters) imc.Counters {
	var total imc.Counters
	for _, c := range cs {
		total = total.Add(c)
	}
	return total
}
