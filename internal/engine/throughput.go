// Simulator-throughput measurement: how many demand lines per second
// the simulator itself sustains. Counting is the whole cost model of
// this reproduction — every table and figure is a line-by-line walk
// through core.System — so simulated-lines-per-second is the hardware
// speed axis of the ROADMAP's north star and the budget that bounds how
// large a footprint scale the experiments can afford. The measurement
// here backs the BenchmarkSimThroughput* benchmarks and the
// BENCH_throughput.json artifact cmd/repro emits, which together form
// the tracked perf trajectory baseline future PRs are measured against.
package engine

import (
	"fmt"
	"io"
	"time"

	"twolm/internal/core"
	"twolm/internal/lfsr"
	"twolm/internal/mem"
	"twolm/internal/platform"
	"twolm/internal/telemetry"
)

// ThroughputConfig parameterizes the throughput measurement.
type ThroughputConfig struct {
	// Scale is the footprint divisor of the measured system.
	Scale uint64
	// Passes is how many full passes over the region each measurement
	// times (after one untimed warm-up pass that primes the caches).
	Passes int
	// Seed seeds the LFSR for the random streams.
	Seed uint32
	// Telemetry, when non-nil, receives counter samples from every
	// measured system, labeled with the stream configuration's name
	// and sampled every SampleEvery demand lines.
	Telemetry telemetry.Sink
	// SampleEvery is the telemetry sampling interval in demand lines
	// (0 samples at every range boundary).
	SampleEvery uint64
}

// DefaultThroughputConfig returns the standard measurement: 1/8192
// scale (a 24 MiB DRAM cache, 48 MiB footprint) and three timed passes.
func DefaultThroughputConfig() ThroughputConfig {
	return ThroughputConfig{Scale: 8192, Passes: 3, Seed: 0x2B1A}
}

// ThroughputResult is one measured stream configuration.
//
// Stream configurations report lines/sec. Sweep configurations (whole
// design-space points executed per second by internal/sweep) report
// jobs/sec in JobsPerSec and keep LinesPerSec as the informational
// aggregate line rate; Rate picks the gated figure either way.
type ThroughputResult struct {
	Name        string  `json:"name"`
	Mode        string  `json:"mode"`
	Pattern     string  `json:"pattern"`
	Lines       uint64  `json:"lines"`
	Seconds     float64 `json:"seconds"`
	LinesPerSec float64 `json:"lines_per_sec"`
	JobsPerSec  float64 `json:"sweep_jobs_per_sec,omitempty"`
}

// Rate returns the configuration's regression-gated throughput figure:
// jobs/sec for sweep entries, lines/sec for stream entries.
func (r ThroughputResult) Rate() float64 {
	if r.JobsPerSec > 0 {
		return r.JobsPerSec
	}
	return r.LinesPerSec
}

// ThroughputReport is the serialized BENCH_throughput.json payload.
type ThroughputReport struct {
	Benchmark string             `json:"benchmark"`
	Scale     uint64             `json:"scale"`
	Passes    int                `json:"passes"`
	Results   []ThroughputResult `json:"results"`
}

// NewThroughputSystem builds a single-socket system in the given mode
// together with a measurement region twice the DRAM capacity — the
// miss-heavy regime of the paper's Figure 4, where the demand pipeline
// does the most work per line. In 1LM the region is NVRAM-backed so
// both device models stay on the path.
func NewThroughputSystem(mode core.Mode, scale uint64) (*core.System, mem.Region, error) {
	sys, err := core.New(core.Config{
		Platform: platform.CascadeLake(1, scale, 24),
		Mode:     mode,
	})
	if err != nil {
		return nil, mem.Region{}, err
	}
	size := 2 * sys.Platform().DRAMSize()
	var region mem.Region
	if mode == core.Mode1LM {
		region, err = sys.AddressSpace().AllocNVRAM(size)
	} else {
		region, err = sys.AddressSpace().Alloc(size)
	}
	if err != nil {
		return nil, mem.Region{}, err
	}
	return sys, region, nil
}

// SeqPass streams one sequential load pass plus one sequential store
// pass over region, exercising the read- and write-miss pipelines.
// Returns the number of demand lines simulated.
//
//hot:entry timed measurement loop; its cost IS the measured figure
//alloc:free the timed region must not allocate or the GC skews lines/sec
func SeqPass(sys *core.System, region mem.Region) uint64 {
	sys.LoadRange(region)
	sys.StoreRange(region)
	return 2 * region.Lines()
}

// RandPass drives one LFSR-random pass over region, touching every
// line exactly once with alternating loads and stores in pseudo-random
// order (the paper's KernelBenchmarks.jl iteration style). The pass
// goes through the system's batch builder, so the controller services
// it via chunked in-order dispatch; counters are byte-identical to
// calling Load/Store per line. Returns the number of demand lines
// simulated.
//
//hot:entry timed measurement loop; its cost IS the measured figure
//alloc:free the timed region must not allocate or the GC skews lines/sec
func RandPass(sys *core.System, region mem.Region, seed uint32) (uint64, error) {
	n := region.Lines()
	b := sys.Batch()
	st, err := lfsr.NewStream(n, seed)
	if err != nil {
		return 0, err
	}
	// Indices are consumed through a stack chunk instead of a callback
	// per index: the stream's skip test and the load/store alternation
	// are both even coin flips, and the buffer hop turns each from a
	// mispredicting branch into masked arithmetic.
	var buf [2048]uint32
	base := region.Base
	for {
		k, err := st.Fill(buf[:])
		if err != nil {
			return 0, err
		}
		if k == 0 {
			break
		}
		for _, v := range buf[:k] {
			idx := uint64(v)
			b.LoadOrStore(base+idx*mem.Line, idx)
		}
	}
	b.Flush()
	return n, nil
}

// MeasureThroughput measures simulator throughput for sequential and
// LFSR-random streams in both operating modes.
func MeasureThroughput(cfg ThroughputConfig) (*ThroughputReport, error) {
	if cfg.Scale == 0 {
		cfg = DefaultThroughputConfig()
	}
	if cfg.Passes < 1 {
		cfg.Passes = 1
	}
	report := &ThroughputReport{Benchmark: "SimThroughput", Scale: cfg.Scale, Passes: cfg.Passes}
	for _, mode := range []core.Mode{core.Mode2LM, core.Mode1LM} {
		for _, random := range []bool{false, true} {
			sys, region, err := NewThroughputSystem(mode, cfg.Scale)
			if err != nil {
				return nil, err
			}
			pattern := "sequential"
			if random {
				pattern = "lfsr-random"
			}
			name := fmt.Sprintf("%s-%s", pattern, mode)
			// Untimed warm-up pass primes the DRAM cache, mirroring the
			// paper's measurement procedure. Telemetry attaches after
			// the warm-up so the recorded series covers only the
			// measured passes.
			SeqPass(sys, region)
			if cfg.Telemetry != nil {
				sys.SetTelemetry(telemetry.WithLabel(cfg.Telemetry, name), cfg.SampleEvery)
			}
			var lines uint64
			//lint:ignore detrange lines-per-second throughput measures the simulator's own wall clock by design
			start := time.Now()
			for p := 0; p < cfg.Passes; p++ {
				if random {
					n, err := RandPass(sys, region, cfg.Seed+uint32(p))
					if err != nil {
						return nil, err
					}
					lines += n
				} else {
					lines += SeqPass(sys, region)
				}
				if cfg.Telemetry != nil {
					// Close the pass as a sync interval so the simulated
					// clock advances and the recorded trace carries
					// per-pass bandwidth, not just demand-line counts.
					sys.Sync(fmt.Sprintf("%s pass %d", name, p+1), 0)
				}
			}
			sec := time.Since(start).Seconds()
			if cfg.Telemetry != nil {
				sys.FlushTelemetry()
			}
			r := ThroughputResult{
				Name:    name,
				Mode:    mode.String(),
				Pattern: pattern,
				Lines:   lines,
				Seconds: sec,
			}
			if sec > 0 {
				r.LinesPerSec = float64(lines) / sec
			}
			report.Results = append(report.Results, r)
		}
	}
	return report, nil
}

// WriteThroughputJSON serializes the report as indented JSON via the
// repository's shared artifact encoder (byte-identical to the bespoke
// encoder this method carried before internal/telemetry existed).
func (r *ThroughputReport) WriteThroughputJSON(w io.Writer) error {
	return telemetry.EncodeJSON(w, r)
}
