// Multi-channel amplification experiment. The paper's platform
// interleaves 2LM traffic across 6 IMC channels per socket; the
// single-controller model aggregates them. This experiment drives the
// Table-I access scenarios through a channel-sharded controller,
// demonstrating (a) that the line-interleaved split preserves the exact
// merged counters of the serial model — the determinism guarantee the
// parallel engine rests on — and (b) how evenly the 2LM amplification
// load spreads across channels, which is what makes per-channel
// controller parallelism representative of the real socket.

package engine

import (
	"fmt"

	"twolm/internal/dram"
	"twolm/internal/imc"
	"twolm/internal/mem"
	"twolm/internal/nvram"
	"twolm/internal/platform"
	"twolm/internal/results"
	"twolm/internal/telemetry"
)

// MultiChannelConfig parameterizes the sharded-controller experiment.
type MultiChannelConfig struct {
	// Scale is the footprint divisor (power of two; default 8192).
	Scale uint64
	// Channels is the shard count (default 6, the Cascade Lake socket).
	Channels int
	// Workers bounds the goroutines driving the sharded replay
	// (default: one per channel).
	Workers int
	// Telemetry, when non-nil, receives counter samples from the
	// sharded replay of every scenario, labeled with the scenario
	// name and sampled every SampleEvery demand lines.
	Telemetry telemetry.Sink
	// SampleEvery is the telemetry sampling interval in demand lines
	// (0 samples at every replay chunk).
	SampleEvery uint64
}

// DefaultMultiChannelConfig returns the paper-geometry configuration.
func DefaultMultiChannelConfig() MultiChannelConfig {
	return MultiChannelConfig{Scale: 8192, Channels: 6}
}

func (c MultiChannelConfig) withDefaults() MultiChannelConfig {
	d := DefaultMultiChannelConfig()
	if c.Scale == 0 {
		c.Scale = d.Scale
	}
	if c.Channels == 0 {
		c.Channels = d.Channels
	}
	if c.Workers == 0 {
		c.Workers = c.Channels
	}
	return c
}

// mcScenario is one IMC-level workload of the experiment.
type mcScenario struct {
	name string
	ops  func(cacheLines uint64) []Op
}

// mcScenarios generates the Table-I regimes as LLC-level op streams.
// Addresses are line-granular over a region twice the DRAM cache, so
// the second half aliases the first in a direct-mapped cache.
func mcScenarios() []mcScenario {
	return []mcScenario{
		{"read miss (clean)", func(lines uint64) []Op {
			// One sequential pass over 2x the cache: every read misses
			// clean (nothing is ever dirty).
			ops := make([]Op, 0, 2*lines)
			for i := uint64(0); i < 2*lines; i++ {
				ops = append(ops, Op{Addr: i * mem.Line})
			}
			return ops
		}},
		{"write miss (dirty)", func(lines uint64) []Op {
			// Two NT-store passes: the first dirties the cache, the
			// second passes' aliasing writes miss dirty.
			ops := make([]Op, 0, 4*lines)
			for pass := 0; pass < 2; pass++ {
				for i := uint64(0); i < 2*lines; i++ {
					ops = append(ops, Op{Write: true, Addr: i * mem.Line})
				}
			}
			return ops
		}},
		{"rmw (ddo writeback)", func(lines uint64) []Op {
			// Read-for-ownership then writeback of a resident line: the
			// writeback takes the Dirty Data Optimization.
			ops := make([]Op, 0, 2*lines)
			for i := uint64(0); i < lines; i++ {
				ops = append(ops, Op{Addr: i * mem.Line}, Op{Write: true, Addr: i * mem.Line})
			}
			return ops
		}},
	}
}

// MultiChannel runs the experiment and returns the result table. It
// errors if any scenario's sharded merged counters diverge from the
// serial single-controller run — that equality is a correctness
// property, not a statistic.
func MultiChannel(cfg MultiChannelConfig) (*results.Table, error) {
	cfg = cfg.withDefaults()
	plat := platform.CascadeLake(1, cfg.Scale, 24)
	if err := plat.Validate(); err != nil {
		return nil, err
	}

	table := results.NewTable(
		fmt.Sprintf("Multi-channel 2LM amplification (%d line-interleaved channels)", cfg.Channels),
		"scenario", "demand", "amplification", "counters_match", "channel_balance")

	for _, sc := range mcScenarios() {
		serial, err := newSerialController(plat)
		if err != nil {
			return nil, err
		}
		sharded, err := NewSharded(ShardConfig{
			Channels:      cfg.Channels,
			DRAMCapacity:  plat.DRAMSize(),
			NVRAMCapacity: plat.NVRAMSize(),
			Policy:        imc.HardwarePolicy(),
		})
		if err != nil {
			return nil, err
		}
		ops := sc.ops(plat.DRAMSize() / mem.Line)

		for _, op := range ops {
			if op.Write {
				serial.LLCWrite(op.Addr)
			} else {
				serial.LLCRead(op.Addr)
			}
		}
		if cfg.Telemetry != nil {
			sharded.SetTelemetry(telemetry.WithLabel(cfg.Telemetry, sc.name), cfg.SampleEvery)
		}
		sharded.ReplayParallel(ops, cfg.Workers)
		sharded.FlushTelemetry()

		sctr, mctr := serial.Counters(), sharded.Counters()
		if sctr != mctr {
			return nil, fmt.Errorf("engine: %s: sharded counters diverge from serial:\n serial  %v\n sharded %v",
				sc.name, sctr, mctr)
		}
		table.AddRow(sc.name,
			fmt.Sprint(mctr.Demand()),
			fmt.Sprintf("%.3f", mctr.Amplification()),
			"yes",
			fmt.Sprintf("%.3f", channelBalance(sharded.ChannelCounters())))
	}
	return table, nil
}

// newSerialController builds the single-controller reference for the
// platform geometry, mirroring how core.System assembles its 2LM path.
func newSerialController(plat platform.Config) (*imc.Controller, error) {
	d, err := dram.New(plat.Channels(), plat.DRAMSize())
	if err != nil {
		return nil, err
	}
	nv, err := nvram.New(plat.Channels(), plat.NVRAMSize())
	if err != nil {
		return nil, err
	}
	return imc.New(d, nv)
}

// channelBalance returns min/max per-channel demand — 1.0 is a
// perfectly even spread, the line-interleaved ideal for streaming
// workloads.
func channelBalance(cs []imc.Counters) float64 {
	if len(cs) == 0 {
		return 0
	}
	min, max := cs[0].Demand(), cs[0].Demand()
	for _, c := range cs[1:] {
		d := c.Demand()
		if d < min {
			min = d
		}
		if d > max {
			max = d
		}
	}
	if max == 0 {
		return 0
	}
	return float64(min) / float64(max)
}
