package engine

import (
	"math/rand"
	"testing"

	"twolm/internal/dram"
	"twolm/internal/imc"
	"twolm/internal/mem"
	"twolm/internal/nvram"
)

// Geometry used across the tests: 768 serial cache lines, so the set
// count is divisible by every tested channel count at 1 and 2 ways.
const (
	testDRAM  = 48 * mem.KiB
	testNVRAM = 288 * mem.KiB
)

func newTestSharded(t *testing.T, channels int, policy imc.Policy) *Sharded {
	t.Helper()
	s, err := NewSharded(ShardConfig{
		Channels:      channels,
		DRAMCapacity:  testDRAM,
		NVRAMCapacity: testNVRAM,
		Policy:        policy,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func newTestSerial(t *testing.T, policy imc.Policy) *imc.Controller {
	t.Helper()
	d, err := dram.New(1, testDRAM)
	if err != nil {
		t.Fatal(err)
	}
	nv, err := nvram.New(1, testNVRAM)
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := imc.New(d, nv, imc.WithPolicy(policy))
	if err != nil {
		t.Fatal(err)
	}
	return ctrl
}

// randomOps generates a reproducible mixed read/write stream over the
// NVRAM address range, line-aligned with occasional sub-line offsets.
func randomOps(seed int64, n int) []Op {
	rng := rand.New(rand.NewSource(seed))
	lines := uint64(testNVRAM / mem.Line)
	ops := make([]Op, n)
	for i := range ops {
		addr := (rng.Uint64() % lines) * mem.Line
		if rng.Intn(4) == 0 {
			addr += rng.Uint64() % mem.Line // sub-line offset
		}
		ops[i] = Op{Write: rng.Intn(3) == 0, Addr: addr}
	}
	return ops
}

func replaySerial(ctrl *imc.Controller, ops []Op) {
	for _, op := range ops {
		if op.Write {
			ctrl.LLCWrite(op.Addr)
		} else {
			ctrl.LLCRead(op.Addr)
		}
	}
}

// TestShardedMatchesSerial is the determinism property the engine
// rests on: for every channel count dividing the set count and every
// policy, a sharded replay (serial or parallel) produces merged
// counters identical to the single-controller run.
func TestShardedMatchesSerial(t *testing.T) {
	policies := map[string]imc.Policy{
		"hardware": imc.HardwarePolicy(),
	}
	assoc := imc.HardwarePolicy()
	assoc.Ways = 2
	policies["2way"] = assoc
	noRA := imc.HardwarePolicy()
	noRA.ReadAllocate = false
	policies["no-read-allocate"] = noRA

	for name, policy := range policies {
		for _, channels := range []int{1, 2, 3, 6} {
			for _, workers := range []int{1, 4} {
				ops := randomOps(int64(channels)*1000+int64(workers), 20000)

				serial := newTestSerial(t, policy)
				replaySerial(serial, ops)

				sharded := newTestSharded(t, channels, policy)
				sharded.ReplayParallel(ops, workers)

				if got, want := sharded.Counters(), serial.Counters(); got != want {
					t.Errorf("%s channels=%d workers=%d: counters diverge\n sharded %v\n serial  %v",
						name, channels, workers, got, want)
				}
			}
		}
	}
}

// TestReplayDeterministic: two identical parallel replays agree with
// each other and with the in-order Replay, per channel not just in the
// merge.
func TestReplayDeterministic(t *testing.T) {
	ops := randomOps(42, 30000)
	run := func(parallel bool) []imc.Counters {
		s := newTestSharded(t, 6, imc.HardwarePolicy())
		if parallel {
			s.ReplayParallel(ops, 6)
		} else {
			s.Replay(ops)
		}
		return s.ChannelCounters()
	}
	a, b, c := run(true), run(true), run(false)
	for ch := range a {
		if a[ch] != b[ch] {
			t.Errorf("channel %d: parallel replays diverge:\n %v\n %v", ch, a[ch], b[ch])
		}
		if a[ch] != c[ch] {
			t.Errorf("channel %d: parallel vs serial replay diverge:\n %v\n %v", ch, a[ch], c[ch])
		}
	}
}

// TestShardedRouting: every address lands on channel line mod N, and
// per-channel demand counters account for exactly the ops routed there.
func TestShardedRouting(t *testing.T) {
	s := newTestSharded(t, 3, imc.HardwarePolicy())
	want := make([]uint64, 3)
	ops := randomOps(7, 5000)
	for _, op := range ops {
		line := op.Addr >> mem.LineShift
		if ch := s.ChannelOf(op.Addr); ch != int(line%3) {
			t.Fatalf("ChannelOf(%#x) = %d, want %d", op.Addr, ch, line%3)
		}
		want[line%3]++
	}
	s.Replay(ops)
	for ch, ctr := range s.ChannelCounters() {
		if ctr.Demand() != want[ch] {
			t.Errorf("channel %d served %d demands, want %d", ch, ctr.Demand(), want[ch])
		}
	}
}

// TestShardedResetAndFlush: ResetCounters zeroes the merge;
// FlushAll drains dirty lines so a fresh stream sees clean misses.
func TestShardedResetAndFlush(t *testing.T) {
	s := newTestSharded(t, 2, imc.HardwarePolicy())
	ops := randomOps(3, 2000)
	s.Replay(ops)
	if s.Counters().Demand() == 0 {
		t.Fatal("replay produced no demand")
	}
	s.FlushAll()
	s.ResetCounters()
	if got := s.Counters(); got != (imc.Counters{}) {
		t.Errorf("counters after reset: %v", got)
	}
	// After a flush, rereading a previously dirtied line must not find
	// dirty state to write back beyond its own traffic.
	s.LLCRead(0)
	if got := s.Counters().NVRAMWrite; got != 0 {
		t.Errorf("read after flush caused %d NVRAM writes", got)
	}
}

func TestNewShardedValidation(t *testing.T) {
	base := ShardConfig{
		Channels:      6,
		DRAMCapacity:  testDRAM,
		NVRAMCapacity: testNVRAM,
		Policy:        imc.HardwarePolicy(),
	}
	cases := map[string]func(*ShardConfig){
		"zero channels":        func(c *ShardConfig) { c.Channels = 0 },
		"negative channels":    func(c *ShardConfig) { c.Channels = -1 },
		"zero ways":            func(c *ShardConfig) { c.Policy.Ways = 0 },
		"zero dram":            func(c *ShardConfig) { c.DRAMCapacity = 0 },
		"indivisible dram":     func(c *ShardConfig) { c.DRAMCapacity = 5 * mem.KiB },
		"zero nvram":           func(c *ShardConfig) { c.NVRAMCapacity = 0 },
		"indivisible nvram":    func(c *ShardConfig) { c.NVRAMCapacity = testNVRAM + mem.Line },
		"sets not split whole": func(c *ShardConfig) { c.Channels = 5; c.DRAMCapacity = 48 * mem.KiB },
	}
	for name, mutate := range cases {
		cfg := base
		mutate(&cfg)
		if _, err := NewSharded(cfg); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	if _, err := NewSharded(base); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func BenchmarkReplaySerial(b *testing.B) {
	ops := randomOps(1, 100000)
	s, err := NewSharded(ShardConfig{
		Channels: 6, DRAMCapacity: testDRAM, NVRAMCapacity: testNVRAM,
		Policy: imc.HardwarePolicy(),
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Replay(ops)
	}
}

func BenchmarkReplayParallel(b *testing.B) {
	ops := randomOps(1, 100000)
	s, err := NewSharded(ShardConfig{
		Channels: 6, DRAMCapacity: testDRAM, NVRAMCapacity: testNVRAM,
		Policy: imc.HardwarePolicy(),
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.ReplayParallel(ops, 6)
	}
}
