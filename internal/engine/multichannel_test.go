package engine

import (
	"strings"
	"testing"
)

// TestMultiChannel runs the sharded-vs-serial experiment at a tiny
// scale; MultiChannel itself errors if any scenario's merged counters
// diverge from the serial reference, so success asserts the
// determinism property on the real platform geometry.
func TestMultiChannel(t *testing.T) {
	table, err := MultiChannel(MultiChannelConfig{Scale: 1 << 21, Channels: 6, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	out := table.String()
	for _, want := range []string{"read miss (clean)", "write miss (dirty)", "rmw (ddo writeback)"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing scenario %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "no") && !strings.Contains(out, "yes") {
		t.Errorf("counters mismatch reported:\n%s", out)
	}
}

// TestMultiChannelDefaults: the zero config resolves to the paper
// geometry (6 channels) without error.
func TestMultiChannelDefaults(t *testing.T) {
	cfg := MultiChannelConfig{}.withDefaults()
	if cfg.Channels != 6 || cfg.Scale != 8192 || cfg.Workers != 6 {
		t.Errorf("defaults = %+v", cfg)
	}
}
