package core

import (
	"testing"

	"twolm/internal/mem"
)

// TestDMACopyTraffic: a 1LM NVRAM->DRAM copy reads the source device
// and writes the destination device with no LLC or demand involvement.
func TestDMACopyTraffic(t *testing.T) {
	s := newSystem(t, Mode1LM)
	src, err := s.AddressSpace().AllocNVRAM(mem.MiB)
	if err != nil {
		t.Fatal(err)
	}
	dst, err := s.AddressSpace().AllocDRAM(mem.MiB)
	if err != nil {
		t.Fatal(err)
	}
	s.DMACopy(src, dst)
	ctr := s.Counters()
	if ctr.NVRAMRead != src.Lines() {
		t.Errorf("NVRAM reads = %d, want %d", ctr.NVRAMRead, src.Lines())
	}
	if ctr.DRAMWrite != src.Lines() {
		t.Errorf("DRAM writes = %d, want %d", ctr.DRAMWrite, src.Lines())
	}
	if ctr.LLCRead != 0 || ctr.LLCWrite != 0 {
		t.Errorf("DMA produced LLC traffic: %v", ctr)
	}
	if s.DemandBytes() != 0 {
		t.Errorf("DMA counted as demand: %d bytes", s.DemandBytes())
	}
}

// TestDMACopyOverlapsCompute: with no engine ceiling, a copy that is
// cheaper than the kernel's compute adds no time at all.
func TestDMACopyOverlapsCompute(t *testing.T) {
	s := newSystem(t, Mode1LM)
	src, _ := s.AddressSpace().AllocNVRAM(mem.MiB)
	dst, _ := s.AddressSpace().AllocDRAM(mem.MiB)
	s.DMACopy(src, dst)
	sample := s.Sync("kernel", 1.0) // 1 s of compute dwarfs the copy
	if sample.Dur != 1.0 {
		t.Errorf("interval = %.4f s, want exactly the compute time (copy hidden)", sample.Dur)
	}
}

// TestDMAEngineCeiling: a slow engine's occupancy becomes the binding
// resource.
func TestDMAEngineCeiling(t *testing.T) {
	s := newSystem(t, Mode1LM)
	src, _ := s.AddressSpace().AllocNVRAM(mem.MiB)
	dst, _ := s.AddressSpace().AllocDRAM(mem.MiB)
	s.SetDMABandwidth(1e9) // 1 GB/s engine
	s.DMACopy(src, dst)
	sample := s.Sync("move", 0)
	want := float64(2*src.Size) / 1e9
	if sample.Dur < want*0.99 || sample.Dur > want*1.01 {
		t.Errorf("interval = %.6f s, want ~%.6f (engine bound)", sample.Dur, want)
	}
	// Negative bandwidths clamp to disabled.
	s.SetDMABandwidth(-5)
	s.DMACopy(src, dst)
	if d := s.Sync("move2", 0).Dur; d >= want {
		t.Errorf("disabled engine still bound the interval: %.6f", d)
	}
}

// TestDMAExcludedFromDemandLatency: engine traffic must not inflate
// the CPU's average demand latency.
func TestDMAExcludedFromDemandLatency(t *testing.T) {
	run := func(withDMA bool) float64 {
		s := newSystem(t, Mode1LM)
		dramArr, _ := s.AddressSpace().AllocDRAM(256 * mem.KiB)
		src, _ := s.AddressSpace().AllocNVRAM(mem.MiB)
		dst, _ := s.AddressSpace().AllocDRAM(mem.MiB)
		s.LoadRange(dramArr) // demand: pure DRAM
		if withDMA {
			s.DMACopy(src, dst)
		}
		return s.Sync("x", 0).Dur
	}
	plain := run(false)
	mixed := run(true)
	// The mixed interval may grow by the copy's NVRAM device time, but
	// no more: if engine traffic leaked into the CPU latency estimate,
	// the demand term would balloon past the device bound.
	s := newSystem(t, Mode1LM)
	nvDeviceTime := float64(mem.MiB) / s.Model().NVRAMReadBW(mem.Sequential, mem.Line, s.Threads(), 1)
	if mixed > plain+1.1*nvDeviceTime {
		t.Errorf("DMA inflated the interval beyond its device time: %.6f vs %.6f + %.6f",
			mixed, plain, nvDeviceTime)
	}
	if mixed < plain {
		t.Errorf("adding a copy shortened the interval: %.6f vs %.6f", mixed, plain)
	}
}

// TestDMACopy2LMFallsBack: in memory mode the engine sits behind the
// cache and generates controller traffic.
func TestDMACopy2LMFallsBack(t *testing.T) {
	s := newSystem(t, Mode2LM)
	src, _ := s.AddressSpace().Alloc(64 * mem.KiB)
	dst, _ := s.AddressSpace().Alloc(64 * mem.KiB)
	s.DMACopy(src, dst)
	ctr := s.Counters()
	if ctr.LLCRead != src.Lines() || ctr.LLCWrite != src.Lines() {
		t.Errorf("2LM DMA should route through the controller: %v", ctr)
	}
}

// TestResetStatsClearsDMA: accounting restarts cleanly.
func TestResetStatsClearsDMA(t *testing.T) {
	s := newSystem(t, Mode1LM)
	src, _ := s.AddressSpace().AllocNVRAM(mem.MiB)
	dst, _ := s.AddressSpace().AllocDRAM(mem.MiB)
	s.SetDMABandwidth(1e9)
	s.DMACopy(src, dst)
	s.ResetStats()
	if d := s.Sync("idle", 0).Dur; d != 0 {
		t.Errorf("stale DMA bytes leaked into a fresh interval: %.6f", d)
	}
}
