package core

import (
	"math/rand"
	"testing"

	"twolm/internal/imc"
	"twolm/internal/mem"
)

// TestValidateAfterRandomWorkload: the identities hold after arbitrary
// mixed traffic in both modes.
func TestValidateAfterRandomWorkload(t *testing.T) {
	for _, mode := range []Mode{Mode2LM, Mode1LM} {
		s := newSystem(t, mode)
		space := 4 * s.Platform().DRAMSize()
		if mode == Mode1LM {
			space = s.Platform().DRAMSize() + s.Platform().NVRAMSize()/2
		}
		rng := rand.New(rand.NewSource(7))
		for i := 0; i < 100000; i++ {
			addr := (rng.Uint64() % (space / mem.Line)) * mem.Line
			switch rng.Intn(4) {
			case 0:
				s.Load(addr)
			case 1:
				s.Store(addr)
			case 2:
				s.StoreNT(addr)
			default:
				s.RMW(addr)
			}
		}
		s.DrainLLC()
		if err := s.ValidateCounters(); err != nil {
			t.Errorf("%v: %v", mode, err)
		}
	}
}

// TestValidateAfterFlush: an explicit flush writes back residual dirty
// lines without breaking the identities.
func TestValidateAfterFlush(t *testing.T) {
	s := newSystem(t, Mode2LM)
	arr, _ := s.AddressSpace().Alloc(s.Platform().DRAMSize() / 2)
	s.StoreNTRange(arr)
	s.Controller().FlushAll()
	if err := s.ValidateCounters(); err != nil {
		t.Error(err)
	}
}

// TestValidateCatchesTampering: a manufactured inconsistency is
// reported.
func TestValidateCatchesTampering(t *testing.T) {
	s := newSystem(t, Mode2LM)
	s.Load(0)
	// Device-level extra write that the controller never issued.
	s.Controller().NVRAM.Write(0)
	if err := s.ValidateCounters(); err == nil {
		t.Error("device/IMC divergence not detected")
	}
}

// TestValidateAblationPolicies: the relaxed identities still hold for
// non-hardware policies.
func TestValidateAblationPolicies(t *testing.T) {
	cfg := testConfig(Mode2LM)
	for _, mutate := range []func(*struct {
		writeAlloc, readAlloc bool
	}){
		func(p *struct{ writeAlloc, readAlloc bool }) { p.writeAlloc = false; p.readAlloc = true },
		func(p *struct{ writeAlloc, readAlloc bool }) { p.writeAlloc = true; p.readAlloc = false },
	} {
		var pol struct{ writeAlloc, readAlloc bool }
		mutate(&pol)
		policy := hardwareWith(pol.writeAlloc, pol.readAlloc)
		c := cfg
		c.Policy = &policy
		s, err := New(c)
		if err != nil {
			t.Fatal(err)
		}
		arr, _ := s.AddressSpace().Alloc(4 * s.Platform().DRAMSize())
		s.StoreNTRange(arr)
		s.LoadRange(arr)
		s.DrainLLC()
		if err := s.ValidateCounters(); err != nil {
			t.Errorf("writeAlloc=%v readAlloc=%v: %v", pol.writeAlloc, pol.readAlloc, err)
		}
	}
}

// hardwareWith builds a hardware policy with modified allocation
// flags.
func hardwareWith(writeAlloc, readAlloc bool) imc.Policy {
	p := imc.HardwarePolicy()
	p.WriteAllocate = writeAlloc
	p.ReadAllocate = readAlloc
	return p
}
