// The Batch builder is the random-traffic fast path of the demand
// pipeline: the Range forms batch *consecutive* lines, Batch batches
// *arbitrary* ones. Workloads append Load/Store/RMW/StoreNT operations
// and the builder dispatches them in bulk — the on-chip LLC filter
// runs in appended order (its outcomes are order-sensitive and cheap),
// and the surviving memory-controller requests go to the controller's
// chunked LLCScatter entry point in one call instead of one virtual
// walk per line. Counter results are byte-identical to calling
// the per-line operations in appended order (the differential tests in
// scatter_test.go pin this); when a tap is installed, operations fall
// through to the per-line calls so traces observe every operation.
package core

import (
	"twolm/internal/cache"
	"twolm/internal/fastdiv"
	"twolm/internal/imc"
	"twolm/internal/mem"
)

// Batch operation encoding: the line-aligned address with the op in
// the low (sub-line) bits.
const (
	batchOpLoad uint64 = iota
	batchOpStore
	batchOpRMW
	batchOpStoreNT
	batchOpMask uint64 = 3

	batchLineMask = uint64(mem.Line - 1)
)

// batchFlushOps caps the pending-operation buffer; appending past the
// cap flushes automatically, so callers only need a final Flush.
const batchFlushOps = 1 << 20

// Batch accumulates demand operations for bulk dispatch. Obtain one
// with System.Batch; the zero value is not usable.
type Batch struct {
	sys  *System
	ops  []uint64
	reqs []imc.Req
}

// Batch returns the system-owned batch builder, creating it on first
// use. The builder (and its buffers) is reused across flushes, so the
// steady-state random path allocates nothing. The System is not safe
// for concurrent use and neither is its builder.
func (s *System) Batch() *Batch {
	if s.batch == nil {
		s.batch = &Batch{sys: s, ops: make([]uint64, 0, batchFlushOps)}
	}
	return s.batch
}

// add appends one operation, flushing at the buffer cap. With a tap
// installed the pending buffer drains and the operation takes the
// per-line path, so taps observe the stream exactly as generated.
// The body is only the append so it inlines into the per-op generator
// loops; the tap and buffer-full cases are outlined in addSlow.
//
//alloc:free per-op append path; the ops buffer is preallocated at batchFlushOps capacity
func (b *Batch) add(addr, op uint64) {
	if b.sys.tap != nil || len(b.ops) >= batchFlushOps {
		b.addSlow(addr, op)
		return
	}
	b.ops = append(b.ops, addr&^batchLineMask|op)
}

// addSlow handles the cold cases of add: draining a full buffer, and
// routing operations through the per-line path when a tap is installed.
func (b *Batch) addSlow(addr, op uint64) {
	b.Flush()
	if b.sys.tap != nil {
		switch op {
		case batchOpLoad:
			b.sys.Load(addr)
		case batchOpStore:
			b.sys.Store(addr)
		case batchOpRMW:
			b.sys.RMW(addr)
		default:
			b.sys.StoreNT(addr)
		}
		return
	}
	b.ops = append(b.ops, addr&^batchLineMask|op)
}

// Load appends a demand load of the line containing addr.
func (b *Batch) Load(addr uint64) { b.add(addr, batchOpLoad) }

// Store appends a standard store to the line containing addr.
func (b *Batch) Store(addr uint64) { b.add(addr, batchOpStore) }

// RMW appends a read-modify-write of the line containing addr.
func (b *Batch) RMW(addr uint64) { b.add(addr, batchOpRMW) }

// LoadOrStore appends a load when sel's low bit is 0 and a store when
// it is 1 — the branch-free form of an alternating random pass, where
// an if on the (pseudo-random) parity would mispredict half the time.
func (b *Batch) LoadOrStore(addr, sel uint64) { b.add(addr, sel&batchOpStore) }

// StoreNT appends a nontemporal store to the line containing addr.
func (b *Batch) StoreNT(addr uint64) { b.add(addr, batchOpStoreNT) }

// Flush dispatches all pending operations. Always call once after the
// last append; intermediate flushes happen automatically.
//
//alloc:free flush reuses the request buffers; 0 allocs/op by benchmark contract
func (b *Batch) Flush() {
	if len(b.ops) == 0 {
		return
	}
	s := b.sys
	if s.mode == Mode2LM {
		b.flush2LM()
	} else {
		b.flush1LM()
	}
	b.ops = b.ops[:0]
	if s.sink != nil {
		s.maybeSample()
	}
}

// flush2LM runs the LLC filter over the pending operations in appended
// order, collecting the resulting memory-controller request stream
// (victim writebacks interleaved before their misses' fills, exactly
// as llcTouch would issue them), then hands the whole batch to the
// controller's chunked in-order dispatch.
//
// The filter works directly on the LLC's flat packed tag array: one
// load and one store per operation, with the hit/miss outcome applied
// as predicated arithmetic. Under random demand the outcome is a coin
// flip, so branching on it would mispredict constantly; the emitted
// requests are written through an unconditionally-stored cursor (the
// next slot is overwritten when an operation contributes nothing)
// instead of branchy appends. Results are byte-identical to the
// per-line filter in appended order.
func (b *Batch) flush2LM() {
	s := b.sys
	ops := b.ops
	if cap(b.reqs) < 2*len(ops) {
		b.reqs = make([]imc.Req, 2*len(ops))
	}
	rq := b.reqs[:cap(b.reqs)]
	idx := 0
	var bytes uint64
	words := s.llc.DirectEntries()
	sets := s.llc.Sets()
	// The on-chip LLC is orders of magnitude smaller than the DRAM
	// cache, so its tag array stays cache-resident under the filter
	// loop — no touch pass needed. The set split uses a local divisor
	// copy (DivMod on a Divisor value inlines; the method call per
	// operation does not).
	setDiv := fastdiv.New(sets)
	for _, w := range ops {
		addr := w &^ batchLineMask
		op := w & batchOpMask
		tag64, set := setDiv.DivMod(addr >> mem.LineShift)
		tag := uint32(tag64)
		e := words[set]
		if op == batchOpStoreNT {
			bytes += mem.Line
			if e&^(cache.EntryDirty|cache.EntryLLCOwned) == cache.PackEntry(tag, cache.EntryValid) {
				// NT stores invalidate a cached copy without
				// writing it back.
				words[set] = 0
			}
			rq[idx] = imc.WriteReq(addr)
			idx++
			continue
		}
		bytes += mem.Line + mem.Line*(op>>1) // RMW moves two lines
		dbit := ((op | op>>1) & 1) << 1      // cache.EntryDirty on stores and RMWs

		var hit, dv uint64
		if e&^(cache.EntryDirty|cache.EntryLLCOwned) == cache.PackEntry(tag, cache.EntryValid) {
			hit = 1
		}
		if e&(cache.EntryValid|cache.EntryDirty) == cache.EntryValid|cache.EntryDirty {
			dv = 1 - hit // miss evicting a dirty victim
		}

		// Victim writeback (if any) precedes the demand read; a
		// hit contributes nothing and both stores are overwritten.
		rq[idx] = imc.WriteReq((uint64(cache.EntryTagOf(e))*sets + set) << mem.LineShift)
		idx += int(dv)
		rq[idx] = imc.ReadReq(addr)
		idx += int(1 - hit)

		nw := cache.PackEntry(tag, cache.EntryValid|dbit)
		if hit == 1 {
			nw = e | dbit
		}
		words[set] = nw
	}
	b.reqs = rq[:idx]
	s.demandBytes += bytes
	s.ctrl.LLCScatter(rq[:idx])
}

// flush1LM dispatches the pending operations through the flat-mode
// path in appended order — the same work as the per-line calls with
// the tap check and demand-byte accounting hoisted out of the loop.
func (b *Batch) flush1LM() {
	s := b.sys
	var bytes uint64
	for _, w := range b.ops {
		addr := w &^ batchLineMask
		switch w & batchOpMask {
		case batchOpLoad:
			bytes += mem.Line
			s.llcTouch(addr, false)
		case batchOpStore:
			bytes += mem.Line
			s.llcTouch(addr, true)
		case batchOpRMW:
			bytes += 2 * mem.Line
			s.llcTouch(addr, true)
		default: // nontemporal store
			bytes += mem.Line
			set, _, res := s.llc.Lookup(addr)
			if res == cache.Hit {
				s.llc.Invalidate(set)
			}
			s.llcWrite(addr)
		}
	}
	s.demandBytes += bytes
}
