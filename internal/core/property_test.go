package core

import (
	"testing"
	"testing/quick"

	"twolm/internal/mem"
)

// TestPropertyCounterIdentities: arbitrary operation sequences keep
// every counter identity intact in both modes (testing/quick drives
// the op stream).
func TestPropertyCounterIdentities(t *testing.T) {
	for _, mode := range []Mode{Mode2LM, Mode1LM} {
		mode := mode
		f := func(ops []uint16) bool {
			s, err := New(testConfig(mode))
			if err != nil {
				return false
			}
			space := 2 * s.Platform().DRAMSize()
			for _, raw := range ops {
				addr := (uint64(raw>>2) % (space / mem.Line)) * mem.Line
				switch raw & 3 {
				case 0:
					s.Load(addr)
				case 1:
					s.Store(addr)
				case 2:
					s.StoreNT(addr)
				default:
					s.RMW(addr)
				}
			}
			s.DrainLLC()
			return s.ValidateCounters() == nil
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
			t.Errorf("%v: %v", mode, err)
		}
	}
}

// TestPropertyClockMonotonic: the clock never runs backwards across
// arbitrary sync sequences.
func TestPropertyClockMonotonic(t *testing.T) {
	f := func(ops []uint16, computes []uint8) bool {
		s, err := New(testConfig(Mode2LM))
		if err != nil {
			return false
		}
		last := 0.0
		for i, raw := range ops {
			addr := (uint64(raw) % (s.Platform().DRAMSize() / mem.Line)) * mem.Line
			s.Load(addr)
			if i%3 == 0 {
				compute := 0.0
				if i/3 < len(computes) {
					compute = float64(computes[i/3]) * 1e-6
				}
				s.Sync("x", compute)
				if s.Clock() < last {
					return false
				}
				last = s.Clock()
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestPropertyDemandAccounting: DemandBytes equals the op-weighted sum
// regardless of hit/miss behavior.
func TestPropertyDemandAccounting(t *testing.T) {
	f := func(ops []uint8) bool {
		s, err := New(testConfig(Mode2LM))
		if err != nil {
			return false
		}
		var want uint64
		for i, op := range ops {
			addr := uint64(i%1024) * mem.Line
			switch op % 4 {
			case 0:
				s.Load(addr)
				want += mem.Line
			case 1:
				s.Store(addr)
				want += mem.Line
			case 2:
				s.StoreNT(addr)
				want += mem.Line
			default:
				s.RMW(addr)
				want += 2 * mem.Line
			}
		}
		return s.DemandBytes() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
