package core

import (
	"testing"

	"twolm/internal/imc"
	"twolm/internal/mem"
	"twolm/internal/platform"
)

// testConfig returns a small, fast system: 1 MiB DRAM cache, 64 MiB
// NVRAM, tiny LLC.
func testConfig(mode Mode) Config {
	return Config{
		Platform: platform.Config{
			Sockets:           1,
			ChannelsPerSocket: 6,
			DRAMPerChannel:    mem.MiB,
			NVRAMPerChannel:   64 * mem.MiB,
			Scale:             1,
			Threads:           24,
		},
		Mode:     mode,
		LLCBytes: 16 * mem.KiB,
	}
}

func newSystem(t *testing.T, mode Mode) *System {
	t.Helper()
	s, err := New(testConfig(mode))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewValidatesPlatform(t *testing.T) {
	cfg := testConfig(Mode2LM)
	cfg.Platform.Scale = 3
	if _, err := New(cfg); err == nil {
		t.Error("invalid platform accepted")
	}
}

func TestModeString(t *testing.T) {
	if Mode2LM.String() != "2LM" || Mode1LM.String() != "1LM" {
		t.Error("unexpected Mode strings")
	}
}

// TestLoadMissesThroughLLC: streaming loads over an array much larger
// than the LLC produce one LLC read per line.
func TestLoadMissesThroughLLC(t *testing.T) {
	s := newSystem(t, Mode2LM)
	r := mem.Region{Base: 0, Size: 256 * mem.KiB} // 16x LLC
	s.LoadRange(r)
	ctr := s.Counters()
	if ctr.LLCRead != r.Lines() {
		t.Errorf("LLC reads = %d, want %d", ctr.LLCRead, r.Lines())
	}
	if ctr.LLCWrite != 0 {
		t.Errorf("loads produced %d LLC writes", ctr.LLCWrite)
	}
}

// TestLLCCoalescesRepeatedTouches: re-touching a line that is still on
// chip generates no new memory traffic.
func TestLLCCoalescesRepeatedTouches(t *testing.T) {
	s := newSystem(t, Mode2LM)
	s.Load(0)
	before := s.Counters()
	s.Load(0)
	s.Store(0)
	s.RMW(0)
	if got := s.Counters(); got != before {
		t.Errorf("on-chip hits generated traffic: %v -> %v", before, got)
	}
	if s.DemandBytes() != 4*mem.Line+mem.Line { // load+load+store+2*rmw... see below
		// Load(64) + Load(64) + Store(64) + RMW(128) = 320
		t.Errorf("demand bytes = %d, want 320", s.DemandBytes())
	}
}

// TestStandardStoreDelayedWriteback: stores produce RFO reads now and
// writebacks only on eviction or drain.
func TestStandardStoreDelayedWriteback(t *testing.T) {
	s := newSystem(t, Mode2LM)
	r := mem.Region{Base: 0, Size: 4 * mem.KiB} // fits LLC
	s.StoreRange(r)
	ctr := s.Counters()
	if ctr.LLCRead != r.Lines() {
		t.Errorf("RFO reads = %d, want %d", ctr.LLCRead, r.Lines())
	}
	if ctr.LLCWrite != 0 {
		t.Errorf("writebacks issued before eviction: %d", ctr.LLCWrite)
	}
	s.DrainLLC()
	ctr = s.Counters()
	if ctr.LLCWrite != r.Lines() {
		t.Errorf("writebacks after drain = %d, want %d", ctr.LLCWrite, r.Lines())
	}
}

// TestStandardStoreWritebackGetsDDO: the RFO grants LLC ownership, so
// the delayed writeback should use the Dirty Data Optimization.
func TestStandardStoreWritebackGetsDDO(t *testing.T) {
	s := newSystem(t, Mode2LM)
	r := mem.Region{Base: 0, Size: 4 * mem.KiB}
	s.StoreRange(r)
	s.DrainLLC()
	ctr := s.Counters()
	if ctr.DDO != r.Lines() {
		t.Errorf("DDO writebacks = %d, want %d", ctr.DDO, r.Lines())
	}
}

// TestNTStoreBypassesLLC: nontemporal stores reach the IMC immediately.
func TestNTStoreBypassesLLC(t *testing.T) {
	s := newSystem(t, Mode2LM)
	r := mem.Region{Base: 0, Size: 4 * mem.KiB}
	s.StoreNTRange(r)
	ctr := s.Counters()
	if ctr.LLCWrite != r.Lines() {
		t.Errorf("LLC writes = %d, want %d", ctr.LLCWrite, r.Lines())
	}
	if ctr.LLCRead != 0 {
		t.Errorf("NT stores generated %d RFOs", ctr.LLCRead)
	}
	// And no DDO: NT stores never acquire ownership.
	if ctr.DDO != 0 {
		t.Errorf("NT stores got %d DDOs", ctr.DDO)
	}
}

// TestNTStoreInvalidatesLLCCopy: an NT store to a cached dirty line
// must not produce a later stale writeback.
func TestNTStoreInvalidatesLLCCopy(t *testing.T) {
	s := newSystem(t, Mode2LM)
	s.Store(0)   // dirty in LLC
	s.StoreNT(0) // invalidates
	before := s.Counters().LLCWrite
	s.DrainLLC()
	if got := s.Counters().LLCWrite - before; got != 0 {
		t.Errorf("drain wrote back %d stale lines", got)
	}
}

// Test2LMCleanMissAmplification: a read-only stream over an array
// larger than the DRAM cache shows 3x amplification (Figure 4a).
func Test2LMCleanMissAmplification(t *testing.T) {
	s := newSystem(t, Mode2LM)
	dcache := s.Platform().DRAMSize()
	arr, err := s.AddressSpace().Alloc(2 * dcache)
	if err != nil {
		t.Fatal(err)
	}
	// Two passes: the second is in steady state (all misses, all clean).
	s.LoadRange(arr)
	s.ResetStats()
	s.LoadRange(arr)
	ctr := s.Counters()
	if hr := ctr.HitRate(); hr != 0 {
		t.Errorf("hit rate = %.3f, want 0 (array is 2x cache)", hr)
	}
	if amp := ctr.Amplification(); amp != 3 {
		t.Errorf("clean read miss amplification = %.2f, want 3", amp)
	}
}

// Test1LMRouting: accesses route to the pool that owns the address.
func Test1LMRouting(t *testing.T) {
	s := newSystem(t, Mode1LM)
	d, err := s.AddressSpace().AllocDRAM(8 * mem.KiB)
	if err != nil {
		t.Fatal(err)
	}
	n, err := s.AddressSpace().AllocNVRAM(8 * mem.KiB)
	if err != nil {
		t.Fatal(err)
	}
	s.LoadRange(d)
	s.StoreNTRange(n)
	ctr := s.Counters()
	if ctr.DRAMRead != d.Lines() {
		t.Errorf("DRAM reads = %d, want %d", ctr.DRAMRead, d.Lines())
	}
	if ctr.NVRAMWrite != n.Lines() {
		t.Errorf("NVRAM writes = %d, want %d", ctr.NVRAMWrite, n.Lines())
	}
	// 1LM has no tag machinery.
	if ctr.TagAccesses() != 0 {
		t.Errorf("1LM produced %d tag events", ctr.TagAccesses())
	}
	if s.Controller() != nil {
		t.Error("1LM system exposes a 2LM controller")
	}
}

// TestSyncAdvancesClock: time accumulates and bandwidth is finite.
func TestSyncAdvancesClock(t *testing.T) {
	s := newSystem(t, Mode2LM)
	arr, _ := s.AddressSpace().Alloc(mem.MiB)
	s.SetTraffic(mem.Sequential, mem.Line)
	s.LoadRange(arr)
	sample := s.Sync("pass1", 0)
	if sample.Dur <= 0 || s.Clock() != sample.Time {
		t.Errorf("sync: dur=%g clock=%g time=%g", sample.Dur, s.Clock(), sample.Time)
	}
	if s.EffectiveBW() <= 0 {
		t.Error("effective bandwidth not positive")
	}
	c1 := s.Clock()
	s.LoadRange(arr)
	s.Sync("pass2", 0)
	if s.Clock() <= c1 {
		t.Error("clock did not advance on second sync")
	}
	if s.Series().Len() != 2 {
		t.Errorf("series has %d samples, want 2", s.Series().Len())
	}
}

// TestSyncComputeBound: a long compute interval dominates memory time.
func TestSyncComputeBound(t *testing.T) {
	s := newSystem(t, Mode2LM)
	s.Load(0)
	sample := s.Sync("k", 10.0)
	if sample.Dur != 10.0 {
		t.Errorf("compute-bound interval dur = %g, want 10", sample.Dur)
	}
}

// TestSyncEmptyInterval: a sync with no traffic and no compute takes
// zero time.
func TestSyncEmptyInterval(t *testing.T) {
	s := newSystem(t, Mode2LM)
	sample := s.Sync("idle", 0)
	if sample.Dur != 0 {
		t.Errorf("idle interval dur = %g, want 0", sample.Dur)
	}
}

// TestMissTrafficIsSlower: the same demand stream takes longer when it
// misses (2LM over-capacity) than when it hits (fits in cache).
func TestMissTrafficIsSlower(t *testing.T) {
	hitSys := newSystem(t, Mode2LM)
	small, _ := hitSys.AddressSpace().Alloc(hitSys.Platform().DRAMSize() / 2) // fits cache
	hitSys.LoadRange(small)                                                   // warm
	hitSys.ResetStats()
	hitSys.LoadRange(small)
	hitSys.Sync("hit", 0)

	missSys := newSystem(t, Mode2LM)
	big, _ := missSys.AddressSpace().Alloc(4 * missSys.Platform().DRAMSize())
	missSys.LoadRange(big)
	missSys.ResetStats()
	missSys.LoadRange(big)
	missSys.Sync("miss", 0)

	hitBW := hitSys.EffectiveBW()
	missBW := missSys.EffectiveBW()
	if missBW >= hitBW {
		t.Errorf("miss-heavy effective BW %.2f GB/s should be below hit BW %.2f GB/s",
			missBW/mem.GB, hitBW/mem.GB)
	}
}

// TestInstructionAccounting: instructions credit to the interval in
// which they were added and reset after Sync.
func TestInstructionAccounting(t *testing.T) {
	s := newSystem(t, Mode2LM)
	s.AddInstructions(1000)
	sm := s.Sync("a", 0.001)
	if sm.Instr != 1000 {
		t.Errorf("sample instr = %d, want 1000", sm.Instr)
	}
	sm2 := s.Sync("b", 0.001)
	if sm2.Instr != 0 {
		t.Errorf("instructions leaked into next interval: %d", sm2.Instr)
	}
}

// TestResetStatsKeepsCacheState mirrors the paper's prime-then-measure
// methodology.
func TestResetStatsKeepsCacheState(t *testing.T) {
	s := newSystem(t, Mode2LM)
	arr, _ := s.AddressSpace().Alloc(mem.MiB / 2)
	s.LoadRange(arr) // prime: fills DRAM cache
	s.ResetStats()
	if s.Counters() != (imc.Counters{}) || s.Clock() != 0 || s.DemandBytes() != 0 {
		t.Fatal("ResetStats left state")
	}
	s.LoadRange(arr)
	// Second pass misses only in the LLC; DRAM cache hits throughout.
	if hr := s.Counters().HitRate(); hr != 1 {
		t.Errorf("post-prime hit rate = %.3f, want 1", hr)
	}
}

func TestSetThreadsAndTraffic(t *testing.T) {
	s := newSystem(t, Mode2LM)
	s.SetThreads(-5)
	if s.Threads() != 1 {
		t.Error("SetThreads should clamp to 1")
	}
	s.SetThreads(8)
	if s.Threads() != 8 {
		t.Error("SetThreads(8) ignored")
	}
	s.SetTraffic(mem.Random, 0)
	if s.gran != mem.Line {
		t.Error("SetTraffic should default granularity to one line")
	}
}

func TestStringDescribesSystem(t *testing.T) {
	s := newSystem(t, Mode2LM)
	if str := s.String(); str == "" {
		t.Error("empty String()")
	}
}
