package core

import (
	"testing"

	"twolm/internal/mem"
)

// missSystem returns a 2LM system with a primed over-capacity array so
// that a read pass generates NVRAM traffic.
func missSystem(t *testing.T) (*System, mem.Region) {
	t.Helper()
	s := newSystem(t, Mode2LM)
	arr, err := s.AddressSpace().Alloc(4 * s.Platform().DRAMSize())
	if err != nil {
		t.Fatal(err)
	}
	s.StoreNTRange(arr) // prime dirty
	s.ResetStats()
	return s, arr
}

// TestStreamsDegradeNVRAMTime: the same dirty-miss traffic takes
// longer when the workload interleaves many address streams (Optane
// combining-buffer thrash).
func TestStreamsDegradeNVRAMTime(t *testing.T) {
	elapsed := func(streams int) float64 {
		s, arr := missSystem(t)
		s.SetStreams(streams)
		s.SetTraffic(mem.Sequential, mem.Line)
		s.StoreNTRange(arr)
		return s.Sync("x", 0).Dur
	}
	one := elapsed(1)
	six := elapsed(6)
	if six <= one {
		t.Errorf("6-stream pass (%.4fs) not slower than 1-stream (%.4fs)", six, one)
	}
	if six > 6*one {
		t.Errorf("6-stream penalty implausibly large: %.4f vs %.4f", six, one)
	}
}

// TestStreamsCongestionBounded: multi-stream random reads may slow
// down through IMC congestion (DRAM and NVRAM busy times serialize),
// but never beyond the serialized sum — the device bandwidth itself is
// stream-independent for random traffic.
func TestStreamsCongestionBounded(t *testing.T) {
	elapsed := func(streams int) float64 {
		s := newSystem(t, Mode2LM)
		arr, err := s.AddressSpace().Alloc(4 * s.Platform().DRAMSize())
		if err != nil {
			t.Fatal(err)
		}
		s.LoadRange(arr) // prime clean
		s.ResetStats()
		s.SetStreams(streams)
		s.SetTraffic(mem.Random, mem.Line)
		s.LoadRange(arr)
		return s.Sync("x", 0).Dur
	}
	one := elapsed(1)
	eight := elapsed(8)
	if eight < one {
		t.Errorf("congestion made things faster: %.5f vs %.5f", eight, one)
	}
	// Serialization can at most double a balanced interval.
	if eight > 2*one {
		t.Errorf("congestion exceeded the serialized bound: %.5f vs %.5f", eight, one)
	}
}

// TestMLPBoundsIssue: a dependency-limited workload (low MLP) takes
// longer than the hardware-MLP default on hit-dominated traffic.
func TestMLPBoundsIssue(t *testing.T) {
	elapsed := func(mlp float64) float64 {
		s := newSystem(t, Mode2LM)
		arr, _ := s.AddressSpace().Alloc(s.Platform().DRAMSize() / 2)
		s.LoadRange(arr)
		s.ResetStats()
		s.SetMLP(mlp)
		s.SetTraffic(mem.Random, mem.Line)
		s.SetThreads(4)
		s.LoadRange(arr)
		return s.Sync("x", 0).Dur
	}
	def := elapsed(0)
	limited := elapsed(1)
	if limited <= def {
		t.Errorf("MLP-1 pass (%.5fs) not slower than default (%.5fs)", limited, def)
	}
	// Negative values clamp to "default".
	if clamped := elapsed(-3); clamped != def {
		t.Errorf("negative MLP not treated as default: %.5f vs %.5f", clamped, def)
	}
}

// TestSetStreamsClamping: stream counts clamp into [1, 8].
func TestSetStreamsClamping(t *testing.T) {
	s := newSystem(t, Mode2LM)
	s.SetStreams(-1)
	if s.streams != 1 {
		t.Errorf("streams = %d, want 1", s.streams)
	}
	s.SetStreams(100)
	if s.streams != 8 {
		t.Errorf("streams = %d, want 8", s.streams)
	}
}

// Test2LMCongestionSerializesDRAMAndNVRAM: with many streams, a mixed
// DRAM+NVRAM interval takes at least the sum of the two busy times.
func Test2LMCongestionSerializesDRAMAndNVRAM(t *testing.T) {
	run := func(streams int) float64 {
		s, arr := missSystem(t)
		s.SetStreams(streams)
		s.SetTraffic(mem.Sequential, mem.Line)
		s.LoadRange(arr)
		return s.Sync("x", 0).Dur
	}
	low := run(2)  // max(dram, nvram)
	high := run(6) // dram + degraded nvram
	if high <= low {
		t.Errorf("congested interval (%.4f) not longer than uncongested (%.4f)", high, low)
	}
}

// TestDisableDDOIncreasesTraffic is the controller-level ablation at
// system scope: the same standard-store workload costs more DRAM reads
// without the optimization.
func TestDisableDDOIncreasesTraffic(t *testing.T) {
	run := func(disable bool) uint64 {
		s := newSystem(t, Mode2LM)
		s.Controller().DisableDDO = disable
		arr, _ := s.AddressSpace().Alloc(s.Platform().DRAMSize() / 2)
		s.LoadRange(arr) // prime + grant ownership via loads
		s.StoreRange(arr)
		s.DrainLLC()
		return s.Counters().DRAMRead
	}
	with := run(false)
	without := run(true)
	if without <= with {
		t.Errorf("disabling DDO did not add tag-check reads: %d vs %d", without, with)
	}
}
