// Package core is the primary contribution of this library: a
// heterogeneous-memory system simulator that lets workloads observe the
// behavior of Intel's Cascade Lake NVRAM platform in both of its
// operating modes:
//
//   - Mode2LM ("memory mode"): DRAM is a hardware-managed direct-mapped
//     cache in front of NVRAM (internal/imc), the configuration the
//     paper argues against.
//   - Mode1LM ("app-direct mode"): DRAM and NVRAM are separate pools
//     addressed directly, the substrate for software-managed data
//     movement (AutoTM, Sage).
//
// Workloads drive the System with Load / Store / StoreNT operations (or
// their Range forms, which are much faster for streaming access). The
// System filters them through a small last-level-cache model (so that
// standard stores produce RFOs and *delayed* writebacks, as on real
// hardware — the origin of the Dirty Data Optimization), forwards the
// resulting LLC reads and writes to the memory controller, and converts
// the exact transaction counts into elapsed time with the analytic
// bandwidth model at every Sync point.
//
// Counting is exact; time is modeled. See DESIGN.md for the validation
// of both halves against the paper.
package core

import (
	"fmt"

	"twolm/internal/bwmodel"
	"twolm/internal/cache"
	"twolm/internal/dram"
	"twolm/internal/imc"
	"twolm/internal/mem"
	"twolm/internal/nvram"
	"twolm/internal/perfcounter"
	"twolm/internal/platform"
	"twolm/internal/telemetry"
)

// Mode selects the platform memory mode.
type Mode uint8

const (
	// Mode2LM is memory mode: DRAM caches NVRAM transparently.
	Mode2LM Mode = iota
	// Mode1LM is app-direct mode: DRAM and NVRAM are explicit pools.
	Mode1LM
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	if m == Mode1LM {
		return "1LM"
	}
	return "2LM"
}

// LLCBytes is the unscaled last-level cache capacity of one socket of
// the paper's test platform (33 MB of non-inclusive L3).
const LLCBytes = 33 * 1024 * 1024

// nvramMixOverlap is the fraction of the serialized read+write service
// time a mixed NVRAM stream cannot hide (1.0 would mean no overlap).
const nvramMixOverlap = 0.7

// Config assembles a System.
type Config struct {
	// Platform is the machine description (capacities, scale, threads).
	Platform platform.Config
	// Mode selects 1LM or 2LM operation.
	Mode Mode
	// Model supplies bandwidths; nil selects the Cascade Lake model.
	Model *bwmodel.Model
	// LLCBytes overrides the unscaled LLC capacity; 0 selects LLCBytes.
	LLCBytes uint64
	// Policy overrides the 2LM controller policy; nil selects the
	// hardware behavior (direct mapped, allocate on every miss, DDO
	// enabled). Only meaningful in Mode2LM.
	Policy *imc.Policy
}

// System is the simulated machine. It is not safe for concurrent use;
// thread-level parallelism is a *model parameter* (SetThreads), keeping
// simulations deterministic.
type System struct {
	cfg   Config
	mode  Mode
	model *bwmodel.Model
	space *platform.AddressSpace

	// 2LM path.
	ctrl *imc.Controller

	// 1LM path: devices addressed directly, with counters kept in the
	// same imc.Counters shape for uniform reporting.
	dramMod  *dram.Module
	nvramMod *nvram.Module
	// The 1LM ("flat" mode) demand counters. In flat mode there is no
	// controller, so System itself accumulates the per-pool traffic;
	// the marker declares this to the ctrmut analyzer as the one
	// sanctioned counter-accumulation site outside internal/imc.
	flat imc.Counters //ctrmut:accumulator 1LM flat-mode demand counters, read back via Counters()

	// llc models the on-chip cache in front of the IMC: direct mapped,
	// line granular. It exists to (a) coalesce repeated touches and
	// (b) delay standard-store writebacks, which is what enables DDO.
	llc *cache.DirectMapped

	// Traffic descriptors for the bandwidth model.
	pattern mem.Pattern
	gran    int
	threads int
	streams int
	mlp     float64

	clock       float64
	demandBytes uint64 // total CPU-visible bytes touched
	lastCtr     imc.Counters
	lastDemand  uint64
	instr       uint64
	series      perfcounter.Series

	// DMA engine state: transfers bypass the CPU and the on-chip
	// cache; their device traffic counts normally but they cost no
	// issue bandwidth, and their engine occupancy is a separate
	// resource that overlaps compute. dmaNV tracks the NVRAM-side line
	// count so the CPU-latency estimate can exclude engine traffic.
	dmaBW    float64
	dmaBytes uint64
	dmaNV    uint64
	lastDMA  uint64
	lastDNV  uint64

	// tap observes the demand stream (trace recording).
	tap func(op TapOp, addr uint64)

	// batch is the reusable bulk-dispatch builder (scatter.go).
	batch *Batch

	// Telemetry: an optional sink sampled at demand-line boundaries
	// from the system-level Range entry points (so samples carry the
	// simulated clock), plus a forced labeled sample at every Sync.
	sink        telemetry.Sink
	sampleEvery uint64
	nextSample  uint64
	lastSample  uint64
	haveSample  bool
}

// New builds a System from the configuration.
func New(cfg Config) (*System, error) {
	if err := cfg.Platform.Validate(); err != nil {
		return nil, err
	}
	model := cfg.Model
	if model == nil {
		model = bwmodel.NewCascadeLake(cfg.Platform.Sockets)
	}
	dramMod, err := dram.New(cfg.Platform.Channels(), cfg.Platform.DRAMSize())
	if err != nil {
		return nil, err
	}
	nvramMod, err := nvram.New(cfg.Platform.Channels(), cfg.Platform.NVRAMSize())
	if err != nil {
		return nil, err
	}
	llcCap := cfg.LLCBytes
	if llcCap == 0 {
		llcCap = LLCBytes * uint64(cfg.Platform.Sockets)
	}
	llcCap = mem.AlignUp(llcCap/cfg.Platform.Scale, mem.Line)
	if llcCap < mem.Line {
		llcCap = mem.Line
	}
	llc, err := cache.New(llcCap)
	if err != nil {
		return nil, err
	}
	s := &System{
		cfg:      cfg,
		mode:     cfg.Mode,
		model:    model,
		space:    platform.NewAddressSpace(cfg.Platform, cfg.Mode == Mode2LM),
		dramMod:  dramMod,
		nvramMod: nvramMod,
		llc:      llc,
		pattern:  mem.Sequential,
		gran:     mem.Line,
		threads:  cfg.Platform.Threads,
		streams:  1,
	}
	if cfg.Mode == Mode2LM {
		policy := imc.HardwarePolicy()
		if cfg.Policy != nil {
			policy = *cfg.Policy
		}
		ctrl, err := imc.New(dramMod, nvramMod, imc.WithPolicy(policy))
		if err != nil {
			return nil, err
		}
		s.ctrl = ctrl
	}
	return s, nil
}

// Mode returns the operating mode.
func (s *System) Mode() Mode { return s.mode }

// Platform returns the machine description.
func (s *System) Platform() platform.Config { return s.cfg.Platform }

// AddressSpace returns the system's allocator.
func (s *System) AddressSpace() *platform.AddressSpace { return s.space }

// Controller returns the 2LM memory controller, or nil in 1LM mode.
func (s *System) Controller() *imc.Controller { return s.ctrl }

// DRAM returns the DRAM module, for per-channel counter inspection.
func (s *System) DRAM() *dram.Module { return s.dramMod }

// NVRAM returns the NVRAM module, for media counter inspection.
func (s *System) NVRAM() *nvram.Module { return s.nvramMod }

// Model returns the bandwidth model in use.
func (s *System) Model() *bwmodel.Model { return s.model }

// SetTraffic declares the spatial pattern and access granularity (in
// bytes) of the upcoming traffic, for the bandwidth model.
func (s *System) SetTraffic(p mem.Pattern, gran int) {
	s.pattern = p
	if gran <= 0 {
		gran = mem.Line
	}
	s.gran = gran
}

// SetStreams declares how many concurrent address streams make up the
// upcoming traffic (distinct tensors or arrays being walked at once).
// Beyond two streams, sequential NVRAM traffic degrades toward random
// behavior as the on-DIMM combining buffers thrash.
func (s *System) SetStreams(n int) {
	if n < 1 {
		n = 1
	}
	if n > 8 {
		n = 8
	}
	s.streams = n
}

// SetMLP overrides the per-thread memory-level parallelism assumed by
// the CPU issue bound. 0 restores the hardware limit (line-fill
// buffers, boosted by prefetch for sequential streams). Workloads with
// dependent access chains — offset, then edge, then property — sustain
// only 1-2 outstanding misses per thread.
func (s *System) SetMLP(mlp float64) {
	if mlp < 0 {
		mlp = 0
	}
	s.mlp = mlp
}

// SetThreads sets the modeled worker-thread count.
func (s *System) SetThreads(n int) {
	if n < 1 {
		n = 1
	}
	s.threads = n
}

// Threads returns the modeled worker-thread count.
func (s *System) Threads() int { return s.threads }

// TapOp identifies a demand operation observed by a tap.
type TapOp uint8

const (
	// TapLoad is a demand load.
	TapLoad TapOp = iota
	// TapStore is a standard store.
	TapStore
	// TapStoreNT is a nontemporal store.
	TapStoreNT
	// TapRMW is a read-modify-write.
	TapRMW
)

// SetTap installs an observer invoked on every demand operation before
// it is simulated (nil removes it). Taps see the operation stream the
// workload generates — internal/trace uses this to record replayable
// traces.
func (s *System) SetTap(tap func(op TapOp, addr uint64)) { s.tap = tap }

// --- demand path -----------------------------------------------------

// llcRead forwards an LLC-level read to the memory system.
func (s *System) llcRead(addr uint64) {
	if s.mode == Mode2LM {
		s.ctrl.LLCRead(addr)
		return
	}
	s.flat.LLCRead++
	if s.space.PoolOf(addr) == platform.PoolDRAM {
		s.flat.DRAMRead++
		s.dramMod.Read(addr)
	} else {
		s.flat.NVRAMRead++
		s.nvramMod.Read(addr)
	}
}

// llcWrite forwards an LLC-level write to the memory system.
func (s *System) llcWrite(addr uint64) {
	if s.mode == Mode2LM {
		s.ctrl.LLCWrite(addr)
		return
	}
	s.flat.LLCWrite++
	if s.space.PoolOf(addr) == platform.PoolDRAM {
		s.flat.DRAMWrite++
		s.dramMod.Write(addr)
	} else {
		s.flat.NVRAMWrite++
		s.nvramMod.Write(addr)
	}
}

// llcTouch simulates bringing addr into the on-chip cache, evicting and
// writing back the victim if dirty. dirty marks the new line's state
// (false for loads, true for stores and RMW).
func (s *System) llcTouch(addr uint64, dirty bool) {
	set, tag, res := s.llc.Lookup(addr)
	if res == cache.Hit {
		if dirty {
			s.llc.MarkDirty(set)
		}
		return // on-chip hit: no memory traffic
	}
	if res == cache.MissDirty {
		if victim, ok := s.llc.VictimAddr(set); ok {
			s.llcWrite(victim)
		}
	}
	s.llcRead(addr)
	s.llc.Insert(set, tag)
	if dirty {
		s.llc.MarkDirty(set)
	}
}

// Load simulates a demand load of the line containing addr.
func (s *System) Load(addr uint64) {
	if s.tap != nil {
		s.tap(TapLoad, addr)
	}
	s.demandBytes += mem.Line
	s.llcTouch(addr, false)
}

// Store simulates a standard store to the line containing addr: an RFO
// read (unless the line is already on chip) and a delayed writeback when
// the line is eventually evicted.
func (s *System) Store(addr uint64) {
	if s.tap != nil {
		s.tap(TapStore, addr)
	}
	s.demandBytes += mem.Line
	s.llcTouch(addr, true)
}

// RMW simulates a load followed by a store to the same line (one RFO,
// one delayed writeback). Demand bytes count both halves, matching the
// paper's effective-bandwidth accounting for read-modify-write kernels.
func (s *System) RMW(addr uint64) {
	if s.tap != nil {
		s.tap(TapRMW, addr)
	}
	s.demandBytes += 2 * mem.Line
	s.llcTouch(addr, true)
}

// StoreNT simulates a nontemporal store: it bypasses the on-chip cache
// (invalidating any copy) and reaches the IMC directly as an LLC write.
func (s *System) StoreNT(addr uint64) {
	if s.tap != nil {
		s.tap(TapStoreNT, addr)
	}
	s.demandBytes += mem.Line
	set, _, res := s.llc.Lookup(addr)
	if res == cache.Hit {
		// NT stores invalidate a cached copy without writing it back.
		s.llc.Invalidate(set)
	}
	s.llcWrite(addr)
}

// The Range forms below are the batched fast path of the demand
// pipeline: for a sequential range with no tap installed they hoist the
// tap check out of the loop, accumulate the demand-byte counter once
// per batch instead of once per line, and (for nontemporal stores)
// hand the whole run to the controller's range entry point. Whenever a
// tap is installed they fall back to the per-line calls so the tap
// observes every operation; counter results are byte-identical either
// way (the differential tests in fastpath_test.go pin this).

// rangeTouch is llcTouch unrolled over every line of r. Consecutive
// lines map to consecutive on-chip sets, so the set/tag pair advances
// incrementally — one division at the range start instead of one per
// line. The per-line outcomes are identical to calling llcTouch on
// each line in ascending order.
func (s *System) rangeTouch(r mem.Region, dirty bool) {
	sets := s.llc.Sets()
	set, tag := s.llc.Index(r.Base)
	end := r.End()
	for a := r.Base; a < end; a += mem.Line {
		res := s.llc.LookupAt(set, tag)
		if res == cache.Hit {
			if dirty {
				s.llc.MarkDirty(set)
			}
		} else {
			if res == cache.MissDirty {
				if victim, ok := s.llc.VictimAddr(set); ok {
					s.llcWrite(victim)
				}
			}
			s.llcRead(a)
			s.llc.Insert(set, tag)
			if dirty {
				s.llc.MarkDirty(set)
			}
		}
		set++
		if set == sets {
			set, tag = 0, tag+1
		}
	}
}

// seqRange is rangeTouch with the on-chip steady state folded closed.
// A sequential walk saturates the direct-mapped LLC after at most two
// set wraps: past line 2K (K = LLC sets) every line misses against this
// range's own install of line i-K — clean for loads, dirty for stores —
// so the remainder needs no per-line on-chip probes. Loads stream the
// remainder through the controller's batched read path; stores stream
// the interleaved eviction/demand pair through LLCWritebackReadRange
// (the victim of line i is exactly line i-K, a sequential stream K
// lines behind). The LLC's final state — the last min(m, K) lines
// resident — commits as a bulk stamp. Counter results are byte-identical
// to rangeTouch (fastpath_test.go pins this).
func (s *System) seqRange(r mem.Region, dirty bool) {
	n := r.Lines()
	ks := s.llc.Sets()
	prefix := min(n, 2*ks)
	s.rangeTouch(mem.Region{Base: r.Base, Size: prefix * mem.Line}, dirty)
	m := n - prefix
	if m == 0 {
		return
	}
	base := r.Base + prefix*mem.Line
	if dirty {
		wbase := base - ks*mem.Line
		if s.mode == Mode2LM {
			s.ctrl.LLCWritebackReadRange(wbase, base, m)
		} else {
			s.flatWriteRange(wbase, m)
			s.flatReadRange(base, m)
		}
	} else if s.mode == Mode2LM {
		s.ctrl.LLCReadRange(base, m)
	} else {
		s.flatReadRange(base, m)
	}
	flags := cache.EntryValid
	if dirty {
		flags |= cache.EntryDirty
	}
	w := min(m, ks)
	ws, wt := s.llc.Index(base + (m-w)*mem.Line)
	s.llc.StampSeqRun(ws, wt, w, flags)
}

// LoadRange streams demand loads over every line of r.
func (s *System) LoadRange(r mem.Region) {
	if s.tap != nil {
		for a := r.Base; a < r.End(); a += mem.Line {
			s.Load(a)
		}
	} else {
		s.seqRange(r, false)
		s.demandBytes += mem.Line * r.Lines()
	}
	if s.sink != nil {
		s.maybeSample()
	}
}

// StoreRange streams standard stores over every line of r.
func (s *System) StoreRange(r mem.Region) {
	if s.tap != nil {
		for a := r.Base; a < r.End(); a += mem.Line {
			s.Store(a)
		}
	} else {
		s.seqRange(r, true)
		s.demandBytes += mem.Line * r.Lines()
	}
	if s.sink != nil {
		s.maybeSample()
	}
}

// RMWRange streams read-modify-writes over every line of r.
func (s *System) RMWRange(r mem.Region) {
	if s.tap != nil {
		for a := r.Base; a < r.End(); a += mem.Line {
			s.RMW(a)
		}
	} else {
		s.seqRange(r, true)
		s.demandBytes += 2 * mem.Line * r.Lines()
	}
	if s.sink != nil {
		s.maybeSample()
	}
}

// StoreNTRange streams nontemporal stores over every line of r. NT
// stores bypass the on-chip cache, so with no tap installed the whole
// run reaches the memory system as one consecutive batch: the LLC
// invalidation sweep happens first (it generates no traffic), then the
// controller services the range through its batched entry point.
func (s *System) StoreNTRange(r mem.Region) {
	if s.tap != nil {
		for a := r.Base; a < r.End(); a += mem.Line {
			s.StoreNT(a)
		}
		if s.sink != nil {
			s.maybeSample()
		}
		return
	}
	sets := s.llc.Sets()
	set, tag := s.llc.Index(r.Base)
	end := r.End()
	for a := r.Base; a < end; a += mem.Line {
		if s.llc.LookupAt(set, tag) == cache.Hit {
			s.llc.Invalidate(set)
		}
		set++
		if set == sets {
			set, tag = 0, tag+1
		}
	}
	lines := r.Lines()
	if s.mode == Mode2LM {
		s.ctrl.LLCWriteRange(r.Base, lines)
	} else {
		s.flatWriteRange(r.Base, lines)
	}
	s.demandBytes += mem.Line * lines
	if s.sink != nil {
		s.maybeSample()
	}
}

// flatWriteRange routes n consecutive line writes through the 1LM
// path, splitting the run at the DRAM/NVRAM pool boundary and batching
// the flat counters, DRAM channel counts, and NVRAM media accounting
// per segment. Closure-free: this sits on the //alloc:free demand path.
func (s *System) flatWriteRange(addr uint64, n uint64) {
	s.flat.LLCWrite += n
	dn := s.poolSplitLines(addr, n)
	if dn > 0 {
		s.flat.DRAMWrite += dn
		s.dramMod.WriteRange(addr, dn)
	}
	if n > dn {
		s.flat.NVRAMWrite += n - dn
		s.nvramMod.WriteLineRun(addr+dn*mem.Line, n-dn)
	}
}

// flatReadRange routes n consecutive line reads through the 1LM path,
// batched the same way as flatWriteRange.
func (s *System) flatReadRange(addr uint64, n uint64) {
	s.flat.LLCRead += n
	dn := s.poolSplitLines(addr, n)
	if dn > 0 {
		s.flat.DRAMRead += dn
		s.dramMod.ReadRange(addr, dn)
	}
	if n > dn {
		s.flat.NVRAMRead += n - dn
		s.nvramMod.ReadLineRun(addr+dn*mem.Line, n-dn)
	}
}

// poolSplitLines returns how many of the n lines starting at addr fall
// in the DRAM pool — the 1LM address space is a DRAM region followed by
// an NVRAM region, so a run splits into at most a DRAM prefix and an
// NVRAM suffix.
func (s *System) poolSplitLines(addr uint64, n uint64) uint64 {
	boundary := s.space.DRAMBoundary()
	if addr >= boundary {
		return 0
	}
	if addr+n*mem.Line <= boundary {
		return n
	}
	return (boundary - addr + mem.Line - 1) / mem.Line
}

// eachPoolRun splits the n lines starting at addr into at most two
// runs of uniform pool membership (the 1LM address space is a DRAM
// region followed by an NVRAM region) and calls fn for each.
func (s *System) eachPoolRun(addr uint64, n uint64, fn func(pool platform.Pool, base, cnt uint64)) {
	end := addr + n*mem.Line
	boundary := s.space.DRAMBoundary()
	if addr >= boundary {
		fn(platform.PoolNVRAM, addr, n)
		return
	}
	if end <= boundary {
		fn(platform.PoolDRAM, addr, n)
		return
	}
	dramLines := (boundary - addr + mem.Line - 1) / mem.Line
	fn(platform.PoolDRAM, addr, dramLines)
	fn(platform.PoolNVRAM, addr+dramLines*mem.Line, n-dramLines)
}

// SetDMABandwidth configures the copy-engine ceiling in bytes/s for
// DMACopy transfers (0 = engine disabled; transfers are then limited
// only by the devices). The paper's discussion (Section VII-B) notes
// that current DMA engines are built for I/O rates; modeling the
// ceiling lets the co-design experiments compare generations.
func (s *System) SetDMABandwidth(bw float64) {
	if bw < 0 {
		bw = 0
	}
	s.dmaBW = bw
}

// DMACopy models an asynchronous copy-engine transfer of src to dst
// (equal sizes; dst is truncated or zero-padded to src's length at the
// model's line granularity — both regions are streamed whole). The
// transfer reads and writes the devices directly: no RFOs, no on-chip
// cache, no CPU issue cost. Its time overlaps compute and demand
// traffic, surfacing only as device busy time plus the engine's own
// occupancy.
//
// In 2LM mode a copy engine would sit behind the same DRAM cache as
// the CPU, defeating the point; DMACopy therefore drives the devices
// through the 1LM path and is intended for app-direct systems.
func (s *System) DMACopy(src, dst mem.Region) {
	srcLines := (src.Size + mem.Line - 1) / mem.Line
	if s.mode == Mode2LM {
		// Behind the cache: the engine's streams reach the controller
		// as consecutive LLC-level reads and writes, serviced batched.
		s.ctrl.LLCReadRange(src.Base, srcLines)
		s.ctrl.LLCWriteRange(dst.Base, srcLines)
	} else {
		route := func(write bool) func(pool platform.Pool, base, cnt uint64) {
			return func(pool platform.Pool, base, cnt uint64) {
				if pool == platform.PoolDRAM {
					if write {
						s.flat.DRAMWrite += cnt
						s.dramMod.WriteRange(base, cnt)
					} else {
						s.flat.DRAMRead += cnt
						s.dramMod.ReadRange(base, cnt)
					}
					return
				}
				end := base + cnt*mem.Line
				if write {
					s.flat.NVRAMWrite += cnt
					for a := base; a < end; a += mem.Line {
						s.nvramMod.Write(a)
					}
				} else {
					s.flat.NVRAMRead += cnt
					for a := base; a < end; a += mem.Line {
						s.nvramMod.Read(a)
					}
				}
				s.dmaNV += cnt
			}
		}
		s.eachPoolRun(src.Base, srcLines, route(false))
		s.eachPoolRun(dst.Base, srcLines, route(true))
	}
	s.dmaBytes += 2 * src.Size
	if s.sink != nil {
		s.maybeSample()
	}
}

// DrainLLC writes back every dirty line held in the on-chip cache
// model. Call at kernel boundaries so deferred writebacks are charged
// to the workload that produced them.
func (s *System) DrainLLC() {
	sets := s.llc.Sets()
	for set := uint64(0); set < sets; set++ {
		if s.llc.IsDirty(set) {
			if victim, ok := s.llc.VictimAddr(set); ok {
				s.llcWrite(victim)
			}
		}
	}
	s.llc.Reset()
}

// --- statistics and time ---------------------------------------------

// Counters returns the cumulative memory-controller counters.
func (s *System) Counters() imc.Counters {
	if s.mode == Mode2LM {
		return s.ctrl.Counters()
	}
	return s.flat
}

// DemandBytes returns total CPU-visible bytes touched.
func (s *System) DemandBytes() uint64 { return s.demandBytes }

// AddInstructions credits n retired instructions to the current
// interval (for the MIPS trace of the paper's Figure 5a).
func (s *System) AddInstructions(n uint64) { s.instr += n }

// Clock returns the simulated elapsed time in seconds.
func (s *System) Clock() float64 { return s.clock }

// Series returns the sampled counter time series.
func (s *System) Series() *perfcounter.Series { return &s.series }

// SetTelemetry attaches (or, with a nil sink, detaches) a telemetry
// sink sampled every `every` demand lines at the Range entry points.
// Sync additionally force-records a labeled sample at every interval
// boundary regardless of the demand clock.
func (s *System) SetTelemetry(sink telemetry.Sink, every uint64) {
	s.sink = sink
	s.sampleEvery = every
	s.haveSample = false
	s.lastSample = 0
	if sink != nil {
		s.nextSample = telemetry.NextBoundary(s.Counters().Demand(), every)
	}
}

// Snapshot implements telemetry.Source: the system counters plus the
// simulated clock and per-channel DRAM CAS counts. Media counters are
// absent, as on the controller (see imc.Controller.Snapshot); use
// NVRAM().Snapshot for media-granularity observation.
func (s *System) Snapshot() telemetry.Sample {
	ctr := s.Counters()
	sample := telemetry.Sample{
		Demand:       ctr.Demand(),
		Clock:        s.clock,
		LLCRead:      ctr.LLCRead,
		LLCWrite:     ctr.LLCWrite,
		DRAMRead:     ctr.DRAMRead,
		DRAMWrite:    ctr.DRAMWrite,
		NVRAMRead:    ctr.NVRAMRead,
		NVRAMWrite:   ctr.NVRAMWrite,
		TagHit:       ctr.TagHit,
		TagMissClean: ctr.TagMissClean,
		TagMissDirty: ctr.TagMissDirty,
		DDO:          ctr.DDO,
	}
	chs := s.dramMod.ChannelCounters()
	sample.ChannelReads = make([]uint64, len(chs))
	sample.ChannelWrites = make([]uint64, len(chs))
	for i, ch := range chs {
		sample.ChannelReads[i] = ch.CASReads
		sample.ChannelWrites[i] = ch.CASWrites
	}
	return sample
}

// maybeSample records a sample if the demand clock crossed the next
// sampling boundary. Callers have already checked sink != nil.
func (s *System) maybeSample() {
	d := s.Counters().Demand()
	if d < s.nextSample {
		return
	}
	s.recordSample("")
}

// recordSample snapshots the system and hands the sample to the sink.
// The snapshot happens behind this boundary so the per-line paths that
// call maybeSample never see the allocation.
//
//alloc:cold telemetry samples fire once per sampling interval, not per line; the snapshot copies amortize to ~0 allocs/op
func (s *System) recordSample(label string) {
	sample := s.Snapshot()
	sample.Label = label
	s.sink.Record(sample)
	s.lastSample = sample.Demand
	s.haveSample = true
	s.nextSample = telemetry.NextBoundary(sample.Demand, s.sampleEvery)
}

// FlushTelemetry records a final sample for the partial tail interval
// if demand advanced past the last recorded sample (or none was
// recorded yet). No-op without a sink.
func (s *System) FlushTelemetry() {
	if s.sink == nil {
		return
	}
	d := s.Counters().Demand()
	if s.haveSample && d == s.lastSample {
		return
	}
	s.recordSample("")
}

// nvramPattern maps the demand pattern onto the pattern the NVRAM
// devices observe. Behind the 2LM miss handler every NVRAM request is
// a 64 B line; per-thread sequential streams interleave at the IMC,
// and random demand keeps its cluster size (a 512 B random demand
// touch produces eight consecutive line fills, which still merge at
// the media).
func (s *System) nvramPattern() (mem.Pattern, int) {
	if s.mode == Mode2LM {
		if s.pattern == mem.Sequential {
			return mem.InterleavedSeq, mem.Line
		}
		return mem.Random, s.gran
	}
	return s.pattern, s.gran
}

// avgDemandLatencyNS estimates the mean service latency of a demand
// request in the interval, for the CPU issue bound.
func (s *System) avgDemandLatencyNS(d imc.Counters) float64 {
	demand := d.Demand()
	if demand == 0 {
		return s.model.DRAM.ReadLatencyNS
	}
	if s.mode == Mode2LM {
		// Every request first touches DRAM; misses add an NVRAM read.
		missFrac := float64(d.NVRAMRead) / float64(demand)
		return s.model.DRAM.ReadLatencyNS + missFrac*s.model.NVRAM.ReadLatencyNS
	}
	nvLines := d.NVRAMRead + d.NVRAMWrite
	// Exclude copy-engine traffic: the CPU never waits on it.
	if dmaNV := s.dmaNV - s.lastDNV; nvLines > dmaNV {
		nvLines -= dmaNV
	} else {
		nvLines = 0
	}
	nvFrac := float64(nvLines) / float64(demand)
	if nvFrac > 1 {
		nvFrac = 1
	}
	return (1-nvFrac)*s.model.DRAM.ReadLatencyNS + nvFrac*s.model.NVRAM.ReadLatencyNS
}

// Sync closes the current interval: it computes the interval's elapsed
// time from the traffic generated since the previous Sync (overlapped
// with computeSeconds of CPU work), advances the clock, and records a
// sample labeled label. It returns the sample.
//
// Interval time is the maximum busy time over the system's resources:
//
//	DRAM channels:  readBytes/readBW + writeBytes/writeBW
//	NVRAM DIMMs:    readBytes/readBW + writeBytes/writeBW
//	CPU issue:      demandBytes / issueBW(latency)
//	CPU compute:    computeSeconds
func (s *System) Sync(label string, computeSeconds float64) perfcounter.Sample {
	ctr := s.Counters()
	d := ctr.Sub(s.lastCtr)
	demand := s.demandBytes - s.lastDemand

	nvPat, nvGran := s.nvramPattern()
	dramGran := s.gran
	if s.mode == Mode2LM {
		dramGran = mem.Line
	}

	var dramTime, nvramTime, cpuTime float64
	if d.DRAMRead > 0 {
		dramTime += float64(d.DRAMRead*mem.Line) / s.model.DRAMReadBW(s.pattern, dramGran, s.threads)
	}
	if d.DRAMWrite > 0 {
		dramTime += float64(d.DRAMWrite*mem.Line) / s.model.DRAMWriteBW(s.pattern, dramGran, s.threads)
	}
	if d.NVRAMRead > 0 || d.NVRAMWrite > 0 {
		// In 2LM the miss handler issues NVRAM traffic with the IMC's
		// own queue depth; in 1LM the CPU threads issue it directly.
		nvReadBW := s.model.NVRAMReadBW(nvPat, nvGran, s.threads, s.streams)
		nvWriteBW := s.model.NVRAMWriteBW(nvPat, nvGran, s.threads, s.streams)
		if s.mode == Mode2LM {
			nvReadBW = s.model.NVRAMReadBW2LM(nvPat, nvGran, s.streams)
			nvWriteBW = s.model.NVRAMWriteBW2LM(nvPat, nvGran, s.threads, s.streams)
		}
		var rT, wT float64
		if d.NVRAMRead > 0 {
			rT = float64(d.NVRAMRead*mem.Line) / nvReadBW
		}
		if d.NVRAMWrite > 0 {
			wT = float64(d.NVRAMWrite*mem.Line) / nvWriteBW
		}
		// Optane DIMMs overlap reads with writes partially: mixed
		// streams are bounded by the slower direction, with a floor of
		// nvramMixOverlap times the serialized time. This matches the
		// paper's Figure 4b, where ~8 GB/s of miss-handler write-backs
		// proceed alongside an equal rate of fills. The overlap shrinks
		// to nothing as more address streams contend for the DIMM's
		// buffers.
		overlap := nvramMixOverlap
		if s.streams > 2 {
			t := float64(s.streams-2) / 2
			if t > 1 {
				t = 1
			}
			overlap += (1 - nvramMixOverlap) * t
		}
		nvramTime = max4(rT, wT, overlap*(rT+wT), 0)
	}
	if demand > 0 {
		lat := s.avgDemandLatencyNS(d)
		cpuTime = float64(demand) / s.model.DemandIssueBW(s.pattern, s.threads, lat, s.mlp)
	}

	// Copy-engine occupancy: a separate resource overlapping compute
	// and demand traffic, bounded by the engine's own ceiling.
	var dmaTime float64
	if moved := s.dmaBytes - s.lastDMA; moved > 0 && s.dmaBW > 0 {
		dmaTime = float64(moved) / s.dmaBW
	}

	memTime := dramTime
	if nvramTime > memTime {
		memTime = nvramTime
	}
	if s.mode == Mode2LM && s.streams > 2 && nvramTime > 0 {
		// IMC pipeline congestion: when many streams force NVRAM
		// write-queue pressure, DRAM requests queue behind the same
		// controller and the two busy times stop overlapping.
		memTime = dramTime + nvramTime
	}
	dt := max4(memTime, cpuTime, computeSeconds, dmaTime)
	s.clock += dt

	sample := perfcounter.Sample{
		Time:  s.clock,
		Dur:   dt,
		Delta: d,
		Instr: s.instr,
		Label: label,
	}
	s.series.Append(sample)
	s.lastCtr = ctr
	s.lastDemand = s.demandBytes
	s.lastDMA = s.dmaBytes
	s.lastDNV = s.dmaNV
	s.instr = 0
	if s.sink != nil {
		// Interval boundaries are always worth a sample: record one
		// carrying the interval label, regardless of the demand clock.
		s.recordSample(label)
	}
	return sample
}

func max4(a, b, c, d float64) float64 {
	m := a
	if b > m {
		m = b
	}
	if c > m {
		m = c
	}
	if d > m {
		m = d
	}
	return m
}

// EffectiveBW returns the application-visible bandwidth so far in
// bytes/s: demand bytes over elapsed time — the paper's "effective"
// bar, "computed by wall clock time and data accessed".
func (s *System) EffectiveBW() float64 {
	if s.clock <= 0 {
		return 0
	}
	return float64(s.demandBytes) / s.clock
}

// ResetStats zeroes counters, clock, demand accounting and the sample
// series, preserving cache contents — the paper's procedure of priming
// the DRAM cache and then measuring.
func (s *System) ResetStats() {
	if s.mode == Mode2LM {
		s.ctrl.ResetCounters()
	} else {
		s.flat = imc.Counters{}
		s.dramMod.Reset()
		s.nvramMod.Reset()
	}
	s.clock = 0
	s.demandBytes = 0
	s.lastCtr = imc.Counters{}
	s.lastDemand = 0
	s.instr = 0
	s.dmaBytes = 0
	s.dmaNV = 0
	s.lastDMA = 0
	s.lastDNV = 0
	s.series = perfcounter.Series{}
	if s.sink != nil {
		// The demand clock rewound to zero; restart the sampling phase.
		s.haveSample = false
		s.lastSample = 0
		s.nextSample = telemetry.NextBoundary(0, s.sampleEvery)
	}
}

// String summarizes the system configuration.
func (s *System) String() string {
	p := s.cfg.Platform
	return fmt.Sprintf("%s system: %d socket(s), %s DRAM, %s NVRAM (scale 1/%d, %d threads)",
		s.mode, p.Sockets, mem.FormatBytes(p.DRAMSize()), mem.FormatBytes(p.NVRAMSize()),
		p.Scale, s.threads)
}
