package core

import (
	"fmt"
	"testing"

	"twolm/internal/imc"
	"twolm/internal/lfsr"
	"twolm/internal/mem"
	"twolm/internal/nvram"
	"twolm/internal/platform"
)

// fastpathConfigs is the acceptance matrix: both operating modes, and
// in 2LM every policy variant (hardware, no-write-allocate,
// no-read-allocate, DDO off) at Ways 1 and 4.
func fastpathConfigs() map[string]Config {
	hw := imc.HardwarePolicy()
	noWA := hw
	noWA.WriteAllocate = false
	noRA := hw
	noRA.ReadAllocate = false
	noDDO := hw
	noDDO.DisableDDO = true
	ways4 := hw
	ways4.Ways = 4
	cfgs := map[string]Config{
		"1lm": {Mode: Mode1LM},
	}
	for name, p := range map[string]imc.Policy{
		"2lm-hardware": hw, "2lm-no-write-allocate": noWA,
		"2lm-no-read-allocate": noRA, "2lm-ddo-off": noDDO, "2lm-4way": ways4,
	} {
		p := p
		cfgs[name] = Config{Mode: Mode2LM, Policy: &p}
	}
	return cfgs
}

// newFastpathPair builds two identical systems; the first gets a no-op
// tap installed, which forces every Range call down the per-line slow
// path, while the second takes the batched fast path. Any counter
// divergence between them is a fast-path bug.
func newFastpathPair(t *testing.T, cfg Config) (slow, fast *System) {
	t.Helper()
	build := func() *System {
		c := cfg
		c.Platform = platform.CascadeLake(1, 16384, 4)
		sys, err := New(c)
		if err != nil {
			t.Fatal(err)
		}
		return sys
	}
	slow, fast = build(), build()
	slow.SetTap(func(op TapOp, addr uint64) {})
	return slow, fast
}

// assertSameSystemTraffic asserts byte-identical controller counters,
// demand bytes, per-channel CAS counts, and NVRAM media counters.
func assertSameSystemTraffic(t *testing.T, label string, slow, fast *System) {
	t.Helper()
	if a, b := slow.Counters(), fast.Counters(); a != b {
		t.Errorf("%s: counters diverge\n slow: %v\n fast: %v", label, a, b)
	}
	if a, b := slow.DemandBytes(), fast.DemandBytes(); a != b {
		t.Errorf("%s: demand bytes diverge: slow %d, fast %d", label, a, b)
	}
	ac, bc := slow.DRAM().ChannelCounters(), fast.DRAM().ChannelCounters()
	for i := range ac {
		if ac[i] != bc[i] {
			t.Errorf("%s: channel %d CAS diverges: slow %+v, fast %+v", label, i, ac[i], bc[i])
		}
	}
	type media struct{ r, w, mr, mw uint64 }
	am := media{slow.NVRAM().TotalReads(), slow.NVRAM().TotalWrites(),
		slow.NVRAM().TotalMediaReads(), slow.NVRAM().TotalMediaWrites()}
	bm := media{fast.NVRAM().TotalReads(), fast.NVRAM().TotalWrites(),
		fast.NVRAM().TotalMediaReads(), fast.NVRAM().TotalMediaWrites()}
	if am != bm {
		t.Errorf("%s: NVRAM media counters diverge: slow %+v, fast %+v", label, am, bm)
	}
}

// driveSequential runs the sequential workload mix — load, store, RMW,
// and nontemporal-store sweeps over a region exceeding the DRAM cache,
// repeated so the second pass sees a primed cache.
func driveSequential(sys *System, region mem.Region) {
	for pass := 0; pass < 2; pass++ {
		sys.LoadRange(region)
		sys.StoreRange(region)
		sys.RMWRange(region)
		sys.StoreNTRange(region)
	}
}

// driveRandom runs an LFSR-random pass touching every line once with a
// rotating op mix.
func driveRandom(t *testing.T, sys *System, region mem.Region) {
	t.Helper()
	err := lfsr.Sequence(region.Lines(), 0xF00D, func(idx uint64) {
		addr := region.Base + idx*mem.Line
		switch idx & 3 {
		case 0:
			sys.Load(addr)
		case 1:
			sys.Store(addr)
		case 2:
			sys.RMW(addr)
		default:
			sys.StoreNT(addr)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestFastPathSequentialMatrix proves the batched sequential path
// produces byte-identical traffic to the per-line path across the full
// mode/policy matrix.
func TestFastPathSequentialMatrix(t *testing.T) {
	for name, cfg := range fastpathConfigs() {
		t.Run(name, func(t *testing.T) {
			slow, fast := newFastpathPair(t, cfg)
			region, err := slow.AddressSpace().Alloc(2 * slow.Platform().DRAMSize())
			if err != nil {
				t.Fatal(err)
			}
			regionF, err := fast.AddressSpace().Alloc(2 * fast.Platform().DRAMSize())
			if err != nil {
				t.Fatal(err)
			}
			if region != regionF {
				t.Fatalf("allocators diverged: %v vs %v", region, regionF)
			}
			driveSequential(slow, region)
			driveSequential(fast, region)
			slow.DrainLLC()
			fast.DrainLLC()
			assertSameSystemTraffic(t, name, slow, fast)
		})
	}
}

// TestFastPathRandomMatrix proves the per-line ops themselves are
// unperturbed by the strength reduction, and that random traffic
// interleaved before and after batched calls leaves both systems in
// identical states.
func TestFastPathRandomMatrix(t *testing.T) {
	for name, cfg := range fastpathConfigs() {
		t.Run(name, func(t *testing.T) {
			slow, fast := newFastpathPair(t, cfg)
			region, err := slow.AddressSpace().Alloc(2 * slow.Platform().DRAMSize())
			if err != nil {
				t.Fatal(err)
			}
			if _, err := fast.AddressSpace().Alloc(2 * fast.Platform().DRAMSize()); err != nil {
				t.Fatal(err)
			}
			driveRandom(t, slow, region)
			driveRandom(t, fast, region)
			// Batched sweeps over the randomly-dirtied state.
			driveSequential(slow, region)
			driveSequential(fast, region)
			driveRandom(t, slow, region)
			driveRandom(t, fast, region)
			slow.DrainLLC()
			fast.DrainLLC()
			assertSameSystemTraffic(t, name, slow, fast)
		})
	}
}

// TestDMACopy2LMMatchesPerLine proves the batched 2LM DMACopy route
// generates exactly the traffic of per-line controller calls.
func TestDMACopy2LMMatchesPerLine(t *testing.T) {
	cfgs := fastpathConfigs()
	for _, name := range []string{"2lm-hardware", "2lm-4way", "2lm-ddo-off"} {
		t.Run(name, func(t *testing.T) {
			slow, fast := newFastpathPair(t, cfgs[name])
			src := mem.Region{Base: 0, Size: 128 * mem.KiB}
			dst := mem.Region{Base: 4 * mem.MiB, Size: 128 * mem.KiB}
			// Old-style per-line route, straight at the controller.
			for a := src.Base; a < src.End(); a += mem.Line {
				slow.Controller().LLCRead(a)
			}
			for a := dst.Base; a < dst.Base+src.Size; a += mem.Line {
				slow.Controller().LLCWrite(a)
			}
			fast.DMACopy(src, dst)
			assertSameSystemTraffic(t, name, slow, fast)
		})
	}
}

// TestDMACopy1LMPoolSplit pins the 1LM DMACopy batching against
// hand-derived counts for a transfer straddling the DRAM/NVRAM pool
// boundary, including the media-level writes of a reference NVRAM
// module driven per line.
func TestDMACopy1LMPoolSplit(t *testing.T) {
	sys, err := New(Config{Platform: platform.CascadeLake(1, 16384, 4), Mode: Mode1LM})
	if err != nil {
		t.Fatal(err)
	}
	boundary := sys.AddressSpace().DRAMBoundary()
	// src straddles the boundary: half DRAM, half NVRAM.
	src := mem.Region{Base: boundary - 64*mem.KiB, Size: 128 * mem.KiB}
	dst := mem.Region{Base: boundary + mem.MiB, Size: 128 * mem.KiB}
	sys.DMACopy(src, dst)

	ctr := sys.Counters()
	srcLines := src.Size / mem.Line
	wantDRAMRead := (boundary - src.Base) / mem.Line
	wantNVRAMRead := srcLines - wantDRAMRead
	if ctr.DRAMRead != wantDRAMRead || ctr.NVRAMRead != wantNVRAMRead {
		t.Errorf("split reads: got dramR=%d nvR=%d, want %d/%d",
			ctr.DRAMRead, ctr.NVRAMRead, wantDRAMRead, wantNVRAMRead)
	}
	if ctr.NVRAMWrite != srcLines {
		t.Errorf("NVRAMWrite = %d, want %d", ctr.NVRAMWrite, srcLines)
	}
	if ctr.LLCRead != 0 || ctr.LLCWrite != 0 {
		t.Errorf("DMA traffic must not count as demand: %v", ctr)
	}

	// Reference NVRAM module with identical geometry, driven per line
	// in the same order, must land on the same media counters.
	ref, err := nvram.New(sys.Platform().Channels(), sys.Platform().NVRAMSize())
	if err != nil {
		t.Fatal(err)
	}
	for a := boundary; a < src.End(); a += mem.Line {
		ref.Read(a)
	}
	for a := dst.Base; a < dst.Base+src.Size; a += mem.Line {
		ref.Write(a)
	}
	if got, want := sys.NVRAM().TotalMediaWrites(), ref.TotalMediaWrites(); got != want {
		t.Errorf("media writes = %d, want %d", got, want)
	}
	if got, want := sys.NVRAM().TotalMediaReads(), ref.TotalMediaReads(); got != want {
		t.Errorf("media reads = %d, want %d", got, want)
	}
}

// TestFastPathUnalignedRegions sweeps odd region shapes (non-multiple
// sizes, offset bases) so the batched line accounting matches the
// per-line loop bounds exactly.
func TestFastPathUnalignedRegions(t *testing.T) {
	for _, size := range []uint64{mem.Line, 3 * mem.Line, 100, 1000, 64*mem.KiB - 64} {
		cfg := Config{Mode: Mode2LM}
		slow, fast := newFastpathPair(t, cfg)
		region := mem.Region{Base: 128 * mem.Line, Size: size}
		slow.LoadRange(region)
		slow.StoreNTRange(region)
		fast.LoadRange(region)
		fast.StoreNTRange(region)
		slow.DrainLLC()
		fast.DrainLLC()
		assertSameSystemTraffic(t, fmt.Sprintf("size-%d", size), slow, fast)
	}
}
