package core

import (
	"testing"

	"twolm/internal/lfsr"
	"twolm/internal/mem"
)

// driveBatchMix appends an LFSR-random pass with a rotating op mix to
// the batch builder; drivePerLineMix issues the same stream through
// the per-line operations. The two must leave byte-identical state.
func driveBatchMix(t *testing.T, sys *System, region mem.Region, seed uint32) {
	t.Helper()
	b := sys.Batch()
	err := lfsr.Sequence(region.Lines(), seed, func(idx uint64) {
		addr := region.Base + idx*mem.Line
		switch idx & 7 {
		case 0, 4:
			b.Load(addr)
		case 1, 5:
			b.Store(addr)
		case 2:
			b.RMW(addr)
		case 3:
			b.StoreNT(addr)
		default:
			// The branch-free alternating form used by the random pass.
			b.LoadOrStore(addr, idx>>3)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	b.Flush()
}

func drivePerLineMix(t *testing.T, sys *System, region mem.Region, seed uint32) {
	t.Helper()
	err := lfsr.Sequence(region.Lines(), seed, func(idx uint64) {
		addr := region.Base + idx*mem.Line
		switch idx & 7 {
		case 0, 4:
			sys.Load(addr)
		case 1, 5:
			sys.Store(addr)
		case 2:
			sys.RMW(addr)
		case 3:
			sys.StoreNT(addr)
		default:
			if (idx>>3)&1 == 0 {
				sys.Load(addr)
			} else {
				sys.Store(addr)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestBatchMatchesPerLine proves the batch builder's bulk dispatch is
// byte-identical — controller counters, demand bytes, per-channel CAS,
// NVRAM media counters — to issuing the same operation stream through
// the per-line calls, in both operating modes and across every 2LM
// policy ablation at Ways 1 and 4.
func TestBatchMatchesPerLine(t *testing.T) {
	for name, cfg := range fastpathConfigs() {
		t.Run(name, func(t *testing.T) {
			slow, fast := newFastpathPair(t, cfg)
			slow.SetTap(nil) // per-line reference needs no tap
			region, err := slow.AddressSpace().Alloc(2 * slow.Platform().DRAMSize())
			if err != nil {
				t.Fatal(err)
			}
			if _, err := fast.AddressSpace().Alloc(2 * fast.Platform().DRAMSize()); err != nil {
				t.Fatal(err)
			}
			// Two passes so the second runs against the dirtied cache, plus
			// a sequential sweep in between so batched and per-line calls
			// interleave against shared state.
			for pass := uint32(0); pass < 2; pass++ {
				drivePerLineMix(t, slow, region, 0xAB+pass)
				driveBatchMix(t, fast, region, 0xAB+pass)
				slow.LoadRange(region)
				fast.LoadRange(region)
			}
			assertSameSystemTraffic(t, name, slow, fast)
		})
	}
}

// TestBatchTapFallsBackPerLine pins the tap contract: with a tap
// installed the builder routes every appended operation through the
// per-line path (so traces observe the stream exactly as generated),
// draining anything already buffered first, and counters still match
// an untapped batched run.
func TestBatchTapFallsBackPerLine(t *testing.T) {
	cfg := fastpathConfigs()["2lm-hardware"]
	tapped, batched := newFastpathPair(t, cfg)
	region, err := tapped.AddressSpace().Alloc(2 * tapped.Platform().DRAMSize())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := batched.AddressSpace().Alloc(2 * batched.Platform().DRAMSize()); err != nil {
		t.Fatal(err)
	}

	// Buffer half the stream untapped, install a counting tap mid-batch,
	// and finish: the install must not lose or reorder anything.
	var seen uint64
	lines := region.Lines()
	b := tapped.Batch()
	bu := batched.Batch()
	err = lfsr.Sequence(lines, 0x51, func(idx uint64) {
		addr := region.Base + idx*mem.Line
		if idx == lines/2 {
			tapped.SetTap(func(op TapOp, addr uint64) { seen++ })
		}
		b.LoadOrStore(addr, idx)
		bu.LoadOrStore(addr, idx)
	})
	if err != nil {
		t.Fatal(err)
	}
	b.Flush()
	bu.Flush()
	if seen == 0 {
		t.Fatal("tap observed no operations")
	}
	assertSameSystemTraffic(t, "tap-fallback", tapped, batched)
}

// TestBatchAutoFlush drives more operations than the builder's buffer
// cap in one burst, forcing the automatic mid-stream drain, and
// asserts the result still matches per-line dispatch.
func TestBatchAutoFlush(t *testing.T) {
	cfg := fastpathConfigs()["2lm-hardware"]
	slow, fast := newFastpathPair(t, cfg)
	slow.SetTap(nil)
	region, err := slow.AddressSpace().Alloc(2 * slow.Platform().DRAMSize())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fast.AddressSpace().Alloc(2 * fast.Platform().DRAMSize()); err != nil {
		t.Fatal(err)
	}
	const ops = batchFlushOps + 4*1337
	b := fast.Batch()
	lines := region.Lines()
	for i := uint64(0); i < ops; i++ {
		addr := region.Base + (i*2654435761)%lines*mem.Line
		if i&1 == 0 {
			slow.Load(addr)
			b.Load(addr)
		} else {
			slow.Store(addr)
			b.Store(addr)
		}
	}
	b.Flush()
	assertSameSystemTraffic(t, "auto-flush", slow, fast)
}
