// Counter validation. The paper cross-checks its uncore counter
// readings against the expected data movement of each benchmark
// (Section III-B); ValidateCounters performs the analogous internal
// consistency audit on a simulated system, checking every identity
// that must hold between the IMC events, the device counters, and the
// cache state. Experiments call it after a run; any violation is a
// simulator bug, never a workload property.

package core

import (
	"fmt"

	"twolm/internal/imc"
)

// ValidateCounters audits the system's counters for internal
// consistency and returns the first violated identity.
func (s *System) ValidateCounters() error {
	ctr := s.Counters()

	// Device counters must agree with the controller's view.
	if got, want := s.dramMod.TotalReads(), ctr.DRAMRead; got != want {
		return fmt.Errorf("core: DRAM device reads %d != IMC %d", got, want)
	}
	if got, want := s.dramMod.TotalWrites(), ctr.DRAMWrite; got != want {
		return fmt.Errorf("core: DRAM device writes %d != IMC %d", got, want)
	}
	if got, want := s.nvramMod.TotalReads(), ctr.NVRAMRead; got != want {
		return fmt.Errorf("core: NVRAM device reads %d != IMC %d", got, want)
	}
	if got, want := s.nvramMod.TotalWrites(), ctr.NVRAMWrite; got != want {
		return fmt.Errorf("core: NVRAM device writes %d != IMC %d", got, want)
	}

	if s.mode == Mode1LM {
		// App-direct: demand maps 1:1 onto device transactions and no
		// tag machinery exists.
		if ctr.TagAccesses() != 0 || ctr.DDO != 0 {
			return fmt.Errorf("core: 1LM produced tag events: %v", ctr)
		}
		reads := ctr.DRAMRead + ctr.NVRAMRead
		writes := ctr.DRAMWrite + ctr.NVRAMWrite
		if reads < ctr.LLCRead || writes < ctr.LLCWrite {
			return fmt.Errorf("core: 1LM device traffic below demand: %v", ctr)
		}
		return nil
	}

	return Validate2LM(ctr, s.ctrl)
}

// Validate2LM checks the 2LM counter identities of Table I against a
// counter snapshot and (optionally) the controller whose cache state
// should absorb the difference between write-backs and dirty misses.
func Validate2LM(ctr imc.Counters, ctrl *imc.Controller) error {
	// Every demand request performs exactly one tag classification.
	if ctr.TagAccesses() != ctr.Demand()-ctr.DDO {
		// DDO-hit writes skip the explicit check but are still counted
		// as hits; re-derive.
		if ctr.TagAccesses() != ctr.Demand() {
			return fmt.Errorf("imc: tag events %d != demand %d", ctr.TagAccesses(), ctr.Demand())
		}
	}
	// Every demand read costs at least one DRAM read (tag+data fetch);
	// writes add tag-check reads except under DDO.
	minDRAMReads := ctr.LLCRead + ctr.LLCWrite - ctr.DDO
	policy := imc.HardwarePolicy()
	if ctrl != nil {
		policy = ctrl.Policy()
	}
	if policy.WriteAllocate && policy.ReadAllocate && ctr.DRAMRead != minDRAMReads {
		return fmt.Errorf("imc: DRAM reads %d != demand-derived %d", ctr.DRAMRead, minDRAMReads)
	}
	// Fills: one NVRAM read per allocated miss.
	misses := ctr.TagMissClean + ctr.TagMissDirty
	if policy.WriteAllocate && policy.ReadAllocate && ctr.NVRAMRead != misses {
		return fmt.Errorf("imc: NVRAM reads %d != misses %d", ctr.NVRAMRead, misses)
	}
	// Write-backs: one NVRAM write per dirty miss (plus any explicit
	// flush; the residual dirty lines must still sit in the cache).
	if policy.WriteAllocate {
		if ctr.NVRAMWrite < ctr.TagMissDirty {
			return fmt.Errorf("imc: NVRAM writes %d below dirty misses %d", ctr.NVRAMWrite, ctr.TagMissDirty)
		}
	}
	// DDO hits are a subset of both tag hits and LLC writes.
	if ctr.DDO > ctr.TagHit || ctr.DDO > ctr.LLCWrite {
		return fmt.Errorf("imc: DDO count %d exceeds hits %d or writes %d", ctr.DDO, ctr.TagHit, ctr.LLCWrite)
	}
	// Amplification lives in Table I's envelope.
	if d := ctr.Demand(); d > 0 {
		if amp := ctr.Amplification(); amp < 1 || amp > 5 {
			return fmt.Errorf("imc: amplification %.3f outside [1, 5]", amp)
		}
	}
	return nil
}
